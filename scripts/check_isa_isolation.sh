#!/usr/bin/env bash
# ISA-isolation check for the SIMD kernel backends.
#
# The per-ISA TUs (src/sim/kernels/kernels_avx2.cpp, kernels_avx512.cpp, and
# the RL counterparts src/rl/mlp_kernels_avx2.cpp, mlp_kernels_avx512.cpp)
# are compiled with -mavx2 / -mavx512f, but their table factories are called
# on EVERY host during ISA detection — before dispatch consults CPUID. The
# only vector instructions those objects may contain must sit behind the
# KernelTable function pointers, which dispatch hands out only to capable
# CPUs. This script disassembles the built objects and fails if that contract
# regresses:
#
#   1. the object has a static initializer (.init_array / .ctors) — code in
#      an ISA-flagged TU that runs unconditionally at program startup;
#   2. the <isa>_table() factory function contains a VEX/EVEX-encoded
#      instruction (mnemonic starting with "v") — the lazy-init path of a
#      function-local static is the classic way this happens.
#
# Usage: scripts/check_isa_isolation.sh [build_dir]   (default: build)
set -euo pipefail

build_dir="${1:-build}"
lib_dir="$build_dir/CMakeFiles/deterrent.dir/src"
status=0
checked=0
located=0

# The check is meaningless without a disassembler; skip loudly rather than
# report a hollow pass (readelf and objdump ship together in binutils).
for tool in objdump readelf; do
  if ! command -v "$tool" >/dev/null 2>&1; then
    echo "skip: $tool not found — install binutils to run the ISA-isolation check"
    exit 0
  fi
done

# Each entry is "object path|demangled factory symbol": the sim engine
# kernels and the RL MLP batch kernels follow the same hermetic-TU contract.
for entry in \
  "sim/kernels/kernels_avx2.cpp.o|deterrent::sim::kernels::avx2_table()" \
  "sim/kernels/kernels_avx512.cpp.o|deterrent::sim::kernels::avx512_table()" \
  "rl/mlp_kernels_avx2.cpp.o|deterrent::rl::kernels::mlp_avx2_table()" \
  "rl/mlp_kernels_avx512.cpp.o|deterrent::rl::kernels::mlp_avx512_table()"; do
  obj="$lib_dir/${entry%%|*}"
  factory="${entry#*|}"
  isa_flag=$(case "$obj" in *avx512*) echo avx512f;; *) echo avx2;; esac)
  if [ ! -f "$obj" ]; then
    echo "skip: $obj not found (backend not built)"
    continue
  fi
  checked=$((checked + 1))

  if readelf -S "$obj" | grep -Eq '\.(init_array|ctors)'; then
    echo "FAIL: $obj has a static initializer section — code compiled with" \
         "-m$isa_flag would run at startup on every host"
    status=1
  fi

  # Extract the factory's disassembly (from its symbol header to the next
  # blank line) and pull out the instruction mnemonics: objdump lines are
  # "addr:<tab>hex bytes<tab>mnemonic operands". Match the symbol with a
  # fixed-string index(), not a regex — the "()" in the demangled name would
  # need escaping whose handling differs between mawk and gawk.
  mnemonics=$(objdump -d -C "$obj" |
    awk -v sym="<${factory}>:" \
      'index($0, sym) {f=1; next} /^$/ {f=0} f' |
    awk -F'\t' 'NF >= 3 {split($3, m, " "); print m[1]}')
  if [ -z "$mnemonics" ]; then
    echo "FAIL: could not locate ${factory} in $obj"
    status=1
    continue
  fi
  located=$((located + 1))
  if echo "$mnemonics" | grep -Eq '^v'; then
    echo "FAIL: ${factory} in $obj contains vector instructions:"
    echo "$mnemonics" | grep -E '^v' | sort -u | sed 's/^/    /'
    echo "  (the factory runs before CPUID checks; its table must be constinit)"
    status=1
  else
    echo "ok: ${factory} is baseline-safe ($(echo "$mnemonics" | tr '\n' ' '))"
  fi
done

if [ "$checked" -eq 0 ]; then
  echo "note: no x86 SIMD kernel objects found under $lib_dir (non-x86 build?)"
elif [ "$located" -eq 0 ]; then
  # Objects existed but no factory symbol was ever matched: the symbol name
  # drifted (rename, mangling change) and the check silently stopped seeing
  # the code it guards. Treat that as a failure, not a pass.
  echo "FAIL: no factory symbol matched in any checked object —" \
       "update the entry list in $0"
  status=1
fi
exit "$status"

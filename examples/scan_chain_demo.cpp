// Scan-chain demo: how DETERRENT handles sequential designs.
//
// Loads the MIPS16-like processor (or any sequential benchmark), shows the
// full-scan transform (every flip-flop becomes a controllable/observable
// pseudo-pin), runs a couple of processor cycles through the combinational
// view, and exports the design as `.bench` and structural Verilog.
//
//   ./scan_chain_demo [benchmark_name]
#include <cstdio>
#include <string>

#include "bench_gen/library.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "netlist/verilog_io.hpp"
#include "sim/simulator.hpp"

using namespace deterrent;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "mips16_like";
  auto bench = bench_gen::load_benchmark(name);

  const auto orig_stats = netlist::compute_stats(bench.original);
  const auto scan_stats = netlist::compute_stats(bench.scan.comb);
  std::printf("== %s ==\noriginal : %s\nscan view: %s\n\n", name.c_str(),
              orig_stats.to_string().c_str(), scan_stats.to_string().c_str());
  std::printf("full scan exposes %zu state bits as pseudo inputs and %zu data\n"
              "nets as pseudo outputs; one test pattern now assigns %zu bits.\n\n",
              bench.scan.pseudo_inputs.size(), bench.scan.pseudo_outputs.size(),
              bench.scan.comb.inputs().size());

  if (!bench.original.is_sequential()) {
    std::printf("(%s is combinational; scan view is the identity)\n", name.c_str());
  } else {
    // Drive one combinational cycle: all-zero state, a NOP-ish instruction.
    sim::Simulator sim(bench.scan.comb);
    sim::Pattern pattern(bench.scan.comb.inputs().size());  // all zeros
    const auto values = sim.simulate_pattern(pattern);
    std::size_t ones = 0;
    for (const auto po : bench.scan.comb.outputs()) ones += values[po];
    std::printf("cycle with all-zero state: %zu of %zu outputs high\n\n", ones,
                bench.scan.comb.outputs().size());
  }

  const std::string bench_path = name + ".bench";
  const std::string verilog_path = name + ".v";
  netlist::write_bench_file(bench.original, bench_path);
  netlist::write_verilog_file(bench.original, name, verilog_path);
  std::printf("exported %s and %s (re-load with load_benchmark_file)\n",
              bench_path.c_str(), verilog_path.c_str());

  // Round-trip sanity: the exported .bench reparses identically.
  const auto reloaded = bench_gen::load_benchmark_file(bench_path);
  std::printf("round trip: %zu gates -> %zu gates, %zu FFs -> %zu FFs\n",
              bench.original.gate_count(), reloaded.original.gate_count(),
              bench.original.dffs().size(), reloaded.original.dffs().size());
  return 0;
}

// Trojan detection campaign: the scenario from the paper's introduction.
//
// A fab-inserted Trojan hides behind a rare trigger; the defender only has
// the golden netlist. This example plays both sides:
//   * the adversary inserts a real Trojan (trigger AND-tree + XOR payload)
//     into the design and we verify its stealth against random testing;
//   * the defender generates test sets with DETERRENT and two baselines and
//     applies them to the infected chip — a test "detects" the Trojan when
//     some pattern makes the infected outputs differ from the golden ones.
//
//   ./trojan_campaign [benchmark_name]
#include <bit>
#include <cstdio>
#include <string>

#include "baselines/atpg_like.hpp"
#include "baselines/tarmac.hpp"
#include "bench_gen/library.hpp"
#include "core/deterrent.hpp"
#include "sim/engine.hpp"
#include "trojan/coverage.hpp"
#include "trojan/trojan.hpp"
#include "util/table.hpp"

using namespace deterrent;

namespace {

/// Counts patterns whose primary outputs differ between golden and infected —
/// i.e. the payload became visible on a pin. Both netlists are swept in
/// lock-step 64-pattern blocks; a pattern is exposing when any output word
/// lane differs.
std::size_t exposing_patterns(const netlist::Netlist& golden,
                              const netlist::Netlist& infected,
                              const sim::PatternSet& patterns) {
  const sim::Engine gengine(golden);
  const sim::Engine iengine(infected);
  sim::EvalBuffer ibuf;
  std::size_t exposed = 0;
  gengine.sweep(patterns, [&](std::size_t first_block, std::size_t n_words,
                              const sim::EvalBuffer& gbuf) {
    iengine.evaluate_blocks(ibuf, patterns, first_block, n_words);
    for (std::size_t w = 0; w < n_words; ++w) {
      std::uint64_t differs = 0;
      for (std::size_t o = 0; o < golden.outputs().size(); ++o)
        differs |= gbuf.word(golden.outputs()[o], w) ^
                   ibuf.word(infected.outputs()[o], w);
      differs &= patterns.valid_mask(first_block + w);
      exposed += static_cast<std::size_t>(std::popcount(differs));
    }
  });
  return exposed;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "c5315_like";
  auto bench = bench_gen::load_benchmark(name);
  const auto& golden = bench.scan.comb;
  std::printf("== Trojan campaign on %s (%zu gates) ==\n\n", name.c_str(),
              golden.gate_count());

  // --- defender preparation (golden netlist only) --------------------------
  core::DeterrentConfig config;
  config.updates = 25;
  config.k_patterns = 64;
  config.seed = 11;
  core::Deterrent deterrent(golden, config);
  deterrent.prepare();
  std::printf("defender: %zu rare nets below threshold %.2f\n",
              deterrent.rare_nets().size(), config.rare.threshold);

  // --- adversary: pick a stealthy Trojan, build the infected chip ----------
  sat::NetlistOracle oracle(golden);
  util::Rng adversary_rng(666);
  trojan::TrojanSampleConfig tcfg;
  tcfg.width = 4;
  tcfg.count = 1;
  const auto chosen =
      trojan::sample_trojans(golden, deterrent.rare_nets(), tcfg, oracle, adversary_rng);
  if (chosen.empty()) {
    std::printf("no satisfiable trigger found — circuit too small, try another\n");
    return 1;
  }
  const trojan::Trojan& ht = chosen.front();
  const netlist::Netlist infected = trojan::apply_trojan(golden, ht);
  std::printf("adversary: inserted width-%u trigger on nets {", ht.width());
  for (const auto& rn : ht.trigger)
    std::printf(" %s@%d", golden.name(rn.net).empty()
                              ? ("n" + std::to_string(rn.net)).c_str()
                              : golden.name(rn.net).c_str(),
                rn.rare_value ? 1 : 0);
  std::printf(" }, payload XOR on net %u\n\n", ht.payload_net);

  // --- stealth check: does random manufacturing test expose it? ------------
  util::Rng tester_rng(1);
  const auto random_10k = sim::PatternSet::random(golden.inputs().size(), 10000, tester_rng);
  std::printf("stealth: %zu of 10000 random patterns expose the payload\n\n",
              exposing_patterns(golden, infected, random_10k));

  // --- defender test generation ---------------------------------------------
  deterrent.train();
  const auto det_patterns = deterrent.extract_patterns();

  util::Rng baseline_rng(2);
  const auto atpg = baselines::run_atpg_like(golden, deterrent.rare_nets(), baseline_rng);
  baselines::TarmacConfig tarmac_cfg;
  tarmac_cfg.n_patterns = 256;
  const auto tarmac = baselines::run_tarmac(golden, deterrent.rare_nets(),
                                            deterrent.matrix(), tarmac_cfg, baseline_rng);

  util::Table table({"Technique", "Patterns", "Exposing patterns", "Detected"});
  auto report = [&](const char* technique, const sim::PatternSet& patterns) {
    const std::size_t exposed = exposing_patterns(golden, infected, patterns);
    table.add_row({technique, std::to_string(patterns.pattern_count()),
                   std::to_string(exposed), exposed > 0 ? "YES" : "no"});
  };
  report("DETERRENT", det_patterns);
  report("TARMAC", tarmac.patterns);
  report("ATPG-like", atpg.patterns);
  report("Random-10k", random_10k);
  table.print();
  return 0;
}

// Compatibility explorer: inspect the offline phase of DETERRENT.
//
// Prints the rare-net census for a benchmark (probability histogram, rare
// values), builds the pairwise compatibility matrix, reports how much the
// simulation pre-filter saved over pure SAT, samples a few maximal cliques
// TARMAC-style, and writes the compatibility graph as Graphviz DOT.
//
//   ./compatibility_explorer [benchmark_name] [output.dot]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "analysis/compatibility.hpp"
#include "analysis/rare_nets.hpp"
#include "baselines/tarmac.hpp"
#include "bench_gen/library.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace deterrent;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "c6288_like";
  const std::string dot_path = argc > 2 ? argv[2] : "";
  auto bench = bench_gen::load_benchmark(name);
  const auto& nl = bench.scan.comb;

  util::Rng rng(1);
  util::ThreadPool pool;

  analysis::RareNetConfig rare_cfg;
  rare_cfg.threshold = 0.1;
  const auto rare = analysis::find_rare_nets(nl, rare_cfg, rng, &pool);
  std::printf("== %s: %zu rare nets at threshold %.2f ==\n\n", name.c_str(),
              rare.size(), rare_cfg.threshold);

  // Probability histogram of the rare nets.
  std::size_t buckets[5] = {0, 0, 0, 0, 0};  // [0,.02) [.02,.04) ... [.08,.1)
  std::size_t rare_at_one = 0;
  for (const auto& rn : rare) {
    const auto b = std::min<std::size_t>(4, static_cast<std::size_t>(rn.probability / 0.02));
    buckets[b]++;
    rare_at_one += rn.rare_value;
  }
  util::Table hist({"P(rare value)", "# nets"});
  const char* ranges[5] = {"[0.00,0.02)", "[0.02,0.04)", "[0.04,0.06)",
                           "[0.06,0.08)", "[0.08,0.10)"};
  for (int b = 0; b < 5; ++b) hist.add_row({ranges[b], std::to_string(buckets[b])});
  hist.print();
  std::printf("rare value 1: %zu nets, rare value 0: %zu nets\n\n", rare_at_one,
              rare.size() - rare_at_one);

  // Compatibility matrix with build statistics.
  analysis::CompatibilityBuildStats stats;
  const auto matrix = analysis::build_compatibility(nl, rare, {}, rng, &pool, &stats);
  std::printf("compatibility: %zu/%zu pairs compatible (avg degree %.1f)\n",
              matrix.edge_count(), stats.pair_count, matrix.average_degree());
  std::printf("  resolved by simulation co-occurrence : %zu\n", stats.sim_resolved);
  std::printf("  resolved by SAT (sat/unsat)          : %zu/%zu\n", stats.sat_sat,
              stats.sat_unsat);
  std::printf("  unsatisfiable singletons             : %zu\n", stats.unsat_singletons);
  std::printf("  build time                           : %.2fs\n\n", stats.build_seconds);

  // Sample maximal cliques the way TARMAC does.
  baselines::TarmacConfig tcfg;
  tcfg.n_patterns = 8;
  const auto tarmac = baselines::run_tarmac(nl, rare, matrix, tcfg, rng);
  std::printf("8 sampled maximal compatible sets (TARMAC-style): sizes");
  for (const auto s : tarmac.clique_sizes) std::printf(" %zu", s);
  std::printf("\n");

  if (!dot_path.empty()) {
    std::ofstream dot(dot_path);
    dot << "graph compat {\n  node [shape=point];\n";
    for (std::uint32_t i = 0; i < matrix.size(); ++i)
      for (std::uint32_t j = i + 1; j < matrix.size(); ++j)
        if (matrix.compatible(i, j)) dot << "  n" << i << " -- n" << j << ";\n";
    dot << "}\n";
    std::printf("wrote compatibility graph to %s\n", dot_path.c_str());
  }
  return 0;
}

// deterrent_cli — command-line front-end to the full pipeline.
//
//   deterrent_cli analyze  <bench|name>                      rare-net census
//   deterrent_cli generate <bench|name> -o patterns.txt      DETERRENT patterns
//   deterrent_cli evaluate <bench|name> -p patterns.txt      coverage vs random HTs
//   deterrent_cli export   <name> -o design.bench            write a built-in profile
//
// <bench|name> is either a built-in profile (c2670_like, …, mips16_like) or a
// path to an ISCAS `.bench` file. Common flags:
//   --threshold <θ>   rareness threshold          (default 0.1)
//   --updates <n>     PPO updates                 (default 30)
//   --k <n>           patterns to extract         (default 64)
//   --width <w>       trigger width for evaluate  (default 4)
//   --trojans <n>     HT population for evaluate  (default 100)
//   --seed <s>        master seed                 (default 1)
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "bench_gen/library.hpp"
#include "core/deterrent.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "sim/pattern_io.hpp"
#include "trojan/coverage.hpp"
#include "trojan/trojan.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace deterrent;

namespace {

struct Args {
  std::string command;
  std::string target;
  std::map<std::string, std::string> flags;

  double threshold() const { return flag_double("--threshold", 0.1); }
  std::size_t updates() const { return flag_size("--updates", 30); }
  std::size_t k() const { return flag_size("--k", 64); }
  unsigned width() const { return static_cast<unsigned>(flag_size("--width", 4)); }
  std::size_t trojans() const { return flag_size("--trojans", 100); }
  std::uint64_t seed() const { return flag_size("--seed", 1); }
  std::string out() const { return flag_string("-o", ""); }
  std::string patterns() const { return flag_string("-p", ""); }

  double flag_double(const char* name, double fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
  std::size_t flag_size(const char* name, std::size_t fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : static_cast<std::size_t>(std::stoull(it->second));
  }
  std::string flag_string(const char* name, std::string fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  if (argc >= 3 && argv[2][0] != '-') args.target = argv[2];
  for (int i = 3; i + 1 < argc + 1; ++i) {
    if (i < argc && argv[i][0] == '-' && i + 1 < argc) {
      args.flags[argv[i]] = argv[i + 1];
      ++i;
    }
  }
  return args;
}

bench_gen::Benchmark load_target(const std::string& target) {
  if (target.find(".bench") != std::string::npos)
    return bench_gen::load_benchmark_file(target);
  return bench_gen::load_benchmark(target);
}

int cmd_analyze(const Args& args) {
  auto bench = load_target(args.target);
  const auto stats = netlist::compute_stats(bench.scan.comb);
  std::printf("%s: %s\n", bench.name.c_str(), stats.to_string().c_str());

  util::Rng rng(args.seed());
  util::ThreadPool pool;
  analysis::RareNetConfig cfg;
  cfg.threshold = args.threshold();
  const auto rare = analysis::find_rare_nets(bench.scan.comb, cfg, rng, &pool);
  std::printf("rare nets at threshold %.3f: %zu\n\n", cfg.threshold, rare.size());

  util::Table table({"Net", "Rare value", "P(rare value)"});
  std::size_t shown = 0;
  for (const auto& rn : rare) {
    if (shown++ >= 20) break;
    const std::string& name = bench.scan.comb.name(rn.net);
    table.add_row({name.empty() ? "n" + std::to_string(rn.net) : name,
                   rn.rare_value ? "1" : "0", util::Table::num(rn.probability, 5)});
  }
  table.print();
  if (rare.size() > 20) std::printf("... and %zu more\n", rare.size() - 20);
  return 0;
}

int cmd_generate(const Args& args) {
  auto bench = load_target(args.target);
  core::DeterrentConfig cfg;
  cfg.rare.threshold = args.threshold();
  cfg.updates = args.updates();
  cfg.k_patterns = args.k();
  cfg.seed = args.seed();
  cfg.env.reward_mode = core::RewardMode::EndOfEpisode;
  cfg.ppo.n_workers = 8;

  core::Deterrent det(bench.scan.comb, cfg);
  det.prepare();
  std::printf("offline: %zu rare nets, %zu compatible pairs\n",
              det.rare_nets().size(), det.matrix().edge_count());
  det.train();
  std::printf("training: %zu distinct sets, largest %zu\n", det.pool().size(),
              det.pool().max_set_size());
  const auto patterns = det.extract_patterns();
  std::printf("extracted %zu patterns\n", patterns.pattern_count());

  const std::string out = args.out().empty() ? bench.name + ".patterns" : args.out();
  sim::write_patterns_file(patterns, out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_evaluate(const Args& args) {
  auto bench = load_target(args.target);
  if (args.patterns().empty()) {
    std::fprintf(stderr, "evaluate requires -p <patterns.txt>\n");
    return 2;
  }
  const auto patterns = sim::read_patterns_file(args.patterns());
  if (patterns.input_count() != bench.scan.comb.inputs().size()) {
    std::fprintf(stderr, "pattern width %zu does not match design inputs %zu\n",
                 patterns.input_count(), bench.scan.comb.inputs().size());
    return 2;
  }

  util::Rng rng(args.seed());
  util::ThreadPool pool;
  analysis::RareNetConfig rcfg;
  rcfg.threshold = args.threshold();
  const auto rare = analysis::find_rare_nets(bench.scan.comb, rcfg, rng, &pool);
  sat::NetlistOracle oracle(bench.scan.comb);
  trojan::TrojanSampleConfig tcfg;
  tcfg.width = args.width();
  tcfg.count = args.trojans();
  const auto trojans = trojan::sample_trojans(bench.scan.comb, rare, tcfg, oracle, rng);

  const auto result = trojan::evaluate_coverage(bench.scan.comb, trojans, patterns);
  std::printf("%zu patterns vs %zu width-%u Trojans: %.1f%% trigger coverage\n",
              patterns.pattern_count(), trojans.size(), args.width(),
              result.coverage_percent());
  return 0;
}

int cmd_export(const Args& args) {
  auto bench = load_target(args.target);
  const std::string out = args.out().empty() ? bench.name + ".bench" : args.out();
  netlist::write_bench_file(bench.original, out);
  std::printf("wrote %s (%zu gates, %zu FFs)\n", out.c_str(),
              bench.original.gate_count(), bench.original.dffs().size());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: deterrent_cli <analyze|generate|evaluate|export> "
               "<bench|name> [flags]\n  (see header comment for flags)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "analyze" && !args.target.empty()) return cmd_analyze(args);
    if (args.command == "generate" && !args.target.empty()) return cmd_generate(args);
    if (args.command == "evaluate" && !args.target.empty()) return cmd_evaluate(args);
    if (args.command == "export" && !args.target.empty()) return cmd_export(args);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}

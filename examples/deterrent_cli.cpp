// deterrent_cli — command-line front-end to the staged pipeline.
//
// One-shot commands:
//   deterrent_cli lint     <bench|name>                      static DRC + trojan screen
//   deterrent_cli analyze  <bench|name>                      rare-net census
//   deterrent_cli generate <bench|name> -o patterns.txt      DETERRENT patterns
//   deterrent_cli evaluate <bench|name> -p patterns.txt      coverage vs random HTs
//   deterrent_cli export   <name> -o design.bench            write a built-in profile
//
// Staged commands (checkpointed in a --session directory; any stage can be
// interrupted and later resumed bit-identically):
//   deterrent_cli prepare  <bench|name> --session DIR        rare nets + matrix
//   deterrent_cli train    <bench|name> --session DIR        PPO updates (resumable)
//   deterrent_cli extract  <bench|name> --session DIR        SAT pattern extraction
//   deterrent_cli resume   <bench|name> --session DIR        run remaining stages
//   deterrent_cli campaign <name,name,...|all>               multi-circuit driver
//
// Artifact cache maintenance (see docs/service.md):
//   deterrent_cli cache stats --cache-dir DIR                entry/byte counts
//   deterrent_cli cache evict --cache-dir DIR [--fingerprint HEX]
//
// <bench|name> is either a built-in profile (c2670_like, …, mips16_like) or a
// path to an ISCAS `.bench` file. Common flags:
//   --threshold <θ>        rareness threshold           (default 0.1)
//   --updates <n>          PPO updates                  (default 30)
//   --k <n>                patterns to extract          (default 64)
//   --width <w>            trigger width for evaluate   (default 4)
//   --trojans <n>          HT population                (default 100; campaign 0 = skip)
//   --seed <s>             master seed                  (default 1)
//   --session <dir>        artifact directory (staged commands; campaign root)
//   --budget-seconds <s>   per-stage wall-clock budget  (default unlimited)
//   --sat-budget <n>       training SAT-query budget    (default unlimited)
//   --threads <n>          campaign circuit workers     (default hardware)
//   --sat-inprocess <0|1>  solver inprocessing in the compatibility phase (default 1)
//   --sat-portfolio <n>    clause-sharing solver clones for pair queries (default 0 = off)
//   --sat-share-lbd <n>    max LBD of clauses exchanged between clones (default 6)
//   --sat-dispatch <n>     threads for batched lane SAT dispatch in vectorized
//                          rollouts (default 0 = sequential; results identical)
//   --compat-shards <n>    split the compatibility build into n deterministic
//                          row-range shards, checkpointed per shard (default 0)
//   --cache-dir <dir>      shared content-addressed artifact cache: staged
//                          commands hydrate from and publish to it
//   --no-cache             ignore --cache-dir for this invocation
//   --rollout-lanes <n>    lock-step PPO rollout lanes on one batched env
//                          (default 1 = legacy scalar collector with 8
//                          threaded workers; >1 forces n_workers = 1)
//   --retries <n>          campaign per-circuit retries (default 2)
//   --retry-backoff-ms <m> first retry backoff, doubles (default 50)
//   --retry-backoff-cap-ms <m>  backoff ceiling per sleep (default 10000)
//   --stage-timeout <s>    per-stage watchdog seconds   (default none)
//   --quiet                suppress stage progress on stderr
//
// Lint flags (the `lint` subcommand and the staged pipeline's front door):
//   --lint-json <file|->   write the JSON report to a file (or stdout with -)
//   --lint-fatal <sev>     reject at info|warning|error   (default error)
//   --no-lint              disable the pipeline's lint stage entirely
//
// Campaign exit codes: 0 all circuits clean, 4 degraded (some circuits
// recovered/retried or quarantined but at least one completed), 5 every
// circuit permanently failed, 3 interrupted-but-resumable (cancel/budget),
// 2 usage error, 1 unexpected exception. See docs/robustness.md.
// `lint` (and any staged command whose front door rejects) exits 6 with the
// offending diagnostics on stdout. See docs/lint.md.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "bench_gen/library.hpp"
#include "core/artifact_cache.hpp"
#include "core/campaign.hpp"
#include "core/deterrent.hpp"
#include "core/session.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "sim/pattern_io.hpp"
#include "trojan/coverage.hpp"
#include "trojan/trojan.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace deterrent;

namespace {

struct Args {
  std::string command;
  std::string target;
  std::map<std::string, std::string> flags;

  double threshold() const { return flag_double("--threshold", 0.1); }
  std::size_t updates() const { return flag_size("--updates", 30); }
  std::size_t k() const { return flag_size("--k", 64); }
  unsigned width() const { return static_cast<unsigned>(flag_size("--width", 4)); }
  std::size_t trojans() const { return flag_size("--trojans", 100); }
  std::uint64_t seed() const { return flag_size("--seed", 1); }
  std::string out() const { return flag_string("-o", ""); }
  std::string patterns() const { return flag_string("-p", ""); }
  std::string session() const { return flag_string("--session", ""); }
  double budget_seconds() const { return flag_double("--budget-seconds", 0.0); }
  std::uint64_t sat_budget() const { return flag_size("--sat-budget", 0); }
  std::size_t threads() const { return flag_size("--threads", 0); }
  bool sat_inprocess() const { return flag_size("--sat-inprocess", 1) != 0; }
  std::size_t sat_portfolio() const { return flag_size("--sat-portfolio", 0); }
  std::size_t sat_dispatch() const { return flag_size("--sat-dispatch", 0); }
  std::size_t compat_shards() const { return flag_size("--compat-shards", 0); }
  std::string cache_dir() const { return flag_string("--cache-dir", ""); }
  bool no_cache() const { return flags.count("--no-cache") != 0; }
  std::size_t rollout_lanes() const { return flag_size("--rollout-lanes", 1); }
  std::uint32_t sat_share_lbd() const {
    return static_cast<std::uint32_t>(flag_size("--sat-share-lbd", 6));
  }
  std::size_t retries() const { return flag_size("--retries", 2); }
  double retry_backoff_ms() const { return flag_double("--retry-backoff-ms", 50.0); }
  double retry_backoff_cap_ms() const {
    return flag_double("--retry-backoff-cap-ms", 10000.0);
  }
  double stage_timeout() const { return flag_double("--stage-timeout", 0.0); }
  std::string lint_json() const { return flag_string("--lint-json", ""); }
  std::string lint_fatal() const { return flag_string("--lint-fatal", "error"); }
  bool no_lint() const { return flags.count("--no-lint") != 0; }
  bool quiet() const { return flags.count("--quiet") != 0; }
  bool has(const char* name) const { return flags.count(name) != 0; }

  double flag_double(const char* name, double fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
  std::size_t flag_size(const char* name, std::size_t fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : static_cast<std::size_t>(std::stoull(it->second));
  }
  std::string flag_string(const char* name, std::string fallback) const {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
};

bool is_bare_flag(const char* name) {
  return std::strcmp(name, "--quiet") == 0 || std::strcmp(name, "--no-lint") == 0 ||
         std::strcmp(name, "--no-cache") == 0;
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  if (argc >= 3 && argv[2][0] != '-') args.target = argv[2];
  for (int i = 3; i < argc; ++i) {
    if (argv[i][0] != '-') continue;
    if (is_bare_flag(argv[i])) {
      args.flags[argv[i]] = "1";
    } else if (i + 1 < argc) {
      args.flags[argv[i]] = argv[i + 1];
      ++i;
    }
  }
  return args;
}

bench_gen::Benchmark load_target(const std::string& target) {
  if (target.find(".bench") != std::string::npos)
    return bench_gen::load_benchmark_file(target);
  return bench_gen::load_benchmark(target);
}

/// The pipeline configuration every staged command (and `generate`) shares —
/// keeping them identical is what makes `prepare`+`resume` reproduce a
/// straight `generate` bit for bit.
analysis::LintSeverity parse_severity(const std::string& name) {
  if (name == "info") return analysis::LintSeverity::Info;
  if (name == "warning" || name == "warn") return analysis::LintSeverity::Warning;
  if (name == "error") return analysis::LintSeverity::Error;
  throw Error("unknown lint severity '" + name + "' (use info, warning, or error)");
}

analysis::LintConfig lint_config(const Args& args) {
  analysis::LintConfig cfg;
  cfg.enabled = !args.no_lint();
  cfg.fail_on = parse_severity(args.lint_fatal());
  return cfg;
}

core::DeterrentConfig pipeline_config(const Args& args) {
  core::DeterrentConfig cfg;
  cfg.lint = lint_config(args);
  cfg.rare.threshold = args.threshold();
  cfg.compat.inprocess = args.sat_inprocess();
  cfg.compat.portfolio_threads = args.sat_portfolio();
  cfg.compat.share_lbd_cap = args.sat_share_lbd();
  cfg.compat.shard_count = args.compat_shards();
  cfg.env.sat_dispatch_threads = args.sat_dispatch();
  cfg.updates = args.updates();
  cfg.k_patterns = args.k();
  cfg.seed = args.seed();
  cfg.env.reward_mode = core::RewardMode::EndOfEpisode;
  cfg.ppo.n_workers = 8;
  // Vectorized rollouts collect on one batched env; the two collectors own
  // the same RNG streams, so lanes > 1 replaces the threaded workers.
  cfg.ppo.rollout_lanes = std::max<std::size_t>(1, args.rollout_lanes());
  if (cfg.ppo.rollout_lanes > 1) cfg.ppo.n_workers = 1;
  return cfg;
}

core::StageControl stage_control(const Args& args) {
  core::StageControl control;
  control.wall_budget_seconds = args.budget_seconds();
  control.sat_query_budget = args.sat_budget();
  control.stage_timeout_seconds = args.stage_timeout();
  if (!args.quiet()) {
    control.on_progress = [](const core::StageProgress& p) {
      std::fprintf(stderr, "[%s] %zu/%zu %s (%.1fs)\n", core::to_string(p.stage),
                   p.current, p.total, p.detail.c_str(), p.stage_seconds);
      return true;
    };
  }
  return control;
}

int report_status(core::StageStatus status, const core::Session& session) {
  switch (status) {
    case core::StageStatus::Complete:
      return 0;
    case core::StageStatus::Cancelled:
      std::printf("cancelled; progress saved in %s\n", session.dir().c_str());
      return 3;
    case core::StageStatus::BudgetExhausted:
      std::printf("budget exhausted; progress saved in %s — rerun `resume` to continue\n",
                  session.dir().c_str());
      return 3;
    case core::StageStatus::TimedOut:
      std::printf("stage watchdog timed out; last checkpoint kept in %s — rerun `resume`\n",
                  session.dir().c_str());
      return 3;
    case core::StageStatus::Rejected:
      std::printf("design rejected by lint; verdict saved in %s — "
                  "run `deterrent_cli lint` for the diagnostics\n",
                  session.dir().c_str());
      return 6;
  }
  return 3;
}

void write_pattern_text(const core::Pipeline& pipeline, const Args& args,
                        const std::string& fallback_name) {
  if (!pipeline.extract_done()) return;
  const std::string out =
      args.out().empty() ? fallback_name + ".patterns" : args.out();
  sim::write_patterns_file(pipeline.patterns(), out);
  std::printf("wrote %zu patterns to %s\n", pipeline.patterns().pattern_count(),
              out.c_str());
}

int cmd_lint(const Args& args) {
  analysis::LintConfig cfg = lint_config(args);
  cfg.enabled = true;  // an explicit `lint` always runs, even with --no-lint

  // Untrusted .bench files go through the checked parser: malformed or
  // structurally broken sources become parse-tier diagnostics instead of
  // exceptions, and the netlist-tier rules run only when a netlist built.
  analysis::LintReport report;
  std::string name = args.target;
  if (args.target.find(".bench") != std::string::npos) {
    const auto parsed = netlist::read_bench_file_checked(args.target);
    analysis::append_parse_diagnostics(report, parsed.diagnostics, cfg);
    if (parsed.netlist.has_value()) {
      const auto netlist_report = analysis::Linter(cfg).lint(*parsed.netlist);
      report.diagnostics.insert(report.diagnostics.end(),
                                netlist_report.diagnostics.begin(),
                                netlist_report.diagnostics.end());
      report.suppressed += netlist_report.suppressed;
    }
  } else {
    const auto bench = bench_gen::load_benchmark(args.target);
    name = bench.name;
    report = analysis::Linter(cfg).lint(bench.original);
  }

  for (const auto& d : report.diagnostics) {
    std::string where = d.net_name.empty() ? std::string() : " [" + d.net_name + "]";
    if (d.line > 0) where += " (line " + std::to_string(d.line) + ")";
    std::printf("%s: %s%s: %s\n", analysis::to_string(d.severity), d.rule.c_str(),
                where.c_str(), d.message.c_str());
  }
  if (report.suppressed > 0)
    std::printf("(%zu further findings suppressed; see --lint-json for counts)\n",
                report.suppressed);
  std::printf("%s: %s\n", name.c_str(), report.summary().c_str());

  if (!args.lint_json().empty()) {
    const std::string json = report.to_json();
    if (args.lint_json() == "-") {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream out(args.lint_json());
      if (!out) throw Error("cannot open " + args.lint_json() + " for writing");
      out << json << "\n";
    }
  }
  return report.rejects(cfg.fail_on) ? 6 : 0;
}

int cmd_analyze(const Args& args) {
  auto bench = load_target(args.target);
  const auto stats = netlist::compute_stats(bench.scan.comb);
  std::printf("%s: %s\n", bench.name.c_str(), stats.to_string().c_str());

  util::Rng rng(args.seed());
  util::ThreadPool pool;
  analysis::RareNetConfig cfg;
  cfg.threshold = args.threshold();
  const auto rare = analysis::find_rare_nets(bench.scan.comb, cfg, rng, &pool);
  std::printf("rare nets at threshold %.3f: %zu\n\n", cfg.threshold, rare.size());

  util::Table table({"Net", "Rare value", "P(rare value)"});
  std::size_t shown = 0;
  for (const auto& rn : rare) {
    if (shown++ >= 20) break;
    const std::string& name = bench.scan.comb.name(rn.net);
    table.add_row({name.empty() ? "n" + std::to_string(rn.net) : name,
                   rn.rare_value ? "1" : "0", util::Table::num(rn.probability, 5)});
  }
  table.print();
  if (rare.size() > 20) std::printf("... and %zu more\n", rare.size() - 20);
  return 0;
}

int cmd_generate(const Args& args) {
  auto bench = load_target(args.target);
  core::Deterrent det(bench.scan.comb, pipeline_config(args));
  det.prepare();
  std::printf("offline: %zu rare nets, %zu compatible pairs\n",
              det.rare_nets().size(), det.matrix().edge_count());
  det.train();
  std::printf("training: %zu distinct sets, largest %zu\n", det.pool().size(),
              det.pool().max_set_size());
  const auto patterns = det.extract_patterns();
  std::printf("extracted %zu patterns\n", patterns.pattern_count());

  const std::string out = args.out().empty() ? bench.name + ".patterns" : args.out();
  sim::write_patterns_file(patterns, out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_evaluate(const Args& args) {
  auto bench = load_target(args.target);
  if (args.patterns().empty()) {
    std::fprintf(stderr, "evaluate requires -p <patterns.txt>\n");
    return 2;
  }
  const auto patterns = sim::read_patterns_file(args.patterns());
  if (patterns.input_count() != bench.scan.comb.inputs().size()) {
    std::fprintf(stderr, "pattern width %zu does not match design inputs %zu\n",
                 patterns.input_count(), bench.scan.comb.inputs().size());
    return 2;
  }

  util::Rng rng(args.seed());
  util::ThreadPool pool;
  analysis::RareNetConfig rcfg;
  rcfg.threshold = args.threshold();
  const auto rare = analysis::find_rare_nets(bench.scan.comb, rcfg, rng, &pool);
  sat::NetlistOracle oracle(bench.scan.comb);
  trojan::TrojanSampleConfig tcfg;
  tcfg.width = args.width();
  tcfg.count = args.trojans();
  const auto trojans = trojan::sample_trojans(bench.scan.comb, rare, tcfg, oracle, rng);

  const auto result = trojan::evaluate_coverage(bench.scan.comb, trojans, patterns);
  std::printf("%zu patterns vs %zu width-%u Trojans: %.1f%% trigger coverage\n",
              patterns.pattern_count(), trojans.size(), args.width(),
              result.coverage_percent());
  return 0;
}

int cmd_export(const Args& args) {
  auto bench = load_target(args.target);
  const std::string out = args.out().empty() ? bench.name + ".bench" : args.out();
  netlist::write_bench_file(bench.original, out);
  std::printf("wrote %s (%zu gates, %zu FFs)\n", out.c_str(),
              bench.original.gate_count(), bench.original.dffs().size());
  return 0;
}

// ------------------------------------------------------ staged commands ----

int require_session(const Args& args) {
  if (args.session().empty()) {
    std::fprintf(stderr, "%s requires --session <dir>\n", args.command.c_str());
    return 2;
  }
  return 0;
}

/// With --cache-dir (and without --no-cache), opens the shared artifact cache
/// and attaches it to the session so resume hydrates from it and save
/// publishes back. Returns the owning handle — keep it alive past save().
std::unique_ptr<core::ArtifactCache> open_cache(const Args& args,
                                                core::Session& session) {
  if (args.cache_dir().empty() || args.no_cache()) return nullptr;
  auto cache = std::make_unique<core::ArtifactCache>(args.cache_dir());
  session.attach_cache(cache.get());
  return cache;
}

int cmd_prepare(const Args& args) {
  if (const int rc = require_session(args)) return rc;
  auto bench = load_target(args.target);
  core::Session session(args.session(), bench.scan.comb);
  const auto cache = open_cache(args, session);
  const core::DeterrentConfig cfg =
      session.has_meta() ? session.load_config() : pipeline_config(args);
  auto pipeline = session.resume_with(cfg);

  auto status = pipeline->run_rare_nets(stage_control(args));
  if (status == core::StageStatus::Complete)
    status = pipeline->run_compatibility(stage_control(args));
  session.save(*pipeline);
  if (const int rc = report_status(status, session)) return rc;
  std::printf("prepared: %zu rare nets, %zu compatible pairs; artifacts in %s\n",
              pipeline->rare_nets().size(), pipeline->matrix().edge_count(),
              session.dir().c_str());
  return 0;
}

int cmd_train(const Args& args) {
  if (const int rc = require_session(args)) return rc;
  auto bench = load_target(args.target);
  core::Session session(args.session(), bench.scan.comb);
  const auto cache = open_cache(args, session);
  if (!session.has_meta()) {
    std::fprintf(stderr, "session %s has no meta artifact — run prepare first\n",
                 session.dir().c_str());
    return 2;
  }
  auto pipeline = session.resume();
  if (!pipeline->compatibility_done()) {
    std::fprintf(stderr, "session %s has no compatibility artifact — run prepare first\n",
                 session.dir().c_str());
    return 2;
  }

  // Without --updates, complete the configured training budget (resuming an
  // interrupted run); with --updates N, train exactly N more iterations.
  std::size_t updates;
  if (args.has("--updates")) {
    updates = args.updates();
  } else {
    const std::size_t target = pipeline->effective_updates();
    const std::size_t done = pipeline->history().size();
    if (done >= target) {
      std::printf("training already at %zu/%zu updates; pass --updates to continue\n",
                  done, target);
      return 0;
    }
    updates = target - done;
  }
  const auto status = pipeline->run_train(updates, stage_control(args));
  session.save(*pipeline);
  if (const int rc = report_status(status, session)) return rc;
  std::printf("trained to %zu updates: %zu distinct sets, largest %zu, %llu SAT queries\n",
              pipeline->history().size(), pipeline->pool().size(),
              pipeline->pool().max_set_size(),
              static_cast<unsigned long long>(pipeline->train_sat_queries()));
  return 0;
}

int cmd_extract(const Args& args) {
  if (const int rc = require_session(args)) return rc;
  auto bench = load_target(args.target);
  core::Session session(args.session(), bench.scan.comb);
  const auto cache = open_cache(args, session);
  if (!session.has_meta()) {
    std::fprintf(stderr, "session %s has no meta artifact — run prepare first\n",
                 session.dir().c_str());
    return 2;
  }
  auto pipeline = session.resume();
  if (!pipeline->compatibility_done()) {
    std::fprintf(stderr, "session %s has no compatibility artifact — run prepare first\n",
                 session.dir().c_str());
    return 2;
  }
  const auto status =
      pipeline->run_extract(args.has("--k") ? args.k() : 0, stage_control(args));
  session.save(*pipeline);
  if (const int rc = report_status(status, session)) return rc;
  write_pattern_text(*pipeline, args, bench.name);
  return 0;
}

int cmd_resume(const Args& args) {
  if (const int rc = require_session(args)) return rc;
  auto bench = load_target(args.target);
  core::Session session(args.session(), bench.scan.comb);
  const auto cache = open_cache(args, session);
  if (!session.has_meta()) {
    std::fprintf(stderr, "session %s has no meta artifact — run prepare first\n",
                 session.dir().c_str());
    return 2;
  }
  auto pipeline = session.resume();
  std::printf("resuming from stage %s\n", core::to_string(pipeline->next_stage()));
  const auto status = pipeline->run_remaining(stage_control(args));
  session.save(*pipeline);
  if (const int rc = report_status(status, session)) return rc;
  write_pattern_text(*pipeline, args, bench.name);
  return 0;
}

int cmd_campaign(const Args& args) {
  // Comma-separated profile/.bench list, or "all" for the built-in suite.
  std::vector<std::string> names;
  if (args.target == "all") {
    names = bench_gen::benchmark_names();
  } else {
    std::string rest = args.target;
    while (!rest.empty()) {
      const auto comma = rest.find(',');
      names.push_back(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    }
  }
  if (names.empty()) {
    std::fprintf(stderr, "campaign requires a circuit list or 'all'\n");
    return 2;
  }

  std::vector<bench_gen::Benchmark> benches;
  benches.reserve(names.size());
  for (const auto& name : names) benches.push_back(load_target(name));

  core::CampaignConfig cfg;
  cfg.base = pipeline_config(args);
  // Campaigns parallelize across circuits; keep the per-circuit phases
  // single-threaded so the box is not oversubscribed.
  cfg.base.offline_threads = 1;
  cfg.base.ppo.n_workers = 1;
  cfg.threads = args.threads();
  cfg.session_root = args.session();
  cfg.cache_dir = args.no_cache() ? "" : args.cache_dir();
  cfg.max_retries = args.retries();
  cfg.retry_backoff_ms = args.retry_backoff_ms();
  cfg.retry_backoff_cap_ms = args.retry_backoff_cap_ms();
  cfg.stage_timeout_seconds = args.stage_timeout();

  core::Campaign campaign(cfg);
  for (std::size_t i = 0; i < benches.size(); ++i)
    campaign.add(benches[i].name, benches[i].scan.comb);

  const std::size_t n_trojans = args.trojans();
  const unsigned width = args.width();
  if (n_trojans > 0) {
    campaign.set_evaluator([n_trojans, width](const core::CampaignCircuit& circuit,
                                              const core::Pipeline& pipeline,
                                              const sim::PatternSet& patterns) {
      sat::NetlistOracle oracle(*circuit.netlist);
      util::Rng rng(pipeline.config().seed ^ 0x7207a255u);
      trojan::TrojanSampleConfig tcfg;
      tcfg.width = width;
      tcfg.count = n_trojans;
      const auto trojans = trojan::sample_trojans(*circuit.netlist,
                                                  pipeline.rare_nets(), tcfg, oracle, rng);
      if (trojans.empty()) return -1.0;
      return trojan::evaluate_coverage(*circuit.netlist, trojans, patterns)
          .coverage_percent();
    });
  }

  const auto report = campaign.run(stage_control(args));
  std::printf("%s", report.to_table().c_str());

  // Distinct exit codes so wrappers can tell outcomes apart: 5 = nothing
  // succeeded and no retry will help; 4 = degraded success (quarantined
  // circuits, or survivors that needed retries/artifact recovery); 3 =
  // interrupted (cancel/budget) but resumable via the session root.
  if (report.quarantined == report.circuits.size()) return 5;
  bool resumable_stop = false;
  bool degraded = report.quarantined > 0;
  for (const auto& row : report.circuits) {
    if (row.ok && (row.attempts > 1 || !row.recovered.empty())) degraded = true;
    if (row.ok && row.status != core::StageStatus::Complete) resumable_stop = true;
  }
  if (report.completed == report.circuits.size()) return degraded ? 4 : 0;
  return resumable_stop && !degraded ? 3 : 4;
}

int cmd_cache(const Args& args) {
  if (args.cache_dir().empty()) {
    std::fprintf(stderr, "cache %s requires --cache-dir <dir>\n", args.target.c_str());
    return 2;
  }
  core::ArtifactCache cache(args.cache_dir());
  if (args.target == "stats") {
    const auto s = cache.stats();
    std::printf("cache %s: %llu entries, %llu bytes\n", cache.root().c_str(),
                static_cast<unsigned long long>(s.entries),
                static_cast<unsigned long long>(s.bytes));
    return 0;
  }
  if (args.target == "evict") {
    std::size_t removed;
    const std::string fp = args.flag_string("--fingerprint", "");
    if (fp.empty()) {
      removed = cache.evict_all();
    } else {
      removed = cache.evict_fingerprint(std::stoull(fp, nullptr, 16));
    }
    std::printf("evicted %zu entries from %s\n", removed, cache.root().c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown cache action '%s' (use stats or evict)\n",
               args.target.c_str());
  return 2;
}

void usage() {
  std::fprintf(stderr,
               "usage: deterrent_cli <lint|analyze|generate|evaluate|export|prepare|train|"
               "extract|resume|campaign|cache> <bench|name> [flags]\n"
               "  (see header comment for flags)\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "lint" && !args.target.empty()) return cmd_lint(args);
    if (args.command == "analyze" && !args.target.empty()) return cmd_analyze(args);
    if (args.command == "generate" && !args.target.empty()) return cmd_generate(args);
    if (args.command == "evaluate" && !args.target.empty()) return cmd_evaluate(args);
    if (args.command == "export" && !args.target.empty()) return cmd_export(args);
    if (args.command == "prepare" && !args.target.empty()) return cmd_prepare(args);
    if (args.command == "train" && !args.target.empty()) return cmd_train(args);
    if (args.command == "extract" && !args.target.empty()) return cmd_extract(args);
    if (args.command == "resume" && !args.target.empty()) return cmd_resume(args);
    if (args.command == "campaign" && !args.target.empty()) return cmd_campaign(args);
    if (args.command == "cache" && !args.target.empty()) return cmd_cache(args);
  } catch (const std::exception& e) {
    // Covers deterrent::Error plus std:: failures (bad flag values hitting
    // stoull/stod, filesystem errors) — a CLI typo must not SIGABRT.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 2;
}

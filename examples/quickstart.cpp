// Quickstart: run the complete DETERRENT pipeline on a small benchmark and
// check the generated test patterns against randomly inserted Trojans.
//
//   ./quickstart [benchmark_name | path/to/netlist.bench]
//
// Default benchmark: c2670_like. Any ISCAS `.bench` file also works.
#include <cstdio>
#include <string>

#include "bench_gen/library.hpp"
#include "core/deterrent.hpp"
#include "netlist/stats.hpp"
#include "trojan/coverage.hpp"
#include "trojan/trojan.hpp"
#include "util/timer.hpp"

using namespace deterrent;

int main(int argc, char** argv) {
  const std::string target = argc > 1 ? argv[1] : "c2670_like";
  const bool from_file = target.find(".bench") != std::string::npos;
  bench_gen::Benchmark bench = from_file ? bench_gen::load_benchmark_file(target)
                                         : bench_gen::load_benchmark(target);

  const auto stats = netlist::compute_stats(bench.scan.comb);
  std::printf("== DETERRENT quickstart on %s ==\n%s\n\n", bench.name.c_str(),
              stats.to_string().c_str());

  // 1. Configure the pipeline: rareness threshold 0.1 (the paper's default),
  //    a modest training budget, and 32 output patterns.
  core::DeterrentConfig config;
  config.rare.threshold = 0.1;
  config.updates = 20;
  config.k_patterns = 32;
  config.seed = 42;

  core::Deterrent deterrent(bench.scan.comb, config);

  // 2. Offline phase: rare nets + pairwise compatibility (Figure 4, left).
  util::Stopwatch watch;
  deterrent.prepare();
  std::printf("offline: %zu rare nets, %zu compatible pairs (%.2fs)\n",
              deterrent.rare_nets().size(), deterrent.matrix().edge_count(),
              watch.elapsed_seconds());

  // 3. Train the PPO agent on the compatible-set MDP.
  watch.restart();
  deterrent.train();
  std::printf("training: %zu distinct sets, largest = %zu rare nets (%.2fs)\n",
              deterrent.pool().size(), deterrent.pool().max_set_size(),
              watch.elapsed_seconds());

  // 4. Extract test patterns from the k largest compatible sets via SAT.
  const sim::PatternSet patterns = deterrent.extract_patterns();
  std::printf("extracted %zu test patterns\n\n", patterns.pattern_count());

  // 5. Adversary simulation: insert 100 random 4-width Trojans (validated by
  //    SAT) and measure trigger coverage.
  sat::NetlistOracle oracle(bench.scan.comb);
  util::Rng rng(7);
  trojan::TrojanSampleConfig tcfg;
  tcfg.width = 4;
  tcfg.count = 100;
  const auto trojans =
      trojan::sample_trojans(bench.scan.comb, deterrent.rare_nets(), tcfg, oracle, rng);

  const auto coverage = trojan::evaluate_coverage(bench.scan.comb, trojans, patterns);
  util::Rng rng2(8);
  const auto random_patterns =
      sim::PatternSet::random(bench.scan.comb.inputs().size(), 10000, rng2);
  const auto random_cov =
      trojan::evaluate_coverage(bench.scan.comb, trojans, random_patterns);

  std::printf("inserted %zu valid Trojans (width 4)\n", trojans.size());
  std::printf("DETERRENT : %5.1f%% trigger coverage with %zu patterns\n",
              coverage.coverage_percent(), patterns.pattern_count());
  std::printf("random    : %5.1f%% trigger coverage with %zu patterns\n",
              random_cov.coverage_percent(), random_patterns.pattern_count());
  return 0;
}

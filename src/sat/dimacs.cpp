#include "sat/dimacs.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace deterrent::sat {

Cnf read_dimacs(std::istream& in) {
  Cnf cnf;
  std::string token;
  bool header_seen = false;
  Clause current;
  std::size_t declared_clauses = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    if (!header_seen) {
      std::string p, fmt;
      ls >> p >> fmt >> cnf.var_count >> declared_clauses;
      if (p != "p" || fmt != "cnf" || ls.fail())
        throw Error("dimacs: malformed problem line: " + line);
      header_seen = true;
      continue;
    }
    long long v = 0;
    while (ls >> v) {
      if (v == 0) {
        cnf.clauses.push_back(current);
        current.clear();
      } else {
        const auto var = static_cast<Var>(std::abs(v) - 1);
        if (var >= cnf.var_count) throw Error("dimacs: literal out of range: " + line);
        current.push_back(mk_lit(var, v < 0));
      }
    }
  }
  if (!header_seen) throw Error("dimacs: missing problem line");
  if (!current.empty()) cnf.clauses.push_back(current);  // tolerate missing final 0
  return cnf;
}

Cnf read_dimacs_string(const std::string& text) {
  std::istringstream iss(text);
  return read_dimacs(iss);
}

void write_dimacs(const Cnf& cnf, std::ostream& out) {
  out << "p cnf " << cnf.var_count << ' ' << cnf.clauses.size() << '\n';
  for (const auto& clause : cnf.clauses) {
    for (const Lit l : clause)
      out << (sign_of(l) ? -static_cast<long long>(var_of(l)) - 1
                         : static_cast<long long>(var_of(l)) + 1)
          << ' ';
    out << "0\n";
  }
}

std::string write_dimacs_string(const Cnf& cnf) {
  std::ostringstream oss;
  write_dimacs(cnf, oss);
  return oss.str();
}

}  // namespace deterrent::sat

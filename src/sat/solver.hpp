#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "sat/types.hpp"
#include "util/rng.hpp"

namespace deterrent::sat {

/// Conflict-driven clause-learning SAT solver.
///
/// A from-scratch MiniSat-style engine standing in for the pycosat/PicoSAT
/// solver the paper uses (§4.1): two-literal watching, EVSIDS branching with
/// phase saving, first-UIP learning with local minimization, LBD-aware
/// learnt-clause reduction with arena compaction, Luby restarts, and an
/// assumptions interface for incremental queries. The compatibility oracle
/// keeps one Solver per netlist and issues thousands of assumption-based
/// solves against it, accumulating learnt clauses across queries.
///
/// Between query batches the solver can run an inprocessing pass (failed-
/// literal probing, binary-implication-graph SCC substitution, subsumption,
/// bounded variable elimination) that shrinks the clause database while
/// preserving satisfiability and models. Variables that may appear in future
/// assumptions must be frozen first — see docs/sat.md for the contract.
class Solver {
 public:
  enum class Result { Sat, Unsat, Unknown };

  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learnt_clauses = 0;
    std::uint64_t solves = 0;
    // Inprocessing counters.
    std::uint64_t inprocess_runs = 0;
    std::uint64_t failed_literals = 0;
    std::uint64_t equivalent_literals = 0;
    std::uint64_t eliminated_variables = 0;
    std::uint64_t subsumed_clauses = 0;
    std::uint64_t strengthened_clauses = 0;
    // Portfolio clause-sharing counters.
    std::uint64_t shared_exported = 0;
    std::uint64_t shared_imported = 0;
  };

  /// Pass selection and budgets for inprocess(). Defaults enable everything
  /// with budgets sized for between-query-batch use.
  struct InprocessConfig {
    bool probing = true;       ///< failed-literal probing at root level
    bool scc = true;           ///< binary-implication-graph SCC substitution
    bool subsumption = true;   ///< forward/backward subsumption + strengthening
    bool elimination = true;   ///< bounded variable elimination
    /// Propagation budget for the probing sweep (it is the only pass whose
    /// cost is not bounded by the database size).
    std::uint64_t probe_budget = 1u << 21;
    /// Variables occurring more often than this (per polarity) are not
    /// elimination candidates.
    std::uint32_t elim_occurrence_limit = 10;
    /// Elimination is skipped when it would produce a resolvent longer than
    /// this.
    std::uint32_t elim_clause_limit = 24;
  };

  Solver();

  /// Creates a fresh unassigned variable.
  Var new_var();

  /// Guarantees variables [0, n) exist.
  void ensure_vars(std::size_t n);

  std::size_t var_count() const { return assigns_.size(); }

  /// Adds a clause (empty span ⇒ immediate UNSAT). Returns false when the
  /// formula is already unsatisfiable at root level.
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// Solves under the given assumptions. `conflict_budget < 0` means no limit;
  /// otherwise the solver gives up with Result::Unknown after that many
  /// conflicts (used to bound pathological compatibility queries).
  ///
  /// Throws deterrent::Error when an assumption references a variable that
  /// inprocessing eliminated or substituted — freeze assumption variables.
  Result solve(std::span<const Lit> assumptions = {}, std::int64_t conflict_budget = -1);

  /// Model access, valid after the last solve() returned Sat. Variables
  /// removed by inprocessing are reconstructed to values satisfying the
  /// original formula.
  bool model_value(Var v) const { return model_[v] == LBool::True; }
  LBool model_lbool(Var v) const { return model_[v]; }

  /// After Unsat under assumptions: a subset of the assumptions that is
  /// already contradictory (the "failed assumptions" / unsat core).
  const std::vector<Lit>& conflict_core() const { return conflict_core_; }

  /// Randomizes saved phases; subsequent models differ across equivalent
  /// solves, which diversifies don't-care filling in generated test patterns.
  void randomize_phases(util::Rng& rng);

  /// False once the clause database is contradictory regardless of assumptions.
  bool okay() const { return ok_; }

  /// Cumulative counters since construction (monotone non-decreasing).
  const Stats& stats() const { return stats_; }

  /// Counters for the most recent solve() only (deltas; `solves` is 1).
  const Stats& last_solve_stats() const { return last_; }

  // --- inprocessing -------------------------------------------------------

  /// Marks a variable as off-limits for elimination and substitution. Any
  /// variable that may later appear in an assumption (or whose model value is
  /// read through means other than model_value) must be frozen before the
  /// first inprocess() call.
  void set_frozen(Var v, bool frozen = true) { frozen_[v] = frozen ? 1 : 0; }
  bool is_frozen(Var v) const { return frozen_[v] != 0; }
  bool is_eliminated(Var v) const { return eliminated_[v] != 0; }
  bool is_substituted(Var v) const { return subst_[v] != kUndefLit; }

  /// Runs the enabled simplification passes at root level. Returns false when
  /// the formula was proven unsatisfiable. Requires no partial assignment
  /// (every solve() returns at root level, so calling between queries is
  /// always legal).
  bool inprocess(const InprocessConfig& config);
  bool inprocess() { return inprocess(InprocessConfig()); }

  // --- portfolio hooks ----------------------------------------------------

  /// Cooperative cancellation: search polls `flag` and gives up with
  /// Result::Unknown once it is set. Pass nullptr to detach.
  void set_interrupt(const std::atomic<bool>* flag) { interrupt_ = flag; }

  /// With probability `probability` a decision picks a uniformly random
  /// unassigned variable instead of the top-activity one. Deterministic per
  /// (seed, query sequence); used for portfolio diversification.
  void set_random_branch(double probability, std::uint64_t seed);

  /// First Luby restart interval in conflicts (default 100); portfolio clones
  /// diversify restart cadence through this.
  void set_restart_base(std::uint32_t conflicts) { restart_first_ = conflicts; }

  /// Enables learnt-clause export: fresh learnts with LBD <= `max_lbd` (and
  /// all unit learnts) are copied into an internal buffer, at most
  /// `max_clauses` between take_exported() calls. `max_lbd` 0 disables.
  void set_share_export(std::uint32_t max_lbd, std::size_t max_clauses = 64);

  /// Drains the export buffer (cheap move; never touches search structures).
  std::vector<Clause> take_exported();

  /// Imports a clause learnt by a peer solver over the same encoding; must be
  /// called at root level (between queries). Literals are remapped through
  /// this solver's substitutions; clauses touching a variable this solver
  /// eliminated are dropped. Returns false when the import exposed root
  /// unsatisfiability.
  bool import_clause(std::span<const Lit> lits, std::uint32_t lbd);

 private:
  // --- clause arena ------------------------------------------------------
  using CRef = std::uint32_t;
  static constexpr CRef kCRefUndef = 0xffffffffu;

  // Layout per clause at offset c in arena_:
  //   arena_[c]   : header = (size << 2) | (dead << 1) | learnt
  //   arena_[c+1] : float activity (bit-cast)
  //   arena_[c+2] : LBD (learnt) / unused
  //   arena_[c+3 ...] : literals
  static constexpr std::uint32_t kHeaderWords = 3;

  std::uint32_t clause_size(CRef c) const { return arena_[c] >> 2; }
  bool clause_learnt(CRef c) const { return arena_[c] & 1u; }
  bool clause_dead(CRef c) const { return arena_[c] & 2u; }
  Lit* clause_lits(CRef c) { return reinterpret_cast<Lit*>(&arena_[c + kHeaderWords]); }
  const Lit* clause_lits(CRef c) const {
    return reinterpret_cast<const Lit*>(&arena_[c + kHeaderWords]);
  }
  float clause_activity(CRef c) const;
  void set_clause_activity(CRef c, float a);
  std::uint32_t clause_lbd(CRef c) const { return arena_[c + 2]; }
  void set_clause_lbd(CRef c, std::uint32_t lbd) { arena_[c + 2] = lbd; }

  CRef alloc_clause(std::span<const Lit> lits, bool learnt);
  void mark_dead(CRef c);
  void compact_arena();

  // --- assignment / trail -------------------------------------------------
  LBool value(Var v) const { return assigns_[v]; }
  LBool value(Lit p) const { return lit_value(assigns_[var_of(p)], p); }
  std::uint32_t decision_level() const {
    return static_cast<std::uint32_t>(trail_lim_.size());
  }
  void new_decision_level() { trail_lim_.push_back(static_cast<std::uint32_t>(trail_.size())); }
  void unchecked_enqueue(Lit p, CRef from);
  void cancel_until(std::uint32_t level);

  // --- search -------------------------------------------------------------
  CRef propagate();
  void attach_clause(CRef c);
  void analyze(CRef confl, std::vector<Lit>& out_learnt, std::uint32_t& out_btlevel,
               std::uint32_t& out_lbd);
  bool literal_redundant(Lit p);
  void analyze_final(Lit p);
  Lit pick_branch_lit();
  Result search(std::int64_t max_conflicts, std::span<const Lit> assumptions);
  void reduce_learnts();
  bool interrupted() const {
    return interrupt_ != nullptr && interrupt_->load(std::memory_order_relaxed);
  }

  /// Sort + dedup + root-simplify `lits` in place. Returns false when the
  /// clause needs no adding (tautology or satisfied at root); an empty result
  /// with true means root conflict.
  bool root_simplify(std::vector<Lit>& lits);

  // --- inprocessing (inprocess.cpp) ---------------------------------------
  bool branchable(Var v) const {
    return eliminated_[v] == 0 && subst_[v] == kUndefLit;
  }
  /// Follows substitution chains to the live representative literal.
  Lit resolve_subst(Lit p) const;
  bool probe_failed_literals(const InprocessConfig& config);
  bool run_clause_passes(const InprocessConfig& config);
  void extend_model();

  // --- VSIDS ---------------------------------------------------------------
  void var_bump(Var v);
  void var_decay() { var_inc_ /= kVarDecay; }
  void clause_bump(CRef c);
  void clause_decay() { cla_inc_ /= kClauseDecay; }
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_empty() const { return heap_.empty(); }
  bool heap_lt(Var a, Var b) const { return activity_[a] > activity_[b]; }
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);

  static double luby(double y, std::uint64_t i);

  static constexpr double kVarDecay = 0.95;
  static constexpr double kClauseDecay = 0.999;
  static constexpr std::uint32_t kRestartFirst = 100;

  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  /// One removed variable, in removal order. Substitution entries carry the
  /// representative literal; elimination entries carry the clauses resolved
  /// away. Model reconstruction replays the stack newest-first, so an entry
  /// may reference variables removed later (already reconstructed by then).
  struct ReconstructEntry {
    Var var = kNoVar;
    Lit equiv = kUndefLit;            // substitution: var ≡ equiv
    std::vector<Clause> clauses;      // elimination: clauses containing var
  };

  std::vector<std::uint32_t> arena_;
  std::vector<CRef> clauses_;  // problem clauses
  std::vector<CRef> learnts_;
  std::uint64_t dead_words_ = 0;

  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit.x
  std::vector<LBool> assigns_;
  std::vector<std::uint8_t> polarity_;  // saved phase: 1 ⇒ branch negative
  std::vector<double> activity_;
  std::vector<CRef> reason_;
  std::vector<std::uint32_t> level_;
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<Var> heap_;           // binary max-heap of decision candidates
  std::vector<std::uint32_t> heap_pos_;  // var → heap index, or npos
  static constexpr std::uint32_t kNotInHeap = 0xffffffffu;

  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<std::uint32_t> lbd_seen_;
  std::uint32_t lbd_stamp_ = 0;

  std::vector<LBool> model_;
  std::vector<Lit> conflict_core_;

  // Inprocessing state.
  std::vector<std::uint8_t> frozen_;
  std::vector<std::uint8_t> eliminated_;
  std::vector<Lit> subst_;  // kUndefLit ⇒ not substituted
  std::vector<ReconstructEntry> reconstruct_;

  // Portfolio state.
  const std::atomic<bool>* interrupt_ = nullptr;
  double random_branch_prob_ = 0.0;
  std::uint64_t branch_rng_ = 0;
  std::uint32_t restart_first_ = kRestartFirst;
  std::uint32_t share_max_lbd_ = 0;  // 0 ⇒ export disabled
  std::size_t share_max_clauses_ = 64;
  std::vector<Clause> export_buffer_;

  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  double max_learnts_ = 0.0;
  bool ok_ = true;
  Stats stats_;
  Stats last_;
};

}  // namespace deterrent::sat

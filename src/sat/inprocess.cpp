// Inprocessing passes for sat::Solver: failed-literal probing, binary
// implication graph SCC substitution, forward/backward subsumption with
// self-subsuming resolution, and bounded variable elimination (SatELite
// style). All passes run at root level between assumption-query batches and
// respect the frozen-variable set, so assumption variables survive untouched.
//
// Soundness of model reconstruction rests on one invariant: every removed
// variable pushes a ReconstructEntry in removal order, and an entry only
// references variables that were still live when it was created. Replaying
// the stack newest-first therefore always finds the referenced values already
// reconstructed.
#include <algorithm>
#include <optional>
#include <utility>

#include "sat/solver.hpp"
#include "util/assert.hpp"

namespace deterrent::sat {

namespace {

/// 64-bit variable signature for the fast subset pre-check: sig(C) ⊆ sig(D)
/// is necessary for C ⊆ D.
std::uint64_t clause_signature(const Clause& c) {
  std::uint64_t sig = 0;
  for (const Lit l : c) sig |= 1ull << (var_of(l) & 63u);
  return sig;
}

/// Subset test over clauses sorted by Lit.x.
bool is_subset(const Clause& small, const Clause& big) {
  std::size_t j = 0;
  for (const Lit l : small) {
    while (j < big.size() && big[j].x < l.x) ++j;
    if (j >= big.size() || big[j].x != l.x) return false;
    ++j;
  }
  return true;
}

/// Self-subsumption test: every literal of `c` except `flip` occurs in `d`,
/// and ¬flip occurs in `d`. When true, resolving c with d on flip yields
/// d \ {¬flip}, i.e. d can be strengthened. Both clauses sorted by Lit.x;
/// substituting ¬flip for flip keeps the probe sequence strictly increasing
/// because the two polarities of a variable have adjacent codes.
bool self_subsumes(const Clause& c, const Lit flip, const Clause& d) {
  std::size_t j = 0;
  for (const Lit l : c) {
    const Lit need = (l == flip) ? ~flip : l;
    while (j < d.size() && d[j].x < need.x) ++j;
    if (j >= d.size() || d[j].x != need.x) return false;
    ++j;
  }
  return true;
}

/// Resolvent of p (contains v) and n (contains ¬v) on v; nullopt when it is
/// a tautology. Inputs sorted; output sorted and deduped.
std::optional<Clause> resolve_on(const Clause& p, const Clause& n, const Var v) {
  Clause out;
  out.reserve(p.size() + n.size() - 2);
  for (const Lit l : p)
    if (var_of(l) != v) out.push_back(l);
  for (const Lit l : n)
    if (var_of(l) != v) out.push_back(l);
  std::sort(out.begin(), out.end(), [](Lit a, Lit b) { return a.x < b.x; });
  std::size_t j = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (j > 0 && out[i] == out[j - 1]) continue;
    if (j > 0 && out[i] == ~out[j - 1]) return std::nullopt;  // tautology
    out[j++] = out[i];
  }
  out.resize(j);
  return out;
}

using LearntClause = std::pair<Clause, std::uint32_t>;  // literals + LBD

}  // namespace

bool Solver::probe_failed_literals(const InprocessConfig& config) {
  const std::uint64_t budget_start = stats_.propagations;
  for (Var v = 0; v < static_cast<Var>(var_count()); ++v) {
    if (stats_.propagations - budget_start > config.probe_budget) break;
    if (value(v) != LBool::Undef || !branchable(v)) continue;
    for (int s = 0; s < 2; ++s) {
      if (value(v) != LBool::Undef) break;  // fixed by the first polarity
      const Lit probe = mk_lit(v, s == 1);
      new_decision_level();
      unchecked_enqueue(probe, kCRefUndef);
      const CRef confl = propagate();
      cancel_until(0);
      if (confl == kCRefUndef) continue;
      stats_.failed_literals++;
      const Lit forced = ~probe;
      if (value(forced) == LBool::False) {
        ok_ = false;
        return false;
      }
      if (value(forced) == LBool::Undef) {
        unchecked_enqueue(forced, kCRefUndef);
        if (propagate() != kCRefUndef) {
          ok_ = false;
          return false;
        }
      }
    }
  }
  return true;
}

bool Solver::run_clause_passes(const InprocessConfig& config) {
  // ---- extract a root-simplified CNF view --------------------------------
  // After fixpoint propagation no live clause can be unit or empty under the
  // root assignment, so every extracted clause has >= 2 unassigned literals.
  std::vector<Clause> problem;
  std::vector<LearntClause> learnt;
  problem.reserve(clauses_.size());
  learnt.reserve(learnts_.size());
  const auto extract = [&](const CRef c, const bool is_learnt) {
    if (clause_dead(c)) return;
    Clause out;
    const Lit* lits = clause_lits(c);
    const std::uint32_t size = clause_size(c);
    out.reserve(size);
    for (std::uint32_t k = 0; k < size; ++k) {
      const LBool lv = value(lits[k]);
      if (lv == LBool::True) return;  // satisfied at root: drop
      if (lv == LBool::False) continue;
      out.push_back(lits[k]);
    }
    DETERRENT_ASSERT(out.size() >= 2, "root propagation left a short clause");
    std::sort(out.begin(), out.end(), [](Lit a, Lit b) { return a.x < b.x; });
    if (is_learnt)
      learnt.emplace_back(std::move(out), clause_lbd(c));
    else
      problem.push_back(std::move(out));
  };
  for (const CRef c : clauses_) extract(c, false);
  for (const CRef c : learnts_) extract(c, true);

  std::vector<Lit> pending_units;
  // Variables constrained by a pending unit: their remaining clauses no
  // longer tell the whole story, so elimination must skip them.
  std::vector<std::uint8_t> has_pending(var_count(), 0);
  const auto push_unit = [&](const Lit u) {
    pending_units.push_back(u);
    has_pending[var_of(u)] = 1;
  };

  // ---- SCC equivalent-literal substitution -------------------------------
  if (config.scc) {
    // Binary implication graph over literals: clause (a ∨ b) contributes
    // edges ¬a → b and ¬b → a. Learnt binaries are implied, so they may
    // contribute too — more equivalences, same soundness.
    const std::size_t n_nodes = 2 * var_count();
    std::vector<std::vector<std::uint32_t>> adj(n_nodes);
    const auto add_bin = [&](const Clause& c) {
      if (c.size() != 2) return;
      adj[(~c[0]).x].push_back(c[1].x);
      adj[(~c[1]).x].push_back(c[0].x);
    };
    for (const auto& c : problem) add_bin(c);
    for (const auto& [c, lbd] : learnt) add_bin(c);

    // Iterative Tarjan.
    constexpr std::uint32_t kUnvisited = 0xffffffffu;
    std::vector<std::uint32_t> index(n_nodes, kUnvisited);
    std::vector<std::uint32_t> low(n_nodes, 0);
    std::vector<std::uint8_t> on_stack(n_nodes, 0);
    std::vector<std::uint32_t> scc_stack;
    struct Frame {
      std::uint32_t node;
      std::uint32_t child;
    };
    std::vector<Frame> call;
    std::uint32_t next_index = 0;
    std::vector<std::vector<std::uint32_t>> components;

    for (std::uint32_t root = 0; root < n_nodes; ++root) {
      if (index[root] != kUnvisited || adj[root].empty()) continue;
      index[root] = low[root] = next_index++;
      scc_stack.push_back(root);
      on_stack[root] = 1;
      call.push_back({root, 0});
      while (!call.empty()) {
        Frame& fr = call.back();
        if (fr.child < adj[fr.node].size()) {
          const std::uint32_t w = adj[fr.node][fr.child++];
          if (index[w] == kUnvisited) {
            index[w] = low[w] = next_index++;
            scc_stack.push_back(w);
            on_stack[w] = 1;
            call.push_back({w, 0});
          } else if (on_stack[w]) {
            low[fr.node] = std::min(low[fr.node], index[w]);
          }
        } else {
          if (low[fr.node] == index[fr.node]) {
            components.emplace_back();
            for (;;) {
              const std::uint32_t w = scc_stack.back();
              scc_stack.pop_back();
              on_stack[w] = 0;
              components.back().push_back(w);
              if (w == fr.node) break;
            }
          }
          const std::uint32_t done = fr.node;
          call.pop_back();
          if (!call.empty())
            low[call.back().node] = std::min(low[call.back().node], low[done]);
        }
      }
    }

    bool substituted_any = false;
    for (const auto& comp : components) {
      if (comp.size() < 2) continue;
      // l and ¬l in one SCC ⇒ l ≡ ¬l ⇒ UNSAT.
      std::vector<std::uint32_t> sorted(comp);
      std::sort(sorted.begin(), sorted.end());
      for (std::size_t i = 1; i < sorted.size(); ++i)
        if ((sorted[i] >> 1) == (sorted[i - 1] >> 1)) {
          ok_ = false;
          return false;
        }
      // Representative: prefer a frozen variable (it must survive), then the
      // lowest index for determinism.
      std::uint32_t rep = comp[0];
      for (const std::uint32_t lx : comp) {
        const bool better_frozen =
            frozen_[lx >> 1] != 0 && frozen_[rep >> 1] == 0;
        const bool same_frozen = (frozen_[lx >> 1] != 0) == (frozen_[rep >> 1] != 0);
        if (better_frozen || (same_frozen && (lx >> 1) < (rep >> 1))) rep = lx;
      }
      const Lit rep_lit{rep};
      for (const std::uint32_t lx : comp) {
        const Var u = lx >> 1;
        if (u == var_of(rep_lit)) continue;
        if (frozen_[u] != 0) continue;  // keep frozen members, lose the merge
        if (subst_[u] != kUndefLit || eliminated_[u] != 0) continue;
        // lit lx ≡ rep_lit, so u ≡ rep_lit with lx's sign folded in.
        subst_[u] = (lx & 1u) ? ~rep_lit : rep_lit;
        reconstruct_.push_back({u, subst_[u], {}});
        stats_.equivalent_literals++;
        substituted_any = true;
      }
    }

    if (substituted_any) {
      const auto rewrite = [&](Clause& c) -> bool {  // false ⇒ drop clause
        bool changed = false;
        for (Lit& l : c) {
          const Lit m = resolve_subst(l);
          changed = changed || m != l;
          l = m;
        }
        if (!changed) return true;
        std::sort(c.begin(), c.end(), [](Lit a, Lit b) { return a.x < b.x; });
        std::size_t j = 0;
        for (std::size_t i = 0; i < c.size(); ++i) {
          if (j > 0 && c[i] == c[j - 1]) continue;
          if (j > 0 && c[i] == ~c[j - 1]) return false;  // tautology
          c[j++] = c[i];
        }
        c.resize(j);
        if (c.size() == 1) {
          push_unit(c[0]);
          return false;  // promoted to a unit
        }
        return true;
      };
      // Compact in place; `j == i` would self-move-assign (which empties a
      // libstdc++ vector), so only move when the slots differ.
      std::size_t j = 0;
      for (std::size_t i = 0; i < problem.size(); ++i)
        if (rewrite(problem[i])) {
          if (j != i) problem[j] = std::move(problem[i]);
          ++j;
        }
      problem.resize(j);
      j = 0;
      for (std::size_t i = 0; i < learnt.size(); ++i)
        if (rewrite(learnt[i].first)) {
          if (j != i) learnt[j] = std::move(learnt[i]);
          ++j;
        }
      learnt.resize(j);
    }
  }

  // ---- subsumption / self-subsuming resolution ---------------------------
  if (config.subsumption) {
    // Victims: problem clauses then learnt clauses; only problem clauses act
    // as subsumers (learnts are disposable, strengthening them is free).
    const std::size_t n_problem = problem.size();
    const std::size_t n_all = n_problem + learnt.size();
    const auto victim = [&](const std::size_t i) -> Clause& {
      return i < n_problem ? problem[i] : learnt[i - n_problem].first;
    };
    std::vector<std::uint64_t> sig(n_all);
    std::vector<std::uint8_t> removed(n_all, 0);
    std::vector<std::vector<std::uint32_t>> occ(2 * var_count());
    for (std::size_t i = 0; i < n_all; ++i) {
      sig[i] = clause_signature(victim(i));
      for (const Lit l : victim(i))
        occ[l.x].push_back(static_cast<std::uint32_t>(i));
    }

    for (std::size_t i = 0; i < n_problem; ++i) {
      if (removed[i]) continue;
      const Clause& c = problem[i];
      // Backward subsumption through the sparsest occurrence list.
      Lit best = c[0];
      for (const Lit l : c)
        if (occ[l.x].size() < occ[best.x].size()) best = l;
      for (const std::uint32_t j : occ[best.x]) {
        if (j == i || removed[j]) continue;
        const Clause& d = victim(j);
        if (d.size() < c.size()) continue;
        if ((sig[i] & ~sig[j]) != 0) continue;
        if (is_subset(c, d)) {
          removed[j] = 1;
          stats_.subsumed_clauses++;
        }
      }
      // Self-subsuming resolution: strengthen d by dropping ¬l when
      // c \ {l} ⊆ d \ {¬l}.
      for (const Lit l : c) {
        for (const std::uint32_t j : occ[(~l).x]) {
          if (j == i || removed[j]) continue;
          Clause& d = victim(j);
          if (d.size() < c.size()) continue;
          if ((sig[i] & ~sig[j]) != 0) continue;
          if (!self_subsumes(c, l, d)) continue;  // also re-checks ¬l ∈ d
          d.erase(std::find(d.begin(), d.end(), ~l));
          sig[j] = clause_signature(d);
          stats_.strengthened_clauses++;
          if (d.size() == 1) {
            push_unit(d[0]);
            removed[j] = 1;
          }
        }
      }
    }

    std::size_t j = 0;
    for (std::size_t i = 0; i < problem.size(); ++i)
      if (!removed[i]) {
        if (j != i) problem[j] = std::move(problem[i]);  // j == i would self-move
        ++j;
      }
    problem.resize(j);
    j = 0;
    for (std::size_t i = 0; i < learnt.size(); ++i)
      if (!removed[n_problem + i]) {
        if (j != i) learnt[j] = std::move(learnt[i]);
        ++j;
      }
    learnt.resize(j);
  }

  // ---- bounded variable elimination --------------------------------------
  if (config.elimination) {
    std::vector<std::vector<std::uint32_t>> occ(2 * var_count());
    std::vector<std::uint8_t> removed(problem.size(), 0);
    for (std::size_t i = 0; i < problem.size(); ++i)
      for (const Lit l : problem[i])
        occ[l.x].push_back(static_cast<std::uint32_t>(i));

    for (Var v = 0; v < static_cast<Var>(var_count()); ++v) {
      if (frozen_[v] != 0 || !branchable(v) || value(v) != LBool::Undef ||
          has_pending[v] != 0)
        continue;
      const auto live = [&](const std::vector<std::uint32_t>& idx) {
        std::vector<std::uint32_t> out;
        out.reserve(idx.size());
        for (const std::uint32_t i : idx)
          if (!removed[i]) out.push_back(i);
        return out;
      };
      const auto pos = live(occ[mk_lit(v, false).x]);
      const auto neg = live(occ[mk_lit(v, true).x]);
      if (pos.empty() && neg.empty()) continue;  // v occurs nowhere
      if (pos.size() > config.elim_occurrence_limit ||
          neg.size() > config.elim_occurrence_limit)
        continue;

      std::vector<Clause> resolvents;
      resolvents.reserve(pos.size() * neg.size());
      bool too_big = false;
      for (const std::uint32_t pi : pos) {
        for (const std::uint32_t ni : neg) {
          auto r = resolve_on(problem[pi], problem[ni], v);
          if (!r.has_value()) continue;
          if (r->size() > config.elim_clause_limit) {
            too_big = true;
            break;
          }
          resolvents.push_back(std::move(*r));
        }
        if (too_big) break;
      }
      if (too_big || resolvents.size() > pos.size() + neg.size()) continue;

      // Commit: record the resolved-away clauses for model reconstruction,
      // retire them, add the resolvents.
      ReconstructEntry entry;
      entry.var = v;
      for (const std::uint32_t i : pos) {
        entry.clauses.push_back(problem[i]);
        removed[i] = 1;
      }
      for (const std::uint32_t i : neg) {
        entry.clauses.push_back(problem[i]);
        removed[i] = 1;
      }
      reconstruct_.push_back(std::move(entry));
      eliminated_[v] = 1;
      stats_.eliminated_variables++;
      for (Clause& r : resolvents) {
        if (r.size() == 1) {
          push_unit(r[0]);
          continue;
        }
        const auto idx = static_cast<std::uint32_t>(problem.size());
        for (const Lit l : r) occ[l.x].push_back(idx);
        problem.push_back(std::move(r));
        removed.push_back(0);
      }
      occ[mk_lit(v, false).x].clear();
      occ[mk_lit(v, true).x].clear();
    }

    std::size_t j = 0;
    for (std::size_t i = 0; i < problem.size(); ++i)
      if (!removed[i]) {
        if (j != i) problem[j] = std::move(problem[i]);  // j == i would self-move
        ++j;
      }
    problem.resize(j);
    // Learnt clauses mentioning an eliminated variable would need its
    // definition back to stay meaningful; drop them instead.
    std::erase_if(learnt, [&](const LearntClause& lc) {
      for (const Lit l : lc.first)
        if (eliminated_[var_of(l)] != 0) return true;
      return false;
    });
  }

  // ---- rebuild the clause database ---------------------------------------
  arena_.clear();
  clauses_.clear();
  learnts_.clear();
  dead_words_ = 0;
  for (auto& ws : watches_) ws.clear();
  // Everything on the trail is root-level; reasons are irrelevant there and
  // the old CRefs are gone.
  std::fill(reason_.begin(), reason_.end(), kCRefUndef);

  for (const Clause& c : problem) {
    DETERRENT_ASSERT(c.size() >= 2, "rebuild saw a short problem clause");
    const CRef cr = alloc_clause(c, false);
    clauses_.push_back(cr);
    attach_clause(cr);
  }
  for (const auto& [c, lbd] : learnt) {
    // alloc as non-learnt then tag, so re-adding survivors does not inflate
    // the learnt_clauses counter.
    const CRef cr = alloc_clause(c, false);
    arena_[cr] |= 1u;
    set_clause_lbd(cr, lbd);
    learnts_.push_back(cr);
    attach_clause(cr);
  }

  for (const Lit u0 : pending_units) {
    const Lit u = resolve_subst(u0);
    DETERRENT_ASSERT(eliminated_[var_of(u)] == 0, "pending unit on eliminated var");
    const LBool lv = value(u);
    if (lv == LBool::False) {
      ok_ = false;
      return false;
    }
    if (lv == LBool::Undef) unchecked_enqueue(u, kCRefUndef);
  }
  // Re-propagate the whole trail: resolvents may imply new units under the
  // existing root assignment.
  qhead_ = 0;
  if (propagate() != kCRefUndef) {
    ok_ = false;
    return false;
  }
  return true;
}

bool Solver::inprocess(const InprocessConfig& config) {
  DETERRENT_ASSERT(decision_level() == 0, "inprocess requires root level");
  if (!ok_) return false;
  if (propagate() != kCRefUndef) {
    ok_ = false;
    return false;
  }
  stats_.inprocess_runs++;
  if (config.probing && !probe_failed_literals(config)) return false;
  if ((config.scc || config.subsumption || config.elimination) &&
      !run_clause_passes(config))
    return false;
  return ok_;
}

void Solver::extend_model() {
  for (std::size_t i = reconstruct_.size(); i-- > 0;) {
    const ReconstructEntry& e = reconstruct_[i];
    if (e.equiv != kUndefLit) {
      model_[e.var] =
          lbool_from(lit_value(model_[var_of(e.equiv)], e.equiv) == LBool::True);
      continue;
    }
    // SatELite extension: the pivot defaults to false; flip it when some
    // recorded clause containing the positive pivot is unsatisfied by the
    // other literals. Clauses of the opposite polarity are then satisfied
    // because the model satisfies every resolvent.
    bool pivot_true = false;
    for (const Clause& c : e.clauses) {
      bool has_pos = false;
      bool satisfied = false;
      for (const Lit l : c) {
        if (var_of(l) == e.var) {
          has_pos = has_pos || !sign_of(l);
          continue;
        }
        if (lit_value(model_[var_of(l)], l) == LBool::True) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied && has_pos) {
        pivot_true = true;
        break;
      }
    }
    model_[e.var] = lbool_from(pivot_true);
  }
}

}  // namespace deterrent::sat

#include "sat/portfolio.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/faults.hpp"
#include "util/rng.hpp"
#include "util/watchdog.hpp"

namespace deterrent::sat {

std::size_t ClauseExchange::publish(std::size_t origin,
                                    std::vector<Clause>&& clauses) {
  // Fires even on an empty publish: the site models "the sharing channel
  // broke", not "a clause was lost", so the fault harness can hit it on
  // every query boundary.
  DETERRENT_FAULT_POINT("sat.portfolio.share");
  util::WatchdogScope::poll("sat.portfolio.share");
  if (clauses.empty()) return 0;
  std::lock_guard lock(mutex_);
  std::size_t accepted = 0;
  for (Clause& c : clauses) {
    if (pool_.size() >= capacity_) {
      ++dropped_;
      continue;
    }
    pool_.push_back({origin, std::move(c)});
    ++accepted;
  }
  return accepted;
}

std::size_t ClauseExchange::fetch(std::size_t cursor, std::size_t consumer,
                                  std::vector<Clause>& out) const {
  std::lock_guard lock(mutex_);
  for (; cursor < pool_.size(); ++cursor)
    if (pool_[cursor].origin != consumer) out.push_back(pool_[cursor].clause);
  return cursor;
}

std::size_t ClauseExchange::published() const {
  std::lock_guard lock(mutex_);
  return pool_.size();
}

std::uint64_t ClauseExchange::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

Portfolio::Portfolio(const PortfolioConfig& config, const EncodeFn& encode)
    : config_(config), exchange_(config.share_capacity) {
  DETERRENT_ASSERT(config.solvers >= 1, "portfolio needs at least one solver");
  solvers_.reserve(config.solvers);
  cursors_.assign(config.solvers, 0);
  for (std::size_t i = 0; i < config.solvers; ++i) {
    auto solver = std::make_unique<Solver>();
    encode(*solver, i);
    if (i > 0) {
      // Diversification: clone 0 stays vanilla (bit-identical to a plain
      // Solver); the rest spread out over phases, restart cadence, and a
      // sprinkle of random decisions.
      util::Rng rng(config.seed + 0x9e37u * i);
      solver->randomize_phases(rng);
      solver->set_random_branch(config.random_branch_prob, config.seed ^ i);
      solver->set_restart_base(
          static_cast<std::uint32_t>(100 + 37 * i + 13 * (i * i % 7)));
    }
    if (config.inprocess) solver->inprocess(config.passes);
    if (sharing_enabled())
      solver->set_share_export(config.share_lbd_cap, config.export_cap_per_solve);
    solvers_.push_back(std::move(solver));
  }
}

void Portfolio::import_fresh(std::size_t clone) {
  if (!sharing_enabled()) return;
  std::vector<Clause> fresh;
  cursors_[clone] = exchange_.fetch(cursors_[clone], clone, fresh);
  Solver& s = *solvers_[clone];
  for (const Clause& c : fresh)
    s.import_clause(c, static_cast<std::uint32_t>(c.size()));
}

void Portfolio::publish_exports(std::size_t clone) {
  if (!sharing_enabled()) return;
  exchange_.publish(clone, solvers_[clone]->take_exported());
}

std::vector<Solver::Result> Portfolio::solve_batch(std::span<const Query> queries,
                                                   util::ThreadPool* pool) {
  if (sharing_enabled()) {
    // Tick the share fault site once per batch even when the query list is
    // empty, so fault campaigns reach it deterministically.
    DETERRENT_FAULT_POINT("sat.portfolio.share");
    util::WatchdogScope::poll("sat.portfolio.share");
  }
  std::vector<Solver::Result> results(queries.size(), Solver::Result::Unknown);
  if (queries.empty()) return results;

  const auto run_query = [&](const std::size_t clone, const std::size_t q) {
    import_fresh(clone);
    results[q] =
        solvers_[clone]->solve(queries[q].assumptions, queries[q].conflict_budget);
    publish_exports(clone);
  };

  if (pool != nullptr && pool->thread_count() > 1 && solvers_.size() > 1 &&
      queries.size() > 1) {
    next_query_.store(0, std::memory_order_relaxed);
    const std::size_t n_queries = queries.size();
    for (std::size_t clone = 0; clone < solvers_.size(); ++clone) {
      pool->submit([this, n_queries, &run_query, clone] {
        for (;;) {
          const std::size_t q = next_query_.fetch_add(1, std::memory_order_relaxed);
          if (q >= n_queries) break;
          run_query(clone, q);
        }
      });
    }
    pool->wait_idle();
  } else {
    // Sequential fallback: round-robin so clause exchange still happens, in a
    // fully deterministic order.
    for (std::size_t q = 0; q < queries.size(); ++q)
      run_query(q % solvers_.size(), q);
  }
  return results;
}

Solver::Result Portfolio::solve_one(std::span<const Lit> assumptions,
                                    util::ThreadPool* pool,
                                    std::int64_t conflict_budget) {
  winner_ = 0;
  if (pool == nullptr || pool->thread_count() <= 1 || solvers_.size() == 1)
    return solvers_[0]->solve(assumptions, conflict_budget);

  std::atomic<bool> stop{false};
  std::atomic<int> winner{-1};
  std::vector<Solver::Result> results(solvers_.size(), Solver::Result::Unknown);
  for (std::size_t i = 0; i < solvers_.size(); ++i) {
    pool->submit([this, &assumptions, &stop, &winner, &results, conflict_budget, i] {
      Solver& s = *solvers_[i];
      s.set_interrupt(&stop);
      import_fresh(i);
      results[i] = s.solve(assumptions, conflict_budget);
      publish_exports(i);
      s.set_interrupt(nullptr);
      if (results[i] != Solver::Result::Unknown) {
        int expected = -1;
        if (winner.compare_exchange_strong(expected, static_cast<int>(i)))
          stop.store(true, std::memory_order_relaxed);
      }
    });
  }
  pool->wait_idle();
  const int w = winner.load(std::memory_order_relaxed);
  winner_ = w < 0 ? 0 : static_cast<std::size_t>(w);
  return w < 0 ? Solver::Result::Unknown : results[winner_];
}

Portfolio::ShareStats Portfolio::share_stats() const {
  ShareStats stats;
  for (const auto& s : solvers_) {
    stats.exported += s->stats().shared_exported;
    stats.imported += s->stats().shared_imported;
  }
  stats.published = exchange_.published();
  stats.dropped = exchange_.dropped();
  return stats;
}

}  // namespace deterrent::sat

#include "sat/encoder.hpp"

#include <functional>

#include "util/assert.hpp"

namespace deterrent::sat {

using netlist::GateType;
using netlist::NetId;

namespace {

/// Sink abstraction so one encoding routine feeds either a Solver or a Cnf.
struct ClauseSink {
  std::function<Var()> new_var;
  std::function<void(std::span<const Lit>)> add;
};

void encode_into(const netlist::Netlist& nl, ClauseSink& sink) {
  if (nl.is_sequential())
    throw Error(
        "encode_netlist requires a combinational netlist; apply make_full_scan "
        "to sequential designs first");

  // Nets own variables [0, net_count); create them all up front.
  for (NetId id = 0; id < nl.net_count(); ++id) {
    [[maybe_unused]] const Var v = sink.new_var();
    DETERRENT_ASSERT(v == id, "net variables must be dense from 0");
  }

  auto add = [&sink](std::initializer_list<Lit> lits) {
    sink.add(std::span<const Lit>(lits.begin(), lits.size()));
  };

  // y <-> a XOR b, for pre-existing variables.
  auto encode_xor2 = [&](Var y, Var a, Var b) {
    add({mk_lit(y, true), mk_lit(a), mk_lit(b)});
    add({mk_lit(y, true), mk_lit(a, true), mk_lit(b, true)});
    add({mk_lit(y), mk_lit(a), mk_lit(b, true)});
    add({mk_lit(y), mk_lit(a, true), mk_lit(b)});
  };

  for (NetId id = 0; id < nl.net_count(); ++id) {
    const GateType type = nl.type(id);
    const auto fanins = nl.fanins(id);
    const Var y = id;
    switch (type) {
      case GateType::Input:
        break;  // free variable
      case GateType::Const0:
        add({mk_lit(y, true)});
        break;
      case GateType::Const1:
        add({mk_lit(y)});
        break;
      case GateType::Buf:
        add({mk_lit(y, true), mk_lit(fanins[0])});
        add({mk_lit(y), mk_lit(fanins[0], true)});
        break;
      case GateType::Not:
        add({mk_lit(y, true), mk_lit(fanins[0], true)});
        add({mk_lit(y), mk_lit(fanins[0])});
        break;
      case GateType::And:
      case GateType::Nand: {
        // z = AND(fanins); y = z (And) or y = ~z (Nand).
        const bool inv = type == GateType::Nand;
        std::vector<Lit> big;
        big.reserve(fanins.size() + 1);
        big.push_back(mk_lit(y, inv));  // And: y ∨ ¬a1 ∨ …  Nand: ¬y ∨ ¬a1 ∨ …
        for (const NetId a : fanins) {
          add({mk_lit(y, !inv), mk_lit(a)});  // And: ¬y ∨ a,  Nand: y ∨ a
          big.push_back(mk_lit(a, true));
        }
        sink.add(big);
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        const bool inv = type == GateType::Nor;
        std::vector<Lit> big;
        big.reserve(fanins.size() + 1);
        big.push_back(mk_lit(y, inv ? false : true));  // Or: ¬y ∨ a1 ∨ …  Nor: y ∨ a1 ∨ …
        for (const NetId a : fanins) {
          add({mk_lit(y, inv), mk_lit(a, true)});  // Or: y∨¬a, Nor: ¬y∨¬a
          big.push_back(mk_lit(a));
        }
        sink.add(big);
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        const bool inv = type == GateType::Xnor;
        if (fanins.size() == 1) {
          // Degenerate arity: XOR(a) = a, XNOR(a) = ¬a.
          add({mk_lit(y, true), mk_lit(fanins[0], inv)});
          add({mk_lit(y), mk_lit(fanins[0], !inv)});
          break;
        }
        // Left-fold parity chain with auxiliary variables; the final stage
        // writes directly into y (inverted for XNOR).
        Var acc = fanins[0];
        for (std::size_t k = 1; k + 1 < fanins.size(); ++k) {
          const Var aux = sink.new_var();
          encode_xor2(aux, acc, fanins[k]);
          acc = aux;
        }
        const Var last = fanins[fanins.size() - 1];
        if (!inv) {
          encode_xor2(y, acc, last);
        } else {
          // y <-> ~(acc ^ last)  ==  y <-> (acc ^ ~last)
          add({mk_lit(y, true), mk_lit(acc), mk_lit(last, true)});
          add({mk_lit(y, true), mk_lit(acc, true), mk_lit(last)});
          add({mk_lit(y), mk_lit(acc), mk_lit(last)});
          add({mk_lit(y), mk_lit(acc, true), mk_lit(last, true)});
        }
        break;
      }
      case GateType::Dff:
        DETERRENT_ASSERT(false, "unreachable: sequential netlists rejected above");
    }
  }
}

}  // namespace

void encode_netlist(const netlist::Netlist& netlist, Solver& solver) {
  ClauseSink sink{
      [&solver] { return solver.new_var(); },
      [&solver](std::span<const Lit> lits) { solver.add_clause(lits); },
  };
  encode_into(netlist, sink);
}

Cnf encode_netlist_cnf(const netlist::Netlist& netlist) {
  Cnf cnf;
  ClauseSink sink{
      [&cnf] { return static_cast<Var>(cnf.var_count++); },
      [&cnf](std::span<const Lit> lits) {
        cnf.clauses.emplace_back(lits.begin(), lits.end());
      },
  };
  encode_into(netlist, sink);
  return cnf;
}

}  // namespace deterrent::sat

#pragma once

#include "netlist/netlist.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "sat/types.hpp"

namespace deterrent::sat {

/// Tseitin-encodes a combinational netlist into a solver.
///
/// Variable i corresponds to net i for i in [0, net_count); auxiliary
/// variables for n-ary XOR/XNOR decomposition are allocated above that range.
/// Primary inputs become free variables, so any model restricted to the input
/// variables is a concrete test pattern.
///
/// Sequential netlists are rejected — apply netlist::make_full_scan first,
/// mirroring the paper's full-scan assumption (§4.1); the scan view keeps net
/// ids stable so constraints transfer unchanged.
void encode_netlist(const netlist::Netlist& netlist, Solver& solver);

/// Same encoding, but into a standalone CNF container (for DIMACS export and
/// for differential testing of the encoder against logic simulation).
Cnf encode_netlist_cnf(const netlist::Netlist& netlist);

}  // namespace deterrent::sat

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace deterrent::sat {

/// A CNF formula in memory: variable count plus clause list. Used by the
/// test-suite (random-formula fuzzing against a brute-force oracle) and for
/// exporting compatibility queries for external inspection.
struct Cnf {
  std::size_t var_count = 0;
  std::vector<Clause> clauses;
};

/// Parses DIMACS CNF ("p cnf <vars> <clauses>" + terminated clause lines).
/// Comment lines (c ...) are skipped; malformed input throws deterrent::Error.
Cnf read_dimacs(std::istream& in);
Cnf read_dimacs_string(const std::string& text);

void write_dimacs(const Cnf& cnf, std::ostream& out);
std::string write_dimacs_string(const Cnf& cnf);

}  // namespace deterrent::sat

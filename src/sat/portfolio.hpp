#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "sat/solver.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::sat {

/// Knobs for a clause-sharing solver portfolio.
struct PortfolioConfig {
  /// Number of solver clones. 1 degenerates to a plain (bit-reproducible)
  /// single solver.
  std::size_t solvers = 4;
  /// Learnt clauses with LBD <= this cap are exchanged between clones;
  /// 0 disables sharing entirely.
  std::uint32_t share_lbd_cap = 6;
  /// Hard cap on clauses held by the exchange; past it new exports are
  /// counted as dropped (bounds memory on pathological workloads).
  std::size_t share_capacity = 1 << 14;
  /// At most this many clauses leave one clone per query.
  std::size_t export_cap_per_solve = 64;
  /// Seed for clone diversification (phases, random branching).
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Random-decision probability on clones >= 1 (clone 0 stays vanilla so a
  /// 1-clone portfolio matches the plain solver decision-for-decision).
  double random_branch_prob = 0.02;
  /// Run one inprocessing pass per clone right after encoding.
  bool inprocess = false;
  Solver::InprocessConfig passes;
};

/// Lock-light learnt-clause exchange: clones publish and fetch only at query
/// boundaries, so the mutex is taken O(1) times per query and never inside
/// search. The pool is append-only; consumers keep a cursor into the monotone
/// published stream.
class ClauseExchange {
 public:
  explicit ClauseExchange(std::size_t capacity) : capacity_(capacity) {}

  /// Appends clauses up to capacity (excess counts as dropped). Returns the
  /// number accepted. This is the `sat.portfolio.share` fault site.
  std::size_t publish(std::size_t origin, std::vector<Clause>&& clauses);

  /// Copies every clause published after `cursor` by a clone other than
  /// `consumer` into `out`; returns the cursor to pass next time.
  std::size_t fetch(std::size_t cursor, std::size_t consumer,
                    std::vector<Clause>& out) const;

  std::size_t published() const;
  std::uint64_t dropped() const;

 private:
  struct Entry {
    std::size_t origin;
    Clause clause;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> pool_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
};

/// N diversified solver clones over one encoding, cooperating through the
/// clause exchange. Two modes:
///  - solve_batch(): clones race down one shared query list (each query is
///    solved by exactly one clone), importing peers' learnts between queries.
///    This is the compatibility-matrix workhorse.
///  - solve_one(): every clone attacks the same assumptions; the first
///    finisher interrupts the rest (model/core read through winner()).
///
/// Answers (Sat/Unsat) are deterministic; which clone answers, and Unknown
/// classification under a conflict budget, may vary with scheduling when a
/// thread pool is used. The sequential fallback (no pool) is fully
/// deterministic including clause exchange.
class Portfolio {
 public:
  /// Called once per clone at construction to encode the formula (and freeze
  /// assumption variables when inprocessing is on).
  using EncodeFn = std::function<void(Solver&, std::size_t clone)>;

  struct Query {
    std::vector<Lit> assumptions;
    std::int64_t conflict_budget = -1;
  };

  Portfolio(const PortfolioConfig& config, const EncodeFn& encode);

  std::size_t solver_count() const { return solvers_.size(); }
  Solver& solver(std::size_t i) { return *solvers_[i]; }
  const Solver& solver(std::size_t i) const { return *solvers_[i]; }

  /// Solves each query once; results[i] answers queries[i]. Queries are
  /// distributed dynamically across clones (over `pool` when it has >1
  /// thread, else round-robin sequentially).
  std::vector<Solver::Result> solve_batch(std::span<const Query> queries,
                                          util::ThreadPool* pool = nullptr);

  /// Race mode: all clones solve the same assumptions, first finisher cancels
  /// the rest. Model / conflict core are read through winner_solver().
  Solver::Result solve_one(std::span<const Lit> assumptions,
                           util::ThreadPool* pool = nullptr,
                           std::int64_t conflict_budget = -1);

  std::size_t winner() const { return winner_; }
  const Solver& winner_solver() const { return *solvers_[winner_]; }

  struct ShareStats {
    std::uint64_t exported = 0;   ///< clauses clones offered for exchange
    std::uint64_t imported = 0;   ///< peer clauses attached across all clones
    std::uint64_t published = 0;  ///< clauses accepted by the exchange
    std::uint64_t dropped = 0;    ///< clauses refused (capacity)
  };
  ShareStats share_stats() const;

 private:
  bool sharing_enabled() const {
    return solvers_.size() > 1 && config_.share_lbd_cap > 0;
  }
  void import_fresh(std::size_t clone);
  void publish_exports(std::size_t clone);

  PortfolioConfig config_;
  std::vector<std::unique_ptr<Solver>> solvers_;
  std::vector<std::size_t> cursors_;  // per-clone exchange cursor
  ClauseExchange exchange_;
  std::atomic<std::size_t> next_query_{0};
  std::size_t winner_ = 0;
};

}  // namespace deterrent::sat

#pragma once

#include <optional>

#include "netlist/netlist.hpp"
#include "sim/pattern.hpp"

namespace deterrent::sat {

/// Result of a combinational equivalence check between two netlists.
struct EquivalenceResult {
  bool equivalent = false;
  /// When not equivalent: an input pattern on which some pair of
  /// corresponding outputs differs (a counterexample / distinguishing test).
  std::optional<sim::Pattern> counterexample;
  /// Index (into outputs()) of the first differing output for the
  /// counterexample, when present.
  std::size_t differing_output = 0;
};

/// SAT-based combinational equivalence check via a miter: the two designs
/// share primary inputs (paired positionally — they must agree in input
/// count and output count), corresponding outputs feed XORs, and the solver
/// searches for an input making any XOR fire.
///
/// This is how a defender proves an HT-infected design is NOT functionally
/// identical to the golden one — and conversely how the Trojan tests verify
/// that apply_trojan only diverges when the trigger fires (a width-w rare
/// trigger makes the counterexample search itself solve the trigger
/// activation problem, which is the paper's point about why HTs survive
/// verification).
EquivalenceResult check_equivalence(const netlist::Netlist& left,
                                    const netlist::Netlist& right,
                                    std::int64_t conflict_budget = -1);

}  // namespace deterrent::sat

#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>

#include "util/assert.hpp"

namespace deterrent::sat {

Solver::Solver() = default;

float Solver::clause_activity(CRef c) const {
  float a;
  std::memcpy(&a, &arena_[c + 1], sizeof(float));
  return a;
}

void Solver::set_clause_activity(CRef c, float a) {
  std::memcpy(&arena_[c + 1], &a, sizeof(float));
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  polarity_.push_back(1);  // branch negative first, MiniSat default
  activity_.push_back(0.0);
  reason_.push_back(kCRefUndef);
  level_.push_back(0);
  seen_.push_back(0);
  lbd_seen_.push_back(0);
  heap_pos_.push_back(kNotInHeap);
  frozen_.push_back(0);
  eliminated_.push_back(0);
  subst_.push_back(kUndefLit);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

void Solver::ensure_vars(std::size_t n) {
  while (assigns_.size() < n) new_var();
}

Solver::CRef Solver::alloc_clause(std::span<const Lit> lits, bool learnt) {
  const CRef c = static_cast<CRef>(arena_.size());
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << 2) |
                   (learnt ? 1u : 0u));
  arena_.push_back(0);  // activity
  arena_.push_back(0);  // lbd
  for (Lit l : lits) arena_.push_back(l.x);
  if (learnt) stats_.learnt_clauses++;
  return c;
}

void Solver::mark_dead(CRef c) {
  DETERRENT_ASSERT(!clause_dead(c), "clause already dead");
  dead_words_ += kHeaderWords + clause_size(c);
  arena_[c] |= 2u;
}

void Solver::attach_clause(CRef c) {
  const Lit* lits = clause_lits(c);
  DETERRENT_ASSERT(clause_size(c) >= 2, "attaching a short clause");
  watches_[(~lits[0]).x].push_back({c, lits[1]});
  watches_[(~lits[1]).x].push_back({c, lits[0]});
}

bool Solver::root_simplify(std::vector<Lit>& lits) {
  std::sort(lits.begin(), lits.end(), [](Lit a, Lit b) { return a.x < b.x; });

  // Dedup, drop root-false literals, detect tautologies and root-true lits.
  std::size_t j = 0;
  Lit prev = kUndefLit;
  for (Lit l : lits) {
    DETERRENT_ASSERT(var_of(l) < var_count(), "literal references unknown variable");
    if (l == prev) continue;
    if (prev != kUndefLit && l == ~prev) return false;  // tautology: p ∨ ¬p
    const LBool v = value(l);
    if (v == LBool::True) return false;  // satisfied at root
    if (v == LBool::False) {
      prev = l;
      continue;  // drop root-false literal
    }
    lits[j++] = l;
    prev = l;
  }
  lits.resize(j);
  return true;
}

bool Solver::add_clause(std::span<const Lit> lits_in) {
  DETERRENT_ASSERT(decision_level() == 0, "add_clause requires root level");
  if (!ok_) return false;

  std::vector<Lit> lits(lits_in.begin(), lits_in.end());
  if (!root_simplify(lits)) return true;

  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  if (lits.size() == 1) {
    unchecked_enqueue(lits[0], kCRefUndef);
    if (propagate() != kCRefUndef) ok_ = false;
    return ok_;
  }
  const CRef c = alloc_clause(lits, false);
  clauses_.push_back(c);
  attach_clause(c);
  return true;
}

Lit Solver::resolve_subst(Lit p) const {
  while (subst_[var_of(p)] != kUndefLit) {
    const Lit s = subst_[var_of(p)];
    p = sign_of(p) ? ~s : s;
  }
  return p;
}

bool Solver::import_clause(std::span<const Lit> lits_in, std::uint32_t lbd) {
  DETERRENT_ASSERT(decision_level() == 0, "import_clause requires root level");
  if (!ok_) return false;

  std::vector<Lit> lits;
  lits.reserve(lits_in.size());
  for (const Lit l : lits_in) {
    DETERRENT_ASSERT(var_of(l) < var_count(), "imported literal references unknown variable");
    const Lit m = resolve_subst(l);
    // A clause naming a variable this solver resolved away would need the
    // eliminated definition re-introduced to stay sound; not worth it.
    if (eliminated_[var_of(m)]) return true;
    lits.push_back(m);
  }
  if (!root_simplify(lits)) return true;

  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  stats_.shared_imported++;
  if (lits.size() == 1) {
    unchecked_enqueue(lits[0], kCRefUndef);
    if (propagate() != kCRefUndef) ok_ = false;
    return ok_;
  }
  const CRef c = alloc_clause(lits, true);
  learnts_.push_back(c);
  set_clause_lbd(c, std::max(lbd, 2u));
  attach_clause(c);
  return true;
}

void Solver::set_random_branch(double probability, std::uint64_t seed) {
  random_branch_prob_ = probability;
  // splitmix64 step so seed 0 still yields a usable stream
  branch_rng_ = seed + 0x9e3779b97f4a7c15ull;
}

void Solver::set_share_export(std::uint32_t max_lbd, std::size_t max_clauses) {
  share_max_lbd_ = max_lbd;
  share_max_clauses_ = max_clauses;
}

std::vector<Clause> Solver::take_exported() {
  return std::exchange(export_buffer_, {});
}

void Solver::unchecked_enqueue(Lit p, CRef from) {
  const Var v = var_of(p);
  DETERRENT_ASSERT(value(v) == LBool::Undef, "enqueue on assigned var");
  assigns_[v] = lbool_from(!sign_of(p));
  level_[v] = decision_level();
  reason_[v] = from;
  trail_.push_back(p);
}

void Solver::cancel_until(std::uint32_t level) {
  if (decision_level() <= level) return;
  for (std::size_t c = trail_.size(); c-- > trail_lim_[level];) {
    const Var x = var_of(trail_[c]);
    assigns_[x] = LBool::Undef;
    polarity_[x] = sign_of(trail_[c]);  // phase saving
    if (heap_pos_[x] == kNotInHeap) heap_insert(x);
  }
  qhead_ = trail_lim_[level];
  trail_.resize(trail_lim_[level]);
  trail_lim_.resize(level);
}

Solver::CRef Solver::propagate() {
  CRef confl = kCRefUndef;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p became true; check clauses watching ~p
    stats_.propagations++;
    auto& ws = watches_[p.x];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (clause_dead(w.cref)) {
        ++i;  // lazily drop watchers of reduced clauses
        continue;
      }
      if (value(w.blocker) == LBool::True) {
        ws[j++] = ws[i++];
        continue;
      }
      const CRef c = w.cref;
      Lit* lits = clause_lits(c);
      const std::uint32_t size = clause_size(c);
      const Lit false_lit = ~p;
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      DETERRENT_ASSERT(lits[1] == false_lit, "watch invariant violated");
      ++i;

      const Lit first = lits[0];
      if (first != w.blocker && value(first) == LBool::True) {
        ws[j++] = {c, first};
        continue;
      }
      bool found_watch = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        if (value(lits[k]) != LBool::False) {
          std::swap(lits[1], lits[k]);
          watches_[(~lits[1]).x].push_back({c, first});
          found_watch = true;
          break;
        }
      }
      if (found_watch) continue;

      // Clause is unit under the current assignment, or conflicting.
      ws[j++] = {c, first};
      if (value(first) == LBool::False) {
        confl = c;
        qhead_ = trail_.size();
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        unchecked_enqueue(first, c);
      }
    }
    ws.resize(j);
  }
  return confl;
}

void Solver::analyze(CRef confl, std::vector<Lit>& out_learnt,
                     std::uint32_t& out_btlevel, std::uint32_t& out_lbd) {
  int path_count = 0;
  Lit p = kUndefLit;
  out_learnt.clear();
  out_learnt.push_back(kUndefLit);  // slot for the asserting literal
  std::size_t index = trail_.size() - 1;

  do {
    DETERRENT_ASSERT(confl != kCRefUndef, "analyze without reason");
    clause_bump(confl);
    const Lit* lits = clause_lits(confl);
    const std::uint32_t size = clause_size(confl);
    for (std::uint32_t k = (p == kUndefLit ? 0 : 1); k < size; ++k) {
      const Lit q = lits[k];
      const Var v = var_of(q);
      if (!seen_[v] && level_[v] > 0) {
        var_bump(v);
        seen_[v] = 1;
        if (level_[v] >= decision_level())
          ++path_count;
        else
          out_learnt.push_back(q);
      }
    }
    while (!seen_[var_of(trail_[index--])]) {
    }
    p = trail_[index + 1];
    confl = reason_[var_of(p)];
    seen_[var_of(p)] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Local minimization: a literal is redundant when its entire reason clause
  // is already implied by the rest of the learnt clause (all antecedents seen
  // or fixed at root level).
  std::vector<Lit> to_clear(out_learnt.begin(), out_learnt.end());
  std::size_t j = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    const Var v = var_of(out_learnt[i]);
    const CRef r = reason_[v];
    bool redundant = false;
    if (r != kCRefUndef) {
      redundant = true;
      const Lit* rl = clause_lits(r);
      const std::uint32_t rs = clause_size(r);
      for (std::uint32_t k = 1; k < rs; ++k) {
        const Var rv = var_of(rl[k]);
        if (!seen_[rv] && level_[rv] > 0) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) out_learnt[j++] = out_learnt[i];
  }
  out_learnt.resize(j);

  // Backtrack level: second-highest decision level in the clause.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i)
      if (level_[var_of(out_learnt[i])] > level_[var_of(out_learnt[max_i])]) max_i = i;
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[var_of(out_learnt[1])];
  }

  // LBD = number of distinct decision levels among the learnt literals.
  ++lbd_stamp_;
  out_lbd = 0;
  for (Lit l : out_learnt) {
    const std::uint32_t lvl = level_[var_of(l)];
    if (lvl > 0 && lbd_seen_[lvl % lbd_seen_.size()] != lbd_stamp_) {
      lbd_seen_[lvl % lbd_seen_.size()] = lbd_stamp_;
      ++out_lbd;
    }
  }

  for (Lit l : to_clear) seen_[var_of(l)] = 0;
}

void Solver::analyze_final(Lit p) {
  conflict_core_.clear();
  conflict_core_.push_back(p);
  if (decision_level() == 0) return;

  seen_[var_of(p)] = 1;
  for (std::size_t i = trail_.size(); i-- > trail_lim_[0];) {
    const Var x = var_of(trail_[i]);
    if (!seen_[x]) continue;
    if (reason_[x] == kCRefUndef) {
      // A decision below an assumption level is always an assumption literal.
      conflict_core_.push_back(trail_[i]);
    } else {
      const Lit* lits = clause_lits(reason_[x]);
      const std::uint32_t size = clause_size(reason_[x]);
      for (std::uint32_t k = 1; k < size; ++k)
        if (level_[var_of(lits[k])] > 0) seen_[var_of(lits[k])] = 1;
    }
    seen_[x] = 0;
  }
  seen_[var_of(p)] = 0;
}

Lit Solver::pick_branch_lit() {
  if (random_branch_prob_ > 0.0 && !heap_.empty()) {
    // splitmix64: cheap, deterministic, and private to this solver so clones
    // with different seeds diverge without touching the shared util::Rng.
    branch_rng_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = branch_rng_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
    if (u < random_branch_prob_) {
      const Var v = heap_[z % heap_.size()];
      if (value(v) == LBool::Undef && branchable(v))
        return mk_lit(v, polarity_[v] != 0);
    }
  }
  while (!heap_empty()) {
    const Var v = heap_pop();
    if (value(v) == LBool::Undef && branchable(v)) return mk_lit(v, polarity_[v] != 0);
  }
  return kUndefLit;
}

Solver::Result Solver::search(std::int64_t max_conflicts,
                              std::span<const Lit> assumptions) {
  std::int64_t conflict_count = 0;
  std::vector<Lit> learnt;

  for (;;) {
    const CRef confl = propagate();
    if (confl != kCRefUndef) {
      stats_.conflicts++;
      ++conflict_count;
      if (decision_level() == 0) {
        ok_ = false;
        return Result::Unsat;
      }
      std::uint32_t btlevel = 0;
      std::uint32_t lbd = 0;
      analyze(confl, learnt, btlevel, lbd);
      cancel_until(btlevel);
      // Export fresh high-quality learnts for portfolio peers. Appending to a
      // local buffer keeps the search loop lock-free; the portfolio drains it
      // at query boundaries.
      if (share_max_lbd_ > 0 && export_buffer_.size() < share_max_clauses_ &&
          (learnt.size() == 1 || lbd <= share_max_lbd_)) {
        export_buffer_.emplace_back(learnt.begin(), learnt.end());
        stats_.shared_exported++;
      }
      if (learnt.size() == 1) {
        unchecked_enqueue(learnt[0], kCRefUndef);
      } else {
        const CRef cr = alloc_clause(learnt, true);
        learnts_.push_back(cr);
        set_clause_lbd(cr, lbd);
        attach_clause(cr);
        clause_bump(cr);
        unchecked_enqueue(learnt[0], cr);
      }
      var_decay();
      clause_decay();
      if ((conflict_count & 63) == 0 && interrupted()) {
        cancel_until(0);
        return Result::Unknown;
      }
    } else {
      if (max_conflicts >= 0 && conflict_count >= max_conflicts) {
        cancel_until(0);
        return Result::Unknown;
      }
      if (static_cast<double>(learnts_.size()) >= max_learnts_) {
        reduce_learnts();
        max_learnts_ *= 1.3;
      }

      Lit next = kUndefLit;
      while (decision_level() < assumptions.size()) {
        const Lit a = assumptions[decision_level()];
        if (value(a) == LBool::True) {
          new_decision_level();  // already implied; dedicate an empty level
        } else if (value(a) == LBool::False) {
          analyze_final(a);
          return Result::Unsat;
        } else {
          next = a;
          break;
        }
      }
      if (next == kUndefLit) {
        next = pick_branch_lit();
        if (next == kUndefLit) return Result::Sat;  // all variables assigned
        stats_.decisions++;
        if ((stats_.decisions & 1023) == 0 && interrupted()) {
          cancel_until(0);
          return Result::Unknown;
        }
      }
      new_decision_level();
      unchecked_enqueue(next, kCRefUndef);
    }
  }
}

Solver::Result Solver::solve(std::span<const Lit> assumptions,
                             std::int64_t conflict_budget) {
  const Stats before = stats_;
  stats_.solves++;
  conflict_core_.clear();
  for (const Lit a : assumptions) {
    DETERRENT_ASSERT(var_of(a) < var_count(), "assumption references unknown variable");
    const Var v = var_of(a);
    if (eliminated_[v] != 0 || subst_[v] != kUndefLit)
      throw Error(
          "Solver::solve: assumption on variable " + std::to_string(v) +
          ", which inprocessing removed; freeze assumption variables before "
          "calling inprocess()");
  }
  if (!ok_) {
    last_ = Stats{};
    last_.solves = 1;
    return Result::Unsat;
  }

  if (max_learnts_ == 0.0)
    max_learnts_ = std::max(4000.0, static_cast<double>(clauses_.size()) * 0.4);

  const std::uint64_t conflicts_start = stats_.conflicts;
  Result status = Result::Unknown;
  for (std::uint64_t restart = 0; status == Result::Unknown; ++restart) {
    if (interrupted()) break;
    std::int64_t limit =
        static_cast<std::int64_t>(luby(2.0, restart) * restart_first_);
    if (conflict_budget >= 0) {
      const auto spent =
          static_cast<std::int64_t>(stats_.conflicts - conflicts_start);
      if (spent >= conflict_budget) break;  // give up: Unknown
      limit = std::min(limit, conflict_budget - spent);
    }
    // Every re-entry that actually searches again is a restart (budget
    // give-ups and interrupts exit above and are not counted).
    if (restart > 0) stats_.restarts++;
    status = search(limit, assumptions);
  }

  if (status == Result::Sat) {
    model_.assign(assigns_.begin(), assigns_.end());
    if (!reconstruct_.empty()) extend_model();
  }
  cancel_until(0);

  // Per-solve deltas of the cumulative counters.
  last_.conflicts = stats_.conflicts - before.conflicts;
  last_.decisions = stats_.decisions - before.decisions;
  last_.propagations = stats_.propagations - before.propagations;
  last_.restarts = stats_.restarts - before.restarts;
  last_.learnt_clauses = stats_.learnt_clauses - before.learnt_clauses;
  last_.solves = 1;
  last_.inprocess_runs = stats_.inprocess_runs - before.inprocess_runs;
  last_.failed_literals = stats_.failed_literals - before.failed_literals;
  last_.equivalent_literals = stats_.equivalent_literals - before.equivalent_literals;
  last_.eliminated_variables =
      stats_.eliminated_variables - before.eliminated_variables;
  last_.subsumed_clauses = stats_.subsumed_clauses - before.subsumed_clauses;
  last_.strengthened_clauses =
      stats_.strengthened_clauses - before.strengthened_clauses;
  last_.shared_exported = stats_.shared_exported - before.shared_exported;
  last_.shared_imported = stats_.shared_imported - before.shared_imported;
  return status;
}

void Solver::reduce_learnts() {
  std::vector<CRef> candidates;
  candidates.reserve(learnts_.size());
  for (const CRef c : learnts_) {
    if (clause_dead(c)) continue;
    const Lit first = clause_lits(c)[0];
    const bool locked =
        reason_[var_of(first)] == c && value(first) == LBool::True;
    if (!locked && clause_lbd(c) > 2 && clause_size(c) > 2) candidates.push_back(c);
  }
  std::sort(candidates.begin(), candidates.end(), [this](CRef a, CRef b) {
    return clause_activity(a) < clause_activity(b);
  });
  for (std::size_t i = 0; i < candidates.size() / 2; ++i) mark_dead(candidates[i]);

  learnts_.erase(std::remove_if(learnts_.begin(), learnts_.end(),
                                [this](CRef c) { return clause_dead(c); }),
                 learnts_.end());

  if (dead_words_ * 3 > arena_.size()) compact_arena();
}

void Solver::compact_arena() {
  std::vector<std::uint32_t> new_arena;
  new_arena.reserve(arena_.size() - dead_words_);
  std::unordered_map<CRef, CRef> reloc;
  reloc.reserve(clauses_.size() + learnts_.size());

  auto move_list = [&](std::vector<CRef>& list) {
    std::size_t j = 0;
    for (const CRef c : list) {
      if (clause_dead(c)) continue;
      const CRef nc = static_cast<CRef>(new_arena.size());
      const std::uint32_t words = kHeaderWords + clause_size(c);
      for (std::uint32_t k = 0; k < words; ++k) new_arena.push_back(arena_[c + k]);
      reloc.emplace(c, nc);
      list[j++] = nc;
    }
    list.resize(j);
  };
  move_list(clauses_);
  move_list(learnts_);
  arena_ = std::move(new_arena);
  dead_words_ = 0;

  // Reasons are meaningful only for assigned variables; stale entries may
  // reference reduced clauses, so rebuild from the trail.
  std::vector<CRef> new_reason(reason_.size(), kCRefUndef);
  for (const Lit p : trail_) {
    const Var v = var_of(p);
    if (reason_[v] != kCRefUndef) new_reason[v] = reloc.at(reason_[v]);
  }
  reason_ = std::move(new_reason);

  for (auto& ws : watches_) ws.clear();
  for (const CRef c : clauses_) attach_clause(c);
  for (const CRef c : learnts_) attach_clause(c);
}

void Solver::var_bump(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  heap_update(v);
}

void Solver::clause_bump(CRef c) {
  if (!clause_learnt(c)) return;
  float act = clause_activity(c) + static_cast<float>(cla_inc_);
  if (act > 1e20f) {
    for (const CRef lc : learnts_)
      set_clause_activity(lc, clause_activity(lc) * 1e-20f);
    cla_inc_ *= 1e-20;
    act = clause_activity(c) + static_cast<float>(cla_inc_);
  }
  set_clause_activity(c, act);
}

void Solver::heap_insert(Var v) {
  if (heap_pos_[v] != kNotInHeap) return;
  heap_pos_[v] = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_update(Var v) {
  if (heap_pos_[v] != kNotInHeap) heap_sift_up(heap_pos_[v]);
}

Var Solver::heap_pop() {
  DETERRENT_ASSERT(!heap_.empty(), "heap_pop on empty heap");
  const Var top = heap_[0];
  heap_pos_[top] = kNotInHeap;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::heap_sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_lt(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::uint32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const Var v = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_lt(heap_[child + 1], heap_[child])) ++child;
    if (!heap_lt(heap_[child], v)) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<std::uint32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<std::uint32_t>(i);
}

void Solver::randomize_phases(util::Rng& rng) {
  for (auto& p : polarity_) p = rng.bernoulli(0.5) ? 1 : 0;
}

double Solver::luby(double y, std::uint64_t x) {
  // Find the finite subsequence containing index x and its position within.
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return std::pow(y, static_cast<double>(seq));
}

}  // namespace deterrent::sat

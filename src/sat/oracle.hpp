#pragma once

#include <optional>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"
#include "sim/pattern.hpp"
#include "util/rng.hpp"

namespace deterrent::sat {

/// A value requirement on a net: "net must evaluate to value". A set of rare
/// nets at their rare values is expressed as one Constraint per net.
struct Constraint {
  netlist::NetId net;
  bool value;

  bool operator==(const Constraint&) const = default;
};

/// Incremental SAT front-end over one netlist.
///
/// Encodes the netlist once and answers many conjunction queries via
/// assumptions, accumulating learnt clauses across queries — this is what
/// makes the paper's offline pairwise phase and per-step compatibility checks
/// affordable (§3.3, §5 "Feasibility of using a SAT solver").
///
/// Thread-compatibility: an oracle is NOT thread-safe; create one per thread
/// (the compatibility-matrix builder does exactly that).
class NetlistOracle {
 public:
  explicit NetlistOracle(const netlist::Netlist& netlist);

  const netlist::Netlist& target() const { return *netlist_; }

  /// Can all constraints hold simultaneously? `conflict_budget` bounds solver
  /// effort (<0 = unlimited); an exhausted budget reports as incompatible via
  /// Unknown → nullopt in try_satisfiable and false in satisfiable.
  bool satisfiable(std::span<const Constraint> constraints,
                   std::int64_t conflict_budget = -1);

  /// Tri-state variant: nullopt when the conflict budget ran out.
  std::optional<bool> try_satisfiable(std::span<const Constraint> constraints,
                                      std::int64_t conflict_budget);

  /// Finds an input pattern forcing all constraints, or nullopt if UNSAT.
  /// Don't-care inputs take the solver's current phase; call
  /// randomize_completion() between queries to diversify them.
  std::optional<sim::Pattern> find_pattern(std::span<const Constraint> constraints);

  /// Randomizes the solver's phase choices so subsequent find_pattern calls
  /// fill unconstrained inputs differently.
  void randomize_completion(util::Rng& rng) { solver_.randomize_phases(rng); }

  std::uint64_t query_count() const { return solver_.stats().solves; }
  const Solver::Stats& solver_stats() const { return solver_.stats(); }

 private:
  std::vector<Lit> to_assumptions(std::span<const Constraint> constraints) const;

  const netlist::Netlist* netlist_;
  Solver solver_;
};

}  // namespace deterrent::sat

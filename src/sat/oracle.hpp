#pragma once

#include <optional>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sat/solver.hpp"
#include "sim/pattern.hpp"
#include "util/rng.hpp"

namespace deterrent::sat {

/// A value requirement on a net: "net must evaluate to value". A set of rare
/// nets at their rare values is expressed as one Constraint per net.
struct Constraint {
  netlist::NetId net;
  bool value;

  bool operator==(const Constraint&) const = default;
};

/// Inprocessing policy for a NetlistOracle.
struct OracleConfig {
  /// Run Solver::inprocess between query batches. Off by default: the
  /// single-query users (environment step checks) prefer the untouched,
  /// bit-reproducible solver; batch users (compatibility builder, bench)
  /// opt in.
  bool inprocess = false;
  /// Queries between inprocessing passes. The first pass runs before the
  /// first query, so a freshly-encoded netlist is simplified up front.
  std::uint64_t inprocess_interval = 256;
  Solver::InprocessConfig passes;
};

/// Incremental SAT front-end over one netlist.
///
/// Encodes the netlist once and answers many conjunction queries via
/// assumptions, accumulating learnt clauses across queries — this is what
/// makes the paper's offline pairwise phase and per-step compatibility checks
/// affordable (§3.3, §5 "Feasibility of using a SAT solver").
///
/// With config.inprocess on, the solver periodically simplifies its clause
/// database. All net variables start frozen (any net may be constrained);
/// declare_query_nets() narrows the frozen set to the nets that will actually
/// be queried plus the primary inputs, giving the simplifier real room.
///
/// Thread-compatibility: an oracle is NOT thread-safe; create one per thread
/// (the compatibility-matrix builder does exactly that).
class NetlistOracle {
 public:
  explicit NetlistOracle(const netlist::Netlist& netlist, OracleConfig config = {});

  const netlist::Netlist& target() const { return *netlist_; }

  /// Restricts future constraints to `nets` (plus the primary inputs): every
  /// other net variable is unfrozen and becomes fair game for elimination.
  /// Constraining an undeclared net afterwards throws deterrent::Error once
  /// inprocessing has removed it.
  void declare_query_nets(std::span<const netlist::NetId> nets);

  /// Forces an inprocessing pass now (normally they run on the
  /// config-declared cadence). Returns false when the formula is UNSAT.
  bool inprocess_now();

  /// Can all constraints hold simultaneously? `conflict_budget` bounds solver
  /// effort (<0 = unlimited); an exhausted budget reports as incompatible via
  /// Unknown → nullopt in try_satisfiable and false in satisfiable.
  bool satisfiable(std::span<const Constraint> constraints,
                   std::int64_t conflict_budget = -1);

  /// Tri-state variant: nullopt when the conflict budget ran out.
  std::optional<bool> try_satisfiable(std::span<const Constraint> constraints,
                                      std::int64_t conflict_budget);

  /// Finds an input pattern forcing all constraints, or nullopt if UNSAT.
  /// Don't-care inputs take the solver's current phase; call
  /// randomize_completion() between queries to diversify them.
  std::optional<sim::Pattern> find_pattern(std::span<const Constraint> constraints);

  /// Randomizes the solver's phase choices so subsequent find_pattern calls
  /// fill unconstrained inputs differently.
  void randomize_completion(util::Rng& rng) { solver_.randomize_phases(rng); }

  std::uint64_t query_count() const { return solver_.stats().solves; }
  const Solver::Stats& solver_stats() const { return solver_.stats(); }

  /// Direct solver access for tests and the portfolio bench.
  Solver& solver() { return solver_; }

 private:
  std::vector<Lit> to_assumptions(std::span<const Constraint> constraints) const;
  void maybe_inprocess();

  const netlist::Netlist* netlist_;
  OracleConfig config_;
  std::uint64_t next_inprocess_ = 0;
  Solver solver_;
};

}  // namespace deterrent::sat

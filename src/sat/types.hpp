#pragma once

#include <cstdint>
#include <vector>

namespace deterrent::sat {

/// Boolean variable, 0-based.
using Var = std::uint32_t;

inline constexpr Var kNoVar = 0xffffffffu;

/// Literal in MiniSat packing: x = 2*var + sign, sign 1 = negated.
struct Lit {
  std::uint32_t x = 0xffffffffu;

  constexpr bool operator==(const Lit&) const = default;
};

inline constexpr Lit kUndefLit{0xffffffffu};

constexpr Lit mk_lit(Var v, bool negated = false) {
  return Lit{(v << 1) | static_cast<std::uint32_t>(negated)};
}

constexpr Lit operator~(Lit p) { return Lit{p.x ^ 1u}; }

constexpr Var var_of(Lit p) { return p.x >> 1; }

/// True when the literal is negated (¬v).
constexpr bool sign_of(Lit p) { return p.x & 1u; }

/// Three-valued assignment state.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

constexpr LBool lbool_from(bool b) { return b ? LBool::True : LBool::False; }

/// Value of literal p under variable value v (Undef stays Undef).
constexpr LBool lit_value(LBool v, Lit p) {
  if (v == LBool::Undef) return LBool::Undef;
  return (v == LBool::True) != sign_of(p) ? LBool::True : LBool::False;
}

using Clause = std::vector<Lit>;

}  // namespace deterrent::sat

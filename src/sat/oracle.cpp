#include "sat/oracle.hpp"

#include "sat/encoder.hpp"
#include "util/assert.hpp"
#include "util/faults.hpp"
#include "util/watchdog.hpp"

namespace deterrent::sat {

NetlistOracle::NetlistOracle(const netlist::Netlist& netlist, OracleConfig config)
    : netlist_(&netlist), config_(config) {
  encode_netlist(netlist, solver_);
  // Every net is a potential constraint target until declare_query_nets()
  // narrows the set; the Tseitin auxiliaries above net_count stay fair game.
  for (netlist::NetId n = 0; n < netlist.net_count(); ++n) solver_.set_frozen(n);
}

void NetlistOracle::declare_query_nets(std::span<const netlist::NetId> nets) {
  for (netlist::NetId n = 0; n < netlist_->net_count(); ++n)
    solver_.set_frozen(n, false);
  for (const netlist::NetId n : netlist_->inputs()) solver_.set_frozen(n);
  for (const netlist::NetId n : nets) {
    DETERRENT_ASSERT(n < netlist_->net_count(), "query net out of range");
    solver_.set_frozen(n);
  }
}

bool NetlistOracle::inprocess_now() {
  next_inprocess_ = solver_.stats().solves + config_.inprocess_interval;
  return solver_.inprocess(config_.passes);
}

void NetlistOracle::maybe_inprocess() {
  if (!config_.inprocess) return;
  if (solver_.stats().solves >= next_inprocess_) inprocess_now();
}

std::vector<Lit> NetlistOracle::to_assumptions(
    std::span<const Constraint> constraints) const {
  std::vector<Lit> assumptions;
  assumptions.reserve(constraints.size());
  for (const auto& c : constraints) {
    DETERRENT_ASSERT(c.net < netlist_->net_count(), "constraint on unknown net");
    assumptions.push_back(mk_lit(c.net, /*negated=*/!c.value));
  }
  return assumptions;
}

bool NetlistOracle::satisfiable(std::span<const Constraint> constraints,
                                std::int64_t conflict_budget) {
  return try_satisfiable(constraints, conflict_budget).value_or(false);
}

std::optional<bool> NetlistOracle::try_satisfiable(
    std::span<const Constraint> constraints, std::int64_t conflict_budget) {
  // Every solver entry is a query boundary: a natural cancellation point for
  // the stage watchdog and the injection site for simulated solver failures
  // and hangs.
  DETERRENT_FAULT_POINT("sat.query");
  util::WatchdogScope::poll("sat.query");
  maybe_inprocess();
  const auto assumptions = to_assumptions(constraints);
  switch (solver_.solve(assumptions, conflict_budget)) {
    case Solver::Result::Sat: return true;
    case Solver::Result::Unsat: return false;
    case Solver::Result::Unknown: return std::nullopt;
  }
  return std::nullopt;
}

std::optional<sim::Pattern> NetlistOracle::find_pattern(
    std::span<const Constraint> constraints) {
  DETERRENT_FAULT_POINT("sat.query");
  util::WatchdogScope::poll("sat.query");
  maybe_inprocess();
  const auto assumptions = to_assumptions(constraints);
  if (solver_.solve(assumptions) != Solver::Result::Sat) return std::nullopt;
  const auto inputs = netlist_->inputs();
  sim::Pattern pattern(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i)
    pattern.set(i, solver_.model_value(inputs[i]));
  return pattern;
}

}  // namespace deterrent::sat

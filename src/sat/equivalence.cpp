#include "sat/equivalence.hpp"

#include "sat/encoder.hpp"
#include "sat/solver.hpp"
#include "util/assert.hpp"

namespace deterrent::sat {

using netlist::GateType;
using netlist::NetId;

EquivalenceResult check_equivalence(const netlist::Netlist& left,
                                    const netlist::Netlist& right,
                                    std::int64_t conflict_budget) {
  if (left.inputs().size() != right.inputs().size())
    throw Error("check_equivalence: input counts differ");
  if (left.outputs().size() != right.outputs().size())
    throw Error("check_equivalence: output counts differ");
  if (left.is_sequential() || right.is_sequential())
    throw Error("check_equivalence: combinational netlists required (use scan views)");

  // Build the miter as a single netlist: both designs side by side, shared
  // inputs, one XOR per output pair, and an OR over all XORs.
  netlist::NetlistBuilder builder;
  std::vector<NetId> shared_inputs;
  shared_inputs.reserve(left.inputs().size());
  for (std::size_t i = 0; i < left.inputs().size(); ++i)
    shared_inputs.push_back(builder.add_input("mi" + std::to_string(i)));

  auto instantiate = [&](const netlist::Netlist& nl) {
    std::vector<NetId> map(nl.net_count(), netlist::kNoNet);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i)
      map[nl.inputs()[i]] = shared_inputs[i];
    for (const NetId id : nl.topo_order()) {
      if (nl.type(id) == GateType::Input) continue;
      std::vector<NetId> fanins;
      fanins.reserve(nl.fanins(id).size());
      for (const NetId f : nl.fanins(id)) {
        DETERRENT_ASSERT(map[f] != netlist::kNoNet, "miter: fanin not yet mapped");
        fanins.push_back(map[f]);
      }
      map[id] = builder.add_gate(nl.type(id), std::move(fanins));
    }
    std::vector<NetId> outputs;
    outputs.reserve(nl.outputs().size());
    for (const NetId out : nl.outputs()) outputs.push_back(map[out]);
    return outputs;
  };

  const auto left_outs = instantiate(left);
  const auto right_outs = instantiate(right);

  std::vector<NetId> diffs;
  diffs.reserve(left_outs.size());
  for (std::size_t o = 0; o < left_outs.size(); ++o)
    diffs.push_back(builder.add_gate(GateType::Xor, {left_outs[o], right_outs[o]},
                                     "diff" + std::to_string(o)));
  const NetId any_diff =
      diffs.size() == 1 ? diffs[0] : builder.add_gate(GateType::Or, diffs, "any_diff");
  builder.mark_output(any_diff);
  const netlist::Netlist miter = builder.build();

  Solver solver;
  encode_netlist(miter, solver);
  const Lit force_diff[] = {mk_lit(any_diff)};
  const auto verdict = solver.solve(force_diff, conflict_budget);

  EquivalenceResult result;
  if (verdict == Solver::Result::Unsat) {
    result.equivalent = true;
    return result;
  }
  if (verdict == Solver::Result::Unknown) {
    // Budget exhausted: report "not proven equivalent" without a witness.
    result.equivalent = false;
    return result;
  }

  result.equivalent = false;
  sim::Pattern counterexample(shared_inputs.size());
  for (std::size_t i = 0; i < shared_inputs.size(); ++i)
    counterexample.set(i, solver.model_value(shared_inputs[i]));
  for (std::size_t o = 0; o < diffs.size(); ++o) {
    if (solver.model_value(diffs[o])) {
      result.differing_output = o;
      break;
    }
  }
  result.counterexample = std::move(counterexample);
  return result;
}

}  // namespace deterrent::sat

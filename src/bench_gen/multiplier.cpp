#include "bench_gen/multiplier.hpp"

#include <string>
#include <vector>

#include "util/assert.hpp"

namespace deterrent::bench_gen {

using netlist::GateType;
using netlist::NetId;

namespace {

struct Adder {
  NetId sum;
  NetId carry;
};

Adder half_adder(netlist::NetlistBuilder& b, NetId p, NetId q) {
  return {b.add_gate(GateType::Xor, {p, q}), b.add_gate(GateType::And, {p, q})};
}

Adder full_adder(netlist::NetlistBuilder& b, NetId p, NetId q, NetId cin) {
  const NetId pq = b.add_gate(GateType::Xor, {p, q});
  const NetId sum = b.add_gate(GateType::Xor, {pq, cin});
  const NetId c1 = b.add_gate(GateType::And, {p, q});
  const NetId c2 = b.add_gate(GateType::And, {pq, cin});
  const NetId carry = b.add_gate(GateType::Or, {c1, c2});
  return {sum, carry};
}

}  // namespace

netlist::Netlist generate_array_multiplier(unsigned width) {
  DETERRENT_ASSERT(width >= 2, "multiplier width must be at least 2");
  netlist::NetlistBuilder b;

  std::vector<NetId> a(width);
  std::vector<NetId> x(width);
  for (unsigned i = 0; i < width; ++i) a[i] = b.add_input("a" + std::to_string(i));
  for (unsigned i = 0; i < width; ++i) x[i] = b.add_input("b" + std::to_string(i));

  // Accumulator over product bit positions; kNoNet represents a constant 0
  // that has not materialized as a gate yet.
  std::vector<NetId> acc(2 * width, netlist::kNoNet);

  for (unsigned i = 0; i < width; ++i) {
    NetId carry = netlist::kNoNet;
    for (unsigned j = 0; j < width; ++j) {
      const unsigned pos = i + j;
      const NetId pp = b.add_gate(GateType::And, {a[j], x[i]});
      const NetId have = acc[pos];
      if (have == netlist::kNoNet && carry == netlist::kNoNet) {
        acc[pos] = pp;
      } else if (have != netlist::kNoNet && carry != netlist::kNoNet) {
        const Adder fa = full_adder(b, pp, have, carry);
        acc[pos] = fa.sum;
        carry = fa.carry;
      } else {
        const Adder ha = half_adder(b, pp, have != netlist::kNoNet ? have : carry);
        acc[pos] = ha.sum;
        carry = ha.carry;
      }
    }
    // Ripple the row's final carry up through the accumulator.
    for (unsigned pos = i + width; carry != netlist::kNoNet && pos < 2 * width; ++pos) {
      if (acc[pos] == netlist::kNoNet) {
        acc[pos] = carry;
        carry = netlist::kNoNet;
      } else {
        const Adder ha = half_adder(b, acc[pos], carry);
        acc[pos] = ha.sum;
        carry = ha.carry;
      }
    }
  }

  for (unsigned k = 0; k < 2 * width; ++k) {
    if (acc[k] == netlist::kNoNet) acc[k] = b.add_const(false);
    b.mark_output(acc[k]);
  }
  return b.build();
}

}  // namespace deterrent::bench_gen

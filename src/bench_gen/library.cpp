#include "bench_gen/library.hpp"

#include "bench_gen/mips16.hpp"
#include "bench_gen/multiplier.hpp"
#include "bench_gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "util/assert.hpp"

namespace deterrent::bench_gen {

namespace {

Benchmark from_netlist(std::string name, netlist::Netlist nl, std::size_t paper_rare,
                       std::size_t paper_gates) {
  Benchmark bench;
  bench.name = std::move(name);
  bench.original = std::move(nl);
  bench.scan = netlist::make_full_scan(bench.original);
  bench.paper_rare_nets = paper_rare;
  bench.paper_gates = paper_gates;
  return bench;
}

/// ISCAS-85-family profile: calibrated so the rare-net fraction at θ=0.1
/// lands near the paper's Table 2 census (≈5–8% of gates). XOR-rich, narrow
/// gates and a shallow wiring bias keep most signal probabilities near 0.5.
RandomCircuitProfile combinational_profile(std::string name, std::size_t inputs,
                                           std::size_t outputs, std::size_t gates,
                                           std::uint64_t seed) {
  RandomCircuitProfile p;
  p.name = std::move(name);
  p.n_inputs = inputs;
  p.n_outputs = outputs;
  p.n_gates = gates;
  p.seed = seed;
  p.w_xor = 0.20;
  p.w_not = 0.25;
  p.w_buf = 0.10;
  p.wide_gate_fraction = 0.0;
  p.locality_bias = 0.3;
  return p;
}

/// ISCAS-89-family profile: the s-series circuits are much rarer-net-dense
/// (≈25–33% of gates at θ=0.1); wide AND/NOR gates and deep local wiring
/// reproduce that.
RandomCircuitProfile sequential_profile(std::string name, std::size_t inputs,
                                        std::size_t outputs, std::size_t gates,
                                        std::size_t dffs, std::uint64_t seed) {
  RandomCircuitProfile p;
  p.name = std::move(name);
  p.n_inputs = inputs;
  p.n_outputs = outputs;
  p.n_gates = gates;
  p.n_dffs = dffs;
  p.seed = seed;
  p.w_and = 0.34;
  p.w_nor = 0.22;
  p.w_xor = 0.03;
  p.w_xnor = 0.02;
  p.wide_gate_fraction = 0.15;
  p.locality_bias = 0.8;
  return p;
}

}  // namespace

std::vector<std::string> benchmark_names() {
  return {"c2670_like",  "c5315_like",  "c6288_like",  "c7552_like",
          "s13207_like", "s15850_like", "s35932_like", "mips16_like"};
}

Benchmark load_benchmark(const std::string& name) {
  // Paper reference numbers: Table 2 (rare nets at θ=0.1, gate count).
  if (name == "c2670_like") {
    return from_netlist(name, generate_random_circuit(combinational_profile(
                                  name, 233, 140, 775, 2670)),
                        43, 775);
  }
  if (name == "c5315_like") {
    return from_netlist(name, generate_random_circuit(combinational_profile(
                                  name, 178, 123, 2307, 5315)),
                        165, 2307);
  }
  if (name == "c6288_like") {
    // The real structure: a 16×16 array multiplier, like ISCAS-85 c6288.
    return from_netlist(name, generate_array_multiplier(16), 186, 2416);
  }
  if (name == "c7552_like") {
    return from_netlist(name, generate_random_circuit(combinational_profile(
                                  name, 207, 108, 3513, 7552)),
                        282, 3513);
  }
  if (name == "s13207_like") {
    return from_netlist(name, generate_random_circuit(sequential_profile(
                                  name, 62, 152, 1801, 400, 13207)),
                        604, 1801);
  }
  if (name == "s15850_like") {
    return from_netlist(name, generate_random_circuit(sequential_profile(
                                  name, 77, 150, 2412, 450, 15850)),
                        649, 2412);
  }
  if (name == "s35932_like") {
    return from_netlist(name, generate_random_circuit(sequential_profile(
                                  name, 35, 320, 4736, 1024, 35932)),
                        1151, 4736);
  }
  if (name == "mips16_like") {
    return from_netlist(name, generate_mips16(), 1005, 23511);
  }
  throw Error("unknown benchmark '" + name + "' (see benchmark_names())");
}

Benchmark load_benchmark_file(const std::string& path) {
  Benchmark bench;
  bench.name = path;
  bench.original = netlist::read_bench_file(path);
  bench.scan = netlist::make_full_scan(bench.original);
  return bench;
}

}  // namespace deterrent::bench_gen

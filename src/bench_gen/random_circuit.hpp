#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace deterrent::bench_gen {

/// Parameters of the seeded random-DAG circuit generator used to synthesize
/// ISCAS-profile stand-ins (see DESIGN.md §2 for the substitution rationale).
/// Rare-net density is driven by the gate mix — AND/NOR-heavy mixes with
/// occasional wide gates create deeply biased internal signals, matching the
/// signal-probability landscape the paper's benchmarks exhibit.
struct RandomCircuitProfile {
  std::string name = "random";
  std::size_t n_inputs = 64;
  std::size_t n_outputs = 32;
  std::size_t n_gates = 1000;  ///< combinational cells to create
  std::size_t n_dffs = 0;      ///< flip-flops (sequential s-series profiles)
  std::uint64_t seed = 1;

  /// Gate-type weights (normalized internally).
  double w_and = 0.26;
  double w_nand = 0.16;
  double w_or = 0.12;
  double w_nor = 0.16;
  double w_xor = 0.08;
  double w_xnor = 0.04;
  double w_not = 0.12;
  double w_buf = 0.06;

  /// Fraction of 2-input gates widened to 3–4 inputs (drives rarity).
  double wide_gate_fraction = 0.10;
  /// Fanin locality: with this probability a fanin comes from the most
  /// recent `locality_window` nets (creates depth instead of a shallow mesh).
  double locality_bias = 0.72;
  std::size_t locality_window = 192;
};

/// Deterministically generates a connected random circuit for the profile.
/// DFF data inputs are wired to late nets, Q outputs feed the logic like
/// extra inputs — the classic sequential-benchmark shape; apply
/// netlist::make_full_scan before analysis.
netlist::Netlist generate_random_circuit(const RandomCircuitProfile& profile);

}  // namespace deterrent::bench_gen

#include "bench_gen/mips16.hpp"

#include <array>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace deterrent::bench_gen {

using netlist::GateType;
using netlist::NetId;
using netlist::NetlistBuilder;

namespace {

constexpr unsigned kWord = 16;  // datapath width
constexpr unsigned kRegs = 16;  // register count (R0 == 0)

using Word = std::array<NetId, kWord>;

/// Thin structural-composition helper over NetlistBuilder.
struct Kit {
  NetlistBuilder& b;
  NetId const0;
  NetId const1;

  NetId land(NetId x, NetId y) { return b.add_gate(GateType::And, {x, y}); }
  NetId lor(NetId x, NetId y) { return b.add_gate(GateType::Or, {x, y}); }
  NetId lxor(NetId x, NetId y) { return b.add_gate(GateType::Xor, {x, y}); }
  NetId lnot(NetId x) { return b.add_gate(GateType::Not, {x}); }
  NetId lnor(NetId x, NetId y) { return b.add_gate(GateType::Nor, {x, y}); }

  NetId and_all(std::vector<NetId> xs) {
    DETERRENT_ASSERT(!xs.empty(), "and_all on empty");
    return xs.size() == 1 ? xs[0] : b.add_gate(GateType::And, std::move(xs));
  }
  NetId or_all(std::vector<NetId> xs) {
    DETERRENT_ASSERT(!xs.empty(), "or_all on empty");
    return xs.size() == 1 ? xs[0] : b.add_gate(GateType::Or, std::move(xs));
  }

  /// sel ? t : f
  NetId mux2(NetId sel, NetId t, NetId f) {
    const NetId a1 = land(sel, t);
    const NetId a0 = land(lnot(sel), f);
    return lor(a1, a0);
  }

  Word mux2w(NetId sel, const Word& t, const Word& f) {
    Word out;
    for (unsigned i = 0; i < kWord; ++i) out[i] = mux2(sel, t[i], f[i]);
    return out;
  }

  /// Ripple-carry a + b + cin; cout optionally exposed.
  Word add(const Word& x, const Word& y, NetId cin, NetId* cout = nullptr) {
    Word sum;
    NetId carry = cin;
    for (unsigned i = 0; i < kWord; ++i) {
      const NetId xy = lxor(x[i], y[i]);
      sum[i] = lxor(xy, carry);
      const NetId c1 = land(x[i], y[i]);
      const NetId c2 = land(xy, carry);
      carry = lor(c1, c2);
    }
    if (cout != nullptr) *cout = carry;
    return sum;
  }

  /// One-hot n-bit equality decode of a 4-bit field against constant k.
  NetId decode4(const std::array<NetId, 4>& bits, const std::array<NetId, 4>& nbits,
                unsigned k) {
    std::vector<NetId> terms;
    terms.reserve(4);
    for (unsigned i = 0; i < 4; ++i)
      terms.push_back(((k >> i) & 1u) ? bits[i] : nbits[i]);
    return and_all(std::move(terms));
  }
};

}  // namespace

netlist::Netlist generate_mips16(const Mips16Config& config) {
  NetlistBuilder b;

  // ---- primary inputs -------------------------------------------------------
  Word instr;
  Word mem_rdata;
  for (unsigned i = 0; i < kWord; ++i) instr[i] = b.add_input("instr" + std::to_string(i));
  for (unsigned i = 0; i < kWord; ++i)
    mem_rdata[i] = b.add_input("mem_rdata" + std::to_string(i));

  Kit kit{b, b.add_const(false, "const0"), b.add_const(true, "const1")};

  // ---- architectural state (DFFs; data inputs bound at the end) -------------
  Word pc;
  for (unsigned i = 0; i < kWord; ++i)
    pc[i] = b.add_dff(netlist::kNoNet, "pc" + std::to_string(i));

  std::array<Word, kRegs> regs;
  for (unsigned r = 1; r < kRegs; ++r)
    for (unsigned i = 0; i < kWord; ++i)
      regs[r][i] = b.add_dff(netlist::kNoNet,
                             "r" + std::to_string(r) + "_" + std::to_string(i));
  for (unsigned i = 0; i < kWord; ++i) regs[0][i] = kit.const0;  // R0 == 0

  Word hi;
  Word lo;
  if (config.include_multiplier) {
    for (unsigned i = 0; i < kWord; ++i) {
      hi[i] = b.add_dff(netlist::kNoNet, "hi" + std::to_string(i));
      lo[i] = b.add_dff(netlist::kNoNet, "lo" + std::to_string(i));
    }
  } else {
    hi.fill(kit.const0);
    lo.fill(kit.const0);
  }

  // ---- instruction fields and opcode decode ---------------------------------
  Word ninstr;
  for (unsigned i = 0; i < kWord; ++i) ninstr[i] = kit.lnot(instr[i]);
  const std::array<NetId, 4> op{instr[12], instr[13], instr[14], instr[15]};
  const std::array<NetId, 4> nop{ninstr[12], ninstr[13], ninstr[14], ninstr[15]};
  const std::array<NetId, 4> rs{instr[8], instr[9], instr[10], instr[11]};
  const std::array<NetId, 4> nrs{ninstr[8], ninstr[9], ninstr[10], ninstr[11]};
  const std::array<NetId, 4> rt{instr[4], instr[5], instr[6], instr[7]};
  const std::array<NetId, 4> nrt{ninstr[4], ninstr[5], ninstr[6], ninstr[7]};
  const std::array<NetId, 4> rd{instr[0], instr[1], instr[2], instr[3]};
  const std::array<NetId, 4> nrd{ninstr[0], ninstr[1], ninstr[2], ninstr[3]};

  enum Ops {
    kAdd = 0, kSub, kAnd, kOr, kXor, kNor, kSlt, kSll,
    kSrl, kMul, kLw, kSw, kBeq, kAddi, kJmp, kMflo,
  };
  std::array<NetId, 16> is_op;
  for (unsigned k = 0; k < 16; ++k) is_op[k] = kit.decode4(op, nop, k);

  // ---- register file read ports ---------------------------------------------
  auto read_port = [&](const std::array<NetId, 4>& field,
                       const std::array<NetId, 4>& nfield) {
    std::array<NetId, kRegs> sel;
    for (unsigned r = 0; r < kRegs; ++r) sel[r] = kit.decode4(field, nfield, r);
    Word value;
    for (unsigned i = 0; i < kWord; ++i) {
      std::vector<NetId> terms;
      terms.reserve(kRegs - 1);
      for (unsigned r = 1; r < kRegs; ++r)  // R0 contributes nothing
        terms.push_back(kit.land(sel[r], regs[r][i]));
      value[i] = kit.or_all(std::move(terms));
    }
    return std::pair(value, sel);
  };
  const auto [rs_val, rs_sel] = read_port(rs, nrs);
  const auto [rt_val, rt_sel] = read_port(rt, nrt);
  (void)rs_sel;
  (void)rt_sel;

  // ---- immediate handling ----------------------------------------------------
  // imm4 = rd field, sign-extended to 16 bits.
  Word imm;
  for (unsigned i = 0; i < 4; ++i) imm[i] = rd[i];
  for (unsigned i = 4; i < kWord; ++i) imm[i] = rd[3];

  const NetId use_imm = kit.or_all({is_op[kAddi], is_op[kLw], is_op[kSw]});
  const Word alu_b = kit.mux2w(use_imm, imm, rt_val);

  // ---- ALU -------------------------------------------------------------------
  const NetId do_sub =
      kit.or_all({is_op[kSub], is_op[kSlt], is_op[kBeq]});
  Word b_eff;
  for (unsigned i = 0; i < kWord; ++i)
    b_eff[i] = kit.lxor(alu_b[i], do_sub);
  NetId add_cout = netlist::kNoNet;
  const Word sum = kit.add(rs_val, b_eff, do_sub, &add_cout);

  Word and_w, or_w, xor_w, nor_w;
  for (unsigned i = 0; i < kWord; ++i) {
    and_w[i] = kit.land(rs_val[i], alu_b[i]);
    or_w[i] = kit.lor(rs_val[i], alu_b[i]);
    xor_w[i] = kit.lxor(rs_val[i], alu_b[i]);
    nor_w[i] = kit.lnor(rs_val[i], alu_b[i]);
  }
  Word slt_w;
  slt_w.fill(kit.const0);
  slt_w[0] = sum[kWord - 1];  // sign of rs - rt (overflow ignored, as in teaching cores)

  // ---- barrel shifter ---------------------------------------------------------
  Word sll_w = rt_val;
  Word srl_w = rt_val;
  if (config.include_shifter) {
    for (unsigned stage = 0; stage < 4; ++stage) {
      const unsigned amount = 1u << stage;
      const NetId s = rd[stage];  // shift amount = imm4
      Word next_l, next_r;
      for (unsigned i = 0; i < kWord; ++i) {
        const NetId from_l = i >= amount ? sll_w[i - amount] : kit.const0;
        next_l[i] = kit.mux2(s, from_l, sll_w[i]);
        const NetId from_r = i + amount < kWord ? srl_w[i + amount] : kit.const0;
        next_r[i] = kit.mux2(s, from_r, srl_w[i]);
      }
      sll_w = next_l;
      srl_w = next_r;
    }
  }

  // ---- multiplier (full 32-bit array; lower half → LO, upper → HI) -----------
  Word mul_lo = lo;
  Word mul_hi = hi;
  if (config.include_multiplier) {
    std::vector<NetId> acc(2 * kWord, netlist::kNoNet);
    for (unsigned i = 0; i < kWord; ++i) {
      NetId carry = netlist::kNoNet;
      for (unsigned j = 0; j < kWord; ++j) {
        const unsigned pos = i + j;
        const NetId pp = kit.land(rs_val[j], rt_val[i]);
        if (acc[pos] == netlist::kNoNet && carry == netlist::kNoNet) {
          acc[pos] = pp;
        } else if (acc[pos] != netlist::kNoNet && carry != netlist::kNoNet) {
          const NetId t = kit.lxor(pp, acc[pos]);
          const NetId s2 = kit.lxor(t, carry);
          carry = kit.lor(kit.land(pp, acc[pos]), kit.land(t, carry));
          acc[pos] = s2;
        } else {
          const NetId other = acc[pos] != netlist::kNoNet ? acc[pos] : carry;
          const NetId s2 = kit.lxor(pp, other);
          carry = kit.land(pp, other);
          acc[pos] = s2;
        }
      }
      for (unsigned pos = i + kWord; carry != netlist::kNoNet && pos < 2 * kWord;
           ++pos) {
        if (acc[pos] == netlist::kNoNet) {
          acc[pos] = carry;
          carry = netlist::kNoNet;
        } else {
          const NetId s2 = kit.lxor(acc[pos], carry);
          carry = kit.land(acc[pos], carry);
          acc[pos] = s2;
        }
      }
    }
    for (unsigned i = 0; i < kWord; ++i) {
      mul_lo[i] = acc[i] != netlist::kNoNet ? acc[i] : kit.const0;
      mul_hi[i] = acc[kWord + i] != netlist::kNoNet ? acc[kWord + i] : kit.const0;
    }
  }

  // ---- write-back result mux (one-hot AND-OR) ---------------------------------
  const NetId sel_sum = kit.or_all({is_op[kAdd], is_op[kSub], is_op[kAddi]});
  Word wb;
  for (unsigned i = 0; i < kWord; ++i) {
    std::vector<NetId> terms{
        kit.land(sel_sum, sum[i]),         kit.land(is_op[kAnd], and_w[i]),
        kit.land(is_op[kOr], or_w[i]),     kit.land(is_op[kXor], xor_w[i]),
        kit.land(is_op[kNor], nor_w[i]),   kit.land(is_op[kSlt], slt_w[i]),
        kit.land(is_op[kSll], sll_w[i]),   kit.land(is_op[kSrl], srl_w[i]),
        kit.land(is_op[kMul], mul_lo[i]),  kit.land(is_op[kLw], mem_rdata[i]),
        kit.land(is_op[kMflo], lo[i]),
    };
    wb[i] = kit.or_all(std::move(terms));
  }

  const NetId reg_write = kit.or_all({sel_sum, is_op[kAnd], is_op[kOr], is_op[kXor],
                                      is_op[kNor], is_op[kSlt], is_op[kSll],
                                      is_op[kSrl], is_op[kMul], is_op[kLw],
                                      is_op[kMflo]});

  // ---- register file write port ------------------------------------------------
  for (unsigned r = 1; r < kRegs; ++r) {
    const NetId wsel = kit.land(kit.decode4(rd, nrd, r), reg_write);
    for (unsigned i = 0; i < kWord; ++i)
      b.set_dff_input(regs[r][i], kit.mux2(wsel, wb[i], regs[r][i]));
  }
  if (config.include_multiplier) {
    for (unsigned i = 0; i < kWord; ++i) {
      b.set_dff_input(lo[i], kit.mux2(is_op[kMul], mul_lo[i], lo[i]));
      b.set_dff_input(hi[i], kit.mux2(is_op[kMul], mul_hi[i], hi[i]));
    }
  }

  // ---- branch / jump / next PC ---------------------------------------------------
  // equal = NOR of all rs^rt bits.
  std::vector<NetId> diff(kWord);
  for (unsigned i = 0; i < kWord; ++i) diff[i] = kit.lxor(rs_val[i], rt_val[i]);
  const NetId any_diff = kit.or_all(diff);
  const NetId equal = kit.lnot(any_diff);
  const NetId take_branch = kit.land(is_op[kBeq], equal);

  Word one;
  one.fill(kit.const0);
  one[0] = kit.const1;
  const Word pc_plus1 = kit.add(pc, one, kit.const0);
  const Word branch_tgt = kit.add(pc_plus1, imm, kit.const0);
  Word jump_tgt;  // {pc[15:12], instr[11:0]}
  for (unsigned i = 0; i < 12; ++i) jump_tgt[i] = instr[i];
  for (unsigned i = 12; i < kWord; ++i) jump_tgt[i] = pc[i];

  const NetId sel_seq = kit.lnor(take_branch, is_op[kJmp]);
  for (unsigned i = 0; i < kWord; ++i) {
    const NetId n = kit.or_all({kit.land(sel_seq, pc_plus1[i]),
                                kit.land(take_branch, branch_tgt[i]),
                                kit.land(is_op[kJmp], jump_tgt[i])});
    b.set_dff_input(pc[i], n);
  }

  // ---- memory interface / primary outputs ---------------------------------------
  for (unsigned i = 0; i < kWord; ++i) b.mark_output(sum[i]);      // mem_addr
  for (unsigned i = 0; i < kWord; ++i) b.mark_output(rt_val[i]);   // mem_wdata
  b.mark_output(is_op[kSw]);                                       // mem_write
  b.mark_output(take_branch);
  for (unsigned i = 0; i < kWord; ++i) b.mark_output(wb[i]);       // result bus

  return b.build();
}

}  // namespace deterrent::bench_gen

#pragma once

#include <string>
#include <vector>

#include "netlist/scan.hpp"

namespace deterrent::bench_gen {

/// A ready-to-analyze benchmark: the original (possibly sequential) netlist
/// plus its full-scan combinational view, and the paper's reference numbers
/// for the corresponding Table 2 row.
struct Benchmark {
  std::string name;
  netlist::Netlist original;
  netlist::ScanView scan;  ///< scan.comb is the analysis/simulation target

  std::size_t paper_rare_nets = 0;  ///< Table 2 "Number of rare nets"
  std::size_t paper_gates = 0;      ///< Table 2 "# Gates"
};

/// Loads one of the named profile benchmarks standing in for the paper's
/// suite (DESIGN.md §2): c2670_like, c5315_like, c6288_like (true 16×16 array
/// multiplier), c7552_like, s13207_like, s15850_like, s35932_like (sequential,
/// full-scanned), mips16_like (processor). Throws deterrent::Error for
/// unknown names.
Benchmark load_benchmark(const std::string& name);

/// Loads a user-provided ISCAS `.bench` netlist (e.g. a real c2670) and wraps
/// it in the same interface, so genuine benchmarks drop in without code
/// changes.
Benchmark load_benchmark_file(const std::string& path);

/// All built-in profile names, Table 2 order.
std::vector<std::string> benchmark_names();

}  // namespace deterrent::bench_gen

#include "bench_gen/random_circuit.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace deterrent::bench_gen {

using netlist::GateType;
using netlist::NetId;

netlist::Netlist generate_random_circuit(const RandomCircuitProfile& profile) {
  DETERRENT_ASSERT(profile.n_inputs >= 2, "profile needs at least two inputs");
  DETERRENT_ASSERT(profile.n_gates >= 1, "profile needs at least one gate");

  util::Rng rng(profile.seed ^ 0xbe9c4f00dULL);
  netlist::NetlistBuilder builder;

  std::vector<NetId> sources;  // everything usable as a fanin so far
  sources.reserve(profile.n_inputs + profile.n_dffs + profile.n_gates);

  for (std::size_t i = 0; i < profile.n_inputs; ++i)
    sources.push_back(builder.add_input("pi" + std::to_string(i)));

  // DFF outputs participate as fanin sources from the start; their data
  // inputs are bound to late nets below, forming sequential feedback.
  std::vector<NetId> dff_q;
  for (std::size_t i = 0; i < profile.n_dffs; ++i) {
    const NetId q = builder.add_dff(netlist::kNoNet, "ff" + std::to_string(i));
    dff_q.push_back(q);
    sources.push_back(q);
  }

  const double weights[8] = {profile.w_and, profile.w_nand, profile.w_or,
                             profile.w_nor, profile.w_xor, profile.w_xnor,
                             profile.w_not, profile.w_buf};
  const GateType types[8] = {GateType::And, GateType::Nand, GateType::Or,
                             GateType::Nor, GateType::Xor, GateType::Xnor,
                             GateType::Not, GateType::Buf};
  double total_weight = 0.0;
  for (const double w : weights) total_weight += w;

  auto sample_type = [&]() {
    double u = rng.uniform() * total_weight;
    for (int k = 0; k < 8; ++k) {
      u -= weights[k];
      if (u <= 0.0) return types[k];
    }
    return GateType::And;
  };

  auto pick_fanin = [&]() -> NetId {
    if (sources.size() > profile.locality_window &&
        rng.bernoulli(profile.locality_bias)) {
      const std::size_t lo = sources.size() - profile.locality_window;
      return sources[lo + rng.below(profile.locality_window)];
    }
    return sources[rng.below(sources.size())];
  };

  std::vector<NetId> gate_nets;
  gate_nets.reserve(profile.n_gates);
  for (std::size_t g = 0; g < profile.n_gates; ++g) {
    const GateType type = sample_type();
    std::size_t arity;
    if (type == GateType::Not || type == GateType::Buf) {
      arity = 1;
    } else {
      arity = 2;
      if (rng.bernoulli(profile.wide_gate_fraction))
        arity = 3 + rng.below(2);  // 3 or 4
    }
    std::vector<NetId> fanins;
    fanins.reserve(arity);
    while (fanins.size() < arity) {
      const NetId f = pick_fanin();
      if (std::find(fanins.begin(), fanins.end(), f) == fanins.end())
        fanins.push_back(f);
    }
    const NetId net = builder.add_gate(type, std::move(fanins), "g" + std::to_string(g));
    gate_nets.push_back(net);
    sources.push_back(net);
  }

  // Bind DFF data inputs to late gate nets (deep feedback, like the s-series).
  for (const NetId q : dff_q) {
    const std::size_t tail = std::max<std::size_t>(1, gate_nets.size() / 2);
    const NetId d = gate_nets[gate_nets.size() - tail + rng.below(tail)];
    builder.set_dff_input(q, d);
  }

  // Primary outputs: prefer late nets; dedup; pad from anywhere if needed.
  std::vector<NetId> outputs;
  {
    std::vector<bool> chosen(sources.size() + 1, false);
    const std::size_t want = std::min(profile.n_outputs, gate_nets.size());
    std::size_t guard = 0;
    while (outputs.size() < want && guard++ < want * 50) {
      const std::size_t tail = std::max<std::size_t>(1, gate_nets.size() / 3);
      const NetId cand = gate_nets[gate_nets.size() - tail + rng.below(tail)];
      if (!chosen[cand]) {
        chosen[cand] = true;
        outputs.push_back(cand);
      }
    }
  }
  for (const NetId out : outputs) builder.mark_output(out);

  return builder.build();
}

}  // namespace deterrent::bench_gen

#pragma once

#include "netlist/netlist.hpp"

namespace deterrent::bench_gen {

/// Configuration of the MIPS16-like processor generator.
struct Mips16Config {
  bool include_multiplier = true;  ///< 16×16 array multiplier + HI/LO registers
  bool include_shifter = true;     ///< bidirectional barrel shifter
};

/// Generates a structural single-cycle 16-bit MIPS-style processor netlist:
/// 16×16-bit register file (R0 hardwired to zero), ripple-carry ALU
/// (ADD/SUB/AND/OR/XOR/NOR/SLT), barrel shifter, 16×16 array multiplier with
/// HI/LO registers, PC with branch/jump logic, and a memory interface.
///
/// This is the scalability substrate standing in for the OpenCores 16-bit
/// MIPS the paper trains on (§4.1); see DESIGN.md §2. With all units enabled
/// it synthesizes to several thousand cells and ~290 flip-flops; under full
/// scan every architectural state bit becomes a pseudo primary input, giving
/// the RL agent the same deep, rare-net-rich search space shape.
///
/// ISA sketch (4-bit opcode, 4-bit fields):  op rs rt rd/imm4
///   0 ADD  1 SUB  2 AND  3 OR  4 XOR  5 NOR  6 SLT  7 SLL
///   8 SRL  9 MUL  10 LW  11 SW  12 BEQ  13 ADDI  14 JMP  15 MFLO
netlist::Netlist generate_mips16(const Mips16Config& config = {});

}  // namespace deterrent::bench_gen

#pragma once

#include "netlist/netlist.hpp"

namespace deterrent::bench_gen {

/// Generates a combinational array multiplier: width×width → 2·width bits,
/// built from AND partial products and a ripple carry-save array of half/full
/// adders. width = 16 reproduces the *structure* of ISCAS-85 c6288 (a 16×16
/// array multiplier, ≈2.4k cells) — the benchmark the paper uses for the
/// trigger-width (Fig. 5), marginal-coverage (Fig. 6) and rareness-threshold
/// (Fig. 7) studies. Deep carry chains give it the biased internal signals
/// that make it rare-net rich.
netlist::Netlist generate_array_multiplier(unsigned width);

}  // namespace deterrent::bench_gen

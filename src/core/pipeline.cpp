#include "core/pipeline.hpp"

#include <unordered_set>

#include "analysis/lint.hpp"
#include "core/compat_shards.hpp"
#include "netlist/stats.hpp"
#include "sat/oracle.hpp"
#include "util/assert.hpp"
#include "util/faults.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "util/watchdog.hpp"

namespace deterrent::core {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::Lint: return "lint";
    case Stage::RareNets: return "rare-nets";
    case Stage::Compatibility: return "compatibility";
    case Stage::Train: return "train";
    case Stage::Extract: return "extract";
    case Stage::Done: return "done";
  }
  return "?";
}

const char* to_string(StageStatus status) {
  switch (status) {
    case StageStatus::Complete: return "complete";
    case StageStatus::Cancelled: return "cancelled";
    case StageStatus::BudgetExhausted: return "budget";
    case StageStatus::TimedOut: return "timeout";
    case StageStatus::Rejected: return "rejected";
  }
  return "?";
}

Pipeline::Pipeline(const netlist::Netlist& netlist, const DeterrentConfig& config)
    : netlist_(&netlist),
      config_(config),
      fingerprint_(netlist::structural_fingerprint(netlist)) {
  if (netlist.is_sequential())
    throw PermanentError("Pipeline requires a combinational netlist (use make_full_scan)");
}

Pipeline::~Pipeline() = default;

std::size_t Pipeline::effective_updates() const {
  return config_.updates == 0 ? 1 : config_.updates;
}

Stage Pipeline::next_stage() const {
  // Lint gates entry only: once the rare-net artifact exists (fresh run or
  // resume), the design already passed the front door and lint never re-runs.
  // A rejected design is pinned at the lint stage — run_lint keeps returning
  // Rejected, so run_remaining() on a resumed rejected session reports the
  // verdict instead of throwing.
  if (config_.lint.enabled && !rare_done_ && (!lint_done_ || lint_rejected_))
    return Stage::Lint;
  if (!rare_done_) return Stage::RareNets;
  if (!matrix_.has_value()) return Stage::Compatibility;
  if (history_.size() < effective_updates()) return Stage::Train;
  if (!extract_done_) return Stage::Extract;
  return Stage::Done;
}

std::uint64_t Pipeline::rare_hash() const {
  return rare_content_hash(fingerprint_, rare_nets_);
}

StageStatus Pipeline::checkpoint(const StageControl& control,
                                 StageProgress&& progress) const {
  if (control.wall_budget_seconds > 0.0 &&
      progress.stage_seconds >= control.wall_budget_seconds)
    return StageStatus::BudgetExhausted;
  if (control.sat_query_budget > 0 && progress.sat_queries >= control.sat_query_budget)
    return StageStatus::BudgetExhausted;
  if (control.on_progress && !control.on_progress(progress))
    return StageStatus::Cancelled;
  return StageStatus::Complete;
}

// ----------------------------------------------------------- stages --------

StageStatus Pipeline::run_lint(const StageControl& control) {
  if (lint_done_) return lint_rejected_ ? StageStatus::Rejected : StageStatus::Complete;
  if (!config_.lint.enabled || rare_done_) {
    // Disabled, or resuming past the front door — nothing to gate.
    return StageStatus::Complete;
  }
  util::WatchdogScope watchdog(control.stage_timeout_seconds);
  try {
    DETERRENT_FAULT_POINT("pipeline.stage_boundary");
    util::Stopwatch watch;
    if (const auto status = checkpoint(
            control, {Stage::Lint, 0, 1, "static DRC + trojan screen", 0.0, 0});
        status != StageStatus::Complete)
      return status;

    lint_report_ = analysis::Linter(config_.lint).lint(*netlist_);
    lint_rejected_ = lint_report_.rejects(config_.lint.fail_on);
    lint_done_ = true;
    if (lint_rejected_)
      util::Log::warn("pipeline: lint rejected the design: ", lint_report_.summary());
    else if (!lint_report_.diagnostics.empty())
      util::Log::info("pipeline: lint passed with findings: ", lint_report_.summary());

    checkpoint(control, {Stage::Lint, 1, 1, lint_report_.summary(),
                         watch.elapsed_seconds(), 0});
    return lint_rejected_ ? StageStatus::Rejected : StageStatus::Complete;
  } catch (const TimeoutError&) {
    // No verdict was stored, so the stage cleanly re-runs on resume.
    return StageStatus::TimedOut;
  }
}

StageStatus Pipeline::run_rare_nets(const StageControl& control) {
  if (rare_done_) return StageStatus::Complete;
  // The lint front door: every fresh run passes through it, so legacy
  // prepare() flows are covered without calling run_lint explicitly.
  if (lint_rejected_)
    throw PermanentError("Pipeline: design was rejected by lint (" +
                         lint_report_.summary() + ")");
  if (const auto status = run_lint(control); status != StageStatus::Complete)
    return status;
  util::WatchdogScope watchdog(control.stage_timeout_seconds);
  try {
    DETERRENT_FAULT_POINT("pipeline.stage_boundary");
    util::Stopwatch watch;
    if (const auto status = checkpoint(
            control, {Stage::RareNets, 0, 1, "estimating signal probabilities", 0.0, 0});
        status != StageStatus::Complete)
      return status;

    util::Rng rng(config_.seed);
    util::ThreadPool workers(config_.offline_threads);
    rare_nets_ = analysis::find_rare_nets(*netlist_, config_.rare, rng, &workers);
    if (rare_nets_.empty())
      throw PermanentError("no rare nets below threshold " +
                           std::to_string(config_.rare.threshold));
    offline_rng_state_ = rng.state();
    rare_done_ = true;

    checkpoint(control, {Stage::RareNets, 1, 1,
                         std::to_string(rare_nets_.size()) + " rare nets",
                         watch.elapsed_seconds(), 0});
    return StageStatus::Complete;
  } catch (const TimeoutError&) {
    // Members are only assigned after a full build, so a watchdog timeout
    // leaves the stage cleanly not-run.
    return StageStatus::TimedOut;
  }
}

StageStatus Pipeline::run_compatibility(const StageControl& control) {
  if (!rare_done_)
    throw PermanentError("Pipeline: compatibility stage requires the rare-nets stage");
  if (matrix_.has_value()) return StageStatus::Complete;
  util::WatchdogScope watchdog(control.stage_timeout_seconds);
  try {
    DETERRENT_FAULT_POINT("pipeline.stage_boundary");
    util::Stopwatch watch;
    if (const auto status = checkpoint(
            control, {Stage::Compatibility, 0, 1,
                      "building pairwise matrix over " +
                          std::to_string(rare_nets_.size()) + " rare nets",
                      0.0, 0});
        status != StageStatus::Complete)
      return status;

    util::Rng rng;
    rng.set_state(offline_rng_state_);
    util::ThreadPool workers(config_.offline_threads);
    matrix_ = build_sharded_compatibility(*netlist_, rare_nets_, config_.compat, rng,
                                          &workers, &compat_stats_,
                                          &witness_signatures_, compat_scratch_dir_,
                                          fingerprint_, rare_hash());
    util::Log::info("pipeline: prepared ", rare_nets_.size(), " rare nets, ",
                    matrix_->edge_count(), " compatible pairs (",
                    compat_stats_.sim_resolved, " sim, ", compat_stats_.sat_sat,
                    " sat) in ", compat_stats_.build_seconds, "s");

    checkpoint(control, {Stage::Compatibility, 1, 1,
                         std::to_string(matrix_->edge_count()) + " compatible pairs",
                         watch.elapsed_seconds(), 0});
    return StageStatus::Complete;
  } catch (const TimeoutError&) {
    return StageStatus::TimedOut;
  }
}

void Pipeline::ensure_trainer() {
  if (trainer_) return;
  const auto env_config = [this] {
    EnvConfig env_config = config_.env;
    if (env_config.witness_signatures == nullptr && !witness_signatures_.empty())
      env_config.witness_signatures = &witness_signatures_;
    return env_config;
  };
  auto factory = [this, env_config](std::size_t /*worker*/) -> std::unique_ptr<rl::Env> {
    return std::make_unique<CompatibleSetEnv>(*netlist_, rare_nets_, *matrix_,
                                              env_config(), &pool_);
  };
  // rollout_lanes > 1 swaps the scalar per-worker envs for one batched
  // CompatibleSetVectorEnv; lane l draws the RNG stream worker l would have,
  // so artifacts and resume points stay bit-identical across the two layouts.
  auto vector_factory =
      [this, env_config](std::size_t lanes) -> std::unique_ptr<rl::VectorEnv> {
    return std::make_unique<CompatibleSetVectorEnv>(*netlist_, rare_nets_, *matrix_,
                                                    env_config(), &pool_, lanes);
  };
  trainer_ = std::make_unique<rl::PpoTrainer>(factory, config_.ppo, config_.seed,
                                              vector_factory);
  if (pending_trainer_state_.has_value()) {
    trainer_->restore(*pending_trainer_state_);
    pending_trainer_state_.reset();
  }
}

std::uint64_t Pipeline::train_sat_queries() const {
  std::uint64_t total = sat_queries_base_;
  if (trainer_) {
    for (const auto& env : trainer_->envs())
      if (const auto* cse = dynamic_cast<const CompatibleSetEnv*>(env.get()))
        total += cse->sat_queries();
    if (const auto* vec =
            dynamic_cast<const CompatibleSetVectorEnv*>(trainer_->vector_env()))
      total += vec->sat_queries();
  }
  return total;
}

StageStatus Pipeline::run_train(std::size_t updates, const StageControl& control) {
  if (!matrix_.has_value())
    throw PermanentError("Pipeline: train stage requires the compatibility stage");
  if (updates == 0) updates = effective_updates();
  ensure_trainer();

  util::WatchdogScope watchdog(control.stage_timeout_seconds);
  util::Stopwatch watch;
  StageStatus status = StageStatus::Complete;
  std::size_t done = 0;
  try {
    DETERRENT_FAULT_POINT("pipeline.stage_boundary");
    for (; done < updates; ++done) {
      status = checkpoint(control, {Stage::Train, done, updates,
                                    "pool " + std::to_string(pool_.size()) + ", largest " +
                                        std::to_string(pool_.max_set_size()),
                                    watch.elapsed_seconds(), train_sat_queries()});
      if (status != StageStatus::Complete) break;

      TrainingSnapshot snap;
      snap.ppo = trainer_->update();
      snap.pool_size = pool_.size();
      snap.max_set_size = pool_.max_set_size();
      snap.cumulative_steps = trainer_->total_steps();
      snap.cumulative_episodes = trainer_->total_episodes();
      snap.sat_queries = train_sat_queries();
      snap.elapsed_seconds = train_seconds_ + watch.elapsed_seconds();
      history_.push_back(snap);
      // New training grows the pool, so any earlier extraction is stale — the
      // Extract stage must run again before its artifact can be exported.
      extract_done_ = false;
    }
  } catch (const TimeoutError&) {
    // The watchdog fired inside an update: the trainer's in-memory state is
    // mid-flight and must not be checkpointed (see Pipeline::poisoned).
    poisoned_ = true;
    train_seconds_ += watch.elapsed_seconds();
    return StageStatus::TimedOut;
  } catch (...) {
    poisoned_ = true;
    train_seconds_ += watch.elapsed_seconds();
    throw;
  }
  train_seconds_ += watch.elapsed_seconds();

  if (status == StageStatus::Complete)
    checkpoint(control, {Stage::Train, updates, updates,
                         "pool " + std::to_string(pool_.size()) + ", largest " +
                             std::to_string(pool_.max_set_size()),
                         watch.elapsed_seconds(), train_sat_queries()});
  return status;
}

StageStatus Pipeline::run_extract(std::size_t k, const StageControl& control) {
  if (!matrix_.has_value())
    throw PermanentError("Pipeline: extract stage requires the compatibility stage");
  if (history_.empty() && pool_.size() == 0)
    throw PermanentError("Pipeline: extract stage requires training first "
                "(the distinct-set pool is empty)");
  if (k == 0) k = config_.k_patterns;

  util::WatchdogScope watchdog(control.stage_timeout_seconds);
  try {
    DETERRENT_FAULT_POINT("pipeline.stage_boundary");
    util::Stopwatch watch;
    const std::vector<util::BitVec> candidates = pool_.k_largest(k);
    sim::PatternSet patterns(netlist_->inputs().size());
    std::vector<util::BitVec> kept_sets;
    std::unordered_set<util::BitVec, util::BitVecHash> distinct_patterns;

    if (!candidates.empty()) {
      sat::NetlistOracle oracle(*netlist_);
      util::Rng rng(config_.seed ^ 0xd1e5c0de);
      std::vector<sat::Constraint> constraints;
      for (std::size_t s = 0; s < candidates.size(); ++s) {
        // A cancelled or over-budget extraction discards the partial batch:
        // extraction is cheap relative to training and restarting it keeps the
        // pattern artifact all-or-nothing.
        if (const auto status = checkpoint(
                control, {Stage::Extract, s, candidates.size(),
                          std::to_string(patterns.pattern_count()) + " patterns",
                          watch.elapsed_seconds(), 0});
            status != StageStatus::Complete)
          return status;

        const auto& set = candidates[s];
        constraints.clear();
        for (const std::uint32_t idx : set.to_indices())
          constraints.push_back({rare_nets_[idx].net, rare_nets_[idx].rare_value});
        oracle.randomize_completion(rng);
        const auto pattern = oracle.find_pattern(constraints);
        // Every pooled set was SAT-verified during training; an UNSAT here
        // would indicate a bug, but stay robust and simply skip.
        if (!pattern.has_value()) {
          util::Log::warn("pipeline: pooled set of size ", set.count(),
                          " unexpectedly unsatisfiable; skipped");
          continue;
        }
        if (distinct_patterns.insert(*pattern).second) {
          patterns.push(*pattern);
          kept_sets.push_back(set);
        }
      }
    }

    patterns_ = std::move(patterns);
    extracted_sets_ = std::move(kept_sets);
    extract_done_ = true;
    checkpoint(control, {Stage::Extract, candidates.size(), candidates.size(),
                         std::to_string(patterns_.pattern_count()) + " patterns",
                         watch.elapsed_seconds(), 0});
    return StageStatus::Complete;
  } catch (const TimeoutError&) {
    // Extraction is all-or-nothing: nothing was committed, so the partial
    // batch is simply dropped.
    return StageStatus::TimedOut;
  }
}

StageStatus Pipeline::run_remaining(const StageControl& control) {
  while (true) {
    StageStatus status = StageStatus::Complete;
    switch (next_stage()) {
      case Stage::Lint: status = run_lint(control); break;
      case Stage::RareNets: status = run_rare_nets(control); break;
      case Stage::Compatibility: status = run_compatibility(control); break;
      case Stage::Train:
        status = run_train(effective_updates() - history_.size(), control);
        break;
      case Stage::Extract: status = run_extract(0, control); break;
      case Stage::Done: return StageStatus::Complete;
    }
    if (status != StageStatus::Complete) return status;
  }
}

// ---------------------------------------------------------- exports --------

LintArtifact Pipeline::export_lint() const {
  if (!lint_done_) throw PermanentError("Pipeline: lint stage has not run");
  LintArtifact a;
  a.netlist_fingerprint = fingerprint_;
  a.fail_on = config_.lint.fail_on;
  a.rejected = lint_rejected_;
  a.report = lint_report_;
  return a;
}

RareNetArtifact Pipeline::export_rare_nets() const {
  if (!rare_done_) throw PermanentError("Pipeline: rare-nets stage has not run");
  RareNetArtifact a;
  a.netlist_fingerprint = fingerprint_;
  a.threshold = config_.rare.threshold;
  a.seed = config_.seed;
  a.rare_nets = rare_nets_;
  a.rng_state_after = offline_rng_state_;
  return a;
}

CompatibilityArtifact Pipeline::export_compatibility() const {
  if (!matrix_.has_value()) throw PermanentError("Pipeline: compatibility stage has not run");
  CompatibilityArtifact a;
  a.netlist_fingerprint = fingerprint_;
  a.rare_hash = rare_hash();
  a.matrix = *matrix_;
  a.witness_signatures = witness_signatures_;
  a.stats = compat_stats_;
  return a;
}

PolicyArtifact Pipeline::export_policy() const {
  if (!trainer_ && !pending_trainer_state_.has_value())
    throw PermanentError("Pipeline: train stage has not run");
  PolicyArtifact a;
  a.netlist_fingerprint = fingerprint_;
  a.rare_hash = rare_hash();
  a.trainer = trainer_ ? trainer_->state() : *pending_trainer_state_;
  // Canonical (size-descending, content tie-broken) order, not the hash-set
  // iteration order of all(): a save → adopt → save round trip must emit
  // byte-identical policy artifacts, or the artifact cache and any
  // byte-comparing resume check would see spurious differences.
  a.pool_sets = pool_.k_largest(pool_.size());
  a.history = history_;
  a.train_seconds = train_seconds_;
  return a;
}

PatternArtifact Pipeline::export_patterns() const {
  if (!extract_done_) throw PermanentError("Pipeline: extract stage has not run");
  PatternArtifact a;
  a.netlist_fingerprint = fingerprint_;
  a.rare_hash = rare_hash();
  a.patterns = patterns_;
  a.extracted_sets = extracted_sets_;
  return a;
}

// --------------------------------------------------------- adoption --------

void Pipeline::adopt(LintArtifact artifact) {
  if (lint_done_) throw PermanentError("Pipeline: lint stage already populated");
  if (artifact.netlist_fingerprint != fingerprint_)
    throw PermanentError("Pipeline: lint artifact belongs to a different netlist");
  lint_report_ = std::move(artifact.report);
  // Re-derive the verdict under the *current* config: adopting a report into
  // a run with a stricter fail_on must not smuggle the design past the door,
  // and resuming with lint disabled waives a stored rejection explicitly.
  lint_rejected_ = config_.lint.enabled &&
                   (artifact.rejected || lint_report_.rejects(config_.lint.fail_on));
  lint_done_ = true;
}

void Pipeline::adopt(RareNetArtifact artifact) {
  if (rare_done_) throw PermanentError("Pipeline: rare-nets stage already populated");
  if (artifact.netlist_fingerprint != fingerprint_)
    throw PermanentError("Pipeline: rare-net artifact belongs to a different netlist");
  if (artifact.rare_nets.empty())
    throw PermanentError("Pipeline: rare-net artifact holds no rare nets");
  for (const auto& rn : artifact.rare_nets)
    if (rn.net >= netlist_->net_count())
      throw PermanentError("Pipeline: rare-net artifact references net " +
                  std::to_string(rn.net) + " outside the netlist");
  rare_nets_ = std::move(artifact.rare_nets);
  offline_rng_state_ = artifact.rng_state_after;
  rare_done_ = true;
}

void Pipeline::adopt(CompatibilityArtifact artifact) {
  if (!rare_done_)
    throw PermanentError("Pipeline: adopt rare nets before the compatibility artifact");
  if (matrix_.has_value()) throw PermanentError("Pipeline: compatibility stage already populated");
  if (artifact.netlist_fingerprint != fingerprint_)
    throw PermanentError("Pipeline: compatibility artifact belongs to a different netlist");
  if (artifact.rare_hash != rare_hash())
    throw PermanentError("Pipeline: compatibility artifact was built from different rare nets");
  if (artifact.matrix.size() != rare_nets_.size())
    throw PermanentError("Pipeline: compatibility matrix size " +
                std::to_string(artifact.matrix.size()) + " does not match " +
                std::to_string(rare_nets_.size()) + " rare nets");
  matrix_ = std::move(artifact.matrix);
  witness_signatures_ = std::move(artifact.witness_signatures);
  compat_stats_ = artifact.stats;
}

void Pipeline::adopt(PolicyArtifact artifact) {
  if (!matrix_.has_value())
    throw PermanentError("Pipeline: adopt the compatibility artifact before the policy");
  if (trainer_ || !history_.empty())
    throw PermanentError("Pipeline: train stage already populated");
  if (artifact.netlist_fingerprint != fingerprint_)
    throw PermanentError("Pipeline: policy artifact belongs to a different netlist");
  if (artifact.rare_hash != rare_hash())
    throw PermanentError("Pipeline: policy artifact was built from different rare nets");
  for (const auto& set : artifact.pool_sets)
    if (set.size() != rare_nets_.size())
      throw PermanentError("Pipeline: pooled set width does not match the rare-net count");
  pool_.replace(std::move(artifact.pool_sets));
  history_ = std::move(artifact.history);
  train_seconds_ = artifact.train_seconds;
  sat_queries_base_ = history_.empty() ? 0 : history_.back().sat_queries;
  // Applied (and shape-validated) when the trainer is built on the next
  // run_train call — construction needs the env factory, which needs the
  // matrix adopted just above.
  pending_trainer_state_ = std::move(artifact.trainer);
}

void Pipeline::adopt(PatternArtifact artifact) {
  if (!matrix_.has_value())
    throw PermanentError("Pipeline: adopt the compatibility artifact before patterns");
  if (artifact.netlist_fingerprint != fingerprint_)
    throw PermanentError("Pipeline: pattern artifact belongs to a different netlist");
  if (artifact.rare_hash != rare_hash())
    throw PermanentError("Pipeline: pattern artifact was built from different rare nets");
  if (artifact.patterns.input_count() != netlist_->inputs().size())
    throw PermanentError("Pipeline: pattern width does not match the netlist inputs");
  for (const auto& set : artifact.extracted_sets)
    if (set.size() != rare_nets_.size())
      throw PermanentError("Pipeline: extracted-set width does not match the rare-net count");
  patterns_ = std::move(artifact.patterns);
  extracted_sets_ = std::move(artifact.extracted_sets);
  extract_done_ = true;
}

}  // namespace deterrent::core

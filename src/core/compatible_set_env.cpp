#include "core/compatible_set_env.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace deterrent::core {

CompatibleSetEnv::CompatibleSetEnv(const netlist::Netlist& netlist,
                                   std::span<const analysis::RareNet> rare_nets,
                                   const analysis::CompatibilityMatrix& matrix,
                                   const EnvConfig& config, DistinctSetPool* pool)
    : netlist_(&netlist),
      rare_nets_(rare_nets.begin(), rare_nets.end()),
      matrix_(&matrix),
      config_(config),
      pool_(pool),
      oracle_(netlist),
      state_(rare_nets.size()),
      mask_(rare_nets.size()) {
  DETERRENT_ASSERT(matrix.size() == rare_nets_.size(),
                   "compatibility matrix / rare net size mismatch");
  DETERRENT_ASSERT(config_.witness_signatures == nullptr ||
                       config_.witness_signatures->size() == rare_nets_.size(),
                   "witness signature count / rare net count mismatch");
  max_steps_ = config_.max_steps != 0
                   ? config_.max_steps
                   : std::min<std::size_t>(rare_nets_.size(), 128);
}

std::vector<float> CompatibleSetEnv::reset(util::Rng& rng) {
  state_.clear_all();
  members_.clear();
  steps_ = 0;
  episode_open_ = true;

  // Initial state: a random rare net whose singleton is satisfiable (§3.1).
  std::vector<std::uint32_t> viable;
  viable.reserve(rare_nets_.size());
  for (std::uint32_t i = 0; i < rare_nets_.size(); ++i)
    if (matrix_->singleton_satisfiable(i)) viable.push_back(i);
  DETERRENT_ASSERT(!viable.empty(), "no satisfiable rare net to start an episode");
  const std::uint32_t start = viable[rng.below(viable.size())];
  state_.set(start);
  members_.push_back(start);
  if (config_.witness_signatures != nullptr)
    witness_ = (*config_.witness_signatures)[start];

  if (config_.mask_mode == MaskMode::Pairwise) {
    mask_ = matrix_->row(start);
    mask_.set(start, false);
  } else {
    mask_.set_all();
    mask_.set(start, false);
    // Even unmasked agents may only pick nets that can exist in some pattern.
    for (std::uint32_t i = 0; i < rare_nets_.size(); ++i)
      if (!matrix_->singleton_satisfiable(i)) mask_.set(i, false);
  }
  return observation();
}

std::vector<float> CompatibleSetEnv::observation() const {
  std::vector<float> obs(rare_nets_.size(), 0.0f);
  for (const std::uint32_t m : members_) obs[m] = 1.0f;
  return obs;
}

bool CompatibleSetEnv::joint_satisfiable_with(std::uint32_t action) {
  // Simulation witness first: a random pattern that drove every member AND
  // the candidate to their rare values simultaneously proves satisfiability
  // without touching the oracle.
  if (config_.witness_signatures != nullptr &&
      witness_.intersects((*config_.witness_signatures)[action])) {
    ++witness_hits_;
    return true;
  }
  scratch_constraints_.clear();
  scratch_constraints_.reserve(members_.size() + 1);
  for (const std::uint32_t m : members_)
    scratch_constraints_.push_back({rare_nets_[m].net, rare_nets_[m].rare_value});
  scratch_constraints_.push_back({rare_nets_[action].net, rare_nets_[action].rare_value});
  return oracle_
      .try_satisfiable(scratch_constraints_, config_.sat_conflict_budget)
      .value_or(false);
}

std::size_t CompatibleSetEnv::longest_satisfiable_prefix() {
  // Prefix satisfiability is monotone (constraints only accumulate), so a
  // binary search needs O(log T) SAT calls instead of one per step — the
  // mechanism that makes end-of-episode reward cheap (§3.2).
  const auto* sigs = config_.witness_signatures;
  auto prefix_sat = [&](std::size_t len) {
    if (sigs != nullptr) {
      util::BitVec joint = (*sigs)[members_[0]];
      for (std::size_t k = 1; k < len; ++k) joint &= (*sigs)[members_[k]];
      if (joint.any()) {
        ++witness_hits_;
        return true;
      }
    }
    scratch_constraints_.clear();
    for (std::size_t k = 0; k < len; ++k) {
      const auto& rn = rare_nets_[members_[k]];
      scratch_constraints_.push_back({rn.net, rn.rare_value});
    }
    return oracle_
        .try_satisfiable(scratch_constraints_, config_.sat_conflict_budget)
        .value_or(false);
  };

  std::size_t lo = 1;  // singleton start is satisfiable by construction
  std::size_t hi = members_.size();
  if (prefix_sat(hi)) return hi;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (prefix_sat(mid))
      lo = mid;
    else
      hi = mid;
  }

  // Greedy repair: pairwise evidence admitted members the joint check now
  // rejects, but usually only a few — retry members beyond the verified
  // prefix individually, up to the configured budget. Extra SAT calls are
  // paid only on truncated episodes and never exceed the all-steps per-step
  // cost, yet recover most of the set (the paper's small −5.6% quality gap
  // rather than a prefix cliff).
  std::vector<std::uint32_t> kept(members_.begin(),
                                  members_.begin() + static_cast<std::ptrdiff_t>(lo));
  util::BitVec joint;
  if (sigs != nullptr) {
    joint = (*sigs)[kept[0]];
    for (std::size_t k = 1; k < kept.size(); ++k) joint &= (*sigs)[kept[k]];
  }
  scratch_constraints_.clear();
  for (const std::uint32_t m : kept)
    scratch_constraints_.push_back({rare_nets_[m].net, rare_nets_[m].rare_value});
  std::size_t budget = config_.eoe_repair_budget;
  for (std::size_t k = lo + 1; k < members_.size() && budget > 0; ++k, --budget) {
    const auto& rn = rare_nets_[members_[k]];  // member lo itself broke the prefix
    scratch_constraints_.push_back({rn.net, rn.rare_value});
    if (sigs != nullptr && joint.intersects((*sigs)[members_[k]])) {
      ++witness_hits_;
      joint &= (*sigs)[members_[k]];
      kept.push_back(members_[k]);
      continue;
    }
    if (oracle_.try_satisfiable(scratch_constraints_, config_.sat_conflict_budget)
            .value_or(false)) {
      if (sigs != nullptr) joint &= (*sigs)[members_[k]];
      kept.push_back(members_[k]);
    } else {
      scratch_constraints_.pop_back();
    }
  }
  members_ = std::move(kept);
  return members_.size();
}

void CompatibleSetEnv::refresh_mask_after_add(std::uint32_t action) {
  if (config_.mask_mode == MaskMode::Pairwise) {
    mask_ &= matrix_->row(action);
  }
  mask_.set(action, false);
}

void CompatibleSetEnv::finish_episode() {
  episode_open_ = false;
  if (config_.reward_mode == RewardMode::EndOfEpisode) return;  // handled by caller
  if (pool_ != nullptr) pool_->add(state_);
}

rl::StepResult CompatibleSetEnv::step(std::uint32_t action) {
  DETERRENT_ASSERT(episode_open_, "step after episode end");
  DETERRENT_ASSERT(action < rare_nets_.size(), "action out of range");
  DETERRENT_ASSERT(mask_.test(action), "masked action chosen");

  rl::StepResult result;
  ++steps_;

  bool accepted = false;
  if (config_.reward_mode == RewardMode::AllSteps) {
    // Ground truth at every step: pairwise feasibility (mask or matrix) is
    // necessary, the SAT check against the whole set is decisive.
    const bool pairwise_ok =
        config_.mask_mode == MaskMode::Pairwise ||
        [&] {
          for (const std::uint32_t m : members_)
            if (!matrix_->compatible(m, action)) return false;
          return true;
        }();
    accepted = pairwise_ok && !state_.test(action) && joint_satisfiable_with(action);
    if (accepted) {
      state_.set(action);
      members_.push_back(action);
      if (config_.witness_signatures != nullptr)
        witness_ &= (*config_.witness_signatures)[action];
      refresh_mask_after_add(action);
      result.reward = size_reward(members_.size());  // |s_{t+1}|^p, p=2 in §3.1
    } else {
      // Known-bad action: drop it from the mask so the episode can terminate.
      mask_.set(action, false);
      result.reward = 0.0f;
    }
  } else {
    // EndOfEpisode: optimistic transition on pairwise evidence only.
    bool pairwise_ok = !state_.test(action);
    if (pairwise_ok)
      for (const std::uint32_t m : members_) {
        if (!matrix_->compatible(m, action)) {
          pairwise_ok = false;
          break;
        }
      }
    accepted = pairwise_ok;
    if (accepted) {
      state_.set(action);
      members_.push_back(action);
      refresh_mask_after_add(action);
    } else {
      mask_.set(action, false);
    }
    result.reward = 0.0f;  // sparse: paid at episode end
  }

  const bool out_of_actions = mask_.none();
  const bool out_of_steps = steps_ >= max_steps_;
  result.done = out_of_actions || out_of_steps;

  if (result.done) {
    if (config_.reward_mode == RewardMode::EndOfEpisode) {
      const std::size_t prefix = longest_satisfiable_prefix();
      members_.resize(prefix);
      util::BitVec verified(rare_nets_.size());
      for (const std::uint32_t m : members_) verified.set(m);
      state_ = verified;
      result.reward = size_reward(prefix);
      if (pool_ != nullptr) pool_->add(state_);
      episode_open_ = false;
    } else {
      finish_episode();
    }
  }

  result.observation = observation();
  return result;
}

}  // namespace deterrent::core

#include "core/compatible_set_env.hpp"

#include <algorithm>
#include <cmath>

#include "sat/encoder.hpp"
#include "util/assert.hpp"

namespace deterrent::core {

CompatibleSetEnv::CompatibleSetEnv(const netlist::Netlist& netlist,
                                   std::span<const analysis::RareNet> rare_nets,
                                   const analysis::CompatibilityMatrix& matrix,
                                   const EnvConfig& config, DistinctSetPool* pool)
    : netlist_(&netlist),
      rare_nets_(rare_nets.begin(), rare_nets.end()),
      matrix_(&matrix),
      config_(config),
      pool_(pool),
      oracle_(netlist, config.oracle),
      state_(rare_nets.size()),
      mask_(rare_nets.size()) {
  DETERRENT_ASSERT(matrix.size() == rare_nets_.size(),
                   "compatibility matrix / rare net size mismatch");
  DETERRENT_ASSERT(config_.witness_signatures == nullptr ||
                       config_.witness_signatures->size() == rare_nets_.size(),
                   "witness signature count / rare net count mismatch");
  if (config_.oracle.inprocess) {
    std::vector<netlist::NetId> query_nets;
    query_nets.reserve(rare_nets_.size());
    for (const auto& rn : rare_nets_) query_nets.push_back(rn.net);
    oracle_.declare_query_nets(query_nets);
  }
  max_steps_ = config_.max_steps != 0
                   ? config_.max_steps
                   : std::min<std::size_t>(rare_nets_.size(), 128);
}

std::vector<float> CompatibleSetEnv::reset(util::Rng& rng) {
  state_.clear_all();
  members_.clear();
  steps_ = 0;
  episode_open_ = true;

  // Initial state: a random rare net whose singleton is satisfiable (§3.1).
  std::vector<std::uint32_t> viable;
  viable.reserve(rare_nets_.size());
  for (std::uint32_t i = 0; i < rare_nets_.size(); ++i)
    if (matrix_->singleton_satisfiable(i)) viable.push_back(i);
  DETERRENT_ASSERT(!viable.empty(), "no satisfiable rare net to start an episode");
  const std::uint32_t start = viable[rng.below(viable.size())];
  state_.set(start);
  members_.push_back(start);
  if (config_.witness_signatures != nullptr)
    witness_ = (*config_.witness_signatures)[start];

  if (config_.mask_mode == MaskMode::Pairwise) {
    mask_ = matrix_->row(start);
    mask_.set(start, false);
  } else {
    mask_.set_all();
    mask_.set(start, false);
    // Even unmasked agents may only pick nets that can exist in some pattern.
    for (std::uint32_t i = 0; i < rare_nets_.size(); ++i)
      if (!matrix_->singleton_satisfiable(i)) mask_.set(i, false);
  }
  return observation();
}

std::vector<float> CompatibleSetEnv::observation() const {
  std::vector<float> obs(rare_nets_.size(), 0.0f);
  for (const std::uint32_t m : members_) obs[m] = 1.0f;
  return obs;
}

bool CompatibleSetEnv::joint_satisfiable_with(std::uint32_t action) {
  // Simulation witness first: a random pattern that drove every member AND
  // the candidate to their rare values simultaneously proves satisfiability
  // without touching the oracle.
  if (config_.witness_signatures != nullptr &&
      witness_.intersects((*config_.witness_signatures)[action])) {
    ++witness_hits_;
    return true;
  }
  scratch_constraints_.clear();
  scratch_constraints_.reserve(members_.size() + 1);
  for (const std::uint32_t m : members_)
    scratch_constraints_.push_back({rare_nets_[m].net, rare_nets_[m].rare_value});
  scratch_constraints_.push_back({rare_nets_[action].net, rare_nets_[action].rare_value});
  return oracle_
      .try_satisfiable(scratch_constraints_, config_.sat_conflict_budget)
      .value_or(false);
}

std::size_t CompatibleSetEnv::longest_satisfiable_prefix() {
  // Prefix satisfiability is monotone (constraints only accumulate), so a
  // binary search needs O(log T) SAT calls instead of one per step — the
  // mechanism that makes end-of-episode reward cheap (§3.2).
  const auto* sigs = config_.witness_signatures;
  auto prefix_sat = [&](std::size_t len) {
    if (sigs != nullptr) {
      util::BitVec joint = (*sigs)[members_[0]];
      for (std::size_t k = 1; k < len; ++k) joint &= (*sigs)[members_[k]];
      if (joint.any()) {
        ++witness_hits_;
        return true;
      }
    }
    scratch_constraints_.clear();
    for (std::size_t k = 0; k < len; ++k) {
      const auto& rn = rare_nets_[members_[k]];
      scratch_constraints_.push_back({rn.net, rn.rare_value});
    }
    return oracle_
        .try_satisfiable(scratch_constraints_, config_.sat_conflict_budget)
        .value_or(false);
  };

  std::size_t lo = 1;  // singleton start is satisfiable by construction
  std::size_t hi = members_.size();
  if (prefix_sat(hi)) return hi;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (prefix_sat(mid))
      lo = mid;
    else
      hi = mid;
  }

  // Greedy repair: pairwise evidence admitted members the joint check now
  // rejects, but usually only a few — retry members beyond the verified
  // prefix individually, up to the configured budget. Extra SAT calls are
  // paid only on truncated episodes and never exceed the all-steps per-step
  // cost, yet recover most of the set (the paper's small −5.6% quality gap
  // rather than a prefix cliff).
  std::vector<std::uint32_t> kept(members_.begin(),
                                  members_.begin() + static_cast<std::ptrdiff_t>(lo));
  util::BitVec joint;
  if (sigs != nullptr) {
    joint = (*sigs)[kept[0]];
    for (std::size_t k = 1; k < kept.size(); ++k) joint &= (*sigs)[kept[k]];
  }
  scratch_constraints_.clear();
  for (const std::uint32_t m : kept)
    scratch_constraints_.push_back({rare_nets_[m].net, rare_nets_[m].rare_value});
  std::size_t budget = config_.eoe_repair_budget;
  for (std::size_t k = lo + 1; k < members_.size() && budget > 0; ++k, --budget) {
    const auto& rn = rare_nets_[members_[k]];  // member lo itself broke the prefix
    scratch_constraints_.push_back({rn.net, rn.rare_value});
    if (sigs != nullptr && joint.intersects((*sigs)[members_[k]])) {
      ++witness_hits_;
      joint &= (*sigs)[members_[k]];
      kept.push_back(members_[k]);
      continue;
    }
    if (oracle_.try_satisfiable(scratch_constraints_, config_.sat_conflict_budget)
            .value_or(false)) {
      if (sigs != nullptr) joint &= (*sigs)[members_[k]];
      kept.push_back(members_[k]);
    } else {
      scratch_constraints_.pop_back();
    }
  }
  members_ = std::move(kept);
  return members_.size();
}

void CompatibleSetEnv::refresh_mask_after_add(std::uint32_t action) {
  if (config_.mask_mode == MaskMode::Pairwise) {
    mask_ &= matrix_->row(action);
  }
  mask_.set(action, false);
}

void CompatibleSetEnv::finish_episode() {
  episode_open_ = false;
  if (config_.reward_mode == RewardMode::EndOfEpisode) return;  // handled by caller
  if (pool_ != nullptr) pool_->add(state_);
}

rl::StepResult CompatibleSetEnv::step(std::uint32_t action) {
  DETERRENT_ASSERT(episode_open_, "step after episode end");
  DETERRENT_ASSERT(action < rare_nets_.size(), "action out of range");
  DETERRENT_ASSERT(mask_.test(action), "masked action chosen");

  rl::StepResult result;
  ++steps_;

  bool accepted = false;
  if (config_.reward_mode == RewardMode::AllSteps) {
    // Ground truth at every step: pairwise feasibility (mask or matrix) is
    // necessary, the SAT check against the whole set is decisive.
    const bool pairwise_ok =
        config_.mask_mode == MaskMode::Pairwise ||
        [&] {
          for (const std::uint32_t m : members_)
            if (!matrix_->compatible(m, action)) return false;
          return true;
        }();
    accepted = pairwise_ok && !state_.test(action) && joint_satisfiable_with(action);
    if (accepted) {
      state_.set(action);
      members_.push_back(action);
      if (config_.witness_signatures != nullptr)
        witness_ &= (*config_.witness_signatures)[action];
      refresh_mask_after_add(action);
      result.reward = size_reward(members_.size());  // |s_{t+1}|^p, p=2 in §3.1
    } else {
      // Known-bad action: drop it from the mask so the episode can terminate.
      mask_.set(action, false);
      result.reward = 0.0f;
    }
  } else {
    // EndOfEpisode: optimistic transition on pairwise evidence only.
    bool pairwise_ok = !state_.test(action);
    if (pairwise_ok)
      for (const std::uint32_t m : members_) {
        if (!matrix_->compatible(m, action)) {
          pairwise_ok = false;
          break;
        }
      }
    accepted = pairwise_ok;
    if (accepted) {
      state_.set(action);
      members_.push_back(action);
      refresh_mask_after_add(action);
    } else {
      mask_.set(action, false);
    }
    result.reward = 0.0f;  // sparse: paid at episode end
  }

  const bool out_of_actions = mask_.none();
  const bool out_of_steps = steps_ >= max_steps_;
  result.done = out_of_actions || out_of_steps;

  if (result.done) {
    if (config_.reward_mode == RewardMode::EndOfEpisode) {
      const std::size_t prefix = longest_satisfiable_prefix();
      members_.resize(prefix);
      util::BitVec verified(rare_nets_.size());
      for (const std::uint32_t m : members_) verified.set(m);
      state_ = verified;
      result.reward = size_reward(prefix);
      if (pool_ != nullptr) pool_->add(state_);
      episode_open_ = false;
    } else {
      finish_episode();
    }
  }

  result.observation = observation();
  return result;
}

// ------------------------------------------------------- vectorized lanes --

CompatibleSetVectorEnv::CompatibleSetVectorEnv(
    const netlist::Netlist& netlist, std::span<const analysis::RareNet> rare_nets,
    const analysis::CompatibilityMatrix& matrix, const EnvConfig& config,
    DistinctSetPool* pool, std::size_t lanes, SatBackend backend)
    : netlist_(&netlist),
      rare_nets_(rare_nets.begin(), rare_nets.end()),
      matrix_(&matrix),
      config_(config),
      pool_(pool),
      backend_(backend) {
  DETERRENT_ASSERT(lanes >= 1, "CompatibleSetVectorEnv needs at least one lane");
  DETERRENT_ASSERT(matrix.size() == rare_nets_.size(),
                   "compatibility matrix / rare net size mismatch");
  DETERRENT_ASSERT(config_.witness_signatures == nullptr ||
                       config_.witness_signatures->size() == rare_nets_.size(),
                   "witness signature count / rare net count mismatch");
  max_steps_ = config_.max_steps != 0
                   ? config_.max_steps
                   : std::min<std::size_t>(rare_nets_.size(), 128);
  lanes_.resize(lanes);
  for (auto& lane : lanes_) {
    lane.state = util::BitVec(rare_nets_.size());
    lane.mask = util::BitVec(rare_nets_.size());
    lane.obs.assign(rare_nets_.size(), 0.0f);
  }
  oracles_.resize(lanes);
}

float CompatibleSetVectorEnv::size_reward(std::size_t set_size) const {
  if (config_.reward_exponent == 2.0) {
    const auto s = static_cast<float>(set_size);
    return s * s;
  }
  return static_cast<float>(
      std::pow(static_cast<double>(set_size), config_.reward_exponent));
}

sat::NetlistOracle& CompatibleSetVectorEnv::lane_oracle(std::size_t lane) {
  auto& oracle = oracles_[lane];
  if (!oracle) {
    oracle = std::make_unique<sat::NetlistOracle>(*netlist_, config_.oracle);
    if (config_.oracle.inprocess) {
      std::vector<netlist::NetId> query_nets;
      query_nets.reserve(rare_nets_.size());
      for (const auto& rn : rare_nets_) query_nets.push_back(rn.net);
      oracle->declare_query_nets(query_nets);
    }
  }
  return *oracle;
}

void CompatibleSetVectorEnv::rebuild_observation(Lane& lane) {
  std::fill(lane.obs.begin(), lane.obs.end(), 0.0f);
  for (const std::uint32_t m : lane.members) lane.obs[m] = 1.0f;
}

void CompatibleSetVectorEnv::reset_lane(std::size_t l, util::Rng& rng) {
  DETERRENT_ASSERT(l < lanes_.size(), "CompatibleSetVectorEnv lane out of range");
  Lane& lane = lanes_[l];
  lane.state.clear_all();
  lane.members.clear();
  lane.steps = 0;
  lane.open = true;
  lane.done = false;
  lane.reward = 0.0f;

  // Same draw sequence as CompatibleSetEnv::reset — one below() against the
  // viable-start list — so a lane and its scalar twin consume their RNG
  // stream identically.
  std::vector<std::uint32_t> viable;
  viable.reserve(rare_nets_.size());
  for (std::uint32_t i = 0; i < rare_nets_.size(); ++i)
    if (matrix_->singleton_satisfiable(i)) viable.push_back(i);
  DETERRENT_ASSERT(!viable.empty(), "no satisfiable rare net to start an episode");
  const std::uint32_t start = viable[rng.below(viable.size())];
  lane.state.set(start);
  lane.members.push_back(start);
  if (config_.witness_signatures != nullptr)
    lane.witness = (*config_.witness_signatures)[start];

  if (config_.mask_mode == MaskMode::Pairwise) {
    lane.mask = matrix_->row(start);
    lane.mask.set(start, false);
  } else {
    lane.mask.set_all();
    lane.mask.set(start, false);
    for (std::uint32_t i = 0; i < rare_nets_.size(); ++i)
      if (!matrix_->singleton_satisfiable(i)) lane.mask.set(i, false);
  }
  rebuild_observation(lane);
}

bool CompatibleSetVectorEnv::pairwise_ok(const Lane& lane,
                                         std::uint32_t action) const {
  for (const std::uint32_t m : lane.members)
    if (!matrix_->compatible(m, action)) return false;
  return true;
}

void CompatibleSetVectorEnv::build_constraints(const Lane& lane,
                                               std::uint32_t extra_action) {
  scratch_constraints_.clear();
  scratch_constraints_.reserve(lane.members.size() + 1);
  for (const std::uint32_t m : lane.members)
    scratch_constraints_.push_back({rare_nets_[m].net, rare_nets_[m].rare_value});
  if (extra_action != static_cast<std::uint32_t>(-1))
    scratch_constraints_.push_back(
        {rare_nets_[extra_action].net, rare_nets_[extra_action].rare_value});
}

util::ThreadPool* CompatibleSetVectorEnv::dispatch_pool() {
  if (config_.sat_dispatch_threads < 2) return nullptr;
  if (!dispatch_pool_)
    dispatch_pool_ = std::make_unique<util::ThreadPool>(config_.sat_dispatch_threads);
  return dispatch_pool_.get();
}

sat::Portfolio& CompatibleSetVectorEnv::shared_portfolio() {
  if (!portfolio_) {
    sat::PortfolioConfig pc;
    pc.solvers = std::min<std::size_t>(lanes_.size(), 4);
    portfolio_ = std::make_unique<sat::Portfolio>(
        pc, [this](sat::Solver& solver, std::size_t) {
          sat::encode_netlist(*netlist_, solver);
          for (const netlist::NetId n : netlist_->inputs()) solver.set_frozen(n);
          for (const auto& rn : rare_nets_) solver.set_frozen(rn.net);
        });
  }
  return *portfolio_;
}

bool CompatibleSetVectorEnv::solve_joint(std::size_t lane,
                                         std::span<const sat::Constraint> constraints) {
  if (backend_ == SatBackend::PerLane)
    return lane_oracle(lane)
        .try_satisfiable(constraints, config_.sat_conflict_budget)
        .value_or(false);
  // Single-query portfolio path: the race mode, so with a dispatch pool every
  // clone attacks the one lane's query and the first finisher cancels the
  // rest (lane-level early exit). Pool-less this is exactly clone 0.
  std::vector<sat::Lit> assumptions;
  assumptions.reserve(constraints.size());
  for (const auto& c : constraints)
    assumptions.push_back(sat::mk_lit(c.net, /*negated=*/!c.value));
  ++portfolio_queries_;
  return shared_portfolio().solve_one(assumptions, dispatch_pool(),
                                      config_.sat_conflict_budget) ==
         sat::Solver::Result::Sat;
}

std::size_t CompatibleSetVectorEnv::longest_satisfiable_prefix(std::size_t l) {
  // Mirrors CompatibleSetEnv::longest_satisfiable_prefix: binary search over
  // the monotone prefix plus greedy repair, with the witness joint computed
  // as whole-word BitVec ANDs over the shared signature table.
  Lane& lane = lanes_[l];
  const auto* sigs = config_.witness_signatures;
  auto prefix_sat = [&](std::size_t len) {
    if (sigs != nullptr) {
      util::BitVec joint = (*sigs)[lane.members[0]];
      for (std::size_t k = 1; k < len; ++k) joint &= (*sigs)[lane.members[k]];
      if (joint.any()) {
        ++witness_hits_;
        return true;
      }
    }
    scratch_constraints_.clear();
    for (std::size_t k = 0; k < len; ++k) {
      const auto& rn = rare_nets_[lane.members[k]];
      scratch_constraints_.push_back({rn.net, rn.rare_value});
    }
    return solve_joint(l, scratch_constraints_);
  };

  std::size_t lo = 1;  // singleton start is satisfiable by construction
  std::size_t hi = lane.members.size();
  if (prefix_sat(hi)) return hi;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (prefix_sat(mid))
      lo = mid;
    else
      hi = mid;
  }

  std::vector<std::uint32_t> kept(
      lane.members.begin(), lane.members.begin() + static_cast<std::ptrdiff_t>(lo));
  util::BitVec joint;
  if (sigs != nullptr) {
    joint = (*sigs)[kept[0]];
    for (std::size_t k = 1; k < kept.size(); ++k) joint &= (*sigs)[kept[k]];
  }
  std::vector<sat::Constraint> constraints;
  for (const std::uint32_t m : kept)
    constraints.push_back({rare_nets_[m].net, rare_nets_[m].rare_value});
  std::size_t budget = config_.eoe_repair_budget;
  for (std::size_t k = lo + 1; k < lane.members.size() && budget > 0; ++k, --budget) {
    const auto& rn = rare_nets_[lane.members[k]];  // member lo broke the prefix
    constraints.push_back({rn.net, rn.rare_value});
    if (sigs != nullptr && joint.intersects((*sigs)[lane.members[k]])) {
      ++witness_hits_;
      joint &= (*sigs)[lane.members[k]];
      kept.push_back(lane.members[k]);
      continue;
    }
    if (solve_joint(l, constraints)) {
      if (sigs != nullptr) joint &= (*sigs)[lane.members[k]];
      kept.push_back(lane.members[k]);
    } else {
      constraints.pop_back();
    }
  }
  lane.members = std::move(kept);
  return lane.members.size();
}

void CompatibleSetVectorEnv::finish_lane(std::size_t l) {
  Lane& lane = lanes_[l];
  lane.open = false;
  lane.done = true;
  if (config_.reward_mode == RewardMode::EndOfEpisode) {
    const std::size_t prefix = longest_satisfiable_prefix(l);
    lane.members.resize(prefix);
    util::BitVec verified(rare_nets_.size());
    for (const std::uint32_t m : lane.members) verified.set(m);
    lane.state = std::move(verified);
    lane.reward = size_reward(prefix);
    if (pool_ != nullptr) pool_->add(lane.state);
    rebuild_observation(lane);
  } else {
    if (pool_ != nullptr) pool_->add(lane.state);
  }
}

void CompatibleSetVectorEnv::step(std::span<const std::uint32_t> actions,
                                  const util::BitVec& active) {
  DETERRENT_ASSERT(actions.size() == lanes_.size() && active.size() == lanes_.size(),
                   "CompatibleSetVectorEnv::step batch size mismatch");

  const auto* sigs = config_.witness_signatures;
  enum class Verdict : std::uint8_t { Reject, Accept, NeedSat };
  // Small fixed-capacity per-step scratch; lanes() is bounded and the arrays
  // reset every call.
  std::vector<Verdict> verdicts(lanes_.size(), Verdict::Reject);
  std::vector<std::size_t> pending;

  // Phase 1 — per-lane screen + whole-word witness sweep across all active
  // lanes (AllSteps only; EndOfEpisode admits on pairwise evidence alone).
  for (std::size_t l = active.find_first(); l < lanes_.size();
       l = active.find_next(l + 1)) {
    Lane& lane = lanes_[l];
    DETERRENT_ASSERT(lane.open && !lane.done,
                     "CompatibleSetVectorEnv::step on a closed lane");
    const std::uint32_t action = actions[l];
    DETERRENT_ASSERT(action < rare_nets_.size(), "action out of range");
    DETERRENT_ASSERT(lane.mask.test(action), "masked action chosen");
    ++lane.steps;

    if (config_.reward_mode == RewardMode::AllSteps) {
      const bool screen_ok =
          (config_.mask_mode == MaskMode::Pairwise || pairwise_ok(lane, action)) &&
          !lane.state.test(action);
      if (!screen_ok) {
        verdicts[l] = Verdict::Reject;
      } else if (sigs != nullptr &&
                 lane.witness.intersects((*sigs)[action])) {
        ++witness_hits_;
        verdicts[l] = Verdict::Accept;
      } else {
        verdicts[l] = Verdict::NeedSat;
        pending.push_back(l);
      }
    } else {
      verdicts[l] = !lane.state.test(action) && pairwise_ok(lane, action)
                        ? Verdict::Accept
                        : Verdict::Reject;
    }
  }

  // Phase 2 — batched SAT dispatch for the witness misses.
  if (pending.size() > 1) ++batched_dispatches_;
  if (backend_ == SatBackend::SharedPortfolio && !pending.empty()) {
    // One portfolio batch answers the whole step; with a dispatch pool the
    // clones work-steal down the lane queries instead of round-robining.
    std::vector<sat::Portfolio::Query> queries;
    queries.reserve(pending.size());
    for (const std::size_t l : pending) {
      build_constraints(lanes_[l], actions[l]);
      sat::Portfolio::Query q;
      q.conflict_budget = config_.sat_conflict_budget;
      for (const auto& c : scratch_constraints_)
        q.assumptions.push_back(sat::mk_lit(c.net, /*negated=*/!c.value));
      queries.push_back(std::move(q));
    }
    portfolio_queries_ += queries.size();
    const auto results = shared_portfolio().solve_batch(queries, dispatch_pool());
    for (std::size_t q = 0; q < pending.size(); ++q)
      verdicts[pending[q]] = results[q] == sat::Solver::Result::Sat
                                 ? Verdict::Accept
                                 : Verdict::Reject;
  } else if (!pending.empty()) {
    // PerLane: constraints are staged sequentially (scratch_constraints_ is
    // shared), then each pending lane solves on its private oracle — the
    // exact query stream its scalar twin would see, so the verdicts are
    // bit-identical whether the lanes run sequentially or across the pool.
    std::vector<std::vector<sat::Constraint>> staged(pending.size());
    for (std::size_t k = 0; k < pending.size(); ++k) {
      build_constraints(lanes_[pending[k]], actions[pending[k]]);
      staged[k] = scratch_constraints_;
    }
    const auto solve_pending = [&](std::size_t k) {
      const std::size_t l = pending[k];
      verdicts[l] = lane_oracle(l)
                            .try_satisfiable(staged[k], config_.sat_conflict_budget)
                            .value_or(false)
                        ? Verdict::Accept
                        : Verdict::Reject;
    };
    util::ThreadPool* pool = dispatch_pool();
    if (pool != nullptr && pending.size() > 1) {
      pool->parallel_for(pending.size(), solve_pending);
    } else {
      for (std::size_t k = 0; k < pending.size(); ++k) solve_pending(k);
    }
  }

  // Phase 3 — apply transitions, rewards, terminations.
  for (std::size_t l = active.find_first(); l < lanes_.size();
       l = active.find_next(l + 1)) {
    Lane& lane = lanes_[l];
    const std::uint32_t action = actions[l];
    const bool accepted = verdicts[l] == Verdict::Accept;

    if (accepted) {
      lane.state.set(action);
      lane.members.push_back(action);
      lane.obs[action] = 1.0f;
      if (config_.reward_mode == RewardMode::AllSteps && sigs != nullptr)
        lane.witness &= (*sigs)[action];
      if (config_.mask_mode == MaskMode::Pairwise) lane.mask &= matrix_->row(action);
      lane.mask.set(action, false);
      lane.reward = config_.reward_mode == RewardMode::AllSteps
                        ? size_reward(lane.members.size())
                        : 0.0f;
    } else {
      lane.mask.set(action, false);
      lane.reward = 0.0f;
    }

    const bool out_of_actions = lane.mask.none();
    const bool out_of_steps = lane.steps >= max_steps_;
    if (out_of_actions || out_of_steps)
      finish_lane(l);  // may overwrite reward (EndOfEpisode terminal payout)
  }
}

std::span<const float> CompatibleSetVectorEnv::observation(std::size_t lane) const {
  return lanes_[lane].obs;
}

const util::BitVec& CompatibleSetVectorEnv::action_mask(std::size_t lane) const {
  return lanes_[lane].mask;
}

float CompatibleSetVectorEnv::reward(std::size_t lane) const {
  return lanes_[lane].reward;
}

bool CompatibleSetVectorEnv::done(std::size_t lane) const {
  return lanes_[lane].done;
}

std::span<const std::uint32_t> CompatibleSetVectorEnv::members(
    std::size_t lane) const {
  return lanes_[lane].members;
}

std::uint64_t CompatibleSetVectorEnv::sat_queries() const {
  std::uint64_t total = portfolio_queries_;
  for (const auto& oracle : oracles_)
    if (oracle) total += oracle->query_count();
  return total;
}

}  // namespace deterrent::core

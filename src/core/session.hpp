#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace deterrent::core {

class ArtifactCache;

/// Directory-backed persistence for a Pipeline run.
///
/// A session owns one directory holding a meta artifact (config echo +
/// netlist fingerprint) plus one file per completed stage:
///
///   session.meta       DeterrentConfig + fingerprint
///   lint.art           LintArtifact (front-door verdict sidecar)
///   rare_nets.art      RareNetArtifact
///   compatibility.art  CompatibilityArtifact
///   policy.art         PolicyArtifact (resumable training checkpoint)
///   patterns.art       PatternArtifact
///
/// lint.art is a *sidecar*, not a prefix member: later stages consume the
/// netlist, not the lint report, so a quarantined or absent lint file never
/// truncates the resume prefix — the warnings are simply lost and, on a run
/// that has not passed the front door yet, lint re-runs.
///
/// **Validation.** Every load is envelope-checked (magic, ArtifactKind,
/// kArtifactFormatVersion, CRC) and fingerprint-checked against the bound
/// netlist, so stale, truncated, version-skewed, or foreign files fail
/// loudly with the offending path in the error — a session directory can
/// never silently mix artifacts from different netlists, runs, or format
/// versions. Files are written atomically (fsync + write-then-rename), so a
/// crash mid-save leaves the previous consistent state.
///
/// **Self-healing.** A load that fails for any non-transient reason (torn or
/// bit-flipped file, version skew, broken hash chain) does not abort the
/// resume: the offending file is renamed to `<name>.corrupt`, recorded in
/// quarantined(), and the artifact prefix simply ends there — the next
/// run_remaining() regenerates the stage from the last good artifact.
/// Transient failures (EMFILE-style I/O, injected transient faults) are
/// rethrown instead, so the retry layer above (core::Campaign) can back off
/// and try again without destroying a good file.
///
/// **Resume semantics.** resume() reconstructs a Pipeline from the longest
/// contiguous stage prefix on disk (a gap ends the prefix: patterns.art
/// without policy.art is ignored); a run interrupted after any stage and
/// resumed this way produces bit-identical patterns to an uninterrupted
/// one. save() persists every completed stage — including a mid-training
/// policy checkpoint once the train stage has started — and skips rewriting
/// the immutable rare/compat artifacts that already exist. The layout is
/// machine-portable: a directory written on one host resumes on another
/// (this is the exchange unit of campaign and future distributed runs).
class Session {
 public:
  static constexpr const char* kMetaFile = "session.meta";
  static constexpr const char* kLintFile = "lint.art";
  static constexpr const char* kRareFile = "rare_nets.art";
  static constexpr const char* kCompatFile = "compatibility.art";
  static constexpr const char* kPolicyFile = "policy.art";
  static constexpr const char* kPatternFile = "patterns.art";
  /// Scratch directory for a sharded compatibility build (manifest + shard
  /// partials); removed by save() once the merged artifact is on disk.
  static constexpr const char* kCompatShardDir = "compat_shards";

  /// Binds a directory (created if missing) to a netlist. The netlist must
  /// outlive the session.
  Session(std::string dir, const netlist::Netlist& netlist);

  const std::string& dir() const { return dir_; }
  std::string path(const char* file) const;
  std::uint64_t netlist_fingerprint() const { return fingerprint_; }

  bool has_meta() const;
  bool has_lint() const;
  bool has_rare_nets() const;
  bool has_compatibility() const;
  bool has_policy() const;
  bool has_patterns() const;

  /// First stage with no artifact on disk (gaps end the prefix).
  Stage next_stage() const;

  /// Writes the meta artifact (config snapshot). Called once at session
  /// creation by a driver; later resume() calls read the config back so the
  /// caller does not have to re-supply identical flags.
  void save_config(const DeterrentConfig& config) const;
  DeterrentConfig load_config() const;

  /// Persists every completed stage of the pipeline (plus the config when no
  /// meta file exists yet). Training state is saved whenever the train stage
  /// has started, making mid-training checkpoints resumable.
  void save(const Pipeline& pipeline) const;

  /// Rebuilds a pipeline from the stored config and the longest contiguous
  /// artifact prefix on disk. The caller runs `run_remaining()` (or single
  /// stages) and save()s again.
  std::unique_ptr<Pipeline> resume() const;

  /// As resume(), but with an explicit config instead of the stored one
  /// (e.g. to continue training with a larger update budget). Stage artifacts
  /// are still validated against the netlist and each other.
  std::unique_ptr<Pipeline> resume_with(const DeterrentConfig& config) const;

  /// Resume for possibly-damaged directories: a missing or corrupt meta file
  /// is quarantined and replaced with `fallback` (a fresh session is simply
  /// initialized). When the stored config loads, it wins over `fallback`, so
  /// a resumed run keeps its original seed and budgets.
  std::unique_ptr<Pipeline> resume_or_init(const DeterrentConfig& fallback) const;

  /// Artifact files the most recent resume call renamed to `<name>.corrupt`
  /// (session-relative names, e.g. "policy.art").
  const std::vector<std::string>& quarantined() const { return quarantined_; }

  /// Attaches a shared content-addressed cache (non-owning; may be nullptr to
  /// detach). With a cache attached, resume hydrates missing stage files from
  /// entries keyed by (netlist fingerprint, config hash, kind) before walking
  /// the prefix — so a previously-seen design skips straight past its offline
  /// stages — and save() publishes completed artifacts back. Cached entries
  /// are validated exactly like session files on every fetch; a corrupt entry
  /// is evicted and the stage regenerates (never trusted). Policy and pattern
  /// artifacts are only published once the run is complete, so the cache holds
  /// deterministic final artifacts, never mid-training checkpoints.
  void attach_cache(ArtifactCache* cache) { cache_ = cache; }
  ArtifactCache* cache() const { return cache_; }

 private:
  std::unique_ptr<Pipeline> resume_prefix(const DeterrentConfig& config) const;
  void hydrate_from_cache(const DeterrentConfig& config) const;
  void publish_to_cache(const Pipeline& pipeline) const;

  std::string dir_;
  const netlist::Netlist* netlist_;
  std::uint64_t fingerprint_ = 0;
  ArtifactCache* cache_ = nullptr;  // non-owning, see attach_cache
  mutable std::vector<std::string> quarantined_;
};

}  // namespace deterrent::core

#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "analysis/compatibility.hpp"
#include "analysis/rare_nets.hpp"
#include "core/set_pool.hpp"
#include "rl/env.hpp"
#include "sat/oracle.hpp"
#include "sat/portfolio.hpp"

namespace deterrent::core {

/// When the agent learns about compatibility (§3.2, Table 1).
enum class RewardMode {
  /// SAT-verify each chosen action against the current set and pay
  /// |s_{t+1}|² immediately — the basic formulation of §3.1.
  AllSteps,
  /// Trust the pairwise mask during the episode and verify once at the end,
  /// paying |longest satisfiable prefix|² as a terminal reward — the ≈86×
  /// faster variant of §3.2.
  EndOfEpisode,
};

/// Whether invalid actions are hidden from the agent (§3.3, Figure 2).
enum class MaskMode {
  /// Only actions pairwise-compatible with every member of the current set
  /// (and not already members) are selectable.
  Pairwise,
  /// All non-member actions stay selectable; incompatible choices waste the
  /// step (reward 0, state unchanged) — the inefficiency §3.3 eliminates.
  None,
};

struct EnvConfig {
  RewardMode reward_mode = RewardMode::AllSteps;
  MaskMode mask_mode = MaskMode::Pairwise;
  /// Episode step cap T. 0 ⇒ min(#rare nets, 128).
  std::size_t max_steps = 0;
  /// Conflict budget per SAT compatibility check (<0 = unlimited). Exhausted
  /// budget counts as incompatible — conservative, never unsound.
  std::int64_t sat_conflict_budget = 100000;
  /// Reward = |s_{t+1}|^reward_exponent on compatible growth. The paper uses
  /// 2 and notes any power > 1 works (the reward must be convex in |s| so
  /// that harder-won late additions pay more); the ablation bench sweeps it.
  double reward_exponent = 2.0;
  /// EndOfEpisode only: after the longest-satisfiable-prefix search, retry at
  /// most this many of the optimistically admitted members one by one
  /// (greedy repair). SIZE_MAX = repair everything (quality-first, the
  /// default); 0 = pure prefix truncation (the literal §3.2 scheme, cheapest).
  std::size_t eoe_repair_budget = static_cast<std::size_t>(-1);
  /// Optional per-rare-net simulation witness signatures (bit p set when
  /// random pattern p drove rare net i to its rare value), as produced by
  /// analysis::rare_activation_signatures / build_compatibility. When set, a
  /// non-empty intersection of member signatures is a constructive proof of
  /// joint satisfiability, so the env skips the SAT call — the offline
  /// simulation pre-filter of §3.3 applied inside the reward loop. A witness
  /// implies SAT-satisfiability, so as long as the oracle's conflict budget
  /// never trips, rewards and transitions are unchanged and only the SAT
  /// query count drops. When a budgeted SAT call *would* have timed out
  /// (conservatively rejecting a satisfiable set), the witness instead
  /// accepts it — a strictly sounder answer, but one that can differ from
  /// the witness-free env. Must outlive the env; one signature per rare net,
  /// all of equal pattern length.
  const std::vector<util::BitVec>* witness_signatures = nullptr;
  /// Inprocessing policy for the env's SAT oracle(s). Off by default — the
  /// untouched solver is the bit-reproducible reference. Opting in keeps
  /// every Sat/Unsat verdict (the env declares the rare nets as the only
  /// query nets, so elimination never removes a constrainable variable);
  /// only budget-exhausted Unknown classifications can differ from the
  /// default. Whether it pays is workload-dependent: the oracle amortizes
  /// simplification over its query stream, so short-lived or many-oracle
  /// setups (high lane counts) can spend more on the passes than they save —
  /// measure before enabling.
  sat::OracleConfig oracle;
  /// Worker threads for the vectorized env's lane SAT dispatch; 0/1 =
  /// sequential (the bit-reproducible reference), >= 2 creates a private
  /// pool. PerLane solves the step's pending lanes on their private oracles
  /// concurrently — each oracle still sees exactly its scalar twin's query
  /// stream, so results stay bit-identical at any thread count. With
  /// SharedPortfolio the pool reaches sat::Portfolio::solve_batch
  /// (work-stealing across clones) and solve_one (first-finisher race =
  /// lane-level early exit on single queries); Sat/Unsat answers are
  /// unchanged, only budget-exhausted Unknowns can vary with scheduling, as
  /// the portfolio already documents. Ignored by the scalar env.
  std::size_t sat_dispatch_threads = 0;
};

/// The DETERRENT Markov decision process (§3.1):
///   state   — current set of compatible rare nets (observation: 0/1 vector)
///   action  — index of a rare net to add
///   reward  — |s_{t+1}|² when the addition keeps the set compatible, else 0
///
/// Each instance owns a private SAT oracle, so one env per rollout worker
/// runs lock-free. Episode-final sets are reported to the shared
/// DistinctSetPool (satisfiable prefix only, so every pooled set is realizable
/// by a single test pattern).
class CompatibleSetEnv final : public rl::Env {
 public:
  CompatibleSetEnv(const netlist::Netlist& netlist,
                   std::span<const analysis::RareNet> rare_nets,
                   const analysis::CompatibilityMatrix& matrix, const EnvConfig& config,
                   DistinctSetPool* pool);

  std::size_t observation_size() const override { return rare_nets_.size(); }
  std::size_t action_count() const override { return rare_nets_.size(); }
  std::vector<float> reset(util::Rng& rng) override;
  rl::StepResult step(std::uint32_t action) override;
  const util::BitVec& action_mask() const override { return mask_; }

  /// Members of the current set in insertion order.
  std::span<const std::uint32_t> members() const { return members_; }

  /// Number of SAT queries issued so far (Table 1's cost driver).
  std::uint64_t sat_queries() const { return oracle_.query_count(); }

  /// Joint-satisfiability checks answered by a simulation witness instead of
  /// a SAT call (0 unless config.witness_signatures is set).
  std::uint64_t witness_hits() const { return witness_hits_; }

 private:
  float size_reward(std::size_t set_size) const {
    if (config_.reward_exponent == 2.0) {
      const auto s = static_cast<float>(set_size);
      return s * s;
    }
    return static_cast<float>(
        std::pow(static_cast<double>(set_size), config_.reward_exponent));
  }

  bool joint_satisfiable_with(std::uint32_t action);
  std::size_t longest_satisfiable_prefix();
  void refresh_mask_after_add(std::uint32_t action);
  std::vector<float> observation() const;
  void finish_episode();

  const netlist::Netlist* netlist_;
  std::vector<analysis::RareNet> rare_nets_;
  const analysis::CompatibilityMatrix* matrix_;
  EnvConfig config_;
  DistinctSetPool* pool_;
  sat::NetlistOracle oracle_;

  util::BitVec state_;                  // membership bitset
  std::vector<std::uint32_t> members_;  // insertion order (for prefix search)
  util::BitVec mask_;
  std::size_t steps_ = 0;
  std::size_t max_steps_ = 0;
  bool episode_open_ = false;
  std::vector<sat::Constraint> scratch_constraints_;
  util::BitVec witness_;  // running AND of member signatures (AllSteps mode)
  std::uint64_t witness_hits_ = 0;
};

/// Lock-step batch of N CompatibleSetEnv lanes sharing one copy of the rare
/// nets, compatibility matrix, witness signatures, and DistinctSetPool.
///
/// Per step() the lanes run in three phases: a per-lane screen (membership +
/// pairwise matrix), a whole-word witness sweep (`util::BitVec` AND /
/// intersect over the shared signature table — one pass across all active
/// lanes), and a batched SAT dispatch for the lanes the witness could not
/// answer. Episode-final sets funnel into the shared pool exactly as the
/// scalar env's do.
///
/// Determinism contract: with SatBackend::PerLane (the default), lane l's
/// trajectory is bit-identical to a standalone CompatibleSetEnv fed the same
/// RNG stream and actions — each lane owns a private, lazily-built oracle
/// whose learnt-clause state evolves exactly as its scalar twin's, so even
/// conflict-budget-exhausted Unknowns classify identically. The pool is a
/// content-keyed set, so interleaved lane completion order cannot leak into
/// artifacts.
class CompatibleSetVectorEnv final : public rl::VectorEnv {
 public:
  /// How joint-satisfiability checks that miss the witness reach a solver.
  enum class SatBackend {
    /// One lazily-constructed NetlistOracle per lane; the step's pending
    /// queries are dispatched as a batch over the lane oracles. Bit-identical
    /// to N scalar envs under any conflict budget.
    PerLane,
    /// One shared clause-sharing sat::Portfolio answers each step's query
    /// batch via solve_batch(). Sat/Unsat answers match PerLane; only
    /// budget-exhausted Unknown classifications may differ (learnt clauses
    /// accumulate across lanes). Cheaper on memory at high lane counts.
    SharedPortfolio,
  };

  CompatibleSetVectorEnv(const netlist::Netlist& netlist,
                         std::span<const analysis::RareNet> rare_nets,
                         const analysis::CompatibilityMatrix& matrix,
                         const EnvConfig& config, DistinctSetPool* pool,
                         std::size_t lanes,
                         SatBackend backend = SatBackend::PerLane);

  std::size_t lanes() const override { return lanes_.size(); }
  std::size_t observation_size() const override { return rare_nets_.size(); }
  std::size_t action_count() const override { return rare_nets_.size(); }
  void reset_lane(std::size_t lane, util::Rng& rng) override;
  void step(std::span<const std::uint32_t> actions,
            const util::BitVec& active) override;
  std::span<const float> observation(std::size_t lane) const override;
  const util::BitVec& action_mask(std::size_t lane) const override;
  float reward(std::size_t lane) const override;
  bool done(std::size_t lane) const override;

  /// Members of `lane`'s current set in insertion order.
  std::span<const std::uint32_t> members(std::size_t lane) const;

  /// Total SAT queries across all lanes (Table 1's cost driver).
  std::uint64_t sat_queries() const;

  /// Joint checks answered by the witness sweep instead of a SAT call.
  std::uint64_t witness_hits() const { return witness_hits_; }

  /// step() calls that dispatched more than one SAT query at once.
  std::uint64_t batched_sat_dispatches() const { return batched_dispatches_; }

 private:
  struct Lane {
    util::BitVec state;                 // membership bitset
    util::BitVec mask;                  // valid actions
    util::BitVec witness;               // running AND of member signatures
    std::vector<std::uint32_t> members; // insertion order
    std::vector<float> obs;             // dense observation, kept incrementally
    float reward = 0.0f;
    std::size_t steps = 0;
    bool done = true;                   // unfrozen only by reset_lane()
    bool open = false;
  };

  float size_reward(std::size_t set_size) const;
  bool pairwise_ok(const Lane& lane, std::uint32_t action) const;
  sat::NetlistOracle& lane_oracle(std::size_t lane);
  sat::Portfolio& shared_portfolio();
  /// Lazy dispatch pool; nullptr when config.sat_dispatch_threads < 2.
  util::ThreadPool* dispatch_pool();
  void build_constraints(const Lane& lane, std::uint32_t extra_action);
  /// Answers "are these constraints jointly satisfiable" through the
  /// configured backend; exhausted budgets report false (conservative).
  bool solve_joint(std::size_t lane, std::span<const sat::Constraint> constraints);
  std::size_t longest_satisfiable_prefix(std::size_t lane);
  void finish_lane(std::size_t lane);
  void rebuild_observation(Lane& lane);

  const netlist::Netlist* netlist_;
  std::vector<analysis::RareNet> rare_nets_;
  const analysis::CompatibilityMatrix* matrix_;
  EnvConfig config_;
  DistinctSetPool* pool_;
  SatBackend backend_;
  std::size_t max_steps_ = 0;

  std::vector<Lane> lanes_;
  std::vector<std::unique_ptr<sat::NetlistOracle>> oracles_;  // PerLane, lazy
  std::unique_ptr<sat::Portfolio> portfolio_;                 // SharedPortfolio, lazy
  std::unique_ptr<util::ThreadPool> dispatch_pool_;           // lazy, see dispatch_pool()
  std::vector<sat::Constraint> scratch_constraints_;
  std::uint64_t portfolio_queries_ = 0;
  std::uint64_t witness_hits_ = 0;
  std::uint64_t batched_dispatches_ = 0;
};

}  // namespace deterrent::core

#pragma once

#include <memory>
#include <vector>

#include "core/pipeline.hpp"

namespace deterrent::core {

/// The DETERRENT pipeline: offline rare-net + compatibility analysis, PPO
/// training over the compatible-set MDP, and SAT-based pattern extraction
/// from the k largest distinct sets.
///
/// This is a thin facade over core::Pipeline, kept for the original
/// blocking, in-memory call shape. New code that needs checkpointing,
/// progress callbacks, budgets, or resume should use Pipeline directly (or
/// Session for directory-backed persistence); `pipeline()` exposes the
/// underlying object for mixed use.
///
/// The netlist must be combinational (full-scan view for sequential designs).
class Deterrent {
 public:
  Deterrent(const netlist::Netlist& netlist, const DeterrentConfig& config);
  ~Deterrent();

  /// Phase 1 (offline, Figure 4 left): finds rare nets under the configured
  /// threshold and builds the pairwise compatibility matrix, parallelized
  /// across offline_threads workers.
  void prepare();

  /// Phase 1 with externally supplied rare nets — used by the Figure 7
  /// cross-threshold experiment (train at θ=0.14, evaluate at θ=0.10).
  void prepare_with(std::vector<analysis::RareNet> rare_nets);

  /// Phase 2: runs `updates` PPO iterations, appending to the training
  /// history. Callable repeatedly to continue training. Requires prepare().
  ///
  /// Zero-updates edge: `updates == 0` means "use config.updates", and a
  /// config.updates of 0 is clamped to a single update — train() always
  /// trains. (Historically `train(0)` with `config.updates == 0` silently
  /// ran nothing, which made the subsequent extract_patterns() return an
  /// empty set with no diagnostic.)
  const std::vector<TrainingSnapshot>& train(std::size_t updates = 0);

  /// Phase 3: turns the k largest distinct compatible sets into test
  /// patterns, one SAT model each, with randomized don't-care fill
  /// (config.k_patterns when 0). Requires at least one train() call or a
  /// non-empty pool — extracting with nothing to extract throws.
  sim::PatternSet extract_patterns(std::size_t k = 0);

  /// Convenience: prepare → train → extract in one call.
  sim::PatternSet run();

  bool prepared() const { return pipeline_->compatibility_done(); }
  std::span<const analysis::RareNet> rare_nets() const { return pipeline_->rare_nets(); }
  const analysis::CompatibilityMatrix& matrix() const { return pipeline_->matrix(); }
  /// Phase-1 simulation witnesses (one per rare net), reused by the training
  /// environments to answer joint-satisfiability checks without SAT calls.
  const std::vector<util::BitVec>& witness_signatures() const {
    return pipeline_->witness_signatures();
  }
  const analysis::CompatibilityBuildStats& compat_stats() const {
    return pipeline_->compat_stats();
  }
  DistinctSetPool& pool() { return pipeline_->pool(); }
  const DistinctSetPool& pool() const { return pipeline_->pool(); }
  const std::vector<TrainingSnapshot>& history() const { return pipeline_->history(); }
  const netlist::Netlist& target() const { return pipeline_->target(); }
  const DeterrentConfig& config() const { return pipeline_->config(); }

  /// The distinct sets behind the most recent extract_patterns() call,
  /// parallel to the returned pattern order.
  const std::vector<util::BitVec>& extracted_sets() const {
    return pipeline_->extracted_sets();
  }

  /// Cumulative SAT queries issued by the training environments — works for
  /// both the scalar per-worker envs and the vectorized lane batch.
  std::uint64_t train_sat_queries() const;

  /// The staged pipeline behind this facade — for artifact export, session
  /// persistence, or progress-controlled stage runs on a live object.
  Pipeline& pipeline() { return *pipeline_; }
  const Pipeline& pipeline() const { return *pipeline_; }

 private:
  std::unique_ptr<Pipeline> pipeline_;
};

}  // namespace deterrent::core

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "analysis/compatibility.hpp"
#include "analysis/rare_nets.hpp"
#include "core/compatible_set_env.hpp"
#include "core/set_pool.hpp"
#include "rl/ppo.hpp"
#include "sim/pattern.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::core {

/// End-to-end configuration of the DETERRENT pipeline (Figure 4).
struct DeterrentConfig {
  analysis::RareNetConfig rare;                ///< step ❶: rareness filtering
  analysis::CompatibilityBuildConfig compat;   ///< offline pairwise phase
  EnvConfig env;                               ///< MDP variant (§3.1–3.3)
  rl::PpoConfig ppo = boosted_ppo_defaults();  ///< §3.4 exploration boost on
  std::size_t updates = 40;     ///< PPO update iterations in train()
  std::size_t k_patterns = 32;  ///< k largest distinct sets → test patterns
  std::uint64_t seed = 1;
  std::size_t offline_threads = 0;  ///< offline-phase workers; 0 = hardware

  /// PPO defaults with the paper's boosted exploration (§3.4): entropy
  /// coefficient c_eps = 1 and GAE smoothing λ = 0.99.
  static rl::PpoConfig boosted_ppo_defaults() {
    rl::PpoConfig ppo;
    ppo.entropy_coef = 1.0f;
    ppo.gae_lambda = 0.99f;
    return ppo;
  }
};

/// One row of the training log — enough to regenerate Table 1 (rates),
/// Figure 2 (max compatible set), and Figure 3 (loss trends).
struct TrainingSnapshot {
  rl::PpoUpdateStats ppo;
  std::size_t pool_size = 0;
  std::size_t max_set_size = 0;
  std::uint64_t cumulative_steps = 0;
  std::uint64_t cumulative_episodes = 0;
  std::uint64_t sat_queries = 0;
  double elapsed_seconds = 0.0;  ///< since training started
};

/// The DETERRENT pipeline: offline rare-net + compatibility analysis, PPO
/// training over the compatible-set MDP, and SAT-based pattern extraction
/// from the k largest distinct sets.
///
/// The netlist must be combinational (full-scan view for sequential designs).
class Deterrent {
 public:
  Deterrent(const netlist::Netlist& netlist, const DeterrentConfig& config);
  ~Deterrent();

  /// Phase 1 (offline, Figure 4 left): finds rare nets under the configured
  /// threshold and builds the pairwise compatibility matrix, parallelized
  /// across offline_threads workers.
  void prepare();

  /// Phase 1 with externally supplied rare nets — used by the Figure 7
  /// cross-threshold experiment (train at θ=0.14, evaluate at θ=0.10).
  void prepare_with(std::vector<analysis::RareNet> rare_nets);

  /// Phase 2: runs `updates` PPO iterations (config.updates when 0),
  /// appending to the training history. Callable repeatedly to continue
  /// training. Requires prepare().
  const std::vector<TrainingSnapshot>& train(std::size_t updates = 0);

  /// Phase 3: turns the k largest distinct compatible sets into test
  /// patterns, one SAT model each, with randomized don't-care fill
  /// (config.k_patterns when 0). Requires at least one train() call —
  /// or a non-empty pool.
  sim::PatternSet extract_patterns(std::size_t k = 0);

  /// Convenience: prepare → train → extract in one call.
  sim::PatternSet run();

  bool prepared() const { return matrix_.has_value(); }
  std::span<const analysis::RareNet> rare_nets() const { return rare_nets_; }
  const analysis::CompatibilityMatrix& matrix() const { return *matrix_; }
  /// Phase-1 simulation witnesses (one per rare net), reused by the training
  /// environments to answer joint-satisfiability checks without SAT calls.
  const std::vector<util::BitVec>& witness_signatures() const {
    return witness_signatures_;
  }
  const analysis::CompatibilityBuildStats& compat_stats() const { return compat_stats_; }
  DistinctSetPool& pool() { return pool_; }
  const DistinctSetPool& pool() const { return pool_; }
  const std::vector<TrainingSnapshot>& history() const { return history_; }
  const netlist::Netlist& target() const { return *netlist_; }
  const DeterrentConfig& config() const { return config_; }

  /// The distinct sets behind the most recent extract_patterns() call,
  /// parallel to the returned pattern order.
  const std::vector<util::BitVec>& extracted_sets() const { return extracted_sets_; }

 private:
  const netlist::Netlist* netlist_;
  DeterrentConfig config_;
  std::vector<analysis::RareNet> rare_nets_;
  std::optional<analysis::CompatibilityMatrix> matrix_;
  std::vector<util::BitVec> witness_signatures_;
  analysis::CompatibilityBuildStats compat_stats_;
  DistinctSetPool pool_;
  std::unique_ptr<rl::PpoTrainer> trainer_;
  std::vector<TrainingSnapshot> history_;
  std::vector<util::BitVec> extracted_sets_;
  double train_seconds_ = 0.0;
};

}  // namespace deterrent::core

#include "core/set_pool.hpp"

#include <algorithm>

namespace deterrent::core {

void DistinctSetPool::add(const util::BitVec& set) {
  if (set.none()) return;
  std::lock_guard lock(mutex_);
  if (sets_.insert(set).second) max_size_ = std::max(max_size_, set.count());
}

std::size_t DistinctSetPool::size() const {
  std::lock_guard lock(mutex_);
  return sets_.size();
}

std::size_t DistinctSetPool::max_set_size() const {
  std::lock_guard lock(mutex_);
  return max_size_;
}

std::vector<util::BitVec> DistinctSetPool::k_largest(std::size_t k) const {
  std::vector<util::BitVec> sorted = all();
  std::sort(sorted.begin(), sorted.end(), [](const util::BitVec& a, const util::BitVec& b) {
    const std::size_t ca = a.count();
    const std::size_t cb = b.count();
    if (ca != cb) return ca > cb;
    return a.to_indices() < b.to_indices();  // deterministic tie-break
  });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

std::vector<util::BitVec> DistinctSetPool::all() const {
  std::lock_guard lock(mutex_);
  return {sets_.begin(), sets_.end()};
}

void DistinctSetPool::replace(std::vector<util::BitVec> sets) {
  std::lock_guard lock(mutex_);
  sets_.clear();
  max_size_ = 0;
  for (auto& set : sets) {
    if (set.none()) continue;
    const std::size_t count = set.count();
    if (sets_.insert(std::move(set)).second) max_size_ = std::max(max_size_, count);
  }
}

}  // namespace deterrent::core

#include "core/compat_shards.hpp"

#include <filesystem>
#include <memory>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace deterrent::core {

namespace fs = std::filesystem;

namespace {

util::ArtifactHeader header_for(ArtifactKind kind, std::uint64_t fingerprint) {
  return {static_cast<std::uint32_t>(kind), kArtifactFormatVersion, fingerprint};
}

std::string shard_file(const std::string& dir, std::size_t index) {
  return (fs::path(dir) / ("shard_" + std::to_string(index) + ".art")).string();
}

std::string manifest_file(const std::string& dir) {
  return (fs::path(dir) / "manifest.art").string();
}

}  // namespace

// ------------------------------------------------------------ partial ------

void CompatShardPartial::save(const std::string& path) const {
  util::BinaryWriter w;
  w.u64(rare_hash);
  w.u32(shard_index);
  w.u32(row_begin);
  w.u32(row_end);
  w.u64(matrix.size());
  for (std::uint32_t i = 0; i < matrix.size(); ++i) w.bitvec(matrix.row(i));
  w.u64(stats.pair_count);
  w.u64(stats.sim_resolved);
  w.u64(stats.sat_sat);
  w.u64(stats.sat_unsat);
  w.u64(stats.timeout_pairs);
  util::write_artifact_file(
      path, header_for(ArtifactKind::CompatShardPartial, netlist_fingerprint),
      w.bytes());
}

CompatShardPartial CompatShardPartial::load(const std::string& path,
                                            std::uint64_t expected_fingerprint) {
  CompatShardPartial a;
  const auto payload = util::read_artifact_file(
      path, header_for(ArtifactKind::CompatShardPartial, expected_fingerprint),
      &a.netlist_fingerprint);
  util::BinaryReader r(payload);
  a.rare_hash = r.u64();
  a.shard_index = r.u32();
  a.row_begin = r.u32();
  a.row_end = r.u32();
  const std::uint64_t n = r.u64();
  std::vector<util::BitVec> rows;
  rows.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) rows.push_back(r.bitvec());
  a.matrix = analysis::CompatibilityMatrix::from_rows(std::move(rows));
  a.stats.pair_count = r.u64();
  a.stats.sim_resolved = r.u64();
  a.stats.sat_sat = r.u64();
  a.stats.sat_unsat = r.u64();
  a.stats.timeout_pairs = r.u64();
  r.expect_end();
  return a;
}

// ----------------------------------------------------------- manifest ------

void CompatShardManifest::save(const std::string& path) const {
  util::BinaryWriter w;
  w.u64(rare_hash);
  w.u64(build_hash);
  w.u64(shard_count);
  w.u64(ranges.size());
  for (const auto& [begin, end] : ranges) {
    w.u32(begin);
    w.u32(end);
  }
  util::write_artifact_file(
      path, header_for(ArtifactKind::CompatShardManifest, netlist_fingerprint),
      w.bytes());
}

CompatShardManifest CompatShardManifest::load(const std::string& path,
                                              std::uint64_t expected_fingerprint) {
  CompatShardManifest a;
  const auto payload = util::read_artifact_file(
      path, header_for(ArtifactKind::CompatShardManifest, expected_fingerprint),
      &a.netlist_fingerprint);
  util::BinaryReader r(payload);
  a.rare_hash = r.u64();
  a.build_hash = r.u64();
  a.shard_count = r.u64();
  const std::uint64_t n = r.u64();
  a.ranges.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t begin = r.u32();
    const std::uint32_t end = r.u32();
    a.ranges.emplace_back(begin, end);
  }
  r.expect_end();
  return a;
}

std::uint64_t compat_build_hash(const analysis::CompatibilityBuildConfig& config,
                                std::span<const util::BitVec> signatures) {
  util::Fnv1a hash;
  hash.mix(config.sim_patterns);
  hash.mix(static_cast<std::uint64_t>(config.sat_conflict_budget));
  hash.mix(config.inprocess ? 1 : 0);
  hash.mix(config.portfolio_threads);
  hash.mix(config.share_lbd_cap);
  hash.mix(config.shard_count);
  hash.mix(signatures.size());
  for (const auto& sig : signatures) {
    hash.mix(sig.size());
    for (std::size_t w = 0; w < sig.word_count(); ++w) hash.mix(sig.word(w));
  }
  return hash.value_nonzero();
}

// -------------------------------------------------------- orchestrator -----

analysis::CompatibilityMatrix build_sharded_compatibility(
    const netlist::Netlist& netlist, std::span<const analysis::RareNet> rare_nets,
    const analysis::CompatibilityBuildConfig& config, util::Rng& rng,
    util::ThreadPool* pool, analysis::CompatibilityBuildStats* stats,
    std::vector<util::BitVec>* signatures_out, const std::string& scratch_dir,
    std::uint64_t netlist_fingerprint, std::uint64_t rare_hash) {
  if (config.shard_count < 2 || scratch_dir.empty())
    return analysis::build_compatibility(netlist, rare_nets, config, rng, pool, stats,
                                         signatures_out);

  util::Stopwatch watch;
  const std::size_t n = rare_nets.size();
  analysis::CompatibilityBuildStats local_stats;
  local_stats.pair_count = n * (n + 1) / 2;

  // Phase 1 runs once, continuing the caller's RNG stream exactly as the
  // monolithic build would — signatures (and therefore every downstream bit)
  // cannot depend on how the SAT phase is chunked.
  auto signatures = analysis::rare_activation_signatures(
      netlist, rare_nets, config.sim_patterns, rng, pool);
  const std::uint64_t build_hash = compat_build_hash(config, signatures);
  const auto ranges = analysis::compatibility_shard_ranges(n, config.shard_count);

  std::error_code ec;
  fs::create_directories(scratch_dir, ec);
  if (ec)
    throw Error("compat shards: cannot create scratch directory " + scratch_dir + ": " +
                ec.message());

  // Adopt the scratch directory only when its manifest matches this exact
  // build; anything else — corrupt, version-skewed, or produced by different
  // inputs — is stale and the directory restarts empty.
  const std::string manifest_path = manifest_file(scratch_dir);
  bool manifest_ok = false;
  if (fs::exists(manifest_path, ec)) {
    try {
      const auto manifest = CompatShardManifest::load(manifest_path, netlist_fingerprint);
      manifest_ok = manifest.rare_hash == rare_hash &&
                    manifest.build_hash == build_hash &&
                    manifest.shard_count == ranges.size() && manifest.ranges == ranges;
    } catch (const TransientError&) {
      throw;
    } catch (const Error& e) {
      util::Log::warn("compat shards: discarding corrupt manifest ", manifest_path, " (",
                      e.what(), ")");
    }
  }
  if (!manifest_ok) {
    fs::remove_all(scratch_dir, ec);
    fs::create_directories(scratch_dir, ec);
    CompatShardManifest manifest;
    manifest.netlist_fingerprint = netlist_fingerprint;
    manifest.rare_hash = rare_hash;
    manifest.build_hash = build_hash;
    manifest.shard_count = ranges.size();
    manifest.ranges = ranges;
    manifest.save(manifest_path);
  }

  // Load the partials that survived a previous attempt; corrupt ones are
  // removed and rebuilt (the quarantine-and-regenerate contract).
  std::vector<std::unique_ptr<CompatShardPartial>> partials(ranges.size());
  std::vector<std::size_t> missing;
  for (std::size_t s = 0; s < ranges.size(); ++s) {
    const std::string path = shard_file(scratch_dir, s);
    if (manifest_ok && fs::exists(path, ec)) {
      try {
        auto partial = std::make_unique<CompatShardPartial>(
            CompatShardPartial::load(path, netlist_fingerprint));
        if (partial->rare_hash == rare_hash && partial->shard_index == s &&
            partial->row_begin == ranges[s].first &&
            partial->row_end == ranges[s].second && partial->matrix.size() == n) {
          partials[s] = std::move(partial);
          continue;
        }
        util::Log::warn("compat shards: shard ", s, " does not match the manifest; rebuilding");
      } catch (const TransientError&) {
        throw;
      } catch (const Error& e) {
        util::Log::warn("compat shards: removing corrupt ", path, " (", e.what(), ")");
      }
      fs::remove(path, ec);
    }
    missing.push_back(s);
  }

  // Build (and persist) the missing shards across the pool, one private SAT
  // oracle per shard, each shard single-threaded.
  auto build_one = [&](std::size_t s) {
    auto partial = std::make_unique<CompatShardPartial>();
    partial->netlist_fingerprint = netlist_fingerprint;
    partial->rare_hash = rare_hash;
    partial->shard_index = static_cast<std::uint32_t>(s);
    partial->row_begin = ranges[s].first;
    partial->row_end = ranges[s].second;
    partial->matrix = analysis::build_compatibility_shard(
        netlist, rare_nets, config, signatures, ranges[s].first, ranges[s].second,
        &partial->stats);
    partial->save(shard_file(scratch_dir, s));
    partials[s] = std::move(partial);
  };
  if (pool != nullptr && pool->thread_count() > 1 && missing.size() > 1) {
    pool->parallel_for(missing.size(), [&](std::size_t k) { build_one(missing[k]); });
  } else {
    for (const std::size_t s : missing) build_one(s);
  }

  // Merge in shard order (deterministic), then the shared finalize pass.
  analysis::CompatibilityMatrix matrix(n);
  for (const auto& partial : partials) {
    matrix.merge_or(partial->matrix);
    local_stats.sim_resolved += partial->stats.sim_resolved;
    local_stats.sat_sat += partial->stats.sat_sat;
    local_stats.sat_unsat += partial->stats.sat_unsat;
    local_stats.timeout_pairs += partial->stats.timeout_pairs;
  }
  if (signatures_out != nullptr) *signatures_out = std::move(signatures);
  local_stats.unsat_singletons = analysis::finalize_compatibility(matrix);
  local_stats.build_seconds = watch.elapsed_seconds();
  if (stats != nullptr) *stats = local_stats;
  return matrix;
}

}  // namespace deterrent::core

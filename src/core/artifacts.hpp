#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/compatibility.hpp"
#include "analysis/lint.hpp"
#include "analysis/rare_nets.hpp"
#include "core/compatible_set_env.hpp"
#include "rl/ppo.hpp"
#include "sim/pattern.hpp"
#include "util/serialize.hpp"

namespace deterrent::core {

/// End-to-end configuration of the DETERRENT pipeline (Figure 4).
struct DeterrentConfig {
  analysis::LintConfig lint;                   ///< stage 0: static DRC + trojan screen
  analysis::RareNetConfig rare;                ///< step ❶: rareness filtering
  analysis::CompatibilityBuildConfig compat;   ///< offline pairwise phase
  EnvConfig env;                               ///< MDP variant (§3.1–3.3)
  rl::PpoConfig ppo = boosted_ppo_defaults();  ///< §3.4 exploration boost on
  std::size_t updates = 40;     ///< PPO update iterations in train()
  std::size_t k_patterns = 32;  ///< k largest distinct sets → test patterns
  std::uint64_t seed = 1;
  std::size_t offline_threads = 0;  ///< offline-phase workers; 0 = hardware

  /// PPO defaults with the paper's boosted exploration (§3.4): entropy
  /// coefficient c_eps = 1 and GAE smoothing λ = 0.99.
  static rl::PpoConfig boosted_ppo_defaults() {
    rl::PpoConfig ppo;
    ppo.entropy_coef = 1.0f;
    ppo.gae_lambda = 0.99f;
    return ppo;
  }
};

/// One row of the training log — enough to regenerate Table 1 (rates),
/// Figure 2 (max compatible set), and Figure 3 (loss trends).
struct TrainingSnapshot {
  rl::PpoUpdateStats ppo;
  std::size_t pool_size = 0;
  std::size_t max_set_size = 0;
  std::uint64_t cumulative_steps = 0;
  std::uint64_t cumulative_episodes = 0;
  std::uint64_t sat_queries = 0;
  double elapsed_seconds = 0.0;  ///< since training started
};

// ---------------------------------------------------------------------------
// Serializable stage artifacts.
//
// Each pipeline stage consumes the previous stage's artifact and produces its
// own. Artifacts are versioned binary files (util::write_artifact_file
// envelope: magic, kind, version, netlist fingerprint, CRC) so a run can be
// checkpointed after any stage and resumed — in another process, on another
// machine — with bit-identical results. They are also the exchange unit the
// planned sharded/distributed offline phase ships between workers.
// ---------------------------------------------------------------------------

/// Discriminator stored in the artifact file header.
enum class ArtifactKind : std::uint32_t {
  SessionMeta = 1,
  RareNets = 2,
  Compatibility = 3,
  Policy = 4,
  Patterns = 5,
  Lint = 6,
  CompatShardPartial = 7,
  CompatShardManifest = 8,
};

/// Bumped whenever any artifact payload layout changes; loaders reject other
/// versions loudly instead of guessing. v3: session meta gained the
/// LintConfig block; the lint verdict artifact was added. v4: PpoConfig
/// gained rollout_lanes and TrainerState gained the episode-stream seed
/// (vectorized trainer with collector-independent episode RNG streams).
/// v5: the config block gained compat.shard_count and
/// env.sat_dispatch_threads; the compat-shard partial and manifest artifacts
/// were added (sharded compatibility build).
inline constexpr std::uint32_t kArtifactFormatVersion = 5;

/// Verdict of the lint front door (stage 0): the full diagnostic report plus
/// the reject decision it produced under the run's fail_on severity. Saved as
/// a session sidecar (`lint.art`) so warnings persist with the run and a
/// rejected design stays rejected on every resume without re-analysis.
struct LintArtifact {
  std::uint64_t netlist_fingerprint = 0;
  analysis::LintSeverity fail_on = analysis::LintSeverity::Error;  ///< config echo
  bool rejected = false;
  analysis::LintReport report;

  void save(const std::string& path) const;
  static LintArtifact load(const std::string& path,
                           std::uint64_t expected_fingerprint = 0);
};

/// Output of the rare-net filtering stage (Figure 4, step ❶).
struct RareNetArtifact {
  std::uint64_t netlist_fingerprint = 0;
  double threshold = 0.0;  ///< config echo, for reports
  std::uint64_t seed = 0;
  std::vector<analysis::RareNet> rare_nets;
  /// Offline-phase RNG state after rare-net discovery. The compatibility
  /// build continues this exact stream, which is what makes a staged run
  /// bit-identical to a monolithic prepare().
  std::array<std::uint64_t, 4> rng_state_after{};

  /// Content hash over the rare-net list. Downstream artifacts embed it so a
  /// compatibility matrix can never be silently combined with rare nets from
  /// a different run.
  std::uint64_t rare_hash() const;

  void save(const std::string& path) const;
  /// `expected_fingerprint` non-zero ⇒ must match the stored one.
  static RareNetArtifact load(const std::string& path,
                              std::uint64_t expected_fingerprint = 0);
};

/// Output of the offline pairwise-compatibility stage (Figure 4, left).
struct CompatibilityArtifact {
  std::uint64_t netlist_fingerprint = 0;
  std::uint64_t rare_hash = 0;  ///< RareNetArtifact::rare_hash of the producer
  analysis::CompatibilityMatrix matrix;
  /// Phase-1 simulation witnesses (one per rare net), reused by the training
  /// environments to answer joint-satisfiability checks without SAT calls.
  std::vector<util::BitVec> witness_signatures;
  analysis::CompatibilityBuildStats stats;

  void save(const std::string& path) const;
  static CompatibilityArtifact load(const std::string& path,
                                    std::uint64_t expected_fingerprint = 0);
};

/// Output (and resumable checkpoint) of the PPO training stage: network
/// weights, Adam moments, RNG streams, the distinct-set pool, and the
/// training history. Restoring it resumes training bit-identically.
struct PolicyArtifact {
  std::uint64_t netlist_fingerprint = 0;
  std::uint64_t rare_hash = 0;
  rl::TrainerState trainer;
  std::vector<util::BitVec> pool_sets;
  std::vector<TrainingSnapshot> history;
  double train_seconds = 0.0;

  void save(const std::string& path) const;
  static PolicyArtifact load(const std::string& path,
                             std::uint64_t expected_fingerprint = 0);
};

/// Output of the SAT pattern-extraction stage: the final test set plus the
/// compatible sets each pattern realizes (parallel order).
struct PatternArtifact {
  std::uint64_t netlist_fingerprint = 0;
  std::uint64_t rare_hash = 0;
  sim::PatternSet patterns;
  std::vector<util::BitVec> extracted_sets;

  void save(const std::string& path) const;
  static PatternArtifact load(const std::string& path,
                              std::uint64_t expected_fingerprint = 0);
};

/// The content hash behind RareNetArtifact::rare_hash — exposed so the
/// pipeline can stamp downstream artifacts without materializing a
/// RareNetArtifact first.
std::uint64_t rare_content_hash(std::uint64_t netlist_fingerprint,
                                std::span<const analysis::RareNet> rare_nets);

/// Serialized DeterrentConfig (every scalar knob; the runtime-wired witness
/// pointer is excluded). Stored in a session's meta artifact so `resume` does
/// not depend on the caller re-supplying identical flags.
void write_config(util::BinaryWriter& w, const DeterrentConfig& config);
DeterrentConfig read_config(util::BinaryReader& r);

}  // namespace deterrent::core

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/compatibility.hpp"
#include "core/artifacts.hpp"

namespace deterrent::core {

/// One shard's output of a sharded compatibility build: a full-width,
/// symmetric partial matrix covering the pairs (i, j) with
/// row_begin <= i < row_end, j >= i, plus that shard's phase-1/phase-2
/// counters. Partials merge by ORing rows (CompatibilityMatrix::merge_or);
/// summing their stats reproduces the monolithic build's deterministic
/// counters. Persisted under the session's shard scratch directory so an
/// interrupted build resumes from the shards that finished — and so remote
/// workers can produce them independently and ship them back.
struct CompatShardPartial {
  std::uint64_t netlist_fingerprint = 0;
  std::uint64_t rare_hash = 0;  ///< binds to the producing rare-net set
  std::uint32_t shard_index = 0;
  std::uint32_t row_begin = 0;
  std::uint32_t row_end = 0;
  analysis::CompatibilityMatrix matrix;
  analysis::CompatibilityBuildStats stats;  ///< this shard's counters only

  void save(const std::string& path) const;
  static CompatShardPartial load(const std::string& path,
                                 std::uint64_t expected_fingerprint = 0);
};

/// The chunk manifest of a sharded compatibility build: the deterministic
/// shard plan plus the hashes that pin it to one (netlist, rare nets, build
/// config, witness table) tuple. Serialized before any shard runs, so a
/// killed build — or a fleet of remote workers — can each load the manifest,
/// claim chunks, and produce partials that are guaranteed mergeable.
struct CompatShardManifest {
  std::uint64_t netlist_fingerprint = 0;
  std::uint64_t rare_hash = 0;
  /// compat_build_hash over the build config + phase-1 signatures: a manifest
  /// whose inputs drifted (different patterns, budgets, shard count) is
  /// stale and the scratch directory is rebuilt from scratch.
  std::uint64_t build_hash = 0;
  std::uint64_t shard_count = 0;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;

  void save(const std::string& path) const;
  static CompatShardManifest load(const std::string& path,
                                  std::uint64_t expected_fingerprint = 0);
};

/// Content hash binding a shard build to its inputs: every
/// CompatibilityBuildConfig knob the shard path consumes plus the full
/// phase-1 signature table (whose bits decide which pairs reach SAT).
std::uint64_t compat_build_hash(const analysis::CompatibilityBuildConfig& config,
                                std::span<const util::BitVec> signatures);

/// The pipeline's compatibility-build front door. With shard_count < 2 or no
/// scratch directory this is exactly analysis::build_compatibility (which
/// already handles in-memory sharding). With both, each finished shard is
/// persisted as a CompatShardPartial under `scratch_dir` next to a
/// CompatShardManifest, and a re-run after a kill loads the valid partials
/// (corrupt ones are removed and rebuilt) and only computes the missing
/// shards — the kill-mid-merge resume path. The caller owns scratch-dir
/// cleanup after the merged artifact has been persisted (Session::save).
analysis::CompatibilityMatrix build_sharded_compatibility(
    const netlist::Netlist& netlist, std::span<const analysis::RareNet> rare_nets,
    const analysis::CompatibilityBuildConfig& config, util::Rng& rng,
    util::ThreadPool* pool, analysis::CompatibilityBuildStats* stats,
    std::vector<util::BitVec>* signatures_out, const std::string& scratch_dir,
    std::uint64_t netlist_fingerprint, std::uint64_t rare_hash);

}  // namespace deterrent::core

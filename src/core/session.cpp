#include "core/session.hpp"

#include <filesystem>

#include "netlist/stats.hpp"
#include "util/assert.hpp"

namespace deterrent::core {

namespace fs = std::filesystem;

Session::Session(std::string dir, const netlist::Netlist& netlist)
    : dir_(std::move(dir)),
      netlist_(&netlist),
      fingerprint_(netlist::structural_fingerprint(netlist)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw Error("Session: cannot create directory " + dir_ + ": " + ec.message());
}

std::string Session::path(const char* file) const {
  return (fs::path(dir_) / file).string();
}

bool Session::has_meta() const { return fs::exists(path(kMetaFile)); }
bool Session::has_rare_nets() const { return fs::exists(path(kRareFile)); }
bool Session::has_compatibility() const { return fs::exists(path(kCompatFile)); }
bool Session::has_policy() const { return fs::exists(path(kPolicyFile)); }
bool Session::has_patterns() const { return fs::exists(path(kPatternFile)); }

Stage Session::next_stage() const {
  if (!has_rare_nets()) return Stage::RareNets;
  if (!has_compatibility()) return Stage::Compatibility;
  if (!has_policy()) return Stage::Train;
  if (!has_patterns()) return Stage::Extract;
  return Stage::Done;
}

void Session::save_config(const DeterrentConfig& config) const {
  util::BinaryWriter w;
  write_config(w, config);
  util::write_artifact_file(
      path(kMetaFile),
      {static_cast<std::uint32_t>(ArtifactKind::SessionMeta), kArtifactFormatVersion,
       fingerprint_},
      w.bytes());
}

DeterrentConfig Session::load_config() const {
  const auto payload = util::read_artifact_file(
      path(kMetaFile), {static_cast<std::uint32_t>(ArtifactKind::SessionMeta),
                        kArtifactFormatVersion, fingerprint_});
  util::BinaryReader r(payload);
  DeterrentConfig config = read_config(r);
  r.expect_end();
  return config;
}

void Session::save(const Pipeline& pipeline) const {
  DETERRENT_ASSERT(pipeline.netlist_fingerprint() == fingerprint_,
                   "Session::save: pipeline is bound to a different netlist");
  if (!has_meta()) save_config(pipeline.config());
  // Rare nets and the matrix are immutable once their stage completed (the
  // pipeline refuses to re-populate them), so an existing file is already
  // current — skipping the rewrite saves the O(n²)-bit matrix serialization
  // on every later checkpoint. Policy and patterns do evolve; always write.
  if (pipeline.rare_nets_done() && !has_rare_nets())
    pipeline.export_rare_nets().save(path(kRareFile));
  if (pipeline.compatibility_done() && !has_compatibility())
    pipeline.export_compatibility().save(path(kCompatFile));
  if (!pipeline.history().empty()) pipeline.export_policy().save(path(kPolicyFile));
  if (pipeline.extract_done()) {
    pipeline.export_patterns().save(path(kPatternFile));
  } else if (has_patterns()) {
    // Training past an extraction marks it stale; a leftover patterns.art
    // would make the next resume() report the run complete and emit the
    // outdated set, so drop it along with the checkpoint that outdated it.
    std::error_code ec;
    fs::remove(path(kPatternFile), ec);
    if (ec)
      throw Error("Session: cannot remove stale " + path(kPatternFile) + ": " +
                  ec.message());
  }
}

std::unique_ptr<Pipeline> Session::resume() const { return resume_with(load_config()); }

std::unique_ptr<Pipeline> Session::resume_with(const DeterrentConfig& config) const {
  auto pipeline = std::make_unique<Pipeline>(*netlist_, config);
  if (!has_rare_nets()) return pipeline;
  pipeline->adopt(RareNetArtifact::load(path(kRareFile), fingerprint_));
  if (!has_compatibility()) return pipeline;
  pipeline->adopt(CompatibilityArtifact::load(path(kCompatFile), fingerprint_));
  if (!has_policy()) return pipeline;  // patterns without a policy are not a prefix
  pipeline->adopt(PolicyArtifact::load(path(kPolicyFile), fingerprint_));
  if (has_patterns())
    pipeline->adopt(PatternArtifact::load(path(kPatternFile), fingerprint_));
  return pipeline;
}

}  // namespace deterrent::core

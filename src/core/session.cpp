#include "core/session.hpp"

#include <filesystem>
#include <optional>

#include "core/artifact_cache.hpp"
#include "netlist/stats.hpp"
#include "util/assert.hpp"
#include "util/faults.hpp"
#include "util/logging.hpp"

namespace deterrent::core {

namespace fs = std::filesystem;

Session::Session(std::string dir, const netlist::Netlist& netlist)
    : dir_(std::move(dir)),
      netlist_(&netlist),
      fingerprint_(netlist::structural_fingerprint(netlist)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw Error("Session: cannot create directory " + dir_ + ": " + ec.message());
}

std::string Session::path(const char* file) const {
  return (fs::path(dir_) / file).string();
}

bool Session::has_meta() const { return fs::exists(path(kMetaFile)); }
bool Session::has_lint() const { return fs::exists(path(kLintFile)); }
bool Session::has_rare_nets() const { return fs::exists(path(kRareFile)); }
bool Session::has_compatibility() const { return fs::exists(path(kCompatFile)); }
bool Session::has_policy() const { return fs::exists(path(kPolicyFile)); }
bool Session::has_patterns() const { return fs::exists(path(kPatternFile)); }

Stage Session::next_stage() const {
  if (!has_rare_nets()) return Stage::RareNets;
  if (!has_compatibility()) return Stage::Compatibility;
  if (!has_policy()) return Stage::Train;
  if (!has_patterns()) return Stage::Extract;
  return Stage::Done;
}

void Session::save_config(const DeterrentConfig& config) const {
  util::BinaryWriter w;
  write_config(w, config);
  util::write_artifact_file(
      path(kMetaFile),
      {static_cast<std::uint32_t>(ArtifactKind::SessionMeta), kArtifactFormatVersion,
       fingerprint_},
      w.bytes());
}

DeterrentConfig Session::load_config() const {
  const auto payload = util::read_artifact_file(
      path(kMetaFile), {static_cast<std::uint32_t>(ArtifactKind::SessionMeta),
                        kArtifactFormatVersion, fingerprint_});
  util::BinaryReader r(payload);
  DeterrentConfig config = read_config(r);
  r.expect_end();
  return config;
}

void Session::save(const Pipeline& pipeline) const {
  DETERRENT_ASSERT(pipeline.netlist_fingerprint() == fingerprint_,
                   "Session::save: pipeline is bound to a different netlist");
  if (!has_meta()) save_config(pipeline.config());
  // The lint verdict is immutable once produced (the pipeline never re-lints
  // a design that passed or was rejected), so write-once like rare/compat.
  if (pipeline.lint_done() && !has_lint())
    pipeline.export_lint().save(path(kLintFile));
  // Rare nets and the matrix are immutable once their stage completed (the
  // pipeline refuses to re-populate them), so an existing file is already
  // current — skipping the rewrite saves the O(n²)-bit matrix serialization
  // on every later checkpoint. Policy and patterns do evolve; always write.
  if (pipeline.rare_nets_done() && !has_rare_nets())
    pipeline.export_rare_nets().save(path(kRareFile));
  if (pipeline.compatibility_done() && !has_compatibility())
    pipeline.export_compatibility().save(path(kCompatFile));
  // With the merged matrix safely on disk, the shard scratch directory is
  // dead weight — an interrupted build's partials were already adopted.
  if (pipeline.compatibility_done() && has_compatibility()) {
    std::error_code ec;
    fs::remove_all(path(kCompatShardDir), ec);
  }
  // A poisoned pipeline's trainer state may be torn mid-update; persisting
  // it would checkpoint garbage, so keep the previous on-disk policy.
  if (!pipeline.history().empty() && !pipeline.poisoned())
    pipeline.export_policy().save(path(kPolicyFile));
  if (pipeline.extract_done()) {
    pipeline.export_patterns().save(path(kPatternFile));
  } else if (has_patterns()) {
    // Training past an extraction marks it stale; a leftover patterns.art
    // would make the next resume() report the run complete and emit the
    // outdated set, so drop it along with the checkpoint that outdated it.
    std::error_code ec;
    fs::remove(path(kPatternFile), ec);
    if (ec)
      throw Error("Session: cannot remove stale " + path(kPatternFile) + ": " +
                  ec.message());
  }
  publish_to_cache(pipeline);
}

void Session::publish_to_cache(const Pipeline& pipeline) const {
  if (cache_ == nullptr) return;
  const std::uint64_t cfg = config_hash(pipeline.config());
  // A failed publish only costs future cache misses — the session copy stays
  // authoritative — so nothing here may fail the save.
  auto publish = [&](ArtifactKind kind, const char* file) {
    try {
      cache_->store(fingerprint_, cfg, kind, path(file));
    } catch (const Error& e) {
      util::Log::warn("session: cache publish of ", file, " failed (", e.what(), ")");
    }
  };
  if (pipeline.lint_done() && has_lint()) publish(ArtifactKind::Lint, kLintFile);
  if (pipeline.rare_nets_done() && has_rare_nets())
    publish(ArtifactKind::RareNets, kRareFile);
  if (pipeline.compatibility_done() && has_compatibility())
    publish(ArtifactKind::Compatibility, kCompatFile);
  // Policy evolves during training; only the finished run's artifacts are
  // cache-worthy (a mid-training checkpoint served to another session would
  // smuggle in a partial policy under a key that promises the final one).
  if (pipeline.next_stage() == Stage::Done && !pipeline.poisoned()) {
    if (has_policy()) publish(ArtifactKind::Policy, kPolicyFile);
    if (has_patterns()) publish(ArtifactKind::Patterns, kPatternFile);
  }
}

void Session::hydrate_from_cache(const DeterrentConfig& config) const {
  if (cache_ == nullptr) return;
  const std::uint64_t cfg = config_hash(config);
  // The lint verdict is a sidecar: hydrate it independently, a miss does not
  // gate the stage artifacts below.
  if (!has_lint()) (void)cache_->fetch(fingerprint_, cfg, ArtifactKind::Lint, path(kLintFile));
  // Stage artifacts hydrate in prefix order and stop at the first miss — a
  // later entry without its predecessors would be ignored by resume anyway
  // (and with the hash-chain checks, could never adopt).
  struct StageEntry {
    ArtifactKind kind;
    const char* file;
  };
  static constexpr StageEntry kStages[] = {
      {ArtifactKind::RareNets, kRareFile},
      {ArtifactKind::Compatibility, kCompatFile},
      {ArtifactKind::Policy, kPolicyFile},
      {ArtifactKind::Patterns, kPatternFile},
  };
  for (const auto& stage : kStages) {
    if (fs::exists(path(stage.file))) continue;
    if (!cache_->fetch(fingerprint_, cfg, stage.kind, path(stage.file))) break;
  }
}

namespace {

// Runs one artifact load+adopt. True on success; false when the file was
// quarantined (renamed to <file>.corrupt), which ends the resume prefix so
// run_remaining() regenerates the stage. Transient failures — a momentary
// I/O error, an injected transient fault — are rethrown untouched: they say
// nothing about the file, and destroying a good artifact over one would
// trade a retryable hiccup for lost work.
template <typename LoadFn>
bool load_or_quarantine(const Session& session, const char* file, LoadFn&& load,
                        std::vector<std::string>& quarantined) {
  DETERRENT_FAULT_POINT("session.load_artifact");
  try {
    load();
    return true;
  } catch (const TransientError&) {
    throw;
  } catch (const Error& e) {
    const std::string src = session.path(file);
    std::error_code ec;
    fs::rename(src, src + ".corrupt", ec);
    if (ec) fs::remove(src, ec);  // rename failed: drop it rather than loop forever
    util::Log::warn("session: quarantined ", src, " (", e.what(), ")");
    quarantined.emplace_back(file);
    return false;
  }
}

}  // namespace

std::unique_ptr<Pipeline> Session::resume() const {
  quarantined_.clear();
  return resume_prefix(load_config());
}

std::unique_ptr<Pipeline> Session::resume_with(const DeterrentConfig& config) const {
  quarantined_.clear();
  return resume_prefix(config);
}

std::unique_ptr<Pipeline> Session::resume_or_init(const DeterrentConfig& fallback) const {
  quarantined_.clear();
  std::optional<DeterrentConfig> stored;
  if (has_meta())
    load_or_quarantine(*this, kMetaFile, [&] { stored = load_config(); }, quarantined_);
  if (!stored.has_value()) save_config(fallback);
  return resume_prefix(stored.value_or(fallback));
}

std::unique_ptr<Pipeline> Session::resume_prefix(const DeterrentConfig& config) const {
  hydrate_from_cache(config);
  auto pipeline = std::make_unique<Pipeline>(*netlist_, config);
  pipeline->set_compat_scratch_dir((fs::path(dir_) / kCompatShardDir).string());
  // Sidecar, not prefix: a bad lint file is quarantined, but the prefix
  // continues — losing the stored warnings must not force an offline-phase
  // rebuild (and a rejected verdict is re-derived by re-linting anyway).
  if (has_lint())
    load_or_quarantine(*this, kLintFile,
                       [&] { pipeline->adopt(LintArtifact::load(path(kLintFile), fingerprint_)); },
                       quarantined_);
  if (!has_rare_nets()) return pipeline;
  if (!load_or_quarantine(*this, kRareFile,
                          [&] { pipeline->adopt(RareNetArtifact::load(path(kRareFile), fingerprint_)); },
                          quarantined_))
    return pipeline;
  if (!has_compatibility()) return pipeline;
  if (!load_or_quarantine(*this, kCompatFile,
                          [&] {
                            pipeline->adopt(
                                CompatibilityArtifact::load(path(kCompatFile), fingerprint_));
                          },
                          quarantined_))
    return pipeline;
  if (!has_policy()) return pipeline;  // patterns without a policy are not a prefix
  if (!load_or_quarantine(*this, kPolicyFile,
                          [&] { pipeline->adopt(PolicyArtifact::load(path(kPolicyFile), fingerprint_)); },
                          quarantined_))
    return pipeline;
  if (has_patterns())
    load_or_quarantine(*this, kPatternFile,
                       [&] { pipeline->adopt(PatternArtifact::load(path(kPatternFile), fingerprint_)); },
                       quarantined_);
  return pipeline;
}

}  // namespace deterrent::core

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/artifact_cache.hpp"
#include "core/session.hpp"

namespace deterrent::core {

/// One circuit enrolled in a campaign. The netlist must be combinational and
/// must outlive the campaign run.
struct CampaignCircuit {
  std::string name;
  const netlist::Netlist* netlist = nullptr;
  /// Optional original (typically sequential) design behind `netlist`'s scan
  /// view. When set and CampaignConfig::workload_cycles > 0, the campaign
  /// executes a multi-trace workload on it through sim::SequentialEngine
  /// after the pipeline completes and reports the measured throughput.
  const netlist::Netlist* workload = nullptr;
};

struct CampaignConfig {
  /// Per-circuit pipeline configuration template. Each circuit's seed is
  /// derived from `base.seed` and the circuit index, so campaign results are
  /// reproducible yet decorrelated across circuits.
  DeterrentConfig base;
  /// Circuit-level workers; 0 = hardware concurrency (capped at the circuit
  /// count). Within a circuit the offline phase and PPO rollouts run with the
  /// base config's own thread settings — set base.offline_threads = 1 and
  /// base.ppo.n_workers = 1 to keep a fully circuit-parallel campaign from
  /// oversubscribing.
  std::size_t threads = 0;
  /// When non-empty, each circuit gets a Session under
  /// `<session_root>/<circuit name>`: completed stages are saved as artifact
  /// files, and a re-run campaign resumes every circuit from its artifacts
  /// instead of starting over.
  std::string session_root;
  /// When non-empty, all circuits share one content-addressed ArtifactCache
  /// rooted here: sessions hydrate missing stage artifacts from entries keyed
  /// by (netlist fingerprint, config hash, kind) and publish completed ones
  /// back, so a campaign over previously-seen designs skips their offline
  /// stages entirely — even across different session roots or machines
  /// sharing the directory. Requires session_root (the cache feeds sessions).
  std::string cache_dir;
  /// Sequential workload evaluation: after a circuit's pipeline completes,
  /// step this many clock cycles of seeded, slowly-varying random stimulus
  /// on its `workload` netlist (when enrolled), `workload_traces` traces in
  /// lock-step per sim::SequentialEngine call. 0 disables the stage.
  std::size_t workload_cycles = 0;
  std::size_t workload_traces = 64;
  /// Robustness knobs (see docs/robustness.md). A circuit attempt that fails
  /// with a TransientError / CorruptArtifactError, or whose stage watchdog
  /// times out, is retried up to `max_retries` more times with exponential
  /// backoff (`min(retry_backoff_ms * 2^attempt, retry_backoff_cap_ms)`; see
  /// retry_backoff_delay_ms for the saturation rules). Session-backed
  /// circuits resume each retry from their last good artifact, so work is
  /// never repeated and corrupt files (quarantined by the Session) are
  /// regenerated. PermanentError — and any exception outside the deterrent
  /// taxonomy — skips the retries and quarantines the circuit immediately.
  std::size_t max_retries = 2;
  double retry_backoff_ms = 50.0;
  /// Upper bound on a single backoff sleep. 0 disables the cap (the exponent
  /// itself still saturates, so the delay stays finite regardless).
  double retry_backoff_cap_ms = 10000.0;
  /// Per-stage watchdog deadline handed to every stage call (see
  /// StageControl::stage_timeout_seconds); a control passed to run() with
  /// its own non-zero value wins. 0 = no watchdog.
  double stage_timeout_seconds = 0.0;
  /// Mix the attempt number into the circuit seed on each retry. Off by
  /// default: deterministic reruns must reproduce the original artifacts
  /// bit-identically, and session-backed circuits keep their stored config's
  /// seed regardless. Turn on for seed-sensitive failures in ephemeral
  /// (session-less) campaigns.
  bool reseed_on_retry = false;
};

/// Per-circuit outcome row of a campaign run.
struct CampaignCircuitReport {
  std::string name;
  bool ok = false;
  std::string error;  ///< failure reason when !ok
  StageStatus status = StageStatus::Complete;
  std::uint64_t seed = 0;
  /// Lint front door (stage 0). A Rejected verdict quarantines the circuit
  /// immediately — retrying a static analysis cannot change its answer.
  bool lint_ran = false;
  std::size_t lint_errors = 0;
  std::size_t lint_warnings = 0;
  std::size_t rare_nets = 0;
  std::size_t compatible_pairs = 0;
  std::size_t pool_size = 0;
  std::size_t max_set_size = 0;
  std::size_t patterns = 0;
  std::uint64_t sat_queries = 0;
  double coverage_percent = -1.0;  ///< -1 when no evaluator was configured
  /// Sequential workload stage (0 / -1 when not run): cycles actually
  /// stepped, lock-step traces, aggregate trace-cycles per second, and the
  /// mean gate evaluations per cycle (activity — full program size would
  /// mean every cycle fell back to a dense sweep).
  std::size_t workload_cycles = 0;
  std::size_t workload_traces = 0;
  double workload_trace_cycles_per_sec = 0.0;
  double workload_gate_evals_per_cycle = -1.0;
  double seconds = 0.0;
  std::size_t attempts = 1;  ///< 1 + retries actually consumed
  /// Permanently failed: a PermanentError / foreign exception, or retries
  /// exhausted. No further attempt will be made; the row's error says why.
  bool quarantined = false;
  /// Artifact files the Session renamed to `<name>.corrupt` and regenerated
  /// during this circuit's attempts (session-relative names).
  std::vector<std::string> recovered;
};

/// Aggregated result of Campaign::run.
struct CampaignReport {
  std::vector<CampaignCircuitReport> circuits;  ///< enrollment order
  std::size_t completed = 0;                    ///< ok && Complete
  std::size_t quarantined = 0;                  ///< permanently failed circuits
  std::size_t total_patterns = 0;
  std::uint64_t total_sat_queries = 0;
  double total_seconds = 0.0;     ///< wall clock of the whole run
  double mean_coverage = -1.0;    ///< over evaluated circuits; -1 when none

  /// Fixed-width text table (one row per circuit + a totals line) for CLI
  /// and log output.
  std::string to_table() const;
};

/// Multi-circuit campaign driver: runs every enrolled circuit through the
/// staged pipeline concurrently on a thread pool and aggregates a coverage
/// report. This is the "train-once, reuse-many" entry point — with a
/// session_root, finished circuits are skipped on re-run and interrupted
/// ones resume from their last artifact.
///
/// Resume semantics are per circuit and inherited from core::Session: each
/// circuit's directory holds its own versioned artifact chain, validated
/// against that circuit's netlist fingerprint on load, so renaming or
/// reordering enrollments cannot cross-wire sessions. One circuit failing
/// (or holding corrupt artifacts) is reported in its row and does not stop
/// the others. Seeds are derived per circuit index from the base config, so
/// a re-run — full or resumed — reproduces the original run exactly.
class Campaign {
 public:
  /// Optional per-circuit pattern evaluator (e.g. trigger coverage against
  /// sampled Trojans). Runs on the worker thread after extraction; the
  /// returned percentage lands in the report. Keeping this a callback keeps
  /// core/ free of a dependency on the trojan/ layer.
  using Evaluator = std::function<double(const CampaignCircuit& circuit,
                                         const Pipeline& pipeline,
                                         const sim::PatternSet& patterns)>;

  explicit Campaign(CampaignConfig config);

  void add(std::string name, const netlist::Netlist& netlist);
  /// Enrolls a circuit together with its original (sequential) design, so
  /// the workload stage (CampaignConfig::workload_cycles) can execute
  /// multi-trace cycles on it. Pass e.g. `benchmark.scan.comb` and
  /// `benchmark.original`.
  void add(std::string name, const netlist::Netlist& netlist,
           const netlist::Netlist& workload);
  std::size_t circuit_count() const { return circuits_.size(); }

  void set_evaluator(Evaluator evaluator) { evaluator_ = std::move(evaluator); }

  /// Runs all circuits. `control` is shared: progress events carry the
  /// circuit name in their detail field (serialized under a lock, so the
  /// callback needs no synchronization of its own); cancelling stops every
  /// circuit at its next checkpoint; budgets apply per stage call as usual.
  CampaignReport run(const StageControl& control = {});

 private:
  CampaignCircuitReport run_circuit(std::size_t index, const StageControl& control);
  /// One attempt of one circuit: resume-or-init the session, run the
  /// remaining stages, save, fill the report row. Throws on failure — the
  /// retry loop in run_circuit classifies the exception.
  void run_circuit_attempt(std::size_t index, const StageControl& control,
                           std::size_t attempt, CampaignCircuitReport& row);

  CampaignConfig config_;
  std::vector<CampaignCircuit> circuits_;
  Evaluator evaluator_;
  /// Shared across all circuit workers (ArtifactCache is thread-safe);
  /// created lazily by run() when config_.cache_dir is set.
  std::unique_ptr<ArtifactCache> cache_;
};

/// The campaign retry delay for attempt N (0-based): exponential
/// `base_ms * 2^attempt` with the exponent saturated (a large attempt count
/// must not shift past the width of the mantissa, let alone the 64-bit shift
/// UB the unclamped version had) and the result capped at `cap_ms` when
/// cap_ms > 0. base_ms <= 0 disables backoff entirely.
double retry_backoff_delay_ms(double base_ms, std::size_t attempt, double cap_ms);

}  // namespace deterrent::core

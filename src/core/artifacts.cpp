#include "core/artifacts.hpp"

namespace deterrent::core {

namespace {

util::ArtifactHeader header_for(ArtifactKind kind, std::uint64_t fingerprint) {
  return {static_cast<std::uint32_t>(kind), kArtifactFormatVersion, fingerprint};
}

void write_rng_state(util::BinaryWriter& w, const std::array<std::uint64_t, 4>& state) {
  for (const auto word : state) w.u64(word);
}

std::array<std::uint64_t, 4> read_rng_state(util::BinaryReader& r) {
  std::array<std::uint64_t, 4> state;
  for (auto& word : state) word = r.u64();
  return state;
}

void write_ppo_stats(util::BinaryWriter& w, const rl::PpoUpdateStats& s) {
  w.f64(s.mean_episode_reward);
  w.f64(s.mean_episode_length);
  w.f64(s.mean_entropy);
  w.f64(s.policy_loss);
  w.f64(s.value_loss);
  w.f64(s.entropy_loss);
  w.f64(s.total_loss);
  w.u64(s.steps);
  w.u64(s.episodes);
}

rl::PpoUpdateStats read_ppo_stats(util::BinaryReader& r) {
  rl::PpoUpdateStats s;
  s.mean_episode_reward = r.f64();
  s.mean_episode_length = r.f64();
  s.mean_entropy = r.f64();
  s.policy_loss = r.f64();
  s.value_loss = r.f64();
  s.entropy_loss = r.f64();
  s.total_loss = r.f64();
  s.steps = r.u64();
  s.episodes = r.u64();
  return s;
}

void write_snapshot(util::BinaryWriter& w, const TrainingSnapshot& s) {
  write_ppo_stats(w, s.ppo);
  w.u64(s.pool_size);
  w.u64(s.max_set_size);
  w.u64(s.cumulative_steps);
  w.u64(s.cumulative_episodes);
  w.u64(s.sat_queries);
  w.f64(s.elapsed_seconds);
}

TrainingSnapshot read_snapshot(util::BinaryReader& r) {
  TrainingSnapshot s;
  s.ppo = read_ppo_stats(r);
  s.pool_size = r.u64();
  s.max_set_size = r.u64();
  s.cumulative_steps = r.u64();
  s.cumulative_episodes = r.u64();
  s.sat_queries = r.u64();
  s.elapsed_seconds = r.f64();
  return s;
}

}  // namespace

// ------------------------------------------------------------- lint --------

void LintArtifact::save(const std::string& path) const {
  util::BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(fail_on));
  w.boolean(rejected);
  w.u64(report.suppressed);
  w.u64(report.diagnostics.size());
  for (const auto& d : report.diagnostics) {
    w.str(d.rule);
    w.u8(static_cast<std::uint8_t>(d.severity));
    w.u32(d.net);
    w.str(d.net_name);
    w.u64(d.line);
    w.str(d.message);
  }
  util::write_artifact_file(path, header_for(ArtifactKind::Lint, netlist_fingerprint),
                            w.bytes());
}

LintArtifact LintArtifact::load(const std::string& path,
                                std::uint64_t expected_fingerprint) {
  LintArtifact a;
  const auto payload = util::read_artifact_file(
      path, header_for(ArtifactKind::Lint, expected_fingerprint),
      &a.netlist_fingerprint);
  util::BinaryReader r(payload);
  a.fail_on = static_cast<analysis::LintSeverity>(r.u8());
  a.rejected = r.boolean();
  a.report.suppressed = r.u64();
  const std::uint64_t n = r.u64();
  a.report.diagnostics.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    analysis::LintDiagnostic d;
    d.rule = r.str();
    d.severity = static_cast<analysis::LintSeverity>(r.u8());
    d.net = r.u32();
    d.net_name = r.str();
    d.line = r.u64();
    d.message = r.str();
    a.report.diagnostics.push_back(std::move(d));
  }
  r.expect_end();
  return a;
}

// ------------------------------------------------------- rare nets ---------

std::uint64_t rare_content_hash(std::uint64_t netlist_fingerprint,
                                std::span<const analysis::RareNet> rare_nets) {
  util::Fnv1a hash;
  hash.mix(netlist_fingerprint);
  hash.mix(rare_nets.size());
  for (const auto& rn : rare_nets) {
    hash.mix(rn.net);
    hash.mix(rn.rare_value ? 1 : 0);
  }
  return hash.value_nonzero();
}

std::uint64_t RareNetArtifact::rare_hash() const {
  return rare_content_hash(netlist_fingerprint, rare_nets);
}

void RareNetArtifact::save(const std::string& path) const {
  util::BinaryWriter w;
  w.f64(threshold);
  w.u64(seed);
  write_rng_state(w, rng_state_after);
  w.u64(rare_nets.size());
  for (const auto& rn : rare_nets) {
    w.u32(rn.net);
    w.boolean(rn.rare_value);
    w.f64(rn.probability);
  }
  util::write_artifact_file(path, header_for(ArtifactKind::RareNets, netlist_fingerprint),
                            w.bytes());
}

RareNetArtifact RareNetArtifact::load(const std::string& path,
                                      std::uint64_t expected_fingerprint) {
  RareNetArtifact a;
  const auto payload = util::read_artifact_file(
      path, header_for(ArtifactKind::RareNets, expected_fingerprint),
      &a.netlist_fingerprint);
  util::BinaryReader r(payload);
  a.threshold = r.f64();
  a.seed = r.u64();
  a.rng_state_after = read_rng_state(r);
  const std::uint64_t n = r.u64();
  a.rare_nets.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    analysis::RareNet rn;
    rn.net = r.u32();
    rn.rare_value = r.boolean();
    rn.probability = r.f64();
    a.rare_nets.push_back(rn);
  }
  r.expect_end();
  return a;
}

// --------------------------------------------------- compatibility ---------

void CompatibilityArtifact::save(const std::string& path) const {
  util::BinaryWriter w;
  w.u64(rare_hash);
  w.u64(matrix.size());
  for (std::uint32_t i = 0; i < matrix.size(); ++i) w.bitvec(matrix.row(i));
  w.bitvec_vec(witness_signatures);
  w.u64(stats.pair_count);
  w.u64(stats.sim_resolved);
  w.u64(stats.sat_sat);
  w.u64(stats.sat_unsat);
  w.u64(stats.timeout_pairs);
  w.u64(stats.unsat_singletons);
  w.f64(stats.build_seconds);
  util::write_artifact_file(
      path, header_for(ArtifactKind::Compatibility, netlist_fingerprint), w.bytes());
}

CompatibilityArtifact CompatibilityArtifact::load(const std::string& path,
                                                  std::uint64_t expected_fingerprint) {
  CompatibilityArtifact a;
  const auto payload = util::read_artifact_file(
      path, header_for(ArtifactKind::Compatibility, expected_fingerprint),
      &a.netlist_fingerprint);
  util::BinaryReader r(payload);
  a.rare_hash = r.u64();
  const std::uint64_t n = r.u64();
  std::vector<util::BitVec> rows;
  rows.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) rows.push_back(r.bitvec());
  a.matrix = analysis::CompatibilityMatrix::from_rows(std::move(rows));
  a.witness_signatures = r.bitvec_vec();
  if (!a.witness_signatures.empty() && a.witness_signatures.size() != n)
    throw Error("artifact " + path + ": witness signature count " +
                std::to_string(a.witness_signatures.size()) +
                " does not match matrix size " + std::to_string(n));
  a.stats.pair_count = r.u64();
  a.stats.sim_resolved = r.u64();
  a.stats.sat_sat = r.u64();
  a.stats.sat_unsat = r.u64();
  a.stats.timeout_pairs = r.u64();
  a.stats.unsat_singletons = r.u64();
  a.stats.build_seconds = r.f64();
  r.expect_end();
  return a;
}

// ----------------------------------------------------------- policy --------

void PolicyArtifact::save(const std::string& path) const {
  util::BinaryWriter w;
  w.u64(rare_hash);
  w.f32_vec(trainer.policy_params);
  w.f32_vec(trainer.value_params);
  w.f32_vec(trainer.policy_opt.m);
  w.f32_vec(trainer.policy_opt.v);
  w.u64(trainer.policy_opt.t);
  w.f32_vec(trainer.value_opt.m);
  w.f32_vec(trainer.value_opt.v);
  w.u64(trainer.value_opt.t);
  w.u64(trainer.rng_states.size());
  for (const auto& state : trainer.rng_states) write_rng_state(w, state);
  w.u64(trainer.seed);
  w.u64(trainer.total_steps);
  w.u64(trainer.total_episodes);
  w.bitvec_vec(pool_sets);
  w.u64(history.size());
  for (const auto& snap : history) write_snapshot(w, snap);
  w.f64(train_seconds);
  util::write_artifact_file(path, header_for(ArtifactKind::Policy, netlist_fingerprint),
                            w.bytes());
}

PolicyArtifact PolicyArtifact::load(const std::string& path,
                                    std::uint64_t expected_fingerprint) {
  PolicyArtifact a;
  const auto payload = util::read_artifact_file(
      path, header_for(ArtifactKind::Policy, expected_fingerprint),
      &a.netlist_fingerprint);
  util::BinaryReader r(payload);
  a.rare_hash = r.u64();
  a.trainer.policy_params = r.f32_vec();
  a.trainer.value_params = r.f32_vec();
  a.trainer.policy_opt.m = r.f32_vec();
  a.trainer.policy_opt.v = r.f32_vec();
  a.trainer.policy_opt.t = r.u64();
  a.trainer.value_opt.m = r.f32_vec();
  a.trainer.value_opt.v = r.f32_vec();
  a.trainer.value_opt.t = r.u64();
  const std::uint64_t n_rngs = r.u64();
  a.trainer.rng_states.reserve(n_rngs);
  for (std::uint64_t i = 0; i < n_rngs; ++i)
    a.trainer.rng_states.push_back(read_rng_state(r));
  a.trainer.seed = r.u64();
  a.trainer.total_steps = r.u64();
  a.trainer.total_episodes = r.u64();
  a.pool_sets = r.bitvec_vec();
  const std::uint64_t n_snaps = r.u64();
  a.history.reserve(n_snaps);
  for (std::uint64_t i = 0; i < n_snaps; ++i) a.history.push_back(read_snapshot(r));
  a.train_seconds = r.f64();
  r.expect_end();
  return a;
}

// ---------------------------------------------------------- patterns -------

void PatternArtifact::save(const std::string& path) const {
  util::BinaryWriter w;
  w.u64(rare_hash);
  w.u64(patterns.input_count());
  w.u64(patterns.pattern_count());
  for (std::size_t p = 0; p < patterns.pattern_count(); ++p) w.bitvec(patterns.pattern(p));
  w.bitvec_vec(extracted_sets);
  util::write_artifact_file(path, header_for(ArtifactKind::Patterns, netlist_fingerprint),
                            w.bytes());
}

PatternArtifact PatternArtifact::load(const std::string& path,
                                      std::uint64_t expected_fingerprint) {
  PatternArtifact a;
  const auto payload = util::read_artifact_file(
      path, header_for(ArtifactKind::Patterns, expected_fingerprint),
      &a.netlist_fingerprint);
  util::BinaryReader r(payload);
  a.rare_hash = r.u64();
  const std::uint64_t input_count = r.u64();
  const std::uint64_t n_patterns = r.u64();
  a.patterns = sim::PatternSet(input_count);
  for (std::uint64_t p = 0; p < n_patterns; ++p) {
    const util::BitVec pattern = r.bitvec();
    if (pattern.size() != input_count)
      throw Error("artifact " + path + ": pattern width " +
                  std::to_string(pattern.size()) + " does not match input count " +
                  std::to_string(input_count));
    a.patterns.push(pattern);
  }
  a.extracted_sets = r.bitvec_vec();
  r.expect_end();
  return a;
}

// ------------------------------------------------------------ config -------

void write_config(util::BinaryWriter& w, const DeterrentConfig& config) {
  w.boolean(config.lint.enabled);
  w.u8(static_cast<std::uint8_t>(config.lint.fail_on));
  w.u64(config.lint.disabled.size());
  for (const auto& rule : config.lint.disabled) w.str(rule);
  w.f64(config.lint.unexcitable_prob);
  w.u32(config.lint.shadow_co);
  w.u32(config.lint.trigger_width);
  w.f64(config.lint.trigger_prob);
  w.u64(config.lint.trigger_max_fanout);
  w.u64(config.lint.max_per_rule);
  w.f64(config.rare.threshold);
  w.u64(config.rare.sim_patterns);
  w.boolean(config.rare.exclude_untoggled);
  w.boolean(config.rare.exclude_inputs);
  w.u64(config.compat.sim_patterns);
  w.i64(config.compat.sat_conflict_budget);
  w.boolean(config.compat.inprocess);
  w.u64(config.compat.portfolio_threads);
  w.u32(config.compat.share_lbd_cap);
  w.u64(config.compat.shard_count);
  w.u8(static_cast<std::uint8_t>(config.env.reward_mode));
  w.u8(static_cast<std::uint8_t>(config.env.mask_mode));
  w.u64(config.env.max_steps);
  w.i64(config.env.sat_conflict_budget);
  w.f64(config.env.reward_exponent);
  w.u64(config.env.eoe_repair_budget);
  w.u64(config.env.sat_dispatch_threads);
  w.f32(config.ppo.gamma);
  w.f32(config.ppo.gae_lambda);
  w.f32(config.ppo.clip_ratio);
  w.f32(config.ppo.learning_rate);
  w.f32(config.ppo.entropy_coef);
  w.f32(config.ppo.value_coef);
  w.f32(config.ppo.max_grad_norm);
  w.u32(static_cast<std::uint32_t>(config.ppo.epochs));
  w.u64(config.ppo.minibatch_size);
  w.u64(config.ppo.episodes_per_update);
  w.u64(config.ppo.hidden_size);
  w.u64(config.ppo.hidden_layers);
  w.u64(config.ppo.n_workers);
  w.u64(config.ppo.rollout_lanes);
  w.boolean(config.ppo.normalize_advantages);
  w.u64(config.updates);
  w.u64(config.k_patterns);
  w.u64(config.seed);
  w.u64(config.offline_threads);
}

DeterrentConfig read_config(util::BinaryReader& r) {
  DeterrentConfig config;
  config.lint.enabled = r.boolean();
  config.lint.fail_on = static_cast<analysis::LintSeverity>(r.u8());
  const std::uint64_t n_disabled = r.u64();
  config.lint.disabled.clear();
  config.lint.disabled.reserve(n_disabled);
  for (std::uint64_t i = 0; i < n_disabled; ++i) config.lint.disabled.push_back(r.str());
  config.lint.unexcitable_prob = r.f64();
  config.lint.shadow_co = r.u32();
  config.lint.trigger_width = r.u32();
  config.lint.trigger_prob = r.f64();
  config.lint.trigger_max_fanout = r.u64();
  config.lint.max_per_rule = r.u64();
  config.rare.threshold = r.f64();
  config.rare.sim_patterns = r.u64();
  config.rare.exclude_untoggled = r.boolean();
  config.rare.exclude_inputs = r.boolean();
  config.compat.sim_patterns = r.u64();
  config.compat.sat_conflict_budget = r.i64();
  config.compat.inprocess = r.boolean();
  config.compat.portfolio_threads = r.u64();
  config.compat.share_lbd_cap = r.u32();
  config.compat.shard_count = r.u64();
  config.env.reward_mode = static_cast<RewardMode>(r.u8());
  config.env.mask_mode = static_cast<MaskMode>(r.u8());
  config.env.max_steps = r.u64();
  config.env.sat_conflict_budget = r.i64();
  config.env.reward_exponent = r.f64();
  config.env.eoe_repair_budget = r.u64();
  config.env.sat_dispatch_threads = r.u64();
  config.ppo.gamma = r.f32();
  config.ppo.gae_lambda = r.f32();
  config.ppo.clip_ratio = r.f32();
  config.ppo.learning_rate = r.f32();
  config.ppo.entropy_coef = r.f32();
  config.ppo.value_coef = r.f32();
  config.ppo.max_grad_norm = r.f32();
  config.ppo.epochs = static_cast<int>(r.u32());
  config.ppo.minibatch_size = r.u64();
  config.ppo.episodes_per_update = r.u64();
  config.ppo.hidden_size = r.u64();
  config.ppo.hidden_layers = r.u64();
  config.ppo.n_workers = r.u64();
  config.ppo.rollout_lanes = r.u64();
  config.ppo.normalize_advantages = r.boolean();
  config.updates = r.u64();
  config.k_patterns = r.u64();
  config.seed = r.u64();
  config.offline_threads = r.u64();
  return config;
}

}  // namespace deterrent::core

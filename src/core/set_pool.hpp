#pragma once

#include <cstddef>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "util/bitvec.hpp"

namespace deterrent::core {

/// Thread-safe collection of the distinct compatible-rare-net sets discovered
/// across all training episodes. At the end of training DETERRENT picks the
/// k largest distinct sets from this pool and converts each into one test
/// pattern via SAT (§3.1, §3.5).
class DistinctSetPool {
 public:
  /// Records a set (bitset over rare-net indices). Duplicates are ignored.
  void add(const util::BitVec& set);

  std::size_t size() const;

  /// Largest member size seen so far — the "max # compatible rare nets"
  /// metric of Table 1 / Figure 2.
  std::size_t max_set_size() const;

  /// The k largest distinct sets, by popcount descending (ties broken
  /// deterministically by bit content). Returns fewer when the pool is small.
  std::vector<util::BitVec> k_largest(std::size_t k) const;

  /// All distinct sets, unordered.
  std::vector<util::BitVec> all() const;

  /// Replaces the pool contents wholesale (PolicyArtifact restore path).
  /// Empty sets are dropped, duplicates collapse, max_set_size is rebuilt.
  void replace(std::vector<util::BitVec> sets);

 private:
  mutable std::mutex mutex_;
  std::unordered_set<util::BitVec, util::BitVecHash> sets_;
  std::size_t max_size_ = 0;
};

}  // namespace deterrent::core

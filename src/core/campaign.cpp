#include "core/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <thread>

#include "sim/sequential_engine.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace deterrent::core {

namespace {

/// Decorrelated per-circuit seed: SplitMix64 over campaign seed + stream
/// offset, so circuit i's draws are independent of circuit j's for any base.
std::uint64_t derive_seed(std::uint64_t base, std::size_t index) {
  return util::Rng::mix64(base + index * 0x9e3779b97f4a7c15ULL);
}

/// Multi-trace workload execution on a circuit's original design: all traces
/// step in lock-step through one sim::SequentialEngine, per-trace random
/// reset states, and slowly-varying stimulus (fully random first cycle, one
/// re-randomized input per cycle afterwards) so steady-state cycles ride the
/// engine's sparse resimulate path. Fills the workload_* fields of `row`.
void run_workload(const netlist::Netlist& workload, std::size_t cycles,
                  std::size_t traces, std::uint64_t seed,
                  CampaignCircuitReport& row) {
  sim::SequentialEngine seq(workload, traces);
  util::Rng rng(util::Rng::mix64(seed ^ 0x5e90e4ce00ULL));
  const std::size_t n_inputs = workload.inputs().size();
  const std::size_t words = seq.words();
  std::vector<std::uint64_t> state_words(words);
  for (const netlist::NetId q : workload.dffs()) {
    for (auto& w : state_words) w = rng.next_word();
    seq.set_state_words(q, state_words);
  }
  std::vector<std::uint64_t> stimulus(n_inputs * words);
  for (auto& w : stimulus) w = rng.next_word();

  util::Stopwatch watch;
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    if (cycle > 0 && n_inputs > 0) {
      const std::size_t flip = rng.below(n_inputs);
      for (std::size_t w = 0; w < words; ++w)
        stimulus[flip * words + w] = rng.next_word();
    }
    seq.step(stimulus);
  }
  const double seconds = watch.elapsed_seconds();
  row.workload_cycles = cycles;
  row.workload_traces = traces;
  if (seconds > 0.0)
    row.workload_trace_cycles_per_sec =
        static_cast<double>(cycles) * static_cast<double>(traces) / seconds;
  if (cycles > 0)
    row.workload_gate_evals_per_cycle =
        static_cast<double>(seq.gate_evals()) / static_cast<double>(cycles);
}

}  // namespace

double retry_backoff_delay_ms(double base_ms, std::size_t attempt, double cap_ms) {
  if (base_ms <= 0.0) return 0.0;
  // 1ULL << attempt is undefined from attempt 64 on, and the old unclamped
  // shift produced garbage sleeps long before the cap could help. By 2^62 any
  // positive cap has won, so saturating the exponent is lossless.
  const std::size_t exponent = std::min<std::size_t>(attempt, 62);
  const double ms = base_ms * static_cast<double>(1ULL << exponent);
  return (cap_ms > 0.0 && ms > cap_ms) ? cap_ms : ms;
}

Campaign::Campaign(CampaignConfig config) : config_(std::move(config)) {}

void Campaign::add(std::string name, const netlist::Netlist& netlist) {
  // Names key the per-circuit session directories; two workers sharing one
  // directory would race on the same artifact files.
  for (const auto& circuit : circuits_)
    if (circuit.name == name)
      throw Error("Campaign: duplicate circuit name '" + name + "'");
  circuits_.push_back({std::move(name), &netlist, nullptr});
}

void Campaign::add(std::string name, const netlist::Netlist& netlist,
                   const netlist::Netlist& workload) {
  add(std::move(name), netlist);
  circuits_.back().workload = &workload;
}

void Campaign::run_circuit_attempt(std::size_t index, const StageControl& control,
                                   std::size_t attempt, CampaignCircuitReport& row) {
  const CampaignCircuit& circuit = circuits_[index];
  DeterrentConfig config = config_.base;
  config.seed = derive_seed(config_.base.seed, index);
  if (config_.reseed_on_retry && attempt > 0)
    config.seed = util::Rng::mix64(config.seed ^ (attempt * 0xbf58476d1ce4e5b9ULL));
  row.seed = config.seed;

  std::unique_ptr<Session> session;
  std::unique_ptr<Pipeline> pipeline;
  if (!config_.session_root.empty()) {
    session = std::make_unique<Session>(
        (std::filesystem::path(config_.session_root) / circuit.name).string(),
        *circuit.netlist);
    session->attach_cache(cache_.get());
    // An existing session's stored config wins over the index-derived one:
    // re-running the campaign with a reordered circuit list (or changed
    // flags) must resume each circuit under the config its artifacts were
    // actually built with. A missing or corrupt meta falls back to `config`,
    // and any corrupt stage artifact is quarantined so the stage reruns.
    pipeline = session->resume_or_init(config);
    row.seed = pipeline->config().seed;
    for (const auto& file : session->quarantined()) row.recovered.push_back(file);
  } else {
    pipeline = std::make_unique<Pipeline>(*circuit.netlist, config);
  }

  // A session already complete on disk adopted everything and ran nothing,
  // so skip re-serializing its (byte-identical) policy/pattern artifacts.
  const bool already_done = session && session->next_stage() == Stage::Done;
  row.status = pipeline->run_remaining(control);
  if (session && !already_done) session->save(*pipeline);

  if (pipeline->lint_done()) {
    row.lint_ran = true;
    row.lint_errors = pipeline->lint_report().errors();
    row.lint_warnings = pipeline->lint_report().warnings();
    if (row.status == StageStatus::Rejected)
      row.error = "rejected by lint: " + pipeline->lint_report().summary();
  }
  if (pipeline->rare_nets_done()) row.rare_nets = pipeline->rare_nets().size();
  if (pipeline->compatibility_done())
    row.compatible_pairs = pipeline->matrix().edge_count();
  row.pool_size = pipeline->pool().size();
  row.max_set_size = pipeline->pool().max_set_size();
  row.sat_queries = pipeline->train_sat_queries();
  if (pipeline->extract_done()) {
    row.patterns = pipeline->patterns().pattern_count();
    if (evaluator_ && row.status == StageStatus::Complete)
      row.coverage_percent = evaluator_(circuit, *pipeline, pipeline->patterns());
  }
  if (config_.workload_cycles > 0 && circuit.workload != nullptr &&
      row.status == StageStatus::Complete)
    run_workload(*circuit.workload, config_.workload_cycles,
                 std::max<std::size_t>(1, config_.workload_traces), row.seed, row);
}

CampaignCircuitReport Campaign::run_circuit(std::size_t index,
                                            const StageControl& control) {
  CampaignCircuitReport row;
  row.name = circuits_[index].name;
  util::Stopwatch watch;

  const std::size_t max_attempts = config_.max_retries + 1;
  const auto backoff = [this](std::size_t attempt) {
    const double ms = retry_backoff_delay_ms(config_.retry_backoff_ms, attempt,
                                             config_.retry_backoff_cap_ms);
    if (ms > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
  };
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    row.attempts = attempt + 1;
    row.error.clear();
    try {
      run_circuit_attempt(index, control, attempt, row);
      if (row.status == StageStatus::Rejected) {
        // The lint verdict is deterministic — retrying cannot change it, so
        // quarantine immediately without burning the retry budget.
        row.ok = false;
        row.quarantined = true;
        if (row.error.empty()) row.error = "rejected by lint";
        break;
      }
      if (row.status == StageStatus::TimedOut) {
        // The watchdog abandoned a hung stage. Worth retrying: a
        // session-backed circuit resumes from its last good artifact, so the
        // retry only repeats the stage that hung.
        row.ok = false;
        row.error = "stage watchdog timeout";
        if (attempt + 1 < max_attempts) {
          backoff(attempt);
          continue;
        }
        row.quarantined = true;
      } else {
        row.ok = true;
      }
      break;
    } catch (const PermanentError& e) {
      // Retrying the identical call cannot succeed (bad config, broken
      // artifact chain the session could not heal); fail fast.
      row.error = e.what();
      row.quarantined = true;
      break;
    } catch (const TransientError& e) {
      row.error = e.what();
      if (attempt + 1 >= max_attempts) {
        row.quarantined = true;  // repeat offender
        break;
      }
      backoff(attempt);
    } catch (const CorruptArtifactError& e) {
      // The session quarantined the file (or will on the next resume);
      // retrying regenerates the stage from the last good artifact.
      row.error = e.what();
      if (attempt + 1 >= max_attempts) {
        row.quarantined = true;
        break;
      }
      backoff(attempt);
    } catch (const std::exception& e) {
      // Outside the deterrent taxonomy — no evidence a retry would differ.
      row.error = e.what();
      row.quarantined = true;
      break;
    } catch (...) {
      // Satellite fix: a non-std exception used to escape run_circuit and
      // take down the whole campaign worker.
      row.error = "non-std exception escaped circuit run";
      row.quarantined = true;
      break;
    }
  }
  row.seconds = watch.elapsed_seconds();
  return row;
}

CampaignReport Campaign::run(const StageControl& control) {
  util::Stopwatch watch;
  CampaignReport report;
  report.circuits.resize(circuits_.size());
  if (circuits_.empty()) return report;

  if (!config_.cache_dir.empty() && cache_ == nullptr)
    cache_ = std::make_unique<ArtifactCache>(config_.cache_dir);

  // One shared cancellation latch: a false return from the user's callback
  // (for any circuit) stops every circuit at its next checkpoint. The user
  // callback itself runs under a lock, so it needs no synchronization.
  std::mutex progress_mutex;
  std::atomic<bool> cancelled{false};
  const auto control_for = [&](std::size_t index) {
    StageControl c;
    c.wall_budget_seconds = control.wall_budget_seconds;
    c.sat_query_budget = control.sat_query_budget;
    c.stage_timeout_seconds = control.stage_timeout_seconds > 0.0
                                  ? control.stage_timeout_seconds
                                  : config_.stage_timeout_seconds;
    c.on_progress = [this, &control, &progress_mutex, &cancelled,
                     index](const StageProgress& p) -> bool {
      if (cancelled.load(std::memory_order_relaxed)) return false;
      if (!control.on_progress) return true;
      StageProgress tagged = p;
      tagged.detail = circuits_[index].name +
                      (p.detail.empty() ? std::string() : ": " + p.detail);
      std::lock_guard lock(progress_mutex);
      if (!control.on_progress(tagged)) {
        cancelled.store(true, std::memory_order_relaxed);
        return false;
      }
      return true;
    };
    return c;
  };

  std::size_t threads = config_.threads == 0
                            ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                            : config_.threads;
  threads = std::min(threads, circuits_.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < circuits_.size(); ++i)
      report.circuits[i] = run_circuit(i, control_for(i));
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(circuits_.size(), [&](std::size_t i) {
      report.circuits[i] = run_circuit(i, control_for(i));
    });
  }

  std::size_t evaluated = 0;
  double coverage_sum = 0.0;
  for (const auto& row : report.circuits) {
    if (row.ok && row.status == StageStatus::Complete) ++report.completed;
    if (row.quarantined) ++report.quarantined;
    report.total_patterns += row.patterns;
    report.total_sat_queries += row.sat_queries;
    if (row.coverage_percent >= 0.0) {
      coverage_sum += row.coverage_percent;
      ++evaluated;
    }
  }
  if (evaluated > 0) report.mean_coverage = coverage_sum / static_cast<double>(evaluated);
  report.total_seconds = watch.elapsed_seconds();
  return report;
}

std::string CampaignReport::to_table() const {
  util::Table table({"Circuit", "Status", "Lint", "Rare", "Pairs", "Pool", "Max set",
                     "Patterns", "SAT", "Cov. (%)", "Seconds"});
  for (const auto& row : circuits) {
    std::string status = row.quarantined                       ? "quarantined"
                         : !row.ok                             ? "error"
                         : row.status == StageStatus::Complete ? "ok"
                                                               : to_string(row.status);
    if (row.attempts > 1) status += " (x" + std::to_string(row.attempts) + ")";
    const std::string lint = !row.lint_ran ? "-"
                             : row.lint_errors + row.lint_warnings == 0
                                 ? "clean"
                                 : std::to_string(row.lint_errors) + "E/" +
                                       std::to_string(row.lint_warnings) + "W";
    table.add_row({row.name, status, lint, std::to_string(row.rare_nets),
                   std::to_string(row.compatible_pairs), std::to_string(row.pool_size),
                   std::to_string(row.max_set_size), std::to_string(row.patterns),
                   std::to_string(row.sat_queries),
                   row.coverage_percent >= 0.0 ? util::Table::num(row.coverage_percent, 1)
                                               : "-",
                   util::Table::num(row.seconds, 2)});
  }
  table.add_row({"total", std::to_string(completed) + "/" + std::to_string(circuits.size()),
                 "", "", "", "", "", std::to_string(total_patterns),
                 std::to_string(total_sat_queries),
                 mean_coverage >= 0.0 ? util::Table::num(mean_coverage, 1) : "-",
                 util::Table::num(total_seconds, 2)});
  std::string out = table.to_string();
  for (const auto& row : circuits) {
    if (!row.ok) out += row.name + ": " + row.error + "\n";
    for (const auto& file : row.recovered)
      out += row.name + ": quarantined corrupt " + file + " and regenerated\n";
  }
  return out;
}

}  // namespace deterrent::core

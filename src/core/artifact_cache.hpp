#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/artifacts.hpp"

namespace deterrent::core {

/// Canonical hash of a DeterrentConfig: FNV-1a over the exact byte stream
/// write_config produces, mixed with kArtifactFormatVersion. Because every
/// scalar knob is serialized, changing *any* field — a budget, a seed, a lane
/// count, a lint rule — changes the hash, which is what makes it safe as the
/// "config" half of a cache key: two runs with the same hash would have
/// produced byte-identical artifacts.
std::uint64_t config_hash(const DeterrentConfig& config);

/// Point-in-time cache summary plus this process's hit counters.
struct ArtifactCacheStats {
  std::uint64_t entries = 0;  ///< entry files currently on disk
  std::uint64_t bytes = 0;    ///< their total size
  std::uint64_t hits = 0;     ///< fetches served (process lifetime)
  std::uint64_t misses = 0;   ///< fetches that found nothing usable
  std::uint64_t stores = 0;   ///< entries published
  std::uint64_t evicted_corrupt = 0;  ///< entries evicted by validation
};

/// Content-addressed artifact store shared across sessions: entries are keyed
/// by (netlist structural fingerprint, canonical config hash, artifact kind,
/// format version), so a previously-seen design under an identical config
/// returns its rare-net/compatibility/policy/pattern artifacts without
/// re-running any stage.
///
/// On-disk layout (see docs/service.md):
///
///   <root>/<kind>/<fingerprint hex>-<config hash hex>-v<version>.art
///
/// Entries are verbatim copies of session artifact files — the full
/// util::serialize envelope (magic, kind, version, fingerprint, CRC), written
/// atomically (write-then-fsync-then-rename), so cache hydration is a byte
/// copy and a hydrated session is bit-identical to the session that populated
/// the cache.
///
/// **Trust.** The cache trusts nothing it stores: every fetch re-validates
/// the entry through util::read_artifact_file (magic, kind, version pin,
/// fingerprint, CRC). A corrupt entry is evicted and reported as a miss —
/// the caller regenerates and re-publishes, mirroring the session layer's
/// corruption-quarantine path. Entries whose format version differs from the
/// running build simply never match a key (the version is part of the file
/// name), so version bumps age out naturally.
///
/// Safe for concurrent use by campaign workers: counters are atomic, writes
/// are atomic-rename (racing stores of one key both publish valid bytes;
/// last rename wins), and fetch never modifies a valid entry.
///
/// Fault sites: "cache.fetch" (throw/hang) fires on every lookup;
/// "cache.store" (throw/hang/torn-truncate/torn-flip) guards the entry write,
/// so the DETERRENT_FAULTS grammar can plant a corrupt cache entry for the
/// recovery path to catch.
class ArtifactCache {
 public:
  /// Binds (and creates, if missing) the cache root directory.
  explicit ArtifactCache(std::string root);

  const std::string& root() const { return root_; }

  /// Absolute entry path for a key (the file may or may not exist).
  std::string entry_path(std::uint64_t netlist_fingerprint, std::uint64_t cfg_hash,
                         ArtifactKind kind) const;

  /// Copies a validated entry to `dest_path` (atomically). Returns false on
  /// miss; a corrupt entry is evicted first, never handed out.
  bool fetch(std::uint64_t netlist_fingerprint, std::uint64_t cfg_hash,
             ArtifactKind kind, const std::string& dest_path);

  /// Publishes the artifact file at `src_path` under the key. The source is
  /// validated first, so the cache never holds bytes the envelope check
  /// would reject at fetch time. Failures to validate the source throw; a
  /// failure to write the entry is swallowed (the cache is an accelerator,
  /// not a durability layer — the session copy is authoritative).
  void store(std::uint64_t netlist_fingerprint, std::uint64_t cfg_hash,
             ArtifactKind kind, const std::string& src_path);

  /// Walks the cache directory for entry counts/bytes and merges in this
  /// process's counters.
  ArtifactCacheStats stats() const;

  /// Removes every entry. Returns the number of files removed.
  std::size_t evict_all();

  /// Removes every entry belonging to one netlist fingerprint.
  std::size_t evict_fingerprint(std::uint64_t netlist_fingerprint);

 private:
  std::string root_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
  std::atomic<std::uint64_t> evicted_corrupt_{0};
};

}  // namespace deterrent::core

#include "core/deterrent.hpp"

#include <unordered_set>

#include "sat/oracle.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace deterrent::core {

Deterrent::Deterrent(const netlist::Netlist& netlist, const DeterrentConfig& config)
    : netlist_(&netlist), config_(config) {
  if (netlist.is_sequential())
    throw Error("Deterrent requires a combinational netlist (use make_full_scan)");
}

Deterrent::~Deterrent() = default;

void Deterrent::prepare() {
  util::Rng rng(config_.seed);
  util::ThreadPool pool(config_.offline_threads);
  rare_nets_ = analysis::find_rare_nets(*netlist_, config_.rare, rng, &pool);
  if (rare_nets_.empty())
    throw Error("no rare nets below threshold " + std::to_string(config_.rare.threshold));
  matrix_ = analysis::build_compatibility(*netlist_, rare_nets_, config_.compat, rng,
                                          &pool, &compat_stats_, &witness_signatures_);
  util::Log::info("deterrent: prepared ", rare_nets_.size(), " rare nets, ",
                  matrix_->edge_count(), " compatible pairs (",
                  compat_stats_.sim_resolved, " sim, ", compat_stats_.sat_sat,
                  " sat) in ", compat_stats_.build_seconds, "s");
}

void Deterrent::prepare_with(std::vector<analysis::RareNet> rare_nets) {
  DETERRENT_ASSERT(!rare_nets.empty(), "prepare_with requires rare nets");
  util::Rng rng(config_.seed);
  util::ThreadPool pool(config_.offline_threads);
  rare_nets_ = std::move(rare_nets);
  matrix_ = analysis::build_compatibility(*netlist_, rare_nets_, config_.compat, rng,
                                          &pool, &compat_stats_, &witness_signatures_);
}

const std::vector<TrainingSnapshot>& Deterrent::train(std::size_t updates) {
  if (!prepared()) throw Error("Deterrent::train called before prepare()");
  if (updates == 0) updates = config_.updates;

  if (!trainer_) {
    auto factory = [this](std::size_t /*worker*/) -> std::unique_ptr<rl::Env> {
      EnvConfig env_config = config_.env;
      if (env_config.witness_signatures == nullptr && !witness_signatures_.empty())
        env_config.witness_signatures = &witness_signatures_;
      return std::make_unique<CompatibleSetEnv>(*netlist_, rare_nets_, *matrix_,
                                                env_config, &pool_);
    };
    trainer_ = std::make_unique<rl::PpoTrainer>(factory, config_.ppo, config_.seed);
  }

  util::Stopwatch watch;
  for (std::size_t u = 0; u < updates; ++u) {
    TrainingSnapshot snap;
    snap.ppo = trainer_->update();
    snap.pool_size = pool_.size();
    snap.max_set_size = pool_.max_set_size();
    snap.cumulative_steps = trainer_->total_steps();
    snap.cumulative_episodes = trainer_->total_episodes();
    snap.elapsed_seconds = train_seconds_ + watch.elapsed_seconds();
    history_.push_back(snap);
  }
  train_seconds_ += watch.elapsed_seconds();
  return history_;
}

sim::PatternSet Deterrent::extract_patterns(std::size_t k) {
  if (!prepared()) throw Error("Deterrent::extract_patterns called before prepare()");
  if (k == 0) k = config_.k_patterns;

  extracted_sets_ = pool_.k_largest(k);
  sim::PatternSet patterns(netlist_->inputs().size());
  if (extracted_sets_.empty()) return patterns;

  sat::NetlistOracle oracle(*netlist_);
  util::Rng rng(config_.seed ^ 0xd1e5c0de);
  std::vector<sat::Constraint> constraints;
  std::vector<util::BitVec> kept_sets;
  std::unordered_set<util::BitVec, util::BitVecHash> distinct_patterns;

  for (const auto& set : extracted_sets_) {
    constraints.clear();
    for (const std::uint32_t idx : set.to_indices())
      constraints.push_back({rare_nets_[idx].net, rare_nets_[idx].rare_value});
    oracle.randomize_completion(rng);
    const auto pattern = oracle.find_pattern(constraints);
    // Every pooled set was SAT-verified during training; an UNSAT here would
    // indicate a bug, but stay robust and simply skip.
    if (!pattern.has_value()) {
      util::Log::warn("deterrent: pooled set of size ", set.count(),
                      " unexpectedly unsatisfiable; skipped");
      continue;
    }
    if (distinct_patterns.insert(*pattern).second) {
      patterns.push(*pattern);
      kept_sets.push_back(set);
    }
  }
  extracted_sets_ = std::move(kept_sets);
  return patterns;
}

sim::PatternSet Deterrent::run() {
  if (!prepared()) prepare();
  if (history_.empty()) train();
  return extract_patterns();
}

}  // namespace deterrent::core

#include "core/deterrent.hpp"

#include "util/assert.hpp"

namespace deterrent::core {

Deterrent::Deterrent(const netlist::Netlist& netlist, const DeterrentConfig& config)
    : pipeline_(std::make_unique<Pipeline>(netlist, config)) {}

Deterrent::~Deterrent() = default;

void Deterrent::prepare() {
  pipeline_->run_rare_nets();
  pipeline_->run_compatibility();
}

void Deterrent::prepare_with(std::vector<analysis::RareNet> rare_nets) {
  DETERRENT_ASSERT(!rare_nets.empty(), "prepare_with requires rare nets");
  RareNetArtifact artifact;
  artifact.netlist_fingerprint = pipeline_->netlist_fingerprint();
  artifact.threshold = pipeline_->config().rare.threshold;
  artifact.seed = pipeline_->config().seed;
  artifact.rare_nets = std::move(rare_nets);
  // The injected rare nets skipped the rare-net stage, so the compatibility
  // build starts a fresh offline stream from the seed (matching the
  // historical prepare_with behavior).
  artifact.rng_state_after = util::Rng(pipeline_->config().seed).state();
  pipeline_->adopt(std::move(artifact));
  pipeline_->run_compatibility();
}

const std::vector<TrainingSnapshot>& Deterrent::train(std::size_t updates) {
  if (!prepared()) throw Error("Deterrent::train called before prepare()");
  pipeline_->run_train(updates);
  return pipeline_->history();
}

sim::PatternSet Deterrent::extract_patterns(std::size_t k) {
  if (!prepared()) throw Error("Deterrent::extract_patterns called before prepare()");
  pipeline_->run_extract(k);
  return pipeline_->patterns();
}

sim::PatternSet Deterrent::run() {
  if (!prepared()) prepare();
  if (pipeline_->history().empty()) train();
  return extract_patterns();
}

std::uint64_t Deterrent::train_sat_queries() const {
  return pipeline_->train_sat_queries();
}

}  // namespace deterrent::core

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/artifacts.hpp"
#include "core/set_pool.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::core {

/// The explicit stages of the DETERRENT flow (Figure 4) plus the lint front
/// door. Each stage consumes its predecessor's artifact and produces its own:
///
///   Lint          → LintArtifact           (stage 0: static DRC + trojan screen)
///   RareNets      → RareNetArtifact        (rareness filtering, step ❶)
///   Compatibility → CompatibilityArtifact  (offline pairwise phase)
///   Train         → PolicyArtifact         (PPO over the compatible-set MDP)
///   Extract       → PatternArtifact        (SAT pattern extraction, §3.5)
///
/// Lint is a gate, not a data dependency: later stages consume the netlist,
/// not the lint report, so a resumed run whose rare-net artifact already
/// exists skips the lint stage entirely (the verdict from the original run is
/// carried by the session's lint sidecar artifact).
enum class Stage { Lint, RareNets, Compatibility, Train, Extract, Done };

const char* to_string(Stage stage);

/// Progress report delivered to StageControl::on_progress. `current`/`total`
/// count the stage's natural unit: PPO updates for Train, extracted sets for
/// Extract, and a 0/1 start/finish pair for the monolithic offline stages.
struct StageProgress {
  Stage stage = Stage::Done;
  std::size_t current = 0;
  std::size_t total = 0;
  std::string detail;
  double stage_seconds = 0.0;      ///< wall clock since this stage call began
  std::uint64_t sat_queries = 0;   ///< cumulative training SAT queries (Train)
};

/// Cooperative control of one stage call: observation, cancellation, and
/// budgets. All checks happen at stage checkpoints (between PPO updates,
/// between extracted sets), so a tripped budget or cancel always leaves the
/// pipeline in a consistent, checkpointable state.
struct StageControl {
  /// Invoked at every checkpoint; return false to cancel the stage.
  std::function<bool(const StageProgress&)> on_progress;
  /// Stage wall-clock budget in seconds; 0 = unlimited. The stage stops at
  /// the first checkpoint past the budget (it does not interrupt mid-update).
  double wall_budget_seconds = 0.0;
  /// Cumulative training SAT-query ceiling; 0 = unlimited. Train only.
  std::uint64_t sat_query_budget = 0;
  /// Stage watchdog: a util::WatchdogScope deadline installed for the whole
  /// stage call (propagated into thread-pool workers). Unlike the budgets,
  /// which only trip at checkpoints, the watchdog fires *inside* hung
  /// primitives at their cancellation points (SAT queries, injected hangs)
  /// and surfaces as StageStatus::TimedOut. 0 = no watchdog.
  double stage_timeout_seconds = 0.0;
};

/// How a stage call ended. Cancelled/BudgetExhausted leave completed work in
/// place (Train keeps finished updates; Extract discards its partial batch),
/// so the pipeline can be saved and resumed later. TimedOut means the stage
/// watchdog abandoned hung work: on-disk checkpoints are untouched, but the
/// in-memory train state may be mid-update (see Pipeline::poisoned) — resume
/// from the session's artifacts rather than this object. Rejected is the lint
/// front door's verdict: the design has findings at or above
/// LintConfig::fail_on, no later stage will run, and retrying cannot help
/// (the report travels in Pipeline::lint_report / the session's lint
/// artifact).
enum class StageStatus { Complete, Cancelled, BudgetExhausted, TimedOut, Rejected };

const char* to_string(StageStatus status);

/// Staged DETERRENT pipeline with serializable artifacts.
///
/// The monolithic core::Deterrent flow, re-cut at its natural joints. Every
/// stage can be run, exported as a versioned binary artifact, and later
/// adopted into a fresh Pipeline (same netlist, same config) to resume.
///
/// **Versioning.** Every artifact file carries the util::serialize envelope
/// (magic, ArtifactKind, kArtifactFormatVersion, netlist fingerprint, CRC).
/// Loaders pin kind AND version: a payload-layout change bumps
/// kArtifactFormatVersion and old files are rejected loudly — there is no
/// cross-version migration, regenerate instead. Stage artifacts are chained
/// by content: each downstream artifact embeds the producing run's rare-net
/// hash (RareNetArtifact::rare_hash), so adopt() can refuse a compatibility
/// matrix, policy, or pattern set built from different rare nets even when
/// the netlist matches.
///
/// **Resume semantics.** Resumed runs are bit-identical to uninterrupted
/// ones for a fixed seed: the rare-net stage hands its RNG state to the
/// compatibility build (RareNetArtifact::rng_state_after), and
/// PolicyArtifact checkpoints the complete trainer state — MLP parameters,
/// Adam moments, every RNG stream, the distinct-set pool, and the training
/// history — so training continues mid-flight as if never interrupted.
/// Adoption must happen in stage order, before the corresponding stage runs
/// here; a fingerprint or hash-chain mismatch throws deterrent::Error.
///
/// The netlist must be combinational (full-scan view for sequential designs)
/// and must outlive the pipeline. core::Deterrent remains as a thin facade
/// over this class; core::Session adds directory persistence, core::Campaign
/// multi-circuit fan-out.
class Pipeline {
 public:
  Pipeline(const netlist::Netlist& netlist, const DeterrentConfig& config);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  const netlist::Netlist& target() const { return *netlist_; }
  const DeterrentConfig& config() const { return config_; }
  std::uint64_t netlist_fingerprint() const { return fingerprint_; }

  /// First stage that still has work: Train until effective_updates()
  /// updates have run, Extract until a pattern set was produced.
  Stage next_stage() const;

  /// Runtime-only (never serialized): directory where a sharded
  /// compatibility build (config.compat.shard_count >= 2) persists its chunk
  /// manifest and per-shard partial artifacts, so a killed build resumes
  /// from the shards that finished. Empty = in-memory sharding only.
  /// Session sets this to `<session dir>/compat_shards` and removes the
  /// directory once the merged artifact is safely on disk.
  void set_compat_scratch_dir(std::string dir) { compat_scratch_dir_ = std::move(dir); }
  const std::string& compat_scratch_dir() const { return compat_scratch_dir_; }

  /// The Train stage's completion target: config.updates, clamped to at
  /// least 1 (see Deterrent::train for the zero-updates edge).
  std::size_t effective_updates() const;

  // ---- stage execution ----------------------------------------------------
  // Stages must run in order; calling one before its predecessor completed
  // throws deterrent::Error. Re-running a completed offline stage is a no-op
  // returning Complete; run_train always trains `updates` more iterations.

  /// Stage 0: static lint/DRC + trojan screen over the bound netlist.
  /// Returns Rejected when the report trips LintConfig::fail_on — later
  /// stages then refuse to run (PermanentError). A no-op returning Complete
  /// when lint is disabled or already ran clean; re-running a rejected lint
  /// returns Rejected again. run_rare_nets() invokes this implicitly, so
  /// legacy prepare() flows get the front door for free.
  StageStatus run_lint(const StageControl& control = {});
  StageStatus run_rare_nets(const StageControl& control = {});
  StageStatus run_compatibility(const StageControl& control = {});
  /// Runs `updates` PPO iterations (effective_updates() when 0), appending to
  /// the training history.
  StageStatus run_train(std::size_t updates = 0, const StageControl& control = {});
  /// Extracts the k largest distinct sets into patterns (config.k_patterns
  /// when 0). Requires a non-empty pool (i.e. some training); on
  /// cancel/budget the partial batch is discarded. Training again after an
  /// extraction marks it stale, so run_remaining() re-extracts.
  StageStatus run_extract(std::size_t k = 0, const StageControl& control = {});

  /// Runs every remaining stage (per next_stage()) to completion — the
  /// resume entry point. Stops at the first non-Complete stage status.
  StageStatus run_remaining(const StageControl& control = {});

  // ---- artifact export / adoption ----------------------------------------
  // Exports snapshot the pipeline state after a completed stage (export
  // before completion throws); adopting an artifact into a fresh pipeline
  // restores exactly that state. Adoption validates the netlist fingerprint
  // and the rare-net content hash chain, and must happen in stage order
  // before the corresponding stage ran — out-of-order or mismatched
  // adoption throws deterrent::Error and leaves the pipeline unchanged.
  // Save/load of the files themselves (envelope, version pinning, CRC) is
  // the artifact types' job: see core/artifacts.hpp and util/serialize.hpp.

  LintArtifact export_lint() const;
  RareNetArtifact export_rare_nets() const;
  CompatibilityArtifact export_compatibility() const;
  PolicyArtifact export_policy() const;
  PatternArtifact export_patterns() const;

  void adopt(LintArtifact artifact);
  void adopt(RareNetArtifact artifact);
  void adopt(CompatibilityArtifact artifact);
  void adopt(PolicyArtifact artifact);
  void adopt(PatternArtifact artifact);

  // ---- state accessors ----------------------------------------------------

  /// True once the lint stage produced a verdict (ran here or was adopted).
  bool lint_done() const { return lint_done_; }
  /// True when the lint verdict was "reject" — later stages throw.
  bool lint_rejected() const { return lint_rejected_; }
  /// The lint stage's report (empty before lint_done()).
  const analysis::LintReport& lint_report() const { return lint_report_; }
  bool rare_nets_done() const { return rare_done_; }
  bool compatibility_done() const { return matrix_.has_value(); }
  bool extract_done() const { return extract_done_; }
  /// True when an exception (timeout, injected fault, I/O failure) escaped
  /// mid-training-update, so the in-memory trainer state may be torn. A
  /// poisoned pipeline must not be checkpointed (Session::save skips the
  /// policy artifact); rebuild from the last saved artifacts instead.
  bool poisoned() const { return poisoned_; }

  std::span<const analysis::RareNet> rare_nets() const { return rare_nets_; }
  const analysis::CompatibilityMatrix& matrix() const { return *matrix_; }
  const std::vector<util::BitVec>& witness_signatures() const {
    return witness_signatures_;
  }
  const analysis::CompatibilityBuildStats& compat_stats() const { return compat_stats_; }
  DistinctSetPool& pool() { return pool_; }
  const DistinctSetPool& pool() const { return pool_; }
  const std::vector<TrainingSnapshot>& history() const { return history_; }
  /// Patterns from the most recent completed Extract stage.
  const sim::PatternSet& patterns() const { return patterns_; }
  /// The distinct sets behind patterns(), parallel to the pattern order.
  const std::vector<util::BitVec>& extracted_sets() const { return extracted_sets_; }
  /// Cumulative SAT queries issued by the training environments (including
  /// queries from restored checkpoints).
  std::uint64_t train_sat_queries() const;

 private:
  void ensure_trainer();
  std::uint64_t rare_hash() const;
  /// Emits a progress checkpoint and applies control's budgets. Returns
  /// Complete to continue, Cancelled/BudgetExhausted to stop.
  StageStatus checkpoint(const StageControl& control, StageProgress&& progress) const;

  const netlist::Netlist* netlist_;
  DeterrentConfig config_;
  std::uint64_t fingerprint_ = 0;

  bool lint_done_ = false;
  bool lint_rejected_ = false;
  analysis::LintReport lint_report_;

  bool rare_done_ = false;
  std::vector<analysis::RareNet> rare_nets_;
  std::array<std::uint64_t, 4> offline_rng_state_{};  // carried rare → compat
  std::string compat_scratch_dir_;  // runtime-only, see set_compat_scratch_dir

  std::optional<analysis::CompatibilityMatrix> matrix_;
  std::vector<util::BitVec> witness_signatures_;
  analysis::CompatibilityBuildStats compat_stats_;

  DistinctSetPool pool_;
  std::unique_ptr<rl::PpoTrainer> trainer_;
  std::optional<rl::TrainerState> pending_trainer_state_;
  std::vector<TrainingSnapshot> history_;
  double train_seconds_ = 0.0;
  std::uint64_t sat_queries_base_ = 0;  // from restored checkpoints

  bool extract_done_ = false;
  bool poisoned_ = false;
  sim::PatternSet patterns_;
  std::vector<util::BitVec> extracted_sets_;
};

}  // namespace deterrent::core

#include "core/artifact_cache.hpp"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <vector>

#include "util/faults.hpp"
#include "util/logging.hpp"

namespace deterrent::core {

namespace fs = std::filesystem;

std::uint64_t config_hash(const DeterrentConfig& config) {
  util::BinaryWriter w;
  write_config(w, config);
  util::Fnv1a hash;
  hash.mix(kArtifactFormatVersion);
  hash.mix(w.bytes().size());
  for (const std::uint8_t b : w.bytes()) hash.mix(b);
  return hash.value_nonzero();
}

namespace {

const char* kind_dir(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::SessionMeta: return "meta";
    case ArtifactKind::RareNets: return "rare_nets";
    case ArtifactKind::Compatibility: return "compatibility";
    case ArtifactKind::Policy: return "policy";
    case ArtifactKind::Patterns: return "patterns";
    case ArtifactKind::Lint: return "lint";
    case ArtifactKind::CompatShardPartial: return "compat_shard";
    case ArtifactKind::CompatShardManifest: return "compat_manifest";
  }
  return "unknown";
}

std::string entry_name(std::uint64_t fingerprint, std::uint64_t cfg_hash) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64 "-%016" PRIx64 "-v%u.art", fingerprint,
                cfg_hash, kArtifactFormatVersion);
  return buf;
}

bool is_entry_file(const fs::directory_entry& entry) {
  return entry.is_regular_file() && entry.path().extension() == ".art";
}

}  // namespace

ArtifactCache::ArtifactCache(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec)
    throw Error("ArtifactCache: cannot create directory " + root_ + ": " + ec.message());
}

std::string ArtifactCache::entry_path(std::uint64_t netlist_fingerprint,
                                      std::uint64_t cfg_hash, ArtifactKind kind) const {
  return (fs::path(root_) / kind_dir(kind) / entry_name(netlist_fingerprint, cfg_hash))
      .string();
}

bool ArtifactCache::fetch(std::uint64_t netlist_fingerprint, std::uint64_t cfg_hash,
                          ArtifactKind kind, const std::string& dest_path) {
  DETERRENT_FAULT_POINT("cache.fetch");
  const std::string entry = entry_path(netlist_fingerprint, cfg_hash, kind);
  std::error_code ec;
  if (!fs::exists(entry, ec)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Validate the whole envelope before handing anything out: a cache entry is
  // never trusted, exactly like a session artifact on resume. Corruption of
  // any flavor — torn file, bit flip, wrong kind, foreign fingerprint —
  // evicts the entry; the caller regenerates and re-publishes.
  try {
    (void)util::read_artifact_file(
        entry,
        {static_cast<std::uint32_t>(kind), kArtifactFormatVersion, netlist_fingerprint});
  } catch (const TransientError&) {
    // Says nothing about the bytes (momentary I/O failure); miss without
    // destroying a possibly-good entry.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  } catch (const Error& e) {
    fs::remove(entry, ec);
    evicted_corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    util::Log::warn("cache: evicted corrupt entry ", entry, " (", e.what(), ")");
    return false;
  }
  util::write_file_atomic(dest_path, util::read_file_bytes(entry));
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ArtifactCache::store(std::uint64_t netlist_fingerprint, std::uint64_t cfg_hash,
                          ArtifactKind kind, const std::string& src_path) {
  // Validate the source before publishing: the cache must never serve bytes
  // its own fetch-time check would evict.
  (void)util::read_artifact_file(
      src_path,
      {static_cast<std::uint32_t>(kind), kArtifactFormatVersion, netlist_fingerprint});
  const std::string entry = entry_path(netlist_fingerprint, cfg_hash, kind);
  std::error_code ec;
  fs::create_directories(fs::path(entry).parent_path(), ec);
  try {
    util::write_file_atomic(entry, util::read_file_bytes(src_path), "cache.store");
    stores_.fetch_add(1, std::memory_order_relaxed);
  } catch (const TransientError& e) {
    // A failed publish only costs a future cache miss; the session copy is
    // the authoritative one, so don't fail the run over it.
    util::Log::warn("cache: could not publish ", entry, " (", e.what(), ")");
  }
}

ArtifactCacheStats ArtifactCache::stats() const {
  ArtifactCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  s.evicted_corrupt = evicted_corrupt_.load(std::memory_order_relaxed);
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root_, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!is_entry_file(*it)) continue;
    ++s.entries;
    s.bytes += it->file_size(ec);
  }
  return s;
}

namespace {

// Collect-then-remove: deleting entries out from under a live directory
// iterator is implementation-defined.
std::size_t remove_matching(const std::string& root,
                            const std::function<bool(const fs::path&)>& match) {
  std::vector<fs::path> victims;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (is_entry_file(*it) && match(it->path())) victims.push_back(it->path());
  }
  std::size_t removed = 0;
  for (const auto& path : victims) {
    std::error_code rm;
    if (fs::remove(path, rm) && !rm) ++removed;
  }
  return removed;
}

}  // namespace

std::size_t ArtifactCache::evict_all() {
  return remove_matching(root_, [](const fs::path&) { return true; });
}

std::size_t ArtifactCache::evict_fingerprint(std::uint64_t netlist_fingerprint) {
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "%016" PRIx64 "-", netlist_fingerprint);
  return remove_matching(root_, [&](const fs::path& path) {
    return path.filename().string().rfind(prefix, 0) == 0;
  });
}

}  // namespace deterrent::core

#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace deterrent::netlist {

/// Result of the full-scan transform. Net ids are IDENTICAL between the
/// original netlist and `comb`: the transform only retypes DFF outputs as
/// pseudo primary inputs and exposes DFF data nets as pseudo primary outputs.
/// This id stability lets rare-net and Trojan analyses computed on the scan
/// view be reported against the original design directly.
struct ScanView {
  Netlist comb;                        ///< purely combinational netlist
  std::vector<NetId> pseudo_inputs;    ///< former DFF Q nets, now inputs
  std::vector<NetId> pseudo_outputs;   ///< former DFF D nets, now outputs
};

/// Applies the full-scan testability assumption used by DETERRENT, TARMAC and
/// TGRL (§4.1): every flip-flop is directly controllable and observable, so
/// one test pattern assigns all primary inputs plus all scanned state bits.
/// For a combinational netlist this is an identity copy.
ScanView make_full_scan(const Netlist& netlist);

}  // namespace deterrent::netlist

#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace deterrent::netlist {

std::optional<NetId> Netlist::find(const std::string& net_name) const {
  auto it = name_index_.find(net_name);
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

NetId NetlistBuilder::declare(std::string name) {
  NetId id = static_cast<NetId>(types_.size());
  types_.push_back(kUndefined);
  fanins_.emplace_back();
  names_.push_back(std::move(name));
  return id;
}

NetId NetlistBuilder::add_defined(GateType type, std::vector<NetId> fanins,
                                  std::string name) {
  NetId id = declare(std::move(name));
  types_[id] = type;
  fanins_[id] = std::move(fanins);
  return id;
}

NetId NetlistBuilder::add_input(std::string name) {
  return add_defined(GateType::Input, {}, std::move(name));
}

NetId NetlistBuilder::add_const(bool value, std::string name) {
  return add_defined(value ? GateType::Const1 : GateType::Const0, {}, std::move(name));
}

NetId NetlistBuilder::add_gate(GateType type, std::vector<NetId> fanins,
                               std::string name) {
  if (!is_combinational_cell(type))
    throw Error("add_gate: " + std::string(to_string(type)) + " is not a combinational cell");
  return add_defined(type, std::move(fanins), std::move(name));
}

NetId NetlistBuilder::add_dff(NetId d, std::string name) {
  std::vector<NetId> fanins;
  if (d != kNoNet) fanins.push_back(d);
  return add_defined(GateType::Dff, std::move(fanins), std::move(name));
}

void NetlistBuilder::check_new_definition(NetId net) const {
  if (net >= types_.size()) throw Error("define: unknown net id");
  if (types_[net] != kUndefined)
    throw Error("define: net '" + names_[net] + "' already defined");
}

void NetlistBuilder::define_input(NetId net) {
  check_new_definition(net);
  types_[net] = GateType::Input;
}

void NetlistBuilder::define_gate(NetId net, GateType type, std::vector<NetId> fanins) {
  check_new_definition(net);
  if (!is_combinational_cell(type))
    throw Error("define_gate: " + std::string(to_string(type)) +
                " is not a combinational cell");
  types_[net] = type;
  fanins_[net] = std::move(fanins);
}

void NetlistBuilder::define_dff(NetId net, NetId d) {
  check_new_definition(net);
  types_[net] = GateType::Dff;
  if (d != kNoNet) fanins_[net] = {d};
}

void NetlistBuilder::set_dff_input(NetId q, NetId d) {
  if (q >= types_.size() || types_[q] != GateType::Dff)
    throw Error("set_dff_input: net is not a DFF");
  fanins_[q] = {d};
}

void NetlistBuilder::mark_output(NetId net) {
  if (net >= types_.size()) throw Error("mark_output: unknown net id");
  outputs_.push_back(net);
}

const std::string& NetlistBuilder::name(NetId net) const {
  static const std::string empty;
  return net < names_.size() ? names_[net] : empty;
}

namespace {

std::string issue_name(const std::vector<std::string>& names, NetId id) {
  if (!names[id].empty()) return "'" + names[id] + "'";
  return "#" + std::to_string(id);
}

}  // namespace

std::vector<BuildIssue> NetlistBuilder::validate() const {
  std::vector<BuildIssue> issues;
  const std::size_t n = types_.size();

  bool shape_ok = true;
  for (NetId id = 0; id < n; ++id) {
    if (types_[id] == kUndefined) {
      issues.push_back({BuildIssue::Kind::Undefined, id,
                        "net " + issue_name(names_, id) +
                            " is used but never driven"});
      shape_ok = false;
      continue;
    }
    const FaninBounds bounds = fanin_bounds(types_[id]);
    const std::size_t arity = fanins_[id].size();
    if (arity < bounds.min || (bounds.max != 0 && arity > bounds.max)) {
      issues.push_back({BuildIssue::Kind::Arity, id,
                        "net " + issue_name(names_, id) + " has invalid fanin count " +
                            std::to_string(arity) + " for " +
                            std::string(to_string(types_[id]))});
      shape_ok = false;
    }
    for (NetId f : fanins_[id]) {
      if (f >= n) {
        issues.push_back({BuildIssue::Kind::OutOfRangeFanin, id,
                          "net " + issue_name(names_, id) +
                              " has out-of-range fanin #" + std::to_string(f)});
        shape_ok = false;
      }
    }
  }
  // Cycle membership is only meaningful on a fully-driven graph.
  if (!shape_ok) return issues;

  // Iterative Tarjan SCC over the combinational dependency graph (edges
  // gate -> fanin; DFF data inputs cross a clock edge and are excluded).
  // Every SCC with more than one net — or a gate feeding itself — is a
  // combinational cycle; report one issue per SCC, anchored at its first net.
  constexpr std::uint32_t kUnvisited = 0xffffffffu;
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NetId> scc_stack;
  std::uint32_t next_index = 0;

  struct Frame {
    NetId v;
    std::size_t child;
  };
  std::vector<Frame> dfs;

  for (NetId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    while (!dfs.empty()) {
      Frame& fr = dfs.back();
      const NetId v = fr.v;
      if (fr.child == 0) {
        index[v] = lowlink[v] = next_index++;
        scc_stack.push_back(v);
        on_stack[v] = true;
      }
      const bool comb = is_combinational_cell(types_[v]);
      const std::size_t degree = comb ? fanins_[v].size() : 0;
      if (fr.child < degree) {
        const NetId w = fanins_[v][fr.child++];
        if (index[w] == kUnvisited) {
          dfs.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        std::vector<NetId> scc;
        NetId w;
        do {
          w = scc_stack.back();
          scc_stack.pop_back();
          on_stack[w] = false;
          scc.push_back(w);
        } while (w != v);
        const bool self_loop =
            scc.size() == 1 && comb &&
            std::find(fanins_[v].begin(), fanins_[v].end(), v) != fanins_[v].end();
        if (scc.size() > 1 || self_loop) {
          std::sort(scc.begin(), scc.end());
          std::string path;
          constexpr std::size_t kMaxListed = 8;
          for (std::size_t i = 0; i < scc.size() && i < kMaxListed; ++i) {
            if (i) path += " -> ";
            path += issue_name(names_, scc[i]);
          }
          if (scc.size() > kMaxListed)
            path += " -> ... (" + std::to_string(scc.size() - kMaxListed) + " more)";
          issues.push_back({BuildIssue::Kind::Cycle, scc.front(),
                            "combinational cycle through " +
                                std::to_string(scc.size()) + " net" +
                                (scc.size() == 1 ? "" : "s") + ": " + path});
        }
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        Frame& parent = dfs.back();
        lowlink[parent.v] = std::min(lowlink[parent.v], lowlink[v]);
      }
    }
  }

  std::sort(issues.begin(), issues.end(),
            [](const BuildIssue& a, const BuildIssue& b) { return a.net < b.net; });
  return issues;
}

Netlist NetlistBuilder::build() {
  const std::size_t n = types_.size();

  // Full-definition and arity validation (structured, so callers that went
  // through validate() first never pay twice for a malformed design: a clean
  // validate() guarantees this throws nothing).
  if (auto issues = validate(); !issues.empty())
    throw Error("build: " + issues.front().message +
                (issues.size() > 1
                     ? " (+" + std::to_string(issues.size() - 1) + " more issues)"
                     : ""));

  Netlist out;
  out.types_ = std::move(types_);
  out.names_ = std::move(names_);
  out.outputs_ = std::move(outputs_);

  // Fanin CSR.
  out.fanin_offset_.assign(n + 1, 0);
  for (NetId id = 0; id < n; ++id)
    out.fanin_offset_[id + 1] =
        out.fanin_offset_[id] + static_cast<std::uint32_t>(fanins_[id].size());
  out.fanins_.reserve(out.fanin_offset_[n]);
  for (NetId id = 0; id < n; ++id)
    out.fanins_.insert(out.fanins_.end(), fanins_[id].begin(), fanins_[id].end());

  // Kahn topological sort over combinational dependencies. DFF outputs are
  // sources (their D-input dependency crosses a clock edge, not this cycle).
  std::vector<std::uint32_t> pending(n, 0);
  for (NetId id = 0; id < n; ++id)
    if (is_combinational_cell(out.types_[id]))
      pending[id] = static_cast<std::uint32_t>(out.fanins(id).size());

  out.topo_order_.reserve(n);
  out.levels_.assign(n, 0);

  // Fanout counting restricted to combinational consumers for the sort; the
  // stored fanout CSR below includes DFF consumers as well.
  std::vector<NetId> ready;
  for (NetId id = 0; id < n; ++id)
    if (!is_combinational_cell(out.types_[id]) || pending[id] == 0) {
      ready.push_back(id);
      if (out.types_[id] == GateType::Input) out.inputs_.push_back(id);
      if (out.types_[id] == GateType::Dff) out.dffs_.push_back(id);
    }

  // Temporary combinational fanout adjacency for Kahn's algorithm.
  std::vector<std::uint32_t> comb_fanout_offset(n + 1, 0);
  for (NetId id = 0; id < n; ++id) {
    if (!is_combinational_cell(out.types_[id])) continue;
    for (NetId f : out.fanins(id)) comb_fanout_offset[f + 1]++;
  }
  for (std::size_t i = 0; i < n; ++i) comb_fanout_offset[i + 1] += comb_fanout_offset[i];
  std::vector<NetId> comb_fanout(comb_fanout_offset[n]);
  {
    std::vector<std::uint32_t> cursor(comb_fanout_offset.begin(),
                                      comb_fanout_offset.end() - 1);
    for (NetId id = 0; id < n; ++id) {
      if (!is_combinational_cell(out.types_[id])) continue;
      for (NetId f : out.fanins(id)) comb_fanout[cursor[f]++] = id;
    }
  }

  std::size_t head = 0;
  std::vector<NetId> order = std::move(ready);
  while (head < order.size()) {
    NetId id = order[head++];
    unsigned lvl = 0;
    if (is_combinational_cell(out.types_[id]) && !out.fanins(id).empty()) {
      for (NetId f : out.fanins(id)) lvl = std::max(lvl, out.levels_[f] + 1);
    }
    out.levels_[id] = lvl;
    out.max_level_ = std::max(out.max_level_, lvl);
    for (std::uint32_t k = comb_fanout_offset[id]; k < comb_fanout_offset[id + 1]; ++k) {
      NetId consumer = comb_fanout[k];
      if (--pending[consumer] == 0) order.push_back(consumer);
    }
  }
  if (order.size() != n)
    throw Error("build: combinational cycle detected (" +
                std::to_string(n - order.size()) + " nets unreachable)");
  out.topo_order_ = std::move(order);

  // Full fanout CSR (includes DFF data-input consumers).
  out.fanout_offset_.assign(n + 1, 0);
  for (NetId id = 0; id < n; ++id)
    for (NetId f : out.fanins(id)) out.fanout_offset_[f + 1]++;
  for (std::size_t i = 0; i < n; ++i) out.fanout_offset_[i + 1] += out.fanout_offset_[i];
  out.fanouts_.resize(out.fanout_offset_[n]);
  {
    std::vector<std::uint32_t> cursor(out.fanout_offset_.begin(),
                                      out.fanout_offset_.end() - 1);
    for (NetId id = 0; id < n; ++id)
      for (NetId f : out.fanins(id)) out.fanouts_[cursor[f]++] = id;
  }

  out.gate_count_ = 0;
  for (NetId id = 0; id < n; ++id)
    if (is_combinational_cell(out.types_[id])) out.gate_count_++;

  for (NetId id = 0; id < n; ++id)
    if (!out.names_[id].empty()) out.name_index_.emplace(out.names_[id], id);

  fanins_.clear();
  return out;
}

}  // namespace deterrent::netlist

#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace deterrent::netlist {

std::optional<NetId> Netlist::find(const std::string& net_name) const {
  auto it = name_index_.find(net_name);
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

NetId NetlistBuilder::declare(std::string name) {
  NetId id = static_cast<NetId>(types_.size());
  types_.push_back(kUndefined);
  fanins_.emplace_back();
  names_.push_back(std::move(name));
  return id;
}

NetId NetlistBuilder::add_defined(GateType type, std::vector<NetId> fanins,
                                  std::string name) {
  NetId id = declare(std::move(name));
  types_[id] = type;
  fanins_[id] = std::move(fanins);
  return id;
}

NetId NetlistBuilder::add_input(std::string name) {
  return add_defined(GateType::Input, {}, std::move(name));
}

NetId NetlistBuilder::add_const(bool value, std::string name) {
  return add_defined(value ? GateType::Const1 : GateType::Const0, {}, std::move(name));
}

NetId NetlistBuilder::add_gate(GateType type, std::vector<NetId> fanins,
                               std::string name) {
  if (!is_combinational_cell(type))
    throw Error("add_gate: " + std::string(to_string(type)) + " is not a combinational cell");
  return add_defined(type, std::move(fanins), std::move(name));
}

NetId NetlistBuilder::add_dff(NetId d, std::string name) {
  std::vector<NetId> fanins;
  if (d != kNoNet) fanins.push_back(d);
  return add_defined(GateType::Dff, std::move(fanins), std::move(name));
}

void NetlistBuilder::check_new_definition(NetId net) const {
  if (net >= types_.size()) throw Error("define: unknown net id");
  if (types_[net] != kUndefined)
    throw Error("define: net '" + names_[net] + "' already defined");
}

void NetlistBuilder::define_input(NetId net) {
  check_new_definition(net);
  types_[net] = GateType::Input;
}

void NetlistBuilder::define_gate(NetId net, GateType type, std::vector<NetId> fanins) {
  check_new_definition(net);
  if (!is_combinational_cell(type))
    throw Error("define_gate: " + std::string(to_string(type)) +
                " is not a combinational cell");
  types_[net] = type;
  fanins_[net] = std::move(fanins);
}

void NetlistBuilder::define_dff(NetId net, NetId d) {
  check_new_definition(net);
  types_[net] = GateType::Dff;
  if (d != kNoNet) fanins_[net] = {d};
}

void NetlistBuilder::set_dff_input(NetId q, NetId d) {
  if (q >= types_.size() || types_[q] != GateType::Dff)
    throw Error("set_dff_input: net is not a DFF");
  fanins_[q] = {d};
}

void NetlistBuilder::mark_output(NetId net) {
  if (net >= types_.size()) throw Error("mark_output: unknown net id");
  outputs_.push_back(net);
}

Netlist NetlistBuilder::build() {
  const std::size_t n = types_.size();

  // Full-definition and arity validation.
  for (NetId id = 0; id < n; ++id) {
    if (types_[id] == kUndefined)
      throw Error("build: net '" + names_[id] + "' (#" + std::to_string(id) +
                  ") was declared but never defined");
    const FaninBounds bounds = fanin_bounds(types_[id]);
    const std::size_t arity = fanins_[id].size();
    if (arity < bounds.min || (bounds.max != 0 && arity > bounds.max))
      throw Error("build: net '" + names_[id] + "' has invalid fanin count " +
                  std::to_string(arity) + " for " + std::string(to_string(types_[id])));
    for (NetId f : fanins_[id])
      if (f >= n) throw Error("build: net '" + names_[id] + "' has out-of-range fanin");
  }

  Netlist out;
  out.types_ = std::move(types_);
  out.names_ = std::move(names_);
  out.outputs_ = std::move(outputs_);

  // Fanin CSR.
  out.fanin_offset_.assign(n + 1, 0);
  for (NetId id = 0; id < n; ++id)
    out.fanin_offset_[id + 1] =
        out.fanin_offset_[id] + static_cast<std::uint32_t>(fanins_[id].size());
  out.fanins_.reserve(out.fanin_offset_[n]);
  for (NetId id = 0; id < n; ++id)
    out.fanins_.insert(out.fanins_.end(), fanins_[id].begin(), fanins_[id].end());

  // Kahn topological sort over combinational dependencies. DFF outputs are
  // sources (their D-input dependency crosses a clock edge, not this cycle).
  std::vector<std::uint32_t> pending(n, 0);
  for (NetId id = 0; id < n; ++id)
    if (is_combinational_cell(out.types_[id]))
      pending[id] = static_cast<std::uint32_t>(out.fanins(id).size());

  out.topo_order_.reserve(n);
  out.levels_.assign(n, 0);

  // Fanout counting restricted to combinational consumers for the sort; the
  // stored fanout CSR below includes DFF consumers as well.
  std::vector<NetId> ready;
  for (NetId id = 0; id < n; ++id)
    if (!is_combinational_cell(out.types_[id]) || pending[id] == 0) {
      ready.push_back(id);
      if (out.types_[id] == GateType::Input) out.inputs_.push_back(id);
      if (out.types_[id] == GateType::Dff) out.dffs_.push_back(id);
    }

  // Temporary combinational fanout adjacency for Kahn's algorithm.
  std::vector<std::uint32_t> comb_fanout_offset(n + 1, 0);
  for (NetId id = 0; id < n; ++id) {
    if (!is_combinational_cell(out.types_[id])) continue;
    for (NetId f : out.fanins(id)) comb_fanout_offset[f + 1]++;
  }
  for (std::size_t i = 0; i < n; ++i) comb_fanout_offset[i + 1] += comb_fanout_offset[i];
  std::vector<NetId> comb_fanout(comb_fanout_offset[n]);
  {
    std::vector<std::uint32_t> cursor(comb_fanout_offset.begin(),
                                      comb_fanout_offset.end() - 1);
    for (NetId id = 0; id < n; ++id) {
      if (!is_combinational_cell(out.types_[id])) continue;
      for (NetId f : out.fanins(id)) comb_fanout[cursor[f]++] = id;
    }
  }

  std::size_t head = 0;
  std::vector<NetId> order = std::move(ready);
  while (head < order.size()) {
    NetId id = order[head++];
    unsigned lvl = 0;
    if (is_combinational_cell(out.types_[id]) && !out.fanins(id).empty()) {
      for (NetId f : out.fanins(id)) lvl = std::max(lvl, out.levels_[f] + 1);
    }
    out.levels_[id] = lvl;
    out.max_level_ = std::max(out.max_level_, lvl);
    for (std::uint32_t k = comb_fanout_offset[id]; k < comb_fanout_offset[id + 1]; ++k) {
      NetId consumer = comb_fanout[k];
      if (--pending[consumer] == 0) order.push_back(consumer);
    }
  }
  if (order.size() != n)
    throw Error("build: combinational cycle detected (" +
                std::to_string(n - order.size()) + " nets unreachable)");
  out.topo_order_ = std::move(order);

  // Full fanout CSR (includes DFF data-input consumers).
  out.fanout_offset_.assign(n + 1, 0);
  for (NetId id = 0; id < n; ++id)
    for (NetId f : out.fanins(id)) out.fanout_offset_[f + 1]++;
  for (std::size_t i = 0; i < n; ++i) out.fanout_offset_[i + 1] += out.fanout_offset_[i];
  out.fanouts_.resize(out.fanout_offset_[n]);
  {
    std::vector<std::uint32_t> cursor(out.fanout_offset_.begin(),
                                      out.fanout_offset_.end() - 1);
    for (NetId id = 0; id < n; ++id)
      for (NetId f : out.fanins(id)) out.fanouts_[cursor[f]++] = id;
  }

  out.gate_count_ = 0;
  for (NetId id = 0; id < n; ++id)
    if (is_combinational_cell(out.types_[id])) out.gate_count_++;

  for (NetId id = 0; id < n; ++id)
    if (!out.names_[id].empty()) out.name_index_.emplace(out.names_[id], id);

  fanins_.clear();
  return out;
}

}  // namespace deterrent::netlist

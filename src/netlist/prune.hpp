#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace deterrent::netlist {

/// Result of dead-logic removal.
struct PruneResult {
  Netlist netlist;
  /// old NetId → new NetId, or kNoNet for removed nets.
  std::vector<NetId> net_map;
  std::size_t removed_nets = 0;
};

/// Removes logic that cannot reach any primary output or flip-flop data
/// input (transitive-fanin sweep). Primary inputs are always kept — test
/// patterns keep their arity — as are all DFFs. Generated random circuits
/// contain a little dead logic; pruning it before analysis avoids wasting
/// rare-net slots (and SAT/RL effort) on unobservable nets.
PruneResult prune_dead_logic(const Netlist& netlist);

}  // namespace deterrent::netlist

#include "netlist/stats.hpp"

#include <sstream>

#include "util/serialize.hpp"

namespace deterrent::netlist {

NetlistStats compute_stats(const Netlist& netlist) {
  NetlistStats stats;
  stats.net_count = netlist.net_count();
  stats.input_count = netlist.inputs().size();
  stats.output_count = netlist.outputs().size();
  stats.dff_count = netlist.dffs().size();
  stats.gate_count = netlist.gate_count();
  stats.max_level = netlist.max_level();

  std::size_t fanin_total = 0;
  std::size_t fanout_total = 0;
  for (NetId id = 0; id < netlist.net_count(); ++id) {
    stats.count_by_type[static_cast<std::size_t>(netlist.type(id))]++;
    if (is_combinational_cell(netlist.type(id))) fanin_total += netlist.fanins(id).size();
    fanout_total += netlist.fanouts(id).size();
  }
  stats.avg_fanin =
      stats.gate_count ? static_cast<double>(fanin_total) / stats.gate_count : 0.0;
  stats.avg_fanout =
      stats.net_count ? static_cast<double>(fanout_total) / stats.net_count : 0.0;
  return stats;
}

std::string NetlistStats::to_string() const {
  std::ostringstream oss;
  oss << "nets=" << net_count << " inputs=" << input_count << " outputs=" << output_count
      << " dffs=" << dff_count << " gates=" << gate_count << " depth=" << max_level;
  oss.setf(std::ios::fixed);
  oss.precision(2);
  oss << " avg_fanin=" << avg_fanin << " avg_fanout=" << avg_fanout;
  return oss.str();
}

std::uint64_t structural_fingerprint(const Netlist& netlist) {
  util::Fnv1a hash;
  hash.mix(netlist.net_count());
  for (NetId id = 0; id < netlist.net_count(); ++id) {
    hash.mix(static_cast<std::uint64_t>(netlist.type(id)));
    const auto fanins = netlist.fanins(id);
    hash.mix(fanins.size());
    for (const NetId f : fanins) hash.mix(f);
  }
  hash.mix(netlist.inputs().size());
  for (const NetId id : netlist.inputs()) hash.mix(id);
  hash.mix(netlist.outputs().size());
  for (const NetId id : netlist.outputs()) hash.mix(id);
  hash.mix(netlist.dffs().size());
  for (const NetId id : netlist.dffs()) hash.mix(id);
  return hash.value_nonzero();
}

}  // namespace deterrent::netlist

#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.hpp"

namespace deterrent::netlist {

/// Immutable gate-level netlist.
///
/// Built via NetlistBuilder, which validates structure (arity, combinational
/// acyclicity, full definition) and precomputes the combinational topological
/// order, levels, and fanout lists. Sequential feedback is legal only through
/// DFFs; the topological order treats DFF outputs as sources, so a levelized
/// sweep over `topo_order()` evaluates one clock cycle of combinational logic.
class Netlist {
 public:
  /// Creates an empty netlist; useful as a placeholder before assignment.
  Netlist() = default;

  /// Total number of nets (== number of drivers: inputs + constants + gates + DFFs).
  std::size_t net_count() const { return types_.size(); }

  GateType type(NetId net) const { return types_[net]; }

  std::span<const NetId> fanins(NetId net) const {
    return {fanins_.data() + fanin_offset_[net],
            fanin_offset_[net + 1] - fanin_offset_[net]};
  }

  std::span<const NetId> fanouts(NetId net) const {
    return {fanouts_.data() + fanout_offset_[net],
            fanout_offset_[net + 1] - fanout_offset_[net]};
  }

  std::span<const NetId> inputs() const { return inputs_; }
  std::span<const NetId> outputs() const { return outputs_; }
  /// Q-output nets of all flip-flops, in creation order.
  std::span<const NetId> dffs() const { return dffs_; }

  /// Nets in an order where every combinational cell appears after all of its
  /// fanins; sources (Input/Const/Dff) come first.
  std::span<const NetId> topo_order() const { return topo_order_; }

  /// Combinational depth: 0 for sources, 1 + max(fanin levels) otherwise.
  unsigned level(NetId net) const { return levels_[net]; }
  unsigned max_level() const { return max_level_; }

  /// Number of combinational cells (excludes Input and Dff nets; includes
  /// constants and buffers). This is the "# Gates" a paper table reports.
  std::size_t gate_count() const { return gate_count_; }

  bool is_sequential() const { return !dffs_.empty(); }

  /// Name of a net ("" when unnamed). Names are preserved by parsers and
  /// generators for debuggability and `.bench` round-trips.
  const std::string& name(NetId net) const { return names_[net]; }

  /// Looks a net up by name; nullopt when absent.
  std::optional<NetId> find(const std::string& name) const;

 private:
  friend class NetlistBuilder;

  std::vector<GateType> types_;
  std::vector<std::uint32_t> fanin_offset_;  // CSR into fanins_, size net_count()+1
  std::vector<NetId> fanins_;
  std::vector<std::uint32_t> fanout_offset_;  // CSR into fanouts_
  std::vector<NetId> fanouts_;
  std::vector<NetId> inputs_;
  std::vector<NetId> outputs_;
  std::vector<NetId> dffs_;
  std::vector<NetId> topo_order_;
  std::vector<unsigned> levels_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, NetId> name_index_;
  std::size_t gate_count_ = 0;
  unsigned max_level_ = 0;
};

/// One structural problem found by NetlistBuilder::validate(): the kind of
/// violation, the offending net, and a human-readable message. Lets callers
/// (the checked `.bench` parser, the linter front door) report every problem
/// in a malformed design instead of the first-error throw build() performs.
struct BuildIssue {
  enum class Kind : std::uint8_t {
    Undefined,       ///< declared but never given a driver
    Arity,           ///< fanin count outside the cell's bounds
    OutOfRangeFanin, ///< fanin references a net id that does not exist
    Cycle,           ///< net participates in (or feeds from) a combinational cycle
  };

  Kind kind = Kind::Undefined;
  NetId net = kNoNet;
  std::string message;

  bool operator==(const BuildIssue&) const = default;
};

/// Incremental netlist constructor.
///
/// Supports forward references in two ways: `declare()` creates a net whose
/// driver is defined later with `define_*()` (needed by the `.bench` parser,
/// which sees uses before definitions), and DFF data inputs may be set after
/// the DFF itself exists (needed for sequential feedback).
class NetlistBuilder {
 public:
  /// Declares a yet-undefined net. Must be defined before build().
  NetId declare(std::string name = "");

  /// Declares + defines in one step.
  NetId add_input(std::string name = "");
  NetId add_const(bool value, std::string name = "");
  NetId add_gate(GateType type, std::vector<NetId> fanins, std::string name = "");
  /// Creates a DFF output net; `d == kNoNet` leaves the data input open for a
  /// later set_dff_input() call.
  NetId add_dff(NetId d = kNoNet, std::string name = "");

  /// Defines a previously declared net.
  void define_input(NetId net);
  void define_gate(NetId net, GateType type, std::vector<NetId> fanins);
  void define_dff(NetId net, NetId d = kNoNet);

  void set_dff_input(NetId q, NetId d);
  void mark_output(NetId net);

  std::size_t net_count() const { return types_.size(); }

  /// Name a net was declared with ("" when unnamed or out of range).
  const std::string& name(NetId net) const;

  /// Non-destructive structural check: reports every undefined net, arity
  /// violation, out-of-range fanin, and combinational-cycle member (cycle
  /// detection runs only when the graph is otherwise well-formed, since a
  /// missing driver makes cycle membership meaningless). An empty result
  /// guarantees build() succeeds.
  std::vector<BuildIssue> validate() const;

  /// Validates and finalizes. Throws deterrent::Error on: undefined nets,
  /// dangling DFF data inputs, arity violations, out-of-range fanins, or a
  /// combinational cycle. The builder is left empty afterwards.
  Netlist build();

 private:
  NetId add_defined(GateType type, std::vector<NetId> fanins, std::string name);
  void check_new_definition(NetId net) const;

  static constexpr GateType kUndefined = static_cast<GateType>(0xff);

  std::vector<GateType> types_;
  std::vector<std::vector<NetId>> fanins_;
  std::vector<std::string> names_;
  std::vector<NetId> outputs_;
};

}  // namespace deterrent::netlist

#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "netlist/netlist.hpp"

namespace deterrent::netlist {

/// Structural summary of a netlist — used by generators to verify that
/// synthetic benchmarks land in the intended profile, and printed by the
/// example applications.
struct NetlistStats {
  std::size_t net_count = 0;
  std::size_t input_count = 0;
  std::size_t output_count = 0;
  std::size_t dff_count = 0;
  std::size_t gate_count = 0;  ///< combinational cells
  unsigned max_level = 0;
  double avg_fanin = 0.0;   ///< over combinational cells
  double avg_fanout = 0.0;  ///< over all nets
  std::array<std::size_t, 12> count_by_type{};  ///< indexed by GateType

  std::string to_string() const;
};

NetlistStats compute_stats(const Netlist& netlist);

/// 64-bit structural fingerprint: FNV-1a over gate types, fanin structure,
/// and the input/output/DFF rosters. Two netlists with equal fingerprints are
/// (up to hash collision) the same circuit graph, so pipeline artifacts stamp
/// it into their headers and refuse to load against a different design. Net
/// names do not participate — renamings keep artifacts valid.
std::uint64_t structural_fingerprint(const Netlist& netlist);

}  // namespace deterrent::netlist

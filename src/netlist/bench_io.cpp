#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/assert.hpp"

namespace deterrent::netlist {

namespace {

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

/// Internal unwind token for one malformed line: carries the structured
/// diagnostic so the strict front end can throw it as deterrent::Error and
/// the checked front end can record it and keep parsing.
struct LineFail {
  ParseDiagnostic diagnostic;
};

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& message,
                             std::string code = "parse.syntax",
                             std::string net = "") {
  throw LineFail{{line_no, std::move(code), std::move(net), message}};
}

std::optional<GateType> cell_from_name(const std::string& word) {
  const std::string w = upper(word);
  if (w == "BUF" || w == "BUFF") return GateType::Buf;
  if (w == "NOT" || w == "INV") return GateType::Not;
  if (w == "AND") return GateType::And;
  if (w == "NAND") return GateType::Nand;
  if (w == "OR") return GateType::Or;
  if (w == "NOR") return GateType::Nor;
  if (w == "XOR") return GateType::Xor;
  if (w == "XNOR") return GateType::Xnor;
  if (w == "DFF") return GateType::Dff;
  if (w == "CONST0" || w == "GND") return GateType::Const0;
  if (w == "CONST1" || w == "VDD") return GateType::Const1;
  return std::nullopt;
}

class Parser {
 public:
  /// Strict mode: throws deterrent::Error with a line number on the first
  /// problem (the historical API contract).
  Netlist parse(std::istream& in) {
    std::string line;
    std::size_t line_no = 0;
    while (next_line(in, line, line_no)) {
      try {
        parse_line(line, line_no);
      } catch (const LineFail& fail) {
        throw Error(strict_message(fail.diagnostic));
      }
    }
    for (NetId out : pending_outputs_) builder_.mark_output(out);
    return builder_.build();
  }

  /// Checked mode: never throws on malformed content; every problem in the
  /// file becomes a diagnostic (a bad line is skipped, parsing continues) and
  /// the netlist is built only when the source is fully clean.
  BenchParseResult parse_checked(std::istream& in) {
    BenchParseResult result;
    std::string line;
    std::size_t line_no = 0;
    while (next_line(in, line, line_no)) {
      if (builder_.net_count() >= kMaxCheckedNets) {
        result.diagnostics.push_back(
            {line_no, "parse.limit", "",
             "net count exceeds the checked-parse cap of " +
                 std::to_string(kMaxCheckedNets) + "; refusing to build"});
        return result;
      }
      try {
        parse_line(line, line_no);
      } catch (const LineFail& fail) {
        result.diagnostics.push_back(fail.diagnostic);
      }
    }
    for (NetId out : pending_outputs_) builder_.mark_output(out);
    for (const auto& issue : builder_.validate())
      result.diagnostics.push_back(from_issue(issue));
    if (result.diagnostics.empty()) result.netlist = builder_.build();
    return result;
  }

 private:
  static bool next_line(std::istream& in, std::string& line, std::size_t& line_no) {
    while (std::getline(in, line)) {
      ++line_no;
      auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      line = strip(line);
      if (!line.empty()) return true;
    }
    return false;
  }

  static std::string strict_message(const ParseDiagnostic& diagnostic) {
    return "bench parse error at line " + std::to_string(diagnostic.line) + ": " +
           diagnostic.message;
  }

  ParseDiagnostic from_issue(const BuildIssue& issue) const {
    ParseDiagnostic d;
    d.net = builder_.name(issue.net);
    d.message = issue.message;
    switch (issue.kind) {
      case BuildIssue::Kind::Undefined:
        d.code = "drc.undriven";
        break;
      case BuildIssue::Kind::Arity:
        d.code = "drc.arity";
        break;
      case BuildIssue::Kind::Cycle:
        d.code = "drc.cycle";
        break;
      case BuildIssue::Kind::OutOfRangeFanin:
        d.code = "parse.syntax";
        break;
    }
    if (auto it = net_lines_.find(issue.net); it != net_lines_.end()) d.line = it->second;
    return d;
  }

  void parse_line(const std::string& line, std::size_t line_no) {
    auto eq = line.find('=');
    if (eq == std::string::npos) {
      parse_io_decl(line, line_no);
      return;
    }
    const std::string lhs = strip(line.substr(0, eq));
    const std::string rhs = strip(line.substr(eq + 1));
    if (lhs.empty()) parse_fail(line_no, "missing net name before '='");

    auto open = rhs.find('(');
    auto close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open)
      parse_fail(line_no, "expected CELL(arg, ...) on right-hand side");
    if (!strip(rhs.substr(close + 1)).empty())
      parse_fail(line_no, "unexpected text after ')'");

    const std::string cell_name = strip(rhs.substr(0, open));
    auto cell = cell_from_name(cell_name);
    if (!cell)
      parse_fail(line_no, "unknown cell '" + cell_name + "'", "parse.cell", lhs);

    std::vector<NetId> fanins;
    const std::string args = rhs.substr(open + 1, close - open - 1);
    if (!strip(args).empty()) {
      std::size_t start = 0;
      while (true) {
        const auto comma = args.find(',', start);
        const std::string arg =
            strip(comma == std::string::npos ? args.substr(start)
                                             : args.substr(start, comma - start));
        // An empty token means a doubled, leading, or trailing comma — the
        // old stringstream splitter silently swallowed the trailing case.
        if (arg.empty())
          parse_fail(line_no, "empty argument in cell " + cell_name, "parse.syntax",
                     lhs);
        fanins.push_back(net_by_name(arg, line_no));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }

    const NetId net = net_by_name(lhs, line_no);
    check_single_driver(net, lhs, line_no);
    if (*cell == GateType::Dff) {
      if (fanins.size() != 1)
        parse_fail(line_no, "DFF takes exactly one argument", "drc.arity", lhs);
      builder_.define_dff(net, fanins[0]);
    } else if (*cell == GateType::Const0 || *cell == GateType::Const1) {
      if (!fanins.empty())
        parse_fail(line_no, "constants take no arguments", "drc.arity", lhs);
      builder_.define_gate(net, *cell, {});
    } else {
      builder_.define_gate(net, *cell, std::move(fanins));
    }
    driver_lines_.emplace(net, line_no);
    net_lines_[net] = line_no;
  }

  void parse_io_decl(const std::string& line, std::size_t line_no) {
    auto open = line.find('(');
    auto close = line.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open)
      parse_fail(line_no, "expected INPUT(name) or OUTPUT(name)");
    if (!strip(line.substr(close + 1)).empty())
      parse_fail(line_no, "unexpected text after ')'");
    const std::string kind = upper(strip(line.substr(0, open)));
    const std::string net_name = strip(line.substr(open + 1, close - open - 1));
    if (net_name.empty()) parse_fail(line_no, "empty net name in " + kind);
    if (kind == "INPUT") {
      const NetId net = net_by_name(net_name, line_no);
      check_single_driver(net, net_name, line_no);
      builder_.define_input(net);
      driver_lines_.emplace(net, line_no);
      net_lines_[net] = line_no;
    } else if (kind == "OUTPUT") {
      pending_outputs_.push_back(net_by_name(net_name, line_no));
    } else {
      parse_fail(line_no, "unknown declaration '" + kind + "'");
    }
  }

  /// A second INPUT/gate definition for the same net is a multi-driven net;
  /// report it with the line of the first driver for provenance.
  void check_single_driver(NetId net, const std::string& net_name,
                           std::size_t line_no) {
    auto it = driver_lines_.find(net);
    if (it == driver_lines_.end()) return;
    parse_fail(line_no,
               "net '" + net_name + "' driven more than once (first driven at line " +
                   std::to_string(it->second) + ")",
               "drc.multi-driven", net_name);
  }

  NetId net_by_name(const std::string& net_name, std::size_t line_no) {
    auto it = by_name_.find(net_name);
    if (it != by_name_.end()) return it->second;
    NetId id = builder_.declare(net_name);
    by_name_.emplace(net_name, id);
    net_lines_.emplace(id, line_no);  // first reference: undriven-net provenance
    return id;
  }

  NetlistBuilder builder_;
  std::unordered_map<std::string, NetId> by_name_;
  std::unordered_map<NetId, std::size_t> driver_lines_;  // net -> defining line
  std::unordered_map<NetId, std::size_t> net_lines_;     // net -> best-known line
  std::vector<NetId> pending_outputs_;
};

std::string printable_name(const Netlist& netlist, NetId net) {
  const std::string& given = netlist.name(net);
  if (!given.empty()) return given;
  return "n" + std::to_string(net);
}

std::string_view bench_cell_name(GateType type) {
  switch (type) {
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Dff: return "DFF";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    default: DETERRENT_ASSERT(false, "no bench cell for this gate type");
  }
  return "";
}

}  // namespace

Netlist read_bench(std::istream& in) { return Parser{}.parse(in); }

Netlist read_bench_string(const std::string& text) {
  std::istringstream iss(text);
  return read_bench(iss);
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open bench file: " + path);
  return read_bench(in);
}

BenchParseResult read_bench_checked(std::istream& in) {
  return Parser{}.parse_checked(in);
}

BenchParseResult read_bench_string_checked(const std::string& text) {
  std::istringstream iss(text);
  return read_bench_checked(iss);
}

BenchParseResult read_bench_file_checked(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open bench file: " + path);
  return read_bench_checked(in);
}

void write_bench(const Netlist& netlist, std::ostream& out) {
  out << "# written by deterrent\n";
  for (NetId in_net : netlist.inputs())
    out << "INPUT(" << printable_name(netlist, in_net) << ")\n";
  for (NetId out_net : netlist.outputs())
    out << "OUTPUT(" << printable_name(netlist, out_net) << ")\n";
  for (NetId id = 0; id < netlist.net_count(); ++id) {
    const GateType type = netlist.type(id);
    if (type == GateType::Input) continue;
    out << printable_name(netlist, id) << " = " << bench_cell_name(type) << "(";
    bool first = true;
    for (NetId f : netlist.fanins(id)) {
      if (!first) out << ", ";
      out << printable_name(netlist, f);
      first = false;
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& netlist) {
  std::ostringstream oss;
  write_bench(netlist, oss);
  return oss.str();
}

void write_bench_file(const Netlist& netlist, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open file for writing: " + path);
  write_bench(netlist, out);
}

}  // namespace deterrent::netlist

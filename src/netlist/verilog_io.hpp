#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace deterrent::netlist {

/// Emits a self-contained structural Verilog module using primitive gates
/// (and/or/nand/nor/xor/xnor/not/buf) and behavioural DFFs. Useful for
/// inspecting generated benchmarks in standard EDA tooling; the `.bench`
/// format remains the canonical interchange format of this library.
void write_verilog(const Netlist& netlist, const std::string& module_name,
                   std::ostream& out);
std::string write_verilog_string(const Netlist& netlist, const std::string& module_name);
void write_verilog_file(const Netlist& netlist, const std::string& module_name,
                        const std::string& path);

}  // namespace deterrent::netlist

#include "netlist/gate.hpp"

#include "util/assert.hpp"

namespace deterrent::netlist {

std::string_view to_string(GateType type) {
  switch (type) {
    case GateType::Input: return "INPUT";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Dff: return "DFF";
  }
  return "?";
}

FaninBounds fanin_bounds(GateType type) {
  switch (type) {
    case GateType::Input:
    case GateType::Const0:
    case GateType::Const1: return {0, 0};
    case GateType::Buf:
    case GateType::Not:
    case GateType::Dff: return {1, 1};
    case GateType::And:
    case GateType::Nand:
    case GateType::Or:
    case GateType::Nor:
    case GateType::Xor:
    case GateType::Xnor: return {1, 0};  // n-ary, unbounded
  }
  return {0, 0};
}

std::uint64_t eval_word(GateType type, std::span<const std::uint64_t> inputs) {
  switch (type) {
    case GateType::Const0: return 0ULL;
    case GateType::Const1: return ~0ULL;
    case GateType::Buf: return inputs[0];
    case GateType::Not: return ~inputs[0];
    case GateType::And:
    case GateType::Nand: {
      std::uint64_t acc = ~0ULL;
      for (auto w : inputs) acc &= w;
      return type == GateType::And ? acc : ~acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      std::uint64_t acc = 0ULL;
      for (auto w : inputs) acc |= w;
      return type == GateType::Or ? acc : ~acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      std::uint64_t acc = 0ULL;
      for (auto w : inputs) acc ^= w;
      return type == GateType::Xor ? acc : ~acc;
    }
    case GateType::Input:
    case GateType::Dff:
      DETERRENT_ASSERT(false, "Input/Dff nets are sources; they are not evaluated");
  }
  return 0;
}

bool eval_bool(GateType type, std::span<const bool> inputs) {
  switch (type) {
    case GateType::Const0: return false;
    case GateType::Const1: return true;
    case GateType::Buf: return inputs[0];
    case GateType::Not: return !inputs[0];
    case GateType::And:
    case GateType::Nand: {
      bool acc = true;
      for (bool b : inputs) acc = acc && b;
      return type == GateType::And ? acc : !acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      bool acc = false;
      for (bool b : inputs) acc = acc || b;
      return type == GateType::Or ? acc : !acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      bool acc = false;
      for (bool b : inputs) acc = acc != b;
      return type == GateType::Xor ? acc : !acc;
    }
    case GateType::Input:
    case GateType::Dff:
      DETERRENT_ASSERT(false, "Input/Dff nets are sources; they are not evaluated");
  }
  return false;
}

}  // namespace deterrent::netlist

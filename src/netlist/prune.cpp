#include "netlist/prune.hpp"

namespace deterrent::netlist {

PruneResult prune_dead_logic(const Netlist& nl) {
  // Mark the transitive fanin of all observation points: POs and DFF data
  // inputs (state that persists is observable through a later cycle under
  // the full-scan assumption).
  std::vector<bool> live(nl.net_count(), false);
  std::vector<NetId> worklist;
  auto mark = [&](NetId id) {
    if (!live[id]) {
      live[id] = true;
      worklist.push_back(id);
    }
  };
  for (const NetId out : nl.outputs()) mark(out);
  for (const NetId q : nl.dffs()) mark(q);
  while (!worklist.empty()) {
    const NetId id = worklist.back();
    worklist.pop_back();
    for (const NetId f : nl.fanins(id)) mark(f);
  }
  // Keep every primary input regardless (pattern arity stability).
  for (const NetId in : nl.inputs()) live[in] = true;

  PruneResult result;
  result.net_map.assign(nl.net_count(), kNoNet);

  NetlistBuilder builder;
  for (NetId id = 0; id < nl.net_count(); ++id) {
    if (!live[id]) {
      ++result.removed_nets;
      continue;
    }
    result.net_map[id] = builder.declare(nl.name(id));
  }
  for (NetId id = 0; id < nl.net_count(); ++id) {
    if (!live[id]) continue;
    const NetId mapped = result.net_map[id];
    switch (nl.type(id)) {
      case GateType::Input:
        builder.define_input(mapped);
        break;
      case GateType::Dff:
        builder.define_dff(mapped, result.net_map[nl.fanins(id)[0]]);
        break;
      default: {
        std::vector<NetId> fanins;
        fanins.reserve(nl.fanins(id).size());
        for (const NetId f : nl.fanins(id)) fanins.push_back(result.net_map[f]);
        builder.define_gate(mapped, nl.type(id), std::move(fanins));
      }
    }
  }
  for (const NetId out : nl.outputs()) builder.mark_output(result.net_map[out]);
  result.netlist = builder.build();
  return result;
}

}  // namespace deterrent::netlist

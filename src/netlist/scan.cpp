#include "netlist/scan.hpp"

namespace deterrent::netlist {

ScanView make_full_scan(const Netlist& netlist) {
  NetlistBuilder builder;
  ScanView view;

  // Recreate every net under the same id. Declaration order preserves ids.
  for (NetId id = 0; id < netlist.net_count(); ++id) builder.declare(netlist.name(id));

  for (NetId id = 0; id < netlist.net_count(); ++id) {
    const GateType type = netlist.type(id);
    if (type == GateType::Input) {
      builder.define_input(id);
    } else if (type == GateType::Dff) {
      builder.define_input(id);  // Q becomes a directly controllable pseudo-PI
      view.pseudo_inputs.push_back(id);
      view.pseudo_outputs.push_back(netlist.fanins(id)[0]);  // D becomes observable
    } else {
      auto fanins = netlist.fanins(id);
      builder.define_gate(id, type, {fanins.begin(), fanins.end()});
    }
  }

  for (NetId out : netlist.outputs()) builder.mark_output(out);
  for (NetId d : view.pseudo_outputs) builder.mark_output(d);

  view.comb = builder.build();
  return view;
}

}  // namespace deterrent::netlist

#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace deterrent::netlist {

/// Identifier of a net. Every net has exactly one driver (its defining gate,
/// primary input, constant, or flip-flop output), so nets and drivers share
/// one id space.
using NetId = std::uint32_t;

/// Sentinel for "no net" (e.g. an undefined DFF data input during building).
inline constexpr NetId kNoNet = 0xffffffffu;

/// Primitive cell library. Matches the ISCAS `.bench` vocabulary plus
/// constants; AND/NAND/OR/NOR/XOR/XNOR are n-ary (fanin >= 1).
enum class GateType : std::uint8_t {
  Input,   ///< primary input (or pseudo-input in a full-scan view)
  Const0,  ///< constant logic 0
  Const1,  ///< constant logic 1
  Buf,
  Not,
  And,
  Nand,
  Or,
  Nor,
  Xor,
  Xnor,
  Dff,  ///< D flip-flop: one fanin (D); the net is the Q output
};

std::string_view to_string(GateType type);

/// True for nets with no combinational fanin dependency (Input, Const*, Dff).
/// These are the sources of the combinational topological order.
constexpr bool is_combinational_source(GateType type) {
  return type == GateType::Input || type == GateType::Const0 ||
         type == GateType::Const1 || type == GateType::Dff;
}

/// True for evaluable combinational cells (everything except Input/Dff).
constexpr bool is_combinational_cell(GateType type) {
  return type != GateType::Input && type != GateType::Dff;
}

/// Fanin arity bounds for validation. max == 0 means "unbounded".
struct FaninBounds {
  unsigned min;
  unsigned max;
};
FaninBounds fanin_bounds(GateType type);

/// Evaluates a combinational cell on 64 patterns at once (one bit per
/// pattern). Inputs are the fanin nets' words in fanin order.
std::uint64_t eval_word(GateType type, std::span<const std::uint64_t> inputs);

/// Scalar reference evaluation (used by tests as the naive oracle).
bool eval_bool(GateType type, std::span<const bool> inputs);

}  // namespace deterrent::netlist

#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace deterrent::netlist {

/// Reader/writer for the ISCAS `.bench` netlist format, e.g.:
///
///   # c17
///   INPUT(G1)
///   OUTPUT(G22)
///   G10 = NAND(G1, G3)
///   G22 = DFF(G10)
///
/// Definitions may appear in any order (uses before definitions are legal).
/// Recognized cells: BUF/BUFF, NOT/INV, AND, NAND, OR, NOR, XOR, XNOR, DFF,
/// CONST0/GND, CONST1/VDD. Parsing problems throw deterrent::Error with a
/// line number.
Netlist read_bench(std::istream& in);
Netlist read_bench_string(const std::string& text);
Netlist read_bench_file(const std::string& path);

/// Serializes to `.bench`. Unnamed nets get synthetic `n<ID>` names.
/// `read_bench_string(write_bench_string(nl))` reproduces `nl` up to net
/// ordering (tested as a round-trip property).
void write_bench(const Netlist& netlist, std::ostream& out);
std::string write_bench_string(const Netlist& netlist);
void write_bench_file(const Netlist& netlist, const std::string& path);

}  // namespace deterrent::netlist

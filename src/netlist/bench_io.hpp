#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace deterrent::netlist {

/// Reader/writer for the ISCAS `.bench` netlist format, e.g.:
///
///   # c17
///   INPUT(G1)
///   OUTPUT(G22)
///   G10 = NAND(G1, G3)
///   G22 = DFF(G10)
///
/// Definitions may appear in any order (uses before definitions are legal).
/// Recognized cells: BUF/BUFF, NOT/INV, AND, NAND, OR, NOR, XOR, XNOR, DFF,
/// CONST0/GND, CONST1/VDD. Parsing problems throw deterrent::Error with a
/// line number.
Netlist read_bench(std::istream& in);
Netlist read_bench_string(const std::string& text);
Netlist read_bench_file(const std::string& path);

/// Serializes to `.bench`. Unnamed nets get synthetic `n<ID>` names.
/// `read_bench_string(write_bench_string(nl))` reproduces `nl` up to net
/// ordering (tested as a round-trip property).
void write_bench(const Netlist& netlist, std::ostream& out);
std::string write_bench_string(const Netlist& netlist);
void write_bench_file(const Netlist& netlist, const std::string& path);

/// One problem found while parsing or structurally validating an untrusted
/// `.bench` source. `code` is a machine-readable rule id shared with the
/// analysis::Linter catalog: parse.syntax, parse.cell, parse.limit,
/// drc.arity, drc.multi-driven, drc.undriven, drc.cycle.
struct ParseDiagnostic {
  std::size_t line = 0;  ///< 1-based source line; 0 = file-level finding
  std::string code;      ///< rule id (see above)
  std::string net;       ///< offending net name when known
  std::string message;   ///< human-readable explanation

  bool operator==(const ParseDiagnostic&) const = default;
};

/// Result of a diagnostic-collecting parse: the built netlist when the
/// source is structurally sound, plus every problem found (the parser keeps
/// going after recoverable errors, so one pass reports all of them).
struct BenchParseResult {
  std::optional<Netlist> netlist;  ///< engaged iff diagnostics holds no error
  std::vector<ParseDiagnostic> diagnostics;

  bool ok() const { return netlist.has_value(); }
};

/// Parses untrusted `.bench` input without throwing on malformed content:
/// syntax errors, unknown cells, arity violations, multiply-driven and
/// undriven nets, and combinational cycles are all collected as structured
/// diagnostics instead of first-error exceptions. This is the lint front
/// door for files a public scan service cannot assume well-formed; I/O
/// failures (unreadable file) still throw deterrent::Error.
BenchParseResult read_bench_checked(std::istream& in);
BenchParseResult read_bench_string_checked(const std::string& text);
BenchParseResult read_bench_file_checked(const std::string& path);

/// Sanity cap on the number of nets a checked parse will build (a corrupt or
/// adversarial file must not OOM the service). Exceeding it yields a
/// parse.limit diagnostic.
inline constexpr std::size_t kMaxCheckedNets = 1u << 24;

}  // namespace deterrent::netlist

#include "netlist/verilog_io.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace deterrent::netlist {

namespace {

std::string vname(const Netlist& netlist, NetId net) {
  const std::string& given = netlist.name(net);
  if (given.empty()) return "n" + std::to_string(net);
  // Escape anything that is not a simple identifier.
  bool simple = !given.empty() && (std::isalpha(static_cast<unsigned char>(given[0])) ||
                                   given[0] == '_');
  for (char c : given)
    simple = simple && (std::isalnum(static_cast<unsigned char>(c)) || c == '_');
  return simple ? given : "\\" + given + " ";
}

const char* prim_name(GateType type) {
  switch (type) {
    case GateType::Buf: return "buf";
    case GateType::Not: return "not";
    case GateType::And: return "and";
    case GateType::Nand: return "nand";
    case GateType::Or: return "or";
    case GateType::Nor: return "nor";
    case GateType::Xor: return "xor";
    case GateType::Xnor: return "xnor";
    default: DETERRENT_ASSERT(false, "not a verilog primitive");
  }
  return "";
}

}  // namespace

void write_verilog(const Netlist& netlist, const std::string& module_name,
                   std::ostream& out) {
  out << "// written by deterrent\n";
  out << "module " << module_name << " (";
  bool first = true;
  auto emit_port = [&](const std::string& p) {
    if (!first) out << ", ";
    out << p;
    first = false;
  };
  if (netlist.is_sequential()) emit_port("clk");
  for (NetId in : netlist.inputs()) emit_port(vname(netlist, in));
  for (NetId po : netlist.outputs()) emit_port(vname(netlist, po) + "_po");
  out << ");\n";

  if (netlist.is_sequential()) out << "  input clk;\n";
  for (NetId in : netlist.inputs()) out << "  input " << vname(netlist, in) << ";\n";
  for (NetId po : netlist.outputs())
    out << "  output " << vname(netlist, po) << "_po;\n";

  for (NetId id = 0; id < netlist.net_count(); ++id) {
    if (netlist.type(id) == GateType::Input) continue;
    if (netlist.type(id) == GateType::Dff)
      out << "  reg " << vname(netlist, id) << ";\n";
    else
      out << "  wire " << vname(netlist, id) << ";\n";
  }

  for (NetId id = 0; id < netlist.net_count(); ++id) {
    const GateType type = netlist.type(id);
    switch (type) {
      case GateType::Input: break;
      case GateType::Const0:
        out << "  assign " << vname(netlist, id) << " = 1'b0;\n";
        break;
      case GateType::Const1:
        out << "  assign " << vname(netlist, id) << " = 1'b1;\n";
        break;
      case GateType::Dff:
        out << "  always @(posedge clk) " << vname(netlist, id) << " <= "
            << vname(netlist, netlist.fanins(id)[0]) << ";\n";
        break;
      default: {
        out << "  " << prim_name(type) << " g" << id << " (" << vname(netlist, id);
        for (NetId f : netlist.fanins(id)) out << ", " << vname(netlist, f);
        out << ");\n";
      }
    }
  }

  for (NetId po : netlist.outputs())
    out << "  assign " << vname(netlist, po) << "_po = " << vname(netlist, po) << ";\n";
  out << "endmodule\n";
}

std::string write_verilog_string(const Netlist& netlist, const std::string& module_name) {
  std::ostringstream oss;
  write_verilog(netlist, module_name, oss);
  return oss.str();
}

void write_verilog_file(const Netlist& netlist, const std::string& module_name,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open file for writing: " + path);
  write_verilog(netlist, module_name, out);
}

}  // namespace deterrent::netlist

#include "trojan/coverage.hpp"

#include <algorithm>
#include <bit>

#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace deterrent::trojan {

double CoverageResult::coverage_percent_at(std::size_t n_patterns) const {
  if (total == 0) return 0.0;
  std::size_t hit = 0;
  for (const std::size_t first : first_activation)
    if (first != kNever && first < n_patterns) ++hit;
  return 100.0 * static_cast<double>(hit) / static_cast<double>(total);
}

CoverageResult evaluate_coverage(const netlist::Netlist& golden,
                                 std::span<const Trojan> trojans,
                                 const sim::PatternSet& patterns) {
  CoverageResult result;
  result.total = trojans.size();
  result.first_activation.assign(trojans.size(), CoverageResult::kNever);
  if (trojans.empty() || patterns.empty()) return result;

  // Multi-word batches with an early exit once every trojan has fired — the
  // sweep stops as soon as the last first_activation is known.
  const sim::Engine engine(golden);
  std::size_t remaining = trojans.size();
  engine.sweep_blocks(
      patterns, 0, patterns.block_count(),
      [&](std::size_t first, std::size_t n, const sim::EvalBuffer& buf) {
        for (std::size_t t = 0; t < trojans.size(); ++t) {
          if (result.first_activation[t] != CoverageResult::kNever) continue;
          for (std::size_t w = 0; w < n; ++w) {
            std::uint64_t fired = patterns.valid_mask(first + w);
            for (const auto& rn : trojans[t].trigger) {
              const std::uint64_t value = buf.word(rn.net, w);
              fired &= rn.rare_value ? value : ~value;
              if (fired == 0) break;
            }
            if (fired != 0) {
              const int lane = std::countr_zero(fired);
              result.first_activation[t] =
                  (first + w) * 64 + static_cast<std::size_t>(lane);
              --remaining;
              break;
            }
          }
        }
        return remaining != 0;
      });

  for (const std::size_t first : result.first_activation)
    if (first != CoverageResult::kNever) ++result.covered;
  return result;
}

IncrementalTriggerChecker::IncrementalTriggerChecker(const netlist::Netlist& golden,
                                                     std::span<const Trojan> trojans)
    : engine_(golden),
      trojans_(trojans.begin(), trojans.end()),
      fired_(trojans.size(), false) {}

const std::vector<bool>& IncrementalTriggerChecker::check(const sim::Pattern& pattern) {
  const auto inputs = engine_.target().inputs();
  DETERRENT_ASSERT(pattern.size() == inputs.size(),
                   "IncrementalTriggerChecker::check: pattern arity mismatch");
  if (!primed_) {
    // First pattern: full sweep, broadcast across all 64 lanes so lane 0 is
    // always the checked pattern.
    dirty_words_.resize(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i)
      dirty_words_[i] = pattern.test(i) ? ~0ULL : 0ULL;
    engine_.evaluate(buf_, dirty_words_, 1);
    last_ops_ = engine_.target().gate_count();
    primed_ = true;
  } else {
    dirty_inputs_.clear();
    dirty_words_.clear();
    for (std::size_t i = 0; i < inputs.size(); ++i)
      if (pattern.test(i) != last_.test(i)) {
        dirty_inputs_.push_back(static_cast<std::uint32_t>(i));
        dirty_words_.push_back(pattern.test(i) ? ~0ULL : 0ULL);
      }
    last_ops_ = engine_.resimulate(buf_, dirty_inputs_, dirty_words_, 1);
  }
  last_ = pattern;

  for (std::size_t t = 0; t < trojans_.size(); ++t) {
    bool fired = true;
    for (const auto& rn : trojans_[t].trigger)
      fired = fired && ((buf_.word(rn.net, 0) & 1ULL) != 0) == rn.rare_value;
    fired_[t] = fired;
  }
  return fired_;
}

}  // namespace deterrent::trojan

#include "trojan/coverage.hpp"

#include <bit>

#include "sim/simulator.hpp"

namespace deterrent::trojan {

double CoverageResult::coverage_percent_at(std::size_t n_patterns) const {
  if (total == 0) return 0.0;
  std::size_t hit = 0;
  for (const std::size_t first : first_activation)
    if (first != kNever && first < n_patterns) ++hit;
  return 100.0 * static_cast<double>(hit) / static_cast<double>(total);
}

CoverageResult evaluate_coverage(const netlist::Netlist& golden,
                                 std::span<const Trojan> trojans,
                                 const sim::PatternSet& patterns) {
  CoverageResult result;
  result.total = trojans.size();
  result.first_activation.assign(trojans.size(), CoverageResult::kNever);
  if (trojans.empty() || patterns.empty()) return result;

  sim::Simulator simulator(golden);
  std::size_t remaining = trojans.size();
  simulator.simulate(patterns, [&](std::size_t block, std::uint64_t valid_mask,
                                   std::span<const std::uint64_t> values) {
    if (remaining == 0) return;
    for (std::size_t t = 0; t < trojans.size(); ++t) {
      if (result.first_activation[t] != CoverageResult::kNever) continue;
      std::uint64_t fired = valid_mask;
      for (const auto& rn : trojans[t].trigger) {
        const std::uint64_t at_rare =
            rn.rare_value ? values[rn.net] : ~values[rn.net];
        fired &= at_rare;
        if (fired == 0) break;
      }
      if (fired != 0) {
        const int lane = std::countr_zero(fired);
        result.first_activation[t] = block * 64 + static_cast<std::size_t>(lane);
        --remaining;
      }
    }
  });

  for (const std::size_t first : result.first_activation)
    if (first != CoverageResult::kNever) ++result.covered;
  return result;
}

}  // namespace deterrent::trojan

#pragma once

#include "sim/pattern.hpp"
#include "trojan/trojan.hpp"

namespace deterrent::trojan {

/// Switching-activity proxy for dynamic power: the number of nets that
/// toggle between consecutive test patterns. §1.2 argues that HTs are hard
/// to catch by side-channel analysis *unless* the trigger fires: the dormant
/// trigger logic contributes a negligible toggle delta, while activation
/// propagates the payload and amplifies the footprint. This analyzer
/// quantifies exactly that on the golden vs infected pair.
struct SideChannelReport {
  double golden_avg_toggles = 0.0;    ///< per pattern transition, golden design
  double infected_avg_toggles = 0.0;  ///< per pattern transition, infected design
  /// Mean |infected − golden| toggle deviation over transitions where either
  /// endpoint pattern activates the trigger (the payload flip propagates on
  /// both the entering and the leaving edge)…
  double triggered_delta = 0.0;
  std::size_t triggered_transitions = 0;
  /// …and over transitions where the Trojan stays fully dormant — the
  /// stealth case, where only the tiny trigger tree contributes.
  double dormant_delta = 0.0;
  std::size_t dormant_transitions = 0;

  /// Footprint amplification: triggered delta relative to dormant delta.
  double amplification() const {
    return dormant_delta <= 0.0 ? triggered_delta : triggered_delta / dormant_delta;
  }
};

/// Per-pattern toggle counts for one design (transitions between consecutive
/// patterns in the set; entry 0 counts toggles from the all-zero state).
std::vector<std::size_t> switching_activity(const netlist::Netlist& netlist,
                                            const sim::PatternSet& patterns);

/// Compares golden vs apply_trojan(golden, trojan) under the pattern set and
/// splits the toggle delta by trigger activation.
SideChannelReport side_channel_report(const netlist::Netlist& golden,
                                      const Trojan& trojan,
                                      const sim::PatternSet& patterns);

}  // namespace deterrent::trojan

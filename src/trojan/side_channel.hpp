#pragma once

#include "sim/pattern.hpp"
#include "trojan/trojan.hpp"

namespace deterrent::trojan {

/// Switching-activity proxy for dynamic power: the number of nets that
/// toggle between consecutive test patterns. §1.2 argues that HTs are hard
/// to catch by side-channel analysis *unless* the trigger fires: the dormant
/// trigger logic contributes a negligible toggle delta, while activation
/// propagates the payload and amplifies the footprint. This analyzer
/// quantifies exactly that on the golden vs infected pair.
struct SideChannelReport {
  double golden_avg_toggles = 0.0;    ///< per pattern transition, golden design
  double infected_avg_toggles = 0.0;  ///< per pattern transition, infected design
  /// Mean |infected − golden| toggle deviation over transitions where either
  /// endpoint pattern activates the trigger (the payload flip propagates on
  /// both the entering and the leaving edge)…
  double triggered_delta = 0.0;
  std::size_t triggered_transitions = 0;
  /// …and over transitions where the Trojan stays fully dormant — the
  /// stealth case, where only the tiny trigger tree contributes.
  double dormant_delta = 0.0;
  std::size_t dormant_transitions = 0;

  /// Footprint amplification: triggered delta relative to dormant delta.
  double amplification() const {
    return dormant_delta <= 0.0 ? triggered_delta : triggered_delta / dormant_delta;
  }
};

/// Per-pattern toggle counts for one design (transitions between consecutive
/// patterns in the set; entry 0 counts toggles from the all-zero state).
///
/// Combinational designs run as batch sim::Engine sweeps (64×W patterns per
/// pass, toggle masks recovered bit-parallel from adjacent lanes).
/// Sequential designs are supported too: the pattern set is treated as a
/// per-cycle stimulus sequence executed through sim::SequentialEngine from
/// the all-zero state, and the counts include flip-flop state toggles — the
/// trace a real power side channel would integrate over a workload run.
std::vector<std::size_t> switching_activity(const netlist::Netlist& netlist,
                                            const sim::PatternSet& patterns);

/// Compares golden vs apply_trojan(golden, trojan) under the pattern set and
/// splits the toggle delta by trigger activation. Trigger checks ride the
/// same engine pass as the golden toggle counts (per-pattern on
/// combinational designs, per-cycle on sequential ones).
SideChannelReport side_channel_report(const netlist::Netlist& golden,
                                      const Trojan& trojan,
                                      const sim::PatternSet& patterns);

}  // namespace deterrent::trojan

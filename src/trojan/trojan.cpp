#include "trojan/trojan.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/assert.hpp"

namespace deterrent::trojan {

using analysis::RareNet;
using netlist::GateType;
using netlist::NetId;

bool payload_is_safe(const netlist::Netlist& nl, NetId candidate_payload,
                     std::span<const RareNet> trigger) {
  // BFS over the transitive fanout of the candidate; reject when any select
  // net is reachable (rewiring would feed the trigger back into itself).
  std::vector<bool> in_trigger(nl.net_count(), false);
  for (const auto& rn : trigger) in_trigger[rn.net] = true;
  if (in_trigger[candidate_payload]) return false;

  std::vector<bool> visited(nl.net_count(), false);
  std::vector<NetId> queue{candidate_payload};
  visited[candidate_payload] = true;
  while (!queue.empty()) {
    const NetId id = queue.back();
    queue.pop_back();
    for (const NetId consumer : nl.fanouts(id)) {
      if (visited[consumer]) continue;
      if (in_trigger[consumer]) return false;
      visited[consumer] = true;
      queue.push_back(consumer);
    }
  }
  return true;
}

std::vector<Trojan> sample_trojans(const netlist::Netlist& netlist,
                                   std::span<const RareNet> rare_nets,
                                   const TrojanSampleConfig& config,
                                   sat::NetlistOracle& oracle, util::Rng& rng) {
  DETERRENT_ASSERT(config.width >= 1, "trigger width must be positive");
  std::vector<Trojan> trojans;
  if (rare_nets.size() < config.width) return trojans;

  // Dedup by the sorted set of select-net indices.
  std::unordered_set<std::size_t> seen;
  auto key_of = [](std::span<const std::uint32_t> idx) {
    std::size_t h = 1469598103934665603ULL;
    for (const auto i : idx) {
      h ^= i;
      h *= 1099511628211ULL;
    }
    return h;
  };

  std::vector<sat::Constraint> constraints(config.width);
  std::size_t attempts_left = config.max_attempts_per_trojan * config.count;
  while (trojans.size() < config.count && attempts_left-- > 0) {
    auto idx = rng.sample_indices(static_cast<std::uint32_t>(rare_nets.size()),
                                  config.width);
    std::sort(idx.begin(), idx.end());
    if (!seen.insert(key_of(idx)).second) continue;

    for (unsigned k = 0; k < config.width; ++k)
      constraints[k] = {rare_nets[idx[k]].net, rare_nets[idx[k]].rare_value};
    const auto sat_result =
        oracle.try_satisfiable(constraints, config.sat_conflict_budget);
    if (!sat_result.has_value() || !*sat_result) continue;  // invalid trigger

    Trojan trojan;
    trojan.trigger.reserve(config.width);
    for (const auto i : idx) trojan.trigger.push_back(rare_nets[i]);

    // Payload host: prefer a primary-output driver; fall back to any net that
    // keeps the circuit acyclic.
    NetId payload = netlist::kNoNet;
    for (std::size_t tries = 0; tries < 32 && payload == netlist::kNoNet; ++tries) {
      const auto outputs = netlist.outputs();
      const NetId cand = outputs.empty()
                             ? static_cast<NetId>(rng.below(netlist.net_count()))
                             : outputs[rng.below(outputs.size())];
      if (payload_is_safe(netlist, cand, trojan.trigger)) payload = cand;
    }
    if (payload == netlist::kNoNet) {
      for (NetId cand = 0; cand < netlist.net_count() && payload == netlist::kNoNet;
           ++cand)
        if (payload_is_safe(netlist, cand, trojan.trigger)) payload = cand;
    }
    if (payload == netlist::kNoNet) continue;  // pathological; try another trigger
    trojan.payload_net = payload;
    trojans.push_back(std::move(trojan));
  }
  return trojans;
}

netlist::Netlist apply_trojan(const netlist::Netlist& golden, const Trojan& trojan,
                              NetId* out_trigger_net) {
  netlist::NetlistBuilder builder;

  // Recreate all original nets under their own ids; the XOR payload output is
  // declared up front so consumers of the payload net can be rewired to it.
  for (NetId id = 0; id < golden.net_count(); ++id) builder.declare(golden.name(id));
  const NetId xor_out = builder.declare("ht_payload_xor");

  for (NetId id = 0; id < golden.net_count(); ++id) {
    const GateType type = golden.type(id);
    if (type == GateType::Input) {
      builder.define_input(id);
      continue;
    }
    auto fanins = golden.fanins(id);
    std::vector<NetId> rewired(fanins.begin(), fanins.end());
    for (auto& f : rewired)
      if (f == trojan.payload_net) f = xor_out;
    if (type == GateType::Dff)
      builder.define_dff(id, rewired[0]);
    else
      builder.define_gate(id, type, std::move(rewired));
  }

  // Trigger: AND over select nets, inverting those whose rare value is 0.
  std::vector<NetId> trigger_terms;
  trigger_terms.reserve(trojan.trigger.size());
  for (const auto& rn : trojan.trigger) {
    if (rn.rare_value) {
      trigger_terms.push_back(rn.net);
    } else {
      trigger_terms.push_back(
          builder.add_gate(GateType::Not, {rn.net}, "ht_inv_" + std::to_string(rn.net)));
    }
  }
  const NetId trigger_net =
      trigger_terms.size() == 1
          ? trigger_terms[0]
          : builder.add_gate(GateType::And, trigger_terms, "ht_trigger");

  builder.define_gate(xor_out, GateType::Xor, {trojan.payload_net, trigger_net});

  for (const NetId out : golden.outputs())
    builder.mark_output(out == trojan.payload_net ? xor_out : out);

  if (out_trigger_net != nullptr) *out_trigger_net = trigger_net;
  return builder.build();
}

}  // namespace deterrent::trojan

#pragma once

#include <limits>
#include <span>
#include <vector>

#include "sim/engine.hpp"
#include "sim/pattern.hpp"
#include "trojan/trojan.hpp"

namespace deterrent::trojan {

/// Outcome of applying a test set to a population of Trojans. "Covered" means
/// at least one pattern drives every select net of the trigger to its rare
/// value simultaneously — the paper's trigger coverage metric (§1.2, fn. 2).
/// Activation is checked by simulating the *golden* netlist: trigger firing
/// does not depend on the payload.
struct CoverageResult {
  static constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

  std::size_t covered = 0;
  std::size_t total = 0;
  std::vector<std::size_t> first_activation;  ///< per Trojan: first pattern index, or kNever

  double coverage_percent() const {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(covered) / static_cast<double>(total);
  }

  /// Coverage (%) after applying only the first `n_patterns` patterns — the
  /// marginal-coverage curve of Figure 6, derived without re-simulation.
  double coverage_percent_at(std::size_t n_patterns) const;
};

/// Evaluates trigger coverage of `patterns` against `trojans` on the golden
/// netlist, bit-parallel (64 patterns per simulation pass, multi-word
/// batches, early exit once every trojan has fired).
///
/// Preconditions: `golden` is combinational (full-scan applied) and
/// `patterns` matches its input arity. Deterministic: depends only on the
/// arguments, never on thread count or batching.
CoverageResult evaluate_coverage(const netlist::Netlist& golden,
                                 std::span<const Trojan> trojans,
                                 const sim::PatternSet& patterns);

/// Trigger checks for pattern-mutation loops: caches the golden netlist's
/// value buffer for the last checked pattern and, on each check(), re-
/// simulates only the fanout cone of the input bits that changed since the
/// previous call (sim::Engine::resimulate). Results are bit-identical to
/// evaluate_coverage on a one-pattern set, at a fraction of the work when
/// consecutive patterns differ in a few bits.
///
/// Not thread-safe: the checker owns one cached buffer; use one instance per
/// thread (they may not share state anyway, since the cache is the previous
/// pattern). Deterministic: check() depends only on the pattern passed in.
class IncrementalTriggerChecker {
 public:
  /// Compiles `golden` (must be combinational) and copies the trigger list.
  IncrementalTriggerChecker(const netlist::Netlist& golden,
                            std::span<const Trojan> trojans);

  /// Simulates `pattern` — incrementally against the previously checked
  /// pattern — and reports, per trojan, whether its trigger fires. The
  /// returned reference stays valid until the next check().
  const std::vector<bool>& check(const sim::Pattern& pattern);

  /// Gate evaluations the last check() performed (full program size for the
  /// first call or a dense fallback) — the activity statistic benchmarks use.
  std::size_t last_ops_evaluated() const { return last_ops_; }

 private:
  sim::Engine engine_;
  sim::EvalBuffer buf_;
  std::vector<Trojan> trojans_;
  sim::Pattern last_;
  std::vector<bool> fired_;
  std::vector<std::uint32_t> dirty_inputs_;
  std::vector<std::uint64_t> dirty_words_;
  std::size_t last_ops_ = 0;
  bool primed_ = false;
};

}  // namespace deterrent::trojan

#pragma once

#include <limits>
#include <span>
#include <vector>

#include "sim/pattern.hpp"
#include "trojan/trojan.hpp"

namespace deterrent::trojan {

/// Outcome of applying a test set to a population of Trojans. "Covered" means
/// at least one pattern drives every select net of the trigger to its rare
/// value simultaneously — the paper's trigger coverage metric (§1.2, fn. 2).
/// Activation is checked by simulating the *golden* netlist: trigger firing
/// does not depend on the payload.
struct CoverageResult {
  static constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

  std::size_t covered = 0;
  std::size_t total = 0;
  std::vector<std::size_t> first_activation;  ///< per Trojan: first pattern index, or kNever

  double coverage_percent() const {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(covered) / static_cast<double>(total);
  }

  /// Coverage (%) after applying only the first `n_patterns` patterns — the
  /// marginal-coverage curve of Figure 6, derived without re-simulation.
  double coverage_percent_at(std::size_t n_patterns) const;
};

/// Evaluates trigger coverage of `patterns` against `trojans` on the golden
/// netlist, bit-parallel (64 patterns per simulation pass).
CoverageResult evaluate_coverage(const netlist::Netlist& golden,
                                 std::span<const Trojan> trojans,
                                 const sim::PatternSet& patterns);

}  // namespace deterrent::trojan

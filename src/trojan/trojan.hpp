#pragma once

#include <optional>
#include <span>
#include <vector>

#include "analysis/rare_nets.hpp"
#include "netlist/netlist.hpp"
#include "sat/oracle.hpp"
#include "util/rng.hpp"

namespace deterrent::trojan {

/// A combinational hardware Trojan in the paper's model (§1.1, Figure 1):
/// the trigger fires when every select net takes its rare value
/// simultaneously; the payload then flips `payload_net`.
struct Trojan {
  std::vector<analysis::RareNet> trigger;  ///< select nets + rare values
  netlist::NetId payload_net = 0;          ///< net whose value the payload flips

  unsigned width() const { return static_cast<unsigned>(trigger.size()); }
};

struct TrojanSampleConfig {
  unsigned width = 4;        ///< trigger width (Figure 5 sweeps 2–12)
  std::size_t count = 100;   ///< HTs per benchmark, as in §4.1
  /// Candidate triggers whose joint satisfiability check exceeds this budget
  /// are discarded (they could never be activated in silicon either).
  std::int64_t sat_conflict_budget = 100000;
  /// Give up after this many rejected candidates per accepted one.
  std::size_t max_attempts_per_trojan = 500;
};

/// Samples `config.count` distinct, SAT-validated random Trojans whose
/// triggers draw from `rare_nets` — the "100 random four-width triggered
/// HT-infected netlists, verified valid using a Boolean satisfiability
/// check" of §4.1. Payload nets are chosen so that inserting the payload
/// creates no combinational cycle. Returns fewer than `count` only when the
/// circuit genuinely runs out of satisfiable trigger combinations.
std::vector<Trojan> sample_trojans(const netlist::Netlist& netlist,
                                   std::span<const analysis::RareNet> rare_nets,
                                   const TrojanSampleConfig& config,
                                   sat::NetlistOracle& oracle, util::Rng& rng);

/// Builds the HT-infected netlist: an AND tree over the (possibly inverted)
/// select nets forms the trigger; the payload XORs the trigger into
/// `payload_net`, rewiring all of its consumers. Net ids of the original
/// netlist are preserved. `out_trigger_net`, if non-null, receives the id of
/// the trigger output in the returned netlist.
netlist::Netlist apply_trojan(const netlist::Netlist& golden, const Trojan& trojan,
                              netlist::NetId* out_trigger_net = nullptr);

/// True when `candidate_payload` can host the payload without creating a
/// combinational cycle (no select net lies in its transitive fanout).
bool payload_is_safe(const netlist::Netlist& netlist, netlist::NetId candidate_payload,
                     std::span<const analysis::RareNet> trigger);

}  // namespace deterrent::trojan

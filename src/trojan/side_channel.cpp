#include "trojan/side_channel.hpp"

#include <bit>
#include <cmath>

#include "sim/engine.hpp"
#include "sim/sequential_engine.hpp"
#include "util/assert.hpp"

namespace deterrent::trojan {

namespace {

/// One pass over the pattern set computing per-transition toggle counts and
/// (optionally) per-pattern trigger activation, combinational designs:
/// batch engine sweeps, 64×W patterns per pass, with the toggle counts
/// recovered bit-parallel — adjacent pattern lanes are adjacent bits, so a
/// net's toggle mask for a whole block is one shift/XOR.
void activity_combinational(const netlist::Netlist& netlist,
                            const sim::PatternSet& patterns,
                            std::span<const analysis::RareNet> trigger,
                            std::vector<std::size_t>& toggles,
                            std::vector<bool>* fired) {
  const sim::Engine engine(netlist);
  toggles.assign(patterns.pattern_count(), 0);
  if (fired != nullptr) fired->assign(patterns.pattern_count(), false);
  // Previous pattern's value per net (bit 0), seeding each block's lane-0
  // transition; starts at the all-zero state, as documented.
  std::vector<std::uint8_t> prev(netlist.net_count(), 0);
  engine.sweep(patterns, [&](std::size_t first_block, std::size_t n_words,
                             const sim::EvalBuffer& buf) {
    for (std::size_t w = 0; w < n_words; ++w) {
      const std::size_t block = first_block + w;
      const std::uint64_t valid = patterns.valid_mask(block);
      const std::size_t base = block * 64;
      for (netlist::NetId net = 0; net < netlist.net_count(); ++net) {
        const std::uint64_t x = buf.word(net, w);
        // Bit p of the mask: did `net` change between patterns p-1 and p?
        // (bit 0 compares against the previous block's last pattern).
        std::uint64_t mask = (x ^ ((x << 1) | prev[net])) & valid;
        prev[net] = static_cast<std::uint8_t>(x >> 63);
        while (mask != 0) {
          const int lane = std::countr_zero(mask);
          mask &= mask - 1;
          ++toggles[base + static_cast<std::size_t>(lane)];
        }
      }
      if (fired != nullptr) {
        std::uint64_t f = valid;
        for (const auto& rn : trigger) {
          const std::uint64_t v = buf.word(rn.net, w);
          f &= rn.rare_value ? v : ~v;
        }
        while (f != 0) {
          const int lane = std::countr_zero(f);
          f &= f - 1;
          (*fired)[base + static_cast<std::size_t>(lane)] = true;
        }
      }
    }
  });
}

/// Sequential designs: the pattern set is a per-cycle stimulus sequence.
/// Each cycle steps through sim::SequentialEngine, so a steady cycle costs
/// only the fanout cones of the inputs/state bits that changed; toggles span
/// every net including the flip-flop state. State starts all-zero.
void activity_sequential(const netlist::Netlist& netlist,
                         const sim::PatternSet& patterns,
                         std::span<const analysis::RareNet> trigger,
                         std::vector<std::size_t>& toggles,
                         std::vector<bool>* fired) {
  sim::SequentialEngine seq(netlist, /*n_traces=*/1);
  toggles.assign(patterns.pattern_count(), 0);
  if (fired != nullptr) fired->assign(patterns.pattern_count(), false);
  std::vector<std::uint8_t> prev(netlist.net_count(), 0);
  for (std::size_t p = 0; p < patterns.pattern_count(); ++p) {
    seq.step_broadcast(patterns.pattern(p));
    std::size_t count = 0;
    for (netlist::NetId net = 0; net < netlist.net_count(); ++net) {
      const auto cur = static_cast<std::uint8_t>(seq.values().word(net, 0) & 1ULL);
      count += cur != prev[net];
      prev[net] = cur;
    }
    toggles[p] = count;
    if (fired != nullptr) {
      bool f = true;
      for (const auto& rn : trigger) f = f && seq.value(rn.net, 0) == rn.rare_value;
      (*fired)[p] = f;
    }
  }
}

void activity(const netlist::Netlist& netlist, const sim::PatternSet& patterns,
              std::span<const analysis::RareNet> trigger,
              std::vector<std::size_t>& toggles, std::vector<bool>* fired) {
  DETERRENT_ASSERT(patterns.input_count() == netlist.inputs().size(),
                   "switching activity: pattern arity mismatch");
  if (netlist.is_sequential())
    activity_sequential(netlist, patterns, trigger, toggles, fired);
  else
    activity_combinational(netlist, patterns, trigger, toggles, fired);
}

}  // namespace

std::vector<std::size_t> switching_activity(const netlist::Netlist& netlist,
                                            const sim::PatternSet& patterns) {
  std::vector<std::size_t> toggles;
  activity(netlist, patterns, {}, toggles, nullptr);
  return toggles;
}

SideChannelReport side_channel_report(const netlist::Netlist& golden,
                                      const Trojan& trojan,
                                      const sim::PatternSet& patterns) {
  DETERRENT_ASSERT(patterns.pattern_count() > 0, "side_channel_report needs patterns");
  const netlist::Netlist infected = apply_trojan(golden, trojan);

  // Trigger activation is evaluated on the golden design — trigger nets keep
  // their ids across apply_trojan — in the same pass as the golden toggle
  // counts (one engine compilation and one sweep instead of two).
  std::vector<std::size_t> golden_toggles;
  std::vector<bool> fired;
  activity(golden, patterns, trojan.trigger, golden_toggles, &fired);
  const auto infected_toggles = switching_activity(infected, patterns);

  SideChannelReport report;
  double triggered_sum = 0.0;
  double dormant_sum = 0.0;
  for (std::size_t p = 0; p < patterns.pattern_count(); ++p) {
    report.golden_avg_toggles += static_cast<double>(golden_toggles[p]);
    report.infected_avg_toggles += static_cast<double>(infected_toggles[p]);
    const double deviation = std::abs(static_cast<double>(infected_toggles[p]) -
                                      static_cast<double>(golden_toggles[p]));
    const bool involved = fired[p] || (p > 0 && fired[p - 1]);
    if (involved) {
      triggered_sum += deviation;
      ++report.triggered_transitions;
    } else {
      dormant_sum += deviation;
      ++report.dormant_transitions;
    }
  }
  const auto n = static_cast<double>(patterns.pattern_count());
  report.golden_avg_toggles /= n;
  report.infected_avg_toggles /= n;
  if (report.triggered_transitions > 0)
    report.triggered_delta =
        triggered_sum / static_cast<double>(report.triggered_transitions);
  if (report.dormant_transitions > 0)
    report.dormant_delta = dormant_sum / static_cast<double>(report.dormant_transitions);
  return report;
}

}  // namespace deterrent::trojan

#include "trojan/side_channel.hpp"

#include <cmath>

#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace deterrent::trojan {

std::vector<std::size_t> switching_activity(const netlist::Netlist& netlist,
                                            const sim::PatternSet& patterns) {
  sim::Simulator simulator(netlist);
  std::vector<std::size_t> toggles;
  toggles.reserve(patterns.pattern_count());
  std::vector<bool> previous(netlist.net_count(), false);
  for (std::size_t p = 0; p < patterns.pattern_count(); ++p) {
    const auto values = simulator.simulate_pattern(patterns.pattern(p));
    std::size_t count = 0;
    for (std::size_t net = 0; net < values.size(); ++net)
      count += values[net] != previous[net];
    toggles.push_back(count);
    previous = values;
  }
  return toggles;
}

SideChannelReport side_channel_report(const netlist::Netlist& golden,
                                      const Trojan& trojan,
                                      const sim::PatternSet& patterns) {
  DETERRENT_ASSERT(patterns.pattern_count() > 0, "side_channel_report needs patterns");
  const netlist::Netlist infected = apply_trojan(golden, trojan);

  const auto golden_toggles = switching_activity(golden, patterns);
  const auto infected_toggles = switching_activity(infected, patterns);

  // Trigger activation is evaluated on the golden design — trigger nets keep
  // their ids across apply_trojan.
  sim::Simulator gsim(golden);

  // Trigger state per pattern (transition p goes from pattern p-1 to p; the
  // initial state is all-zero and counted as not fired unless it is).
  std::vector<bool> fired(patterns.pattern_count());
  for (std::size_t p = 0; p < patterns.pattern_count(); ++p) {
    const auto values = gsim.simulate_pattern(patterns.pattern(p));
    bool f = true;
    for (const auto& rn : trojan.trigger) f = f && values[rn.net] == rn.rare_value;
    fired[p] = f;
  }

  SideChannelReport report;
  double triggered_sum = 0.0;
  double dormant_sum = 0.0;
  for (std::size_t p = 0; p < patterns.pattern_count(); ++p) {
    report.golden_avg_toggles += static_cast<double>(golden_toggles[p]);
    report.infected_avg_toggles += static_cast<double>(infected_toggles[p]);
    const double deviation = std::abs(static_cast<double>(infected_toggles[p]) -
                                      static_cast<double>(golden_toggles[p]));
    const bool involved = fired[p] || (p > 0 && fired[p - 1]);
    if (involved) {
      triggered_sum += deviation;
      ++report.triggered_transitions;
    } else {
      dormant_sum += deviation;
      ++report.dormant_transitions;
    }
  }
  const auto n = static_cast<double>(patterns.pattern_count());
  report.golden_avg_toggles /= n;
  report.infected_avg_toggles /= n;
  if (report.triggered_transitions > 0)
    report.triggered_delta =
        triggered_sum / static_cast<double>(report.triggered_transitions);
  if (report.dormant_transitions > 0)
    report.dormant_delta = dormant_sum / static_cast<double>(report.dormant_transitions);
  return report;
}

}  // namespace deterrent::trojan

#include "baselines/atpg_like.hpp"

#include "sat/oracle.hpp"
#include "sim/engine.hpp"

namespace deterrent::baselines {

AtpgLikeResult run_atpg_like(const netlist::Netlist& netlist,
                             std::span<const analysis::RareNet> rare_nets,
                             util::Rng& rng) {
  AtpgLikeResult result;
  result.patterns = sim::PatternSet(netlist.inputs().size());

  sat::NetlistOracle oracle(netlist);
  const sim::Engine engine(netlist);
  sim::EvalBuffer eval_buf;
  std::vector<bool> covered(rare_nets.size(), false);

  for (std::size_t i = 0; i < rare_nets.size(); ++i) {
    if (covered[i]) continue;
    const sat::Constraint constraint{rare_nets[i].net, rare_nets[i].rare_value};
    oracle.randomize_completion(rng);
    const auto pattern = oracle.find_pattern({&constraint, 1});
    if (!pattern.has_value()) {
      covered[i] = true;  // structurally unexcitable; drop the fault
      continue;
    }
    result.patterns.push(*pattern);

    // Fault dropping: every rare net this pattern happens to excite needs no
    // dedicated pattern of its own.
    const auto values = engine.evaluate_pattern(eval_buf, *pattern);
    for (std::size_t j = 0; j < rare_nets.size(); ++j)
      if (!covered[j] && values[rare_nets[j].net] == rare_nets[j].rare_value)
        covered[j] = true;
  }

  for (const bool c : covered)
    if (c) ++result.excited_rare_nets;
  return result;
}

}  // namespace deterrent::baselines

#pragma once

#include <span>

#include "analysis/rare_nets.hpp"
#include "analysis/scoap.hpp"
#include "sim/pattern.hpp"
#include "util/rng.hpp"

namespace deterrent::baselines {

/// TGRL-like baseline (Pan & Mishra, ASP-DAC 2021, §1.3).
///
/// TGRL trains an RL agent whose states/actions are test patterns mutated by
/// probabilistic bit flips, rewarded by a combination of rareness and SCOAP
/// testability of the activated rare nets. We reproduce that search behaviour
/// with a stochastic hill climber over bit-flip mutations using the same
/// reward: each emitted pattern is the best of `mutation_rounds` × 64
/// probabilistic mutants under the rareness×testability objective, with
/// diminishing weight on already-activated nets (which drives the pattern
/// count up — ideal characteristic 3, the one TGRL violates).
///
/// Substitution note (DESIGN.md): the published TGRL network is a PyTorch
/// policy over pattern bits; its essential behaviour for comparison purposes —
/// pattern-space search guided by rareness+testability, one pattern per
/// episode — is preserved here.
struct TgrlLikeConfig {
  std::size_t n_patterns = 1000;
  std::size_t mutation_rounds = 6;  ///< 64 mutants are scored per round
  double flip_probability = 1.0 / 16.0;
  /// Relative weight of the SCOAP observability term against rareness.
  double testability_weight = 0.3;
};

struct TgrlLikeResult {
  sim::PatternSet patterns;
  std::vector<double> pattern_scores;
};

/// Runs the TGRL-like stochastic hill climber. Each mutant round hands the
/// engine only the input words that changed since the previous round
/// (Engine::resimulate); the engine falls back to a dense sweep on its own
/// when the probabilistic mutants touch most inputs, so the routing is never
/// slower than full re-evaluation and bit-identical to it.
///
/// Preconditions: `netlist` is combinational, `scoap` was computed for the
/// same netlist, rare net ids are in range. Deterministic for a given
/// (netlist, rare_nets, scoap, config, rng state). Not thread-safe w.r.t.
/// the shared `rng`.
TgrlLikeResult run_tgrl_like(const netlist::Netlist& netlist,
                             std::span<const analysis::RareNet> rare_nets,
                             const analysis::ScoapValues& scoap,
                             const TgrlLikeConfig& config, util::Rng& rng);

}  // namespace deterrent::baselines

#include "baselines/mero.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "sim/engine.hpp"

namespace deterrent::baselines {

namespace {

/// Rare nets a single pattern activates (index list), given net values.
std::vector<std::uint32_t> activated_rare(const std::vector<bool>& values,
                                          std::span<const analysis::RareNet> rare) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < rare.size(); ++i)
    if (values[rare[i].net] == rare[i].rare_value) out.push_back(i);
  return out;
}

}  // namespace

MeroResult run_mero(const netlist::Netlist& netlist,
                    std::span<const analysis::RareNet> rare_nets,
                    const MeroConfig& config, util::Rng& rng) {
  const std::size_t n_inputs = netlist.inputs().size();
  const std::size_t n_rare = rare_nets.size();
  const sim::Engine engine(netlist);
  sim::EvalBuffer eval_buf;

  MeroResult result;
  result.patterns = sim::PatternSet(n_inputs);
  result.activation_counts.assign(n_rare, 0);

  // Step 1: random pool, ranked by how many rare nets each pattern activates;
  // scored in multi-word engine sweeps.
  const auto pool = sim::PatternSet::random(n_inputs, config.random_pool, rng);
  std::vector<std::uint32_t> scores(config.random_pool, 0);
  engine.sweep(pool, [&](std::size_t first_block, std::size_t n_words,
                         const sim::EvalBuffer& buf) {
    for (const auto& rn : rare_nets) {
      const auto values = buf.net(rn.net);
      for (std::size_t w = 0; w < n_words; ++w) {
        std::uint64_t hits = rn.rare_value ? values[w] : ~values[w];
        hits &= pool.valid_mask(first_block + w);
        while (hits) {
          const int lane = std::countr_zero(hits);
          hits &= hits - 1;
          ++scores[(first_block + w) * 64 + static_cast<std::size_t>(lane)];
        }
      }
    }
  });
  std::vector<std::uint32_t> order(config.random_pool);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) { return scores[a] > scores[b]; });

  // Gain of a candidate = number of still-under-detected rare nets it hits.
  auto gain_of = [&](const std::vector<bool>& values) {
    std::size_t gain = 0;
    for (std::uint32_t i = 0; i < n_rare; ++i)
      if (result.activation_counts[i] < config.n_detect &&
          values[rare_nets[i].net] == rare_nets[i].rare_value)
        ++gain;
    return gain;
  };

  std::vector<std::uint64_t> mutant_words(n_inputs);
  for (const std::uint32_t p : order) {
    if (config.max_patterns != 0 && result.patterns.pattern_count() >= config.max_patterns)
      break;

    sim::Pattern current = pool.pattern(p);
    std::size_t current_gain = gain_of(engine.evaluate_pattern(eval_buf, current));

    // Step 2: greedy bit-flip ascent; evaluate 64 single-bit mutants per
    // simulation pass (lane b = current with bit base+b flipped).
    for (std::size_t round = 0; round < config.greedy_rounds; ++round) {
      std::size_t best_bit = n_inputs;
      std::size_t best_gain = current_gain;
      for (std::size_t base = 0; base < n_inputs; base += 64) {
        const std::size_t lanes = std::min<std::size_t>(64, n_inputs - base);
        for (std::size_t i = 0; i < n_inputs; ++i)
          mutant_words[i] = current.test(i) ? ~0ULL : 0ULL;
        for (std::size_t lane = 0; lane < lanes; ++lane)
          mutant_words[base + lane] ^= (1ULL << lane);

        engine.evaluate(eval_buf, mutant_words, 1);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          std::size_t gain = 0;
          for (std::uint32_t i = 0; i < n_rare; ++i) {
            if (result.activation_counts[i] >= config.n_detect) continue;
            const bool v = (eval_buf.word(rare_nets[i].net, 0) >> lane) & 1ULL;
            if (v == rare_nets[i].rare_value) ++gain;
          }
          if (gain > best_gain) {
            best_gain = gain;
            best_bit = base + lane;
          }
        }
      }
      if (best_bit == n_inputs) break;  // local optimum
      current.set(best_bit, !current.test(best_bit));
      current_gain = best_gain;
    }

    // Step 3: keep the pattern only if it advances N-detection.
    if (current_gain == 0) continue;
    const auto activated =
        activated_rare(engine.evaluate_pattern(eval_buf, current), rare_nets);
    result.patterns.push(current);
    for (const std::uint32_t i : activated) ++result.activation_counts[i];

    const bool all_done = std::all_of(
        result.activation_counts.begin(), result.activation_counts.end(),
        [&](std::size_t c) { return c >= config.n_detect; });
    if (all_done) break;
  }

  result.n_detect_satisfied = std::all_of(
      result.activation_counts.begin(), result.activation_counts.end(),
      [&](std::size_t c) { return c >= config.n_detect; });
  return result;
}

}  // namespace deterrent::baselines

#include "baselines/mero.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "sim/engine.hpp"

namespace deterrent::baselines {

MeroResult run_mero(const netlist::Netlist& netlist,
                    std::span<const analysis::RareNet> rare_nets,
                    const MeroConfig& config, util::Rng& rng) {
  const std::size_t n_inputs = netlist.inputs().size();
  const std::size_t n_rare = rare_nets.size();
  const sim::Engine engine(netlist);
  sim::EvalBuffer eval_buf;

  MeroResult result;
  result.patterns = sim::PatternSet(n_inputs);
  result.activation_counts.assign(n_rare, 0);

  // Step 1: random pool, ranked by how many rare nets each pattern activates;
  // scored in multi-word engine sweeps.
  const auto pool = sim::PatternSet::random(n_inputs, config.random_pool, rng);
  std::vector<std::uint32_t> scores(config.random_pool, 0);
  engine.sweep(pool, [&](std::size_t first_block, std::size_t n_words,
                         const sim::EvalBuffer& buf) {
    for (const auto& rn : rare_nets) {
      const auto values = buf.net(rn.net);
      for (std::size_t w = 0; w < n_words; ++w) {
        std::uint64_t hits = rn.rare_value ? values[w] : ~values[w];
        hits &= pool.valid_mask(first_block + w);
        while (hits) {
          const int lane = std::countr_zero(hits);
          hits &= hits - 1;
          ++scores[(first_block + w) * 64 + static_cast<std::size_t>(lane)];
        }
      }
    }
  });
  std::vector<std::uint32_t> order(config.random_pool);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) { return scores[a] > scores[b]; });

  // Gain of the mutant in `lane` of the current value buffer = number of
  // still-under-detected rare nets it drives to their rare value.
  auto gain_at_lane = [&](std::size_t lane) {
    std::size_t gain = 0;
    for (std::uint32_t i = 0; i < n_rare; ++i)
      if (result.activation_counts[i] < config.n_detect &&
          (((eval_buf.word(rare_nets[i].net, 0) >> lane) & 1ULL) != 0) ==
              rare_nets[i].rare_value)
        ++gain;
    return gain;
  };

  std::vector<std::uint64_t> broadcast(n_inputs);  // incumbent, replicated per lane
  std::vector<std::uint32_t> dirty_inputs;
  std::vector<std::uint64_t> dirty_words;
  bool buffer_primed = false;
  for (const std::uint32_t p : order) {
    if (config.max_patterns != 0 && result.patterns.pattern_count() >= config.max_patterns)
      break;

    sim::Pattern current = pool.pattern(p);
    if (!buffer_primed || !config.chain_candidates) {
      for (std::size_t i = 0; i < n_inputs; ++i)
        broadcast[i] = current.test(i) ? ~0ULL : 0ULL;
      engine.evaluate(eval_buf, broadcast, 1);
      buffer_primed = true;
    } else {
      // Candidate chaining: the buffer still holds the previous candidate's
      // final state (the greedy loop restores it to broadcast(current) after
      // every round), so only the inputs that differ between the two
      // candidates are dirty — ranked pool patterns overlap heavily, which
      // removes most full-program sweeps.
      dirty_inputs.clear();
      dirty_words.clear();
      for (std::size_t i = 0; i < n_inputs; ++i) {
        const std::uint64_t next_word = current.test(i) ? ~0ULL : 0ULL;
        if (next_word != broadcast[i]) {
          broadcast[i] = next_word;
          dirty_inputs.push_back(static_cast<std::uint32_t>(i));
          dirty_words.push_back(next_word);
        }
      }
      engine.resimulate(eval_buf, dirty_inputs, dirty_words, 1);
    }
    std::size_t current_gain = gain_at_lane(0);

    // Step 2: greedy bit-flip ascent; evaluate 64 single-bit mutants per
    // simulation pass (lane b = current with bit base+b flipped). Each pass
    // re-simulates incrementally: its dirty set restores the previously
    // flipped window to the incumbent and flips the next one, so only those
    // fanout cones are re-evaluated instead of the whole program.
    for (std::size_t round = 0; round < config.greedy_rounds; ++round) {
      std::size_t best_bit = n_inputs;
      std::size_t best_gain = current_gain;
      std::size_t flipped_base = 0, flipped_lanes = 0;  // window flipped in buffer
      for (std::size_t base = 0; base < n_inputs; base += 64) {
        const std::size_t lanes = std::min<std::size_t>(64, n_inputs - base);
        dirty_inputs.clear();
        dirty_words.clear();
        for (std::size_t lane = 0; lane < flipped_lanes; ++lane) {
          dirty_inputs.push_back(static_cast<std::uint32_t>(flipped_base + lane));
          dirty_words.push_back(broadcast[flipped_base + lane]);
        }
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          dirty_inputs.push_back(static_cast<std::uint32_t>(base + lane));
          dirty_words.push_back(broadcast[base + lane] ^ (1ULL << lane));
        }
        engine.resimulate(eval_buf, dirty_inputs, dirty_words, 1);
        flipped_base = base;
        flipped_lanes = lanes;

        for (std::size_t lane = 0; lane < lanes; ++lane) {
          const std::size_t gain = gain_at_lane(lane);
          if (gain > best_gain) {
            best_gain = gain;
            best_bit = base + lane;
          }
        }
      }

      // Restore the trailing window and, if a flip improved the gain, apply
      // it — one incremental pass back to broadcast(current).
      if (best_bit != n_inputs) {
        current.set(best_bit, !current.test(best_bit));
        broadcast[best_bit] = ~broadcast[best_bit];
      }
      dirty_inputs.clear();
      dirty_words.clear();
      for (std::size_t lane = 0; lane < flipped_lanes; ++lane) {
        dirty_inputs.push_back(static_cast<std::uint32_t>(flipped_base + lane));
        dirty_words.push_back(broadcast[flipped_base + lane]);
      }
      if (best_bit != n_inputs &&
          (best_bit < flipped_base || best_bit >= flipped_base + flipped_lanes)) {
        dirty_inputs.push_back(static_cast<std::uint32_t>(best_bit));
        dirty_words.push_back(broadcast[best_bit]);
      }
      engine.resimulate(eval_buf, dirty_inputs, dirty_words, 1);
      if (best_bit == n_inputs) break;  // local optimum
      current_gain = best_gain;
    }

    // Step 3: keep the pattern only if it advances N-detection. The buffer
    // holds broadcast(current), so lane 0 carries the final pattern's values.
    if (current_gain == 0) continue;
    result.patterns.push(current);
    for (std::uint32_t i = 0; i < n_rare; ++i)
      if (((eval_buf.word(rare_nets[i].net, 0) & 1ULL) != 0) == rare_nets[i].rare_value)
        ++result.activation_counts[i];

    const bool all_done = std::all_of(
        result.activation_counts.begin(), result.activation_counts.end(),
        [&](std::size_t c) { return c >= config.n_detect; });
    if (all_done) break;
  }

  result.n_detect_satisfied = std::all_of(
      result.activation_counts.begin(), result.activation_counts.end(),
      [&](std::size_t c) { return c >= config.n_detect; });
  return result;
}

}  // namespace deterrent::baselines

#pragma once

#include <span>

#include "analysis/rare_nets.hpp"
#include "sim/pattern.hpp"
#include "util/rng.hpp"

namespace deterrent::baselines {

/// Stand-in for the Synopsys TestMAX ATPG baseline of Table 2.
///
/// Commercial ATPG targets stuck-at faults one net at a time: it excites each
/// rare net individually and compacts patterns by fault dropping. That is
/// exactly why it misses multi-net rare *conjunctions* — the failure mode the
/// paper demonstrates (0–68% trigger coverage). This implementation mirrors
/// the behaviour: one SAT-generated excitation pattern per still-uncovered
/// rare net, random don't-care fill, greedy dropping of rare nets already
/// excited by earlier patterns.
struct AtpgLikeResult {
  sim::PatternSet patterns;
  std::size_t excited_rare_nets = 0;  ///< rare nets the set excites at least once
};

AtpgLikeResult run_atpg_like(const netlist::Netlist& netlist,
                             std::span<const analysis::RareNet> rare_nets,
                             util::Rng& rng);

}  // namespace deterrent::baselines

#include "baselines/tarmac.hpp"

#include <algorithm>

#include "sat/oracle.hpp"

namespace deterrent::baselines {

TarmacResult run_tarmac(const netlist::Netlist& netlist,
                        std::span<const analysis::RareNet> rare_nets,
                        const analysis::CompatibilityMatrix& matrix,
                        const TarmacConfig& config, util::Rng& rng) {
  TarmacResult result;
  result.patterns = sim::PatternSet(netlist.inputs().size());

  std::vector<std::uint32_t> viable;
  for (std::uint32_t i = 0; i < rare_nets.size(); ++i)
    if (matrix.singleton_satisfiable(i)) viable.push_back(i);
  if (viable.empty()) return result;

  sat::NetlistOracle oracle(netlist);
  std::vector<std::uint32_t> candidates;
  std::vector<std::uint32_t> clique;
  std::vector<sat::Constraint> constraints;

  while (result.patterns.pattern_count() < config.n_patterns) {
    // Seed with a random satisfiable rare net, then expand in random order —
    // the "repeated maximal clique sampling" of the TARMAC paper.
    const std::uint32_t seed = viable[rng.below(viable.size())];
    clique.assign(1, seed);
    util::BitVec allowed = matrix.row(seed);
    allowed.set(seed, false);
    constraints.assign(1, {rare_nets[seed].net, rare_nets[seed].rare_value});

    candidates = allowed.to_indices();
    rng.shuffle(candidates);
    std::size_t checks = 0;
    for (const std::uint32_t c : candidates) {
      if (config.max_candidate_checks != 0 && checks >= config.max_candidate_checks)
        break;
      if (!allowed.test(c)) continue;  // pruned by a previous acceptance
      ++checks;
      constraints.push_back({rare_nets[c].net, rare_nets[c].rare_value});
      const bool ok =
          oracle.try_satisfiable(constraints, config.sat_conflict_budget).value_or(false);
      if (ok) {
        clique.push_back(c);
        allowed &= matrix.row(c);
        allowed.set(c, false);
      } else {
        constraints.pop_back();
        allowed.set(c, false);
      }
    }

    oracle.randomize_completion(rng);
    const auto pattern = oracle.find_pattern(constraints);
    if (!pattern.has_value()) continue;  // cannot happen for verified cliques
    result.patterns.push(*pattern);
    result.clique_sizes.push_back(clique.size());
    result.max_clique_size = std::max(result.max_clique_size, clique.size());
  }
  return result;
}

}  // namespace deterrent::baselines

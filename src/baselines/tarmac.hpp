#pragma once

#include <span>

#include "analysis/compatibility.hpp"
#include "analysis/rare_nets.hpp"
#include "sim/pattern.hpp"
#include "util/rng.hpp"

namespace deterrent::baselines {

/// TARMAC (Lyu & Mishra, IEEE TCAD 2021) — repeated maximal clique sampling
/// on the rare-net satisfiability graph (§1.3): grow a random maximal set of
/// jointly satisfiable rare nets, emit one SAT pattern per clique, repeat.
/// Test generation is fast but the *number* of patterns stays large and the
/// quality is sensitive to sampling randomness — the weaknesses (ideal
/// characteristics 3 and 4) DETERRENT addresses.
struct TarmacConfig {
  std::size_t n_patterns = 1000;
  std::int64_t sat_conflict_budget = 100000;
  /// Upper bound on SAT-checked expansion candidates per clique (0 = all).
  /// Large rare-net sets make full maximal expansion SAT-heavy; the original
  /// TARMAC bounds this implicitly through its sampling budget.
  std::size_t max_candidate_checks = 0;
};

struct TarmacResult {
  sim::PatternSet patterns;
  std::vector<std::size_t> clique_sizes;  ///< per emitted pattern
  std::size_t max_clique_size = 0;
};

TarmacResult run_tarmac(const netlist::Netlist& netlist,
                        std::span<const analysis::RareNet> rare_nets,
                        const analysis::CompatibilityMatrix& matrix,
                        const TarmacConfig& config, util::Rng& rng);

}  // namespace deterrent::baselines

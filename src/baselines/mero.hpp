#pragma once

#include <span>

#include "analysis/rare_nets.hpp"
#include "sim/pattern.hpp"
#include "util/rng.hpp"

namespace deterrent::baselines {

/// MERO (Chakraborty et al., CHES 2009) — the N-detect statistical baseline
/// of §1.3: start from a random pattern pool, greedily mutate bits so that
/// every rare net gets individually activated at least N times, keeping the
/// patterns that contribute. Strong on small circuits, collapses on large
/// ones (0.2% coverage on MIPS per [10]) because individual activation says
/// nothing about joint activation.
struct MeroConfig {
  std::size_t random_pool = 2500;  ///< initial candidate pool size
  unsigned n_detect = 5;           ///< target activations per rare net (N)
  /// Greedy bit-flip improvement rounds per candidate; each round evaluates
  /// all single-bit mutations bit-parallel and applies the best improving one.
  std::size_t greedy_rounds = 4;
  std::size_t max_patterns = 0;  ///< cap on emitted patterns (0 = none)
  /// Seed each candidate's evaluation buffer incrementally from the previous
  /// candidate via Engine::resimulate instead of a full evaluate: ranked pool
  /// patterns are often near-duplicates, so only the differing input cones
  /// re-evaluate. Bit-identical to the unchained path (asserted in tests);
  /// the flag exists for A/B verification and benchmarking.
  bool chain_candidates = true;
};

struct MeroResult {
  sim::PatternSet patterns;
  std::vector<std::size_t> activation_counts;  ///< per rare net, final tally
  bool n_detect_satisfied = false;             ///< all rare nets reached N
};

/// Runs the MERO pipeline: pool scoring rides the batch engine (W-word
/// sweeps); the greedy bit-flip ascent rides Engine::resimulate, so each
/// 64-mutant pass re-evaluates only the fanout cones of the window being
/// flipped instead of the whole program; and successive candidates chain
/// through the same buffer (see MeroConfig::chain_candidates), so even the
/// per-candidate baseline evaluation is an incremental diff.
///
/// Preconditions: `netlist` is combinational (full-scan applied) and every
/// rare net id is in range. Deterministic for a given (netlist, rare_nets,
/// config, rng state); the incremental routing is bit-identical to full
/// re-simulation. Not thread-safe w.r.t. the shared `rng`; run whole calls
/// on separate Rng instances to parallelize.
MeroResult run_mero(const netlist::Netlist& netlist,
                    std::span<const analysis::RareNet> rare_nets,
                    const MeroConfig& config, util::Rng& rng);

}  // namespace deterrent::baselines

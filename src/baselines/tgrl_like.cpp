#include "baselines/tgrl_like.hpp"

#include <algorithm>
#include <cmath>

#include "sim/engine.hpp"

namespace deterrent::baselines {

TgrlLikeResult run_tgrl_like(const netlist::Netlist& netlist,
                             std::span<const analysis::RareNet> rare_nets,
                             const analysis::ScoapValues& scoap,
                             const TgrlLikeConfig& config, util::Rng& rng) {
  const std::size_t n_inputs = netlist.inputs().size();
  const std::size_t n_rare = rare_nets.size();
  const sim::Engine engine(netlist);
  sim::EvalBuffer eval_buf;

  TgrlLikeResult result;
  result.patterns = sim::PatternSet(n_inputs);

  // Static per-net base weights: rareness (1/p) combined with normalized
  // SCOAP observability, as in TGRL's reward.
  std::vector<double> base_weight(n_rare);
  double max_co = 1.0;
  for (const auto& rn : rare_nets)
    max_co = std::max(max_co, static_cast<double>(std::min(
                                  scoap.co[rn.net], analysis::ScoapValues::kInfinity / 2)));
  for (std::size_t i = 0; i < n_rare; ++i) {
    const double rareness = 1.0 / std::max(rare_nets[i].probability, 1e-6);
    const double co = static_cast<double>(
        std::min(scoap.co[rare_nets[i].net], analysis::ScoapValues::kInfinity / 2));
    base_weight[i] = std::log1p(rareness) * (1.0 + config.testability_weight * co / max_co);
  }
  std::vector<std::size_t> activation_counts(n_rare, 0);

  // Bernoulli(≈flip_probability) word masks via ANDed uniform words.
  const int and_depth = std::max(
      1, static_cast<int>(std::round(-std::log2(config.flip_probability))));
  auto sparse_word = [&]() {
    std::uint64_t w = rng.next_word();
    for (int k = 1; k < and_depth; ++k) w &= rng.next_word();
    return w;
  };

  // The mutation loop keeps eval_buf warm across rounds and candidates: each
  // pass hands the engine only the input words that differ from the previous
  // pass, and resimulate re-evaluates just their fanout cones (falling back
  // to a dense sweep automatically when most inputs changed, as is typical
  // for the all-input probabilistic mutants below).
  std::vector<std::uint64_t> words(n_inputs);
  std::vector<std::uint64_t> prev_words;
  std::vector<std::uint32_t> dirty_inputs;
  std::vector<std::uint64_t> dirty_words;
  auto simulate_words = [&]() {
    if (prev_words.empty()) {
      engine.evaluate(eval_buf, words, 1);
      prev_words = words;
      return;
    }
    dirty_inputs.clear();
    dirty_words.clear();
    for (std::size_t i = 0; i < n_inputs; ++i)
      if (words[i] != prev_words[i]) {
        dirty_inputs.push_back(static_cast<std::uint32_t>(i));
        dirty_words.push_back(words[i]);
      }
    engine.resimulate(eval_buf, dirty_inputs, dirty_words, 1);
    prev_words = words;
  };

  while (result.patterns.pattern_count() < config.n_patterns) {
    sim::Pattern current(n_inputs);
    for (std::size_t i = 0; i < n_inputs; ++i) current.set(i, rng.bernoulli(0.5));
    double current_score = -1.0;

    for (std::size_t round = 0; round < config.mutation_rounds; ++round) {
      // Lane 0 carries the incumbent; lanes 1–63 are probabilistic mutants.
      for (std::size_t i = 0; i < n_inputs; ++i) {
        std::uint64_t w = current.test(i) ? ~0ULL : 0ULL;
        w ^= (sparse_word() & ~1ULL);
        words[i] = w;
      }
      simulate_words();

      double best_score = -1.0;
      int best_lane = 0;
      for (int lane = 0; lane < 64; ++lane) {
        double score = 0.0;
        for (std::size_t i = 0; i < n_rare; ++i) {
          const bool v = (eval_buf.word(rare_nets[i].net, 0) >> lane) & 1ULL;
          if (v == rare_nets[i].rare_value)
            score += base_weight[i] /
                     (1.0 + static_cast<double>(activation_counts[i]));
        }
        if (score > best_score) {
          best_score = score;
          best_lane = lane;
        }
      }
      if (best_lane != 0 && best_score > current_score) {
        for (std::size_t i = 0; i < n_inputs; ++i)
          current.set(i, (words[i] >> best_lane) & 1ULL);
      }
      current_score = std::max(current_score, best_score);
    }

    // Final tally for the emitted pattern: broadcast it across all lanes via
    // one more incremental pass and read lane 0.
    for (std::size_t i = 0; i < n_inputs; ++i)
      words[i] = current.test(i) ? ~0ULL : 0ULL;
    simulate_words();
    for (std::size_t i = 0; i < n_rare; ++i)
      if (((eval_buf.word(rare_nets[i].net, 0) & 1ULL) != 0) == rare_nets[i].rare_value)
        ++activation_counts[i];
    result.patterns.push(current);
    result.pattern_scores.push_back(current_score);
  }
  return result;
}

}  // namespace deterrent::baselines

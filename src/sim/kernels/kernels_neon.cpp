// NEON backend: 128-bit registers, 2 value words per operation. NEON is
// architecturally mandatory on aarch64, so no extra compile flag is needed —
// the TU simply compiles to a nullptr factory on non-ARM targets.
//
// Validated against the scalar reference by the same differential suite as
// the x86 backends; hardware soak on a real ARM server is a noted follow-on
// in ROADMAP.md.
#include "sim/kernels/kernel_table.hpp"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)

#include <arm_neon.h>

#include "sim/kernels/kernels_impl.hpp"

namespace deterrent::sim::kernels {
namespace {

struct NeonVec {
  static constexpr std::size_t lanes = 2;
  using Reg = uint64x2_t;
  static Reg load(const std::uint64_t* p) { return vld1q_u64(p); }
  static void store(std::uint64_t* p, Reg v) { vst1q_u64(p, v); }
  static Reg zero() { return vdupq_n_u64(0); }
  static Reg ones() { return vdupq_n_u64(~0ULL); }
  static Reg and_(Reg a, Reg b) { return vandq_u64(a, b); }
  static Reg or_(Reg a, Reg b) { return vorrq_u64(a, b); }
  static Reg xor_(Reg a, Reg b) { return veorq_u64(a, b); }
  static Reg not_(Reg a) { return veorq_u64(a, ones()); }
};

// constinit for uniformity with the x86 backends (NEON is architecturally
// mandatory on aarch64, so there is no SIGILL hazard here — see
// kernels_avx512.cpp for why the x86 TUs require it).
constinit const KernelTable kTable{Isa::Neon, "neon",
                                   &run_program_entry<NeonVec>,
                                   &eval_op_for_entry<NeonVec>};

}  // namespace

const KernelTable* neon_table() { return &kTable; }

}  // namespace deterrent::sim::kernels

#else  // !NEON

namespace deterrent::sim::kernels {
const KernelTable* neon_table() { return nullptr; }
}  // namespace deterrent::sim::kernels

#endif

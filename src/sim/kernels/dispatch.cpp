#include "sim/kernels/dispatch.hpp"

#include <cstdlib>
#include <string>

#include "util/assert.hpp"

namespace deterrent::sim::kernels {

namespace {

const KernelTable* table_or_null(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return scalar_table();
    case Isa::Neon: return neon_table();
    case Isa::Avx2: return avx2_table();
    case Isa::Avx512: return avx512_table();
  }
  return nullptr;
}

/// Can the running CPU execute this backend's instructions? Separate from
/// isa_compiled: a binary built with all x86 backends still must not hand
/// out the AVX-512 table on an AVX2-only host. __builtin_cpu_supports (GCC /
/// Clang) includes the OS XSAVE state check, so "supported" really means
/// "executable right now".
bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::Scalar:
      return true;
    case Isa::Avx2:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::Avx512:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
    case Isa::Neon:
#if defined(__aarch64__)
      return true;  // NEON is architecturally mandatory on aarch64
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::Scalar: return "scalar";
    case Isa::Neon: return "neon";
    case Isa::Avx2: return "avx2";
    case Isa::Avx512: return "avx512";
  }
  return "?";
}

std::optional<Isa> parse_isa(std::string_view name) {
  if (name == "scalar") return Isa::Scalar;
  if (name == "neon") return Isa::Neon;
  if (name == "avx2") return Isa::Avx2;
  if (name == "avx512") return Isa::Avx512;
  return std::nullopt;
}

bool isa_compiled(Isa isa) { return table_or_null(isa) != nullptr; }

bool isa_supported(Isa isa) { return isa_compiled(isa) && cpu_supports(isa); }

std::vector<Isa> supported_isas() {
  std::vector<Isa> out;
  for (const Isa isa : {Isa::Scalar, Isa::Neon, Isa::Avx2, Isa::Avx512})
    if (isa_supported(isa)) out.push_back(isa);
  return out;
}

Isa best_isa() {
  Isa best = Isa::Scalar;
  for (const Isa isa : {Isa::Neon, Isa::Avx2, Isa::Avx512})
    if (isa_supported(isa)) best = isa;
  return best;
}

const KernelTable& kernel_table(Isa isa) {
  const KernelTable* table = table_or_null(isa);
  if (table == nullptr)
    throw Error(std::string("simulation backend '") + to_string(isa) +
                "' is not compiled into this binary");
  if (!cpu_supports(isa))
    throw Error(std::string("simulation backend '") + to_string(isa) +
                "' is not supported by this CPU");
  return *table;
}

const KernelTable& select_kernel_table(std::optional<Isa> forced) {
  if (forced.has_value()) return kernel_table(*forced);
  const char* env = std::getenv(kForceIsaEnv);
  if (env != nullptr && *env != '\0') {
    const auto parsed = parse_isa(env);
    if (!parsed.has_value())
      throw Error(std::string(kForceIsaEnv) + ": unknown ISA '" + env +
                  "' (expected scalar|avx2|avx512|neon)");
    return kernel_table(*parsed);
  }
  return kernel_table(best_isa());
}

}  // namespace deterrent::sim::kernels

#pragma once

#include <cstddef>
#include <cstdint>

// Kernel-table core shared by sim::Engine and the per-ISA backend TUs
// (kernels_scalar/avx2/avx512/neon.cpp). This header is deliberately minimal
// — no standard-library containers, no netlist headers — because the backend
// TUs are compiled with ISA-specific flags and must not instantiate any code
// that could be comdat-folded with copies from normally-compiled TUs (a wide
// vector instruction leaking into shared code would SIGILL on older hosts).
// The full selection API (detection, forcing, string conversion) lives in
// dispatch.hpp, which only normally-compiled TUs include.

namespace deterrent::sim::kernels {

/// Compiled opcodes of the engine's flat evaluation program. Arity-1 n-ary
/// gates fold to Buf/Not at compile time; arity-2 gates use the two-operand
/// forms; wider gates fall back to the *N forms, which read their fanins
/// from the CSR pool.
enum class Op : std::uint8_t {
  Const0,
  Const1,
  Buf,
  Not,
  And2,
  Nand2,
  Or2,
  Nor2,
  Xor2,
  Xnor2,
  AndN,
  NandN,
  OrN,
  NorN,
  XorN,
  XnorN,
};

/// Instruction-set flavors a kernel table can be built for. The numeric
/// order is the preference order of best_isa(): wider is better.
enum class Isa : std::uint8_t {
  Scalar = 0,  ///< plain std::uint64_t loops (always available)
  Neon = 1,    ///< 128-bit NEON (aarch64)
  Avx2 = 2,    ///< 256-bit AVX2 (x86-64)
  Avx512 = 3,  ///< 512-bit AVX-512F (x86-64)
};

/// Borrowed, read-only view of an Engine's compiled program, in the layout
/// the kernels consume: parallel arrays indexed by program position k, plus
/// the CSR fanin pool for the n-ary ops. Net ids are raw uint32 here so the
/// backend TUs need no netlist headers (Engine static_asserts the match).
struct ProgramView {
  const Op* op = nullptr;
  const std::uint32_t* out = nullptr;          ///< output net per entry
  const std::uint32_t* a = nullptr;            ///< fanin 0, or CSR offset (*N)
  const std::uint32_t* b = nullptr;            ///< fanin 1, or fanin count (*N)
  const std::uint32_t* nary_fanins = nullptr;  ///< CSR pool for *N ops
  std::size_t n_ops = 0;
};

/// A single-op evaluator: evaluates program entry k against `values`,
/// writing the W result words to `out`. Obtained from
/// KernelTable::eval_op_for — see the contract there.
using EvalOpFn = void (*)(const ProgramView& program, std::size_t k,
                          const std::uint64_t* values, std::uint64_t* out,
                          std::size_t n_words);

/// One backend: the full-program sweep loop and a resolver for the single-op
/// evaluator the incremental resimulate walk calls per drained work item.
/// run_program takes the word count at runtime and internally dispatches the
/// common sweep widths (1/2/4/8) to fully-unrolled variants; eval_op_for
/// performs that same width dispatch ONCE, returning an evaluator
/// specialized for the given count — resimulate drains thousands of
/// single-op items at one fixed W, so a per-op width switch would be pure
/// overhead on that hot path. Calling the returned evaluator with a
/// different n_words than it was resolved for is undefined. Value buffers
/// are expected (not required) to be 64-byte aligned — the kernels use
/// unaligned loads, so alignment is a performance contract, never a
/// correctness one.
///
/// Backends are bit-identical by construction: every table implements the
/// same word-level boolean algebra, so evaluate/resimulate results never
/// depend on which ISA executed them (the differential suite enforces this).
struct KernelTable {
  Isa isa = Isa::Scalar;
  const char* name = "scalar";
  void (*run_program)(const ProgramView& program, std::uint64_t* values,
                      std::size_t n_words) = nullptr;
  EvalOpFn (*eval_op_for)(std::size_t n_words) = nullptr;
};

// Backend factories, one per TU. Each returns its table, or nullptr when the
// backend was not compiled in (missing compiler flag or wrong architecture).
// Whether the *CPU* can run a compiled-in backend is a separate, runtime
// question answered by dispatch.hpp — which means these factories are called
// on hosts that CANNOT run the backend. They must therefore be safe on any
// CPU of the target architecture: each table is constinit (initialized at
// compile time, no startup code in the ISA-flagged TU), and the factory body
// is a bare address return. scripts/check_isa_isolation.sh checks the built
// objects for regressions (static initializers, vector instructions in the
// factory).
const KernelTable* scalar_table();
const KernelTable* avx2_table();
const KernelTable* avx512_table();
const KernelTable* neon_table();

}  // namespace deterrent::sim::kernels

#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "sim/kernels/kernel_table.hpp"

namespace deterrent::sim::kernels {

/// Environment variable honored by select_kernel_table() (and therefore by
/// every Engine constructed without an explicit ISA): "scalar", "avx2",
/// "avx512", or "neon". Unset/empty means auto-detect; an unknown value or a
/// backend this host cannot run throws deterrent::Error. Intended for A/B
/// benchmarking and for CI legs that pin the backend.
inline constexpr const char* kForceIsaEnv = "DETERRENT_FORCE_ISA";

const char* to_string(Isa isa);

/// Parses "scalar" / "avx2" / "avx512" / "neon"; nullopt on anything else.
std::optional<Isa> parse_isa(std::string_view name);

/// True when the backend was compiled into this binary (its TU had the
/// required compiler flags / target architecture).
bool isa_compiled(Isa isa);

/// True when the backend is compiled in AND the running CPU can execute it
/// (CPUID feature check on x86; architectural guarantee on aarch64).
bool isa_supported(Isa isa);

/// Every backend this process can actually run, narrowest first (always
/// starts with Scalar). This is what differential tests and the per-ISA
/// bench sweep iterate over.
std::vector<Isa> supported_isas();

/// The widest supported backend — what auto-detection picks. "Best" is a
/// register-width preference, not a measurement: on hosts where 512-bit ops
/// downclock or are double-pumped, avx2 can out-run avx512 by a few percent
/// (the per-ISA rows of BENCH_sim.json show the actual ranking for a host).
/// Width is still the default because it is deterministic and free at
/// engine construction; pin DETERRENT_FORCE_ISA (or pass an explicit Isa)
/// when a measured campaign says otherwise.
Isa best_isa();

/// The kernel table for one backend; throws deterrent::Error when the
/// backend is not compiled in or the CPU lacks the feature.
const KernelTable& kernel_table(Isa isa);

/// Selection used by Engine's constructor: `forced` wins when set, else the
/// DETERRENT_FORCE_ISA environment variable, else best_isa(). Throws
/// deterrent::Error for unknown names and unsupported backends — a forced
/// ISA silently falling back to scalar would invalidate every benchmark
/// comparison made with it.
const KernelTable& select_kernel_table(std::optional<Isa> forced = std::nullopt);

}  // namespace deterrent::sim::kernels

// AVX2 backend: 256-bit registers, 4 value words per operation. This TU is
// compiled with -mavx2 (see the per-source flags in CMakeLists.txt); when the
// flag is unavailable the TU degrades to a nullptr factory and runtime
// dispatch never offers the backend.
#include "sim/kernels/kernel_table.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include "sim/kernels/kernels_impl.hpp"

namespace deterrent::sim::kernels {
namespace {

struct Avx2Vec {
  static constexpr std::size_t lanes = 4;
  using Reg = __m256i;
  static Reg load(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, Reg v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static Reg zero() { return _mm256_setzero_si256(); }
  static Reg ones() { return _mm256_set1_epi64x(-1); }
  static Reg and_(Reg a, Reg b) { return _mm256_and_si256(a, b); }
  static Reg or_(Reg a, Reg b) { return _mm256_or_si256(a, b); }
  static Reg xor_(Reg a, Reg b) { return _mm256_xor_si256(a, b); }
  static Reg not_(Reg a) { return _mm256_xor_si256(a, ones()); }
};

// constinit: the factory runs on every host during ISA detection, so this
// -mavx2 TU must emit no initialization code — see kernels_avx512.cpp.
constinit const KernelTable kTable{Isa::Avx2, "avx2",
                                   &run_program_entry<Avx2Vec>,
                                   &eval_op_for_entry<Avx2Vec>};

}  // namespace

const KernelTable* avx2_table() { return &kTable; }

}  // namespace deterrent::sim::kernels

#else  // !defined(__AVX2__)

namespace deterrent::sim::kernels {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace deterrent::sim::kernels

#endif

// AVX-512 backend: 512-bit registers, 8 value words per operation — the
// engine's default W=8 sweep is a single register per net. This TU is
// compiled with -mavx512f (see the per-source flags in CMakeLists.txt); when
// the flag is unavailable the TU degrades to a nullptr factory and runtime
// dispatch never offers the backend.
//
// Tails (W not a multiple of 8) finish with one k-masked wide op (see the
// masked-tail traits in kernels_impl.hpp) — bit-identical to the scalar tail,
// since masked stores never touch inactive lanes.
#include "sim/kernels/kernel_table.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

#include "sim/kernels/kernels_impl.hpp"

namespace deterrent::sim::kernels {
namespace {

struct Avx512Vec {
  static constexpr std::size_t lanes = 8;
  using Reg = __m512i;
  static Reg load(const std::uint64_t* p) { return _mm512_loadu_si512(p); }
  static void store(std::uint64_t* p, Reg v) { _mm512_storeu_si512(p, v); }
  static Reg zero() { return _mm512_setzero_si512(); }
  static Reg ones() { return _mm512_set1_epi64(-1); }
  static Reg and_(Reg a, Reg b) { return _mm512_and_si512(a, b); }
  static Reg or_(Reg a, Reg b) { return _mm512_or_si512(a, b); }
  static Reg xor_(Reg a, Reg b) { return _mm512_xor_si512(a, b); }
  // NOT via one ternary-logic op (0x55 = ~a) instead of xor-with-ones: saves
  // materializing the all-ones constant in the NAND/NOR/XNOR kernels.
  static Reg not_(Reg a) { return _mm512_ternarylogic_epi64(a, a, a, 0x55); }
  // Masked-tail support: ragged W finishes with one predicated op. Masked
  // loads zero-fill inactive lanes; masked stores leave them untouched.
  using Mask = __mmask8;
  static Mask tail_mask(std::size_t n) {
    return static_cast<Mask>((1u << n) - 1u);
  }
  static Reg mask_load(Mask m, const std::uint64_t* p) {
    return _mm512_maskz_loadu_epi64(m, p);
  }
  static void mask_store(std::uint64_t* p, Mask m, Reg v) {
    _mm512_mask_storeu_epi64(p, m, v);
  }
};

// constinit: the factory below runs on EVERY host during ISA detection
// (isa_compiled is checked before cpu_supports), and this TU is compiled
// with -mavx512f — a dynamic initializer or lazy static-init path emitted
// here could itself contain AVX instructions and SIGILL a pre-AVX host. With
// compile-time initialization the only AVX-512 code in the object sits
// behind the two table function pointers, which dispatch hands out only to
// capable CPUs. scripts/check_isa_isolation.sh verifies this shape in CI.
constinit const KernelTable kTable{Isa::Avx512, "avx512",
                                   &run_program_entry<Avx512Vec>,
                                   &eval_op_for_entry<Avx512Vec>};

}  // namespace

const KernelTable* avx512_table() { return &kTable; }

}  // namespace deterrent::sim::kernels

#else  // !defined(__AVX512F__)

namespace deterrent::sim::kernels {
const KernelTable* avx512_table() { return nullptr; }
}  // namespace deterrent::sim::kernels

#endif

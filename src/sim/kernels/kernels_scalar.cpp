// Scalar backend: plain 64-bit word loops, compiled with the project's base
// flags. Always present — it is the reference every wide backend is checked
// against, the fallback on unknown hosts, and the DETERRENT_FORCE_ISA=scalar
// target for A/B benchmarking.
#include "sim/kernels/kernels_impl.hpp"

namespace deterrent::sim::kernels {
namespace {

constinit const KernelTable kTable{Isa::Scalar, "scalar",
                                   &run_program_entry<ScalarVec>,
                                   &eval_op_for_entry<ScalarVec>};

}  // namespace

const KernelTable* scalar_table() { return &kTable; }

}  // namespace deterrent::sim::kernels

// Scalar backend: plain 64-bit word loops, compiled with the project's base
// flags. Always present — it is the reference every wide backend is checked
// against, the fallback on unknown hosts, and the DETERRENT_FORCE_ISA=scalar
// target for A/B benchmarking.
#include "sim/kernels/kernels_impl.hpp"

namespace deterrent::sim::kernels {

const KernelTable* scalar_table() {
  static const KernelTable table = make_table<ScalarVec>(Isa::Scalar, "scalar");
  return &table;
}

}  // namespace deterrent::sim::kernels

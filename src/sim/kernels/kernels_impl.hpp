#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "sim/kernels/kernel_table.hpp"

// Generic kernel implementation, parameterized over a vector-register traits
// type V (ScalarVec below, or a backend's __m256i/__m512i/uint64x2_t wrapper).
// Included ONLY by the per-ISA backend TUs. Everything sits in an anonymous
// namespace on purpose: those TUs are compiled with ISA-specific flags, and
// internal linkage guarantees none of this code can be merged across TUs by
// the linker — the only way wide instructions are reached is through the
// KernelTable function pointers, which runtime dispatch hands out only on
// hosts that support them. For the same reason each TU's table must be
// constinit (no dynamic initializer, no lazy static-init path): the table
// factories run on every host during ISA detection, before any CPUID check.

namespace deterrent::sim::kernels {
namespace {

/// The width-1 "vector": plain 64-bit words. Doubles as the backend of the
/// scalar table and as the tail handler of every wide backend (W is not
/// always a multiple of the register width).
struct ScalarVec {
  static constexpr std::size_t lanes = 1;
  using Reg = std::uint64_t;
  static Reg load(const std::uint64_t* p) { return *p; }
  static void store(std::uint64_t* p, Reg v) { *p = v; }
  static Reg zero() { return 0; }
  static Reg ones() { return ~0ULL; }
  static Reg and_(Reg a, Reg b) { return a & b; }
  static Reg or_(Reg a, Reg b) { return a | b; }
  static Reg xor_(Reg a, Reg b) { return a ^ b; }
  static Reg not_(Reg a) { return ~a; }
};

/// Detected when the traits type V provides masked-tail support (a Mask type
/// plus tail_mask/mask_load/mask_store): ragged widths W ∉ {lanes, 2·lanes,
/// …} then finish with one predicated wide op instead of a scalar word loop.
/// Masked loads zero inactive lanes and masked stores never touch them, and
/// every kernel here is a pure per-lane bitwise function, so the written
/// words are bit-identical to the scalar tail's.
template <class V, class = void>
struct has_masked_tail : std::false_type {};
template <class V>
struct has_masked_tail<V, std::void_t<typename V::Mask>> : std::true_type {};

// Word-level boolean functors, generic over the vector traits so one functor
// serves both the wide body and the scalar tail of a loop.
struct FBuf {
  template <class V>
  static typename V::Reg go(typename V::Reg a) { return a; }
};
struct FNot {
  template <class V>
  static typename V::Reg go(typename V::Reg a) { return V::not_(a); }
};
struct FAnd {
  template <class V>
  static typename V::Reg go(typename V::Reg a, typename V::Reg b) {
    return V::and_(a, b);
  }
};
struct FNand {
  template <class V>
  static typename V::Reg go(typename V::Reg a, typename V::Reg b) {
    return V::not_(V::and_(a, b));
  }
};
struct FOr {
  template <class V>
  static typename V::Reg go(typename V::Reg a, typename V::Reg b) {
    return V::or_(a, b);
  }
};
struct FNor {
  template <class V>
  static typename V::Reg go(typename V::Reg a, typename V::Reg b) {
    return V::not_(V::or_(a, b));
  }
};
struct FXor {
  template <class V>
  static typename V::Reg go(typename V::Reg a, typename V::Reg b) {
    return V::xor_(a, b);
  }
};
struct FXnor {
  template <class V>
  static typename V::Reg go(typename V::Reg a, typename V::Reg b) {
    return V::not_(V::xor_(a, b));
  }
};

/// out[w] = F(a[w]) over W words: V-wide body, masked or scalar tail.
/// WordCount is either std::integral_constant (compile-time W, fully
/// unrolled) or std::size_t.
template <class V, class F, class WordCount>
inline void map1(const std::uint64_t* a, std::uint64_t* out, WordCount n_words) {
  const std::size_t W = n_words;
  std::size_t w = 0;
  for (; w + V::lanes <= W; w += V::lanes)
    V::store(out + w, F::template go<V>(V::load(a + w)));
  if constexpr (has_masked_tail<V>::value) {
    if (w < W) {
      const typename V::Mask m = V::tail_mask(W - w);
      V::mask_store(out + w, m, F::template go<V>(V::mask_load(m, a + w)));
    }
  } else {
    for (; w < W; ++w) out[w] = F::template go<ScalarVec>(a[w]);
  }
}

/// out[w] = F(a[w], b[w]) over W words.
template <class V, class F, class WordCount>
inline void map2(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
                 WordCount n_words) {
  const std::size_t W = n_words;
  std::size_t w = 0;
  for (; w + V::lanes <= W; w += V::lanes)
    V::store(out + w, F::template go<V>(V::load(a + w), V::load(b + w)));
  if constexpr (has_masked_tail<V>::value) {
    if (w < W) {
      const typename V::Mask m = V::tail_mask(W - w);
      V::mask_store(out + w, m,
                    F::template go<V>(V::mask_load(m, a + w), V::mask_load(m, b + w)));
    }
  } else {
    for (; w < W; ++w) out[w] = F::template go<ScalarVec>(a[w], b[w]);
  }
}

/// N-ary reduction for the CSR ops: out = f0 FAcc f1 FAcc ... (then ~out when
/// Invert). Accumulates in place over the fanin list.
template <class V, class FAcc, bool Invert, class WordCount>
inline void reduce_n(const ProgramView& p, std::size_t k, const std::uint64_t* v,
                     std::uint64_t* out, WordCount n_words) {
  const std::size_t W = n_words;
  const std::uint32_t* f = p.nary_fanins + p.a[k];
  const std::uint32_t cnt = p.b[k];
  map1<V, FBuf>(v + std::size_t{f[0]} * W, out, n_words);
  for (std::uint32_t j = 1; j < cnt; ++j)
    map2<V, FAcc>(out, v + std::size_t{f[j]} * W, out, n_words);
  if constexpr (Invert) map1<V, FNot>(out, out, n_words);
}

/// Evaluates program entry k against the value buffer `v`, writing the W
/// result words to `out`. Aliasing `out` with v's slot for p.out[k] is fine
/// (a combinational gate never reads its own output) and is what the full
/// sweep does; resimulate passes separate scratch so it can compare old and
/// new words for its change cut-off.
template <class V, class WordCount>
inline void eval_op_impl(const ProgramView& p, std::size_t k, const std::uint64_t* v,
                         std::uint64_t* out, WordCount n_words) {
  const std::size_t W = n_words;
  const std::uint64_t* a = v + std::size_t{p.a[k]} * W;
  switch (p.op[k]) {
    case Op::Const0: {
      std::size_t w = 0;
      for (; w + V::lanes <= W; w += V::lanes) V::store(out + w, V::zero());
      if constexpr (has_masked_tail<V>::value) {
        if (w < W) V::mask_store(out + w, V::tail_mask(W - w), V::zero());
      } else {
        for (; w < W; ++w) out[w] = 0;
      }
      break;
    }
    case Op::Const1: {
      std::size_t w = 0;
      for (; w + V::lanes <= W; w += V::lanes) V::store(out + w, V::ones());
      if constexpr (has_masked_tail<V>::value) {
        if (w < W) V::mask_store(out + w, V::tail_mask(W - w), V::ones());
      } else {
        for (; w < W; ++w) out[w] = ~0ULL;
      }
      break;
    }
    case Op::Buf: map1<V, FBuf>(a, out, n_words); break;
    case Op::Not: map1<V, FNot>(a, out, n_words); break;
    case Op::And2: map2<V, FAnd>(a, v + std::size_t{p.b[k]} * W, out, n_words); break;
    case Op::Nand2: map2<V, FNand>(a, v + std::size_t{p.b[k]} * W, out, n_words); break;
    case Op::Or2: map2<V, FOr>(a, v + std::size_t{p.b[k]} * W, out, n_words); break;
    case Op::Nor2: map2<V, FNor>(a, v + std::size_t{p.b[k]} * W, out, n_words); break;
    case Op::Xor2: map2<V, FXor>(a, v + std::size_t{p.b[k]} * W, out, n_words); break;
    case Op::Xnor2: map2<V, FXnor>(a, v + std::size_t{p.b[k]} * W, out, n_words); break;
    case Op::AndN: reduce_n<V, FAnd, false>(p, k, v, out, n_words); break;
    case Op::NandN: reduce_n<V, FAnd, true>(p, k, v, out, n_words); break;
    case Op::OrN: reduce_n<V, FOr, false>(p, k, v, out, n_words); break;
    case Op::NorN: reduce_n<V, FOr, true>(p, k, v, out, n_words); break;
    case Op::XorN: reduce_n<V, FXor, false>(p, k, v, out, n_words); break;
    case Op::XnorN: reduce_n<V, FXor, true>(p, k, v, out, n_words); break;
  }
}

/// The full-program sweep: in-place evaluation in levelized program order.
template <class V, class WordCount>
inline void run_program_impl(const ProgramView& p, std::uint64_t* v,
                             WordCount n_words) {
  for (std::size_t k = 0; k < p.n_ops; ++k)
    eval_op_impl<V>(p, k, v, v + std::size_t{p.out[k]} * std::size_t{n_words},
                    n_words);
}

// Exported entry points: dispatch the common sweep widths to compile-time
// variants (fully unrolled inner loops), everything else to the runtime-W
// path. These are what the KernelTable function pointers reference.

template <std::size_t N>
using WC = std::integral_constant<std::size_t, N>;

template <class V>
void run_program_entry(const ProgramView& p, std::uint64_t* v, std::size_t n_words) {
  switch (n_words) {
    case 1: run_program_impl<V>(p, v, WC<1>{}); break;
    case 2: run_program_impl<V>(p, v, WC<2>{}); break;
    case 4: run_program_impl<V>(p, v, WC<4>{}); break;
    case 8: run_program_impl<V>(p, v, WC<8>{}); break;
    default: run_program_impl<V>(p, v, n_words); break;
  }
}

template <class V, std::size_t N>
void eval_op_fixed(const ProgramView& p, std::size_t k, const std::uint64_t* v,
                   std::uint64_t* out, std::size_t /*n_words*/) {
  eval_op_impl<V>(p, k, v, out, WC<N>{});
}

template <class V>
void eval_op_any(const ProgramView& p, std::size_t k, const std::uint64_t* v,
                 std::uint64_t* out, std::size_t n_words) {
  eval_op_impl<V>(p, k, v, out, n_words);
}

/// Resolves the width dispatch once per resimulate call instead of once per
/// drained op (the walk evaluates thousands of single ops at one fixed W).
/// The fixed-width evaluators ignore their n_words argument — the caller
/// promised it at resolution time.
template <class V>
EvalOpFn eval_op_for_entry(std::size_t n_words) {
  switch (n_words) {
    case 1: return &eval_op_fixed<V, 1>;
    case 2: return &eval_op_fixed<V, 2>;
    case 4: return &eval_op_fixed<V, 4>;
    case 8: return &eval_op_fixed<V, 8>;
    default: return &eval_op_any<V>;
  }
}

}  // namespace
}  // namespace deterrent::sim::kernels

#include "sim/sequential_engine.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace deterrent::sim {

using netlist::NetId;

SequentialEngine::SequentialEngine(const netlist::Netlist& netlist,
                                   std::size_t n_traces,
                                   std::optional<kernels::Isa> forced_isa)
    : netlist_(&netlist),
      scan_(netlist::make_full_scan(netlist)),
      engine_(scan_.comb, forced_isa),
      traces_(n_traces),
      words_((n_traces + 63) / 64) {
  DETERRENT_ASSERT(n_traces >= 1, "SequentialEngine: need at least one trace");

  // The scan view's input list merges {original PIs} ∪ {DFF Q nets} in net-id
  // order; resolve each side's resimulate ordinals once.
  const auto scan_inputs = scan_.comb.inputs();
  pi_ordinal_.reserve(netlist.inputs().size());
  ff_ordinal_.reserve(scan_.pseudo_inputs.size());
  q_to_dff_.assign(netlist.net_count(), kNotDff);
  std::size_t ff = 0;
  for (std::size_t ordinal = 0; ordinal < scan_inputs.size(); ++ordinal) {
    const NetId net = scan_inputs[ordinal];
    if (ff < scan_.pseudo_inputs.size() && scan_.pseudo_inputs[ff] == net) {
      q_to_dff_[net] = static_cast<std::uint32_t>(ff);
      ff_ordinal_.push_back(static_cast<std::uint32_t>(ordinal));
      ++ff;
    } else {
      pi_ordinal_.push_back(static_cast<std::uint32_t>(ordinal));
    }
  }
  DETERRENT_ASSERT(pi_ordinal_.size() == netlist.inputs().size() &&
                       ff_ordinal_.size() == scan_.pseudo_inputs.size(),
                   "SequentialEngine: scan input mapping mismatch");

  state_.resize(scan_.pseudo_inputs.size() * words_);
  reset(false);
}

void SequentialEngine::reset(bool value) {
  std::fill(state_.begin(), state_.end(), value ? ~0ULL : 0ULL);
  primed_ = false;  // the next step() evaluates from scratch
  cycles_ = 0;
  gate_evals_ = 0;
}

std::size_t SequentialEngine::dff_index(NetId q) const {
  DETERRENT_ASSERT(q < q_to_dff_.size() && q_to_dff_[q] != kNotDff,
                   "SequentialEngine: net is not a DFF output");
  return q_to_dff_[q];
}

void SequentialEngine::set_state(NetId q, std::size_t trace, bool value) {
  DETERRENT_ASSERT(trace < traces_, "SequentialEngine::set_state: trace out of range");
  std::uint64_t& word = state_[dff_index(q) * words_ + (trace >> 6)];
  const std::uint64_t bit = 1ULL << (trace & 63);
  word = value ? (word | bit) : (word & ~bit);
}

bool SequentialEngine::state(NetId q, std::size_t trace) const {
  DETERRENT_ASSERT(trace < traces_, "SequentialEngine::state: trace out of range");
  return (state_[dff_index(q) * words_ + (trace >> 6)] >> (trace & 63)) & 1ULL;
}

std::span<const std::uint64_t> SequentialEngine::state_words(NetId q) const {
  return {state_.data() + dff_index(q) * words_, words_};
}

void SequentialEngine::set_state_words(NetId q, std::span<const std::uint64_t> words) {
  DETERRENT_ASSERT(words.size() == words_,
                   "SequentialEngine::set_state_words: word count mismatch");
  std::copy(words.begin(), words.end(), state_.data() + dff_index(q) * words_);
}

void SequentialEngine::step(std::span<const std::uint64_t> input_words) {
  const auto pis = netlist_->inputs();
  DETERRENT_ASSERT(input_words.size() == pis.size() * words_,
                   "SequentialEngine::step: input word count mismatch "
                   "(primary inputs of the original design × words())");
  const auto scan_inputs = scan_.comb.inputs();

  if (!primed_) {
    // First cycle after construction/reset: stage the combined (PI ∪ Q)
    // assignment in scan-input order and run one full sweep.
    combined_scratch_.resize(scan_inputs.size() * words_);
    for (std::size_t i = 0; i < pis.size(); ++i)
      std::copy_n(input_words.data() + i * words_, words_,
                  combined_scratch_.data() + std::size_t{pi_ordinal_[i]} * words_);
    for (std::size_t k = 0; k < ff_ordinal_.size(); ++k)
      std::copy_n(state_.data() + k * words_, words_,
                  combined_scratch_.data() + std::size_t{ff_ordinal_[k]} * words_);
    engine_.evaluate(buf_, combined_scratch_, words_);
    gate_evals_ += scan_.comb.gate_count();
    primed_ = true;
  } else {
    // Dirty set = (changed PIs) ∪ (changed Q words). Pre-filtering against
    // the buffer matters: resimulate's dense-fallback heuristic counts
    // *submitted* entries, so handing it every input each cycle would force
    // a full sweep even for a perfectly steady cycle.
    dirty_scratch_.clear();
    dirty_words_scratch_.clear();
    const auto push_if_changed = [&](std::uint32_t ordinal, const std::uint64_t* words) {
      const auto current = buf_.net(scan_inputs[ordinal]);
      if (std::equal(words, words + words_, current.begin())) return;
      dirty_scratch_.push_back(ordinal);
      dirty_words_scratch_.insert(dirty_words_scratch_.end(), words, words + words_);
    };
    for (std::size_t i = 0; i < pis.size(); ++i)
      push_if_changed(pi_ordinal_[i], input_words.data() + i * words_);
    for (std::size_t k = 0; k < ff_ordinal_.size(); ++k)
      push_if_changed(ff_ordinal_[k], state_.data() + k * words_);
    gate_evals_ +=
        engine_.resimulate(buf_, dirty_scratch_, dirty_words_scratch_, words_);
  }

  // Clock edge: snapshot every D row as the pending Q state. The snapshot
  // (rather than aliasing the buffer) preserves the register delay when a D
  // net is itself another flip-flop's Q net.
  for (std::size_t k = 0; k < ff_ordinal_.size(); ++k) {
    const auto d = buf_.net(scan_.pseudo_outputs[k]);
    std::copy(d.begin(), d.end(), state_.data() + k * words_);
  }
  ++cycles_;
}

void SequentialEngine::step_broadcast(const Pattern& inputs) {
  const auto pis = netlist_->inputs();
  DETERRENT_ASSERT(inputs.size() == pis.size(),
                   "SequentialEngine::step_broadcast: input arity mismatch");
  broadcast_scratch_.resize(pis.size() * words_);
  for (std::size_t i = 0; i < pis.size(); ++i)
    std::fill_n(broadcast_scratch_.data() + i * words_, words_,
                inputs.test(i) ? ~0ULL : 0ULL);
  step({broadcast_scratch_.data(), pis.size() * words_});
}

bool SequentialEngine::value(NetId net, std::size_t trace) const {
  DETERRENT_ASSERT(trace < traces_, "SequentialEngine::value: trace out of range");
  DETERRENT_ASSERT(cycles_ > 0, "SequentialEngine::value: no cycle stepped yet");
  return (buf_.word(net, trace >> 6) >> (trace & 63)) & 1ULL;
}

std::span<const std::uint64_t> SequentialEngine::value_words(NetId net) const {
  DETERRENT_ASSERT(cycles_ > 0, "SequentialEngine::value_words: no cycle stepped yet");
  return buf_.net(net);
}

}  // namespace deterrent::sim

#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <type_traits>

#include "util/assert.hpp"

namespace deterrent::sim {

using netlist::GateType;
using netlist::NetId;

static_assert(std::is_same_v<netlist::NetId, std::uint32_t>,
              "kernels::ProgramView borrows the NetId arrays as raw uint32");

Engine::Engine(const netlist::Netlist& netlist, std::optional<kernels::Isa> forced_isa)
    : netlist_(&netlist), kernels_(&kernels::select_kernel_table(forced_isa)) {
  if (netlist.is_sequential())
    throw Error(
        "Engine requires a combinational netlist; apply make_full_scan to "
        "sequential designs first");

  op_.reserve(netlist.gate_count());
  out_.reserve(netlist.gate_count());
  a_.reserve(netlist.gate_count());
  b_.reserve(netlist.gate_count());

  for (const NetId id : netlist.topo_order()) {
    const GateType type = netlist.type(id);
    if (type == GateType::Input) continue;
    const auto fanins = netlist.fanins(id);

    Op op;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    switch (type) {
      case GateType::Const0:
        op = Op::Const0;
        break;
      case GateType::Const1:
        op = Op::Const1;
        break;
      case GateType::Buf:
        op = Op::Buf;
        a = fanins[0];
        break;
      case GateType::Not:
        op = Op::Not;
        a = fanins[0];
        break;
      case GateType::And:
      case GateType::Nand:
      case GateType::Or:
      case GateType::Nor:
      case GateType::Xor:
      case GateType::Xnor: {
        const bool inverted = type == GateType::Nand || type == GateType::Nor ||
                              type == GateType::Xnor;
        if (fanins.size() == 1) {
          // Degenerate n-ary gate: AND(x) == x, NAND(x) == ~x, and likewise
          // for the other families.
          op = inverted ? Op::Not : Op::Buf;
          a = fanins[0];
        } else if (fanins.size() == 2) {
          switch (type) {
            case GateType::And: op = Op::And2; break;
            case GateType::Nand: op = Op::Nand2; break;
            case GateType::Or: op = Op::Or2; break;
            case GateType::Nor: op = Op::Nor2; break;
            case GateType::Xor: op = Op::Xor2; break;
            default: op = Op::Xnor2; break;
          }
          a = fanins[0];
          b = fanins[1];
        } else {
          switch (type) {
            case GateType::And: op = Op::AndN; break;
            case GateType::Nand: op = Op::NandN; break;
            case GateType::Or: op = Op::OrN; break;
            case GateType::Nor: op = Op::NorN; break;
            case GateType::Xor: op = Op::XorN; break;
            default: op = Op::XnorN; break;
          }
          a = static_cast<std::uint32_t>(nary_fanins_.size());
          b = static_cast<std::uint32_t>(fanins.size());
          nary_fanins_.insert(nary_fanins_.end(), fanins.begin(), fanins.end());
        }
        break;
      }
      case GateType::Input:
      case GateType::Dff:
      default:
        DETERRENT_ASSERT(false, "unreachable: sources are skipped above");
        return;
    }
    op_.push_back(op);
    out_.push_back(id);
    a_.push_back(a);
    b_.push_back(b);
  }

  // Incremental-mode side table: for each net, the program entries it feeds
  // (CSR). In a combinational netlist every fanout of a net is a gate, so
  // this is the netlist's fanout list translated to op indices once, sparing
  // resimulate a per-event netlist indirection.
  std::vector<std::uint32_t> net_to_op(netlist.net_count(), kNoOp);
  for (std::size_t k = 0; k < op_.size(); ++k)
    net_to_op[out_[k]] = static_cast<std::uint32_t>(k);
  fanout_op_offset_.assign(netlist.net_count() + 1, 0);
  for (NetId n = 0; n < netlist.net_count(); ++n) {
    std::uint32_t count = 0;
    for (const NetId fo : netlist.fanouts(n))
      if (net_to_op[fo] != kNoOp) ++count;
    fanout_op_offset_[n + 1] = fanout_op_offset_[n] + count;
  }
  fanout_ops_.resize(fanout_op_offset_.back());
  for (NetId n = 0; n < netlist.net_count(); ++n) {
    std::uint32_t at = fanout_op_offset_[n];
    for (const NetId fo : netlist.fanouts(n))
      if (net_to_op[fo] != kNoOp) fanout_ops_[at++] = net_to_op[fo];
  }
}

kernels::ProgramView Engine::program_view() const {
  kernels::ProgramView view;
  view.op = op_.data();
  view.out = out_.data();
  view.a = a_.data();
  view.b = b_.data();
  view.nary_fanins = nary_fanins_.data();
  view.n_ops = op_.size();
  return view;
}

// The per-op W-word loops live in sim/kernels/ (one table per ISA, selected
// at construction); run() and resimulate() both call through kernels_, so
// full and incremental evaluation are bit-identical per backend by
// construction. Evaluating in place is safe: a combinational gate never
// reads its own output.
void Engine::run(std::uint64_t* values, std::size_t n_words) const {
  kernels_->run_program(program_view(), values, n_words);
}

void Engine::evaluate(EvalBuffer& buf, std::span<const std::uint64_t> input_words,
                      std::size_t n_words) const {
  const auto inputs = netlist_->inputs();
  DETERRENT_ASSERT(n_words >= 1, "evaluate: n_words must be positive");
  DETERRENT_ASSERT(input_words.size() == inputs.size() * n_words,
                   "evaluate: input word count mismatch");
  buf.resize(netlist_->net_count(), n_words);
  std::uint64_t* v = buf.values_.data();
  for (std::size_t i = 0; i < inputs.size(); ++i)
    std::copy_n(input_words.data() + i * n_words, n_words,
                v + std::size_t{inputs[i]} * n_words);
  run(v, n_words);
  buf.owner_ = this;
}

template <typename WordCount>
std::size_t Engine::resimulate_run(EvalBuffer& buf,
                                   std::span<const std::uint32_t> dirty_inputs,
                                   std::span<const std::uint64_t> dirty_words,
                                   WordCount n_words) const {
  const std::size_t W = n_words;
  const auto inputs = netlist_->inputs();
  std::uint64_t* v = buf.values_.data();

  // One bit per program entry; ~n_ops/8 bytes, L1-resident for typical
  // circuits. Bits are cleared as they are drained, so between calls the
  // mask is guaranteed all-zero and never needs a reset.
  const std::size_t mask_words = (op_.size() + 63) / 64;
  if (buf.dirty_ops_.size() < mask_words) buf.dirty_ops_.resize(mask_words, 0);
  std::uint64_t* mask = buf.dirty_ops_.data();

  std::size_t min_word = mask_words, max_word = 0;
  const auto schedule_fanouts = [&](NetId net) {
    const std::uint32_t* fo = fanout_ops_.data() + fanout_op_offset_[net];
    const std::uint32_t* end = fanout_ops_.data() + fanout_op_offset_[net + 1];
    for (; fo != end; ++fo) {
      const std::size_t word = *fo >> 6;
      mask[word] |= 1ULL << (*fo & 63);
      min_word = std::min(min_word, word);
      max_word = std::max(max_word, word);
    }
  };

  for (std::size_t j = 0; j < dirty_inputs.size(); ++j) {
    DETERRENT_ASSERT(dirty_inputs[j] < inputs.size(),
                     "resimulate: dirty input ordinal out of range");
    const NetId net = inputs[dirty_inputs[j]];
    std::uint64_t* dst = v + std::size_t{net} * W;
    const std::uint64_t* src = dirty_words.data() + j * W;
    if (std::equal(src, src + W, dst)) continue;  // no actual change
    std::copy_n(src, W, dst);
    schedule_fanouts(net);
  }

  buf.op_scratch_.resize(W);
  std::uint64_t* tmp = buf.op_scratch_.data();
  const kernels::ProgramView program = program_view();
  // Resolve the width-specialized evaluator once; the drain loop below calls
  // it per op, and a per-op width switch would be pure overhead.
  const kernels::EvalOpFn eval_op = kernels_->eval_op_for(W);
  std::size_t evaluated = 0;
  // Program order is topological, so every op scheduled by a change sits at
  // a strictly larger index: one ascending scan of the mask drains the whole
  // worklist. Re-reading mask[word] after each pop picks up same-word
  // schedules at higher bit positions.
  for (std::size_t word = min_word; word <= max_word && word < mask_words; ++word) {
    while (mask[word] != 0) {
      const int bit = std::countr_zero(mask[word]);
      mask[word] &= mask[word] - 1;
      const std::size_t k = word * 64 + static_cast<std::size_t>(bit);
      eval_op(program, k, v, tmp, W);
      ++evaluated;
      std::uint64_t* out = v + std::size_t{out_[k]} * W;
      if (std::equal(tmp, tmp + W, out)) continue;  // change cut-off
      std::copy_n(tmp, W, out);
      schedule_fanouts(out_[k]);
    }
  }
  return evaluated;
}

std::size_t Engine::resimulate(EvalBuffer& buf,
                               std::span<const std::uint32_t> dirty_inputs,
                               std::span<const std::uint64_t> dirty_words,
                               std::size_t n_words) const {
  const auto inputs = netlist_->inputs();
  DETERRENT_ASSERT(buf.primed_for(*this),
                   "resimulate: buffer was not primed by this engine");
  DETERRENT_ASSERT(buf.words_ == n_words && buf.nets_ == netlist_->net_count(),
                   "resimulate: buffer shape does not match the primed sweep");
  DETERRENT_ASSERT(dirty_words.size() == dirty_inputs.size() * n_words,
                   "resimulate: dirty word count mismatch");

  // Dense fallback: with this many dirty inputs the union cone is almost
  // certainly the whole program, and the per-op scheduling overhead would
  // make the "incremental" path slower than a straight sweep.
  if (dirty_inputs.size() * kDenseFallbackDivisor >= inputs.size()) {
    std::uint64_t* v = buf.values_.data();
    for (std::size_t j = 0; j < dirty_inputs.size(); ++j) {
      DETERRENT_ASSERT(dirty_inputs[j] < inputs.size(),
                       "resimulate: dirty input ordinal out of range");
      std::copy_n(dirty_words.data() + j * n_words, n_words,
                  v + std::size_t{inputs[dirty_inputs[j]]} * n_words);
    }
    run(v, n_words);
    return op_.size();
  }

  switch (n_words) {
    case 1: return resimulate_run(buf, dirty_inputs, dirty_words,
                                  std::integral_constant<std::size_t, 1>{});
    case 2: return resimulate_run(buf, dirty_inputs, dirty_words,
                                  std::integral_constant<std::size_t, 2>{});
    case 4: return resimulate_run(buf, dirty_inputs, dirty_words,
                                  std::integral_constant<std::size_t, 4>{});
    case 8: return resimulate_run(buf, dirty_inputs, dirty_words,
                                  std::integral_constant<std::size_t, 8>{});
    default: return resimulate_run(buf, dirty_inputs, dirty_words, n_words);
  }
}

void Engine::evaluate_blocks(EvalBuffer& buf, const PatternSet& patterns,
                             std::size_t first_block, std::size_t n_words) const {
  const auto inputs = netlist_->inputs();
  DETERRENT_ASSERT(patterns.input_count() == inputs.size(),
                   "evaluate_blocks: pattern arity mismatch");
  DETERRENT_ASSERT(n_words >= 1 && first_block + n_words <= patterns.block_count(),
                   "evaluate_blocks: block range out of bounds");
  buf.resize(netlist_->net_count(), n_words);
  std::uint64_t* v = buf.values_.data();
  for (std::size_t w = 0; w < n_words; ++w) {
    const auto block = patterns.block(first_block + w);
    for (std::size_t i = 0; i < inputs.size(); ++i)
      v[std::size_t{inputs[i]} * n_words + w] = block[i];
  }
  run(v, n_words);
  buf.owner_ = this;
}

void Engine::sweep(const PatternSet& patterns,
                   const std::function<void(std::size_t, std::size_t,
                                            const EvalBuffer&)>& sink,
                   std::size_t words_per_sweep) const {
  sweep_blocks(
      patterns, 0, patterns.block_count(),
      [&](std::size_t first, std::size_t n, const EvalBuffer& buf) {
        sink(first, n, buf);
        return true;
      },
      words_per_sweep);
}

void Engine::sweep_blocks(
    const PatternSet& patterns, std::size_t first_block, std::size_t end_block,
    const std::function<bool(std::size_t, std::size_t, const EvalBuffer&)>& sink,
    std::size_t words_per_sweep) const {
  DETERRENT_ASSERT(words_per_sweep >= 1, "sweep_blocks: words_per_sweep must be positive");
  DETERRENT_ASSERT(end_block <= patterns.block_count(),
                   "sweep_blocks: block range out of bounds");
  EvalBuffer buf;
  for (std::size_t first = first_block; first < end_block; first += words_per_sweep) {
    const std::size_t n = std::min(words_per_sweep, end_block - first);
    evaluate_blocks(buf, patterns, first, n);
    if (!sink(first, n, buf)) return;
  }
}

std::vector<bool> Engine::evaluate_pattern(EvalBuffer& buf,
                                           const Pattern& pattern) const {
  const auto& nl = *netlist_;
  DETERRENT_ASSERT(pattern.size() == nl.inputs().size(),
                   "evaluate_pattern: arity mismatch");
  buf.inputs_scratch_.resize(nl.inputs().size());
  for (std::size_t i = 0; i < buf.inputs_scratch_.size(); ++i)
    buf.inputs_scratch_[i] = pattern.test(i) ? ~0ULL : 0ULL;
  evaluate(buf, buf.inputs_scratch_, 1);
  std::vector<bool> out(nl.net_count());
  for (NetId id = 0; id < nl.net_count(); ++id) out[id] = buf.word(id, 0) & 1ULL;
  return out;
}

}  // namespace deterrent::sim

#pragma once

#include <functional>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/engine.hpp"
#include "sim/pattern.hpp"

namespace deterrent::sim {

/// Single-word convenience facade over sim::Engine: evaluates 64 patterns per
/// pass in one machine word per net. Kept for call sites that genuinely work
/// one block (or one pattern) at a time — greedy mutation loops, SAT model
/// cross-checks. Batch consumers (probability estimation, signatures,
/// coverage) use the Engine directly with multi-word sweeps; cycle-accurate
/// stepping goes through sim::SequentialEngine.
///
/// The netlist must be combinational (apply netlist::make_full_scan to
/// sequential designs first — the standard full-scan assumption of §4.1).
class Simulator {
 public:
  explicit Simulator(const netlist::Netlist& netlist) : engine_(netlist) {}

  const netlist::Netlist& target() const { return engine_.target(); }

  /// The compiled engine, for callers that mix single-block and batch use
  /// without paying a second netlist compilation.
  const Engine& engine() const { return engine_; }

  /// Evaluates one block of 64 patterns. `input_words[i]` carries the 64
  /// values of primary input i (bit b = pattern b). Returns one word per net,
  /// indexed by NetId; the span stays valid until the next simulate call.
  std::span<const std::uint64_t> simulate_block(std::span<const std::uint64_t> input_words) {
    engine_.evaluate(buf_, input_words, 1);
    return buf_.flat();
  }

  /// Runs a whole pattern set block by block. The sink receives the block
  /// index, the lane-validity mask (only bits set in it correspond to real
  /// patterns), and per-net value words.
  void simulate(const PatternSet& patterns,
                const std::function<void(std::size_t block, std::uint64_t valid_mask,
                                         std::span<const std::uint64_t> values)>& sink);

  /// Single-pattern convenience (used for pattern inspection and SAT model
  /// cross-checks); returns one bool per net.
  std::vector<bool> simulate_pattern(const Pattern& pattern) {
    return engine_.evaluate_pattern(buf_, pattern);
  }

 private:
  Engine engine_;
  EvalBuffer buf_;
};

/// Naive recursive-free scalar evaluation over the topological order; the
/// reference oracle the test suite checks the bit-parallel engine against.
std::vector<bool> evaluate_naive(const netlist::Netlist& netlist,
                                 const std::vector<bool>& input_values);

}  // namespace deterrent::sim

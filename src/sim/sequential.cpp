#include "sim/sequential.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace deterrent::sim {

using netlist::NetId;

SequentialSimulator::SequentialSimulator(const netlist::Netlist& netlist)
    : netlist_(&netlist),
      scan_(netlist::make_full_scan(netlist)),
      comb_sim_(scan_.comb),
      state_(scan_.pseudo_inputs.size(), false) {}

void SequentialSimulator::reset(bool value) {
  std::fill(state_.begin(), state_.end(), value);
  cycles_ = 0;
}

void SequentialSimulator::set_state(NetId q, bool value) {
  for (std::size_t i = 0; i < scan_.pseudo_inputs.size(); ++i) {
    if (scan_.pseudo_inputs[i] == q) {
      state_[i] = value;
      return;
    }
  }
  DETERRENT_ASSERT(false, "set_state: net is not a DFF output");
}

bool SequentialSimulator::state(NetId q) const {
  for (std::size_t i = 0; i < scan_.pseudo_inputs.size(); ++i)
    if (scan_.pseudo_inputs[i] == q) return state_[i];
  DETERRENT_ASSERT(false, "state: net is not a DFF output");
  return false;
}

const std::vector<bool>& SequentialSimulator::step(const Pattern& inputs) {
  DETERRENT_ASSERT(inputs.size() == netlist_->inputs().size(),
                   "step: input arity mismatch (primary inputs only)");
  // Scan-view input order = net-id order over {original PIs} ∪ {DFF outputs};
  // build the combined assignment.
  const auto scan_inputs = scan_.comb.inputs();
  Pattern combined(scan_inputs.size());
  std::size_t pi_index = 0;
  std::size_t ff_index = 0;
  for (std::size_t i = 0; i < scan_inputs.size(); ++i) {
    const NetId net = scan_inputs[i];
    if (ff_index < scan_.pseudo_inputs.size() && scan_.pseudo_inputs[ff_index] == net) {
      combined.set(i, state_[ff_index]);
      ++ff_index;
    } else {
      combined.set(i, inputs.test(pi_index));
      ++pi_index;
    }
  }
  DETERRENT_ASSERT(pi_index == inputs.size() && ff_index == state_.size(),
                   "step: input mapping mismatch");

  values_ = comb_sim_.simulate_pattern(combined);

  // Clock edge: every Q takes its D value.
  for (std::size_t i = 0; i < scan_.pseudo_inputs.size(); ++i)
    state_[i] = values_[scan_.pseudo_outputs[i]];
  ++cycles_;
  return values_;
}

}  // namespace deterrent::sim

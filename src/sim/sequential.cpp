#include "sim/sequential.hpp"

namespace deterrent::sim {

const util::BitVec& SequentialSimulator::step(const Pattern& inputs) {
  engine_.step_broadcast(inputs);
  const std::size_t nets = target().net_count();
  if (values_.size() != nets) values_ = util::BitVec(nets);
  // Trace 0 is bit lane 0 of every net's word 0; repack 64 nets per output
  // word instead of a bit-at-a-time loop.
  const EvalBuffer& buf = engine_.values();
  for (std::size_t word = 0; word * 64 < nets; ++word) {
    const std::size_t hi = std::min<std::size_t>(nets, word * 64 + 64);
    std::uint64_t packed = 0;
    for (std::size_t net = word * 64; net < hi; ++net)
      packed |= (buf.word(static_cast<netlist::NetId>(net), 0) & 1ULL)
                << (net & 63);
    values_.set_word(word, packed);
  }
  return values_;
}

}  // namespace deterrent::sim

#include <algorithm>
#include <memory>

#include "sim/simulator.hpp"

#include "util/assert.hpp"

namespace deterrent::sim {

using netlist::GateType;
using netlist::NetId;

void Simulator::simulate(
    const PatternSet& patterns,
    const std::function<void(std::size_t, std::uint64_t, std::span<const std::uint64_t>)>&
        sink) {
  DETERRENT_ASSERT(patterns.input_count() == target().inputs().size(),
                   "simulate: pattern arity mismatch");
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    auto values = simulate_block(patterns.block(b));
    sink(b, patterns.valid_mask(b), values);
  }
}

std::vector<bool> evaluate_naive(const netlist::Netlist& netlist,
                                 const std::vector<bool>& input_values) {
  DETERRENT_ASSERT(input_values.size() == netlist.inputs().size(),
                   "evaluate_naive: arity mismatch");
  if (netlist.is_sequential())
    throw Error("evaluate_naive requires a combinational netlist");

  std::vector<bool> values(netlist.net_count(), false);
  for (std::size_t i = 0; i < input_values.size(); ++i)
    values[netlist.inputs()[i]] = input_values[i];

  // eval_bool needs contiguous bools; std::vector<bool> is bit-packed, so use
  // a plain array grown on demand (amortized — no per-call whole-netlist
  // arity scan).
  std::size_t capacity = 8;
  auto fanin_vals = std::make_unique<bool[]>(capacity);

  for (NetId id : netlist.topo_order()) {
    const GateType type = netlist.type(id);
    if (type == GateType::Input) continue;
    const auto fanins = netlist.fanins(id);
    if (fanins.size() > capacity) {
      capacity = std::max(capacity * 2, fanins.size());
      fanin_vals = std::make_unique<bool[]>(capacity);
    }
    for (std::size_t k = 0; k < fanins.size(); ++k) fanin_vals[k] = values[fanins[k]];
    values[id] =
        netlist::eval_bool(type, std::span<const bool>(fanin_vals.get(), fanins.size()));
  }
  return values;
}

}  // namespace deterrent::sim

#include <algorithm>
#include <memory>

#include "sim/simulator.hpp"

#include "util/assert.hpp"

namespace deterrent::sim {

using netlist::GateType;
using netlist::NetId;

Simulator::Simulator(const netlist::Netlist& netlist) : netlist_(&netlist) {
  if (netlist.is_sequential())
    throw Error(
        "Simulator requires a combinational netlist; apply make_full_scan to "
        "sequential designs first");
  values_.resize(netlist.net_count(), 0);
}

std::span<const std::uint64_t> Simulator::simulate_block(
    std::span<const std::uint64_t> input_words) {
  const auto& nl = *netlist_;
  DETERRENT_ASSERT(input_words.size() == nl.inputs().size(),
                   "simulate_block: input word count mismatch");
  for (std::size_t i = 0; i < input_words.size(); ++i)
    values_[nl.inputs()[i]] = input_words[i];

  for (NetId id : nl.topo_order()) {
    const GateType type = nl.type(id);
    if (type == GateType::Input) continue;
    const auto fanins = nl.fanins(id);
    scratch_.resize(fanins.size());
    for (std::size_t k = 0; k < fanins.size(); ++k) scratch_[k] = values_[fanins[k]];
    values_[id] = netlist::eval_word(type, scratch_);
  }
  return values_;
}

void Simulator::simulate(
    const PatternSet& patterns,
    const std::function<void(std::size_t, std::uint64_t, std::span<const std::uint64_t>)>&
        sink) {
  DETERRENT_ASSERT(patterns.input_count() == netlist_->inputs().size(),
                   "simulate: pattern arity mismatch");
  for (std::size_t b = 0; b < patterns.block_count(); ++b) {
    auto values = simulate_block(patterns.block(b));
    sink(b, patterns.valid_mask(b), values);
  }
}

std::vector<bool> Simulator::simulate_pattern(const Pattern& pattern) {
  const auto& nl = *netlist_;
  DETERRENT_ASSERT(pattern.size() == nl.inputs().size(),
                   "simulate_pattern: arity mismatch");
  std::vector<std::uint64_t> words(nl.inputs().size());
  for (std::size_t i = 0; i < words.size(); ++i) words[i] = pattern.test(i) ? ~0ULL : 0ULL;
  auto values = simulate_block(words);
  std::vector<bool> out(nl.net_count());
  for (NetId id = 0; id < nl.net_count(); ++id) out[id] = values[id] & 1ULL;
  return out;
}

std::vector<bool> evaluate_naive(const netlist::Netlist& netlist,
                                 const std::vector<bool>& input_values) {
  DETERRENT_ASSERT(input_values.size() == netlist.inputs().size(),
                   "evaluate_naive: arity mismatch");
  if (netlist.is_sequential())
    throw Error("evaluate_naive requires a combinational netlist");

  std::vector<bool> values(netlist.net_count(), false);
  for (std::size_t i = 0; i < input_values.size(); ++i)
    values[netlist.inputs()[i]] = input_values[i];

  // eval_bool needs contiguous bools; std::vector<bool> is bit-packed, so use
  // a plain array sized to the widest gate.
  std::size_t max_arity = 1;
  for (NetId id = 0; id < netlist.net_count(); ++id)
    max_arity = std::max(max_arity, netlist.fanins(id).size());
  const auto fanin_vals = std::make_unique<bool[]>(max_arity);

  for (NetId id : netlist.topo_order()) {
    const GateType type = netlist.type(id);
    if (type == GateType::Input) continue;
    const auto fanins = netlist.fanins(id);
    for (std::size_t k = 0; k < fanins.size(); ++k) fanin_vals[k] = values[fanins[k]];
    values[id] =
        netlist::eval_bool(type, std::span<const bool>(fanin_vals.get(), fanins.size()));
  }
  return values;
}

}  // namespace deterrent::sim

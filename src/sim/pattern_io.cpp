#include "sim/pattern_io.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace deterrent::sim {

void write_patterns(const PatternSet& patterns, std::ostream& out) {
  out << "# deterrent patterns inputs=" << patterns.input_count()
      << " count=" << patterns.pattern_count() << "\n";
  for (std::size_t p = 0; p < patterns.pattern_count(); ++p) {
    for (std::size_t i = 0; i < patterns.input_count(); ++i)
      out << (patterns.bit(p, i) ? '1' : '0');
    out << '\n';
  }
}

std::string write_patterns_string(const PatternSet& patterns) {
  std::ostringstream oss;
  write_patterns(patterns, oss);
  return oss.str();
}

void write_patterns_file(const PatternSet& patterns, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open file for writing: " + path);
  write_patterns(patterns, out);
}

PatternSet read_patterns(std::istream& in) {
  PatternSet set;
  std::string line;
  std::size_t line_no = 0;
  bool first_row = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    if (first_row) {
      set = PatternSet(line.size());
      first_row = false;
    } else if (line.size() != set.input_count()) {
      throw Error("pattern file line " + std::to_string(line_no) +
                  ": width mismatch (expected " + std::to_string(set.input_count()) +
                  " bits, got " + std::to_string(line.size()) + ")");
    }
    Pattern pattern(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '1')
        pattern.set(i);
      else if (line[i] != '0')
        throw Error("pattern file line " + std::to_string(line_no) +
                    ": invalid character '" + std::string(1, line[i]) + "'");
    }
    set.push(pattern);
  }
  return set;
}

PatternSet read_patterns_string(const std::string& text) {
  std::istringstream iss(text);
  return read_patterns(iss);
}

PatternSet read_patterns_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open pattern file: " + path);
  return read_patterns(in);
}

}  // namespace deterrent::sim

#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/pattern.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::sim {

/// Per-net signal statistics from logic simulation: how often each net
/// evaluated to 1 (step ❶ of the paper's architecture, Figure 4).
struct SignalStats {
  std::size_t pattern_count = 0;
  std::vector<std::size_t> ones;  ///< indexed by NetId

  double prob_one(netlist::NetId net) const {
    return pattern_count ? static_cast<double>(ones[net]) / static_cast<double>(pattern_count)
                         : 0.0;
  }
};

/// Estimates signal probabilities with `pattern_count` uniform random
/// patterns. When a pool is given, blocks are distributed across it (each
/// worker owns a private Simulator); results are deterministic for a given
/// seed regardless of thread count.
SignalStats estimate_signal_stats(const netlist::Netlist& netlist,
                                  std::size_t pattern_count, util::Rng& rng,
                                  util::ThreadPool* pool = nullptr);

/// Signal statistics under a *given* pattern set (used by MERO-style counting
/// and by tests).
SignalStats signal_stats_for_patterns(const netlist::Netlist& netlist,
                                      const PatternSet& patterns);

/// Exact probabilities by exhaustive input enumeration. Only feasible for
/// small circuits (input_count <= 24); the test suite uses it as ground truth
/// for the estimator.
SignalStats exact_signal_stats(const netlist::Netlist& netlist);

}  // namespace deterrent::sim

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netlist/scan.hpp"
#include "sim/engine.hpp"
#include "sim/pattern.hpp"

namespace deterrent::sim {

/// Event-driven multi-trace sequential simulator built on the compiled
/// sim::Engine.
///
/// The scan-cut combinational cone is compiled once (netlist::make_full_scan,
/// so net ids are identical to the original design's); flip-flop state lives
/// in the W value words of the Q pseudo-input rows of one EvalBuffer, where
/// bit lane t of every word-column carries trace t. All trace_count() traces
/// therefore step one clock cycle in lock-step per step() call — each trace
/// has its own primary-input stimulus, its own reset state, and its own
/// trajectory, at the cost of one W-word sweep instead of trace_count()
/// scalar ones.
///
/// Between cycles the engine does not re-run the whole program: the dirty
/// input set of Engine::resimulate is (primary inputs whose stimulus words
/// changed) ∪ (flip-flops whose Q words changed at the clock edge), so a
/// steady-state cycle — a program loop on the MIPS16 core, a dormant trojan
/// under near-constant stimulus — costs only the fanout cones of the few
/// nets that actually moved. When ≥1/4 of the scan-view inputs are dirty,
/// resimulate's dense fallback runs one full sweep instead; either way the
/// value buffer is bit-identical to a from-scratch evaluation of the cycle.
///
/// SequentialSimulator (sim/sequential.hpp) survives as the verified
/// single-trace facade over this class.
class SequentialEngine {
 public:
  /// Compiles the full-scan view of `netlist` (which may be combinational —
  /// then there is no state and step() is a batched evaluation). `n_traces`
  /// independent traces run in lock-step; the word width is
  /// ceil(n_traces / 64) and ragged lane tails are simulated but unobservable
  /// through the per-trace accessors. `forced_isa` pins the kernel backend
  /// exactly as for sim::Engine.
  explicit SequentialEngine(const netlist::Netlist& netlist, std::size_t n_traces = 64,
                            std::optional<kernels::Isa> forced_isa = std::nullopt);

  /// The original (possibly sequential) design. Net ids in every accessor
  /// refer to this netlist; the scan transform preserves them.
  const netlist::Netlist& target() const { return *netlist_; }

  /// The compiled combinational engine (scan view), for callers that mix
  /// cycle stepping with batch sweeps without a second compilation.
  const Engine& engine() const { return engine_; }

  std::size_t trace_count() const { return traces_; }
  /// Value words per net per cycle: ceil(trace_count() / 64).
  std::size_t words() const { return words_; }
  std::size_t dff_count() const { return scan_.pseudo_inputs.size(); }
  std::uint64_t cycle_count() const { return cycles_; }

  /// Cumulative gate evaluations since construction/reset() — full sweeps
  /// count the whole program, resimulated cycles count only their cones.
  /// The activity statistic behind the bench's gate-evals-per-cycle row.
  std::uint64_t gate_evals() const { return gate_evals_; }

  /// Sets every flip-flop of every trace to `value` and restarts the cycle
  /// counter. The next step() re-evaluates from scratch (full sweep).
  void reset(bool value = false);

  /// State of one flip-flop (by its Q net id) in one trace: the value Q
  /// takes at the next step(), i.e. after the most recent clock edge.
  void set_state(netlist::NetId q, std::size_t trace, bool value);
  bool state(netlist::NetId q, std::size_t trace) const;

  /// All trace lanes of one flip-flop's pending state, word w = traces
  /// [w*64, w*64+64). Writable form overwrites all lanes at once (bulk trace
  /// initialization without 64×W set_state calls).
  std::span<const std::uint64_t> state_words(netlist::NetId q) const;
  void set_state_words(netlist::NetId q, std::span<const std::uint64_t> words);

  /// Applies one clock cycle to all traces in lock-step. `input_words` is
  /// input-major over the original design's primary inputs: word w of input
  /// i at [i * words() + w], bit lane t = trace t's stimulus. Evaluates the
  /// combinational cone (incrementally against the previous cycle when
  /// possible), then clocks every Q <= D. Cycle values stay readable via
  /// value()/value_words() until the next step()/reset().
  void step(std::span<const std::uint64_t> input_words);

  /// Broadcast convenience: every trace receives the same single-pattern
  /// stimulus this cycle (traces still diverge through their states).
  void step_broadcast(const Pattern& inputs);

  /// Value of `net` in `trace` for the most recent cycle (pre-clock-edge,
  /// like SequentialSimulator::values()). Valid only after a step().
  bool value(netlist::NetId net, std::size_t trace) const;

  /// The words() value words of `net` for the most recent cycle.
  std::span<const std::uint64_t> value_words(netlist::NetId net) const;

  /// The full value buffer of the most recent cycle (net-major, stride
  /// words()) — for bulk consumers like toggle counting.
  const EvalBuffer& values() const { return buf_; }

 private:
  std::size_t dff_index(netlist::NetId q) const;

  static constexpr std::uint32_t kNotDff = 0xffffffffu;

  const netlist::Netlist* netlist_;
  netlist::ScanView scan_;
  Engine engine_;  // compiled over scan_.comb
  std::size_t traces_;
  std::size_t words_;
  std::vector<std::uint32_t> pi_ordinal_;  // PI index -> scan-view input ordinal
  std::vector<std::uint32_t> ff_ordinal_;  // DFF index -> scan-view input ordinal
  std::vector<std::uint32_t> q_to_dff_;    // net id -> DFF index (kNotDff otherwise)
  /// Pending Q state, DFF-major W words per flip-flop: what each Q feeds into
  /// the *next* cycle. Captured from the D rows at the clock edge — a
  /// snapshot is required, since with directly chained flip-flops a D net is
  /// another flip-flop's Q net and in-buffer updates would lose the register
  /// delay.
  util::CacheAlignedVector<std::uint64_t> state_;
  EvalBuffer buf_;
  std::vector<std::uint64_t> combined_scratch_;     // full-evaluate input staging
  std::vector<std::uint64_t> broadcast_scratch_;    // step_broadcast staging
  std::vector<std::uint32_t> dirty_scratch_;        // resimulate ordinals
  std::vector<std::uint64_t> dirty_words_scratch_;  // resimulate words
  bool primed_ = false;
  std::uint64_t cycles_ = 0;
  std::uint64_t gate_evals_ = 0;
};

}  // namespace deterrent::sim

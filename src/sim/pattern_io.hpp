#pragma once

#include <iosfwd>
#include <string>

#include "sim/pattern.hpp"

namespace deterrent::sim {

/// Plain-text pattern-set format: one pattern per line as a 0/1 string, bit i
/// = value of primary input i (Netlist::inputs() order, pseudo-PIs included
/// under full scan). Comment lines start with '#'. This is the interchange
/// format between the CLI tool, the benches, and external testers.
///
///   # deterrent patterns inputs=5
///   01101
///   11000
void write_patterns(const PatternSet& patterns, std::ostream& out);
std::string write_patterns_string(const PatternSet& patterns);
void write_patterns_file(const PatternSet& patterns, const std::string& path);

/// Parses the format above. All rows must have equal width; malformed input
/// throws deterrent::Error with a line number.
PatternSet read_patterns(std::istream& in);
PatternSet read_patterns_string(const std::string& text);
PatternSet read_patterns_file(const std::string& path);

}  // namespace deterrent::sim

#include "sim/pattern.hpp"

#include "util/assert.hpp"

namespace deterrent::sim {

PatternSet PatternSet::random(std::size_t input_count, std::size_t pattern_count,
                              util::Rng& rng) {
  PatternSet set(input_count);
  set.pattern_count_ = pattern_count;
  const std::size_t n_blocks = (pattern_count + 63) / 64;
  set.blocks_.resize(n_blocks);
  for (auto& block : set.blocks_) {
    block.resize(input_count);
    for (auto& word : block) word = rng.next_word();
  }
  // Bits beyond pattern_count in the last block are don't-cares; leave them
  // random — consumers must respect valid_mask().
  return set;
}

void PatternSet::push(const Pattern& pattern) {
  DETERRENT_ASSERT(pattern.size() == input_count_, "PatternSet::push arity mismatch");
  const std::size_t p = pattern_count_++;
  if ((p >> 6) >= blocks_.size()) blocks_.emplace_back(input_count_, 0ULL);
  auto& block = blocks_[p >> 6];
  const std::uint64_t bit = 1ULL << (p & 63);
  for (std::size_t i = 0; i < input_count_; ++i) {
    if (pattern.test(i))
      block[i] |= bit;
    else
      block[i] &= ~bit;
  }
}

void PatternSet::append(const PatternSet& other) {
  DETERRENT_ASSERT(other.input_count_ == input_count_, "PatternSet::append arity mismatch");
  for (std::size_t p = 0; p < other.pattern_count(); ++p) push(other.pattern(p));
}

void PatternSet::truncate(std::size_t n) {
  DETERRENT_ASSERT(n <= pattern_count_, "PatternSet::truncate beyond size");
  pattern_count_ = n;
  blocks_.resize((n + 63) / 64);
}

void PatternSet::set_bit(std::size_t pattern, std::size_t input, bool value) {
  DETERRENT_ASSERT(pattern < pattern_count_ && input < input_count_,
                   "PatternSet::set_bit out of range");
  auto& word = blocks_[pattern >> 6][input];
  const std::uint64_t bit = 1ULL << (pattern & 63);
  if (value)
    word |= bit;
  else
    word &= ~bit;
}

Pattern PatternSet::pattern(std::size_t index) const {
  DETERRENT_ASSERT(index < pattern_count_, "PatternSet::pattern out of range");
  Pattern p(input_count_);
  for (std::size_t i = 0; i < input_count_; ++i) p.set(i, bit(index, i));
  return p;
}

std::uint64_t PatternSet::valid_mask(std::size_t block_index) const {
  DETERRENT_ASSERT(block_index < blocks_.size(), "PatternSet::valid_mask out of range");
  if (block_index + 1 < blocks_.size() || pattern_count_ % 64 == 0) return ~0ULL;
  return ~0ULL >> (64 - (pattern_count_ % 64));
}

}  // namespace deterrent::sim

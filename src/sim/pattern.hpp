#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace deterrent::sim {

/// One test pattern: a bit per primary input, ordered as Netlist::inputs().
/// Under the full-scan assumption the vector covers true PIs plus pseudo-PIs
/// (scanned flip-flops).
using Pattern = util::BitVec;

/// A set of test patterns stored bit-parallel: patterns are packed 64 per
/// block, and each block holds one 64-bit word per input. This is the layout
/// the simulator consumes directly, so applying a pattern set to a netlist
/// needs no transposition.
class PatternSet {
 public:
  PatternSet() = default;
  explicit PatternSet(std::size_t input_count) : input_count_(input_count) {}

  /// n_patterns of uniform random stimulus — the "random simulations" the
  /// paper uses for rare-net discovery and the Random baseline.
  static PatternSet random(std::size_t input_count, std::size_t pattern_count,
                           util::Rng& rng);

  std::size_t input_count() const { return input_count_; }
  std::size_t pattern_count() const { return pattern_count_; }
  std::size_t block_count() const { return blocks_.size(); }
  bool empty() const { return pattern_count_ == 0; }

  /// Appends a pattern (size must equal input_count()).
  void push(const Pattern& pattern);

  /// Appends all patterns of another set (same input arity).
  void append(const PatternSet& other);

  /// Truncates to the first n patterns (n <= pattern_count()).
  void truncate(std::size_t n);

  bool bit(std::size_t pattern, std::size_t input) const {
    return (blocks_[pattern >> 6][input] >> (pattern & 63)) & 1ULL;
  }

  void set_bit(std::size_t pattern, std::size_t input, bool value);

  Pattern pattern(std::size_t index) const;

  /// Words for one block: word(i) carries bit b = value of input i in pattern
  /// (64*block + b).
  std::span<const std::uint64_t> block(std::size_t index) const { return blocks_[index]; }

  /// Mask of valid pattern lanes in a block (all-ones except possibly the last).
  std::uint64_t valid_mask(std::size_t block_index) const;

 private:
  std::size_t input_count_ = 0;
  std::size_t pattern_count_ = 0;
  std::vector<std::vector<std::uint64_t>> blocks_;
};

}  // namespace deterrent::sim

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/kernels/dispatch.hpp"
#include "sim/pattern.hpp"
#include "util/aligned.hpp"

namespace deterrent::sim {

class Engine;

/// Structure-of-arrays value storage for one Engine sweep: W consecutive
/// 64-bit value words per net (W*64 patterns), net-major. Consumers own one
/// buffer each (one per worker thread in parallel sweeps); the Engine only
/// writes into it, so a single compiled Engine is safely shared across
/// threads.
///
/// A buffer filled by Engine::evaluate / evaluate_blocks is *primed*: it
/// holds a complete, consistent value set for every net and can serve as the
/// base state of Engine::resimulate. The incremental scratch state (dirty
/// stamps, level worklists) also lives here, so concurrent mutation loops
/// need one buffer per thread but can still share one compiled Engine.
class EvalBuffer {
 public:
  /// Words per net of the most recent evaluation (the W of that call).
  std::size_t words() const { return words_; }
  std::size_t net_count() const { return nets_; }

  /// True when this buffer was last filled by `engine` (via evaluate or
  /// evaluate_blocks) and therefore is a valid resimulate() base state.
  bool primed_for(const Engine& engine) const { return owner_ == &engine; }

  /// The W value words of one net: word w carries patterns [w*64, w*64+64) of
  /// the evaluated batch.
  std::span<const std::uint64_t> net(netlist::NetId id) const {
    return {values_.data() + std::size_t{id} * words_, words_};
  }

  std::uint64_t word(netlist::NetId id, std::size_t w) const {
    return values_[std::size_t{id} * words_ + w];
  }

  /// Whole buffer, net-major with stride words(). When words() == 1 this is
  /// exactly the legacy "one word per net, indexed by NetId" layout.
  /// The storage base is 64-byte aligned (see util::CacheAlignedVector); at
  /// the default W=8 every net's row is therefore one aligned cache line /
  /// AVX-512 register. Alignment is a performance contract only — the SIMD
  /// kernels use unaligned loads, so every W stays correct.
  std::span<const std::uint64_t> flat() const {
    return {values_.data(), values_.size()};
  }

 private:
  friend class Engine;

  void resize(std::size_t nets, std::size_t words) {
    nets_ = nets;
    words_ = words;
    values_.resize(nets * words);
  }

  util::CacheAlignedVector<std::uint64_t> values_;
  std::vector<std::uint64_t> inputs_scratch_;  // single-pattern input staging
  std::size_t nets_ = 0;
  std::size_t words_ = 0;

  // Incremental re-simulation scratch (see Engine::resimulate). The op
  // bitmask doubles as worklist and dedup set; every bit is cleared as it is
  // drained, so the mask is all-zero between calls and never needs a reset.
  const Engine* owner_ = nullptr;         // engine that last primed values_
  std::vector<std::uint64_t> dirty_ops_;  // one bit per program entry
  util::CacheAlignedVector<std::uint64_t> op_scratch_;  // W-word change-detect temp
};

/// Batch logic-simulation engine: compiles a netlist once into a flat,
/// level-ordered evaluation program (specialized opcodes for the 1- and
/// 2-input cells, a CSR-indexed n-ary fallback for wider gates) and then
/// evaluates W words — W*64 patterns — per sweep with no per-gate dispatch
/// call and no per-gate scratch copy. This is the hot path under rare-net
/// discovery, the compatibility pre-filter, trigger-coverage checks, the
/// MERO/TARMAC/ATPG baselines, and the PPO reward loop.
///
/// Pattern-stripe parallelism: the compiled program is immutable, so one
/// Engine is shared across a util::ThreadPool; each worker owns an EvalBuffer
/// and evaluates a disjoint range of pattern blocks (see
/// sim::estimate_signal_stats for the canonical stripe loop).
///
/// Incremental re-simulation: mutation loops (MERO's greedy bit flips, the
/// TGRL hill climber, trigger checks on evolving patterns) change only a few
/// input words between sweeps. resimulate() re-evaluates just the transitive
/// fanout cone of the dirty inputs against the previous value buffer — event
/// driven in ascending program order via an L1-resident op bitmask, with a
/// change cut-off that stops propagation as soon as a gate's output words
/// are unchanged. Results are bit-identical to a full evaluate() of the same
/// input state.
///
/// SIMD backends: the W-word inner loops are provided by an ISA-tagged
/// kernel table (scalar / NEON / AVX2 / AVX-512, see sim/kernels/). The
/// table is selected once at construction — auto-detected via runtime CPUID
/// by default, pinnable with the DETERRENT_FORCE_ISA environment variable or
/// the explicit constructor argument — and both full sweeps and the
/// incremental resimulate walk call through it, so every backend produces
/// bit-identical value buffers.
///
/// Thread safety: every method is const and touches only the caller's
/// EvalBuffer (including resimulate's worklist scratch), so one compiled
/// Engine may be used from many threads concurrently as long as each thread
/// owns its buffer.
///
/// The netlist must be combinational (apply netlist::make_full_scan first).
class Engine {
 public:
  /// Default words per sweep. 8 words (512 patterns) keeps the value buffer
  /// of typical benchmarks inside L2 while giving the inner loops enough
  /// independent lanes to fill the execute ports — and exactly fills one
  /// AVX-512 register per net on hosts with that backend.
  static constexpr std::size_t kDefaultWords = 8;

  /// Compiles `netlist` and binds a kernel backend. `forced_isa` pins the
  /// backend (throws deterrent::Error when this host cannot run it); by
  /// default the DETERRENT_FORCE_ISA environment variable is honored, then
  /// the widest CPU-supported backend is auto-detected.
  explicit Engine(const netlist::Netlist& netlist,
                  std::optional<kernels::Isa> forced_isa = std::nullopt);

  const netlist::Netlist& target() const { return *netlist_; }

  /// The kernel backend this engine dispatches to (fixed at construction).
  kernels::Isa isa() const { return kernels_->isa; }

  /// Evaluates n_words blocks at once. `input_words` is input-major: word w
  /// of primary input i at [i * n_words + w]. Results land in `buf`, which
  /// afterwards is primed for resimulate().
  void evaluate(EvalBuffer& buf, std::span<const std::uint64_t> input_words,
                std::size_t n_words) const;

  /// Incrementally re-evaluates `buf` after a sparse input change.
  ///
  /// `dirty_inputs[j]` is an index into target().inputs() (the input
  /// *ordinal*, not a NetId) whose new value words are
  /// `dirty_words[j * n_words .. j * n_words + n_words)`; undirtied inputs
  /// keep the words already in `buf`. Only gates in the transitive fanout
  /// cone of inputs whose value actually changed are re-evaluated, and
  /// propagation stops early wherever a re-evaluated gate reproduces its old
  /// output words. When the dirty set is a large fraction of the inputs the
  /// call falls back to a full program sweep (same results, no worklist
  /// overhead), so resimulate is never asymptotically worse than evaluate.
  ///
  /// Preconditions (checked): `buf` was primed by *this* engine via
  /// evaluate()/evaluate_blocks() or a prior resimulate(), with the same
  /// n_words. The priming check is pointer identity, so do not carry a
  /// buffer across the lifetime of its engine — a new engine at the same
  /// address cannot be told apart from the one that primed the buffer.
  /// Duplicate entries in `dirty_inputs` are allowed; the last one wins.
  /// Determinism: the resulting buffer is bit-identical to a full
  /// evaluate() of the updated input state, for every net and word.
  ///
  /// Returns the number of gate evaluations performed (program size when the
  /// dense fallback was taken) — useful for benchmarks and activity stats.
  std::size_t resimulate(EvalBuffer& buf,
                         std::span<const std::uint32_t> dirty_inputs,
                         std::span<const std::uint64_t> dirty_words,
                         std::size_t n_words) const;

  /// Evaluates blocks [first_block, first_block + n_words) of a PatternSet,
  /// gathering the input words directly from the set's block storage. Primes
  /// `buf` for resimulate().
  void evaluate_blocks(EvalBuffer& buf, const PatternSet& patterns,
                       std::size_t first_block, std::size_t n_words) const;

  /// Sequential whole-set sweep in batches of up to words_per_sweep blocks:
  /// sink(first_block, n_words, buf) per batch. Lane-validity masks come from
  /// patterns.valid_mask(block) as before (only the last block can be
  /// partial).
  void sweep(const PatternSet& patterns,
             const std::function<void(std::size_t first_block, std::size_t n_words,
                                      const EvalBuffer&)>& sink,
             std::size_t words_per_sweep = kDefaultWords) const;

  /// Ranged sweep over blocks [first_block, end_block) with early exit: stops
  /// as soon as the sink returns false. This is the batch loop behind
  /// coverage evaluation (exit once every trojan fired) and the per-worker
  /// stripes of threaded signature builds.
  void sweep_blocks(const PatternSet& patterns, std::size_t first_block,
                    std::size_t end_block,
                    const std::function<bool(std::size_t first_block,
                                             std::size_t n_words, const EvalBuffer&)>& sink,
                    std::size_t words_per_sweep = kDefaultWords) const;

  /// Single-pattern convenience (SAT model cross-checks, fault dropping);
  /// returns one bool per net. `buf` is reused across calls — pass the same
  /// buffer in loops to avoid reallocating a net_count-sized value array
  /// per pattern.
  std::vector<bool> evaluate_pattern(EvalBuffer& buf, const Pattern& pattern) const;

  /// As above with a throwaway buffer (one-off calls only).
  std::vector<bool> evaluate_pattern(const Pattern& pattern) const {
    EvalBuffer buf;
    return evaluate_pattern(buf, pattern);
  }

 private:
  /// Compiled opcodes — see kernels::Op (hoisted into sim/kernels/ so the
  /// per-ISA backend TUs can consume the program without netlist headers).
  using Op = kernels::Op;

  /// Dirty fraction of the inputs beyond which resimulate() abandons the
  /// event-driven worklist for a plain full sweep (the union cone is almost
  /// certainly the whole program at that point).
  static constexpr std::size_t kDenseFallbackDivisor = 4;
  static constexpr std::uint32_t kNoOp = 0xffffffffu;

  /// Borrowed view of the compiled program in the kernels' layout.
  kernels::ProgramView program_view() const;

  void run(std::uint64_t* values, std::size_t n_words) const;
  template <typename WordCount>
  std::size_t resimulate_run(EvalBuffer& buf,
                             std::span<const std::uint32_t> dirty_inputs,
                             std::span<const std::uint64_t> dirty_words,
                             WordCount n_words) const;

  const netlist::Netlist* netlist_;
  /// Kernel backend shared by run() and resimulate() — full and incremental
  /// evaluation always execute the same per-op code.
  const kernels::KernelTable* kernels_;
  // One entry per combinational cell, in (levelized) topological order.
  std::vector<Op> op_;
  std::vector<netlist::NetId> out_;
  std::vector<std::uint32_t> a_;  // fanin 0, or CSR offset for *N ops
  std::vector<std::uint32_t> b_;  // fanin 1, or fanin count for *N ops
  std::vector<netlist::NetId> nary_fanins_;  // CSR pool for *N ops
  // Incremental-mode side table, built at compile time: program entries fed
  // by each net, CSR-indexed. Program order is topological, so an op's
  // fanout ops always have larger indices — an ascending scan of the dirty
  // bitmask is a valid (re-)evaluation order.
  std::vector<std::uint32_t> fanout_op_offset_;  // size net_count()+1
  std::vector<std::uint32_t> fanout_ops_;
};

}  // namespace deterrent::sim

#include "sim/probability.hpp"

#include <bit>

#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace deterrent::sim {

using netlist::NetId;

namespace {

/// Adds per-net popcounts of a batch into `ones`. masks[w] selects the valid
/// pattern lanes of word w (all-ones except possibly the final block).
void accumulate_batch(const EvalBuffer& buf, std::span<const std::uint64_t> masks,
                      std::vector<std::size_t>& ones) {
  const std::size_t n_words = buf.words();
  for (std::size_t net = 0; net < buf.net_count(); ++net) {
    const auto values = buf.net(static_cast<NetId>(net));
    std::size_t acc = 0;
    for (std::size_t w = 0; w < n_words; ++w)
      acc += static_cast<std::size_t>(std::popcount(values[w] & masks[w]));
    ones[net] += acc;
  }
}

}  // namespace

SignalStats estimate_signal_stats(const netlist::Netlist& netlist,
                                  std::size_t pattern_count, util::Rng& rng,
                                  util::ThreadPool* pool) {
  SignalStats stats;
  stats.pattern_count = pattern_count;
  stats.ones.assign(netlist.net_count(), 0);
  if (pattern_count == 0) return stats;

  const std::size_t n_blocks = (pattern_count + 63) / 64;
  const std::size_t n_inputs = netlist.inputs().size();
  const std::uint64_t tail_mask =
      pattern_count % 64 == 0 ? ~0ULL : (~0ULL >> (64 - pattern_count % 64));

  // Pre-draw one RNG seed per block so the result is independent of the
  // execution schedule (threaded or not) and of the sweep batching.
  std::vector<std::uint64_t> block_seeds(n_blocks);
  for (auto& seed : block_seeds) seed = rng.next_word();

  // One compiled engine shared by all workers; each worker owns its value
  // buffer and simulates a disjoint stripe of blocks.
  const Engine engine(netlist);
  auto run_range = [&](std::vector<std::size_t>& local_ones, std::size_t begin,
                       std::size_t end) {
    EvalBuffer buf;
    std::vector<std::uint64_t> input_words;
    std::vector<std::uint64_t> masks;
    for (std::size_t first = begin; first < end; first += Engine::kDefaultWords) {
      const std::size_t n = std::min(Engine::kDefaultWords, end - first);
      input_words.resize(n_inputs * n);
      masks.resize(n);
      for (std::size_t w = 0; w < n; ++w) {
        util::Rng block_rng(block_seeds[first + w]);
        for (std::size_t i = 0; i < n_inputs; ++i)
          input_words[i * n + w] = block_rng.next_word();
        masks[w] = first + w + 1 == n_blocks ? tail_mask : ~0ULL;
      }
      engine.evaluate(buf, input_words, n);
      accumulate_batch(buf, masks, local_ones);
    }
  };

  if (pool == nullptr || pool->thread_count() <= 1 || n_blocks < 4) {
    run_range(stats.ones, 0, n_blocks);
    return stats;
  }

  std::vector<std::vector<std::size_t>> partial(pool->thread_count());
  pool->parallel_chunks(n_blocks, [&](std::size_t thread, std::size_t begin,
                                      std::size_t end) {
    auto& local = partial[thread];
    if (local.empty()) local.assign(netlist.net_count(), 0);
    run_range(local, begin, end);
  });
  for (const auto& local : partial) {
    if (local.empty()) continue;
    for (std::size_t net = 0; net < stats.ones.size(); ++net)
      stats.ones[net] += local[net];
  }
  return stats;
}

SignalStats signal_stats_for_patterns(const netlist::Netlist& netlist,
                                      const PatternSet& patterns) {
  SignalStats stats;
  stats.pattern_count = patterns.pattern_count();
  stats.ones.assign(netlist.net_count(), 0);
  const Engine engine(netlist);
  std::vector<std::uint64_t> masks;
  engine.sweep(patterns, [&](std::size_t first_block, std::size_t n_words,
                             const EvalBuffer& buf) {
    masks.resize(n_words);
    for (std::size_t w = 0; w < n_words; ++w)
      masks[w] = patterns.valid_mask(first_block + w);
    accumulate_batch(buf, masks, stats.ones);
  });
  return stats;
}

SignalStats exact_signal_stats(const netlist::Netlist& netlist) {
  const std::size_t n_inputs = netlist.inputs().size();
  DETERRENT_ASSERT(n_inputs <= 24, "exact_signal_stats: too many inputs to enumerate");
  const std::size_t total = std::size_t{1} << n_inputs;

  SignalStats stats;
  stats.pattern_count = total;
  stats.ones.assign(netlist.net_count(), 0);

  // Enumerate W = kDefaultWords blocks (W*64 assignments) per engine pass so
  // the inner loops amortize over full sweeps like every other batch caller,
  // instead of the old one-word-per-evaluate drip.
  const Engine engine(netlist);
  EvalBuffer buf;
  const std::size_t n_blocks = (total + 63) / 64;
  std::vector<std::uint64_t> input_words;
  std::vector<std::uint64_t> masks;
  for (std::size_t first = 0; first < n_blocks; first += Engine::kDefaultWords) {
    const std::size_t n_words = std::min(Engine::kDefaultWords, n_blocks - first);
    input_words.assign(n_inputs * n_words, 0);
    masks.assign(n_words, 0);
    for (std::size_t w = 0; w < n_words; ++w) {
      const std::size_t base = (first + w) * 64;
      const std::size_t lanes = std::min<std::size_t>(64, total - base);
      for (std::size_t i = 0; i < n_inputs; ++i) {
        std::uint64_t word = 0;
        for (std::size_t lane = 0; lane < lanes; ++lane)
          if (((base + lane) >> i) & 1ULL) word |= (1ULL << lane);
        input_words[i * n_words + w] = word;
      }
      masks[w] = lanes == 64 ? ~0ULL : ((1ULL << lanes) - 1);
    }
    engine.evaluate(buf, input_words, n_words);
    accumulate_batch(buf, masks, stats.ones);
  }
  return stats;
}

}  // namespace deterrent::sim

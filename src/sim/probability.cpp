#include "sim/probability.hpp"

#include <bit>

#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace deterrent::sim {

using netlist::NetId;

namespace {

void accumulate_block(std::span<const std::uint64_t> values, std::uint64_t valid_mask,
                      std::vector<std::size_t>& ones) {
  for (std::size_t net = 0; net < values.size(); ++net)
    ones[net] += static_cast<std::size_t>(std::popcount(values[net] & valid_mask));
}

}  // namespace

SignalStats estimate_signal_stats(const netlist::Netlist& netlist,
                                  std::size_t pattern_count, util::Rng& rng,
                                  util::ThreadPool* pool) {
  SignalStats stats;
  stats.pattern_count = pattern_count;
  stats.ones.assign(netlist.net_count(), 0);
  if (pattern_count == 0) return stats;

  const std::size_t n_blocks = (pattern_count + 63) / 64;
  const std::size_t n_inputs = netlist.inputs().size();
  const std::uint64_t tail_mask =
      pattern_count % 64 == 0 ? ~0ULL : (~0ULL >> (64 - pattern_count % 64));

  // Pre-draw one RNG seed per block so the result is independent of the
  // execution schedule (threaded or not).
  std::vector<std::uint64_t> block_seeds(n_blocks);
  for (auto& seed : block_seeds) seed = rng.next_word();

  auto run_range = [&](std::vector<std::size_t>& local_ones, std::size_t begin,
                       std::size_t end) {
    Simulator simulator(netlist);
    std::vector<std::uint64_t> input_words(n_inputs);
    for (std::size_t b = begin; b < end; ++b) {
      util::Rng block_rng(block_seeds[b]);
      for (auto& w : input_words) w = block_rng.next_word();
      auto values = simulator.simulate_block(input_words);
      accumulate_block(values, b + 1 == n_blocks ? tail_mask : ~0ULL, local_ones);
    }
  };

  if (pool == nullptr || pool->thread_count() <= 1 || n_blocks < 4) {
    run_range(stats.ones, 0, n_blocks);
    return stats;
  }

  std::vector<std::vector<std::size_t>> partial(pool->thread_count());
  pool->parallel_chunks(n_blocks, [&](std::size_t thread, std::size_t begin,
                                      std::size_t end) {
    auto& local = partial[thread];
    if (local.empty()) local.assign(netlist.net_count(), 0);
    run_range(local, begin, end);
  });
  for (const auto& local : partial) {
    if (local.empty()) continue;
    for (std::size_t net = 0; net < stats.ones.size(); ++net)
      stats.ones[net] += local[net];
  }
  return stats;
}

SignalStats signal_stats_for_patterns(const netlist::Netlist& netlist,
                                      const PatternSet& patterns) {
  SignalStats stats;
  stats.pattern_count = patterns.pattern_count();
  stats.ones.assign(netlist.net_count(), 0);
  Simulator simulator(netlist);
  simulator.simulate(patterns, [&](std::size_t, std::uint64_t valid_mask,
                                   std::span<const std::uint64_t> values) {
    accumulate_block(values, valid_mask, stats.ones);
  });
  return stats;
}

SignalStats exact_signal_stats(const netlist::Netlist& netlist) {
  const std::size_t n_inputs = netlist.inputs().size();
  DETERRENT_ASSERT(n_inputs <= 24, "exact_signal_stats: too many inputs to enumerate");
  const std::size_t total = std::size_t{1} << n_inputs;

  SignalStats stats;
  stats.pattern_count = total;
  stats.ones.assign(netlist.net_count(), 0);

  Simulator simulator(netlist);
  std::vector<std::uint64_t> input_words(n_inputs);
  for (std::size_t base = 0; base < total; base += 64) {
    const std::size_t lanes = std::min<std::size_t>(64, total - base);
    for (std::size_t i = 0; i < n_inputs; ++i) {
      std::uint64_t w = 0;
      for (std::size_t lane = 0; lane < lanes; ++lane)
        if (((base + lane) >> i) & 1ULL) w |= (1ULL << lane);
      input_words[i] = w;
    }
    const std::uint64_t mask = lanes == 64 ? ~0ULL : ((1ULL << lanes) - 1);
    auto values = simulator.simulate_block(input_words);
    accumulate_block(values, mask, stats.ones);
  }
  return stats;
}

}  // namespace deterrent::sim

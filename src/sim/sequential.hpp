#pragma once

#include "sim/pattern.hpp"
#include "sim/sequential_engine.hpp"
#include "util/bitvec.hpp"

namespace deterrent::sim {

/// Cycle-accurate simulator for sequential netlists (no scan assumption):
/// holds flip-flop state across clock edges. Used to actually *execute*
/// workloads on generated designs — e.g. running programs on the MIPS16-like
/// processor — complementing the single-cycle combinational engine the
/// DETERRENT pipeline uses under full scan.
///
/// Since the sequential-engine rebuild this is a verified single-trace
/// facade over sim::SequentialEngine: each step() evaluates the scan-cut
/// combinational cone through the compiled engine, incrementally against the
/// previous cycle (only the fanout cones of changed inputs / changed state
/// bits re-evaluate). Results are bit-identical to the seed per-cycle
/// full-evaluation path; the differential suite in
/// tests/test_sequential_engine.cpp pins that. Batch consumers that can run
/// many traces in lock-step should use SequentialEngine directly.
class SequentialSimulator {
 public:
  explicit SequentialSimulator(const netlist::Netlist& netlist)
      : engine_(netlist, /*n_traces=*/1) {}

  const netlist::Netlist& target() const { return engine_.target(); }

  /// The underlying multi-trace engine (this facade owns trace 0).
  const SequentialEngine& engine() const { return engine_; }

  /// Sets every flip-flop to `value`. Invalidates values(): any reference
  /// returned by a previous step() becomes empty (size 0), so stale reads
  /// fail loudly on the BitVec bounds assert instead of returning the dead
  /// cycle's data.
  void reset(bool value = false) {
    engine_.reset(value);
    values_ = util::BitVec();
  }

  /// Direct state access by the DFF's Q-output net id: the value Q takes at
  /// the next step().
  void set_state(netlist::NetId q, bool value) { engine_.set_state(q, 0, value); }
  bool state(netlist::NetId q) const { return engine_.state(q, 0); }

  /// Applies one cycle: evaluates combinational logic under `inputs`
  /// (primary inputs only, Netlist::inputs() order of the original design),
  /// returns all net values for this cycle (bit per NetId), then clocks
  /// Q <= D. The returned reference stays valid until the next
  /// step()/reset() — both invalidate it (reset() additionally empties it).
  const util::BitVec& step(const Pattern& inputs);

  /// Values of the most recent step (pre-clock-edge), bit-indexed by NetId.
  /// Empty until the first step() after construction or reset().
  const util::BitVec& values() const { return values_; }

  std::uint64_t cycle_count() const { return engine_.cycle_count(); }

 private:
  SequentialEngine engine_;
  util::BitVec values_;  // trace-0 lane of the last cycle, bit per net
};

}  // namespace deterrent::sim

#pragma once

#include "netlist/scan.hpp"
#include "sim/pattern.hpp"
#include "sim/simulator.hpp"

namespace deterrent::sim {

/// Cycle-accurate simulator for sequential netlists (no scan assumption):
/// holds flip-flop state across clock edges. Used to actually *execute*
/// workloads on generated designs — e.g. running programs on the MIPS16-like
/// processor — complementing the single-cycle combinational engine the
/// DETERRENT pipeline uses under full scan.
class SequentialSimulator {
 public:
  explicit SequentialSimulator(const netlist::Netlist& netlist);

  const netlist::Netlist& target() const { return *netlist_; }

  /// Sets every flip-flop to `value`.
  void reset(bool value = false);

  /// Direct state access by the DFF's Q-output net id.
  void set_state(netlist::NetId q, bool value);
  bool state(netlist::NetId q) const;

  /// Applies one cycle: evaluates combinational logic under `inputs`
  /// (primary inputs only, Netlist::inputs() order of the original design),
  /// returns all net values for this cycle, then clocks Q <= D.
  /// The returned reference stays valid until the next step()/reset().
  const std::vector<bool>& step(const Pattern& inputs);

  /// Values of the most recent step (pre-clock-edge), indexed by NetId.
  const std::vector<bool>& values() const { return values_; }

  std::uint64_t cycle_count() const { return cycles_; }

 private:
  const netlist::Netlist* netlist_;
  netlist::ScanView scan_;
  Simulator comb_sim_;
  std::vector<bool> state_;   // per DFF, parallel to scan_.pseudo_inputs
  std::vector<bool> values_;  // last cycle's full net values
  std::uint64_t cycles_ = 0;
};

}  // namespace deterrent::sim

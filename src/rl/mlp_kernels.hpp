#pragma once

#include <vector>

#include "rl/mlp_kernel_table.hpp"

namespace deterrent::rl::kernels {

const char* to_string(MlpIsa isa);

/// True when the backend is compiled in AND the running CPU can execute it.
bool mlp_isa_supported(MlpIsa isa);

/// Every backend this process can run, narrowest first (always starts with
/// Scalar) — what the cross-backend differential test sweeps.
std::vector<MlpIsa> supported_mlp_isas();

/// The table for one backend; throws deterrent::Error when it is not
/// compiled in or the CPU lacks the feature.
const MlpKernelTable& mlp_kernel_table(MlpIsa isa);

/// Selection used by Mlp's constructor: honors DETERRENT_FORCE_ISA (the same
/// variable the simulation engine uses, so one CI leg pins every backend at
/// once), else picks the widest supported backend. "neon" maps to Scalar —
/// there is no NEON RL backend; on aarch64 the scalar table's base flags
/// already vectorize it. All backends are bit-identical (see
/// mlp_kernel_table.hpp), so this is purely a speed knob.
const MlpKernelTable& select_mlp_kernels();

}  // namespace deterrent::rl::kernels

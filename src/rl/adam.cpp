#include "rl/adam.hpp"

#include <algorithm>
#include <cmath>

#include "rl/mlp_kernels.hpp"
#include "util/assert.hpp"

namespace deterrent::rl {

Adam::Adam(std::vector<ParamRef> params, const AdamConfig& config)
    : params_(std::move(params)),
      config_(config),
      kernels_(&kernels::select_mlp_kernels()) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.size, 0.0f);
    v_.emplace_back(p.size, 0.0f);
  }
}

double Adam::grad_norm() const {
  double sum_sq = 0.0;
  for (const auto& p : params_)
    for (std::size_t i = 0; i < p.size; ++i)
      sum_sq += static_cast<double>(p.grads[i]) * p.grads[i];
  return std::sqrt(sum_sq);
}

void Adam::step(float max_grad_norm) {
  float scale = 1.0f;
  if (max_grad_norm > 0.0f) {
    const double norm = grad_norm();
    if (norm > max_grad_norm) scale = static_cast<float>(max_grad_norm / norm);
  }

  ++t_;
  const kernels::MlpKernelTable::AdamArgs args{
      scale,
      config_.beta1,
      config_.beta2,
      config_.lr,
      config_.eps,
      1.0 - std::pow(config_.beta1, static_cast<double>(t_)),
      1.0 - std::pow(config_.beta2, static_cast<double>(t_))};

  // The update is elementwise, so it dispatches to the widest bit-identical
  // kernel backend (scalar reference in mlp_kernels.cpp).
  for (std::size_t k = 0; k < params_.size(); ++k) {
    auto& p = params_[k];
    kernels_->adam_step(p.values, m_[k].data(), v_[k].data(), p.grads, p.size,
                        args);
  }
}

AdamState Adam::state() const {
  AdamState s;
  s.t = t_;
  for (std::size_t k = 0; k < params_.size(); ++k) {
    s.m.insert(s.m.end(), m_[k].begin(), m_[k].end());
    s.v.insert(s.v.end(), v_[k].begin(), v_[k].end());
  }
  return s;
}

void Adam::restore(const AdamState& state) {
  std::size_t total = 0;
  for (const auto& p : params_) total += p.size;
  if (state.m.size() != total || state.v.size() != total)
    throw Error("Adam::restore: state holds " + std::to_string(state.m.size()) +
                " moments, optimizer tracks " + std::to_string(total) + " parameters");
  std::size_t pos = 0;
  for (std::size_t k = 0; k < params_.size(); ++k) {
    std::copy_n(state.m.begin() + static_cast<std::ptrdiff_t>(pos), m_[k].size(),
                m_[k].begin());
    std::copy_n(state.v.begin() + static_cast<std::ptrdiff_t>(pos), v_[k].size(),
                v_[k].begin());
    pos += m_[k].size();
  }
  t_ = state.t;
}

}  // namespace deterrent::rl

#include "rl/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace deterrent::rl {

Mlp::Mlp(std::vector<std::size_t> layer_sizes, util::Rng& rng)
    : layer_sizes_(std::move(layer_sizes)) {
  DETERRENT_ASSERT(layer_sizes_.size() >= 2, "Mlp needs at least input and output");
  layers_.resize(layer_sizes_.size() - 1);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    auto& layer = layers_[l];
    layer.in = layer_sizes_[l];
    layer.out = layer_sizes_[l + 1];
    layer.w.resize(layer.in * layer.out);
    layer.b.assign(layer.out, 0.0f);
    layer.gw.assign(layer.w.size(), 0.0f);
    layer.gb.assign(layer.out, 0.0f);
    // Scaled normal init (Xavier-style); the output layer gets a smaller
    // scale so initial policies are near-uniform and values near zero.
    const bool is_output = l + 1 == layers_.size();
    const double scale =
        (is_output ? 0.01 : 1.0) * std::sqrt(2.0 / static_cast<double>(layer.in));
    for (auto& w : layer.w) w = static_cast<float>(rng.normal() * scale);
  }
}

std::vector<float> Mlp::forward(std::span<const float> input, Workspace& ws) const {
  DETERRENT_ASSERT(input.size() == input_size(), "Mlp::forward input size mismatch");
  ws.post.resize(layers_.size());

  std::span<const float> x = input;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& layer = layers_[l];
    auto& out = ws.post[l];
    out.assign(layer.out, 0.0f);
    for (std::size_t o = 0; o < layer.out; ++o) {
      const float* wrow = layer.w.data() + o * layer.in;
      float acc = layer.b[o];
      for (std::size_t i = 0; i < layer.in; ++i) acc += wrow[i] * x[i];
      out[o] = acc;
    }
    if (l + 1 < layers_.size())
      for (auto& v : out) v = std::tanh(v);
    x = out;
  }
  return ws.post.back();
}

void Mlp::backward(std::span<const float> input, const Workspace& ws,
                   std::span<const float> output_grad) {
  DETERRENT_ASSERT(ws.post.size() == layers_.size(), "workspace/layer mismatch");
  DETERRENT_ASSERT(output_grad.size() == output_size(), "output grad size mismatch");

  std::vector<float> grad(output_grad.begin(), output_grad.end());
  for (std::size_t l = layers_.size(); l-- > 0;) {
    auto& layer = layers_[l];
    const std::span<const float> x =
        l == 0 ? input : std::span<const float>(ws.post[l - 1]);

    // grad currently holds dL/d(pre-activation) of layer l: for hidden layers
    // the tanh derivative was applied by the previous iteration; the output
    // layer is linear.
    std::vector<float> prev_grad(layer.in, 0.0f);
    for (std::size_t o = 0; o < layer.out; ++o) {
      const float g = grad[o];
      if (g == 0.0f) continue;
      float* gw_row = layer.gw.data() + o * layer.in;
      const float* w_row = layer.w.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) {
        gw_row[i] += g * x[i];
        prev_grad[i] += g * w_row[i];
      }
      layer.gb[o] += g;
    }
    if (l > 0) {
      // Chain through the tanh of layer l-1: post = tanh(pre) ⇒ d pre = (1-post²) d post.
      const auto& post = ws.post[l - 1];
      for (std::size_t i = 0; i < post.size(); ++i)
        prev_grad[i] *= 1.0f - post[i] * post[i];
      grad = std::move(prev_grad);
    }
  }
}

void Mlp::zero_grad() {
  for (auto& layer : layers_) {
    std::fill(layer.gw.begin(), layer.gw.end(), 0.0f);
    std::fill(layer.gb.begin(), layer.gb.end(), 0.0f);
  }
}

std::vector<ParamRef> Mlp::params() {
  std::vector<ParamRef> refs;
  refs.reserve(layers_.size() * 2);
  for (auto& layer : layers_) {
    refs.push_back({layer.w.data(), layer.gw.data(), layer.w.size()});
    refs.push_back({layer.b.data(), layer.gb.data(), layer.b.size()});
  }
  return refs;
}

void Mlp::copy_params_from(const Mlp& other) {
  DETERRENT_ASSERT(layer_sizes_ == other.layer_sizes_, "Mlp shape mismatch");
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].w = other.layers_[l].w;
    layers_[l].b = other.layers_[l].b;
  }
}

std::size_t Mlp::param_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer.w.size() + layer.b.size();
  return total;
}

std::vector<float> Mlp::flat_params() const {
  std::vector<float> flat;
  flat.reserve(param_count());
  for (const auto& layer : layers_) {
    flat.insert(flat.end(), layer.w.begin(), layer.w.end());
    flat.insert(flat.end(), layer.b.begin(), layer.b.end());
  }
  return flat;
}

void Mlp::set_flat_params(std::span<const float> flat) {
  if (flat.size() != param_count())
    throw Error("Mlp::set_flat_params: image has " + std::to_string(flat.size()) +
                " parameters, network needs " + std::to_string(param_count()));
  std::size_t pos = 0;
  for (auto& layer : layers_) {
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(pos), layer.w.size(),
                layer.w.begin());
    pos += layer.w.size();
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(pos), layer.b.size(),
                layer.b.begin());
    pos += layer.b.size();
  }
}

}  // namespace deterrent::rl

#include "rl/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "rl/mlp_kernels.hpp"
#include "util/assert.hpp"

namespace deterrent::rl {

Mlp::Mlp(std::vector<std::size_t> layer_sizes, util::Rng& rng)
    : layer_sizes_(std::move(layer_sizes)),
      kernels_(&kernels::select_mlp_kernels()) {
  DETERRENT_ASSERT(layer_sizes_.size() >= 2, "Mlp needs at least input and output");
  layers_.resize(layer_sizes_.size() - 1);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    auto& layer = layers_[l];
    layer.in = layer_sizes_[l];
    layer.out = layer_sizes_[l + 1];
    layer.w.resize(layer.in * layer.out);
    layer.b.assign(layer.out, 0.0f);
    layer.gw.assign(layer.w.size(), 0.0f);
    layer.gb.assign(layer.out, 0.0f);
    // Scaled normal init (Xavier-style); the output layer gets a smaller
    // scale so initial policies are near-uniform and values near zero.
    const bool is_output = l + 1 == layers_.size();
    const double scale =
        (is_output ? 0.01 : 1.0) * std::sqrt(2.0 / static_cast<double>(layer.in));
    for (auto& w : layer.w) w = static_cast<float>(rng.normal() * scale);
  }
}

std::vector<float> Mlp::forward(std::span<const float> input, Workspace& ws) const {
  DETERRENT_ASSERT(input.size() == input_size(), "Mlp::forward input size mismatch");
  ws.post.resize(layers_.size());

  std::span<const float> x = input;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& layer = layers_[l];
    auto& out = ws.post[l];
    out.assign(layer.out, 0.0f);
    for (std::size_t o = 0; o < layer.out; ++o) {
      const float* wrow = layer.w.data() + o * layer.in;
      float acc = layer.b[o];
      for (std::size_t i = 0; i < layer.in; ++i) acc += wrow[i] * x[i];
      out[o] = acc;
    }
    if (l + 1 < layers_.size())
      for (auto& v : out) v = std::tanh(v);
    x = out;
  }
  return ws.post.back();
}

void Mlp::backward(std::span<const float> input, const Workspace& ws,
                   std::span<const float> output_grad) {
  DETERRENT_ASSERT(ws.post.size() == layers_.size(), "workspace/layer mismatch");
  DETERRENT_ASSERT(output_grad.size() == output_size(), "output grad size mismatch");

  std::vector<float> grad(output_grad.begin(), output_grad.end());
  for (std::size_t l = layers_.size(); l-- > 0;) {
    auto& layer = layers_[l];
    const std::span<const float> x =
        l == 0 ? input : std::span<const float>(ws.post[l - 1]);

    // grad currently holds dL/d(pre-activation) of layer l: for hidden layers
    // the tanh derivative was applied by the previous iteration; the output
    // layer is linear.
    std::vector<float> prev_grad(layer.in, 0.0f);
    for (std::size_t o = 0; o < layer.out; ++o) {
      const float g = grad[o];
      if (g == 0.0f) continue;
      float* gw_row = layer.gw.data() + o * layer.in;
      const float* w_row = layer.w.data() + o * layer.in;
      for (std::size_t i = 0; i < layer.in; ++i) {
        gw_row[i] += g * x[i];
        prev_grad[i] += g * w_row[i];
      }
      layer.gb[o] += g;
    }
    if (l > 0) {
      // Chain through the tanh of layer l-1: post = tanh(pre) ⇒ d pre = (1-post²) d post.
      const auto& post = ws.post[l - 1];
      for (std::size_t i = 0; i < post.size(); ++i)
        prev_grad[i] *= 1.0f - post[i] * post[i];
      grad = std::move(prev_grad);
    }
  }
}

template <typename RowPtrFn>
std::span<const float> Mlp::forward_batch_impl(RowPtrFn row_ptr, std::size_t rows,
                                               BatchWorkspace& ws) const {
  constexpr std::size_t kTile = kernels::kMlpLanes;
  DETERRENT_ASSERT(rows > 0, "Mlp::forward_batch needs at least one row");
  ws.rows = rows;
  ws.post.resize(layers_.size());

  const float* x = nullptr;  // layers > 0 read the previous contiguous post
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& layer = layers_[l];
    auto& out = ws.post[l];
    out.resize(rows * layer.out);
    ws.scratch.resize(kTile * layer.in);
    float* xt = ws.scratch.data();
    // Only the first layer sees the raw observations, which in this MDP are
    // mostly-zero indicator vectors — worth the nonzero-column bookkeeping.
    const bool sparse = l == 0;
    if (sparse) {
      ws.nz.resize(layer.in);
      ws.cols.reserve(layer.in);
    }
    for (std::size_t n0 = 0; n0 < rows; n0 += kTile) {
      const std::size_t tn = std::min(kTile, rows - n0);
      // Transpose the row tile to lane-major so the hot loop reads both the
      // weight row and the input lanes with unit stride.
      if (tn < kTile) std::fill(ws.scratch.begin(), ws.scratch.end(), 0.0f);
      if (sparse) {
        std::fill(ws.nz.begin(), ws.nz.end(), static_cast<unsigned char>(0));
        for (std::size_t n = 0; n < tn; ++n) {
          const float* xr = row_ptr(n0 + n);
          for (std::size_t i = 0; i < layer.in; ++i) {
            const float v = xr[i];
            xt[i * kTile + n] = v;
            if (v != 0.0f) ws.nz[i] = 1;
          }
        }
        ws.cols.clear();
        for (std::size_t i = 0; i < layer.in; ++i)
          if (ws.nz[i] != 0) ws.cols.push_back(static_cast<std::uint32_t>(i));
      } else {
        for (std::size_t n = 0; n < tn; ++n)
          for (std::size_t i = 0; i < layer.in; ++i)
            xt[i * kTile + n] = x[(n0 + n) * layer.in + i];
      }
      for (std::size_t o = 0; o < layer.out; ++o) {
        const float* wrow = layer.w.data() + o * layer.in;
        float acc[kernels::kMlpLanes];
        if (sparse)
          kernels_->matvec_cols(wrow, xt, ws.cols.data(), ws.cols.size(),
                                layer.b[o], acc);
        else
          kernels_->matvec_dense(wrow, xt, layer.in, layer.b[o], acc);
        for (std::size_t n = 0; n < tn; ++n) out[(n0 + n) * layer.out + o] = acc[n];
      }
    }
    if (l + 1 < layers_.size())
      for (auto& v : out) v = std::tanh(v);
    x = out.data();
  }
  return ws.post.back();
}

std::span<const float> Mlp::forward_batch(std::span<const float> input,
                                          std::size_t rows,
                                          BatchWorkspace& ws) const {
  DETERRENT_ASSERT(input.size() == rows * input_size(),
                   "Mlp::forward_batch input size mismatch");
  const std::size_t in = input_size();
  const float* base = input.data();
  return forward_batch_impl([base, in](std::size_t n) { return base + n * in; },
                            rows, ws);
}

std::span<const float> Mlp::forward_batch(const float* const* row_ptrs,
                                          std::size_t rows,
                                          BatchWorkspace& ws) const {
  return forward_batch_impl([row_ptrs](std::size_t n) { return row_ptrs[n]; },
                            rows, ws);
}

template <typename RowPtrFn>
void Mlp::backward_batch_impl(RowPtrFn row_ptr, const BatchWorkspace& ws,
                              std::span<const float> output_grads) {
  constexpr std::size_t kTile = kernels::kMlpLanes;
  const std::size_t rows = ws.rows;
  DETERRENT_ASSERT(rows > 0 && ws.post.size() == layers_.size(),
                   "Mlp::backward_batch workspace/layer mismatch");
  DETERRENT_ASSERT(output_grads.size() == rows * output_size(),
                   "Mlp::backward_batch output grad size mismatch");

  std::vector<float> grad(output_grads.begin(), output_grads.end());
  std::vector<float> prev_grad;
  std::vector<std::uint32_t> x_nz;      // layer-0 per-row nonzero columns
  std::vector<std::uint32_t> x_nz_off;  // row n owns x_nz[off[n], off[n+1])
  for (std::size_t l = layers_.size(); l-- > 0;) {
    auto& layer = layers_[l];
    const float* x_base = l == 0 ? nullptr : ws.post[l - 1].data();

    // Pass 1 — weight/bias gradients. Row tiles keep the x working set
    // L1-resident while each weight-gradient row streams through once per
    // tile. Per gradient element the accumulation order stays ascending in
    // row index (tiles and rows within a tile both ascend), matching
    // row-by-row backward().
    //
    // The first layer sees the raw mostly-zero observations, so it walks a
    // per-row nonzero list instead of the dense row. Exact: a skipped term
    // is g·(±0) = ±0, and adding a signed zero to a gw accumulator never
    // changes it — gw starts at +0 (zero_grad) and IEEE round-to-nearest
    // keeps zero sums at +0 ((+0) + (−0) = +0; nonzero terms that cancel
    // round to +0), so the accumulator never holds −0.0f for a signed zero
    // to flip.
    const bool sparse = l == 0;
    if (sparse) {
      x_nz.clear();
      x_nz_off.resize(rows + 1);
      for (std::size_t n = 0; n < rows; ++n) {
        x_nz_off[n] = static_cast<std::uint32_t>(x_nz.size());
        const float* xr = row_ptr(n);
        for (std::size_t i = 0; i < layer.in; ++i)
          if (xr[i] != 0.0f) x_nz.push_back(static_cast<std::uint32_t>(i));
      }
      x_nz_off[rows] = static_cast<std::uint32_t>(x_nz.size());
    }
    for (std::size_t n0 = 0; n0 < rows; n0 += kTile) {
      const std::size_t tn = std::min(kTile, rows - n0);
      for (std::size_t o = 0; o < layer.out; ++o) {
        float* gw_row = layer.gw.data() + o * layer.in;
        for (std::size_t n = n0; n < n0 + tn; ++n) {
          const float g = grad[n * layer.out + o];
          if (g == 0.0f) continue;
          const float* xr = sparse ? row_ptr(n) : x_base + n * layer.in;
          if (sparse) {
            for (std::uint32_t j = x_nz_off[n]; j < x_nz_off[n + 1]; ++j) {
              const std::uint32_t i = x_nz[j];
              gw_row[i] += g * xr[i];
            }
          } else {
            kernels_->axpy(g, xr, gw_row, layer.in);
          }
          layer.gb[o] += g;
        }
      }
    }

    // Pass 2 — input gradients, chained through the previous layer's tanh.
    // Per element the terms accumulate in ascending output index, exactly
    // like backward(). The first layer has no upstream to feed, so the pass
    // is skipped there (backward() computes and discards it).
    if (l > 0) {
      prev_grad.assign(rows * layer.in, 0.0f);
      const float* post = ws.post[l - 1].data();
      for (std::size_t n = 0; n < rows; ++n) {
        float* pg = prev_grad.data() + n * layer.in;
        for (std::size_t o = 0; o < layer.out; ++o) {
          const float g = grad[n * layer.out + o];
          if (g == 0.0f) continue;
          kernels_->axpy(g, layer.w.data() + o * layer.in, pg, layer.in);
        }
        const float* pr = post + n * layer.in;
        for (std::size_t i = 0; i < layer.in; ++i)
          pg[i] *= 1.0f - pr[i] * pr[i];
      }
      grad = std::move(prev_grad);
      prev_grad.clear();
    }
  }
}

void Mlp::backward_batch(std::span<const float> input, const BatchWorkspace& ws,
                         std::span<const float> output_grads) {
  DETERRENT_ASSERT(input.size() == ws.rows * input_size(),
                   "Mlp::backward_batch input size mismatch");
  const std::size_t in = input_size();
  const float* base = input.data();
  backward_batch_impl([base, in](std::size_t n) { return base + n * in; }, ws,
                      output_grads);
}

void Mlp::backward_batch(const float* const* row_ptrs, const BatchWorkspace& ws,
                         std::span<const float> output_grads) {
  backward_batch_impl([row_ptrs](std::size_t n) { return row_ptrs[n]; }, ws,
                      output_grads);
}

void Mlp::zero_grad() {
  for (auto& layer : layers_) {
    std::fill(layer.gw.begin(), layer.gw.end(), 0.0f);
    std::fill(layer.gb.begin(), layer.gb.end(), 0.0f);
  }
}

std::vector<ParamRef> Mlp::params() {
  std::vector<ParamRef> refs;
  refs.reserve(layers_.size() * 2);
  for (auto& layer : layers_) {
    refs.push_back({layer.w.data(), layer.gw.data(), layer.w.size()});
    refs.push_back({layer.b.data(), layer.gb.data(), layer.b.size()});
  }
  return refs;
}

void Mlp::copy_params_from(const Mlp& other) {
  DETERRENT_ASSERT(layer_sizes_ == other.layer_sizes_, "Mlp shape mismatch");
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    layers_[l].w = other.layers_[l].w;
    layers_[l].b = other.layers_[l].b;
  }
}

std::size_t Mlp::param_count() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer.w.size() + layer.b.size();
  return total;
}

std::vector<float> Mlp::flat_params() const {
  std::vector<float> flat;
  flat.reserve(param_count());
  for (const auto& layer : layers_) {
    flat.insert(flat.end(), layer.w.begin(), layer.w.end());
    flat.insert(flat.end(), layer.b.begin(), layer.b.end());
  }
  return flat;
}

void Mlp::set_flat_params(std::span<const float> flat) {
  if (flat.size() != param_count())
    throw Error("Mlp::set_flat_params: image has " + std::to_string(flat.size()) +
                " parameters, network needs " + std::to_string(param_count()));
  std::size_t pos = 0;
  for (auto& layer : layers_) {
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(pos), layer.w.size(),
                layer.w.begin());
    pos += layer.w.size();
    std::copy_n(flat.begin() + static_cast<std::ptrdiff_t>(pos), layer.b.size(),
                layer.b.begin());
    pos += layer.b.size();
  }
}

}  // namespace deterrent::rl

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace deterrent::rl {

/// View over one parameter tensor and its gradient accumulator. The Adam
/// optimizer consumes a flat list of these.
struct ParamRef {
  float* values = nullptr;
  float* grads = nullptr;
  std::size_t size = 0;
};

/// Fully connected multi-layer perceptron with tanh hidden activations and a
/// linear output layer — the policy/value network architecture of the paper's
/// PPO agent (§2.2). Forward and backward passes are hand-written; gradients
/// are validated against finite differences in the test suite.
///
/// forward() is const and thread-safe, enabling lock-free vectorized rollouts
/// (multiple workers run inference on a shared network snapshot, §4.1).
class Mlp {
 public:
  /// layer_sizes = {input, hidden..., output}; weights get orthogonal-ish
  /// scaled-normal init, biases start at zero.
  Mlp(std::vector<std::size_t> layer_sizes, util::Rng& rng);

  std::size_t input_size() const { return layer_sizes_.front(); }
  std::size_t output_size() const { return layer_sizes_.back(); }

  /// Per-sample activation cache for backward().
  struct Workspace {
    std::vector<std::vector<float>> post;  ///< post-activation per layer (incl. output)
  };

  /// Computes the output for one observation. Thread-safe.
  std::vector<float> forward(std::span<const float> input, Workspace& ws) const;

  /// Accumulates parameter gradients for dL/d-output `output_grad`, given the
  /// workspace and input from the matching forward() call.
  void backward(std::span<const float> input, const Workspace& ws,
                std::span<const float> output_grad);

  void zero_grad();

  /// Flat parameter/gradient views for the optimizer.
  std::vector<ParamRef> params();

  /// Copies parameter values from another identically shaped network
  /// (used to snapshot the policy for rollout workers).
  void copy_params_from(const Mlp& other);

  std::size_t param_count() const;

  const std::vector<std::size_t>& layer_sizes() const { return layer_sizes_; }

  /// All parameters as one flat vector, in params() order (per layer:
  /// weights then biases) — the serialization image of the network.
  std::vector<float> flat_params() const;

  /// Restores parameters from a flat_params() image. Throws deterrent::Error
  /// when the size does not match this network's shape.
  void set_flat_params(std::span<const float> flat);

 private:
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<float> w;   // row-major out×in
    std::vector<float> b;   // out
    std::vector<float> gw;  // gradient accumulators
    std::vector<float> gb;
  };

  std::vector<std::size_t> layer_sizes_;
  std::vector<Layer> layers_;
};

}  // namespace deterrent::rl

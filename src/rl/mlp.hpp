#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace deterrent::rl {

namespace kernels {
struct MlpKernelTable;
}  // namespace kernels

/// View over one parameter tensor and its gradient accumulator. The Adam
/// optimizer consumes a flat list of these.
struct ParamRef {
  float* values = nullptr;
  float* grads = nullptr;
  std::size_t size = 0;
};

/// Fully connected multi-layer perceptron with tanh hidden activations and a
/// linear output layer — the policy/value network architecture of the paper's
/// PPO agent (§2.2). Forward and backward passes are hand-written; gradients
/// are validated against finite differences in the test suite.
///
/// forward() is const and thread-safe, enabling lock-free vectorized rollouts
/// (multiple workers run inference on a shared network snapshot, §4.1).
class Mlp {
 public:
  /// layer_sizes = {input, hidden..., output}; weights get orthogonal-ish
  /// scaled-normal init, biases start at zero.
  Mlp(std::vector<std::size_t> layer_sizes, util::Rng& rng);

  std::size_t input_size() const { return layer_sizes_.front(); }
  std::size_t output_size() const { return layer_sizes_.back(); }

  /// Per-sample activation cache for backward().
  struct Workspace {
    std::vector<std::vector<float>> post;  ///< post-activation per layer (incl. output)
  };

  /// Computes the output for one observation. Thread-safe.
  std::vector<float> forward(std::span<const float> input, Workspace& ws) const;

  /// Accumulates parameter gradients for dL/d-output `output_grad`, given the
  /// workspace and input from the matching forward() call.
  void backward(std::span<const float> input, const Workspace& ws,
                std::span<const float> output_grad);

  /// Activation cache for a whole row batch (forward_batch / backward_batch).
  struct BatchWorkspace {
    std::size_t rows = 0;
    std::vector<std::vector<float>> post;  ///< per layer: rows × out, row-major
    std::vector<float> scratch;            ///< transposed input tile
    std::vector<unsigned char> nz;         ///< layer-0 tile: column has a nonzero
    std::vector<std::uint32_t> cols;       ///< layer-0 tile: nonzero column list
  };

  /// Computes outputs for `rows` stacked observations (row-major, rows ×
  /// input_size) in one matrix–matrix pass. Row r of the returned rows ×
  /// output_size span is bit-identical to forward() on that row alone: every
  /// output element is the same ascending-index accumulation chain, only the
  /// loop nest is tiled so the weight matrix is streamed once per row tile
  /// instead of once per row, and the inner products run on the widest
  /// SIMD kernel backend the host supports (mlp_kernels.hpp — all backends
  /// bit-identical, no FMA contraction). Input columns that are zero across
  /// the whole tile are skipped in the first layer: each skipped term is a
  /// signed zero added to an accumulator that can never hold -0.0f (biases
  /// start at +0 and IEEE round-to-nearest addition of nonzero terms cannot
  /// produce -0), so the skip is exact — and on this MDP's mostly-zero
  /// indicator observations it removes most of the layer-0 work.
  /// Thread-safe.
  std::span<const float> forward_batch(std::span<const float> input,
                                       std::size_t rows, BatchWorkspace& ws) const;

  /// Row-pointer variant: row r's observation lives at row_ptrs[r] (each
  /// input_size() floats). Bit-identical to gathering the rows into one
  /// contiguous buffer and calling the span overload — the batched trainer
  /// feeds shuffled minibatch rows and per-lane observations directly,
  /// skipping that gather copy. Thread-safe.
  std::span<const float> forward_batch(const float* const* row_ptrs,
                                       std::size_t rows, BatchWorkspace& ws) const;

  /// Batch counterpart of backward(): accumulates parameter gradients for the
  /// row-major rows × output_grads given the workspace and input of the
  /// matching forward_batch(). Two exact passes per layer: weight/bias
  /// gradients (rows ascending per parameter element, matching row-by-row
  /// backward()), then the input gradients (terms ascending in output index
  /// per element, also matching) — skipped entirely for the first layer,
  /// where backward() computes and discards them. The first layer's
  /// weight-gradient pass walks per-row nonzero column lists of the
  /// mostly-zero observations; skipping a g·(±0) term is exact because a
  /// gradient accumulator never holds −0.0f (it starts at +0 and
  /// round-to-nearest keeps every zero-valued sum at +0).
  void backward_batch(std::span<const float> input, const BatchWorkspace& ws,
                      std::span<const float> output_grads);

  /// Row-pointer variant of backward_batch(); pass the same row pointers as
  /// the matching forward_batch() call.
  void backward_batch(const float* const* row_ptrs, const BatchWorkspace& ws,
                      std::span<const float> output_grads);

  void zero_grad();

  /// Flat parameter/gradient views for the optimizer.
  std::vector<ParamRef> params();

  /// Copies parameter values from another identically shaped network
  /// (used to snapshot the policy for rollout workers).
  void copy_params_from(const Mlp& other);

  std::size_t param_count() const;

  const std::vector<std::size_t>& layer_sizes() const { return layer_sizes_; }

  /// All parameters as one flat vector, in params() order (per layer:
  /// weights then biases) — the serialization image of the network.
  std::vector<float> flat_params() const;

  /// Restores parameters from a flat_params() image. Throws deterrent::Error
  /// when the size does not match this network's shape.
  void set_flat_params(std::span<const float> flat);

 private:
  /// Shared implementations of the batched passes over a row accessor
  /// (contiguous span or scattered row pointers); instantiated in mlp.cpp.
  template <typename RowPtrFn>
  std::span<const float> forward_batch_impl(RowPtrFn row_ptr, std::size_t rows,
                                            BatchWorkspace& ws) const;
  template <typename RowPtrFn>
  void backward_batch_impl(RowPtrFn row_ptr, const BatchWorkspace& ws,
                           std::span<const float> output_grads);

  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<float> w;   // row-major out×in
    std::vector<float> b;   // out
    std::vector<float> gw;  // gradient accumulators
    std::vector<float> gb;
  };

  std::vector<std::size_t> layer_sizes_;
  std::vector<Layer> layers_;
  /// SIMD backend for the batched passes, selected at construction
  /// (DETERRENT_FORCE_ISA honored). Never serialized; every backend is
  /// bit-identical, so a checkpoint moves freely between hosts.
  const kernels::MlpKernelTable* kernels_;
};

}  // namespace deterrent::rl

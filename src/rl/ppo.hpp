#pragma once

#include <functional>
#include <memory>
#include <span>

#include "rl/adam.hpp"
#include "rl/env.hpp"
#include "rl/mlp.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::rl {

/// PPO hyperparameters. Defaults follow the common PPO recipe the paper
/// starts from; §3.4's "boosted exploration" sets entropy_coef = 1.0 and
/// gae_lambda = 0.99.
struct PpoConfig {
  float gamma = 0.99f;
  float gae_lambda = 0.95f;
  float clip_ratio = 0.2f;
  float learning_rate = 3e-4f;
  float entropy_coef = 0.0f;
  float value_coef = 0.5f;
  float max_grad_norm = 0.5f;
  int epochs = 4;
  std::size_t minibatch_size = 256;
  std::size_t episodes_per_update = 16;
  std::size_t hidden_size = 64;
  std::size_t hidden_layers = 2;
  /// Parallel rollout workers (vectorized environments). 1 = synchronous.
  std::size_t n_workers = 1;
  bool normalize_advantages = true;
};

/// Aggregate diagnostics of one update() call. The loss fields reproduce the
/// decomposition of §3.4: total = policy + c_eps·entropy_loss + c_v·value,
/// where entropy_loss = −entropy.
struct PpoUpdateStats {
  double mean_episode_reward = 0.0;
  double mean_episode_length = 0.0;
  double mean_entropy = 0.0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy_loss = 0.0;
  double total_loss = 0.0;
  std::size_t steps = 0;
  std::size_t episodes = 0;
};

/// Complete checkpoint of a PpoTrainer: network parameters, optimizer
/// moments, every RNG stream, and the step/episode counters. restore()-ing it
/// into a trainer built with the same config and env shapes resumes training
/// bit-identically — update N after a checkpoint/restore equals update N of
/// an uninterrupted run.
struct TrainerState {
  std::vector<float> policy_params;
  std::vector<float> value_params;
  AdamState policy_opt;
  AdamState value_opt;
  /// Shuffle stream first, then one stream per rollout worker (n_workers+1).
  std::vector<std::array<std::uint64_t, 4>> rng_states;
  std::uint64_t total_steps = 0;
  std::uint64_t total_episodes = 0;
};

/// Proximal Policy Optimization with clipped surrogate objective, separate
/// policy/value networks, GAE, masked categorical actions, and multi-threaded
/// rollout collection.
class PpoTrainer {
 public:
  using EnvFactory = std::function<std::unique_ptr<Env>(std::size_t worker_index)>;

  PpoTrainer(const EnvFactory& factory, const PpoConfig& config, std::uint64_t seed);
  ~PpoTrainer();

  TrainerState state() const;

  /// Restores a state() snapshot. Throws deterrent::Error when the snapshot
  /// shape disagrees with this trainer (different network sizes or worker
  /// count) — resuming under a changed config must fail loudly, not drift.
  void restore(const TrainerState& state);

  /// Collects config.episodes_per_update episodes (split across workers) and
  /// performs one PPO optimization phase.
  PpoUpdateStats update();

  /// Runs one episode with the current policy without learning;
  /// `greedy` picks argmax actions instead of sampling. Returns total reward.
  double run_episode(Env& env, util::Rng& rng, bool greedy = false) const;

  const Mlp& policy() const { return policy_; }
  const Mlp& value() const { return value_; }
  std::uint64_t total_steps() const { return total_steps_; }
  std::uint64_t total_episodes() const { return total_episodes_; }

  /// The live rollout environments (one per worker) — lets callers read
  /// implementation-specific statistics (e.g. SAT query counts) after training.
  std::span<const std::unique_ptr<Env>> envs() const { return envs_; }

 private:
  struct EpisodeBuffer {
    std::vector<std::vector<float>> observations;
    std::vector<util::BitVec> masks;
    std::vector<std::uint32_t> actions;
    std::vector<float> log_probs;
    std::vector<float> rewards;
    std::vector<float> values;
  };

  EpisodeBuffer collect_episode(Env& env, util::Rng& rng) const;

  PpoConfig config_;
  std::vector<std::unique_ptr<Env>> envs_;  // one per worker
  Mlp policy_;
  Mlp value_;
  Adam policy_opt_;
  Adam value_opt_;
  std::vector<util::Rng> worker_rngs_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::uint64_t total_steps_ = 0;
  std::uint64_t total_episodes_ = 0;
};

}  // namespace deterrent::rl

#pragma once

#include <functional>
#include <memory>
#include <span>

#include "rl/adam.hpp"
#include "rl/env.hpp"
#include "rl/mlp.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::rl {

/// PPO hyperparameters. Defaults follow the common PPO recipe the paper
/// starts from; §3.4's "boosted exploration" sets entropy_coef = 1.0 and
/// gae_lambda = 0.99.
struct PpoConfig {
  float gamma = 0.99f;
  float gae_lambda = 0.95f;
  float clip_ratio = 0.2f;
  float learning_rate = 3e-4f;
  float entropy_coef = 0.0f;
  float value_coef = 0.5f;
  float max_grad_norm = 0.5f;
  int epochs = 4;
  std::size_t minibatch_size = 256;
  std::size_t episodes_per_update = 16;
  std::size_t hidden_size = 64;
  std::size_t hidden_layers = 2;
  /// Parallel rollout workers (one scalar env per thread). 1 = synchronous.
  /// Mutually exclusive with rollout_lanes > 1.
  std::size_t n_workers = 1;
  /// Lock-step rollout lanes on one VectorEnv (single-threaded, batched
  /// network passes). 1 = the scalar collector. Every episode draws from an
  /// RNG stream keyed by its global episode index, so n_workers and
  /// rollout_lanes are pure throughput knobs: any worker or lane count
  /// collects bit-identical episodes and trains to bit-identical parameters
  /// (assuming the envs themselves are schedule-independent — see
  /// core::CompatibleSetVectorEnv's note on SAT conflict budgets). Mutually
  /// exclusive with n_workers > 1.
  std::size_t rollout_lanes = 1;
  bool normalize_advantages = true;
};

/// Aggregate diagnostics of one update() call. The loss fields reproduce the
/// decomposition of §3.4: total = policy + c_eps·entropy_loss + c_v·value,
/// where entropy_loss = −entropy.
struct PpoUpdateStats {
  double mean_episode_reward = 0.0;
  double mean_episode_length = 0.0;
  double mean_entropy = 0.0;
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy_loss = 0.0;
  double total_loss = 0.0;
  std::size_t steps = 0;
  std::size_t episodes = 0;
};

/// Complete checkpoint of a PpoTrainer: network parameters, optimizer
/// moments, every RNG stream, and the step/episode counters. restore()-ing it
/// into a trainer built with the same config and env shapes resumes training
/// bit-identically — update N after a checkpoint/restore equals update N of
/// an uninterrupted run.
struct TrainerState {
  std::vector<float> policy_params;
  std::vector<float> value_params;
  AdamState policy_opt;
  AdamState value_opt;
  /// The minibatch-shuffle stream. Rollout episodes draw from streams keyed
  /// by (seed, global episode index) instead of persistent per-worker
  /// streams, so a checkpoint restores bit-identically into a trainer with a
  /// different n_workers or rollout_lanes.
  std::vector<std::array<std::uint64_t, 4>> rng_states;
  /// The trainer seed — the key from which episode RNG streams are derived.
  /// Restored alongside the streams so a snapshot resumes the same episode
  /// sequence even in a trainer constructed with a different seed.
  std::uint64_t seed = 0;
  std::uint64_t total_steps = 0;
  std::uint64_t total_episodes = 0;
};

/// Proximal Policy Optimization with clipped surrogate objective, separate
/// policy/value networks, GAE, masked categorical actions, and multi-threaded
/// rollout collection.
class PpoTrainer {
 public:
  using EnvFactory = std::function<std::unique_ptr<Env>(std::size_t worker_index)>;
  using VectorEnvFactory =
      std::function<std::unique_ptr<VectorEnv>(std::size_t lanes)>;

  /// `factory` builds the scalar rollout envs (and shape probes). With
  /// config.rollout_lanes > 1 the trainer collects on a VectorEnv instead:
  /// `vector_factory(lanes)` when provided, else a generic EnvVector over
  /// `factory`-built lanes. Throws deterrent::Error when both n_workers and
  /// rollout_lanes exceed 1 — the two collectors own the same RNG streams.
  PpoTrainer(const EnvFactory& factory, const PpoConfig& config, std::uint64_t seed,
             const VectorEnvFactory& vector_factory = nullptr);
  ~PpoTrainer();

  TrainerState state() const;

  /// Restores a state() snapshot. Throws deterrent::Error when the snapshot
  /// shape disagrees with this trainer (different network sizes) — resuming
  /// under a changed architecture must fail loudly, not drift. Worker and
  /// lane counts are NOT part of the shape: episode RNG streams are keyed by
  /// global episode index, so a snapshot resumes bit-identically under any
  /// n_workers or rollout_lanes.
  void restore(const TrainerState& state);

  /// Collects config.episodes_per_update episodes (split across workers) and
  /// performs one PPO optimization phase.
  PpoUpdateStats update();

  /// Runs one episode with the current policy without learning;
  /// `greedy` picks argmax actions instead of sampling. Returns total reward.
  double run_episode(Env& env, util::Rng& rng, bool greedy = false) const;

  const Mlp& policy() const { return policy_; }
  const Mlp& value() const { return value_; }
  std::uint64_t total_steps() const { return total_steps_; }
  std::uint64_t total_episodes() const { return total_episodes_; }

  /// The live rollout environments (one per worker) — lets callers read
  /// implementation-specific statistics (e.g. SAT query counts) after training.
  /// Empty when the trainer collects on a VectorEnv (see vector_env()).
  std::span<const std::unique_ptr<Env>> envs() const { return envs_; }

  /// The batched rollout environment, or nullptr when rollout_lanes == 1.
  const VectorEnv* vector_env() const { return vector_env_.get(); }

 private:
  struct EpisodeBuffer {
    std::vector<std::vector<float>> observations;
    std::vector<util::BitVec> masks;
    std::vector<std::uint32_t> actions;
    std::vector<float> log_probs;
    std::vector<float> rewards;
    std::vector<float> values;
  };

  EpisodeBuffer collect_episode(Env& env, util::Rng& rng) const;
  void collect_vectorized(std::vector<EpisodeBuffer>& episodes);
  /// The RNG stream for the episode with global index `index` — the key to
  /// the collector-independence contract: the stream depends only on the
  /// trainer seed and the episode's position in training, never on which
  /// worker thread or rollout lane runs it.
  util::Rng episode_rng(std::uint64_t index) const;

  PpoConfig config_;
  std::uint64_t seed_ = 0;
  std::vector<std::unique_ptr<Env>> envs_;  // one per worker (scalar collector)
  std::unique_ptr<VectorEnv> vector_env_;   // batched collector (lanes > 1)
  Mlp policy_;
  Mlp value_;
  Adam policy_opt_;
  Adam value_opt_;
  std::vector<util::Rng> worker_rngs_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::uint64_t total_steps_ = 0;
  std::uint64_t total_episodes_ = 0;
};

}  // namespace deterrent::rl

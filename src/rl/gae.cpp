#include "rl/gae.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace deterrent::rl {

GaeResult compute_gae(std::span<const float> rewards, std::span<const float> values,
                      float gamma, float lambda) {
  DETERRENT_ASSERT(rewards.size() == values.size(), "GAE input size mismatch");
  const std::size_t n = rewards.size();
  GaeResult result;
  // Zero-length episodes are legal input: a rollout can emit one when an env
  // resets straight into an exhausted action mask (or max_steps races a
  // terminal first step). Empty in, empty out — callers must not have to
  // pre-filter.
  if (n == 0) return result;
  result.advantages.assign(n, 0.0f);
  result.returns.assign(n, 0.0f);

  float gae = 0.0f;
  for (std::size_t t = n; t-- > 0;) {
    const float next_value = (t + 1 < n) ? values[t + 1] : 0.0f;
    const float delta = rewards[t] + gamma * next_value - values[t];
    gae = delta + gamma * lambda * gae;
    result.advantages[t] = gae;
    result.returns[t] = gae + values[t];
  }
  return result;
}

void normalize_advantages(std::span<float> advantages) {
  if (advantages.size() < 2) return;
  double mean = 0.0;
  for (const float a : advantages) mean += a;
  mean /= static_cast<double>(advantages.size());
  double var = 0.0;
  for (const float a : advantages) var += (a - mean) * (a - mean);
  var /= static_cast<double>(advantages.size());
  const double std_dev = std::sqrt(var) + 1e-8;
  for (float& a : advantages)
    a = static_cast<float>((a - mean) / std_dev);
}

}  // namespace deterrent::rl

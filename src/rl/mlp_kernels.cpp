// Scalar MLP batch kernels + backend dispatch. The wide backends live in
// their own ISA-flagged TUs (mlp_kernels_avx2.cpp, mlp_kernels_avx512.cpp);
// this TU is compiled with base flags only, so the scalar loops here round
// exactly like rl::Mlp's per-sample loops on the same host.
#include "rl/mlp_kernels.hpp"

#include <cmath>
#include <cstdlib>
#include <string>
#include <string_view>

#include "util/assert.hpp"

namespace deterrent::rl::kernels {

namespace {

void matvec_cols_scalar(const float* w, const float* xt, const std::uint32_t* cols,
                        std::size_t n_cols, float bias, float* acc) {
  for (std::size_t n = 0; n < kMlpLanes; ++n) acc[n] = bias;
  for (std::size_t j = 0; j < n_cols; ++j) {
    const std::size_t i = cols[j];
    const float wv = w[i];
    const float* xr = xt + i * kMlpLanes;
    for (std::size_t n = 0; n < kMlpLanes; ++n) acc[n] += wv * xr[n];
  }
}

void matvec_dense_scalar(const float* w, const float* xt, std::size_t in,
                         float bias, float* acc) {
  for (std::size_t n = 0; n < kMlpLanes; ++n) acc[n] = bias;
  for (std::size_t i = 0; i < in; ++i) {
    const float wv = w[i];
    const float* xr = xt + i * kMlpLanes;
    for (std::size_t n = 0; n < kMlpLanes; ++n) acc[n] += wv * xr[n];
  }
}

void axpy_scalar(float g, const float* x, float* acc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += g * x[i];
}

void adam_step_scalar(float* values, float* m, float* v, const float* grads,
                      std::size_t n, const MlpKernelTable::AdamArgs& a) {
  for (std::size_t i = 0; i < n; ++i) {
    const float g = grads[i] * a.scale;
    m[i] = a.beta1 * m[i] + (1.0f - a.beta1) * g;
    v[i] = a.beta2 * v[i] + (1.0f - a.beta2) * g * g;
    const double m_hat = m[i] / a.bias1;
    const double v_hat = v[i] / a.bias2;
    values[i] -= static_cast<float>(a.lr * m_hat / (std::sqrt(v_hat) + a.eps));
  }
}

constinit const MlpKernelTable kScalarTable{
    MlpIsa::Scalar,      "scalar",     &matvec_cols_scalar,
    &matvec_dense_scalar, &axpy_scalar, &adam_step_scalar};

const MlpKernelTable* table_or_null(MlpIsa isa) {
  switch (isa) {
    case MlpIsa::Scalar: return mlp_scalar_table();
    case MlpIsa::Avx2: return mlp_avx2_table();
    case MlpIsa::Avx512: return mlp_avx512_table();
  }
  return nullptr;
}

bool cpu_supports(MlpIsa isa) {
  switch (isa) {
    case MlpIsa::Scalar:
      return true;
    case MlpIsa::Avx2:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case MlpIsa::Avx512:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

}  // namespace

const MlpKernelTable* mlp_scalar_table() { return &kScalarTable; }

const char* to_string(MlpIsa isa) {
  switch (isa) {
    case MlpIsa::Scalar: return "scalar";
    case MlpIsa::Avx2: return "avx2";
    case MlpIsa::Avx512: return "avx512";
  }
  return "?";
}

bool mlp_isa_supported(MlpIsa isa) {
  return table_or_null(isa) != nullptr && cpu_supports(isa);
}

std::vector<MlpIsa> supported_mlp_isas() {
  std::vector<MlpIsa> out;
  for (const MlpIsa isa : {MlpIsa::Scalar, MlpIsa::Avx2, MlpIsa::Avx512})
    if (mlp_isa_supported(isa)) out.push_back(isa);
  return out;
}

const MlpKernelTable& mlp_kernel_table(MlpIsa isa) {
  const MlpKernelTable* table = table_or_null(isa);
  if (table == nullptr)
    throw Error(std::string("MLP kernel backend '") + to_string(isa) +
                "' is not compiled into this binary");
  if (!cpu_supports(isa))
    throw Error(std::string("MLP kernel backend '") + to_string(isa) +
                "' is not supported by this CPU");
  return *table;
}

const MlpKernelTable& select_mlp_kernels() {
  const char* env = std::getenv("DETERRENT_FORCE_ISA");
  if (env != nullptr && *env != '\0') {
    const std::string_view name(env);
    // "neon" pins the sim engine's NEON backend; the RL side has no NEON TU,
    // so it means "base flags" here — i.e. the scalar table.
    if (name == "scalar" || name == "neon") return *mlp_scalar_table();
    if (name == "avx2") return mlp_kernel_table(MlpIsa::Avx2);
    if (name == "avx512") return mlp_kernel_table(MlpIsa::Avx512);
    throw Error(std::string("DETERRENT_FORCE_ISA: unknown ISA '") + env +
                "' (expected scalar|avx2|avx512|neon)");
  }
  MlpIsa best = MlpIsa::Scalar;
  for (const MlpIsa isa : {MlpIsa::Avx2, MlpIsa::Avx512})
    if (mlp_isa_supported(isa)) best = isa;
  return *table_or_null(best);
}

}  // namespace deterrent::rl::kernels

#pragma once

#include <span>
#include <vector>

namespace deterrent::rl {

/// Generalized Advantage Estimation over one finite episode.
///
/// advantages[t] = Σ_k (γλ)^k δ_{t+k},  δ_t = r_t + γ V(s_{t+1}) − V(s_t),
/// with V(s_T) = 0 at the terminal state. `lambda` is the smoothing parameter
/// the paper raises to 0.99 to boost exploration variance (§3.4).
///
/// returns[t] = advantages[t] + values[t] are the value-function targets.
struct GaeResult {
  std::vector<float> advantages;
  std::vector<float> returns;
};

GaeResult compute_gae(std::span<const float> rewards, std::span<const float> values,
                      float gamma, float lambda);

/// Normalizes advantages to zero mean / unit variance in place (a standard
/// PPO stabilization; skipped when fewer than two samples).
void normalize_advantages(std::span<float> advantages);

}  // namespace deterrent::rl

#include "rl/categorical.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace deterrent::rl {

namespace {
constexpr float kNegInf = -std::numeric_limits<float>::infinity();
}

MaskedCategorical::MaskedCategorical(std::span<const float> logits,
                                     const util::BitVec& mask)
    : mask_(&mask) {
  DETERRENT_ASSERT(logits.size() == mask.size(), "logits/mask size mismatch");
  DETERRENT_ASSERT(mask.any(), "masked categorical requires a valid action");

  const std::size_t n = logits.size();
  probs_.assign(n, 0.0f);
  log_probs_.assign(n, kNegInf);

  // Numerically stable masked log-softmax.
  float max_logit = kNegInf;
  for (std::size_t i = mask.find_first(); i < n; i = mask.find_next(i + 1))
    max_logit = std::max(max_logit, logits[i]);

  double z = 0.0;
  for (std::size_t i = mask.find_first(); i < n; i = mask.find_next(i + 1))
    z += std::exp(static_cast<double>(logits[i] - max_logit));
  const float log_z = static_cast<float>(std::log(z)) + max_logit;

  double h = 0.0;
  for (std::size_t i = mask.find_first(); i < n; i = mask.find_next(i + 1)) {
    const float lp = logits[i] - log_z;
    log_probs_[i] = lp;
    const float p = std::exp(lp);
    probs_[i] = p;
    if (p > 0.0f) h -= static_cast<double>(p) * lp;
  }
  entropy_ = static_cast<float>(h);
}

float MaskedCategorical::log_prob(std::uint32_t action) const {
  DETERRENT_ASSERT(action < log_probs_.size() && mask_->test(action),
                   "log_prob of masked action");
  return log_probs_[action];
}

float MaskedCategorical::entropy() const { return entropy_; }

std::uint32_t MaskedCategorical::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  double cdf = 0.0;
  std::size_t last_valid = 0;
  for (std::size_t i = mask_->find_first(); i < probs_.size();
       i = mask_->find_next(i + 1)) {
    cdf += probs_[i];
    last_valid = i;
    if (u < cdf) return static_cast<std::uint32_t>(i);
  }
  return static_cast<std::uint32_t>(last_valid);  // guard against rounding
}

std::uint32_t MaskedCategorical::argmax() const {
  std::size_t best = mask_->find_first();
  for (std::size_t i = mask_->find_next(best + 1); i < probs_.size();
       i = mask_->find_next(i + 1))
    if (probs_[i] > probs_[best]) best = i;
  return static_cast<std::uint32_t>(best);
}

void MaskedCategorical::add_grad(std::uint32_t action, float g, float h,
                                 std::span<float> grad) const {
  DETERRENT_ASSERT(grad.size() == probs_.size(), "grad size mismatch");
  for (std::size_t i = mask_->find_first(); i < probs_.size();
       i = mask_->find_next(i + 1)) {
    const float p = probs_[i];
    float d = -g * p;
    if (static_cast<std::uint32_t>(i) == action) d += g;
    if (h != 0.0f && p > 0.0f) d -= h * p * (log_probs_[i] + entropy_);
    grad[i] += d;
  }
}

}  // namespace deterrent::rl

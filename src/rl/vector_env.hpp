#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rl/env.hpp"

namespace deterrent::rl {

/// Generic VectorEnv adapter over N independent scalar Env instances.
///
/// Gives any Env a lock-step batch surface for free: lane l is envs[l], and
/// every VectorEnv guarantee (lane independence, frozen done lanes) follows
/// from the Env-per-lane layout. Specialized batch implementations
/// (core::CompatibleSetVectorEnv) beat it on shared state and batched
/// reward checks; the differential suite uses this adapter as the reference.
class EnvVector final : public VectorEnv {
 public:
  /// Takes ownership of the lanes; all must share observation/action shapes.
  explicit EnvVector(std::vector<std::unique_ptr<Env>> envs);

  /// Convenience: builds N lanes from a factory(lane_index) callback.
  EnvVector(std::size_t lanes,
            const std::function<std::unique_ptr<Env>(std::size_t)>& factory);

  std::size_t lanes() const override { return envs_.size(); }
  std::size_t observation_size() const override;
  std::size_t action_count() const override;
  void reset_lane(std::size_t lane, util::Rng& rng) override;
  void step(std::span<const std::uint32_t> actions,
            const util::BitVec& active) override;
  std::span<const float> observation(std::size_t lane) const override;
  const util::BitVec& action_mask(std::size_t lane) const override;
  float reward(std::size_t lane) const override;
  bool done(std::size_t lane) const override;

  /// The wrapped per-lane environment (statistics readout).
  const Env& lane_env(std::size_t lane) const { return *envs_[lane]; }

 private:
  struct Lane {
    std::vector<float> observation;
    float reward = 0.0f;
    bool done = true;  // unfrozen only by reset_lane()
  };

  std::vector<std::unique_ptr<Env>> envs_;
  std::vector<Lane> lanes_;
};

}  // namespace deterrent::rl

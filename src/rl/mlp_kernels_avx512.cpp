// AVX-512 MLP batch kernels: one 16-float register is exactly one batch
// tile. Compiled with -mavx512f -ffp-contract=off (see CMakeLists.txt):
// AVX-512F includes FMA encodings, so contraction MUST be off — every
// multiply and add here rounds separately via explicit mul/add intrinsics,
// bit-identical to the scalar table. When the flag is unavailable the TU
// degrades to a nullptr factory.
#include "rl/mlp_kernel_table.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace deterrent::rl::kernels {
namespace {

static_assert(kMlpLanes == 16, "AVX-512 kernels assume one zmm per tile");

void matvec_cols_avx512(const float* w, const float* xt, const std::uint32_t* cols,
                        std::size_t n_cols, float bias, float* acc) {
  __m512 a = _mm512_set1_ps(bias);
  for (std::size_t j = 0; j < n_cols; ++j) {
    const std::size_t i = cols[j];
    const __m512 wv = _mm512_set1_ps(w[i]);
    a = _mm512_add_ps(a, _mm512_mul_ps(wv, _mm512_loadu_ps(xt + i * kMlpLanes)));
  }
  _mm512_storeu_ps(acc, a);
}

void matvec_dense_avx512(const float* w, const float* xt, std::size_t in,
                         float bias, float* acc) {
  __m512 a = _mm512_set1_ps(bias);
  for (std::size_t i = 0; i < in; ++i) {
    const __m512 wv = _mm512_set1_ps(w[i]);
    a = _mm512_add_ps(a, _mm512_mul_ps(wv, _mm512_loadu_ps(xt + i * kMlpLanes)));
  }
  _mm512_storeu_ps(acc, a);
}

void axpy_avx512(float g, const float* x, float* acc, std::size_t n) {
  const __m512 gv = _mm512_set1_ps(g);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 prod = _mm512_mul_ps(gv, _mm512_loadu_ps(x + i));
    _mm512_storeu_ps(acc + i, _mm512_add_ps(_mm512_loadu_ps(acc + i), prod));
  }
  for (; i < n; ++i) acc[i] += g * x[i];
}

// GCC 12 flags the undefined merge operand inside the masked
// _mm512_cvtps_pd / _mm512_sqrt_pd header implementations (PR105593);
// the operand is dead under the all-ones mask. Scoped suppression.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// lr·(m/bias1) / (sqrt(v/bias2) + eps) for one 8-double half of a zmm of
// moments. div, sqrt, and the float↔double conversions are all correctly
// rounded, so the half matches the scalar element sequence bit for bit.
__m256 adam_update_half(__m256 m_ps, __m256 v_ps, __m512d bias1, __m512d bias2,
                        __m512d lr, __m512d eps) {
  const __m512d m_hat = _mm512_div_pd(_mm512_cvtps_pd(m_ps), bias1);
  const __m512d v_hat = _mm512_div_pd(_mm512_cvtps_pd(v_ps), bias2);
  const __m512d denom = _mm512_add_pd(_mm512_sqrt_pd(v_hat), eps);
  return _mm512_cvtpd_ps(_mm512_div_pd(_mm512_mul_pd(lr, m_hat), denom));
}

void adam_step_avx512(float* values, float* m, float* v, const float* grads,
                      std::size_t n, const MlpKernelTable::AdamArgs& a) {
  // 8 floats per iteration: the float moment updates run 256-bit, the
  // expensive double part (div, sqrt, div) runs full 512-bit width in
  // adam_update_half. Widening the float half to 16 lanes would need
  // 512↔256 lane shuffles that cost more than the two cheap mul/adds save.
  const __m256 scale = _mm256_set1_ps(a.scale);
  const __m256 b1 = _mm256_set1_ps(a.beta1);
  const __m256 omb1 = _mm256_set1_ps(1.0f - a.beta1);
  const __m256 b2 = _mm256_set1_ps(a.beta2);
  const __m256 omb2 = _mm256_set1_ps(1.0f - a.beta2);
  const __m512d bias1 = _mm512_set1_pd(a.bias1);
  const __m512d bias2 = _mm512_set1_pd(a.bias2);
  const __m512d lr = _mm512_set1_pd(static_cast<double>(a.lr));
  const __m512d eps = _mm512_set1_pd(static_cast<double>(a.eps));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 g = _mm256_mul_ps(_mm256_loadu_ps(grads + i), scale);
    const __m256 mv = _mm256_add_ps(_mm256_mul_ps(b1, _mm256_loadu_ps(m + i)),
                                    _mm256_mul_ps(omb1, g));
    const __m256 vv = _mm256_add_ps(_mm256_mul_ps(b2, _mm256_loadu_ps(v + i)),
                                    _mm256_mul_ps(_mm256_mul_ps(omb2, g), g));
    _mm256_storeu_ps(m + i, mv);
    _mm256_storeu_ps(v + i, vv);
    const __m256 upd = adam_update_half(mv, vv, bias1, bias2, lr, eps);
    _mm256_storeu_ps(values + i,
                     _mm256_sub_ps(_mm256_loadu_ps(values + i), upd));
  }
  for (; i < n; ++i) {
    const float g = grads[i] * a.scale;
    m[i] = a.beta1 * m[i] + (1.0f - a.beta1) * g;
    v[i] = a.beta2 * v[i] + (1.0f - a.beta2) * g * g;
    const double m_hat = m[i] / a.bias1;
    const double v_hat = v[i] / a.bias2;
    values[i] -=
        static_cast<float>(a.lr * m_hat / (__builtin_sqrt(v_hat) + a.eps));
  }
}

#pragma GCC diagnostic pop

// constinit: the factory runs on every host during backend detection, so
// this -mavx512f TU must emit no initialization code.
constinit const MlpKernelTable kTable{MlpIsa::Avx512, "avx512",
                                      &matvec_cols_avx512, &matvec_dense_avx512,
                                      &axpy_avx512, &adam_step_avx512};

}  // namespace

const MlpKernelTable* mlp_avx512_table() { return &kTable; }

}  // namespace deterrent::rl::kernels

#else  // !defined(__AVX512F__)

namespace deterrent::rl::kernels {
const MlpKernelTable* mlp_avx512_table() { return nullptr; }
}  // namespace deterrent::rl::kernels

#endif

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace deterrent::rl {

/// Result of one environment step.
struct StepResult {
  std::vector<float> observation;
  float reward = 0.0f;
  bool done = false;
};

/// Episodic environment with a discrete, maskable action space — the
/// interface the PPO trainer drives. Implementations must be independent per
/// instance: the trainer creates one per rollout worker (vectorized
/// environments, §4.1).
class Env {
 public:
  virtual ~Env() = default;

  virtual std::size_t observation_size() const = 0;
  virtual std::size_t action_count() const = 0;

  /// Starts a new episode; returns the initial observation.
  virtual std::vector<float> reset(util::Rng& rng) = 0;

  /// Applies an action. Must only be called with a currently valid action.
  virtual StepResult step(std::uint32_t action) = 0;

  /// Valid actions in the current state (bit per action, at least one set
  /// while the episode is running). Environments without masking return the
  /// all-ones mask.
  virtual const util::BitVec& action_mask() const = 0;
};

/// Lock-step batch of N environment lanes — the vectorized rollout surface.
///
/// Each lane is an independent copy of the MDP: its trajectory depends only
/// on the RNG stream reset_lane() was fed and the actions applied to it, never
/// on sibling lanes. That contract is what makes an N-lane rollout
/// bit-identical to N sequential single-env rollouts (the differential suite
/// in test_rl_vector.cpp pins it).
///
/// Lifecycle per lane: reset_lane() opens an episode; step() advances every
/// lane whose bit is set in `active`; once done(lane) reports true (or the
/// lane's mask runs empty) the lane is *frozen* — its observation, mask, and
/// reward are snapshots of the terminal state and must not change until the
/// next reset_lane(). Stepping a frozen or inactive lane is a contract
/// violation.
class VectorEnv {
 public:
  virtual ~VectorEnv() = default;

  virtual std::size_t lanes() const = 0;
  virtual std::size_t observation_size() const = 0;
  virtual std::size_t action_count() const = 0;

  /// Starts a new episode in `lane`, drawing randomness only from `rng`
  /// (the caller owns per-lane streams). Other lanes are untouched.
  virtual void reset_lane(std::size_t lane, util::Rng& rng) = 0;

  /// Advances every lane whose bit is set in `active` by one step.
  /// `actions[lane]` must be valid under that lane's current mask; entries of
  /// inactive lanes are ignored. Inactive and done lanes stay frozen.
  virtual void step(std::span<const std::uint32_t> actions,
                    const util::BitVec& active) = 0;

  /// Current observation of `lane` (terminal observation once done).
  virtual std::span<const float> observation(std::size_t lane) const = 0;

  /// Valid actions of `lane` in its current state.
  virtual const util::BitVec& action_mask(std::size_t lane) const = 0;

  /// Reward earned by `lane` on the most recent step() that touched it.
  virtual float reward(std::size_t lane) const = 0;

  /// Whether `lane`'s episode has terminated (frozen until reset_lane()).
  virtual bool done(std::size_t lane) const = 0;
};

}  // namespace deterrent::rl

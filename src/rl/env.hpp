#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace deterrent::rl {

/// Result of one environment step.
struct StepResult {
  std::vector<float> observation;
  float reward = 0.0f;
  bool done = false;
};

/// Episodic environment with a discrete, maskable action space — the
/// interface the PPO trainer drives. Implementations must be independent per
/// instance: the trainer creates one per rollout worker (vectorized
/// environments, §4.1).
class Env {
 public:
  virtual ~Env() = default;

  virtual std::size_t observation_size() const = 0;
  virtual std::size_t action_count() const = 0;

  /// Starts a new episode; returns the initial observation.
  virtual std::vector<float> reset(util::Rng& rng) = 0;

  /// Applies an action. Must only be called with a currently valid action.
  virtual StepResult step(std::uint32_t action) = 0;

  /// Valid actions in the current state (bit per action, at least one set
  /// while the episode is running). Environments without masking return the
  /// all-ones mask.
  virtual const util::BitVec& action_mask() const = 0;
};

}  // namespace deterrent::rl

#pragma once

#include <cstddef>
#include <cstdint>

// Kernel-table core shared by rl::Mlp's batched passes and the per-ISA
// backend TUs (mlp_kernels_scalar section of mlp_kernels.cpp,
// mlp_kernels_avx2.cpp, mlp_kernels_avx512.cpp). Deliberately minimal for the
// same reason as sim/kernels/kernel_table.hpp: the backend TUs are compiled
// with ISA-specific flags and must not instantiate code that could be
// comdat-folded with normally-compiled copies.
//
// Bit-exactness contract: every kernel computes each output element as the
// SAME sequence of separate multiplies and adds the scalar loops perform —
// vectorization runs across independent elements (batch lanes in the matvec,
// vector indices in the axpy), never across the terms of one accumulation
// chain, and no backend may contract a multiply-add into an FMA. This is
// what keeps the batched trainer bit-identical to the scalar one on every
// backend, and all backends bit-identical to each other.

namespace deterrent::rl::kernels {

/// Rows per tile of the batched passes — one AVX-512 register of lanes.
/// Large enough that the weight matrix streams once per ~16 rows instead of
/// once per row, small enough that a transposed input tile plus the
/// accumulator block stay L1-resident.
inline constexpr std::size_t kMlpLanes = 16;

/// Backends for the MLP batch kernels. Mirrors sim::kernels::Isa but kept
/// separate: the RL kernels are float math with their own exactness contract
/// (no FMA), and not every sim backend needs an RL counterpart — hosts
/// without a wide backend (including aarch64) run the scalar table, which
/// the compiler's base flags already auto-vectorize element-wise.
enum class MlpIsa : std::uint8_t { Scalar, Avx2, Avx512 };

struct MlpKernelTable {
  MlpIsa isa;
  const char* name;

  /// acc[n] = bias, then for j ascending in [0, n_cols):
  ///   acc[n] += w[cols[j]] * xt[cols[j] * kMlpLanes + n]   for all 16 lanes.
  /// The column list is how the layer-0 forward skips all-zero input
  /// columns; passing the identity list is the dense product.
  void (*matvec_cols)(const float* w, const float* xt, const std::uint32_t* cols,
                      std::size_t n_cols, float bias, float* acc);

  /// acc[n] = bias, then for i ascending in [0, in):
  ///   acc[n] += w[i] * xt[i * kMlpLanes + n]   for all 16 lanes.
  void (*matvec_dense)(const float* w, const float* xt, std::size_t in,
                       float bias, float* acc);

  /// acc[i] += g * x[i] for i in [0, n) — the backward pass primitive (one
  /// term per element, so lane width cannot reassociate anything).
  void (*axpy)(float g, const float* x, float* acc, std::size_t n);

  /// Per-step constants of the Adam update, precomputed once per step() call.
  struct AdamArgs {
    float scale;    ///< gradient clip scale (1 when clipping is off/inactive)
    float beta1;
    float beta2;
    float lr;
    float eps;
    double bias1;   ///< 1 - beta1^t
    double bias2;   ///< 1 - beta2^t
  };

  /// One Adam update over n independent elements, replicating exactly the
  /// scalar sequence per element (float moment updates, double bias
  /// correction / sqrt / divisions, final round to float). Every operation is
  /// elementwise and correctly rounded (IEEE div and sqrt included), so wide
  /// backends are bit-identical to the scalar loop.
  void (*adam_step)(float* values, float* m, float* v, const float* grads,
                    std::size_t n, const AdamArgs& args);
};

/// Backend factories; a factory returns nullptr when its TU was compiled
/// without the required flags. Defined in mlp_kernels.cpp (scalar) and the
/// per-ISA TUs.
const MlpKernelTable* mlp_scalar_table();
const MlpKernelTable* mlp_avx2_table();
const MlpKernelTable* mlp_avx512_table();

}  // namespace deterrent::rl::kernels

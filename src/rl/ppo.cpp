#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>

#include "rl/categorical.hpp"
#include "rl/gae.hpp"
#include "util/assert.hpp"

namespace deterrent::rl {

namespace {

std::vector<std::size_t> mlp_shape(std::size_t in, std::size_t hidden,
                                   std::size_t hidden_layers, std::size_t out) {
  std::vector<std::size_t> shape{in};
  for (std::size_t i = 0; i < hidden_layers; ++i) shape.push_back(hidden);
  shape.push_back(out);
  return shape;
}

util::Rng seeded_rng(std::uint64_t seed, std::uint64_t stream) {
  return util::Rng(seed * 0x9e3779b97f4a7c15ULL + stream + 1);
}

}  // namespace

PpoTrainer::PpoTrainer(const EnvFactory& factory, const PpoConfig& config,
                       std::uint64_t seed)
    : config_(config),
      policy_([&] {
        auto rng = seeded_rng(seed, 0);
        auto probe = factory(0);
        return Mlp(mlp_shape(probe->observation_size(), config.hidden_size,
                             config.hidden_layers, probe->action_count()),
                   rng);
      }()),
      value_([&] {
        auto rng = seeded_rng(seed, 1);
        auto probe = factory(0);
        return Mlp(mlp_shape(probe->observation_size(), config.hidden_size,
                             config.hidden_layers, 1),
                   rng);
      }()),
      policy_opt_(policy_.params(), {config.learning_rate}),
      value_opt_(value_.params(), {config.learning_rate}) {
  DETERRENT_ASSERT(config_.n_workers >= 1, "PPO requires at least one worker");
  envs_.reserve(config_.n_workers);
  for (std::size_t w = 0; w < config_.n_workers; ++w) envs_.push_back(factory(w));
  // Stream 2 is the trainer's shuffling rng; workers use streams 3, 4, ….
  worker_rngs_.reserve(config_.n_workers + 1);
  for (std::size_t w = 0; w < config_.n_workers + 1; ++w)
    worker_rngs_.push_back(seeded_rng(seed, 2 + w));
  if (config_.n_workers > 1)
    pool_ = std::make_unique<util::ThreadPool>(config_.n_workers);
}

PpoTrainer::~PpoTrainer() = default;

TrainerState PpoTrainer::state() const {
  TrainerState s;
  s.policy_params = policy_.flat_params();
  s.value_params = value_.flat_params();
  s.policy_opt = policy_opt_.state();
  s.value_opt = value_opt_.state();
  s.rng_states.reserve(worker_rngs_.size());
  for (const auto& rng : worker_rngs_) s.rng_states.push_back(rng.state());
  s.total_steps = total_steps_;
  s.total_episodes = total_episodes_;
  return s;
}

void PpoTrainer::restore(const TrainerState& state) {
  if (state.rng_states.size() != worker_rngs_.size())
    throw Error("PpoTrainer::restore: snapshot has " +
                std::to_string(state.rng_states.size()) + " RNG streams, trainer has " +
                std::to_string(worker_rngs_.size()) +
                " (was it saved with a different n_workers?)");
  policy_.set_flat_params(state.policy_params);
  value_.set_flat_params(state.value_params);
  policy_opt_.restore(state.policy_opt);
  value_opt_.restore(state.value_opt);
  for (std::size_t i = 0; i < worker_rngs_.size(); ++i)
    worker_rngs_[i].set_state(state.rng_states[i]);
  total_steps_ = state.total_steps;
  total_episodes_ = state.total_episodes;
}

PpoTrainer::EpisodeBuffer PpoTrainer::collect_episode(Env& env, util::Rng& rng) const {
  EpisodeBuffer buffer;
  std::vector<float> obs = env.reset(rng);
  Mlp::Workspace policy_ws;
  Mlp::Workspace value_ws;

  bool done = false;
  while (!done) {
    util::BitVec mask = env.action_mask();  // copy: env mutates it on step
    if (mask.none()) break;  // no legal action ⇒ episode over (mask exhausted)

    const auto logits = policy_.forward(obs, policy_ws);
    const MaskedCategorical dist(logits, mask);
    const std::uint32_t action = dist.sample(rng);
    const float log_prob = dist.log_prob(action);
    const float value = value_.forward(obs, value_ws)[0];

    StepResult step = env.step(action);

    buffer.observations.push_back(std::move(obs));
    buffer.masks.push_back(std::move(mask));
    buffer.actions.push_back(action);
    buffer.log_probs.push_back(log_prob);
    buffer.rewards.push_back(step.reward);
    buffer.values.push_back(value);

    obs = std::move(step.observation);
    done = step.done;
  }
  return buffer;
}

double PpoTrainer::run_episode(Env& env, util::Rng& rng, bool greedy) const {
  std::vector<float> obs = env.reset(rng);
  Mlp::Workspace ws;
  double total = 0.0;
  bool done = false;
  while (!done) {
    const util::BitVec mask = env.action_mask();
    if (mask.none()) break;
    const auto logits = policy_.forward(obs, ws);
    const MaskedCategorical dist(logits, mask);
    const std::uint32_t action = greedy ? dist.argmax() : dist.sample(rng);
    StepResult step = env.step(action);
    total += step.reward;
    obs = std::move(step.observation);
    done = step.done;
  }
  return total;
}

PpoUpdateStats PpoTrainer::update() {
  // ---- rollout collection (possibly across worker threads) ----------------
  const std::size_t n_episodes = config_.episodes_per_update;
  std::vector<EpisodeBuffer> episodes(n_episodes);

  auto run_worker = [&](std::size_t w) {
    for (std::size_t e = w; e < n_episodes; e += config_.n_workers)
      episodes[e] = collect_episode(*envs_[w], worker_rngs_[1 + w]);
  };
  if (pool_) {
    for (std::size_t w = 0; w < config_.n_workers; ++w)
      pool_->submit([&run_worker, w] { run_worker(w); });
    pool_->wait_idle();
  } else {
    run_worker(0);
  }

  // ---- advantage estimation ------------------------------------------------
  PpoUpdateStats stats;
  std::vector<const std::vector<float>*> all_obs;
  std::vector<const util::BitVec*> all_masks;
  std::vector<std::uint32_t> all_actions;
  std::vector<float> all_old_logp;
  std::vector<float> all_adv;
  std::vector<float> all_ret;

  for (const auto& ep : episodes) {
    const std::size_t len = ep.rewards.size();
    if (len == 0) continue;
    stats.episodes++;
    stats.mean_episode_length += static_cast<double>(len);
    for (const float r : ep.rewards) stats.mean_episode_reward += r;

    const GaeResult gae =
        compute_gae(ep.rewards, ep.values, config_.gamma, config_.gae_lambda);
    for (std::size_t t = 0; t < len; ++t) {
      all_obs.push_back(&ep.observations[t]);
      all_masks.push_back(&ep.masks[t]);
      all_actions.push_back(ep.actions[t]);
      all_old_logp.push_back(ep.log_probs[t]);
      all_adv.push_back(gae.advantages[t]);
      all_ret.push_back(gae.returns[t]);
    }
  }
  const std::size_t n = all_actions.size();
  stats.steps = n;
  total_steps_ += n;
  total_episodes_ += stats.episodes;
  if (stats.episodes > 0) {
    stats.mean_episode_reward /= static_cast<double>(stats.episodes);
    stats.mean_episode_length /= static_cast<double>(stats.episodes);
  }
  if (n == 0) return stats;

  if (config_.normalize_advantages) normalize_advantages(all_adv);

  // ---- optimization ---------------------------------------------------------
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);

  Mlp::Workspace policy_ws;
  Mlp::Workspace value_ws;
  std::vector<float> logits_grad;
  double sum_policy_loss = 0.0;
  double sum_value_loss = 0.0;
  double sum_entropy = 0.0;
  std::size_t loss_samples = 0;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    worker_rngs_[0].shuffle(order);
    for (std::size_t start = 0; start < n; start += config_.minibatch_size) {
      const std::size_t end = std::min(n, start + config_.minibatch_size);
      const float inv_batch = 1.0f / static_cast<float>(end - start);
      policy_.zero_grad();
      value_.zero_grad();

      for (std::size_t k = start; k < end; ++k) {
        const std::uint32_t i = order[k];
        const auto& obs = *all_obs[i];
        const auto logits = policy_.forward(obs, policy_ws);
        const MaskedCategorical dist(logits, *all_masks[i]);
        const float new_logp = dist.log_prob(all_actions[i]);
        const float ratio = std::exp(new_logp - all_old_logp[i]);
        const float adv = all_adv[i];

        const float unclipped = ratio * adv;
        const float clipped =
            std::clamp(ratio, 1.0f - config_.clip_ratio, 1.0f + config_.clip_ratio) *
            adv;
        sum_policy_loss += -std::min(unclipped, clipped);
        sum_entropy += dist.entropy();

        // Gradient of the clipped surrogate w.r.t. new_logp: zero when the
        // clipped branch is active (it is constant in θ), −A·ratio otherwise.
        const bool clip_active = clipped < unclipped;
        const float g = clip_active ? 0.0f : -adv * ratio * inv_batch;
        // Entropy bonus: loss term −c_eps·H ⇒ h = −c_eps (see add_grad docs).
        const float h = -config_.entropy_coef * inv_batch;
        logits_grad.assign(logits.size(), 0.0f);
        dist.add_grad(all_actions[i], g, h, logits_grad);
        policy_.backward(obs, policy_ws, logits_grad);

        const float v = value_.forward(obs, value_ws)[0];
        const float v_err = v - all_ret[i];
        sum_value_loss += 0.5 * static_cast<double>(v_err) * v_err;
        const float value_grad[1] = {config_.value_coef * v_err * inv_batch};
        value_.backward(obs, value_ws, value_grad);

        ++loss_samples;
      }
      policy_opt_.step(config_.max_grad_norm);
      value_opt_.step(config_.max_grad_norm);
    }
  }

  if (loss_samples > 0) {
    stats.policy_loss = sum_policy_loss / static_cast<double>(loss_samples);
    stats.value_loss = sum_value_loss / static_cast<double>(loss_samples);
    stats.mean_entropy = sum_entropy / static_cast<double>(loss_samples);
    stats.entropy_loss = -stats.mean_entropy;
    stats.total_loss = stats.policy_loss + config_.entropy_coef * stats.entropy_loss +
                       config_.value_coef * stats.value_loss;
  }
  return stats;
}

}  // namespace deterrent::rl

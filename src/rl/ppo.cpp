#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>

#include "rl/categorical.hpp"
#include "rl/gae.hpp"
#include "rl/vector_env.hpp"
#include "util/assert.hpp"

namespace deterrent::rl {

namespace {

std::vector<std::size_t> mlp_shape(std::size_t in, std::size_t hidden,
                                   std::size_t hidden_layers, std::size_t out) {
  std::vector<std::size_t> shape{in};
  for (std::size_t i = 0; i < hidden_layers; ++i) shape.push_back(hidden);
  shape.push_back(out);
  return shape;
}

util::Rng seeded_rng(std::uint64_t seed, std::uint64_t stream) {
  return util::Rng(seed * 0x9e3779b97f4a7c15ULL + stream + 1);
}

/// Episode streams live far above the fixed streams (0 = policy init,
/// 1 = value init, 2 = shuffle), so no training run can collide them.
constexpr std::uint64_t kEpisodeStreamBase = std::uint64_t{1} << 32;

}  // namespace

PpoTrainer::PpoTrainer(const EnvFactory& factory, const PpoConfig& config,
                       std::uint64_t seed, const VectorEnvFactory& vector_factory)
    : config_(config),
      seed_(seed),
      policy_([&] {
        auto rng = seeded_rng(seed, 0);
        auto probe = factory(0);
        return Mlp(mlp_shape(probe->observation_size(), config.hidden_size,
                             config.hidden_layers, probe->action_count()),
                   rng);
      }()),
      value_([&] {
        auto rng = seeded_rng(seed, 1);
        auto probe = factory(0);
        return Mlp(mlp_shape(probe->observation_size(), config.hidden_size,
                             config.hidden_layers, 1),
                   rng);
      }()),
      policy_opt_(policy_.params(), {config.learning_rate}),
      value_opt_(value_.params(), {config.learning_rate}) {
  DETERRENT_ASSERT(config_.n_workers >= 1, "PPO requires at least one worker");
  DETERRENT_ASSERT(config_.rollout_lanes >= 1, "PPO requires at least one lane");
  if (config_.n_workers > 1 && config_.rollout_lanes > 1)
    throw Error(
        "PpoTrainer: n_workers > 1 and rollout_lanes > 1 are mutually "
        "exclusive — pick the threaded or the vectorized collector, not both");
  if (config_.rollout_lanes > 1) {
    vector_env_ = vector_factory ? vector_factory(config_.rollout_lanes)
                                 : std::make_unique<EnvVector>(
                                       config_.rollout_lanes, factory);
    DETERRENT_ASSERT(vector_env_->lanes() == config_.rollout_lanes &&
                         vector_env_->observation_size() == policy_.input_size() &&
                         vector_env_->action_count() == policy_.output_size(),
                     "PpoTrainer: vector env shape mismatch");
  } else {
    envs_.reserve(config_.n_workers);
    for (std::size_t w = 0; w < config_.n_workers; ++w) envs_.push_back(factory(w));
  }
  // Stream 2 is the trainer's minibatch-shuffle rng — the only persistent
  // collection-side stream. Episodes draw from streams keyed by their global
  // episode index (episode_rng), which makes every collector — serial,
  // threaded, vectorized, at any width — interchangeable bit-for-bit.
  worker_rngs_.push_back(seeded_rng(seed, 2));
  if (config_.n_workers > 1)
    pool_ = std::make_unique<util::ThreadPool>(config_.n_workers);
}

PpoTrainer::~PpoTrainer() = default;

TrainerState PpoTrainer::state() const {
  TrainerState s;
  s.policy_params = policy_.flat_params();
  s.value_params = value_.flat_params();
  s.policy_opt = policy_opt_.state();
  s.value_opt = value_opt_.state();
  s.rng_states.reserve(worker_rngs_.size());
  for (const auto& rng : worker_rngs_) s.rng_states.push_back(rng.state());
  s.seed = seed_;
  s.total_steps = total_steps_;
  s.total_episodes = total_episodes_;
  return s;
}

void PpoTrainer::restore(const TrainerState& state) {
  if (state.rng_states.size() != worker_rngs_.size())
    throw Error("PpoTrainer::restore: snapshot has " +
                std::to_string(state.rng_states.size()) + " RNG streams, trainer has " +
                std::to_string(worker_rngs_.size()) +
                " (was it saved by an older trainer with per-worker streams?)");
  policy_.set_flat_params(state.policy_params);
  value_.set_flat_params(state.value_params);
  policy_opt_.restore(state.policy_opt);
  value_opt_.restore(state.value_opt);
  for (std::size_t i = 0; i < worker_rngs_.size(); ++i)
    worker_rngs_[i].set_state(state.rng_states[i]);
  seed_ = state.seed;
  total_steps_ = state.total_steps;
  total_episodes_ = state.total_episodes;
}

util::Rng PpoTrainer::episode_rng(std::uint64_t index) const {
  return seeded_rng(seed_, kEpisodeStreamBase + index);
}

PpoTrainer::EpisodeBuffer PpoTrainer::collect_episode(Env& env, util::Rng& rng) const {
  EpisodeBuffer buffer;
  std::vector<float> obs = env.reset(rng);
  Mlp::Workspace policy_ws;
  Mlp::Workspace value_ws;

  bool done = false;
  while (!done) {
    util::BitVec mask = env.action_mask();  // copy: env mutates it on step
    if (mask.none()) break;  // no legal action ⇒ episode over (mask exhausted)

    const auto logits = policy_.forward(obs, policy_ws);
    const MaskedCategorical dist(logits, mask);
    const std::uint32_t action = dist.sample(rng);
    const float log_prob = dist.log_prob(action);
    const float value = value_.forward(obs, value_ws)[0];

    StepResult step = env.step(action);

    buffer.observations.push_back(std::move(obs));
    buffer.masks.push_back(std::move(mask));
    buffer.actions.push_back(action);
    buffer.log_probs.push_back(log_prob);
    buffer.rewards.push_back(step.reward);
    buffer.values.push_back(value);

    obs = std::move(step.observation);
    done = step.done;
  }
  return buffer;
}

void PpoTrainer::collect_vectorized(std::vector<EpisodeBuffer>& episodes) {
  VectorEnv& venv = *vector_env_;
  const std::size_t n_lanes = config_.rollout_lanes;
  const std::size_t n_episodes = episodes.size();
  const std::size_t act_dim = policy_.output_size();

  constexpr std::size_t kIdle = static_cast<std::size_t>(-1);
  std::vector<std::size_t> current(n_lanes, kIdle);  // episode under collection
  std::vector<std::size_t> next(n_lanes);            // next episode index
  std::vector<util::Rng> lane_rng(n_lanes, util::Rng(0));

  // Lane l owns episode slots l, l+N, l+2N, …, but each episode's RNG comes
  // from episode_rng(global index) — the lane schedule only decides wall-clock
  // interleaving, never the episode contents, so any lane count fills
  // episodes[] with bit-identical rollouts.
  auto begin_episode = [&](std::size_t l) {
    current[l] = kIdle;
    while (next[l] < n_episodes) {
      const std::size_t e = next[l];
      next[l] += n_lanes;
      lane_rng[l] = episode_rng(total_episodes_ + e);
      venv.reset_lane(l, lane_rng[l]);
      // Mirrors collect_episode: resetting into an exhausted mask yields an
      // empty episode and moves straight on to the lane's next one.
      if (venv.action_mask(l).none()) continue;
      current[l] = e;
      return;
    }
  };
  for (std::size_t l = 0; l < n_lanes; ++l) {
    next[l] = l;
    begin_episode(l);
  }

  util::BitVec active(n_lanes);
  std::vector<std::uint32_t> actions(n_lanes, 0);
  std::vector<const float*> row_ptrs;  // active lanes' observations, in order
  Mlp::BatchWorkspace policy_ws;
  Mlp::BatchWorkspace value_ws;

  for (;;) {
    active.clear_all();
    std::size_t rows = 0;
    for (std::size_t l = 0; l < n_lanes; ++l)
      if (current[l] != kIdle) {
        active.set(l);
        ++rows;
      }
    if (rows == 0) break;

    // Feed the lanes' observation storage to the batched passes directly —
    // the row-pointer overload reads it in place, no gather copy.
    row_ptrs.resize(rows);
    std::size_t r = 0;
    for (std::size_t l = 0; l < n_lanes; ++l) {
      if (current[l] == kIdle) continue;
      row_ptrs[r] = venv.observation(l).data();
      ++r;
    }
    const auto logits = policy_.forward_batch(row_ptrs.data(), rows, policy_ws);
    const auto values = value_.forward_batch(row_ptrs.data(), rows, value_ws);

    r = 0;
    for (std::size_t l = 0; l < n_lanes; ++l) {
      if (current[l] == kIdle) continue;
      EpisodeBuffer& buf = episodes[current[l]];
      util::BitVec mask = venv.action_mask(l);  // copy: env mutates it on step
      const MaskedCategorical dist(logits.subspan(r * act_dim, act_dim), mask);
      const std::uint32_t action = dist.sample(lane_rng[l]);
      buf.log_probs.push_back(dist.log_prob(action));
      buf.values.push_back(values[r]);
      const auto obs = venv.observation(l);
      buf.observations.emplace_back(obs.begin(), obs.end());
      buf.masks.push_back(std::move(mask));
      buf.actions.push_back(action);
      actions[l] = action;
      ++r;
    }

    venv.step(actions, active);

    for (std::size_t l = 0; l < n_lanes; ++l) {
      if (current[l] == kIdle) continue;
      episodes[current[l]].rewards.push_back(venv.reward(l));
      // Early exit per lane: a finished (or mask-exhausted) episode frees the
      // lane for its next episode immediately; out of episodes, the lane
      // stays frozen while the stragglers run out.
      if (venv.done(l) || venv.action_mask(l).none()) begin_episode(l);
    }
  }
}

double PpoTrainer::run_episode(Env& env, util::Rng& rng, bool greedy) const {
  std::vector<float> obs = env.reset(rng);
  Mlp::Workspace ws;
  double total = 0.0;
  bool done = false;
  while (!done) {
    const util::BitVec mask = env.action_mask();
    if (mask.none()) break;
    const auto logits = policy_.forward(obs, ws);
    const MaskedCategorical dist(logits, mask);
    const std::uint32_t action = greedy ? dist.argmax() : dist.sample(rng);
    StepResult step = env.step(action);
    total += step.reward;
    obs = std::move(step.observation);
    done = step.done;
  }
  return total;
}

PpoUpdateStats PpoTrainer::update() {
  // ---- rollout collection (possibly across worker threads) ----------------
  const std::size_t n_episodes = config_.episodes_per_update;
  std::vector<EpisodeBuffer> episodes(n_episodes);

  if (vector_env_) {
    collect_vectorized(episodes);
  } else {
    auto run_worker = [&](std::size_t w) {
      for (std::size_t e = w; e < n_episodes; e += config_.n_workers) {
        util::Rng rng = episode_rng(total_episodes_ + e);
        episodes[e] = collect_episode(*envs_[w], rng);
      }
    };
    if (pool_) {
      for (std::size_t w = 0; w < config_.n_workers; ++w)
        pool_->submit([&run_worker, w] { run_worker(w); });
      pool_->wait_idle();
    } else {
      run_worker(0);
    }
  }

  // ---- advantage estimation ------------------------------------------------
  PpoUpdateStats stats;
  std::vector<const std::vector<float>*> all_obs;
  std::vector<const util::BitVec*> all_masks;
  std::vector<std::uint32_t> all_actions;
  std::vector<float> all_old_logp;
  std::vector<float> all_adv;
  std::vector<float> all_ret;

  for (const auto& ep : episodes) {
    const std::size_t len = ep.rewards.size();
    if (len == 0) continue;
    stats.episodes++;
    stats.mean_episode_length += static_cast<double>(len);
    for (const float r : ep.rewards) stats.mean_episode_reward += r;

    const GaeResult gae =
        compute_gae(ep.rewards, ep.values, config_.gamma, config_.gae_lambda);
    for (std::size_t t = 0; t < len; ++t) {
      all_obs.push_back(&ep.observations[t]);
      all_masks.push_back(&ep.masks[t]);
      all_actions.push_back(ep.actions[t]);
      all_old_logp.push_back(ep.log_probs[t]);
      all_adv.push_back(gae.advantages[t]);
      all_ret.push_back(gae.returns[t]);
    }
  }
  const std::size_t n = all_actions.size();
  stats.steps = n;
  total_steps_ += n;
  total_episodes_ += stats.episodes;
  if (stats.episodes > 0) {
    stats.mean_episode_reward /= static_cast<double>(stats.episodes);
    stats.mean_episode_length /= static_cast<double>(stats.episodes);
  }
  if (n == 0) return stats;

  if (config_.normalize_advantages) normalize_advantages(all_adv);

  // ---- optimization ---------------------------------------------------------
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);

  Mlp::Workspace policy_ws;
  Mlp::Workspace value_ws;
  Mlp::BatchWorkspace policy_bws;
  Mlp::BatchWorkspace value_bws;
  std::vector<float> logits_grad;
  std::vector<const float*> row_ptrs;  // minibatch rows, shuffled order
  std::vector<float> batch_pol_grad;
  std::vector<float> batch_val_grad;
  const std::size_t act_dim = policy_.output_size();
  // The vectorized trainer also batches the optimization passes — one
  // matrix–matrix forward/backward per minibatch instead of per sample. The
  // scalar trainer keeps the historic per-sample loop untouched; both produce
  // bit-identical parameters (pinned by test_rl_vector.cpp), since the
  // batched passes preserve every per-element accumulation order.
  const bool batched = vector_env_ != nullptr;
  double sum_policy_loss = 0.0;
  double sum_value_loss = 0.0;
  double sum_entropy = 0.0;
  std::size_t loss_samples = 0;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    worker_rngs_[0].shuffle(order);
    for (std::size_t start = 0; start < n; start += config_.minibatch_size) {
      const std::size_t end = std::min(n, start + config_.minibatch_size);
      const float inv_batch = 1.0f / static_cast<float>(end - start);
      policy_.zero_grad();
      value_.zero_grad();

      if (batched) {
        const std::size_t rows = end - start;
        // The shuffled minibatch rows stay in their episode buffers; the
        // row-pointer overloads read them in place (no gather copy).
        row_ptrs.resize(rows);
        for (std::size_t k = start; k < end; ++k)
          row_ptrs[k - start] = all_obs[order[k]]->data();
        const auto logits_all =
            policy_.forward_batch(row_ptrs.data(), rows, policy_bws);
        const auto values_all =
            value_.forward_batch(row_ptrs.data(), rows, value_bws);
        batch_pol_grad.assign(rows * act_dim, 0.0f);
        batch_val_grad.assign(rows, 0.0f);

        for (std::size_t k = start; k < end; ++k) {
          const std::size_t row = k - start;
          const std::uint32_t i = order[k];
          const MaskedCategorical dist(logits_all.subspan(row * act_dim, act_dim),
                                       *all_masks[i]);
          const float new_logp = dist.log_prob(all_actions[i]);
          const float ratio = std::exp(new_logp - all_old_logp[i]);
          const float adv = all_adv[i];

          const float unclipped = ratio * adv;
          const float clipped =
              std::clamp(ratio, 1.0f - config_.clip_ratio,
                         1.0f + config_.clip_ratio) *
              adv;
          sum_policy_loss += -std::min(unclipped, clipped);
          sum_entropy += dist.entropy();

          const bool clip_active = clipped < unclipped;
          const float g = clip_active ? 0.0f : -adv * ratio * inv_batch;
          const float h = -config_.entropy_coef * inv_batch;
          dist.add_grad(all_actions[i], g, h,
                        std::span<float>(batch_pol_grad)
                            .subspan(row * act_dim, act_dim));

          const float v = values_all[row];
          const float v_err = v - all_ret[i];
          sum_value_loss += 0.5 * static_cast<double>(v_err) * v_err;
          batch_val_grad[row] = config_.value_coef * v_err * inv_batch;

          ++loss_samples;
        }
        policy_.backward_batch(row_ptrs.data(), policy_bws, batch_pol_grad);
        value_.backward_batch(row_ptrs.data(), value_bws, batch_val_grad);
      } else {
        for (std::size_t k = start; k < end; ++k) {
          const std::uint32_t i = order[k];
          const auto& obs = *all_obs[i];
          const auto logits = policy_.forward(obs, policy_ws);
          const MaskedCategorical dist(logits, *all_masks[i]);
          const float new_logp = dist.log_prob(all_actions[i]);
          const float ratio = std::exp(new_logp - all_old_logp[i]);
          const float adv = all_adv[i];

          const float unclipped = ratio * adv;
          const float clipped =
              std::clamp(ratio, 1.0f - config_.clip_ratio,
                         1.0f + config_.clip_ratio) *
              adv;
          sum_policy_loss += -std::min(unclipped, clipped);
          sum_entropy += dist.entropy();

          // Gradient of the clipped surrogate w.r.t. new_logp: zero when the
          // clipped branch is active (it is constant in θ), −A·ratio otherwise.
          const bool clip_active = clipped < unclipped;
          const float g = clip_active ? 0.0f : -adv * ratio * inv_batch;
          // Entropy bonus: loss term −c_eps·H ⇒ h = −c_eps (see add_grad docs).
          const float h = -config_.entropy_coef * inv_batch;
          logits_grad.assign(logits.size(), 0.0f);
          dist.add_grad(all_actions[i], g, h, logits_grad);
          policy_.backward(obs, policy_ws, logits_grad);

          const float v = value_.forward(obs, value_ws)[0];
          const float v_err = v - all_ret[i];
          sum_value_loss += 0.5 * static_cast<double>(v_err) * v_err;
          const float value_grad[1] = {config_.value_coef * v_err * inv_batch};
          value_.backward(obs, value_ws, value_grad);

          ++loss_samples;
        }
      }
      policy_opt_.step(config_.max_grad_norm);
      value_opt_.step(config_.max_grad_norm);
    }
  }

  if (loss_samples > 0) {
    stats.policy_loss = sum_policy_loss / static_cast<double>(loss_samples);
    stats.value_loss = sum_value_loss / static_cast<double>(loss_samples);
    stats.mean_entropy = sum_entropy / static_cast<double>(loss_samples);
    stats.entropy_loss = -stats.mean_entropy;
    stats.total_loss = stats.policy_loss + config_.entropy_coef * stats.entropy_loss +
                       config_.value_coef * stats.value_loss;
  }
  return stats;
}

}  // namespace deterrent::rl

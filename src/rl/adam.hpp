#pragma once

#include <vector>

#include "rl/mlp.hpp"

namespace deterrent::rl {

struct AdamConfig {
  float lr = 3e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
};

/// Serializable snapshot of an Adam optimizer: first/second moments flattened
/// in ParamRef order plus the bias-correction step counter. Restoring it makes
/// subsequent step() calls bit-identical to an optimizer that never paused —
/// required for checkpoint/resume of PPO training.
struct AdamState {
  std::vector<float> m;  ///< first moments, flat
  std::vector<float> v;  ///< second moments, flat
  std::uint64_t t = 0;   ///< completed steps
};

/// Adam optimizer over a flat list of parameter views, with optional global
/// gradient-norm clipping (standard PPO practice).
class Adam {
 public:
  Adam(std::vector<ParamRef> params, const AdamConfig& config = {});

  /// Applies one update using the gradients currently accumulated in the
  /// parameter views, then leaves the gradients untouched (call zero_grad on
  /// the network afterwards). `max_grad_norm <= 0` disables clipping.
  void step(float max_grad_norm = 0.0f);

  /// Global L2 norm of the current gradients (diagnostic).
  double grad_norm() const;

  std::uint64_t step_count() const { return t_; }

  AdamState state() const;

  /// Restores moments + step counter from a state() snapshot. Throws
  /// deterrent::Error when the moment sizes do not match the parameter list.
  void restore(const AdamState& state);

 private:
  std::vector<ParamRef> params_;
  AdamConfig config_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  std::uint64_t t_ = 0;
  /// Elementwise-update kernel backend (same table as the MLP batch passes;
  /// every backend is bit-identical, see mlp_kernel_table.hpp).
  const kernels::MlpKernelTable* kernels_;
};

}  // namespace deterrent::rl

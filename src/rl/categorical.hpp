#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace deterrent::rl {

/// Categorical distribution over a masked discrete action space.
///
/// Masked actions (mask bit = 0) receive probability exactly 0 and contribute
/// nothing to entropy or gradients — the mechanism behind §3.3's action
/// masking, whose harmlessness the paper proves in Theorem 3.1.
class MaskedCategorical {
 public:
  /// Builds the distribution from raw logits and a validity mask. At least
  /// one action must be valid.
  MaskedCategorical(std::span<const float> logits, const util::BitVec& mask);

  std::size_t action_count() const { return probs_.size(); }

  /// Probability of each action (0 for masked).
  std::span<const float> probs() const { return probs_; }

  /// log P(action); action must be valid.
  float log_prob(std::uint32_t action) const;

  /// Shannon entropy over the valid support.
  float entropy() const;

  /// Samples an action ~ P.
  std::uint32_t sample(util::Rng& rng) const;

  /// Highest-probability valid action (greedy evaluation).
  std::uint32_t argmax() const;

  /// dL/d logits for a loss of the form  g · log P(a)  plus  h · H:
  /// grad_j = g·(δ_aj − p_j) − h·p_j·(log p_j + H).  The caller accumulates
  /// the result into the policy head's gradient. Masked entries stay 0.
  void add_grad(std::uint32_t action, float g, float h, std::span<float> grad) const;

 private:
  std::vector<float> probs_;
  std::vector<float> log_probs_;  // -inf (stored as large negative) for masked
  const util::BitVec* mask_;
  float entropy_ = 0.0f;
};

}  // namespace deterrent::rl

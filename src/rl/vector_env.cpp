#include "rl/vector_env.hpp"

#include "util/assert.hpp"

namespace deterrent::rl {

EnvVector::EnvVector(std::vector<std::unique_ptr<Env>> envs)
    : envs_(std::move(envs)), lanes_(envs_.size()) {
  DETERRENT_ASSERT(!envs_.empty(), "EnvVector needs at least one lane");
  for (const auto& env : envs_) {
    DETERRENT_ASSERT(env != nullptr, "EnvVector: null lane env");
    DETERRENT_ASSERT(env->observation_size() == envs_[0]->observation_size() &&
                         env->action_count() == envs_[0]->action_count(),
                     "EnvVector: lane shape mismatch");
  }
}

EnvVector::EnvVector(std::size_t lanes,
                     const std::function<std::unique_ptr<Env>(std::size_t)>& factory)
    : EnvVector([&] {
        std::vector<std::unique_ptr<Env>> envs;
        envs.reserve(lanes);
        for (std::size_t l = 0; l < lanes; ++l) envs.push_back(factory(l));
        return envs;
      }()) {}

std::size_t EnvVector::observation_size() const {
  return envs_[0]->observation_size();
}

std::size_t EnvVector::action_count() const { return envs_[0]->action_count(); }

void EnvVector::reset_lane(std::size_t lane, util::Rng& rng) {
  DETERRENT_ASSERT(lane < envs_.size(), "EnvVector::reset_lane out of range");
  Lane& state = lanes_[lane];
  state.observation = envs_[lane]->reset(rng);
  state.reward = 0.0f;
  state.done = false;
}

void EnvVector::step(std::span<const std::uint32_t> actions,
                     const util::BitVec& active) {
  DETERRENT_ASSERT(actions.size() == envs_.size() && active.size() == envs_.size(),
                   "EnvVector::step batch size mismatch");
  for (std::size_t l = active.find_first(); l < envs_.size();
       l = active.find_next(l + 1)) {
    Lane& state = lanes_[l];
    DETERRENT_ASSERT(!state.done, "EnvVector::step on a done lane");
    StepResult result = envs_[l]->step(actions[l]);
    state.observation = std::move(result.observation);
    state.reward = result.reward;
    state.done = result.done;
  }
}

std::span<const float> EnvVector::observation(std::size_t lane) const {
  return lanes_[lane].observation;
}

const util::BitVec& EnvVector::action_mask(std::size_t lane) const {
  return envs_[lane]->action_mask();
}

float EnvVector::reward(std::size_t lane) const { return lanes_[lane].reward; }

bool EnvVector::done(std::size_t lane) const { return lanes_[lane].done; }

}  // namespace deterrent::rl

// AVX2 MLP batch kernels: 8-float registers, two per 16-lane tile. Compiled
// with -mavx2 -ffp-contract=off (see CMakeLists.txt) — AVX2 alone enables no
// FMA instructions and contraction is off for the scalar tails, so every
// multiply and add rounds separately, exactly like the scalar table. When
// the flag is unavailable the TU degrades to a nullptr factory.
#include "rl/mlp_kernel_table.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace deterrent::rl::kernels {
namespace {

void matvec_cols_avx2(const float* w, const float* xt, const std::uint32_t* cols,
                      std::size_t n_cols, float bias, float* acc) {
  __m256 a0 = _mm256_set1_ps(bias);
  __m256 a1 = a0;
  for (std::size_t j = 0; j < n_cols; ++j) {
    const std::size_t i = cols[j];
    const __m256 wv = _mm256_set1_ps(w[i]);
    const float* xr = xt + i * kMlpLanes;
    a0 = _mm256_add_ps(a0, _mm256_mul_ps(wv, _mm256_loadu_ps(xr)));
    a1 = _mm256_add_ps(a1, _mm256_mul_ps(wv, _mm256_loadu_ps(xr + 8)));
  }
  _mm256_storeu_ps(acc, a0);
  _mm256_storeu_ps(acc + 8, a1);
}

void matvec_dense_avx2(const float* w, const float* xt, std::size_t in,
                       float bias, float* acc) {
  __m256 a0 = _mm256_set1_ps(bias);
  __m256 a1 = a0;
  for (std::size_t i = 0; i < in; ++i) {
    const __m256 wv = _mm256_set1_ps(w[i]);
    const float* xr = xt + i * kMlpLanes;
    a0 = _mm256_add_ps(a0, _mm256_mul_ps(wv, _mm256_loadu_ps(xr)));
    a1 = _mm256_add_ps(a1, _mm256_mul_ps(wv, _mm256_loadu_ps(xr + 8)));
  }
  _mm256_storeu_ps(acc, a0);
  _mm256_storeu_ps(acc + 8, a1);
}

void axpy_avx2(float g, const float* x, float* acc, std::size_t n) {
  const __m256 gv = _mm256_set1_ps(g);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(gv, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i), prod));
  }
  for (; i < n; ++i) acc[i] += g * x[i];
}

// lr·(m/bias1) / (sqrt(v/bias2) + eps) for one 4-double half of a ymm of
// moments. div, sqrt, and the float↔double conversions are all correctly
// rounded, so the half matches the scalar element sequence bit for bit.
__m128 adam_update_half(__m128 m_ps, __m128 v_ps, __m256d bias1, __m256d bias2,
                        __m256d lr, __m256d eps) {
  const __m256d m_hat = _mm256_div_pd(_mm256_cvtps_pd(m_ps), bias1);
  const __m256d v_hat = _mm256_div_pd(_mm256_cvtps_pd(v_ps), bias2);
  const __m256d denom = _mm256_add_pd(_mm256_sqrt_pd(v_hat), eps);
  return _mm256_cvtpd_ps(_mm256_div_pd(_mm256_mul_pd(lr, m_hat), denom));
}

void adam_step_avx2(float* values, float* m, float* v, const float* grads,
                    std::size_t n, const MlpKernelTable::AdamArgs& a) {
  const __m256 scale = _mm256_set1_ps(a.scale);
  const __m256 b1 = _mm256_set1_ps(a.beta1);
  const __m256 omb1 = _mm256_set1_ps(1.0f - a.beta1);
  const __m256 b2 = _mm256_set1_ps(a.beta2);
  const __m256 omb2 = _mm256_set1_ps(1.0f - a.beta2);
  const __m256d bias1 = _mm256_set1_pd(a.bias1);
  const __m256d bias2 = _mm256_set1_pd(a.bias2);
  const __m256d lr = _mm256_set1_pd(static_cast<double>(a.lr));
  const __m256d eps = _mm256_set1_pd(static_cast<double>(a.eps));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 g = _mm256_mul_ps(_mm256_loadu_ps(grads + i), scale);
    const __m256 mv = _mm256_add_ps(_mm256_mul_ps(b1, _mm256_loadu_ps(m + i)),
                                    _mm256_mul_ps(omb1, g));
    const __m256 vv = _mm256_add_ps(_mm256_mul_ps(b2, _mm256_loadu_ps(v + i)),
                                    _mm256_mul_ps(_mm256_mul_ps(omb2, g), g));
    _mm256_storeu_ps(m + i, mv);
    _mm256_storeu_ps(v + i, vv);
    const __m128 lo =
        adam_update_half(_mm256_castps256_ps128(mv), _mm256_castps256_ps128(vv),
                         bias1, bias2, lr, eps);
    const __m128 hi =
        adam_update_half(_mm256_extractf128_ps(mv, 1),
                         _mm256_extractf128_ps(vv, 1), bias1, bias2, lr, eps);
    const __m256 upd = _mm256_set_m128(hi, lo);
    _mm256_storeu_ps(values + i,
                     _mm256_sub_ps(_mm256_loadu_ps(values + i), upd));
  }
  for (; i < n; ++i) {
    const float g = grads[i] * a.scale;
    m[i] = a.beta1 * m[i] + (1.0f - a.beta1) * g;
    v[i] = a.beta2 * v[i] + (1.0f - a.beta2) * g * g;
    const double m_hat = m[i] / a.bias1;
    const double v_hat = v[i] / a.bias2;
    values[i] -=
        static_cast<float>(a.lr * m_hat / (__builtin_sqrt(v_hat) + a.eps));
  }
}

// constinit: the factory runs on every host during backend detection, so
// this -mavx2 TU must emit no initialization code.
constinit const MlpKernelTable kTable{MlpIsa::Avx2, "avx2", &matvec_cols_avx2,
                                      &matvec_dense_avx2, &axpy_avx2,
                                      &adam_step_avx2};

}  // namespace

const MlpKernelTable* mlp_avx2_table() { return &kTable; }

}  // namespace deterrent::rl::kernels

#else  // !defined(__AVX2__)

namespace deterrent::rl::kernels {
const MlpKernelTable* mlp_avx2_table() { return nullptr; }
}  // namespace deterrent::rl::kernels

#endif

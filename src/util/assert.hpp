#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace deterrent {

/// Base class for all errors thrown by the library.
/// Parsing, building, and configuration problems throw subclasses of this;
/// internal invariant violations abort via DETERRENT_ASSERT instead.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "DETERRENT assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace deterrent

/// Invariant check that stays on in release builds. Use for cheap checks whose
/// failure indicates a library bug (not user error).
#define DETERRENT_ASSERT(expr, msg)                                   \
  do {                                                                \
    if (!(expr)) ::deterrent::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace deterrent {

/// Base class for all errors thrown by the library.
/// Parsing, building, and configuration problems throw subclasses of this;
/// internal invariant violations abort via DETERRENT_ASSERT instead.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// ---------------------------------------------------------------------------
// Error taxonomy. The campaign/session self-healing layer keys its recovery
// policy on the *dynamic type* of a failure, so throw sites must pick the
// subclass that names the correct remedy:
//
//   TransientError        the environment hiccupped (I/O failure, injected
//                         fault, watchdog timeout) — a bounded retry of the
//                         same work may succeed.
//   CorruptArtifactError  an on-disk artifact failed validation (truncated,
//                         bit-flipped, wrong kind/version/fingerprint/chain)
//                         — retrying the load is pointless; quarantine the
//                         file and regenerate the stage.
//   PermanentError        the request itself is wrong (bad config, stage
//                         order, incompatible inputs) — retrying can never
//                         help; fail the circuit immediately.
//
// Plain `Error` remains for call sites that predate the taxonomy; recovery
// layers treat it as permanent (the conservative default).
// ---------------------------------------------------------------------------

/// Environment hiccup; bounded retry with backoff may succeed.
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// On-disk artifact failed validation; quarantine and regenerate.
class CorruptArtifactError : public Error {
 public:
  explicit CorruptArtifactError(const std::string& what) : Error(what) {}
};

/// The request itself is invalid; retrying can never help.
class PermanentError : public Error {
 public:
  explicit PermanentError(const std::string& what) : Error(what) {}
};

/// A cooperative watchdog deadline expired (see util::WatchdogScope) —
/// transient by definition: the hung work is abandoned and retried.
class TimeoutError : public TransientError {
 public:
  explicit TimeoutError(const std::string& what) : TransientError(what) {}
};

/// Thrown by an armed util::faults site (Action::Throw). Transient so the
/// retry/quarantine machinery under test treats it like a real I/O hiccup.
class FaultInjectedError : public TransientError {
 public:
  explicit FaultInjectedError(const std::string& what) : TransientError(what) {}
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "DETERRENT assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace deterrent

/// Invariant check that stays on in release builds. Use for cheap checks whose
/// failure indicates a library bug (not user error).
#define DETERRENT_ASSERT(expr, msg)                                   \
  do {                                                                \
    if (!(expr)) ::deterrent::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#pragma once

#include <string>

namespace deterrent::util {

/// Benchmark effort scaling shared by every harness in bench/. All harnesses
/// preserve the paper's qualitative shape in every mode; higher modes tighten
/// the quantitative match at the cost of runtime.
enum class BenchMode {
  Quick,    ///< seconds per bench — smoke-level training budgets
  Default,  ///< minutes per bench — the shape-faithful default
  Full,     ///< tens of minutes — closest quantitative reproduction
};

/// Reads DETERRENT_BENCH_MODE (quick|default|full); unset or unknown → Default.
BenchMode bench_mode_from_env();

const char* to_string(BenchMode mode);

/// Reads an integer environment variable, returning fallback when unset/invalid.
long env_long(const char* name, long fallback);

}  // namespace deterrent::util

#include "util/faults.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/rng.hpp"
#include "util/watchdog.hpp"

namespace deterrent::util::faults {

namespace {

struct Site {
  FaultSpec spec;
  std::uint64_t seed = 0;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> fired{0};
};

/// Armed specs plus counters. The mutex guards the map structure only; hit
/// counting is atomic so concurrent sites never serialize on each other
/// beyond the lookup.
struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, std::unique_ptr<Site>> sites;
};

Registry& registry() {
  static Registry r;
  return r;
}

Site* find_site(const char* name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  const auto it = r.sites.find(name);
  return it == r.sites.end() ? nullptr : it->second.get();
}

std::uint64_t site_hash(const std::string& site) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : site) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Deterministic per-hit firing decision: hashes (seed, site, hit index), so
/// a fixed seed fires on the same hit numbers regardless of which threads
/// reach the site in which order.
bool fires(const Site& site, const std::string& name, std::uint64_t hit) {
  if (site.spec.nth != 0) return hit == site.spec.nth;
  if (site.spec.probability <= 0.0) return false;
  const std::uint64_t u = Rng::mix64(site.seed ^ site_hash(name) ^ hit);
  return static_cast<double>(u >> 11) * 0x1.0p-53 < site.spec.probability;
}

/// Simulated stall: sliced sleeps polling the cooperative watchdog, so a
/// WatchdogScope deadline converts the hang into a TimeoutError while an
/// unwatched hang resolves after hang_ms.
void hang(const char* name, std::uint32_t hang_ms) {
  const auto end = std::chrono::steady_clock::now() + std::chrono::milliseconds(hang_ms);
  while (std::chrono::steady_clock::now() < end) {
    WatchdogScope::poll(name);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

/// Parses and arms one `site=spec` clause of the DETERRENT_FAULTS grammar.
void arm_clause(const std::string& clause, std::uint64_t seed) {
  const auto eq = clause.find('=');
  if (eq == std::string::npos || eq == 0)
    throw PermanentError("DETERRENT_FAULTS: clause '" + clause + "' is not site=spec");
  const std::string site = clause.substr(0, eq);
  std::string spec_text = clause.substr(eq + 1);

  FaultSpec spec;
  std::string action = spec_text;
  std::string param;
  char sep = 0;
  for (const char c : {'@', '%'}) {
    const auto pos = spec_text.find(c);
    if (pos != std::string::npos) {
      action = spec_text.substr(0, pos);
      param = spec_text.substr(pos + 1);
      sep = c;
      break;
    }
  }

  if (action == "throw") spec.action = Action::Throw;
  else if (action == "torn-truncate") spec.action = Action::TornTruncate;
  else if (action == "torn-flip") spec.action = Action::TornBitFlip;
  else if (action == "hang") spec.action = Action::Hang;
  else
    throw PermanentError("DETERRENT_FAULTS: unknown action '" + action + "' in '" +
                         clause + "'");

  try {
    if (sep == '%') {
      if (spec.action != Action::Throw)
        throw PermanentError("DETERRENT_FAULTS: only throw supports %probability ('" +
                             clause + "')");
      spec.probability = std::stod(param);
      if (spec.probability < 0.0 || spec.probability > 1.0)
        throw PermanentError("DETERRENT_FAULTS: probability out of [0,1] in '" + clause +
                             "'");
    } else if (sep == '@') {
      std::string nth_text = param;
      if (spec.action == Action::Hang) {
        const auto colon = param.find(':');
        if (colon != std::string::npos) {
          nth_text = param.substr(0, colon);
          spec.hang_ms = static_cast<std::uint32_t>(std::stoul(param.substr(colon + 1)));
        }
      }
      spec.nth = std::stoull(nth_text);
      if (spec.nth == 0)
        throw PermanentError("DETERRENT_FAULTS: hit index is 1-based in '" + clause + "'");
    } else {
      throw PermanentError("DETERRENT_FAULTS: spec '" + spec_text +
                           "' needs @<n> or %<p> ('" + clause + "')");
    }
  } catch (const PermanentError&) {
    throw;
  } catch (const std::exception&) {  // stod/stoull on malformed numbers
    throw PermanentError("DETERRENT_FAULTS: malformed number in '" + clause + "'");
  }

  arm(site, spec, seed);
}

/// DETERRENT_FAULTS is parsed once, before main() — a one-time static
/// initializer keeps armed() a single relaxed load with no init check.
const bool g_env_parsed = [] {
  const char* env = std::getenv("DETERRENT_FAULTS");
  if (env == nullptr || *env == '\0') return false;
  try {
    arm_from_string(env);
  } catch (const std::exception& e) {
    // A typo must not silently run the campaign without its fault plan.
    std::fprintf(stderr, "fatal: %s\n", e.what());
    std::exit(2);
  }
  return true;
}();

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

void on_hit(const char* name) {
  Site* site = find_site(name);
  if (site == nullptr) return;
  const std::uint64_t hit = site->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!fires(*site, name, hit)) return;
  switch (site->spec.action) {
    case Action::Throw:
      site->fired.fetch_add(1, std::memory_order_relaxed);
      throw FaultInjectedError(std::string("injected fault at ") + name + " (hit " +
                               std::to_string(hit) + ")");
    case Action::Hang:
      site->fired.fetch_add(1, std::memory_order_relaxed);
      hang(name, site->spec.hang_ms);
      return;
    case Action::TornTruncate:
    case Action::TornBitFlip:
      // Tearing needs the writer's cooperation (on_write); at a plain site
      // the spec is inert rather than guessing a different failure.
      return;
    case Action::None: return;
  }
}

WriteFault on_write(const char* name) {
  Site* site = find_site(name);
  if (site == nullptr) return {};
  const std::uint64_t hit = site->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!fires(*site, name, hit)) return {};
  switch (site->spec.action) {
    case Action::Throw:
      site->fired.fetch_add(1, std::memory_order_relaxed);
      throw FaultInjectedError(std::string("injected fault at ") + name + " (hit " +
                               std::to_string(hit) + ")");
    case Action::Hang:
      site->fired.fetch_add(1, std::memory_order_relaxed);
      hang(name, site->spec.hang_ms);
      return {};
    case Action::TornTruncate:
    case Action::TornBitFlip:
      site->fired.fetch_add(1, std::memory_order_relaxed);
      return {site->spec.action, Rng::mix64(site->seed ^ site_hash(name) ^ hit)};
    case Action::None: return {};
  }
  return {};
}

}  // namespace detail

const std::vector<std::string>& known_sites() {
  static const std::vector<std::string> sites = {
      "cache.fetch",             "cache.store",
      "pipeline.stage_boundary", "sat.portfolio.share",
      "sat.query",               "serialize.write_artifact",
      "session.load_artifact",   "threadpool.task",
  };
  return sites;
}

void arm(const std::string& site, const FaultSpec& spec, std::uint64_t seed) {
  Registry& r = registry();
  {
    std::lock_guard lock(r.mutex);
    auto& slot = r.sites[site];
    if (!slot) slot = std::make_unique<Site>();
    slot->spec = spec;
    slot->seed = seed;
    slot->hits.store(0, std::memory_order_relaxed);
    slot->fired.store(0, std::memory_order_relaxed);
  }
  detail::g_armed.store(true, std::memory_order_relaxed);
}

void arm_from_string(const std::string& grammar) {
  std::uint64_t seed = 0;
  std::size_t begin = 0;
  // Two passes so `seed=` applies to every clause regardless of position.
  std::vector<std::string> clauses;
  while (begin <= grammar.size()) {
    const auto end = grammar.find(';', begin);
    const std::string clause =
        grammar.substr(begin, end == std::string::npos ? std::string::npos : end - begin);
    begin = end == std::string::npos ? grammar.size() + 1 : end + 1;
    if (clause.empty()) continue;
    if (clause.rfind("seed=", 0) == 0) {
      try {
        seed = std::stoull(clause.substr(5));
      } catch (const std::exception&) {
        throw PermanentError("DETERRENT_FAULTS: malformed seed clause '" + clause + "'");
      }
    } else {
      clauses.push_back(clause);
    }
  }
  for (const auto& clause : clauses) arm_clause(clause, seed);
}

void disarm_all() {
  Registry& r = registry();
  detail::g_armed.store(false, std::memory_order_relaxed);
  std::lock_guard lock(r.mutex);
  r.sites.clear();
}

std::uint64_t hit_count(const std::string& site) {
  Site* s = find_site(site.c_str());
  return s == nullptr ? 0 : s->hits.load(std::memory_order_relaxed);
}

std::uint64_t fired_count(const std::string& site) {
  Site* s = find_site(site.c_str());
  return s == nullptr ? 0 : s->fired.load(std::memory_order_relaxed);
}

}  // namespace deterrent::util::faults

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace deterrent::util::faults {

// ---------------------------------------------------------------------------
// Process-wide deterministic fault-injection registry.
//
// Library code marks its failure-prone boundaries with named sites:
//
//   DETERRENT_FAULT_POINT("sat.query");
//
// When no fault is armed the macro is a single relaxed atomic load — cheap
// enough to leave compiled into release builds. When armed (programmatically
// via arm()/arm_from_string(), or at process start from the DETERRENT_FAULTS
// environment variable) a site fires seeded, reproducible failures so the
// retry/quarantine/watchdog machinery can be driven on demand:
//
//   Throw         deterrent::FaultInjectedError from the site
//   TornTruncate  write sites only: the artifact reaches its final name
//                 truncated, as if power was lost after the rename
//   TornBitFlip   write sites only: one payload byte is flipped in the
//                 renamed file (silent corruption the CRC must catch)
//   Hang          the site stalls (sliced sleeps, polling the watchdog); a
//                 WatchdogScope deadline converts the stall into a
//                 deterrent::TimeoutError, no deadline lets it resolve
//
// DETERRENT_FAULTS grammar (';'-separated clauses, parsed once at startup):
//
//   seed=<u64>                          base seed for probabilistic firing
//   <site>=throw@<n>                    throw on exactly the Nth hit (1-based)
//   <site>=throw%<p>                    throw each hit with probability p
//   <site>=torn-truncate@<n>            torn write on the Nth hit
//   <site>=torn-flip@<n>                bit-flipped write on the Nth hit
//   <site>=hang@<n>:<ms>                stall <ms> milliseconds on the Nth hit
//
//   e.g. DETERRENT_FAULTS="seed=7;sat.query=throw%0.001;serialize.write_artifact=torn-flip@2"
//
// Probabilistic firing hashes (seed, site, hit index), so a given seed fires
// on the same hit numbers on every run regardless of thread interleaving.
// Hit counters are per site and process-wide (atomic), shared across threads.
// ---------------------------------------------------------------------------

enum class Action : std::uint8_t { None, Throw, TornTruncate, TornBitFlip, Hang };

struct FaultSpec {
  Action action = Action::None;
  /// Fire on exactly the Nth hit (1-based). 0 = fire per-hit with
  /// `probability` instead.
  std::uint64_t nth = 0;
  double probability = 0.0;
  /// Hang only: how long the site stalls before resolving on its own.
  std::uint32_t hang_ms = 1000;
};

/// The sites compiled into the library, for harnesses that want to force
/// every one of them (the fault-injection soak does exactly that).
const std::vector<std::string>& known_sites();

/// Arms `spec` at `site` (replacing any previous spec) and marks the
/// registry armed. `seed` feeds probabilistic firing at this site.
void arm(const std::string& site, const FaultSpec& spec, std::uint64_t seed = 0);

/// Parses the DETERRENT_FAULTS grammar above. Throws deterrent::
/// PermanentError on a malformed clause (a typo must not silently disable
/// the campaign's fault plan).
void arm_from_string(const std::string& grammar);

/// Disarms every site and resets all hit/fire counters.
void disarm_all();

/// Hits observed at `site` since the last disarm_all() (counted only while
/// the registry is armed).
std::uint64_t hit_count(const std::string& site);
/// Faults actually fired at `site` (throws, torn writes, hangs).
std::uint64_t fired_count(const std::string& site);

namespace detail {

extern std::atomic<bool> g_armed;

/// Slow path behind DETERRENT_FAULT_POINT: counts the hit and fires the
/// armed action, throwing FaultInjectedError / TimeoutError as configured.
void on_hit(const char* site);

/// Write-site variant: Throw/Hang fire as usual; TornTruncate/TornBitFlip
/// are returned (with a deterministic `corrupt_seed` selecting the damage)
/// for the writer to apply to the file it is producing.
struct WriteFault {
  Action action = Action::None;
  std::uint64_t corrupt_seed = 0;
};
WriteFault on_write(const char* site);

}  // namespace detail

/// True when any fault is armed. One relaxed atomic load — the entire
/// disabled-path cost of a fault point.
inline bool armed() { return detail::g_armed.load(std::memory_order_relaxed); }

}  // namespace deterrent::util::faults

/// Named fault-injection site: a single relaxed atomic load when the registry
/// is disarmed, a potential injected failure when armed. `site` must be a
/// string literal (it names the site in specs, counters, and error messages).
#define DETERRENT_FAULT_POINT(site)                    \
  do {                                                 \
    if (::deterrent::util::faults::armed())            \
      ::deterrent::util::faults::detail::on_hit(site); \
  } while (0)

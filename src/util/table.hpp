#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace deterrent::util {

/// ASCII table printer used by the benchmark harnesses to emit paper-style
/// tables (Table 1, Table 2) and figure data series.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment, e.g.
  ///   Design  | Cov. (%) | Test Length
  ///   --------+----------+------------
  ///   c2670   | 100.0    | 8
  std::string to_string() const;

  void print(std::FILE* out = stdout) const;

  std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with fixed precision (helper for cell construction).
  static std::string num(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deterrent::util

#include "util/watchdog.hpp"

#include <algorithm>
#include <string>

namespace deterrent::util {

namespace {
thread_local std::optional<WatchdogScope::Deadline> t_deadline;
}

WatchdogScope::WatchdogScope(double seconds) {
  if (seconds <= 0.0) return;
  const auto mine =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  prev_ = t_deadline;
  // Nested scopes may only tighten: a stage-level watchdog must not let an
  // inner helper push the deadline further out.
  t_deadline = prev_.has_value() ? std::min(*prev_, mine) : mine;
  installed_ = true;
}

WatchdogScope::~WatchdogScope() {
  if (installed_) t_deadline = prev_;
}

std::optional<WatchdogScope::Deadline> WatchdogScope::current() { return t_deadline; }

bool WatchdogScope::expired() {
  return t_deadline.has_value() && Clock::now() >= *t_deadline;
}

void WatchdogScope::poll(const char* where) {
  if (expired())
    throw TimeoutError(std::string("watchdog deadline expired in ") + where);
}

WatchdogScope::Adopt::Adopt(std::optional<Deadline> deadline) {
  if (!deadline.has_value()) return;
  prev_ = t_deadline;
  t_deadline = prev_.has_value() ? std::min(*prev_, *deadline) : *deadline;
  installed_ = true;
}

WatchdogScope::Adopt::~Adopt() {
  if (installed_) t_deadline = prev_;
}

}  // namespace deterrent::util

#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/faults.hpp"
#include "util/watchdog.hpp"

namespace deterrent::util {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) n_threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  // Carry the submitter's watchdog deadline into the worker, so a stage
  // timeout keeps ticking on every thread doing that stage's work.
  auto deadline = WatchdogScope::current();
  {
    std::lock_guard lock(mutex_);
    queue_.push([task = std::move(task), deadline] {
      WatchdogScope::Adopt adopt(deadline);
      DETERRENT_FAULT_POINT("threadpool.task");
      task();
    });
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  // Rethrow on the submitting thread once the batch has fully drained — the
  // pool stays consistent and reusable, and the failure surfaces where the
  // retry/quarantine layers can see it instead of std::terminate-ing a
  // worker.
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_chunks(n, [&fn](std::size_t /*thread*/, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t n_chunks = std::min(n, thread_count());
  const std::size_t chunk = (n + n_chunks - 1) / n_chunks;
  std::atomic<std::size_t> next_chunk{0};
  for (std::size_t t = 0; t < n_chunks; ++t) {
    submit([&, t] {
      // Dynamic chunk claiming: threads that finish early steal later chunks,
      // which matters because SAT query latency is highly non-uniform.
      while (true) {
        std::size_t c = next_chunk.fetch_add(1);
        std::size_t begin = c * chunk;
        if (begin >= n) return;
        std::size_t end = std::min(n, begin + chunk);
        fn(t, begin, end);
      }
    });
  }
  wait_idle();
}

}  // namespace deterrent::util

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace deterrent::util {

/// Fixed-size worker pool. The paper parallelizes the offline pairwise
/// compatibility computation across 64 processes (§3.3) and uses 16 parallel
/// environments for MIPS training (§4.1); this pool backs both.
class ThreadPool {
 public:
  /// n_threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; wait_idle() blocks until all enqueued tasks ran.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool, blocking until done.
  /// fn must be safe to invoke concurrently for distinct i. Work is handed
  /// out in contiguous chunks to keep cache behaviour predictable.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(thread_index, begin, end) over chunked ranges — for workloads
  /// that want per-thread scratch state (e.g. one SAT solver per thread).
  void parallel_chunks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace deterrent::util

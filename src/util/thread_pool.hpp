#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace deterrent::util {

/// Fixed-size worker pool. The paper parallelizes the offline pairwise
/// compatibility computation across 64 processes (§3.3) and uses 16 parallel
/// environments for MIPS training (§4.1); this pool backs both.
///
/// **Failure containment.** A task that throws (a real I/O error, an
/// injected fault, a watchdog timeout) does not take the worker thread down:
/// the first in-flight exception is captured and rethrown from the next
/// wait_idle() — i.e. on the thread that submitted the work — after every
/// other task has drained, so the pool is always reusable afterwards and a
/// faulting batch can never deadlock or std::terminate the process. Each
/// task also runs under the submitting thread's util::WatchdogScope deadline
/// (captured at submit time), keeping stage watchdogs in force across the
/// fan-out. The `threadpool.task` fault site fires before every task.
class ThreadPool {
 public:
  /// n_threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; wait_idle() blocks until all enqueued tasks ran.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle, then rethrows
  /// the first exception any task raised since the previous wait_idle().
  void wait_idle();

  /// Runs fn(i) for i in [0, n) across the pool, blocking until done.
  /// fn must be safe to invoke concurrently for distinct i. Work is handed
  /// out in contiguous chunks to keep cache behaviour predictable.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(thread_index, begin, end) over chunked ranges — for workloads
  /// that want per-thread scratch state (e.g. one SAT solver per thread).
  void parallel_chunks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;  ///< first task failure, rethrown by wait_idle
};

}  // namespace deterrent::util

#include "util/env.hpp"

#include <cstdlib>
#include <cstring>

namespace deterrent::util {

BenchMode bench_mode_from_env() {
  const char* env = std::getenv("DETERRENT_BENCH_MODE");
  if (!env) return BenchMode::Default;
  if (std::strcmp(env, "quick") == 0) return BenchMode::Quick;
  if (std::strcmp(env, "full") == 0) return BenchMode::Full;
  return BenchMode::Default;
}

const char* to_string(BenchMode mode) {
  switch (mode) {
    case BenchMode::Quick: return "quick";
    case BenchMode::Default: return "default";
    case BenchMode::Full: return "full";
  }
  return "?";
}

long env_long(const char* name, long fallback) {
  const char* env = std::getenv(name);
  if (!env || !*env) return fallback;
  char* end = nullptr;
  long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return value;
}

}  // namespace deterrent::util

#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace deterrent::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DETERRENT_ASSERT(!headers_.empty(), "Table requires at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DETERRENT_ASSERT(cells.size() == headers_.size(), "Table row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](std::ostringstream& oss, const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) oss << " | ";
      oss << cells[c];
      oss << std::string(widths[c] - cells[c].size(), ' ');
    }
    oss << '\n';
  };

  std::ostringstream oss;
  emit_row(oss, headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) oss << "-+-";
    oss << std::string(widths[c], '-');
  }
  oss << '\n';
  for (const auto& row : rows_) emit_row(oss, row);
  return oss.str();
}

void Table::print(std::FILE* out) const {
  std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), out);
  std::fflush(out);
}

std::string Table::num(double value, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << value;
  return oss.str();
}

}  // namespace deterrent::util

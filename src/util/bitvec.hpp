#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace deterrent::util {

/// Fixed-size dynamic bitset with the operations the library leans on:
/// fast popcount, subset tests, bulk AND/OR, and hashing (for the distinct
/// compatible-set pool). Word granularity is 64 bits.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t n_bits, bool value = false)
      : n_bits_(n_bits), words_((n_bits + 63) / 64, value ? ~0ULL : 0ULL) {
    trim();
  }

  std::size_t size() const { return n_bits_; }
  bool empty() const { return n_bits_ == 0; }
  std::size_t word_count() const { return words_.size(); }
  std::span<const std::uint64_t> words() const { return words_; }

  std::uint64_t word(std::size_t i) const {
    DETERRENT_ASSERT(i < words_.size(), "BitVec::word out of range");
    return words_[i];
  }

  /// Replaces 64 bits at once (bits [64*i, 64*i+64)); the engine-backed
  /// signature builders write whole simulation words instead of per-bit
  /// set() calls. Bits beyond size() in the final word are dropped.
  void set_word(std::size_t i, std::uint64_t value) {
    DETERRENT_ASSERT(i < words_.size(), "BitVec::set_word out of range");
    words_[i] = value;
    if (i + 1 == words_.size()) trim();
  }

  bool test(std::size_t i) const {
    DETERRENT_ASSERT(i < n_bits_, "BitVec::test out of range");
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool value = true) {
    DETERRENT_ASSERT(i < n_bits_, "BitVec::set out of range");
    if (value)
      words_[i >> 6] |= (1ULL << (i & 63));
    else
      words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void reset(std::size_t i) { set(i, false); }

  void clear_all() {
    for (auto& w : words_) w = 0;
  }

  void set_all() {
    for (auto& w : words_) w = ~0ULL;
    trim();
  }

  std::size_t count() const {
    std::size_t total = 0;
    for (auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
    return total;
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  bool none() const { return !any(); }

  /// True iff every set bit of *this is also set in other.
  bool is_subset_of(const BitVec& other) const {
    DETERRENT_ASSERT(n_bits_ == other.n_bits_, "BitVec size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & ~other.words_[i]) return false;
    return true;
  }

  bool intersects(const BitVec& other) const {
    DETERRENT_ASSERT(n_bits_ == other.n_bits_, "BitVec size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] & other.words_[i]) return true;
    return false;
  }

  BitVec& operator&=(const BitVec& other) {
    DETERRENT_ASSERT(n_bits_ == other.n_bits_, "BitVec size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  BitVec& operator|=(const BitVec& other) {
    DETERRENT_ASSERT(n_bits_ == other.n_bits_, "BitVec size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  BitVec& operator^=(const BitVec& other) {
    DETERRENT_ASSERT(n_bits_ == other.n_bits_, "BitVec size mismatch");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
    return *this;
  }

  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }
  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }

  bool operator==(const BitVec& other) const = default;

  /// Index of the first set bit, or size() if none.
  std::size_t find_first() const { return find_next(0); }

  /// Index of the first set bit at position >= from, or size() if none.
  std::size_t find_next(std::size_t from) const;

  /// Indices of all set bits, ascending.
  std::vector<std::uint32_t> to_indices() const;

  /// "0101..." string, bit 0 first (handy for test diagnostics).
  std::string to_string() const;

  std::size_t hash() const {
    // FNV-1a over words; adequate for the distinct-set pool.
    std::uint64_t h = 1469598103934665603ULL;
    for (auto w : words_) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    h ^= n_bits_;
    h *= 1099511628211ULL;
    return static_cast<std::size_t>(h);
  }

 private:
  void trim() {
    if (n_bits_ % 64 != 0 && !words_.empty())
      words_.back() &= (~0ULL >> (64 - (n_bits_ % 64)));
  }

  std::size_t n_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

struct BitVecHash {
  std::size_t operator()(const BitVec& bv) const { return bv.hash(); }
};

}  // namespace deterrent::util

#pragma once

#include <sstream>
#include <string>

namespace deterrent::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Minimal leveled logger writing to stderr. Global level defaults to Info and
/// can be overridden with the DETERRENT_LOG environment variable
/// (debug|info|warn|error|off).
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  static void write(LogLevel level, const std::string& message);

  template <typename... Args>
  static void debug(const Args&... args) {
    emit(LogLevel::Debug, args...);
  }
  template <typename... Args>
  static void info(const Args&... args) {
    emit(LogLevel::Info, args...);
  }
  template <typename... Args>
  static void warn(const Args&... args) {
    emit(LogLevel::Warn, args...);
  }
  template <typename... Args>
  static void error(const Args&... args) {
    emit(LogLevel::Error, args...);
  }

 private:
  template <typename... Args>
  static void emit(LogLevel lvl, const Args&... args) {
    if (lvl < level()) return;
    std::ostringstream oss;
    (oss << ... << args);
    write(lvl, oss.str());
  }
};

}  // namespace deterrent::util

#pragma once

#include <chrono>
#include <optional>

#include "util/assert.hpp"

namespace deterrent::util {

/// Cooperative per-thread stage deadline — the watchdog behind
/// StageStatus::TimedOut.
///
/// A scope installs a steady-clock deadline in thread-local storage; long
/// running primitives call poll() at their natural cancellation points (SAT
/// queries, fault-injected hangs, artifact I/O) and get a deterrent::
/// TimeoutError once the deadline has passed. The pipeline catches that at
/// the stage boundary and converts it into a clean StageStatus::TimedOut, so
/// a hung stage degrades into a reported timeout instead of wedging a worker
/// thread forever.
///
/// The deadline is *cooperative*: nothing preempts a loop that never polls.
/// util::ThreadPool propagates the submitting thread's deadline into its
/// workers, so a stage that fans work out across the pool keeps its deadline
/// on every thread that executes for it. Scopes nest; an inner scope may only
/// tighten (never extend) the surrounding deadline.
class WatchdogScope {
 public:
  using Clock = std::chrono::steady_clock;
  using Deadline = Clock::time_point;

  /// Installs `now + seconds` for this thread; seconds <= 0 is a no-op scope
  /// (the surrounding deadline, if any, stays in force).
  explicit WatchdogScope(double seconds);
  ~WatchdogScope();

  WatchdogScope(const WatchdogScope&) = delete;
  WatchdogScope& operator=(const WatchdogScope&) = delete;

  /// Deadline currently in force on this thread (nullopt = none).
  static std::optional<Deadline> current();
  /// True when a deadline is installed and has passed. Cheap: one TLS read
  /// plus a clock read when armed.
  static bool expired();
  /// Throws deterrent::TimeoutError naming `where` when expired().
  static void poll(const char* where);

  /// RAII adoption of another thread's deadline — how util::ThreadPool hands
  /// the submitter's deadline to the worker executing its task.
  class Adopt {
   public:
    explicit Adopt(std::optional<Deadline> deadline);
    ~Adopt();
    Adopt(const Adopt&) = delete;
    Adopt& operator=(const Adopt&) = delete;

   private:
    std::optional<Deadline> prev_;
    bool installed_ = false;
  };

 private:
  std::optional<Deadline> prev_;
  bool installed_ = false;
};

}  // namespace deterrent::util

#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace deterrent::util {

/// Deterministic, fast pseudo-random generator (xoshiro256**).
///
/// All stochastic components of the library (simulation, RL rollouts, Trojan
/// sampling, benchmark generators) take an explicit Rng so experiments are
/// reproducible from a single seed. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes state from a 64-bit seed via SplitMix64 (avoids the
  /// all-zero state and decorrelates nearby seeds).
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  /// 64 independent uniform bits — the workhorse for bit-parallel simulation.
  std::uint64_t next_word() { return next(); }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    DETERRENT_ASSERT(bound > 0, "Rng::below requires positive bound");
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    DETERRENT_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (used for neural-net weight init).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(6.283185307179586476925286766559 * u2);
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = below(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& choice(std::span<const T> items) {
    DETERRENT_ASSERT(!items.empty(), "Rng::choice requires non-empty span");
    return items[below(items.size())];
  }

  /// Samples k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<std::uint32_t> sample_indices(std::uint32_t n, std::uint32_t k) {
    DETERRENT_ASSERT(k <= n, "Rng::sample_indices requires k <= n");
    // Partial Fisher–Yates over an index vector; fine for the sizes we use
    // (n is at most a few thousand rare nets).
    std::vector<std::uint32_t> idx(n);
    for (std::uint32_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      std::uint32_t j = i + static_cast<std::uint32_t>(below(n - i));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

  /// Derives an independent child stream (for per-thread / per-episode RNGs).
  Rng fork() { return Rng(next()); }

  /// Stateless SplitMix64 finalizer — decorrelates derived seeds (e.g. one
  /// seed per campaign circuit) without constructing a generator.
  static std::uint64_t mix64(std::uint64_t x) { return splitmix64(x); }

  /// The four xoshiro256** state words — the checkpointable identity of the
  /// stream. Restoring a saved state resumes the exact draw sequence, which
  /// is what makes mid-training pipeline checkpoints bit-identical on resume.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  void set_state(const std::array<std::uint64_t, 4>& state) {
    DETERRENT_ASSERT(state[0] || state[1] || state[2] || state[3],
                     "Rng::set_state rejects the all-zero state");
    for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::uint64_t next() {
    std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t state_[4];
};

}  // namespace deterrent::util

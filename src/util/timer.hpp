#pragma once

#include <chrono>

namespace deterrent::util {

/// Wall-clock stopwatch used by training-rate measurements (Table 1, Fig. 2)
/// and the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace deterrent::util

#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace deterrent::util {

/// Minimal over-aligning allocator for std::vector: every allocation starts
/// at an `Alignment`-byte boundary. Used by sim::EvalBuffer so value storage
/// is 64-byte (cache-line / AVX-512 register) aligned — the SIMD kernels use
/// unaligned loads for correctness, but aligned rows keep W=8 sweeps from
/// splitting cache lines.
template <class T, std::size_t Alignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "alignment must not weaken the type's own");

  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// A std::vector whose storage starts on a cache-line (64-byte) boundary.
template <class T>
using CacheAlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace deterrent::util

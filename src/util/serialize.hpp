#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"
#include "util/bitvec.hpp"

namespace deterrent::util {

/// Little-endian binary encoder for the pipeline's serializable artifacts.
/// Appends into an in-memory byte buffer; the buffer is framed and written
/// to disk by write_artifact_file(), which adds the header + CRC envelope.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed UTF-8 bytes.
  void str(const std::string& s);
  /// Raw bytes, verbatim, no length prefix (envelope assembly).
  void raw(std::span<const std::uint8_t> v) {
    bytes_.insert(bytes_.end(), v.begin(), v.end());
  }
  /// Length-prefixed bit count + words.
  void bitvec(const BitVec& bv);

  void u32_vec(std::span<const std::uint32_t> v);
  void u64_vec(std::span<const std::uint64_t> v);
  void f32_vec(std::span<const float> v);
  void bitvec_vec(std::span<const BitVec> v);

  std::span<const std::uint8_t> bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked decoder over a byte buffer. Every overrun throws
/// deterrent::Error — a truncated or corrupt artifact must fail loudly, never
/// yield garbage state.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();
  BitVec bitvec();

  std::vector<std::uint32_t> u32_vec();
  std::vector<std::uint64_t> u64_vec();
  std::vector<float> f32_vec();
  std::vector<BitVec> bitvec_vec();

  std::size_t remaining() const { return bytes_.size() - pos_; }
  /// Throws unless the whole buffer was consumed (trailing bytes mean the
  /// reader and writer disagree about the format).
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected) — the integrity check of the artifact
/// envelope.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// Incremental FNV-1a over 64-bit words — the one implementation behind the
/// netlist structural fingerprint and the artifact content hashes, so the
/// constants can never drift between them.
struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;

  void mix(std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  }

  /// Finished hash with 0 remapped to 1 — artifact headers use 0 as the
  /// "no fingerprint / skip the check" sentinel.
  std::uint64_t value_nonzero() const { return h == 0 ? 1 : h; }
};

/// Atomically publishes raw bytes at `path` via the same
/// write-then-fsync-then-rename protocol as write_artifact_file, so a crash
/// mid-write can never leave a torn file under the final name. `fault_site`,
/// when non-null, names the injection site consulted for throw/hang/torn
/// actions (see util/faults.hpp); the artifact cache and shard scratch files
/// route through here with their own sites.
void write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes,
                       const char* fault_site = nullptr);

/// Whole-file read; throws TransientError when the file cannot be opened
/// (existence says nothing about validity — callers envelope-check the bytes).
std::vector<std::uint8_t> read_file_bytes(const std::string& path);

/// On-disk artifact envelope:
///
///   magic   "DETA"                     4 bytes
///   kind    u32                        artifact discriminator
///   version u32                        format version of the payload
///   fingerprint u64                    structural netlist fingerprint
///   payload_size u64
///   payload                            payload_size bytes
///   crc     u32                        CRC-32 of the payload
///
/// Versioning policy: `version` identifies the payload *layout* (the
/// pipeline pins it to core::kArtifactFormatVersion, bumped on any layout
/// change); `kind` is the payload *type* (core::ArtifactKind). Readers pin
/// both and reject everything else — there is no cross-version migration
/// path, stale artifacts are regenerated. `fingerprint` binds the file to
/// one netlist structure; 0 is the "no fingerprint / skip the check"
/// sentinel (see Fnv1a::value_nonzero).
///
/// All failure modes (missing file, bad magic, wrong kind, version skew,
/// fingerprint mismatch, truncation, CRC mismatch, trailing bytes) throw
/// deterrent::Error with the offending path in the message. Integers are
/// little-endian on disk regardless of host order.
struct ArtifactHeader {
  std::uint32_t kind = 0;
  std::uint32_t version = 0;
  std::uint64_t fingerprint = 0;
};

/// Writes envelope + payload atomically (temp file, then rename), so a
/// crash mid-save can never leave a half-written artifact at `path`.
void write_artifact_file(const std::string& path, const ArtifactHeader& header,
                         std::span<const std::uint8_t> payload);

/// Reads and validates an artifact file. `expected` pins kind and version;
/// when `expected.fingerprint` is non-zero it must match the stored one.
/// Returns the payload bytes (envelope verified, CRC checked).
std::vector<std::uint8_t> read_artifact_file(const std::string& path,
                                             const ArtifactHeader& expected,
                                             std::uint64_t* fingerprint_out = nullptr);

}  // namespace deterrent::util

#include "util/bitvec.hpp"

#include <bit>

namespace deterrent::util {

std::size_t BitVec::find_next(std::size_t from) const {
  if (from >= n_bits_) return n_bits_;
  std::size_t word = from >> 6;
  std::uint64_t w = words_[word] & (~0ULL << (from & 63));
  while (true) {
    if (w) {
      std::size_t bit = (word << 6) + static_cast<std::size_t>(std::countr_zero(w));
      return bit < n_bits_ ? bit : n_bits_;
    }
    if (++word >= words_.size()) return n_bits_;
    w = words_[word];
  }
}

std::vector<std::uint32_t> BitVec::to_indices() const {
  std::vector<std::uint32_t> out;
  out.reserve(count());
  for (std::size_t i = find_first(); i < n_bits_; i = find_next(i + 1))
    out.push_back(static_cast<std::uint32_t>(i));
  return out;
}

std::string BitVec::to_string() const {
  std::string s(n_bits_, '0');
  for (std::size_t i = 0; i < n_bits_; ++i)
    if (test(i)) s[i] = '1';
  return s;
}

}  // namespace deterrent::util

#include "util/serialize.hpp"

#include <array>
#include <cstdio>
#include <cstring>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "util/faults.hpp"

namespace deterrent::util {

// ------------------------------------------------------------- writer -----

void BinaryWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void BinaryWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void BinaryWriter::str(const std::string& s) {
  u64(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void BinaryWriter::bitvec(const BitVec& bv) {
  u64(bv.size());
  for (std::size_t w = 0; w < bv.word_count(); ++w) u64(bv.word(w));
}

void BinaryWriter::u32_vec(std::span<const std::uint32_t> v) {
  u64(v.size());
  for (const auto x : v) u32(x);
}

void BinaryWriter::u64_vec(std::span<const std::uint64_t> v) {
  u64(v.size());
  for (const auto x : v) u64(x);
}

void BinaryWriter::f32_vec(std::span<const float> v) {
  u64(v.size());
  for (const auto x : v) f32(x);
}

void BinaryWriter::bitvec_vec(std::span<const BitVec> v) {
  u64(v.size());
  for (const auto& bv : v) bitvec(bv);
}

// ------------------------------------------------------------- reader -----

void BinaryReader::need(std::size_t n) const {
  // Compare via subtraction: pos_ + n could wrap for forged length prefixes.
  if (n > bytes_.size() - pos_)
    throw CorruptArtifactError("artifact payload truncated: need " + std::to_string(n) +
                " bytes at offset " + std::to_string(pos_) + ", have " +
                std::to_string(bytes_.size() - pos_));
}

std::uint8_t BinaryReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t BinaryReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t BinaryReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
  return v;
}

float BinaryReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double BinaryReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BinaryReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return s;
}

BitVec BinaryReader::bitvec() {
  const std::uint64_t n_bits = u64();
  // Bound the length prefix by the bytes actually present BEFORE allocating:
  // a corrupt/forged count must throw Error, not bad_alloc (and the
  // division-form comparison cannot overflow).
  const std::uint64_t n_words = n_bits / 64 + (n_bits % 64 != 0 ? 1 : 0);
  if (n_words > remaining() / 8)
    throw CorruptArtifactError("artifact bitvec claims " + std::to_string(n_bits) +
                " bits but only " + std::to_string(remaining()) + " bytes remain");
  BitVec bv(n_bits);
  for (std::size_t w = 0; w < bv.word_count(); ++w) {
    const std::uint64_t word = u64();
    // Reject set bits beyond size(): the writer always trims, so spurious
    // tail bits mean corruption that CRC happened to miss or a forged file.
    if (w + 1 == bv.word_count() && n_bits % 64 != 0 &&
        (word & ~(~0ULL >> (64 - n_bits % 64))) != 0)
      throw CorruptArtifactError("artifact bitvec has bits set beyond its length");
    bv.set_word(w, word);
  }
  return bv;
}

// The count guards below use division so oversized length prefixes can
// neither overflow the byte-count multiplication nor trigger a huge
// allocation — they throw Error like every other corruption.

std::vector<std::uint32_t> BinaryReader::u32_vec() {
  const std::uint64_t n = u64();
  if (n > remaining() / 4)
    throw CorruptArtifactError("artifact vector claims " + std::to_string(n) + " u32 elements but only " +
                std::to_string(remaining()) + " bytes remain");
  std::vector<std::uint32_t> v(n);
  for (auto& x : v) x = u32();
  return v;
}

std::vector<std::uint64_t> BinaryReader::u64_vec() {
  const std::uint64_t n = u64();
  if (n > remaining() / 8)
    throw CorruptArtifactError("artifact vector claims " + std::to_string(n) + " u64 elements but only " +
                std::to_string(remaining()) + " bytes remain");
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = u64();
  return v;
}

std::vector<float> BinaryReader::f32_vec() {
  const std::uint64_t n = u64();
  if (n > remaining() / 4)
    throw CorruptArtifactError("artifact vector claims " + std::to_string(n) + " f32 elements but only " +
                std::to_string(remaining()) + " bytes remain");
  std::vector<float> v(n);
  for (auto& x : v) x = f32();
  return v;
}

std::vector<BitVec> BinaryReader::bitvec_vec() {
  const std::uint64_t n = u64();
  if (n > remaining() / 8)  // at least the length word of each element
    throw CorruptArtifactError("artifact vector claims " + std::to_string(n) +
                " bitvec elements but only " + std::to_string(remaining()) +
                " bytes remain");
  std::vector<BitVec> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(bitvec());
  return v;
}

void BinaryReader::expect_end() const {
  if (pos_ != bytes_.size())
    throw CorruptArtifactError("artifact payload has " + std::to_string(bytes_.size() - pos_) +
                " trailing bytes (format mismatch)");
}

// -------------------------------------------------------------- crc32 -----

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const std::uint8_t b : bytes) crc = table[(crc ^ b) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

// ----------------------------------------------------------- envelope -----

namespace {

constexpr char kMagic[4] = {'D', 'E', 'T', 'A'};

/// Flushes file contents to stable storage before the rename publishes them.
/// Without this the rename can reach disk before the data does, and a power
/// loss leaves a complete-looking file full of garbage — exactly the torn
/// state the atomic-write contract promises cannot exist.
bool sync_file(std::FILE* f) {
#ifndef _WIN32
  if (std::fflush(f) != 0) return false;
  return ::fsync(::fileno(f)) == 0;
#else
  return std::fflush(f) == 0;
#endif
}

/// Best-effort fsync of the directory holding `path`, so the rename itself
/// (the directory entry) is durable too. Failure is ignored: not every
/// filesystem supports directory fsync, and the file-level sync already
/// guarantees no torn *content*.
void sync_parent_dir(const std::string& path) {
#ifndef _WIN32
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

/// Applies an injected torn-write to the finished tmp file: truncation (the
/// tail never reached disk) or a single flipped bit (silent media corruption).
/// The file is then renamed into place as usual — producing exactly the
/// on-disk state a real crash could leave, for the recovery layer to detect.
void apply_torn_write(const std::string& tmp, faults::Action action,
                      std::uint64_t corrupt_seed) {
  std::FILE* f = std::fopen(tmp.c_str(), "r+b");
  if (f == nullptr) return;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size > 0) {
    if (action == faults::Action::TornTruncate) {
      std::fclose(f);
#ifndef _WIN32
      ::truncate(tmp.c_str(), size / 2);
#endif
      return;
    }
    const long pos = static_cast<long>(corrupt_seed % static_cast<std::uint64_t>(size));
    std::fseek(f, pos, SEEK_SET);
    const int byte = std::fgetc(f);
    if (byte != EOF) {
      std::fseek(f, pos, SEEK_SET);
      std::fputc(byte ^ (1 << (corrupt_seed % 8)), f);
    }
  }
  std::fclose(f);
}

}  // namespace

void write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes,
                       const char* fault_site) {
  // Injected faults: Throw/Hang fire here; torn actions are applied to the
  // finished file below, modeling a crash the write-then-rename protocol
  // could not mask.
  const faults::detail::WriteFault torn =
      (fault_site != nullptr && faults::armed()) ? faults::detail::on_write(fault_site)
                                                 : faults::detail::WriteFault{};

  // Write-then-fsync-then-rename so a crash (or kill, or power loss) mid-save
  // can never leave a half-written file under the final name — it either
  // exists completely or not at all.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw TransientError("cannot write file " + tmp);
  bool ok =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = sync_file(f) && ok;
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw TransientError("short write to file " + tmp);
  }
  if (torn.action == faults::Action::TornTruncate ||
      torn.action == faults::Action::TornBitFlip)
    apply_torn_write(tmp, torn.action, torn.corrupt_seed);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw TransientError("cannot move file into place at " + path);
  }
  sync_parent_dir(path);
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw TransientError("cannot open file " + path);
  std::vector<std::uint8_t> raw;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
    raw.insert(raw.end(), chunk, chunk + n);
  std::fclose(f);
  return raw;
}

void write_artifact_file(const std::string& path, const ArtifactHeader& header,
                         std::span<const std::uint8_t> payload) {
  BinaryWriter file;
  file.u8(static_cast<std::uint8_t>(kMagic[0]));
  file.u8(static_cast<std::uint8_t>(kMagic[1]));
  file.u8(static_cast<std::uint8_t>(kMagic[2]));
  file.u8(static_cast<std::uint8_t>(kMagic[3]));
  file.u32(header.kind);
  file.u32(header.version);
  file.u64(header.fingerprint);
  file.u64(payload.size());
  file.raw(payload);
  file.u32(crc32(payload));
  write_file_atomic(path, file.bytes(), "serialize.write_artifact");
}

std::vector<std::uint8_t> read_artifact_file(const std::string& path,
                                             const ArtifactHeader& expected,
                                             std::uint64_t* fingerprint_out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw TransientError("cannot open artifact file " + path);
  std::vector<std::uint8_t> raw;
  std::uint8_t chunk[1 << 16];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) raw.insert(raw.end(), chunk, chunk + n);
  std::fclose(f);

  BinaryReader r(raw);
  try {
    for (const char m : kMagic)
      if (r.u8() != static_cast<std::uint8_t>(m))
        throw CorruptArtifactError("bad magic (not a DETERRENT artifact)");
    const std::uint32_t kind = r.u32();
    if (kind != expected.kind)
      throw CorruptArtifactError("artifact kind mismatch: file has " + std::to_string(kind) +
                  ", expected " + std::to_string(expected.kind));
    const std::uint32_t version = r.u32();
    if (version != expected.version)
      throw CorruptArtifactError("artifact version mismatch: file has v" + std::to_string(version) +
                  ", this build reads v" + std::to_string(expected.version));
    const std::uint64_t fingerprint = r.u64();
    if (expected.fingerprint != 0 && fingerprint != expected.fingerprint)
      throw CorruptArtifactError("netlist fingerprint mismatch: artifact was built for a different "
                  "circuit (file " +
                  std::to_string(fingerprint) + ", netlist " +
                  std::to_string(expected.fingerprint) + ")");
    if (fingerprint_out != nullptr) *fingerprint_out = fingerprint;
    const std::uint64_t payload_size = r.u64();
    const std::size_t header_size = raw.size() - r.remaining();
    // Guard the raw size first — `payload_size + 4` could wrap for a forged
    // size field, and every failure here must be Error, not UB/length_error.
    if (payload_size > r.remaining())
      throw CorruptArtifactError("truncated: payload claims " + std::to_string(payload_size) +
                  " bytes, file holds " + std::to_string(r.remaining()));
    if (r.remaining() - payload_size != 4)
      throw CorruptArtifactError(r.remaining() - payload_size < 4
                      ? "truncated: CRC missing"
                      : "artifact has trailing bytes after CRC");
    std::vector<std::uint8_t> payload(
        raw.begin() + static_cast<std::ptrdiff_t>(header_size),
        raw.begin() + static_cast<std::ptrdiff_t>(header_size + payload_size));
    BinaryReader crc_reader(
        std::span<const std::uint8_t>(raw.data() + header_size + payload_size, 4));
    const std::uint32_t stored_crc = crc_reader.u32();
    if (stored_crc != crc32(payload))
      throw CorruptArtifactError("CRC mismatch (artifact corrupt)");
    return payload;
  } catch (const Error& e) {
    // Every failure inside the envelope walk means the bytes on disk are not a
    // valid artifact — rethrow with the path, preserving the corrupt taxonomy
    // so the session layer knows to quarantine rather than retry.
    throw CorruptArtifactError(std::string("artifact ") + path + ": " + e.what());
  }
}

}  // namespace deterrent::util

#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace deterrent::util {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("DETERRENT_LOG");
  if (!env) return LogLevel::Info;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  if (std::strcmp(env, "off") == 0) return LogLevel::Off;
  return LogLevel::Info;
}

std::atomic<LogLevel>& level_store() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel Log::level() { return level_store().load(std::memory_order_relaxed); }

void Log::set_level(LogLevel level) {
  level_store().store(level, std::memory_order_relaxed);
}

void Log::write(LogLevel lvl, const std::string& message) {
  static std::mutex mutex;
  std::lock_guard lock(mutex);
  std::fprintf(stderr, "[deterrent %s] %s\n", level_name(lvl), message.c_str());
}

}  // namespace deterrent::util

#include "analysis/lint.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <unordered_map>

#include "analysis/scoap.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/scan.hpp"
#include "util/assert.hpp"

namespace deterrent::analysis {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetId;

const char* to_string(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::Info: return "info";
    case LintSeverity::Warning: return "warning";
    case LintSeverity::Error: return "error";
  }
  return "unknown";
}

namespace {

// Registry order is report order: parse tier (fires via
// append_parse_diagnostics), structural DRC, then the trojan screen.
constexpr LintRule kRules[] = {
    {"parse.syntax", LintSeverity::Error, "parse",
     "line is not valid .bench syntax"},
    {"parse.cell", LintSeverity::Error, "parse", "unknown cell in gate definition"},
    {"parse.limit", LintSeverity::Error, "parse",
     "design exceeds the untrusted-input size cap"},
    {"drc.undriven", LintSeverity::Error, "drc", "net is used but never driven"},
    {"drc.multi-driven", LintSeverity::Error, "drc",
     "net has more than one driver"},
    {"drc.cycle", LintSeverity::Error, "drc",
     "combinational cycle (feedback not broken by a DFF)"},
    {"drc.arity", LintSeverity::Error, "drc",
     "fanin count outside the cell's bounds"},
    {"drc.no-outputs", LintSeverity::Warning, "drc",
     "design has no primary outputs; nothing is observable"},
    {"drc.unused-input", LintSeverity::Warning, "drc",
     "primary input drives nothing"},
    {"drc.dangling", LintSeverity::Warning, "drc",
     "internal net has no consumers and is not an output"},
    {"drc.dead-cone", LintSeverity::Warning, "drc",
     "net cannot reach any primary output"},
    {"drc.const-output", LintSeverity::Warning, "drc",
     "primary output is statically constant"},
    {"drc.dff-const", LintSeverity::Warning, "drc",
     "flip-flop state can never change after reset"},
    {"drc.dff-dead", LintSeverity::Warning, "drc",
     "flip-flop output drives nothing"},
    {"drc.const-logic", LintSeverity::Info, "drc",
     "gate evaluates to a constant under constant propagation"},
    {"drc.duplicate-gate", LintSeverity::Info, "drc",
     "gate duplicates another gate's function (same cell, same fanins)"},
    {"trojan.near-unexcitable", LintSeverity::Warning, "trojan",
     "net's rarer value has a vanishing static probability (trigger candidate)"},
    {"trojan.shadow-cone", LintSeverity::Warning, "trojan",
     "net is live yet nearly unobservable by SCOAP (payload hiding spot)"},
    {"trojan.trigger-shape", LintSeverity::Warning, "trojan",
     "wide single-use AND cone with vanishing activation probability"},
};

std::size_t rule_index(std::string_view id) {
  for (std::size_t i = 0; i < std::size(kRules); ++i)
    if (id == kRules[i].id) return i;
  return std::size(kRules);
}

std::string display_name(const Netlist& nl, NetId net) {
  const std::string& given = nl.name(net);
  if (!given.empty()) return given;
  return "n" + std::to_string(net);
}

/// Accumulates findings per rule (registry order), then applies the
/// per-rule cap so a pathological design cannot flood the report.
class Collector {
 public:
  explicit Collector(const LintConfig& config) : config_(config) {}

  bool enabled(std::string_view rule) const { return config_.rule_enabled(rule); }

  void add(const Netlist& nl, std::string_view rule, NetId net, std::string message) {
    if (!enabled(rule)) return;
    const std::size_t idx = rule_index(rule);
    DETERRENT_ASSERT(idx < std::size(kRules), "lint rule not in registry");
    LintDiagnostic d;
    d.rule = std::string(rule);
    d.severity = kRules[idx].severity;
    d.net = net;
    if (net != netlist::kNoNet) d.net_name = display_name(nl, net);
    d.message = std::move(message);
    by_rule_[idx].push_back(std::move(d));
  }

  LintReport finish() {
    LintReport report;
    for (auto& [idx, list] : by_rule_) {
      std::stable_sort(list.begin(), list.end(),
                       [](const LintDiagnostic& a, const LintDiagnostic& b) {
                         return a.net < b.net;
                       });
      const std::size_t cap = config_.max_per_rule;
      if (cap != 0 && list.size() > cap) {
        const std::size_t dropped = list.size() - cap;
        list.resize(cap);
        LintDiagnostic tail;
        tail.rule = kRules[idx].id;
        tail.severity = kRules[idx].severity;
        tail.message = std::to_string(dropped) + " further " +
                       std::string(kRules[idx].id) + " finding" +
                       (dropped == 1 ? "" : "s") + " suppressed (max-per-rule " +
                       std::to_string(cap) + ")";
        list.push_back(std::move(tail));
        report.suppressed += dropped;
      }
      for (auto& d : list) report.diagnostics.push_back(std::move(d));
    }
    return report;
  }

 private:
  const LintConfig& config_;
  std::map<std::size_t, std::vector<LintDiagnostic>> by_rule_;  // keyed by registry index
};

// ---- static analyses shared by several rules --------------------------------

/// Ternary constant propagation over the topological order. -1 = unknown (X).
enum class Tern : std::int8_t { Zero = 0, One = 1, X = 2 };

std::vector<Tern> propagate_constants(const Netlist& nl) {
  std::vector<Tern> value(nl.net_count(), Tern::X);
  for (NetId id : nl.topo_order()) {
    switch (nl.type(id)) {
      case GateType::Const0: value[id] = Tern::Zero; break;
      case GateType::Const1: value[id] = Tern::One; break;
      case GateType::Input:
      case GateType::Dff: value[id] = Tern::X; break;
      case GateType::Buf: value[id] = value[nl.fanins(id)[0]]; break;
      case GateType::Not: {
        const Tern v = value[nl.fanins(id)[0]];
        value[id] = v == Tern::X ? Tern::X : (v == Tern::Zero ? Tern::One : Tern::Zero);
        break;
      }
      case GateType::And:
      case GateType::Nand: {
        bool any_zero = false, all_one = true;
        for (NetId f : nl.fanins(id)) {
          if (value[f] == Tern::Zero) any_zero = true;
          if (value[f] != Tern::One) all_one = false;
        }
        Tern v = any_zero ? Tern::Zero : (all_one ? Tern::One : Tern::X);
        if (nl.type(id) == GateType::Nand && v != Tern::X)
          v = v == Tern::Zero ? Tern::One : Tern::Zero;
        value[id] = v;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        bool any_one = false, all_zero = true;
        for (NetId f : nl.fanins(id)) {
          if (value[f] == Tern::One) any_one = true;
          if (value[f] != Tern::Zero) all_zero = false;
        }
        Tern v = any_one ? Tern::One : (all_zero ? Tern::Zero : Tern::X);
        if (nl.type(id) == GateType::Nor && v != Tern::X)
          v = v == Tern::Zero ? Tern::One : Tern::Zero;
        value[id] = v;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        bool any_x = false, parity = nl.type(id) == GateType::Xnor;
        for (NetId f : nl.fanins(id)) {
          if (value[f] == Tern::X) { any_x = true; break; }
          parity ^= value[f] == Tern::One;
        }
        value[id] = any_x ? Tern::X : (parity ? Tern::One : Tern::Zero);
        break;
      }
    }
  }
  return value;
}

/// Static signal probability under the fanin-independence assumption:
/// P(input) = P(dff) = 0.5; gates compose their fanin probabilities.
std::vector<double> propagate_probability(const Netlist& nl) {
  std::vector<double> p(nl.net_count(), 0.5);
  for (NetId id : nl.topo_order()) {
    const auto fi = nl.fanins(id);
    switch (nl.type(id)) {
      case GateType::Input:
      case GateType::Dff: p[id] = 0.5; break;
      case GateType::Const0: p[id] = 0.0; break;
      case GateType::Const1: p[id] = 1.0; break;
      case GateType::Buf: p[id] = p[fi[0]]; break;
      case GateType::Not: p[id] = 1.0 - p[fi[0]]; break;
      case GateType::And:
      case GateType::Nand: {
        double prod = 1.0;
        for (NetId f : fi) prod *= p[f];
        p[id] = nl.type(id) == GateType::And ? prod : 1.0 - prod;
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        double prod = 1.0;
        for (NetId f : fi) prod *= 1.0 - p[f];
        p[id] = nl.type(id) == GateType::Or ? 1.0 - prod : prod;
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        double acc = 0.0;  // P(parity over processed fanins == 1)
        for (NetId f : fi) acc = acc * (1.0 - p[f]) + p[f] * (1.0 - acc);
        p[id] = nl.type(id) == GateType::Xor ? acc : 1.0 - acc;
        break;
      }
    }
  }
  return p;
}

/// Reverse reachability from primary outputs over the fanin relation (DFF
/// data edges included, so state feeding an observable cone counts as live).
std::vector<bool> reaches_output(const Netlist& nl) {
  std::vector<bool> live(nl.net_count(), false);
  std::vector<NetId> stack;
  for (NetId out : nl.outputs())
    if (!live[out]) { live[out] = true; stack.push_back(out); }
  while (!stack.empty()) {
    const NetId id = stack.back();
    stack.pop_back();
    for (NetId f : nl.fanins(id))
      if (!live[f]) { live[f] = true; stack.push_back(f); }
  }
  return live;
}

// ---- rule passes ------------------------------------------------------------

void rule_no_outputs(const Netlist& nl, Collector& out) {
  if (nl.outputs().empty() && nl.net_count() > 0)
    out.add(nl, "drc.no-outputs", netlist::kNoNet,
            "design has no primary outputs; every net is unobservable");
}

void rule_unused_and_dangling(const Netlist& nl, Collector& out) {
  std::vector<bool> is_output(nl.net_count(), false);
  for (NetId o : nl.outputs()) is_output[o] = true;
  for (NetId id = 0; id < nl.net_count(); ++id) {
    if (!nl.fanouts(id).empty() || is_output[id]) continue;
    switch (nl.type(id)) {
      case GateType::Input:
        out.add(nl, "drc.unused-input", id,
                "primary input '" + display_name(nl, id) + "' drives nothing");
        break;
      case GateType::Dff:
        out.add(nl, "drc.dff-dead", id,
                "flip-flop '" + display_name(nl, id) +
                    "' output drives nothing; dead state bit");
        break;
      default:
        out.add(nl, "drc.dangling", id,
                "net '" + display_name(nl, id) +
                    "' has no consumers and is not an output");
        break;
    }
  }
}

void rule_dead_cone(const Netlist& nl, Collector& out) {
  if (nl.outputs().empty()) return;  // drc.no-outputs already covers the design
  const std::vector<bool> live = reaches_output(nl);
  for (NetId id = 0; id < nl.net_count(); ++id) {
    if (live[id]) continue;
    // Direct zero-fanout nets are reported by the dangling/unused/dff-dead
    // rules; the dead-cone rule covers nets whose consumers are all dead.
    if (nl.fanouts(id).empty()) continue;
    out.add(nl, "drc.dead-cone", id,
            "net '" + display_name(nl, id) +
                "' cannot reach any primary output (dead cone)");
  }
}

void rule_constants(const Netlist& nl, const std::vector<Tern>& value,
                    Collector& out) {
  std::vector<bool> is_output(nl.net_count(), false);
  for (NetId o : nl.outputs()) is_output[o] = true;

  for (NetId id = 0; id < nl.net_count(); ++id) {
    const GateType type = nl.type(id);
    const bool is_const_cell = type == GateType::Const0 || type == GateType::Const1;
    if (value[id] != Tern::X && !is_const_cell &&
        netlist::is_combinational_cell(type)) {
      out.add(nl, "drc.const-logic", id,
              "gate '" + display_name(nl, id) + "' (" +
                  std::string(netlist::to_string(type)) +
                  ") always evaluates to " +
                  (value[id] == Tern::One ? "1" : "0"));
    }
    if (is_output[id] && value[id] != Tern::X) {
      out.add(nl, "drc.const-output", id,
              "primary output '" + display_name(nl, id) + "' is stuck at " +
                  (value[id] == Tern::One ? "1" : "0"));
    }
  }

  for (NetId q : nl.dffs()) {
    const auto fi = nl.fanins(q);
    if (fi.empty()) continue;
    const NetId d = fi[0];
    if (value[d] != Tern::X) {
      out.add(nl, "drc.dff-const", q,
              "flip-flop '" + display_name(nl, q) + "' loads the constant " +
                  (value[d] == Tern::One ? "1" : "0") + " every cycle");
    } else if (d == q) {
      out.add(nl, "drc.dff-const", q,
              "flip-flop '" + display_name(nl, q) +
                  "' feeds itself; state can never change");
    }
  }
}

void rule_duplicate_gate(const Netlist& nl, Collector& out) {
  // Key = cell type + sorted fanins (all recognized cells are symmetric in
  // their inputs except none — BUF/NOT are unary, so sorting is harmless).
  std::unordered_map<std::string, NetId> seen;
  for (NetId id = 0; id < nl.net_count(); ++id) {
    const GateType type = nl.type(id);
    if (!netlist::is_combinational_cell(type) || nl.fanins(id).empty()) continue;
    std::vector<NetId> key_fanins(nl.fanins(id).begin(), nl.fanins(id).end());
    std::sort(key_fanins.begin(), key_fanins.end());
    std::string key = std::to_string(static_cast<int>(type));
    for (NetId f : key_fanins) key += "," + std::to_string(f);
    auto [it, inserted] = seen.emplace(std::move(key), id);
    if (!inserted) {
      out.add(nl, "drc.duplicate-gate", id,
              "gate '" + display_name(nl, id) + "' duplicates '" +
                  display_name(nl, it->second) + "' (same cell, same fanins)");
    }
  }
}

void rule_near_unexcitable(const Netlist& nl, const std::vector<double>& prob,
                           const std::vector<Tern>& value, const LintConfig& config,
                           Collector& out) {
  for (NetId id = 0; id < nl.net_count(); ++id) {
    if (!netlist::is_combinational_cell(nl.type(id))) continue;
    if (value[id] != Tern::X) continue;  // statically constant: a DRC finding
    const double rare = std::min(prob[id], 1.0 - prob[id]);
    if (rare > config.unexcitable_prob) continue;
    const bool rare_value = prob[id] < 0.5;
    std::ostringstream msg;
    msg << "net '" << display_name(nl, id) << "' reaches " << (rare_value ? 1 : 0)
        << " with static probability " << rare
        << " (near-unexcitable; classic trigger node)";
    out.add(nl, "trojan.near-unexcitable", id, msg.str());
  }
}

void rule_shadow_cone(const Netlist& nl, const ScoapValues& scoap,
                      const std::vector<Tern>& value, const LintConfig& config,
                      Collector& out) {
  if (nl.outputs().empty()) return;
  const std::vector<bool> live = reaches_output(nl);
  for (NetId id = 0; id < nl.net_count(); ++id) {
    if (!live[id]) continue;  // dead cones are DRC findings, not shadow cones
    if (!netlist::is_combinational_cell(nl.type(id))) continue;
    if (value[id] != Tern::X) continue;
    if (scoap.co[id] < config.shadow_co) continue;
    std::ostringstream msg;
    msg << "net '" << display_name(nl, id) << "' has SCOAP observability "
        << (scoap.co[id] >= ScoapValues::kInfinity ? std::string("infinite")
                                                   : std::to_string(scoap.co[id]))
        << " (>= " << config.shadow_co
        << "): effects here are almost invisible at the outputs";
    out.add(nl, "trojan.shadow-cone", id, msg.str());
  }
}

/// Collapses the single-use AND cone rooted at `root` and returns its support
/// (distinct leaf nets). Internal nodes must be AND gates consumed only by the
/// cone; BUF/NOT wrappers are folded into their source net, so a trigger built
/// from inverted literals still counts one leaf per source.
std::size_t and_cone_support(const Netlist& nl, NetId root,
                             std::vector<NetId>& scratch) {
  scratch.clear();
  std::vector<NetId> stack{root};
  while (!stack.empty()) {
    const NetId id = stack.back();
    stack.pop_back();
    for (NetId f : nl.fanins(id)) {
      NetId leaf = f;
      // Fold literal wrappers: the leaf identity is the driven source net.
      while ((nl.type(leaf) == GateType::Not || nl.type(leaf) == GateType::Buf) &&
             nl.fanouts(leaf).size() == 1)
        leaf = nl.fanins(leaf)[0];
      if (nl.type(leaf) == GateType::And && nl.fanouts(leaf).size() == 1) {
        stack.push_back(leaf);
      } else {
        scratch.push_back(leaf);
      }
    }
  }
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
  return scratch.size();
}

void rule_trigger_shape(const Netlist& nl, const std::vector<double>& prob,
                        const LintConfig& config, Collector& out) {
  std::vector<NetId> support;
  for (NetId id = 0; id < nl.net_count(); ++id) {
    const GateType type = nl.type(id);
    if (type != GateType::And && type != GateType::Nand) continue;
    // Roots are cone tops: skip internal nodes of a larger single-use cone.
    if (nl.fanouts(id).size() == 1) {
      const NetId consumer = nl.fanouts(id)[0];
      if (nl.type(consumer) == GateType::And) continue;
    }
    if (nl.fanouts(id).size() > config.trigger_max_fanout) continue;
    const double activation = type == GateType::And ? prob[id] : 1.0 - prob[id];
    if (activation > config.trigger_prob) continue;
    const std::size_t width = and_cone_support(nl, id, support);
    if (width < config.trigger_width) continue;
    std::ostringstream msg;
    msg << "net '" << display_name(nl, id) << "' tops a " << width
        << "-input AND cone with activation probability " << activation
        << " and fanout " << nl.fanouts(id).size()
        << " (trigger-shaped structure)";
    out.add(nl, "trojan.trigger-shape", id, msg.str());
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::span<const LintRule> lint_rules() { return kRules; }

const LintRule* find_lint_rule(std::string_view id) {
  const std::size_t idx = rule_index(id);
  return idx < std::size(kRules) ? &kRules[idx] : nullptr;
}

bool LintConfig::rule_enabled(std::string_view id) const {
  return std::find(disabled.begin(), disabled.end(), id) == disabled.end();
}

std::size_t LintReport::count(LintSeverity severity) const {
  std::size_t n = 0;
  for (const auto& d : diagnostics) n += d.severity == severity ? 1 : 0;
  return n;
}

bool LintReport::rejects(LintSeverity fail_on) const {
  for (const auto& d : diagnostics)
    if (d.severity >= fail_on) return true;
  return false;
}

std::string LintReport::summary() const {
  const std::size_t e = errors(), w = warnings(), i = infos();
  if (e + w + i == 0) return "clean";
  std::string out;
  auto bucket = [&out](std::size_t n, const char* noun) {
    if (n == 0) return;
    if (!out.empty()) out += ", ";
    out += std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
  };
  bucket(e, "error");
  bucket(w, "warning");
  bucket(i, "info");
  return out;
}

std::string LintReport::to_json() const {
  std::ostringstream out;
  out << "{\"clean\":" << (diagnostics.empty() ? "true" : "false")
      << ",\"errors\":" << errors() << ",\"warnings\":" << warnings()
      << ",\"infos\":" << infos() << ",\"suppressed\":" << suppressed
      << ",\"diagnostics\":[";
  bool first = true;
  for (const auto& d : diagnostics) {
    if (!first) out << ",";
    first = false;
    out << "{\"rule\":\"" << json_escape(d.rule) << "\",\"severity\":\""
        << to_string(d.severity) << "\",";
    if (d.net == netlist::kNoNet)
      out << "\"net\":null,";
    else
      out << "\"net\":" << d.net << ",";
    out << "\"net_name\":\"" << json_escape(d.net_name) << "\",\"line\":" << d.line
        << ",\"message\":\"" << json_escape(d.message) << "\"}";
  }
  out << "]}";
  return out.str();
}

Linter::Linter(LintConfig config) : config_(std::move(config)) {}

LintReport Linter::lint(const Netlist& nl) const {
  Collector out(config_);

  rule_no_outputs(nl, out);
  rule_unused_and_dangling(nl, out);
  rule_dead_cone(nl, out);

  const std::vector<Tern> value = propagate_constants(nl);
  rule_constants(nl, value, out);
  rule_duplicate_gate(nl, out);

  const bool trojan_tier = out.enabled("trojan.near-unexcitable") ||
                           out.enabled("trojan.shadow-cone") ||
                           out.enabled("trojan.trigger-shape");
  if (trojan_tier && nl.net_count() > 0) {
    const std::vector<double> prob = propagate_probability(nl);
    rule_near_unexcitable(nl, prob, value, config_, out);
    rule_trigger_shape(nl, prob, config_, out);
    if (out.enabled("trojan.shadow-cone")) {
      // SCOAP needs a combinational view; the full-scan transform preserves
      // net ids, so scan-view measures anchor directly to original nets.
      const netlist::ScanView scan = netlist::make_full_scan(nl);
      const ScoapValues scoap = compute_scoap(scan.comb);
      rule_shadow_cone(nl, scoap, value, config_, out);
    }
  }

  return out.finish();
}

void append_parse_diagnostics(LintReport& report,
                              std::span<const netlist::ParseDiagnostic> parse,
                              const LintConfig& config) {
  for (const auto& p : parse) {
    const LintRule* rule = find_lint_rule(p.code);
    if (rule == nullptr) rule = find_lint_rule("parse.syntax");
    if (!config.rule_enabled(rule->id)) continue;
    LintDiagnostic d;
    d.rule = rule->id;
    d.severity = rule->severity;
    d.net = netlist::kNoNet;  // the source never built; only the name is known
    d.net_name = p.net;
    d.line = p.line;
    d.message = p.message;
    report.diagnostics.push_back(std::move(d));
  }
}

}  // namespace deterrent::analysis

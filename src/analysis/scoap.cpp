#include "analysis/scoap.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace deterrent::analysis {

using netlist::GateType;
using netlist::NetId;

namespace {

constexpr std::uint32_t kInf = ScoapValues::kInfinity;

std::uint32_t sat_add(std::uint32_t a, std::uint32_t b) {
  return std::min<std::uint64_t>(kInf, std::uint64_t{a} + b);
}

}  // namespace

ScoapValues compute_scoap(const netlist::Netlist& nl) {
  if (nl.is_sequential())
    throw Error("compute_scoap requires a combinational netlist (use make_full_scan)");

  ScoapValues v;
  v.cc0.assign(nl.net_count(), kInf);
  v.cc1.assign(nl.net_count(), kInf);
  v.co.assign(nl.net_count(), kInf);

  // Forward pass: controllability in topological order.
  for (const NetId id : nl.topo_order()) {
    const auto fanins = nl.fanins(id);
    switch (nl.type(id)) {
      case GateType::Input:
        v.cc0[id] = 1;
        v.cc1[id] = 1;
        break;
      case GateType::Const0:
        v.cc0[id] = 0;
        v.cc1[id] = kInf;  // cannot be driven to 1
        break;
      case GateType::Const1:
        v.cc0[id] = kInf;
        v.cc1[id] = 0;
        break;
      case GateType::Buf:
        v.cc0[id] = sat_add(v.cc0[fanins[0]], 1);
        v.cc1[id] = sat_add(v.cc1[fanins[0]], 1);
        break;
      case GateType::Not:
        v.cc0[id] = sat_add(v.cc1[fanins[0]], 1);
        v.cc1[id] = sat_add(v.cc0[fanins[0]], 1);
        break;
      case GateType::And:
      case GateType::Nand: {
        std::uint32_t all_ones = 0;   // cost of driving every input to 1
        std::uint32_t min_zero = kInf;  // cheapest single input at 0
        for (const NetId f : fanins) {
          all_ones = sat_add(all_ones, v.cc1[f]);
          min_zero = std::min(min_zero, v.cc0[f]);
        }
        const std::uint32_t out1 = sat_add(all_ones, 1);
        const std::uint32_t out0 = sat_add(min_zero, 1);
        if (nl.type(id) == GateType::And) {
          v.cc1[id] = out1;
          v.cc0[id] = out0;
        } else {
          v.cc1[id] = out0;
          v.cc0[id] = out1;
        }
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        std::uint32_t all_zeros = 0;
        std::uint32_t min_one = kInf;
        for (const NetId f : fanins) {
          all_zeros = sat_add(all_zeros, v.cc0[f]);
          min_one = std::min(min_one, v.cc1[f]);
        }
        const std::uint32_t out0 = sat_add(all_zeros, 1);
        const std::uint32_t out1 = sat_add(min_one, 1);
        if (nl.type(id) == GateType::Or) {
          v.cc0[id] = out0;
          v.cc1[id] = out1;
        } else {
          v.cc0[id] = out1;
          v.cc1[id] = out0;
        }
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        // Fold pairwise: cost(parity == b) over the fanin prefix.
        std::uint32_t even = v.cc0[fanins[0]];  // parity 0 so far
        std::uint32_t odd = v.cc1[fanins[0]];
        for (std::size_t k = 1; k < fanins.size(); ++k) {
          const std::uint32_t f0 = v.cc0[fanins[k]];
          const std::uint32_t f1 = v.cc1[fanins[k]];
          const std::uint32_t new_even =
              std::min(sat_add(even, f0), sat_add(odd, f1));
          const std::uint32_t new_odd =
              std::min(sat_add(even, f1), sat_add(odd, f0));
          even = new_even;
          odd = new_odd;
        }
        const std::uint32_t out0 = sat_add(even, 1);
        const std::uint32_t out1 = sat_add(odd, 1);
        if (nl.type(id) == GateType::Xor) {
          v.cc0[id] = out0;
          v.cc1[id] = out1;
        } else {
          v.cc0[id] = out1;
          v.cc1[id] = out0;
        }
        break;
      }
      case GateType::Dff:
        DETERRENT_ASSERT(false, "unreachable: sequential rejected above");
    }
  }

  // Backward pass: observability in reverse topological order.
  for (const NetId out : nl.outputs()) v.co[out] = 0;
  const auto order = nl.topo_order();
  for (std::size_t idx = order.size(); idx-- > 0;) {
    const NetId id = order[idx];
    if (v.co[id] == kInf) continue;  // unobservable net; nothing to propagate
    const auto fanins = nl.fanins(id);
    switch (nl.type(id)) {
      case GateType::Input:
      case GateType::Const0:
      case GateType::Const1:
        break;
      case GateType::Buf:
      case GateType::Not:
        v.co[fanins[0]] = std::min(v.co[fanins[0]], sat_add(v.co[id], 1));
        break;
      case GateType::And:
      case GateType::Nand: {
        // To observe input i, hold every other input at its non-controlling 1.
        for (std::size_t i = 0; i < fanins.size(); ++i) {
          std::uint32_t side = 0;
          for (std::size_t j = 0; j < fanins.size(); ++j)
            if (j != i) side = sat_add(side, v.cc1[fanins[j]]);
          const std::uint32_t cost = sat_add(sat_add(v.co[id], side), 1);
          v.co[fanins[i]] = std::min(v.co[fanins[i]], cost);
        }
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        for (std::size_t i = 0; i < fanins.size(); ++i) {
          std::uint32_t side = 0;
          for (std::size_t j = 0; j < fanins.size(); ++j)
            if (j != i) side = sat_add(side, v.cc0[fanins[j]]);
          const std::uint32_t cost = sat_add(sat_add(v.co[id], side), 1);
          v.co[fanins[i]] = std::min(v.co[fanins[i]], cost);
        }
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        // Any fixed assignment of the other inputs propagates; use the
        // cheapest per-input controllability.
        for (std::size_t i = 0; i < fanins.size(); ++i) {
          std::uint32_t side = 0;
          for (std::size_t j = 0; j < fanins.size(); ++j)
            if (j != i)
              side = sat_add(side, std::min(v.cc0[fanins[j]], v.cc1[fanins[j]]));
          const std::uint32_t cost = sat_add(sat_add(v.co[id], side), 1);
          v.co[fanins[i]] = std::min(v.co[fanins[i]], cost);
        }
        break;
      }
      case GateType::Dff:
        DETERRENT_ASSERT(false, "unreachable");
    }
  }
  return v;
}

}  // namespace deterrent::analysis

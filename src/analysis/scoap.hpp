#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace deterrent::analysis {

/// SCOAP (Sandia Controllability/Observability Analysis Program) testability
/// measures. CC0/CC1 estimate the effort to drive a net to 0/1; CO estimates
/// the effort to observe it at an output. Values saturate at kInfinity.
///
/// The TGRL baseline (§1.3, [11]) rewards patterns by a combination of
/// rareness and these testability measures; DETERRENT itself does not need
/// them, which is one of the architectural differences §5 highlights.
struct ScoapValues {
  static constexpr std::uint32_t kInfinity = 0x3fffffffu;

  std::vector<std::uint32_t> cc0;  ///< combinational 0-controllability per net
  std::vector<std::uint32_t> cc1;  ///< combinational 1-controllability per net
  std::vector<std::uint32_t> co;   ///< combinational observability per net

  /// Controllability of a specific value.
  std::uint32_t cc(netlist::NetId net, bool value) const {
    return value ? cc1[net] : cc0[net];
  }
};

/// Computes SCOAP measures on a combinational netlist (scan view for
/// sequential designs). DFF-free requirement mirrors the simulator's.
ScoapValues compute_scoap(const netlist::Netlist& netlist);

}  // namespace deterrent::analysis

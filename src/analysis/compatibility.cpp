#include "analysis/compatibility.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "sat/encoder.hpp"
#include "sat/portfolio.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace deterrent::analysis {

CompatibilityMatrix::CompatibilityMatrix(std::size_t n) {
  rows_.assign(n, util::BitVec(n));
}

CompatibilityMatrix CompatibilityMatrix::from_rows(std::vector<util::BitVec> rows) {
  for (const auto& row : rows)
    if (row.size() != rows.size())
      throw Error("CompatibilityMatrix::from_rows: matrix is not square");
  for (std::uint32_t i = 0; i < rows.size(); ++i)
    for (const std::uint32_t j : rows[i].to_indices())
      if (!rows[j].test(i))
        throw Error("CompatibilityMatrix::from_rows: rows are not symmetric at (" +
                    std::to_string(i) + ", " + std::to_string(j) + ")");
  CompatibilityMatrix m;
  m.rows_ = std::move(rows);
  return m;
}

CompatibilityMatrix::CompatibilityMatrix(const CompatibilityMatrix& other)
    : rows_(other.rows_),
      cached_edge_count_(other.cached_edge_count_.load(std::memory_order_relaxed)),
      edge_count_valid_(other.edge_count_valid_.load(std::memory_order_relaxed)) {}

CompatibilityMatrix::CompatibilityMatrix(CompatibilityMatrix&& other) noexcept
    : rows_(std::move(other.rows_)),
      cached_edge_count_(other.cached_edge_count_.load(std::memory_order_relaxed)),
      edge_count_valid_(other.edge_count_valid_.load(std::memory_order_relaxed)) {}

CompatibilityMatrix& CompatibilityMatrix::operator=(const CompatibilityMatrix& other) {
  rows_ = other.rows_;
  cached_edge_count_.store(other.cached_edge_count_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  edge_count_valid_.store(other.edge_count_valid_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  return *this;
}

CompatibilityMatrix& CompatibilityMatrix::operator=(CompatibilityMatrix&& other) noexcept {
  rows_ = std::move(other.rows_);
  cached_edge_count_.store(other.cached_edge_count_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  edge_count_valid_.store(other.edge_count_valid_.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  return *this;
}

void CompatibilityMatrix::set(std::uint32_t i, std::uint32_t j, bool value) {
  rows_[i].set(j, value);
  rows_[j].set(i, value);
  edge_count_valid_.store(false, std::memory_order_release);
}

std::size_t CompatibilityMatrix::edge_count() const {
  if (!edge_count_valid_.load(std::memory_order_acquire)) {
    std::size_t total = 0;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      total += rows_[i].count();
      if (rows_[i].test(i)) --total;  // don't count the diagonal
    }
    // Racing first readers store the same value, so relaxed + release is
    // enough for later acquire loads to see a published count.
    cached_edge_count_.store(total / 2, std::memory_order_relaxed);
    edge_count_valid_.store(true, std::memory_order_release);
  }
  return cached_edge_count_.load(std::memory_order_relaxed);
}

double CompatibilityMatrix::average_degree() const {
  if (rows_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) / static_cast<double>(rows_.size());
}

void CompatibilityMatrix::merge_or(const CompatibilityMatrix& other) {
  if (other.size() != size())
    throw Error("CompatibilityMatrix::merge_or: size mismatch (" +
                std::to_string(other.size()) + " vs " + std::to_string(size()) + ")");
  for (std::size_t i = 0; i < rows_.size(); ++i) rows_[i] |= other.rows_[i];
  edge_count_valid_.store(false, std::memory_order_release);
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> compatibility_shard_ranges(
    std::size_t n, std::size_t shard_count) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  if (n == 0) {
    ranges.emplace_back(0, 0);
    return ranges;
  }
  const std::size_t shards = std::min(std::max<std::size_t>(1, shard_count), n);
  std::size_t remaining_pairs = n * (n + 1) / 2;
  std::uint32_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t remaining_shards = shards - s;
    std::uint32_t end;
    if (remaining_shards == 1) {
      end = static_cast<std::uint32_t>(n);
    } else {
      // Greedy balance: take rows until this shard holds its share of the
      // remaining pairs, but always leave one row per later shard.
      const std::size_t target =
          (remaining_pairs + remaining_shards - 1) / remaining_shards;
      const auto max_end = static_cast<std::uint32_t>(n - (remaining_shards - 1));
      end = begin;
      std::size_t got = 0;
      while (end < max_end && got < target) got += n - end++;
    }
    if (end == begin) end = begin + 1;
    for (std::uint32_t i = begin; i < end; ++i) remaining_pairs -= n - i;
    ranges.emplace_back(begin, end);
    begin = end;
  }
  return ranges;
}

CompatibilityMatrix build_compatibility_shard(
    const netlist::Netlist& netlist, std::span<const RareNet> rare_nets,
    const CompatibilityBuildConfig& config, std::span<const util::BitVec> signatures,
    std::uint32_t row_begin, std::uint32_t row_end, CompatibilityBuildStats* stats) {
  const std::size_t n = rare_nets.size();
  DETERRENT_ASSERT(signatures.size() == n && row_begin <= row_end && row_end <= n,
                   "build_compatibility_shard: bad row range or signature table");
  CompatibilityMatrix matrix(n);
  CompatibilityBuildStats local;

  // Phase 1 over the owned triangle slice.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> unresolved;
  for (std::uint32_t i = row_begin; i < row_end; ++i) {
    for (std::uint32_t j = i; j < n; ++j) {
      ++local.pair_count;
      if (i == j ? signatures[i].any() : signatures[i].intersects(signatures[j])) {
        matrix.set(i, j);
        ++local.sim_resolved;
      } else {
        unresolved.emplace_back(i, j);
      }
    }
  }

  // Phase 2: one private oracle per shard; learnt clauses amortize across the
  // shard's pair list. Sat/Unsat verdicts match the monolithic build's.
  if (!unresolved.empty()) {
    sat::OracleConfig ocfg;
    ocfg.inprocess = config.inprocess;
    std::vector<netlist::NetId> query_nets;
    query_nets.reserve(rare_nets.size());
    for (const auto& rn : rare_nets) query_nets.push_back(rn.net);
    sat::NetlistOracle oracle(netlist, ocfg);
    oracle.declare_query_nets(query_nets);
    for (const auto& [i, j] : unresolved) {
      sat::Constraint constraints[2] = {
          {rare_nets[i].net, rare_nets[i].rare_value},
          {rare_nets[j].net, rare_nets[j].rare_value},
      };
      const std::size_t arity = (i == j) ? 1 : 2;
      const auto result =
          oracle.try_satisfiable({constraints, arity}, config.sat_conflict_budget);
      if (!result.has_value()) {
        ++local.timeout_pairs;
      } else if (*result) {
        ++local.sat_sat;
        matrix.set(i, j);
      } else {
        ++local.sat_unsat;
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return matrix;
}

std::size_t finalize_compatibility(CompatibilityMatrix& matrix) {
  std::size_t cleared = 0;
  const std::size_t n = matrix.size();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!matrix.singleton_satisfiable(i)) {
      ++cleared;
      for (std::uint32_t j = 0; j < n; ++j) matrix.set(i, j, false);
    }
  }
  return cleared;
}

std::vector<util::BitVec> rare_activation_signatures(
    const netlist::Netlist& netlist, std::span<const RareNet> rare_nets,
    std::size_t pattern_count, util::Rng& rng, util::ThreadPool* pool) {
  std::vector<util::BitVec> signatures(rare_nets.size(), util::BitVec(pattern_count));
  if (pattern_count == 0) return signatures;
  // Draw the stimulus before any other early-out so the caller's RNG stream
  // advances identically in degenerate cases (fixed-seed reproducibility).
  const auto patterns =
      sim::PatternSet::random(netlist.inputs().size(), pattern_count, rng);
  if (rare_nets.empty()) return signatures;

  // Signature words map 1:1 to pattern blocks, so every worker writes a
  // disjoint word range — no reduction step, and the result is independent of
  // the stripe schedule.
  const sim::Engine engine(netlist);
  auto run_range = [&](std::size_t begin, std::size_t end) {
    engine.sweep_blocks(
        patterns, begin, end,
        [&](std::size_t first, std::size_t n, const sim::EvalBuffer& buf) {
          for (std::size_t r = 0; r < rare_nets.size(); ++r) {
            const auto& rn = rare_nets[r];
            const auto values = buf.net(rn.net);
            for (std::size_t w = 0; w < n; ++w) {
              std::uint64_t at_rare = rn.rare_value ? values[w] : ~values[w];
              at_rare &= patterns.valid_mask(first + w);
              signatures[r].set_word(first + w, at_rare);
            }
          }
          return true;
        });
  };

  const std::size_t n_blocks = patterns.block_count();
  if (pool == nullptr || pool->thread_count() <= 1 || n_blocks < 4) {
    run_range(0, n_blocks);
  } else {
    pool->parallel_chunks(n_blocks, [&](std::size_t /*thread*/, std::size_t begin,
                                        std::size_t end) { run_range(begin, end); });
  }
  return signatures;
}

CompatibilityMatrix build_compatibility(const netlist::Netlist& netlist,
                                        std::span<const RareNet> rare_nets,
                                        const CompatibilityBuildConfig& config,
                                        util::Rng& rng, util::ThreadPool* pool,
                                        CompatibilityBuildStats* stats,
                                        std::vector<util::BitVec>* signatures_out) {
  util::Stopwatch watch;
  const std::size_t n = rare_nets.size();
  CompatibilityMatrix matrix(n);
  CompatibilityBuildStats local_stats;
  local_stats.pair_count = n * (n + 1) / 2;

  // Phase 1 — simulation pre-filter: co-occurrence is a satisfiability witness.
  auto signatures =
      rare_activation_signatures(netlist, rare_nets, config.sim_patterns, rng, pool);

  if (config.shard_count >= 2 && n > 0) {
    // Sharded build: deterministic row-range shards, each a full-width
    // partial matrix, merged by ORing rows. The shard plan depends only on
    // (n, shard_count), so the result is independent of the pool size and
    // identical to the monolithic matrix.
    const auto ranges = compatibility_shard_ranges(n, config.shard_count);
    std::vector<CompatibilityMatrix> partials(ranges.size());
    std::vector<CompatibilityBuildStats> shard_stats(ranges.size());
    auto build_one = [&](std::size_t s) {
      partials[s] =
          build_compatibility_shard(netlist, rare_nets, config, signatures,
                                    ranges[s].first, ranges[s].second, &shard_stats[s]);
    };
    if (pool != nullptr && pool->thread_count() > 1 && ranges.size() > 1) {
      pool->parallel_for(ranges.size(), build_one);
    } else {
      for (std::size_t s = 0; s < ranges.size(); ++s) build_one(s);
    }
    for (std::size_t s = 0; s < ranges.size(); ++s) {
      matrix.merge_or(partials[s]);
      local_stats.sim_resolved += shard_stats[s].sim_resolved;
      local_stats.sat_sat += shard_stats[s].sat_sat;
      local_stats.sat_unsat += shard_stats[s].sat_unsat;
      local_stats.timeout_pairs += shard_stats[s].timeout_pairs;
    }
    if (signatures_out != nullptr) *signatures_out = std::move(signatures);
    local_stats.unsat_singletons = finalize_compatibility(matrix);
    local_stats.build_seconds = watch.elapsed_seconds();
    if (stats != nullptr) *stats = local_stats;
    return matrix;
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>> unresolved;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i; j < n; ++j) {
      if (i == j ? signatures[i].any() : signatures[i].intersects(signatures[j])) {
        matrix.set(i, j);
        ++local_stats.sim_resolved;
      } else {
        unresolved.emplace_back(i, j);
      }
    }
  }
  if (signatures_out != nullptr) *signatures_out = std::move(signatures);

  // Phase 2 — SAT decides the pairs simulation never witnessed.
  std::atomic<std::size_t> sat_sat{0};
  std::atomic<std::size_t> sat_unsat{0};
  std::atomic<std::size_t> timeouts{0};
  std::mutex matrix_mutex;

  if (config.portfolio_threads >= 2) {
    // Clause-sharing portfolio: all clones hold the same encoding and race
    // down the shared pair list; learnt clauses flow between them at query
    // boundaries. Sat/Unsat answers are identical to the single-solver path.
    sat::PortfolioConfig pcfg;
    pcfg.solvers = config.portfolio_threads;
    pcfg.share_lbd_cap = config.share_lbd_cap;
    pcfg.inprocess = config.inprocess;
    sat::Portfolio portfolio(
        pcfg, [&](sat::Solver& solver, std::size_t /*clone*/) {
          sat::encode_netlist(netlist, solver);
          for (const netlist::NetId in : netlist.inputs()) solver.set_frozen(in);
          for (const auto& rn : rare_nets) solver.set_frozen(rn.net);
        });
    std::vector<sat::Portfolio::Query> queries(unresolved.size());
    for (std::size_t k = 0; k < unresolved.size(); ++k) {
      const auto [i, j] = unresolved[k];
      auto& q = queries[k];
      q.conflict_budget = config.sat_conflict_budget;
      q.assumptions.push_back(
          sat::mk_lit(rare_nets[i].net, !rare_nets[i].rare_value));
      if (j != i)
        q.assumptions.push_back(
            sat::mk_lit(rare_nets[j].net, !rare_nets[j].rare_value));
    }
    const auto results = portfolio.solve_batch(queries, pool);
    for (std::size_t k = 0; k < unresolved.size(); ++k) {
      const auto [i, j] = unresolved[k];
      switch (results[k]) {
        case sat::Solver::Result::Sat:
          ++sat_sat;
          matrix.set(i, j);
          break;
        case sat::Solver::Result::Unsat: ++sat_unsat; break;
        case sat::Solver::Result::Unknown: ++timeouts; break;
      }
    }
  } else {
    // One oracle per worker; learnt clauses amortize across that worker's
    // share. Bit-reproducible for a fixed seed regardless of thread count.
    sat::OracleConfig ocfg;
    ocfg.inprocess = config.inprocess;
    std::vector<netlist::NetId> query_nets;
    query_nets.reserve(rare_nets.size());
    for (const auto& rn : rare_nets) query_nets.push_back(rn.net);

    auto solve_range = [&](std::size_t begin, std::size_t end) {
      sat::NetlistOracle oracle(netlist, ocfg);
      oracle.declare_query_nets(query_nets);
      std::vector<std::pair<std::uint32_t, std::uint32_t>> found;
      for (std::size_t k = begin; k < end; ++k) {
        const auto [i, j] = unresolved[k];
        sat::Constraint constraints[2] = {
            {rare_nets[i].net, rare_nets[i].rare_value},
            {rare_nets[j].net, rare_nets[j].rare_value},
        };
        const std::size_t arity = (i == j) ? 1 : 2;
        const auto result = oracle.try_satisfiable({constraints, arity},
                                                   config.sat_conflict_budget);
        if (!result.has_value()) {
          ++timeouts;
        } else if (*result) {
          ++sat_sat;
          found.emplace_back(i, j);
        } else {
          ++sat_unsat;
        }
      }
      if (!found.empty()) {
        std::lock_guard lock(matrix_mutex);
        for (const auto& [i, j] : found) matrix.set(i, j);
      }
    };

    if (pool != nullptr && pool->thread_count() > 1 && unresolved.size() > 64) {
      pool->parallel_chunks(unresolved.size(),
                            [&](std::size_t /*thread*/, std::size_t begin,
                                std::size_t end) { solve_range(begin, end); });
    } else {
      solve_range(0, unresolved.size());
    }
  }
  local_stats.sat_sat = sat_sat.load();
  local_stats.sat_unsat = sat_unsat.load();
  local_stats.timeout_pairs = timeouts.load();

  // A rare net whose singleton is unsatisfiable can never participate in a
  // trigger: clear its whole row so masks and cliques ignore it.
  local_stats.unsat_singletons = finalize_compatibility(matrix);

  local_stats.build_seconds = watch.elapsed_seconds();
  if (stats != nullptr) *stats = local_stats;
  return matrix;
}

}  // namespace deterrent::analysis

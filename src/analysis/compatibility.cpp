#include "analysis/compatibility.hpp"

#include <atomic>
#include <mutex>

#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace deterrent::analysis {

CompatibilityMatrix::CompatibilityMatrix(std::size_t n) {
  rows_.assign(n, util::BitVec(n));
}

void CompatibilityMatrix::set(std::uint32_t i, std::uint32_t j, bool value) {
  rows_[i].set(j, value);
  rows_[j].set(i, value);
}

std::size_t CompatibilityMatrix::edge_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    total += rows_[i].count();
    if (rows_[i].test(i)) --total;  // don't count the diagonal
  }
  return total / 2;
}

double CompatibilityMatrix::average_degree() const {
  if (rows_.empty()) return 0.0;
  return 2.0 * static_cast<double>(edge_count()) / static_cast<double>(rows_.size());
}

std::vector<util::BitVec> rare_activation_signatures(
    const netlist::Netlist& netlist, std::span<const RareNet> rare_nets,
    std::size_t pattern_count, util::Rng& rng) {
  std::vector<util::BitVec> signatures(rare_nets.size(), util::BitVec(pattern_count));
  sim::Simulator simulator(netlist);
  const auto patterns =
      sim::PatternSet::random(netlist.inputs().size(), pattern_count, rng);
  simulator.simulate(patterns, [&](std::size_t block, std::uint64_t valid_mask,
                                   std::span<const std::uint64_t> values) {
    for (std::size_t r = 0; r < rare_nets.size(); ++r) {
      const auto& rn = rare_nets[r];
      std::uint64_t at_rare = values[rn.net];
      if (!rn.rare_value) at_rare = ~at_rare;
      at_rare &= valid_mask;
      if (at_rare == 0) continue;
      for (std::uint64_t bits = at_rare; bits;) {
        const int lane = std::countr_zero(bits);
        bits &= bits - 1;
        signatures[r].set(block * 64 + static_cast<std::size_t>(lane));
      }
    }
  });
  return signatures;
}

CompatibilityMatrix build_compatibility(const netlist::Netlist& netlist,
                                        std::span<const RareNet> rare_nets,
                                        const CompatibilityBuildConfig& config,
                                        util::Rng& rng, util::ThreadPool* pool,
                                        CompatibilityBuildStats* stats) {
  util::Stopwatch watch;
  const std::size_t n = rare_nets.size();
  CompatibilityMatrix matrix(n);
  CompatibilityBuildStats local_stats;
  local_stats.pair_count = n * (n + 1) / 2;

  // Phase 1 — simulation pre-filter: co-occurrence is a satisfiability witness.
  const auto signatures =
      rare_activation_signatures(netlist, rare_nets, config.sim_patterns, rng);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> unresolved;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i; j < n; ++j) {
      if (i == j ? signatures[i].any() : signatures[i].intersects(signatures[j])) {
        matrix.set(i, j);
        ++local_stats.sim_resolved;
      } else {
        unresolved.emplace_back(i, j);
      }
    }
  }

  // Phase 2 — SAT decides the pairs simulation never witnessed. One oracle
  // per worker; learnt clauses amortize across that worker's share.
  std::atomic<std::size_t> sat_sat{0};
  std::atomic<std::size_t> sat_unsat{0};
  std::atomic<std::size_t> timeouts{0};
  std::mutex matrix_mutex;

  auto solve_range = [&](std::size_t begin, std::size_t end) {
    sat::NetlistOracle oracle(netlist);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> found;
    for (std::size_t k = begin; k < end; ++k) {
      const auto [i, j] = unresolved[k];
      sat::Constraint constraints[2] = {
          {rare_nets[i].net, rare_nets[i].rare_value},
          {rare_nets[j].net, rare_nets[j].rare_value},
      };
      const std::size_t arity = (i == j) ? 1 : 2;
      const auto result = oracle.try_satisfiable({constraints, arity},
                                                 config.sat_conflict_budget);
      if (!result.has_value()) {
        ++timeouts;
      } else if (*result) {
        ++sat_sat;
        found.emplace_back(i, j);
      } else {
        ++sat_unsat;
      }
    }
    if (!found.empty()) {
      std::lock_guard lock(matrix_mutex);
      for (const auto& [i, j] : found) matrix.set(i, j);
    }
  };

  if (pool != nullptr && pool->thread_count() > 1 && unresolved.size() > 64) {
    pool->parallel_chunks(unresolved.size(),
                          [&](std::size_t /*thread*/, std::size_t begin,
                              std::size_t end) { solve_range(begin, end); });
  } else {
    solve_range(0, unresolved.size());
  }
  local_stats.sat_sat = sat_sat.load();
  local_stats.sat_unsat = sat_unsat.load();
  local_stats.timeout_pairs = timeouts.load();

  // A rare net whose singleton is unsatisfiable can never participate in a
  // trigger: clear its whole row so masks and cliques ignore it.
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!matrix.singleton_satisfiable(i)) {
      ++local_stats.unsat_singletons;
      for (std::uint32_t j = 0; j < n; ++j) matrix.set(i, j, false);
    }
  }

  local_stats.build_seconds = watch.elapsed_seconds();
  if (stats != nullptr) *stats = local_stats;
  return matrix;
}

}  // namespace deterrent::analysis

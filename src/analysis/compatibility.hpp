#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "analysis/rare_nets.hpp"
#include "netlist/netlist.hpp"
#include "sat/oracle.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::analysis {

/// Symmetric pairwise-compatibility relation over the rare nets: bit (i, j)
/// is set when one input pattern can drive rare nets i and j to their rare
/// values simultaneously. The diagonal bit records whether the singleton is
/// satisfiable at all.
///
/// This is the "compatibility info" of the paper's offline phase (Figure 4),
/// used both for action masking in the RL agent (§3.3) and as the sampling
/// graph of the TARMAC baseline.
class CompatibilityMatrix {
 public:
  CompatibilityMatrix() = default;
  explicit CompatibilityMatrix(std::size_t n);

  /// Reconstructs a matrix from serialized rows (CompatibilityArtifact load
  /// path). Rows must be square and symmetric; violations throw
  /// deterrent::Error, since they indicate a corrupt or hand-edited artifact.
  static CompatibilityMatrix from_rows(std::vector<util::BitVec> rows);

  // Copy/move are explicit because the edge-count cache is atomic (atomics
  // are neither copyable nor movable).
  CompatibilityMatrix(const CompatibilityMatrix& other);
  CompatibilityMatrix(CompatibilityMatrix&& other) noexcept;
  CompatibilityMatrix& operator=(const CompatibilityMatrix& other);
  CompatibilityMatrix& operator=(CompatibilityMatrix&& other) noexcept;

  std::size_t size() const { return rows_.size(); }

  bool compatible(std::uint32_t i, std::uint32_t j) const {
    return rows_[i].test(j);
  }
  bool singleton_satisfiable(std::uint32_t i) const { return rows_[i].test(i); }

  /// Row i as a bitset over rare-net indices (includes the diagonal bit).
  const util::BitVec& row(std::uint32_t i) const { return rows_[i]; }

  void set(std::uint32_t i, std::uint32_t j, bool value = true);

  /// Number of compatible unordered pairs (i < j). The O(n²/64) popcount is
  /// computed once and cached. Concurrent const reads are safe (racing
  /// first callers recompute the same value into an atomic); set()
  /// invalidates and, like all writes, must not race with readers.
  std::size_t edge_count() const;

  /// Mean degree (compatible partners per rare net), excluding the diagonal.
  double average_degree() const;

  /// ORs `other`'s rows into this matrix (sizes must match) — the shard
  /// merge. Symmetry is preserved because every partial is itself symmetric.
  void merge_or(const CompatibilityMatrix& other);

 private:
  std::vector<util::BitVec> rows_;
  mutable std::atomic<std::size_t> cached_edge_count_{0};
  mutable std::atomic<bool> edge_count_valid_{false};
};

struct CompatibilityBuildConfig {
  /// Random patterns for the co-occurrence pre-filter. A pair witnessed
  /// together in simulation is proven compatible without any SAT call.
  std::size_t sim_patterns = 1 << 14;
  /// Conflict budget per SAT pair query; exhausted budget conservatively
  /// reports "incompatible" (counted in timeout_pairs).
  std::int64_t sat_conflict_budget = 50000;
  /// Run solver inprocessing (probing / SCC substitution / subsumption /
  /// bounded variable elimination) on the phase-2 solvers. The frozen set is
  /// the rare nets plus primary inputs, so answers are unchanged.
  bool inprocess = true;
  /// Phase-2 portfolio width: >= 2 routes pair queries through a
  /// clause-sharing sat::Portfolio of that many clones; 0/1 keeps the
  /// original one-oracle-per-worker path, which is bit-reproducible.
  std::size_t portfolio_threads = 0;
  /// Max LBD of learnt clauses exchanged between portfolio clones.
  std::uint32_t share_lbd_cap = 6;
  /// >= 2 splits the pairwise build into that many deterministic row-range
  /// shards, each producing a full-width partial matrix merged by ORing rows
  /// (see compatibility_shard_ranges / build_compatibility_shard). The merged
  /// matrix — and every deterministic stats field — is identical to the
  /// monolithic build's; shards run across the pool, one SAT oracle each.
  /// 0/1 keeps the unsharded paths.
  std::size_t shard_count = 0;
};

struct CompatibilityBuildStats {
  std::size_t pair_count = 0;          ///< unordered pairs examined
  std::size_t sim_resolved = 0;        ///< proven compatible by co-occurrence
  std::size_t sat_sat = 0;             ///< proven compatible by SAT
  std::size_t sat_unsat = 0;           ///< proven incompatible by SAT
  std::size_t timeout_pairs = 0;       ///< budget exhausted (treated incompatible)
  std::size_t unsat_singletons = 0;    ///< rare nets with no satisfying pattern
  double build_seconds = 0.0;
};

/// Builds the pairwise matrix. Parallelized across `pool` with one SAT oracle
/// per worker, mirroring the paper's 64-process offline computation (§3.3).
/// Deterministic for fixed rng seed regardless of thread count.
///
/// `signatures_out`, when non-null, receives the phase-1 activation
/// signatures (one per rare net, pattern-indexed) so downstream consumers —
/// notably the RL environment's simulation-witness shortcut — can reuse the
/// simulation evidence without re-simulating.
CompatibilityMatrix build_compatibility(const netlist::Netlist& netlist,
                                        std::span<const RareNet> rare_nets,
                                        const CompatibilityBuildConfig& config,
                                        util::Rng& rng, util::ThreadPool* pool = nullptr,
                                        CompatibilityBuildStats* stats = nullptr,
                                        std::vector<util::BitVec>* signatures_out = nullptr);

/// Deterministic shard plan for a sharded build: contiguous row ranges
/// [begin, end) covering [0, n), balanced by owned pair count (shard k owns
/// every pair (i, j) with begin <= i < end, j >= i — a triangular workload,
/// so early rows are worth more than late ones). Depends only on
/// (n, shard_count): the plan is stable across machines and thread counts,
/// which is what lets remote workers pick up chunks from a serialized
/// manifest. shard_count is clamped to [1, n] (n == 0 yields one empty
/// range so the merge loop still runs).
std::vector<std::pair<std::uint32_t, std::uint32_t>> compatibility_shard_ranges(
    std::size_t n, std::size_t shard_count);

/// Builds one shard's partial matrix: phase-1 signature intersection and
/// phase-2 SAT for every owned pair (row_begin <= i < row_end, j >= i),
/// single-threaded with one private SAT oracle. The partial is full-width
/// (n × n) and symmetric; ORing all shards' partials reproduces the
/// monolithic build's matrix bit-for-bit. `stats` receives this shard's
/// counters only (pair_count = owned pairs; no singleton finalize — that is
/// a whole-matrix pass, see finalize_compatibility).
CompatibilityMatrix build_compatibility_shard(
    const netlist::Netlist& netlist, std::span<const RareNet> rare_nets,
    const CompatibilityBuildConfig& config, std::span<const util::BitVec> signatures,
    std::uint32_t row_begin, std::uint32_t row_end,
    CompatibilityBuildStats* stats = nullptr);

/// Post-merge pass shared by the monolithic and sharded builds: a rare net
/// whose singleton is unsatisfiable can never participate in a trigger, so
/// its whole row is cleared. Returns the number of rows cleared
/// (stats.unsat_singletons).
std::size_t finalize_compatibility(CompatibilityMatrix& matrix);

/// Per-rare-net activation signatures under `pattern_count` random patterns:
/// bit p of signature i is set when pattern p drives rare net i to its rare
/// value. Shared by the matrix builder and by MERO-style counting. Blocks are
/// striped across `pool` when given (signature words are per-block, so the
/// result is deterministic for a fixed rng seed regardless of thread count).
std::vector<util::BitVec> rare_activation_signatures(
    const netlist::Netlist& netlist, std::span<const RareNet> rare_nets,
    std::size_t pattern_count, util::Rng& rng, util::ThreadPool* pool = nullptr);

}  // namespace deterrent::analysis

#include "analysis/rare_nets.hpp"

namespace deterrent::analysis {

using netlist::GateType;
using netlist::NetId;

std::vector<RareNet> find_rare_nets(const netlist::Netlist& netlist,
                                    const sim::SignalStats& stats,
                                    const RareNetConfig& config) {
  std::vector<RareNet> rare;
  for (NetId id = 0; id < netlist.net_count(); ++id) {
    if (config.exclude_inputs && netlist.type(id) == GateType::Input) continue;
    if (netlist.type(id) == GateType::Const0 || netlist.type(id) == GateType::Const1)
      continue;
    const double p1 = stats.prob_one(id);
    // The rare value is the one the net (almost) never takes.
    double p_rare;
    bool rare_value;
    if (p1 <= 0.5) {
      p_rare = p1;
      rare_value = true;
    } else {
      p_rare = 1.0 - p1;
      rare_value = false;
    }
    if (p_rare >= config.threshold) continue;
    if (config.exclude_untoggled && p_rare == 0.0) continue;
    rare.push_back({id, rare_value, p_rare});
  }
  return rare;
}

std::vector<RareNet> find_rare_nets(const netlist::Netlist& netlist,
                                    const RareNetConfig& config, util::Rng& rng,
                                    util::ThreadPool* pool) {
  const auto stats = sim::estimate_signal_stats(netlist, config.sim_patterns, rng, pool);
  return find_rare_nets(netlist, stats, config);
}

}  // namespace deterrent::analysis

#pragma once

#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace deterrent::netlist {
struct ParseDiagnostic;  // netlist/bench_io.hpp
}

namespace deterrent::analysis {

/// Severity of a lint finding, ordered so `severity >= config.fail_on`
/// decides rejection.
enum class LintSeverity : std::uint8_t { Info = 0, Warning = 1, Error = 2 };

const char* to_string(LintSeverity severity);

/// One finding of the static analyzer: which rule fired, how bad it is, and
/// the gate/net it anchors to (provenance for reports and triage).
struct LintDiagnostic {
  std::string rule;  ///< rule id, e.g. "drc.cycle" or "trojan.trigger-shape"
  LintSeverity severity = LintSeverity::Warning;
  /// Offending net in the analyzed netlist; kNoNet for design-level findings
  /// (and for parse-tier findings on sources that never built).
  netlist::NetId net = netlist::kNoNet;
  std::string net_name;   ///< resolved name ("" when the net is unnamed/absent)
  std::size_t line = 0;   ///< 1-based source line for parse-tier findings; 0 otherwise
  std::string message;    ///< human-readable explanation

  bool operator==(const LintDiagnostic&) const = default;
};

/// Structured result of a lint run. Diagnostics are ordered by rule-registry
/// order, then by net id, so reports are deterministic.
struct LintReport {
  std::vector<LintDiagnostic> diagnostics;
  /// Findings dropped because a rule exceeded LintConfig::max_per_rule (the
  /// per-rule counts still include them via the rule's summary diagnostic).
  std::size_t suppressed = 0;

  std::size_t count(LintSeverity severity) const;
  std::size_t errors() const { return count(LintSeverity::Error); }
  std::size_t warnings() const { return count(LintSeverity::Warning); }
  std::size_t infos() const { return count(LintSeverity::Info); }

  /// True when any finding is at or above `fail_on` — the design is rejected
  /// by the front door.
  bool rejects(LintSeverity fail_on) const;

  /// "2 errors, 1 warning, 3 infos" (omitting zero buckets; "clean" when empty).
  std::string summary() const;

  /// Machine-readable report (schema in docs/lint.md): a single JSON object
  /// with counts, a clean flag, and one entry per diagnostic.
  std::string to_json() const;
};

/// Rule enable/threshold knobs. Part of core::DeterrentConfig, so lint runs
/// are reproducible from a session's stored config.
struct LintConfig {
  /// Master switch for the pipeline's stage 0. The CLI `lint` subcommand
  /// ignores it (an explicit lint is always run).
  bool enabled = true;
  /// Findings at or above this severity reject the design: the pipeline
  /// stage returns StageStatus::Rejected, the CLI exits non-zero.
  LintSeverity fail_on = LintSeverity::Error;
  /// Rule ids disabled entirely (both tiers; unknown ids are ignored).
  std::vector<std::string> disabled;

  // ---- trojan-screen thresholds -------------------------------------------
  /// trojan.near-unexcitable: static probability of the net's less likely
  /// value at or below this fires. 2^-24 keeps ordinary decode logic (a
  /// 16-bit comparator sits at 2^-16) out while catching conjunctions over
  /// already-biased internal nets.
  double unexcitable_prob = 1.0 / 16777216.0;  // 2^-24
  /// trojan.shadow-cone: SCOAP combinational observability at or above this
  /// fires (ScoapValues::kInfinity means provably unobservable).
  std::uint32_t shadow_co = 5000;
  /// trojan.trigger-shape: collapsed AND-tree support width at or least this …
  unsigned trigger_width = 8;
  /// … with static output probability at or below this …
  double trigger_prob = 1.0 / 4096.0;
  /// … feeding at most this many consumers (triggers hide behind one payload).
  std::size_t trigger_max_fanout = 2;

  // ---- reporting ----------------------------------------------------------
  /// Diagnostics reported per rule before the tail is folded into one
  /// summary line (0 = unlimited). Keeps reports on pathological designs
  /// bounded.
  std::size_t max_per_rule = 16;

  bool rule_enabled(std::string_view id) const;
};

/// Catalog entry for one registered rule (docs/lint.md mirrors this table).
struct LintRule {
  const char* id;
  LintSeverity severity;
  const char* tier;  ///< "parse", "drc", or "trojan"
  const char* summary;
};

/// The full rule catalog, registry order (parse tier first). Parse-tier rules
/// fire from netlist::read_bench_checked diagnostics, not from Linter::lint.
std::span<const LintRule> lint_rules();

/// Looks a rule up by id; nullptr when unknown.
const LintRule* find_lint_rule(std::string_view id);

/// Static netlist analyzer: rule-registry DRC plus a structural trojan
/// screen, the pipeline's stage 0 ("front door") for untrusted designs.
///
/// All checks are static — topological constant/probability propagation,
/// reachability, SCOAP testability — so linting costs O(nets + edges) and
/// never burns simulation or SAT budget. Sequential netlists are analyzed
/// directly (DFF outputs are probability-0.5 sources); the SCOAP-based rules
/// run on the full-scan view, whose net ids are identical by construction.
class Linter {
 public:
  explicit Linter(LintConfig config = {});

  const LintConfig& config() const { return config_; }

  /// Runs every enabled netlist-tier rule. Deterministic: equal netlists and
  /// configs produce byte-equal reports.
  LintReport lint(const netlist::Netlist& netlist) const;

 private:
  LintConfig config_;
};

/// Merges parse-tier diagnostics (from netlist::read_bench_checked) into
/// `report`, mapping each netlist::ParseDiagnostic code onto the registered
/// parse/drc rule of the same id (unknown codes fall back to parse.syntax).
/// Respects config.disabled; parse-tier findings are never truncated.
void append_parse_diagnostics(LintReport& report,
                              std::span<const netlist::ParseDiagnostic> parse,
                              const LintConfig& config);

}  // namespace deterrent::analysis

#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "sim/probability.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::analysis {

/// A net whose logic value is strongly biased: it takes `rare_value` with
/// probability `probability` <= the rareness threshold. These are the nets an
/// adversary taps to build a stealthy trigger (§1.1) and the action space of
/// the DETERRENT agent (§3.1).
struct RareNet {
  netlist::NetId net = 0;
  bool rare_value = false;
  double probability = 0.0;  ///< estimated P(net == rare_value)

  bool operator==(const RareNet&) const = default;
};

struct RareNetConfig {
  /// Nets with P(rare value) < threshold are classified rare. The paper's
  /// default is 0.1; Figure 7 sweeps 0.10–0.14.
  double threshold = 0.1;
  /// Random patterns for probability estimation (step ❶ in Figure 4).
  std::size_t sim_patterns = 1 << 16;
  /// Drop nets that never toggled in simulation (structurally constant nets
  /// produce unsatisfiable singleton triggers and pollute the action space).
  bool exclude_untoggled = true;
  /// Primary inputs are uniform by construction and never meaningful triggers.
  bool exclude_inputs = true;
};

/// Classifies rare nets from precomputed signal statistics.
std::vector<RareNet> find_rare_nets(const netlist::Netlist& netlist,
                                    const sim::SignalStats& stats,
                                    const RareNetConfig& config = {});

/// Convenience: estimate probabilities with `config.sim_patterns` random
/// patterns, then classify. Deterministic for a fixed rng seed.
std::vector<RareNet> find_rare_nets(const netlist::Netlist& netlist,
                                    const RareNetConfig& config, util::Rng& rng,
                                    util::ThreadPool* pool = nullptr);

}  // namespace deterrent::analysis

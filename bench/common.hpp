#pragma once

// Shared scaffolding for the table/figure reproduction harnesses.
//
// Every harness honours DETERRENT_BENCH_MODE={quick,default,full}: the mode
// scales training budgets and reference pattern counts. The paper's
// qualitative shape (who wins, by roughly what factor, where curves cross)
// holds in every mode; higher modes tighten the quantitative match.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/compatibility.hpp"
#include "analysis/rare_nets.hpp"
#include "bench_gen/library.hpp"
#include "core/deterrent.hpp"
#include "sat/oracle.hpp"
#include "trojan/coverage.hpp"
#include "trojan/trojan.hpp"
#include "util/env.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace deterrent::bench {

struct Scale {
  util::BenchMode mode;
  std::size_t det_updates;        ///< PPO updates for DETERRENT training
  std::size_t det_episodes;      ///< episodes per update
  std::size_t det_k;             ///< default k when no per-design ratio applies
  std::size_t ref_patterns;      ///< reference test length (TGRL/TARMAC/random)
  std::size_t trojans;           ///< HTs per benchmark
  std::size_t loss_updates;      ///< updates for loss-trend figures
  std::size_t tgrl_rounds;       ///< TGRL-like mutation rounds
};

inline Scale scale_from_env() {
  switch (util::bench_mode_from_env()) {
    case util::BenchMode::Quick:
      return {util::BenchMode::Quick, 12, 16, 32, 200, 60, 20, 3};
    case util::BenchMode::Full:
      return {util::BenchMode::Full, 150, 32, 128, 4000, 100, 150, 3};
    case util::BenchMode::Default:
    default:
      return {util::BenchMode::Default, 45, 24, 64, 1200, 100, 60, 3};
  }
}

/// k (number of extracted patterns) per design, scaled from the paper's own
/// per-benchmark tuning: Table 2's DETERRENT test length as a fraction of the
/// reference (TGRL) length — e.g. c2670 needs only 8 patterns while c6288
/// uses ~65% of the reference count. k is a hyperparameter in the paper
/// (§3.1); we inherit their ratios.
inline std::size_t det_k_for(const std::string& design, std::size_t ref_patterns,
                             std::size_t fallback) {
  struct Ratio {
    const char* name;
    double ratio;
  };
  static constexpr Ratio kRatios[] = {
      {"c2670_like", 0.002},  {"c5315_like", 0.20}, {"c6288_like", 0.65},
      {"c7552_like", 0.63},   {"s13207_like", 0.99}, {"s15850_like", 0.65},
      {"s35932_like", 0.002}, {"mips16_like", 0.052},
  };
  for (const auto& r : kRatios) {
    if (design == r.name) {
      const auto k = static_cast<std::size_t>(r.ratio * static_cast<double>(ref_patterns));
      return std::max<std::size_t>(8, k);
    }
  }
  return fallback;
}

inline void print_header(const char* exhibit, const Scale& scale) {
  std::printf("==================================================================\n");
  std::printf("%s\n", exhibit);
  std::printf("mode=%s (set DETERRENT_BENCH_MODE=quick|default|full to rescale)\n",
              util::to_string(scale.mode));
  std::printf("==================================================================\n\n");
}

/// A benchmark prepared for evaluation: scan view, rare nets, compatibility
/// matrix, and a SAT-validated Trojan population.
struct PreparedBenchmark {
  bench_gen::Benchmark bench;
  std::unique_ptr<core::Deterrent> det;  // holds rare nets + matrix
  std::vector<trojan::Trojan> trojans;

  const netlist::Netlist& comb() const { return bench.scan.comb; }
};

inline PreparedBenchmark prepare_benchmark(const std::string& name, const Scale& scale,
                                           unsigned trigger_width = 4,
                                           double threshold = 0.1,
                                           std::uint64_t seed = 1) {
  PreparedBenchmark prep;
  prep.bench = bench_gen::load_benchmark(name);

  core::DeterrentConfig cfg;
  cfg.rare.threshold = threshold;
  cfg.updates = scale.det_updates;
  cfg.k_patterns = det_k_for(name, scale.ref_patterns, scale.det_k);
  cfg.ppo.episodes_per_update = scale.det_episodes;
  // End-of-episode reward: the fast mode the paper uses at scale (§3.2) —
  // ~10-50× fewer SAT calls per episode buys far more exploration per second.
  cfg.env.reward_mode = core::RewardMode::EndOfEpisode;
  // Vectorized environments, as the paper does for MIPS (§4.1).
  cfg.ppo.n_workers = 8;
  cfg.seed = seed;
  prep.det = std::make_unique<core::Deterrent>(prep.bench.scan.comb, cfg);
  prep.det->prepare();

  sat::NetlistOracle oracle(prep.bench.scan.comb);
  util::Rng rng(seed ^ 0x7f4a7c15);
  trojan::TrojanSampleConfig tcfg;
  tcfg.width = trigger_width;
  tcfg.count = scale.trojans;
  prep.trojans = trojan::sample_trojans(prep.bench.scan.comb, prep.det->rare_nets(),
                                        tcfg, oracle, rng);
  return prep;
}

inline double coverage_percent(const PreparedBenchmark& prep,
                               const sim::PatternSet& patterns) {
  return trojan::evaluate_coverage(prep.comb(), prep.trojans, patterns)
      .coverage_percent();
}

inline std::string fmt(double v, int precision = 1) {
  return util::Table::num(v, precision);
}

}  // namespace deterrent::bench

// Figure 2 — Combinations of reward and masking methods for MIPS:
// {all-steps, end-of-episode} × {masking, no-masking}, reporting training
// rate (episodes/minute) and max # compatible rare nets.
//
// Paper's conclusion: masking + all-steps reward maximizes the number of
// compatible rare nets; end-of-episode maximizes rate. We reproduce all four
// bars on the mips16_like substrate.
#include "common.hpp"

using namespace deterrent;
using namespace deterrent::bench;

namespace {

struct ComboResult {
  double episodes_per_min = 0.0;
  std::size_t max_compatible = 0;
};

ComboResult run_combo(const netlist::Netlist& comb,
                      std::span<const analysis::RareNet> rare,
                      const analysis::CompatibilityMatrix& matrix,
                      core::RewardMode reward, core::MaskMode mask,
                      double budget_seconds, std::size_t episodes_per_update) {
  core::EnvConfig env_cfg;
  env_cfg.reward_mode = reward;
  env_cfg.mask_mode = mask;
  // Unmasked agents waste steps on incompatible actions; cap episodes the
  // same way for all combos so rates are comparable.
  env_cfg.max_steps = 96;

  core::DistinctSetPool pool;
  auto factory = [&](std::size_t) -> std::unique_ptr<rl::Env> {
    return std::make_unique<core::CompatibleSetEnv>(comb, rare, matrix, env_cfg, &pool);
  };
  rl::PpoConfig ppo = core::DeterrentConfig::boosted_ppo_defaults();
  ppo.episodes_per_update = episodes_per_update;
  rl::PpoTrainer trainer(factory, ppo, /*seed=*/5);

  util::Stopwatch watch;
  while (watch.elapsed_seconds() < budget_seconds) trainer.update();
  const double minutes = watch.elapsed_seconds() / 60.0;
  return {static_cast<double>(trainer.total_episodes()) / minutes,
          pool.max_set_size()};
}

}  // namespace

int main() {
  const Scale scale = scale_from_env();
  print_header("Figure 2 — reward x masking combinations (mips16_like)", scale);

  const double budget_seconds =
      scale.mode == util::BenchMode::Quick ? 8.0
      : scale.mode == util::BenchMode::Full ? 90.0
                                            : 30.0;

  auto bench = bench_gen::load_benchmark("mips16_like");
  const auto& comb = bench.scan.comb;
  util::Rng rng(1);
  util::ThreadPool pool;
  const auto rare = analysis::find_rare_nets(comb, {}, rng, &pool);
  const auto matrix = analysis::build_compatibility(comb, rare, {}, rng, &pool);
  std::printf("offline: %zu rare nets; budget %.0fs per combo\n\n", rare.size(),
              budget_seconds);

  struct Combo {
    const char* label;
    core::RewardMode reward;
    core::MaskMode mask;
  };
  const Combo combos[4] = {
      {"All rew + NM", core::RewardMode::AllSteps, core::MaskMode::None},
      {"All rew + M", core::RewardMode::AllSteps, core::MaskMode::Pairwise},
      {"Eoe rew + NM", core::RewardMode::EndOfEpisode, core::MaskMode::None},
      {"Eoe rew + M", core::RewardMode::EndOfEpisode, core::MaskMode::Pairwise},
  };

  util::Table table({"Combination", "Rate (episodes/min)", "Max # compatible rare nets"});
  for (const auto& combo : combos) {
    const ComboResult r = run_combo(comb, rare, matrix, combo.reward, combo.mask,
                                    budget_seconds, scale.det_episodes);
    table.add_row({combo.label, fmt(r.episodes_per_min, 1),
                   std::to_string(r.max_compatible)});
  }
  table.print();

  std::printf(
      "\npaper (Fig. 2): masked combos dominate unmasked on compatible-set "
      "size;\nend-of-episode combos dominate on episodes/min; 'All rew + M' "
      "gives the largest sets.\n");
  return 0;
}

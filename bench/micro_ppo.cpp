// Micro-benchmark: PPO training throughput, scalar collector vs vectorized
// rollout lanes — the updates/sec currency behind Table 1's steps/min.
//
// Runs the same training workload (compatible-set MDP on a full-scan
// benchmark cone) through a single-env baseline (rollout_lanes = 1, the
// legacy per-sample trainer) and the batched collector at each requested
// lane count, timing update() throughput. The vectorized trainer is
// contractually bit-identical to the baseline, so the bench doubles as a
// differential check: every configuration folds its per-update statistics
// and final network parameters into an episode checksum, and any
// lane-count-dependent divergence fails the run ("checksums_identical" in
// the JSON, exit code 1).
//
//   ./micro_ppo [output.json] [lanes]      (default: BENCH_sim.json 1,8,64)
//
// `lanes` is a comma-separated lane-count list; the token "native" means the
// hardware concurrency. Appends a "ppo" block into the output JSON if it
// already exists (micro_sim/micro_sat write the rest of the file); re-runs
// replace a previous "ppo" block instead of duplicating it.
// DETERRENT_BENCH_MODE=quick shrinks the workload for CI smoke runs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/compatibility.hpp"
#include "bench_gen/library.hpp"
#include "core/compatible_set_env.hpp"
#include "core/deterrent.hpp"
#include "rl/ppo.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace deterrent;

namespace {

struct EnvFixture {
  bench_gen::Benchmark bench;
  std::vector<analysis::RareNet> rare;
  analysis::CompatibilityMatrix matrix;
  std::vector<util::BitVec> signatures;

  explicit EnvFixture(const std::string& name)
      : bench(bench_gen::load_benchmark(name)) {
    util::Rng rng(1);
    util::ThreadPool pool;
    rare = analysis::find_rare_nets(bench.scan.comb, {}, rng, &pool);
    // Reuse the phase-1 activation signatures as the env's witness table —
    // the same wiring core::Pipeline uses, so the bench sees the production
    // witness hit rate (a pairwise-compatible pair proven by simulation
    // shares a pattern with the joint-witness sweep).
    matrix = analysis::build_compatibility(bench.scan.comb, rare, {}, rng, &pool,
                                           nullptr, &signatures);
  }
};

void fold(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;  // FNV-1a step
}

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  static_assert(sizeof(u) == sizeof(v));
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

std::uint64_t bits(float v) {
  std::uint32_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

struct LaneResult {
  std::size_t lanes = 1;
  double updates_per_sec = 0.0;
  double env_steps_per_sec = 0.0;
  double speedup_vs_single = 0.0;
  std::uint64_t checksum = 0;  // episodes + params digest; must match across lanes
};

/// Trains a fresh seed-7 trainer at the given lane count: one untimed warmup
/// update, then `updates` timed ones. The checksum digests every per-update
/// statistic and the final network parameters — bit-identical collection and
/// optimization across lane counts is the pass condition.
LaneResult run_lanes(const EnvFixture& fx, const core::EnvConfig& env_cfg,
                     rl::PpoConfig ppo, std::size_t lanes, std::size_t updates) {
  LaneResult result;
  result.lanes = lanes;
  ppo.rollout_lanes = lanes;

  core::DistinctSetPool pool;
  const auto factory = [&](std::size_t) -> std::unique_ptr<rl::Env> {
    return std::make_unique<core::CompatibleSetEnv>(fx.bench.scan.comb, fx.rare,
                                                    fx.matrix, env_cfg, &pool);
  };
  const auto vector_factory = [&](std::size_t n) -> std::unique_ptr<rl::VectorEnv> {
    return std::make_unique<core::CompatibleSetVectorEnv>(
        fx.bench.scan.comb, fx.rare, fx.matrix, env_cfg, &pool, n);
  };
  rl::PpoTrainer trainer(factory, ppo, 7, vector_factory);

  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto digest_update = [&](const rl::PpoUpdateStats& stats) {
    fold(h, stats.steps);
    fold(h, stats.episodes);
    fold(h, bits(stats.mean_episode_reward));
    fold(h, bits(stats.total_loss));
  };

  digest_update(trainer.update());  // warmup: touches every lazy lane oracle

  util::Stopwatch watch;
  const std::uint64_t steps_before = trainer.total_steps();
  for (std::size_t u = 0; u < updates; ++u) digest_update(trainer.update());
  const double seconds = watch.elapsed_seconds();

  for (const float p : trainer.policy().flat_params()) fold(h, bits(p));
  for (const float p : trainer.value().flat_params()) fold(h, bits(p));
  result.checksum = h;
  result.updates_per_sec = static_cast<double>(updates) / seconds;
  result.env_steps_per_sec =
      static_cast<double>(trainer.total_steps() - steps_before) / seconds;
  return result;
}

std::vector<std::size_t> parse_lanes(const std::string& csv) {
  std::vector<std::size_t> lanes;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token == "native") {
      const unsigned hw = std::thread::hardware_concurrency();
      lanes.push_back(hw == 0 ? 8 : hw);
    } else if (!token.empty()) {
      lanes.push_back(static_cast<std::size_t>(std::stoul(token)));
    }
  }
  return lanes;
}

/// Reads `path` if present and returns everything before a previous "ppo"
/// block (or before the closing root brace), ready to have the block appended
/// after a comma. Empty return means "write a fresh root object".
std::string json_prefix(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream ss;
  ss << in.rdbuf();
  std::string content = ss.str();
  const std::string marker = "\n  \"ppo\":";
  if (const auto pos = content.find(marker); pos != std::string::npos) {
    content.erase(pos);
    while (!content.empty() && (content.back() == ',' || content.back() == ' '))
      content.pop_back();
    return content;
  }
  const auto brace = content.rfind('}');
  if (brace == std::string::npos) return {};
  content.erase(brace);
  while (!content.empty() &&
         (content.back() == '\n' || content.back() == ' ' || content.back() == '\t'))
    content.pop_back();
  return content;
}

int run_micro_ppo(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sim.json";
  const util::BenchMode mode = util::bench_mode_from_env();
  const std::string bench_name =
      mode == util::BenchMode::Quick ? "c2670_like" : "mips16_like";
  const std::size_t updates = mode == util::BenchMode::Quick ? 2 : 5;

  std::vector<std::size_t> lanes =
      argc > 2 ? parse_lanes(argv[2])
               : std::vector<std::size_t>{1, 8, 64};
  if (lanes.empty() || lanes.front() != 1) lanes.insert(lanes.begin(), 1);

  const EnvFixture fx(bench_name);
  if (fx.rare.size() < 4) {
    std::fprintf(stderr, "micro_ppo: too few rare nets in %s\n", bench_name.c_str());
    return 1;
  }

  core::EnvConfig env_cfg;
  env_cfg.reward_mode = core::RewardMode::EndOfEpisode;
  env_cfg.witness_signatures = &fx.signatures;
  env_cfg.max_steps = std::min<std::size_t>(fx.rare.size(), 64);

  rl::PpoConfig ppo = core::DeterrentConfig::boosted_ppo_defaults();
  ppo.episodes_per_update =
      std::max<std::size_t>(mode == util::BenchMode::Quick ? 32 : 64,
                            *std::max_element(lanes.begin(), lanes.end()));

  std::printf(
      "micro_ppo: %s, %zu gates, %zu rare nets, %zu episodes/update, "
      "%zu timed updates (%s mode)\n",
      bench_name.c_str(), fx.bench.scan.comb.gate_count(), fx.rare.size(),
      ppo.episodes_per_update, updates, util::to_string(mode));

  std::vector<LaneResult> results;
  for (const std::size_t n : lanes)
    results.push_back(run_lanes(fx, env_cfg, ppo, n, updates));

  bool checksums_identical = true;
  for (auto& r : results) {
    r.speedup_vs_single = r.updates_per_sec / results[0].updates_per_sec;
    checksums_identical = checksums_identical && r.checksum == results[0].checksum;
  }

  std::printf("\n%8s %14s %16s %10s %18s\n", "lanes", "updates/s", "env_steps/s",
              "speedup", "episode_checksum");
  for (const auto& r : results)
    std::printf("%8zu %14.3f %16.1f %9.2fx %18llx\n", r.lanes, r.updates_per_sec,
                r.env_steps_per_sec, r.speedup_vs_single,
                static_cast<unsigned long long>(r.checksum));
  std::printf("episode checksums lane-count-invariant: %s\n",
              checksums_identical ? "yes" : "NO — DIFFERENTIAL MISMATCH");

  const std::string prefix = json_prefix(out_path);
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_ppo: cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  if (prefix.empty()) {
    std::fprintf(f, "{");
  } else {
    std::fprintf(f, "%s,", prefix.c_str());
  }
  std::fprintf(f, "\n  \"ppo\": {\n");
  std::fprintf(f, "    \"benchmark\": \"%s\",\n", bench_name.c_str());
  std::fprintf(f, "    \"mode\": \"%s\",\n", util::to_string(mode));
  std::fprintf(f, "    \"gates\": %zu,\n", fx.bench.scan.comb.gate_count());
  std::fprintf(f, "    \"rare_nets\": %zu,\n", fx.rare.size());
  std::fprintf(f, "    \"episodes_per_update\": %zu,\n", ppo.episodes_per_update);
  std::fprintf(f, "    \"updates_timed\": %zu,\n", updates);
  std::fprintf(f, "    \"checksums_identical\": %s,\n",
               checksums_identical ? "true" : "false");
  std::fprintf(f, "    \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "      {\"lanes\": %zu, \"updates_per_sec\": %.6e, "
                 "\"env_steps_per_sec\": %.6e, \"speedup_vs_single\": %.4f, "
                 "\"episode_checksum\": \"%llx\"}%s\n",
                 r.lanes, r.updates_per_sec, r.env_steps_per_sec,
                 r.speedup_vs_single,
                 static_cast<unsigned long long>(r.checksum),
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return checksums_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_micro_ppo(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_ppo: %s\n", e.what());
    return 1;
  }
}

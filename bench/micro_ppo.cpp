// Micro-benchmarks: PPO environment stepping and update rates on the
// compatible-set MDP — the steps/min currency of Table 1 and Figure 2.
#include <benchmark/benchmark.h>

#include "analysis/compatibility.hpp"
#include "bench_gen/library.hpp"
#include "core/compatible_set_env.hpp"
#include "core/deterrent.hpp"
#include "util/thread_pool.hpp"

using namespace deterrent;

namespace {

struct EnvFixture {
  bench_gen::Benchmark bench;
  std::vector<analysis::RareNet> rare;
  analysis::CompatibilityMatrix matrix;

  explicit EnvFixture(const std::string& name)
      : bench(bench_gen::load_benchmark(name)) {
    util::Rng rng(1);
    util::ThreadPool pool;
    rare = analysis::find_rare_nets(bench.scan.comb, {}, rng, &pool);
    matrix = analysis::build_compatibility(bench.scan.comb, rare, {}, rng, &pool);
  }
};

void BM_EnvEpisode(benchmark::State& state, const std::string& name,
                   core::RewardMode reward) {
  EnvFixture fx(name);
  core::EnvConfig cfg;
  cfg.reward_mode = reward;
  core::CompatibleSetEnv env(fx.bench.scan.comb, fx.rare, fx.matrix, cfg, nullptr);
  util::Rng rng(3);
  std::size_t steps = 0;
  for (auto _ : state) {
    env.reset(rng);
    while (true) {
      const auto& mask = env.action_mask();
      if (mask.none()) break;
      ++steps;
      if (env.step(static_cast<std::uint32_t>(mask.find_first())).done) break;
    }
  }
  state.counters["steps/s"] = benchmark::Counter(static_cast<double>(steps),
                                                 benchmark::Counter::kIsRate);
}

void BM_PpoUpdate(benchmark::State& state, const std::string& name) {
  EnvFixture fx(name);
  core::EnvConfig env_cfg;
  env_cfg.reward_mode = core::RewardMode::EndOfEpisode;
  core::DistinctSetPool pool;
  auto factory = [&](std::size_t) -> std::unique_ptr<rl::Env> {
    return std::make_unique<core::CompatibleSetEnv>(fx.bench.scan.comb, fx.rare,
                                                    fx.matrix, env_cfg, &pool);
  };
  rl::PpoConfig ppo = core::DeterrentConfig::boosted_ppo_defaults();
  ppo.episodes_per_update = 8;
  rl::PpoTrainer trainer(factory, ppo, 7);
  for (auto _ : state) benchmark::DoNotOptimize(trainer.update().steps);
  state.counters["env_steps/s"] = benchmark::Counter(
      static_cast<double>(trainer.total_steps()), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(BM_EnvEpisode, c2670_allsteps, "c2670_like",
                  core::RewardMode::AllSteps)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EnvEpisode, c2670_eoe, "c2670_like",
                  core::RewardMode::EndOfEpisode)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_EnvEpisode, mips16_eoe, "mips16_like",
                  core::RewardMode::EndOfEpisode)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PpoUpdate, c2670_like, "c2670_like")
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();

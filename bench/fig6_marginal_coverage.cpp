// Figure 6 — Trigger coverage vs. number of test patterns, DETERRENT vs TGRL,
// on c2670 and c6288.
//
// Paper: DETERRENT reaches its maximum coverage within a handful of patterns
// (each pattern realizes a large compatible set); TGRL needs thousands. We
// reproduce both curves from the first-activation indices — no re-simulation
// per checkpoint.
#include "analysis/scoap.hpp"
#include "baselines/tgrl_like.hpp"
#include "common.hpp"

using namespace deterrent;
using namespace deterrent::bench;

namespace {

void run_design(const std::string& name, const Scale& scale) {
  std::printf("--- %s ---\n", name.c_str());
  PreparedBenchmark prep = prepare_benchmark(name, scale);
  auto& det = *prep.det;
  const auto& comb = prep.comb();

  det.train();
  const auto det_patterns = det.extract_patterns();

  util::Rng rng(13);
  const auto scoap = analysis::compute_scoap(comb);
  baselines::TgrlLikeConfig tgrl_cfg;
  tgrl_cfg.n_patterns = scale.ref_patterns;
  tgrl_cfg.mutation_rounds = scale.tgrl_rounds;
  const auto tgrl = baselines::run_tgrl_like(comb, det.rare_nets(), scoap, tgrl_cfg, rng);

  const auto cov_det = trojan::evaluate_coverage(comb, prep.trojans, det_patterns);
  const auto cov_tgrl = trojan::evaluate_coverage(comb, prep.trojans, tgrl.patterns);

  util::Table table({"# patterns", "DETERRENT cov (%)", "TGRL cov (%)"});
  const std::size_t max_n =
      std::max(det_patterns.pattern_count(), tgrl.patterns.pattern_count());
  for (std::size_t checkpoint = 1; checkpoint <= max_n; checkpoint *= 2) {
    table.add_row({std::to_string(checkpoint),
                   fmt(cov_det.coverage_percent_at(checkpoint), 1),
                   fmt(cov_tgrl.coverage_percent_at(checkpoint), 1)});
  }
  table.add_row({"all", fmt(cov_det.coverage_percent(), 1),
                 fmt(cov_tgrl.coverage_percent(), 1)});
  table.print();
  std::printf("(DETERRENT emits %zu patterns total; TGRL %zu)\n\n",
              det_patterns.pattern_count(), tgrl.patterns.pattern_count());
}

}  // namespace

int main() {
  const Scale scale = scale_from_env();
  print_header("Figure 6 — coverage vs #patterns (c2670_like, c6288_like)", scale);
  run_design("c2670_like", scale);
  run_design("c6288_like", scale);
  std::printf(
      "paper (Fig. 6): DETERRENT's curve saturates within tens of patterns; "
      "TGRL climbs slowly across\nthousands. Expected shape: at every "
      "checkpoint the DETERRENT column leads, and it plateaus early.\n");
  return 0;
}

// Table 1 — Comparison of training rates for the reward methods on the MIPS
// benchmark: reward at all steps vs. end-of-episode.
//
// Paper's row (MIPS): all-steps reaches 53 compatible rare nets at 108
// steps/min; end-of-episode reaches 50 at 9387 steps/min (86.9× faster, −5.6%
// quality). We train each variant for the same wall-clock budget on the
// mips16_like substrate and report the same three columns.
#include "common.hpp"

using namespace deterrent;
using namespace deterrent::bench;

namespace {

struct RateResult {
  std::size_t max_compatible = 0;
  double steps_per_min = 0.0;
  double episodes_per_min = 0.0;
  std::uint64_t sat_queries = 0;
};

RateResult train_with_mode(const netlist::Netlist& comb,
                           std::span<const analysis::RareNet> rare,
                           const analysis::CompatibilityMatrix& matrix,
                           core::RewardMode mode, double budget_seconds,
                           std::size_t episodes_per_update,
                           std::size_t repair_budget = static_cast<std::size_t>(-1)) {
  core::EnvConfig env_cfg;
  env_cfg.reward_mode = mode;
  env_cfg.mask_mode = core::MaskMode::Pairwise;
  env_cfg.eoe_repair_budget = repair_budget;

  core::DistinctSetPool pool;
  auto factory = [&](std::size_t) -> std::unique_ptr<rl::Env> {
    return std::make_unique<core::CompatibleSetEnv>(comb, rare, matrix, env_cfg, &pool);
  };
  rl::PpoConfig ppo = core::DeterrentConfig::boosted_ppo_defaults();
  ppo.episodes_per_update = episodes_per_update;
  rl::PpoTrainer trainer(factory, ppo, /*seed=*/3);

  util::Stopwatch watch;
  while (watch.elapsed_seconds() < budget_seconds) trainer.update();
  const double minutes = watch.elapsed_seconds() / 60.0;

  RateResult result;
  result.max_compatible = pool.max_set_size();
  result.steps_per_min = static_cast<double>(trainer.total_steps()) / minutes;
  result.episodes_per_min = static_cast<double>(trainer.total_episodes()) / minutes;
  for (const auto& env : trainer.envs())
    result.sat_queries +=
        static_cast<const core::CompatibleSetEnv&>(*env).sat_queries();
  return result;
}

}  // namespace

int main() {
  const Scale scale = scale_from_env();
  print_header(
      "Table 1 — reward at all steps vs end-of-episode (mips16_like)", scale);

  const double budget_seconds =
      scale.mode == util::BenchMode::Quick ? 10.0
      : scale.mode == util::BenchMode::Full ? 120.0
                                            : 40.0;

  auto bench = bench_gen::load_benchmark("mips16_like");
  const auto& comb = bench.scan.comb;
  util::Rng rng(1);
  util::ThreadPool pool;
  analysis::RareNetConfig rare_cfg;
  const auto rare = analysis::find_rare_nets(comb, rare_cfg, rng, &pool);
  analysis::CompatibilityBuildStats cstats;
  const auto matrix = analysis::build_compatibility(comb, rare, {}, rng, &pool, &cstats);
  std::printf("offline: %zu rare nets, %zu compatible pairs in %.1fs\n\n", rare.size(),
              matrix.edge_count(), cstats.build_seconds);
  std::printf("training budget per variant: %.0fs wall clock\n\n", budget_seconds);

  const RateResult all_steps = train_with_mode(
      comb, rare, matrix, core::RewardMode::AllSteps, budget_seconds, scale.det_episodes);
  const RateResult eoe = train_with_mode(comb, rare, matrix,
                                         core::RewardMode::EndOfEpisode, budget_seconds,
                                         scale.det_episodes);
  // Bounded repair: the speed-leaning point of the trade-off (pure prefix
  // truncation + at most 8 retried members per episode).
  const RateResult eoe_bounded =
      train_with_mode(comb, rare, matrix, core::RewardMode::EndOfEpisode,
                      budget_seconds, scale.det_episodes, /*repair_budget=*/8);

  util::Table table({"Method", "Max # compatible rare nets", "Rate (steps/min)",
                     "Rate (eps/min)", "SAT queries"});
  table.add_row({"Reward at all steps", std::to_string(all_steps.max_compatible),
                 fmt(all_steps.steps_per_min, 0), fmt(all_steps.episodes_per_min, 2),
                 std::to_string(all_steps.sat_queries)});
  table.add_row({"End-of-episode reward", std::to_string(eoe.max_compatible),
                 fmt(eoe.steps_per_min, 0), fmt(eoe.episodes_per_min, 2),
                 std::to_string(eoe.sat_queries)});
  table.add_row({"End-of-episode (repair<=8)", std::to_string(eoe_bounded.max_compatible),
                 fmt(eoe_bounded.steps_per_min, 0), fmt(eoe_bounded.episodes_per_min, 2),
                 std::to_string(eoe_bounded.sat_queries)});
  const double quality_delta =
      all_steps.max_compatible == 0
          ? 0.0
          : 100.0 * (static_cast<double>(eoe.max_compatible) -
                     static_cast<double>(all_steps.max_compatible)) /
                static_cast<double>(all_steps.max_compatible);
  table.add_row({"Improvement", fmt(quality_delta, 1) + "%",
                 fmt(eoe.steps_per_min / std::max(1.0, all_steps.steps_per_min), 2) + "x",
                 fmt(eoe.episodes_per_min / std::max(1.0, all_steps.episodes_per_min), 2) + "x",
                 "-"});
  table.print();

  std::printf(
      "\npaper (Table 1): 53 vs 50 compatible nets; 108 vs 9387 steps/min "
      "(86.91x); -5.6%% quality.\nExpected shape: end-of-episode trains 1-2 "
      "orders of magnitude faster at a small quality cost.\n");
  return 0;
}

// Table 2 — Trigger coverage and test length of DETERRENT vs Random, a
// TestMAX-style ATPG baseline, TARMAC, and TGRL on all eight benchmarks,
// evaluated against 100 random four-width SAT-validated Trojans each.
// MERO is included as an extra column (the paper discusses it in §1.3).
//
// Paper's headline: DETERRENT matches or beats every baseline's coverage
// (95.75% avg over the c-series) with ~169× fewer patterns than TARMAC/TGRL.
// Absolute numbers differ on the synthetic substrates (DESIGN.md §2); the
// shape — who wins, and the order-of-magnitude pattern reduction — is the
// reproduction target.
#include "analysis/scoap.hpp"
#include "baselines/atpg_like.hpp"
#include "baselines/mero.hpp"
#include "baselines/tarmac.hpp"
#include "baselines/tgrl_like.hpp"
#include "common.hpp"

using namespace deterrent;
using namespace deterrent::bench;

namespace {

struct Row {
  std::string design;
  std::size_t rare_nets = 0;
  std::size_t gates = 0;
  std::size_t trojans = 0;
  // per technique: {length, coverage}
  std::size_t len_random = 0;
  double cov_random = 0;
  std::size_t len_atpg = 0;
  double cov_atpg = 0;
  std::size_t len_mero = 0;
  double cov_mero = 0;
  std::size_t len_tarmac = 0;
  double cov_tarmac = 0;
  std::size_t len_tgrl = 0;
  double cov_tgrl = 0;
  std::size_t len_det = 0;
  double cov_det = 0;
};

}  // namespace

int main() {
  const Scale scale = scale_from_env();
  print_header("Table 2 — trigger coverage & test length, all techniques", scale);

  const auto names = bench_gen::benchmark_names();
  std::vector<Row> rows;

  for (const auto& name : names) {
    util::Stopwatch bench_watch;
    std::printf("--- %s ---\n", name.c_str());
    PreparedBenchmark prep = prepare_benchmark(name, scale);
    auto& det = *prep.det;
    const auto& comb = prep.comb();

    Row row;
    row.design = name;
    row.rare_nets = det.rare_nets().size();
    row.gates = comb.gate_count();
    row.trojans = prep.trojans.size();

    const std::size_t ref = scale.ref_patterns;
    util::Rng rng(2024);

    // Random simulations at the reference length.
    const auto random_set = sim::PatternSet::random(comb.inputs().size(), ref, rng);
    row.len_random = random_set.pattern_count();
    row.cov_random = coverage_percent(prep, random_set);

    // TestMAX-style ATPG: per-net excitation with fault dropping.
    const auto atpg = baselines::run_atpg_like(comb, det.rare_nets(), rng);
    row.len_atpg = atpg.patterns.pattern_count();
    row.cov_atpg = coverage_percent(prep, atpg.patterns);

    // MERO (extra column).
    baselines::MeroConfig mero_cfg;
    mero_cfg.random_pool = std::min<std::size_t>(2500, ref * 2);
    mero_cfg.n_detect = 5;
    const auto mero = baselines::run_mero(comb, det.rare_nets(), mero_cfg, rng);
    row.len_mero = mero.patterns.pattern_count();
    row.cov_mero = coverage_percent(prep, mero.patterns);

    // TARMAC at the reference length (SAT effort bounded on huge rare sets).
    baselines::TarmacConfig tarmac_cfg;
    tarmac_cfg.n_patterns = ref;
    tarmac_cfg.max_candidate_checks = det.rare_nets().size() > 700 ? 192 : 0;
    const auto tarmac =
        baselines::run_tarmac(comb, det.rare_nets(), det.matrix(), tarmac_cfg, rng);
    row.len_tarmac = tarmac.patterns.pattern_count();
    row.cov_tarmac = coverage_percent(prep, tarmac.patterns);

    // TGRL-like at the reference length.
    const auto scoap = analysis::compute_scoap(comb);
    baselines::TgrlLikeConfig tgrl_cfg;
    tgrl_cfg.n_patterns = ref;
    tgrl_cfg.mutation_rounds = scale.tgrl_rounds;
    const auto tgrl = baselines::run_tgrl_like(comb, det.rare_nets(), scoap, tgrl_cfg, rng);
    row.len_tgrl = tgrl.patterns.pattern_count();
    row.cov_tgrl = coverage_percent(prep, tgrl.patterns);

    // DETERRENT: train, pick k largest distinct sets, one pattern each.
    det.train();
    const auto det_patterns = det.extract_patterns();
    row.len_det = det_patterns.pattern_count();
    row.cov_det = coverage_percent(prep, det_patterns);

    std::printf(
        "rare=%zu gates=%zu trojans=%zu | rnd %.0f%% atpg %.0f%% mero %.0f%% "
        "tarmac %.0f%% tgrl %.0f%% DET %.0f%% (%zu pats) [%.1fs]\n\n",
        row.rare_nets, row.gates, row.trojans, row.cov_random, row.cov_atpg,
        row.cov_mero, row.cov_tarmac, row.cov_tgrl, row.cov_det, row.len_det,
        bench_watch.elapsed_seconds());
    std::fflush(stdout);  // keep partial results if the run is interrupted
    rows.push_back(row);
  }

  util::Table table({"Design", "Rare", "Gates", "Rnd len", "Rnd %", "ATPG len",
                     "ATPG %", "MERO len", "MERO %", "TARMAC len", "TARMAC %",
                     "TGRL len", "TGRL %", "DET len", "DET %", "Red. vs ref"});
  double avg[6] = {0, 0, 0, 0, 0, 0};
  double avg_reduction = 0.0;
  for (const auto& row : rows) {
    const double reduction =
        row.len_det == 0 ? 0.0
                         : static_cast<double>(row.len_tgrl) /
                               static_cast<double>(row.len_det);
    table.add_row({row.design, std::to_string(row.rare_nets), std::to_string(row.gates),
                   std::to_string(row.len_random), fmt(row.cov_random, 0),
                   std::to_string(row.len_atpg), fmt(row.cov_atpg, 0),
                   std::to_string(row.len_mero), fmt(row.cov_mero, 0),
                   std::to_string(row.len_tarmac), fmt(row.cov_tarmac, 0),
                   std::to_string(row.len_tgrl), fmt(row.cov_tgrl, 0),
                   std::to_string(row.len_det), fmt(row.cov_det, 0),
                   fmt(reduction, 1) + "x"});
    avg[0] += row.cov_random;
    avg[1] += row.cov_atpg;
    avg[2] += row.cov_mero;
    avg[3] += row.cov_tarmac;
    avg[4] += row.cov_tgrl;
    avg[5] += row.cov_det;
    avg_reduction += reduction;
  }
  const auto n = static_cast<double>(rows.size());
  table.add_row({"Avg.", "-", "-", "-", fmt(avg[0] / n, 1), "-", fmt(avg[1] / n, 1),
                 "-", fmt(avg[2] / n, 1), "-", fmt(avg[3] / n, 1), "-",
                 fmt(avg[4] / n, 1), "-", fmt(avg[5] / n, 1),
                 fmt(avg_reduction / n, 1) + "x"});
  table.print();

  std::printf(
      "\npaper (Table 2) reference: DETERRENT avg coverage 95.75%% (c-series), "
      "avg pattern reduction 169.68x vs TARMAC/TGRL;\nrandom 27.75%%, TestMAX "
      "10%%, TARMAC 83.5%%, TGRL 86.5%%. Expected shape here: DETERRENT's "
      "coverage column\ndominates every baseline at 1-2 orders of magnitude "
      "fewer patterns.\n");
  return 0;
}

// Micro-benchmarks: bit-parallel logic simulation throughput.
//
// Backs the paper's feasibility arguments — rare-net discovery and coverage
// evaluation ride on raw simulation speed. Reported counters: patterns/sec
// and gate-evaluations/sec.
#include <benchmark/benchmark.h>

#include "bench_gen/library.hpp"
#include "sim/probability.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

using namespace deterrent;

namespace {

void BM_SimulateBlock(benchmark::State& state, const std::string& name) {
  auto bench = bench_gen::load_benchmark(name);
  const auto& comb = bench.scan.comb;
  sim::Simulator simulator(comb);
  util::Rng rng(1);
  std::vector<std::uint64_t> inputs(comb.inputs().size());
  for (auto& w : inputs) w = rng.next_word();

  for (auto _ : state) {
    inputs[0] ^= 1;  // defeat any caching
    benchmark::DoNotOptimize(simulator.simulate_block(inputs).data());
  }
  state.counters["patterns/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 64.0, benchmark::Counter::kIsRate);
  state.counters["gate_evals/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 64.0 *
          static_cast<double>(comb.gate_count()),
      benchmark::Counter::kIsRate);
}

void BM_SignalStats(benchmark::State& state, const std::string& name) {
  auto bench = bench_gen::load_benchmark(name);
  const auto& comb = bench.scan.comb;
  const auto n_patterns = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::Rng rng(7);
    benchmark::DoNotOptimize(
        sim::estimate_signal_stats(comb, n_patterns, rng).ones.data());
  }
  state.counters["patterns/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(n_patterns),
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(BM_SimulateBlock, c2670_like, "c2670_like");
BENCHMARK_CAPTURE(BM_SimulateBlock, c6288_like, "c6288_like");
BENCHMARK_CAPTURE(BM_SimulateBlock, s35932_like, "s35932_like");
BENCHMARK_CAPTURE(BM_SimulateBlock, mips16_like, "mips16_like");
BENCHMARK_CAPTURE(BM_SignalStats, c6288_like, "c6288_like")->Arg(1 << 12)->Arg(1 << 14);

BENCHMARK_MAIN();

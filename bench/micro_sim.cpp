// Micro-benchmark: bit-parallel logic simulation throughput, old vs new.
//
// Backs the paper's feasibility arguments — rare-net discovery, the
// compatibility pre-filter, and coverage evaluation all ride on raw
// simulation speed. Compares the seed's single-word, per-gate-dispatch
// simulator against sim::Engine at several sweep widths W (W x 64 patterns
// per pass), across every SIMD kernel backend this host supports (scalar /
// NEON / AVX2 / AVX-512), and with pattern-stripe thread parallelism,
// reporting gate-evaluations/sec. Also times the sequential workload path —
// a steady-state MIPS16 program loop through sim::SequentialEngine, single
// and multi-trace, vs the seed per-cycle full-sweep stepping ("sequential"
// JSON block, per-ISA).
//
//   ./micro_sim [output.json]           (default output: BENCH_sim.json)
//
// DETERRENT_BENCH_MODE=quick shrinks the circuit and pattern count for CI
// smoke runs; default/full use a >= 20k-gate circuit at >= 16k patterns.
// DETERRENT_FORCE_ISA pins the backend of the main engine rows; the per-ISA
// "simd" sweep always measures every supported backend regardless.
#include <algorithm>
#include <bit>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_gen/mips16.hpp"
#include "bench_gen/random_circuit.hpp"
#include "netlist/gate.hpp"
#include "netlist/scan.hpp"
#include "sim/engine.hpp"
#include "sim/kernels/dispatch.hpp"
#include "sim/pattern.hpp"
#include "sim/sequential_engine.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace deterrent;

namespace {

/// The seed repository's simulator, reproduced verbatim as the comparison
/// baseline: one 64-pattern word per pass, a per-gate scratch copy of the
/// fanin words, and an out-of-line eval_word call per gate.
class SeedSimulator {
 public:
  explicit SeedSimulator(const netlist::Netlist& netlist) : netlist_(&netlist) {
    values_.resize(netlist.net_count(), 0);
  }

  std::span<const std::uint64_t> simulate_block(
      std::span<const std::uint64_t> input_words) {
    const auto& nl = *netlist_;
    for (std::size_t i = 0; i < input_words.size(); ++i)
      values_[nl.inputs()[i]] = input_words[i];
    for (netlist::NetId id : nl.topo_order()) {
      const netlist::GateType type = nl.type(id);
      if (type == netlist::GateType::Input) continue;
      const auto fanins = nl.fanins(id);
      scratch_.resize(fanins.size());
      for (std::size_t k = 0; k < fanins.size(); ++k) scratch_[k] = values_[fanins[k]];
      values_[id] = netlist::eval_word(type, scratch_);
    }
    return values_;
  }

 private:
  const netlist::Netlist* netlist_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> scratch_;
};

struct Result {
  std::string config;
  std::size_t threads = 1;
  std::size_t words = 1;
  double gate_evals_per_sec = 0.0;
  double speedup_vs_seed = 0.0;
  std::uint64_t checksum = 0;  ///< XOR of all output-net value words (sanity)
};

struct Workload {
  netlist::Netlist netlist;
  sim::PatternSet patterns;
  double gate_evals_per_sweep = 0.0;
};

/// Runs `sweep` repeatedly until the measured time is stable enough, and
/// returns gate-evals/sec for the best repetition (minimum time — standard
/// micro-bench practice to suppress scheduler noise).
template <typename SweepFn>
double measure(const Workload& w, double min_seconds, SweepFn&& sweep) {
  double best = 0.0;
  double total = 0.0;
  int reps = 0;
  while (total < min_seconds || reps < 3) {
    util::Stopwatch watch;
    sweep();
    const double s = watch.elapsed_seconds();
    total += s;
    ++reps;
    best = std::max(best, w.gate_evals_per_sweep / s);
    if (reps > 50) break;
  }
  return best;
}

/// Times `run` repeatedly (best-of reps, same policy as measure()) for
/// workloads with their own unit of work — mutation loops, cycle loops.
template <typename RunFn>
double time_best(double min_seconds, RunFn&& run) {
  double best = 1e300, total = 0.0;
  int reps = 0;
  while (total < min_seconds || reps < 3) {
    util::Stopwatch watch;
    run();
    const double s = watch.elapsed_seconds();
    total += s;
    ++reps;
    best = std::min(best, s);
    if (reps > 50) break;
  }
  return best;
}

std::uint64_t checksum_outputs(const netlist::Netlist& nl,
                               std::span<const std::uint64_t> values_word_per_net) {
  std::uint64_t sum = 0;
  for (const netlist::NetId out : nl.outputs()) sum ^= values_word_per_net[out];
  return sum;
}

/// One single-threaded whole-set sweep measurement of `engine` at the given
/// width: gate-evals/sec (best rep) plus the XOR output checksum, the shared
/// unit of work behind the W-sweep and per-ISA rows.
struct SweepMeasurement {
  double gate_evals_per_sec = 0.0;
  std::uint64_t checksum = 0;
};

SweepMeasurement measure_engine_sweep(const Workload& w, double min_seconds,
                                      const sim::Engine& engine, std::size_t words) {
  sim::EvalBuffer buf;
  SweepMeasurement m;
  m.gate_evals_per_sec = measure(w, min_seconds, [&] {
    m.checksum = 0;
    const std::size_t n_blocks = w.patterns.block_count();
    for (std::size_t first = 0; first < n_blocks; first += words) {
      const std::size_t n = std::min(words, n_blocks - first);
      engine.evaluate_blocks(buf, w.patterns, first, n);
      for (std::size_t ww = 0; ww < n; ++ww)
        for (const netlist::NetId out : w.netlist.outputs())
          m.checksum ^= buf.word(out, ww);
    }
  });
  return m;
}

}  // namespace

namespace {

int run_micro_sim(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sim.json";
  const util::BenchMode mode = util::bench_mode_from_env();

  Workload w;
  bench_gen::RandomCircuitProfile profile;
  profile.name = "micro_sim_random";
  profile.seed = 7;
  profile.wide_gate_fraction = 0.15;
  std::size_t n_patterns;
  if (mode == util::BenchMode::Quick) {
    profile.n_inputs = 96;
    profile.n_outputs = 48;
    profile.n_gates = 6000;
    n_patterns = 4096;
  } else {
    profile.n_inputs = 128;
    profile.n_outputs = 64;
    profile.n_gates = 24000;
    n_patterns = 16384;
  }
  w.netlist = bench_gen::generate_random_circuit(profile);
  util::Rng rng(11);
  w.patterns = sim::PatternSet::random(w.netlist.inputs().size(), n_patterns, rng);
  w.gate_evals_per_sweep = static_cast<double>(w.netlist.gate_count()) *
                           static_cast<double>(n_patterns);
  const double min_seconds = mode == util::BenchMode::Quick ? 0.1 : 0.3;

  std::printf("micro_sim: %zu gates, %zu nets, %zu inputs, %zu patterns (%s mode)\n",
              w.netlist.gate_count(), w.netlist.net_count(), w.netlist.inputs().size(),
              n_patterns, util::to_string(mode));

  std::vector<Result> results;

  // --- seed word simulator (the old hot path) ------------------------------
  {
    SeedSimulator seed_sim(w.netlist);
    std::uint64_t sum = 0;
    const double rate = measure(w, min_seconds, [&] {
      sum = 0;
      for (std::size_t b = 0; b < w.patterns.block_count(); ++b) {
        const auto values = seed_sim.simulate_block(w.patterns.block(b));
        sum ^= checksum_outputs(w.netlist, values);
      }
    });
    results.push_back({"seed_word_simulator", 1, 1, rate, 1.0, sum});
  }
  const double seed_rate = results[0].gate_evals_per_sec;
  const std::uint64_t seed_checksum = results[0].checksum;

  // --- engine, single thread, W in {1, 4, 8} -------------------------------
  // Uses the default backend selection, so these rows honor a forced
  // DETERRENT_FORCE_ISA (reported as "engine_isa" in the JSON).
  const sim::Engine engine(w.netlist);
  for (const std::size_t words : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    const auto m = measure_engine_sweep(w, min_seconds, engine, words);
    results.push_back({"engine_w" + std::to_string(words), 1, words,
                       m.gate_evals_per_sec, m.gate_evals_per_sec / seed_rate,
                       m.checksum});
  }

  // --- engine, per-ISA kernel backends, W = 8 ------------------------------
  // One engine per supported backend on the same workload; the scalar row is
  // the speedup reference. Checksums must equal the seed simulator's — the
  // backends are required to be bit-identical, not just fast.
  struct IsaResult {
    sim::kernels::Isa isa;
    double gate_evals_per_sec = 0.0;
    double speedup_vs_scalar = 0.0;
    std::uint64_t checksum = 0;
    bool checksums_ok = false;
  };
  std::vector<IsaResult> isa_results;
  {
    // Measure the scalar baseline explicitly first (it is always supported)
    // instead of relying on supported_isas() listing Scalar before the wide
    // backends — the speedup denominator must never be an uninitialized 0.
    const sim::Engine scalar_engine(w.netlist, sim::kernels::Isa::Scalar);
    const auto sm = measure_engine_sweep(w, min_seconds, scalar_engine,
                                         sim::Engine::kDefaultWords);
    const double scalar_rate = sm.gate_evals_per_sec;
    if (!(scalar_rate > 0.0)) {
      std::fprintf(stderr, "micro_sim: scalar baseline rate is not positive\n");
      return 1;
    }
    isa_results.push_back({sim::kernels::Isa::Scalar, sm.gate_evals_per_sec, 1.0,
                           sm.checksum, sm.checksum == seed_checksum});
    for (const sim::kernels::Isa isa : sim::kernels::supported_isas()) {
      if (isa == sim::kernels::Isa::Scalar) continue;
      const sim::Engine isa_engine(w.netlist, isa);
      const auto m = measure_engine_sweep(w, min_seconds, isa_engine,
                                          sim::Engine::kDefaultWords);
      isa_results.push_back({isa, m.gate_evals_per_sec,
                             m.gate_evals_per_sec / scalar_rate, m.checksum,
                             m.checksum == seed_checksum});
    }
  }

  // --- engine, pattern-stripe parallel, W = 8 ------------------------------
  for (const std::size_t n_threads : {std::size_t{2}, std::size_t{4}}) {
    util::ThreadPool pool(n_threads);
    constexpr std::size_t kWords = sim::Engine::kDefaultWords;
    std::vector<std::uint64_t> partial(pool.thread_count(), 0);
    std::uint64_t sum = 0;
    const double rate = measure(w, min_seconds, [&] {
      std::fill(partial.begin(), partial.end(), 0);
      pool.parallel_chunks(
          w.patterns.block_count(),
          [&](std::size_t thread, std::size_t begin, std::size_t end) {
            sim::EvalBuffer buf;
            for (std::size_t first = begin; first < end; first += kWords) {
              const std::size_t n = std::min(kWords, end - first);
              engine.evaluate_blocks(buf, w.patterns, first, n);
              for (std::size_t ww = 0; ww < n; ++ww)
                for (const netlist::NetId out : w.netlist.outputs())
                  partial[thread] ^= buf.word(out, ww);
            }
          });
      sum = 0;
      for (const std::uint64_t p : partial) sum ^= p;
    });
    results.push_back({"engine_w8_t" + std::to_string(n_threads), n_threads, kWords,
                       rate, rate / seed_rate, sum});
  }

  // --- incremental re-simulation: single-bit mutation loop -----------------
  // The MERO/TGRL-style workload: flip one input bit, re-simulate, read the
  // outputs. Full sweeps re-run the whole program per mutation; resimulate
  // re-evaluates only the flipped bit's fanout cone (with change cut-off).
  //
  // Mutation loops operate on *full-scan* netlists, where most inputs are
  // pseudo-PIs (scanned flip-flops) with shallow individual cones — so this
  // workload keeps the gate count but uses a scan-profile input count
  // instead of the dense 128-input mesh above.
  std::size_t n_mutations = mode == util::BenchMode::Quick ? 2000 : 10000;
  std::size_t mut_inputs, mut_gates;
  if (mode == util::BenchMode::Quick) {
    mut_inputs = 512;
    mut_gates = 6000;
  } else {
    mut_inputs = 2048;
    mut_gates = 24000;
  }
  double mut_full_per_sec = 0.0, mut_inc_per_sec = 0.0;
  double incremental_speedup = 0.0, avg_gate_evals_per_mutation = 0.0;
  bool incremental_checksum_ok = false;
  {
    bench_gen::RandomCircuitProfile mprofile;
    mprofile.name = "micro_sim_scan_profile";
    mprofile.seed = 13;
    mprofile.wide_gate_fraction = 0.15;
    mprofile.n_inputs = mut_inputs;
    mprofile.n_outputs = 64;
    mprofile.n_gates = mut_gates;
    const netlist::Netlist scan_nl = bench_gen::generate_random_circuit(mprofile);
    const sim::Engine scan_engine(scan_nl);

    util::Rng mrng(23);
    const std::size_t n_inputs = scan_nl.inputs().size();
    std::vector<std::uint32_t> flips(n_mutations);
    for (auto& f : flips) f = static_cast<std::uint32_t>(mrng.below(n_inputs));
    std::vector<std::uint64_t> base(n_inputs);
    for (auto& b : base) b = mrng.next_word();

    sim::EvalBuffer buf;
    std::vector<std::uint64_t> words;
    std::uint64_t full_sum = 0, inc_sum = 0;
    std::size_t inc_ops_total = 0;
    const double full_s = time_best(min_seconds, [&] {
      words = base;
      full_sum = 0;
      scan_engine.evaluate(buf, words, 1);
      for (const std::uint32_t f : flips) {
        words[f] = ~words[f];
        scan_engine.evaluate(buf, words, 1);
        for (const netlist::NetId out : scan_nl.outputs()) full_sum ^= buf.word(out, 0);
      }
    });
    const double inc_s = time_best(min_seconds, [&] {
      words = base;
      inc_sum = 0;
      inc_ops_total = 0;
      scan_engine.evaluate(buf, words, 1);
      for (const std::uint32_t f : flips) {
        words[f] = ~words[f];
        inc_ops_total += scan_engine.resimulate(buf, {&f, 1}, {&words[f], 1}, 1);
        for (const netlist::NetId out : scan_nl.outputs()) inc_sum ^= buf.word(out, 0);
      }
    });

    mut_full_per_sec = static_cast<double>(n_mutations) / full_s;
    mut_inc_per_sec = static_cast<double>(n_mutations) / inc_s;
    incremental_speedup = full_s / inc_s;
    avg_gate_evals_per_mutation =
        static_cast<double>(inc_ops_total) / static_cast<double>(n_mutations);
    incremental_checksum_ok = full_sum == inc_sum;

    std::printf(
        "\nincremental re-simulation (%zu single-bit mutations, scan profile: "
        "%zu gates, %zu inputs):\n",
        n_mutations, scan_nl.gate_count(), n_inputs);
    std::printf("  full sweeps        %12.0f mutations/s (%zu gate evals each)\n",
                mut_full_per_sec, scan_nl.gate_count());
    std::printf("  resimulate         %12.0f mutations/s (%.1f gate evals each)\n",
                mut_inc_per_sec, avg_gate_evals_per_mutation);
    std::printf("  speedup            %12.2fx, checksums %s\n", incremental_speedup,
                incremental_checksum_ok ? "match" : "MISMATCH");
  }

  // --- sequential: event-driven multi-trace stepping -----------------------
  // Workload execution on the MIPS16-like core: a steady-state program loop
  // (constant NOP-class instruction, so between cycles only the PC and its
  // fetch cone move). The seed path re-evaluates the whole scan-cut cone with
  // the per-gate-dispatch simulator every cycle; SequentialEngine re-simulates
  // only the fanout cones of the changed state words, and steps
  // 64*W independent traces in lock-step for throughput workloads.
  struct SeqIsaResult {
    sim::kernels::Isa isa;
    double trace_cycles_per_sec = 0.0;
    double speedup_vs_scalar = 0.0;
    bool checksum_ok = false;
  };
  std::size_t seq_cycles = mode == util::BenchMode::Quick ? 512 : 4096;
  std::size_t seq_gates = 0, seq_dffs = 0, seq_scan_inputs = 0;
  double seq_seed_cps = 0.0, seq_engine_cps = 0.0, seq_engine_speedup = 0.0;
  double seq_gate_evals_per_cycle = 0.0;
  std::size_t seq_traces = 0;
  double seq_multi_tcps = 0.0, seq_multi_speedup = 0.0;
  bool seq_checksum_ok = false;
  std::vector<SeqIsaResult> seq_isa_results;
  {
    const netlist::Netlist cpu = bench_gen::generate_mips16({});
    const netlist::ScanView scan = netlist::make_full_scan(cpu);
    seq_gates = scan.comb.gate_count();
    seq_dffs = cpu.dffs().size();
    seq_scan_inputs = scan.comb.inputs().size();
    const sim::Pattern nop(cpu.inputs().size());  // ADD r0,r0,r0 + mem_rdata=0

    // Per-cycle value checksum over every net, trace/lane 0. Folded in a
    // separate untimed pass so verification cost never pollutes the rates.
    const auto fold = [](std::uint64_t sum, bool bit) {
      return std::rotl(sum, 1) ^ (bit ? 1ULL : 0ULL);
    };

    // Seed path: full per-gate-dispatch sweep of the scan cone every cycle.
    std::uint64_t seed_sum = 0;
    {
      SeedSimulator ssim(scan.comb);
      const auto scan_inputs = scan.comb.inputs();
      std::vector<int> ff_of(scan_inputs.size(), -1);
      {
        std::size_t ff = 0;
        for (std::size_t o = 0; o < scan_inputs.size(); ++o)
          if (ff < scan.pseudo_inputs.size() && scan.pseudo_inputs[ff] == scan_inputs[o])
            ff_of[o] = static_cast<int>(ff++);
      }
      std::vector<std::uint64_t> combined(scan_inputs.size());
      std::vector<bool> state(scan.pseudo_inputs.size(), false);
      const auto run_seed = [&](bool with_checksum) {
        std::fill(state.begin(), state.end(), false);
        for (std::size_t cycle = 0; cycle < seq_cycles; ++cycle) {
          for (std::size_t o = 0; o < scan_inputs.size(); ++o)
            combined[o] = ff_of[o] >= 0 && state[static_cast<std::size_t>(ff_of[o])]
                              ? ~0ULL
                              : 0ULL;  // NOP loop: every true PI is 0
          const auto values = ssim.simulate_block(combined);
          if (with_checksum)
            for (std::size_t net = 0; net < values.size(); ++net)
              seed_sum = fold(seed_sum, values[net] & 1ULL);
          for (std::size_t k = 0; k < state.size(); ++k)
            state[k] = values[scan.pseudo_outputs[k]] & 1ULL;
        }
      };
      const double s = time_best(min_seconds, [&] { run_seed(false); });
      seq_seed_cps = static_cast<double>(seq_cycles) / s;
      seed_sum = 0;
      run_seed(true);
    }

    // Lane-0 checksum of a SequentialEngine run (untimed verification pass).
    const auto engine_lane0_sum = [&](sim::SequentialEngine& seq,
                                      const auto& init_state) {
      seq.reset(false);
      init_state(seq);
      std::uint64_t sum = 0;
      for (std::size_t cycle = 0; cycle < seq_cycles; ++cycle) {
        seq.step_broadcast(nop);
        for (netlist::NetId net = 0; net < cpu.net_count(); ++net)
          sum = fold(sum, seq.values().word(net, 0) & 1ULL);
      }
      return sum;
    };
    const auto no_init = [](sim::SequentialEngine&) {};

    // Engine, single trace: the facade workload (SequentialSimulator shape).
    {
      sim::SequentialEngine seq(cpu, 1);
      const double s = time_best(min_seconds, [&] {
        seq.reset(false);
        for (std::size_t cycle = 0; cycle < seq_cycles; ++cycle)
          seq.step_broadcast(nop);
      });
      seq_engine_cps = static_cast<double>(seq_cycles) / s;
      seq_engine_speedup = seq_engine_cps / seq_seed_cps;
      seq_gate_evals_per_cycle =
          static_cast<double>(seq.gate_evals()) / static_cast<double>(seq_cycles);
      seq_checksum_ok = engine_lane0_sum(seq, no_init) == seed_sum;
    }

    // Engine, 64*W traces in lock-step, per kernel backend. Traces 1.. get
    // random register state (lane 0 keeps the seed run's all-zero reset so
    // its checksum stays comparable); the NOP loop leaves that state alone,
    // so every added trace rides the same sparse PC cone.
    seq_traces = 64 * sim::Engine::kDefaultWords;
    std::vector<std::vector<std::uint64_t>> init_words;
    {
      util::Rng srng(41);
      const std::size_t words = (seq_traces + 63) / 64;
      for (std::size_t k = 0; k < cpu.dffs().size(); ++k) {
        std::vector<std::uint64_t> w(words);
        for (auto& word : w) word = srng.next_word();
        w[0] &= ~1ULL;  // only trace 0 keeps the seed run's all-zero reset
        init_words.push_back(std::move(w));
      }
    }
    const auto random_init = [&](sim::SequentialEngine& seq) {
      for (std::size_t k = 0; k < cpu.dffs().size(); ++k)
        seq.set_state_words(cpu.dffs()[k], init_words[k]);
    };
    const auto measure_multi = [&](std::optional<sim::kernels::Isa> isa) {
      sim::SequentialEngine seq(cpu, seq_traces, isa);
      const double s = time_best(min_seconds, [&] {
        seq.reset(false);
        random_init(seq);
        for (std::size_t cycle = 0; cycle < seq_cycles; ++cycle)
          seq.step_broadcast(nop);
      });
      const double tcps =
          static_cast<double>(seq_cycles) * static_cast<double>(seq_traces) / s;
      const bool ok = engine_lane0_sum(seq, random_init) == seed_sum;
      return std::pair<double, bool>{tcps, ok};
    };

    {
      const auto [tcps, ok] = measure_multi(std::nullopt);
      seq_multi_tcps = tcps;
      seq_multi_speedup = tcps / seq_seed_cps;
      seq_checksum_ok = seq_checksum_ok && ok;
    }
    {
      const auto [scalar_tcps, scalar_ok] = measure_multi(sim::kernels::Isa::Scalar);
      seq_isa_results.push_back(
          {sim::kernels::Isa::Scalar, scalar_tcps, 1.0, scalar_ok});
      for (const sim::kernels::Isa isa : sim::kernels::supported_isas()) {
        if (isa == sim::kernels::Isa::Scalar) continue;
        const auto [tcps, ok] = measure_multi(isa);
        seq_isa_results.push_back({isa, tcps, tcps / scalar_tcps, ok});
      }
    }

    std::printf(
        "\nsequential (mips16 NOP loop: %zu gates, %zu dffs, %zu scan inputs, "
        "%zu cycles):\n",
        seq_gates, seq_dffs, seq_scan_inputs, seq_cycles);
    std::printf("  seed full-sweep    %12.0f cycles/s\n", seq_seed_cps);
    std::printf("  engine 1 trace     %12.0f cycles/s (%.1fx, %.1f gate evals/cycle)\n",
                seq_engine_cps, seq_engine_speedup, seq_gate_evals_per_cycle);
    std::printf("  engine %zu traces %12.0f trace-cycles/s (%.1fx vs seed)\n",
                seq_traces, seq_multi_tcps, seq_multi_speedup);
    for (const auto& r : seq_isa_results)
      std::printf("    %-8s %14.0f trace-cycles/s %8.2fx vs scalar, checksum %s\n",
                  sim::kernels::to_string(r.isa), r.trace_cycles_per_sec,
                  r.speedup_vs_scalar, r.checksum_ok ? "ok" : "MISMATCH");
  }

  // --- report --------------------------------------------------------------
  bool checksums_ok = incremental_checksum_ok && seq_checksum_ok;
  for (const auto& r : seq_isa_results) checksums_ok = checksums_ok && r.checksum_ok;
  std::printf("\n%-22s %8s %6s %16s %10s\n", "config", "threads", "words",
              "gate_evals/s", "speedup");
  for (const auto& r : results) {
    std::printf("%-22s %8zu %6zu %16.3e %9.2fx\n", r.config.c_str(), r.threads,
                r.words, r.gate_evals_per_sec, r.speedup_vs_seed);
    if (r.checksum != seed_checksum) {
      checksums_ok = false;
      std::printf("  !! checksum mismatch vs seed simulator (%016llx vs %016llx)\n",
                  static_cast<unsigned long long>(r.checksum),
                  static_cast<unsigned long long>(seed_checksum));
    }
  }

  std::printf("\nSIMD kernel backends (W = %zu; engine rows above used: %s):\n",
              sim::Engine::kDefaultWords, sim::kernels::to_string(engine.isa()));
  std::printf("%-10s %16s %18s %10s\n", "isa", "gate_evals/s", "speedup_vs_scalar",
              "checksums");
  for (const auto& r : isa_results) {
    std::printf("%-10s %16.3e %17.2fx %10s\n", sim::kernels::to_string(r.isa),
                r.gate_evals_per_sec, r.speedup_vs_scalar,
                r.checksums_ok ? "ok" : "MISMATCH");
    checksums_ok = checksums_ok && r.checksums_ok;
  }
  std::printf("checksums: %s\n", checksums_ok ? "all match" : "MISMATCH");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_sim: cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"micro_sim\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", util::to_string(mode));
  std::fprintf(f, "  \"gates\": %zu,\n", w.netlist.gate_count());
  std::fprintf(f, "  \"nets\": %zu,\n", w.netlist.net_count());
  std::fprintf(f, "  \"inputs\": %zu,\n", w.netlist.inputs().size());
  std::fprintf(f, "  \"patterns\": %zu,\n", n_patterns);
  std::fprintf(f, "  \"checksums_ok\": %s,\n", checksums_ok ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"config\": \"%s\", \"threads\": %zu, \"words\": %zu, "
                 "\"gate_evals_per_sec\": %.6e, \"speedup_vs_seed\": %.4f}%s\n",
                 r.config.c_str(), r.threads, r.words, r.gate_evals_per_sec,
                 r.speedup_vs_seed, i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  // The backend the engine_w* rows above actually ran on (honors a forced
  // DETERRENT_FORCE_ISA); the per-ISA rows below are self-labeled.
  std::fprintf(f, "  \"engine_isa\": \"%s\",\n",
               sim::kernels::to_string(engine.isa()));
  std::fprintf(f, "  \"simd\": [\n");
  for (std::size_t i = 0; i < isa_results.size(); ++i) {
    const auto& r = isa_results[i];
    std::fprintf(f,
                 "    {\"isa\": \"%s\", \"words\": %zu, \"gate_evals_per_sec\": "
                 "%.6e, \"speedup_vs_scalar\": %.4f, \"checksums_ok\": %s}%s\n",
                 sim::kernels::to_string(r.isa), sim::Engine::kDefaultWords,
                 r.gate_evals_per_sec, r.speedup_vs_scalar,
                 r.checksums_ok ? "true" : "false",
                 i + 1 == isa_results.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"sequential\": {\n");
  std::fprintf(f, "    \"workload\": \"mips16_nop_loop\",\n");
  std::fprintf(f, "    \"gates\": %zu,\n", seq_gates);
  std::fprintf(f, "    \"dffs\": %zu,\n", seq_dffs);
  std::fprintf(f, "    \"scan_inputs\": %zu,\n", seq_scan_inputs);
  std::fprintf(f, "    \"cycles\": %zu,\n", seq_cycles);
  std::fprintf(f, "    \"seed_cycles_per_sec\": %.6e,\n", seq_seed_cps);
  std::fprintf(f, "    \"engine_cycles_per_sec\": %.6e,\n", seq_engine_cps);
  std::fprintf(f, "    \"speedup_vs_seed\": %.4f,\n", seq_engine_speedup);
  std::fprintf(f, "    \"avg_gate_evals_per_cycle\": %.2f,\n", seq_gate_evals_per_cycle);
  std::fprintf(f, "    \"multi_trace\": {\"traces\": %zu, "
               "\"trace_cycles_per_sec\": %.6e, \"speedup_vs_seed\": %.4f},\n",
               seq_traces, seq_multi_tcps, seq_multi_speedup);
  std::fprintf(f, "    \"checksum_ok\": %s,\n", seq_checksum_ok ? "true" : "false");
  std::fprintf(f, "    \"per_isa\": [\n");
  for (std::size_t i = 0; i < seq_isa_results.size(); ++i) {
    const auto& r = seq_isa_results[i];
    std::fprintf(f,
                 "      {\"isa\": \"%s\", \"trace_cycles_per_sec\": %.6e, "
                 "\"speedup_vs_scalar\": %.4f, \"checksum_ok\": %s}%s\n",
                 sim::kernels::to_string(r.isa), r.trace_cycles_per_sec,
                 r.speedup_vs_scalar, r.checksum_ok ? "true" : "false",
                 i + 1 == seq_isa_results.size() ? "" : ",");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"incremental\": {\n");
  std::fprintf(f, "    \"scan_profile_gates\": %zu,\n", mut_gates);
  std::fprintf(f, "    \"scan_profile_inputs\": %zu,\n", mut_inputs);
  std::fprintf(f, "    \"single_bit_mutations\": %zu,\n", n_mutations);
  std::fprintf(f, "    \"full_mutations_per_sec\": %.6e,\n", mut_full_per_sec);
  std::fprintf(f, "    \"incremental_mutations_per_sec\": %.6e,\n", mut_inc_per_sec);
  std::fprintf(f, "    \"avg_gate_evals_per_mutation\": %.2f,\n",
               avg_gate_evals_per_mutation);
  std::fprintf(f, "    \"speedup_vs_full\": %.4f,\n", incremental_speedup);
  std::fprintf(f, "    \"checksum_ok\": %s\n", incremental_checksum_ok ? "true" : "false");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return checksums_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_micro_sim(argc, argv);
  } catch (const std::exception& e) {  // e.g. a bad DETERRENT_FORCE_ISA value
    std::fprintf(stderr, "micro_sim: %s\n", e.what());
    return 1;
  }
}

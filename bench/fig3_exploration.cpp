// Figure 3 — Total-loss trends in c2670: default vs. boosted exploration.
//
// Paper: with default PPO (no entropy bonus, λ=0.95) the total loss collapses
// to ~0 quickly — the agent stops exploring and gets stuck in local optima.
// With boosted exploration (entropy coefficient c_eps=1, λ=0.99) the loss
// stays elevated, the agent keeps exploring, and coverage improves. We print
// both loss series plus the resulting distinct-set pools.
#include "common.hpp"

using namespace deterrent;
using namespace deterrent::bench;

namespace {

struct LossTrace {
  std::vector<std::uint64_t> steps;
  std::vector<double> total_loss;
  std::vector<double> entropy;
  std::size_t pool_size = 0;
  std::size_t max_set = 0;
};

LossTrace run_variant(const netlist::Netlist& comb, const core::DeterrentConfig& cfg) {
  core::Deterrent det(comb, cfg);
  det.prepare();
  det.train();
  LossTrace trace;
  for (const auto& snap : det.history()) {
    trace.steps.push_back(snap.cumulative_steps);
    trace.total_loss.push_back(snap.ppo.total_loss);
    trace.entropy.push_back(snap.ppo.mean_entropy);
  }
  trace.pool_size = det.pool().size();
  trace.max_set = det.pool().max_set_size();
  return trace;
}

}  // namespace

int main() {
  const Scale scale = scale_from_env();
  print_header("Figure 3 — loss trends: default vs boosted exploration (c2670_like)",
               scale);

  auto bench = bench_gen::load_benchmark("c2670_like");

  core::DeterrentConfig default_cfg;
  default_cfg.ppo = rl::PpoConfig{};  // stock PPO: entropy 0, lambda 0.95
  default_cfg.updates = scale.loss_updates;
  default_cfg.ppo.episodes_per_update = scale.det_episodes;
  default_cfg.seed = 9;

  core::DeterrentConfig boosted_cfg = default_cfg;
  boosted_cfg.ppo = core::DeterrentConfig::boosted_ppo_defaults();  // c_eps=1, λ=0.99
  boosted_cfg.ppo.episodes_per_update = scale.det_episodes;

  const LossTrace def = run_variant(bench.scan.comb, default_cfg);
  const LossTrace boosted = run_variant(bench.scan.comb, boosted_cfg);

  util::Table table({"Steps (default)", "Total loss (default)", "Entropy (default)",
                     "Steps (boosted)", "Total loss (boosted)", "Entropy (boosted)"});
  for (std::size_t i = 0; i < def.steps.size(); ++i)
    table.add_row({std::to_string(def.steps[i]), fmt(def.total_loss[i], 2),
                   fmt(def.entropy[i], 3), std::to_string(boosted.steps[i]),
                   fmt(boosted.total_loss[i], 2), fmt(boosted.entropy[i], 3)});
  table.print();

  // The headline signal: the default loss magnitude collapses towards zero
  // while the boosted loss stays elevated (entropy term keeps gradients live).
  auto tail_mean = [](const std::vector<double>& xs) {
    double sum = 0.0;
    const std::size_t tail = std::max<std::size_t>(1, xs.size() / 4);
    for (std::size_t i = xs.size() - tail; i < xs.size(); ++i) sum += std::abs(xs[i]);
    return sum / static_cast<double>(tail);
  };
  std::printf("\n|total loss| over the final quarter: default %.2f vs boosted %.2f\n",
              tail_mean(def.total_loss), tail_mean(boosted.total_loss));
  std::printf("policy entropy over the final quarter: default %.3f vs boosted %.3f\n",
              tail_mean(def.entropy), tail_mean(boosted.entropy));
  std::printf("distinct sets found: default %zu (max %zu) vs boosted %zu (max %zu)\n",
              def.pool_size, def.max_set, boosted.pool_size, boosted.max_set);
  std::printf(
      "\npaper (Fig. 3): default exploration's loss collapses to ~0 early; "
      "boosted stays non-zero,\nforcing continued exploration and more diverse "
      "compatible sets.\n");
  return 0;
}

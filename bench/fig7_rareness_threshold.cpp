// Figure 7 — Impact of the rareness threshold on the number of rare nets and
// on DETERRENT's trigger coverage (c6288), plus the §4.5 cross-threshold
// transfer experiment (train at θ=0.14, evaluate at θ=0.10).
//
// Paper: raising θ from 0.10 to 0.14 multiplies the rare-net count (up to 64×
// more potential trigger combinations) yet DETERRENT's coverage drops ≤2%
// with <2500 patterns; training on the θ=0.14 superset still covers 99% of
// θ=0.10 triggers.
#include "common.hpp"

using namespace deterrent;
using namespace deterrent::bench;

int main() {
  const Scale scale = scale_from_env();
  print_header("Figure 7 — rareness threshold sweep (c6288_like)", scale);

  auto bench = bench_gen::load_benchmark("c6288_like");
  const auto& comb = bench.scan.comb;

  util::Table table({"Threshold", "# rare nets", "# valid HTs", "DETERRENT cov (%)",
                     "DET patterns"});

  sim::PatternSet patterns_at_014(comb.inputs().size());
  std::vector<analysis::RareNet> rare_at_010;

  for (const double theta : {0.10, 0.11, 0.12, 0.13, 0.14}) {
    core::DeterrentConfig cfg;
    cfg.rare.threshold = theta;
    cfg.updates = scale.det_updates;
    cfg.k_patterns = scale.det_k;
    cfg.ppo.episodes_per_update = scale.det_episodes;
    cfg.seed = 21;
    core::Deterrent det(comb, cfg);
    det.prepare();
    det.train();
    const auto patterns = det.extract_patterns();

    // Trojans drawn from this threshold's rare nets.
    sat::NetlistOracle oracle(comb);
    util::Rng rng(static_cast<std::uint64_t>(theta * 1000));
    trojan::TrojanSampleConfig tcfg;
    tcfg.width = 4;
    tcfg.count = scale.trojans;
    const auto trojans = trojan::sample_trojans(comb, det.rare_nets(), tcfg, oracle, rng);
    const double cov =
        trojan::evaluate_coverage(comb, trojans, patterns).coverage_percent();

    table.add_row({fmt(theta, 2), std::to_string(det.rare_nets().size()),
                   std::to_string(trojans.size()), fmt(cov, 1),
                   std::to_string(patterns.pattern_count())});

    if (theta == 0.10) rare_at_010.assign(det.rare_nets().begin(), det.rare_nets().end());
    if (theta == 0.14) patterns_at_014 = patterns;
  }
  table.print();

  // §4.5 transfer: θ=0.14-trained patterns against θ=0.10 triggers.
  sat::NetlistOracle oracle(comb);
  util::Rng rng(4242);
  trojan::TrojanSampleConfig tcfg;
  tcfg.width = 4;
  tcfg.count = scale.trojans;
  const auto trojans_010 = trojan::sample_trojans(comb, rare_at_010, tcfg, oracle, rng);
  const double transfer_cov =
      trojan::evaluate_coverage(comb, trojans_010, patterns_at_014).coverage_percent();
  std::printf(
      "\ncross-threshold transfer: patterns trained at theta=0.14 cover %.1f%% of "
      "theta=0.10 triggers (%zu HTs)\n",
      transfer_cov, trojans_010.size());

  std::printf(
      "\npaper (Fig. 7 + §4.5): rare nets grow ~43%% across the sweep (64x more "
      "trigger combos) while\ncoverage stays within 2%%; the transfer experiment "
      "reaches 99%%. Expected shape: the rare-net\ncolumn grows with theta, the "
      "coverage column stays nearly flat, transfer stays high.\n");
  return 0;
}

// Figure 5 — Impact of trigger width on trigger coverage, DETERRENT vs TGRL,
// on c6288 (the array multiplier).
//
// Paper: as the trigger widens from 2 to 12 nets, TGRL's coverage collapses
// (to ~0% by width 8) while DETERRENT stays nearly flat (≤2% drop) — the
// compatible-set formulation activates *many* rare nets per pattern, so wide
// conjunctions remain covered. DETERRENT trains once; the same pattern set is
// evaluated against Trojan populations of every width.
#include "analysis/scoap.hpp"
#include "baselines/tgrl_like.hpp"
#include "common.hpp"

using namespace deterrent;
using namespace deterrent::bench;

int main() {
  const Scale scale = scale_from_env();
  print_header("Figure 5 — trigger width vs coverage (c6288_like)", scale);

  PreparedBenchmark prep = prepare_benchmark("c6288_like", scale);
  auto& det = *prep.det;
  const auto& comb = prep.comb();
  std::printf("offline: %zu rare nets\n", det.rare_nets().size());

  // One DETERRENT training run, one TGRL-like run; evaluate both against
  // fresh Trojan populations per width.
  det.train();
  const auto det_patterns = det.extract_patterns();

  util::Rng rng(7);
  const auto scoap = analysis::compute_scoap(comb);
  baselines::TgrlLikeConfig tgrl_cfg;
  tgrl_cfg.n_patterns = scale.ref_patterns;
  tgrl_cfg.mutation_rounds = scale.tgrl_rounds;
  const auto tgrl = baselines::run_tgrl_like(comb, det.rare_nets(), scoap, tgrl_cfg, rng);

  std::printf("DETERRENT: %zu patterns; TGRL-like: %zu patterns\n\n",
              det_patterns.pattern_count(), tgrl.patterns.pattern_count());

  util::Table table({"Trigger width", "# valid HTs", "DETERRENT cov (%)",
                     "TGRL cov (%)"});
  sat::NetlistOracle oracle(comb);
  for (const unsigned width : {2u, 4u, 6u, 8u, 10u, 12u}) {
    trojan::TrojanSampleConfig tcfg;
    tcfg.width = width;
    tcfg.count = scale.trojans;
    util::Rng trojan_rng(width * 31 + 5);
    const auto trojans =
        trojan::sample_trojans(comb, det.rare_nets(), tcfg, oracle, trojan_rng);
    if (trojans.empty()) {
      table.add_row({std::to_string(width), "0", "-", "-"});
      continue;
    }
    const double cov_det =
        trojan::evaluate_coverage(comb, trojans, det_patterns).coverage_percent();
    const double cov_tgrl =
        trojan::evaluate_coverage(comb, trojans, tgrl.patterns).coverage_percent();
    table.add_row({std::to_string(width), std::to_string(trojans.size()),
                   fmt(cov_det, 1), fmt(cov_tgrl, 1)});
  }
  table.print();

  std::printf(
      "\npaper (Fig. 5): TGRL drops from ~85%% (width 2) towards 0%% by width "
      "8-12; DETERRENT holds a\nnear-flat curve. Expected shape: the DETERRENT "
      "column decays far slower than the TGRL column.\n");
  return 0;
}

// Ablation (beyond the paper's figures, motivated by §3.1's design note):
// "We square the reward at each step, but any power greater than 1 would be
// appropriate since we want the reward function to be convex."
//
// This harness sweeps the reward exponent p in |s_{t+1}|^p over
// {0.5, 1.0, 1.5, 2.0, 3.0} on c2670_like and reports the resulting max
// compatible set, pool diversity, and trigger coverage. The paper's claim
// translates to: convex exponents (p > 1) should match or beat the concave
// and linear ones, with no strong sensitivity among p ∈ {1.5, 2, 3}.
#include "common.hpp"

using namespace deterrent;
using namespace deterrent::bench;

int main() {
  const Scale scale = scale_from_env();
  print_header("Ablation — reward exponent p in |s|^p (c2670_like)", scale);

  auto bench = bench_gen::load_benchmark("c2670_like");
  const auto& comb = bench.scan.comb;

  // One shared Trojan population so rows are comparable.
  util::Rng rng(31);
  analysis::RareNetConfig rare_cfg;
  const auto rare = analysis::find_rare_nets(comb, rare_cfg, rng);
  sat::NetlistOracle oracle(comb);
  trojan::TrojanSampleConfig tcfg;
  tcfg.width = 4;
  tcfg.count = scale.trojans;
  const auto trojans = trojan::sample_trojans(comb, rare, tcfg, oracle, rng);

  util::Table table({"Exponent p", "Max set", "Distinct sets", "Patterns",
                     "Coverage (%)"});
  for (const double p : {0.5, 1.0, 1.5, 2.0, 3.0}) {
    core::DeterrentConfig cfg;
    cfg.updates = scale.det_updates;
    cfg.k_patterns = det_k_for("c2670_like", scale.ref_patterns, scale.det_k);
    cfg.ppo.episodes_per_update = scale.det_episodes;
    cfg.env.reward_mode = core::RewardMode::EndOfEpisode;
    cfg.env.reward_exponent = p;
    cfg.seed = 77;
    core::Deterrent det(comb, cfg);
    det.prepare();
    det.train();
    const auto patterns = det.extract_patterns();
    const double cov =
        trojan::evaluate_coverage(comb, trojans, patterns).coverage_percent();
    table.add_row({fmt(p, 1), std::to_string(det.pool().max_set_size()),
                   std::to_string(det.pool().size()),
                   std::to_string(patterns.pattern_count()), fmt(cov, 1)});
  }
  table.print();

  std::printf(
      "\nexpected shape (per §3.1's design note): p > 1 rows match or beat "
      "p <= 1 on max-set size and\ncoverage; among convex exponents the choice "
      "is not critical.\n");
  return 0;
}

// Micro-benchmark: incremental SAT oracle throughput on netlist CNFs.
//
// Backs §3.3/§5 — the offline pairwise phase and the per-step compatibility
// checks issue tens of thousands of assumption-based rare-net queries against
// one solver instance; queries/sec is the figure of merit. Measures one fixed
// pair-query stream over a full-scan benchmark cone through four
// configurations: the plain single solver (baseline), the single solver with
// inprocessing, and the clause-sharing portfolio at 2 and 4 threads. Every
// configuration must return the identical Sat/Unsat verdict per query
// ("identical_results" in the JSON — the bench doubles as a cross-config
// differential check).
//
//   ./micro_sat [output.json]           (default output: BENCH_sim.json)
//
// Appends a "sat" block into the output JSON if it already exists (micro_sim
// writes the rest of the file); otherwise writes a fresh root object. Re-runs
// replace a previous "sat" block instead of duplicating it.
// DETERRENT_BENCH_MODE=quick shrinks the workload for CI smoke runs.
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/rare_nets.hpp"
#include "bench_gen/library.hpp"
#include "sat/encoder.hpp"
#include "sat/oracle.hpp"
#include "sat/portfolio.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace deterrent;

namespace {

struct QueryStream {
  std::vector<std::array<sat::Constraint, 2>> pairs;
  std::vector<netlist::NetId> query_nets;  // sorted, deduped constraint targets
};

/// A fixed, seed-reproducible stream of rare-net pair queries — the workload
/// shape of the offline compatibility phase (is rare net i at its rare value
/// compatible with rare net j at its rare value?).
QueryStream make_queries(const std::vector<analysis::RareNet>& rare,
                         std::size_t n_queries) {
  QueryStream stream;
  util::Rng rng(3);
  for (std::size_t q = 0; q < n_queries; ++q) {
    const auto i = rng.below(rare.size());
    auto j = rng.below(rare.size());
    if (j == i) j = (j + 1) % rare.size();
    stream.pairs.push_back(
        std::array<sat::Constraint, 2>{sat::Constraint{rare[i].net, rare[i].rare_value},
                                       sat::Constraint{rare[j].net, rare[j].rare_value}});
  }
  for (const auto& pair : stream.pairs)
    for (const auto& c : pair) stream.query_nets.push_back(c.net);
  std::sort(stream.query_nets.begin(), stream.query_nets.end());
  stream.query_nets.erase(
      std::unique(stream.query_nets.begin(), stream.query_nets.end()),
      stream.query_nets.end());
  return stream;
}

struct ConfigResult {
  std::string config;
  std::size_t threads = 1;
  bool inprocess = false;
  double queries_per_sec = 0.0;
  double speedup_vs_plain = 0.0;
  std::vector<bool> answers;  // per-query Sat verdicts, order of the stream
};

/// Runs the full query stream through a fresh single-solver oracle and
/// returns queries/sec (oracle construction and inprocessing warm-up are
/// setup, not counted — the paper's workload amortizes one encoding over the
/// whole pairwise phase).
ConfigResult run_single(const netlist::Netlist& nl, const QueryStream& stream,
                        bool inprocess, const std::string& label) {
  ConfigResult r;
  r.config = label;
  r.inprocess = inprocess;
  sat::OracleConfig config;
  config.inprocess = inprocess;
  sat::NetlistOracle oracle(nl, config);
  if (inprocess) {
    oracle.declare_query_nets(stream.query_nets);
    oracle.inprocess_now();
  }
  r.answers.reserve(stream.pairs.size());
  util::Stopwatch watch;
  for (const auto& pair : stream.pairs)
    r.answers.push_back(oracle.satisfiable(pair));
  r.queries_per_sec =
      static_cast<double>(stream.pairs.size()) / watch.elapsed_seconds();
  return r;
}

ConfigResult run_portfolio(const netlist::Netlist& nl, const QueryStream& stream,
                           std::size_t threads, bool inprocess,
                           sat::Portfolio::ShareStats* share_out) {
  ConfigResult r;
  r.config = "portfolio_t" + std::to_string(threads);
  r.threads = threads;
  r.inprocess = inprocess;

  sat::PortfolioConfig config;
  config.solvers = threads;
  config.inprocess = inprocess;
  sat::Portfolio portfolio(config, [&](sat::Solver& solver, std::size_t) {
    sat::encode_netlist(nl, solver);
    // Freeze exactly what the queries assume on, mirroring
    // NetlistOracle::declare_query_nets.
    for (const netlist::NetId n : nl.inputs()) solver.set_frozen(n);
    for (const netlist::NetId n : stream.query_nets) solver.set_frozen(n);
  });

  std::vector<sat::Portfolio::Query> queries;
  queries.reserve(stream.pairs.size());
  for (const auto& pair : stream.pairs) {
    sat::Portfolio::Query q;
    for (const auto& c : pair)
      q.assumptions.push_back(sat::mk_lit(c.net, /*negated=*/!c.value));
    queries.push_back(std::move(q));
  }

  util::ThreadPool pool(threads);
  util::Stopwatch watch;
  const auto results = portfolio.solve_batch(queries, &pool);
  r.queries_per_sec =
      static_cast<double>(stream.pairs.size()) / watch.elapsed_seconds();
  r.answers.reserve(results.size());
  for (const auto res : results)
    r.answers.push_back(res == sat::Solver::Result::Sat);
  if (share_out != nullptr) *share_out = portfolio.share_stats();
  return r;
}

/// Reads `path` if present and returns everything before a previous "sat"
/// block (or before the closing root brace), ready to have the block appended
/// after a comma. Empty return means "write a fresh root object".
std::string json_prefix(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream ss;
  ss << in.rdbuf();
  std::string content = ss.str();
  const std::string marker = "\n  \"sat\":";
  if (const auto sat_pos = content.find(marker); sat_pos != std::string::npos) {
    content.erase(sat_pos);
    while (!content.empty() && (content.back() == ',' || content.back() == ' '))
      content.pop_back();
    return content;
  }
  const auto brace = content.rfind('}');
  if (brace == std::string::npos) return {};
  content.erase(brace);
  while (!content.empty() &&
         (content.back() == '\n' || content.back() == ' ' || content.back() == '\t'))
    content.pop_back();
  return content;
}

int run_micro_sat(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_sim.json";
  const util::BenchMode mode = util::bench_mode_from_env();

  const std::string bench_name =
      mode == util::BenchMode::Quick ? "s13207_like" : "mips16_like";
  const std::size_t n_queries = mode == util::BenchMode::Quick ? 300 : 1500;

  const bench_gen::Benchmark bench = bench_gen::load_benchmark(bench_name);
  const netlist::Netlist& nl = bench.scan.comb;

  analysis::RareNetConfig rare_config;
  rare_config.threshold = 0.1;
  rare_config.sim_patterns = 1 << 12;
  util::Rng rare_rng(1);
  const auto rare = analysis::find_rare_nets(nl, rare_config, rare_rng);
  if (rare.size() < 2) {
    std::fprintf(stderr, "micro_sat: too few rare nets in %s\n", bench_name.c_str());
    return 1;
  }
  const QueryStream stream = make_queries(rare, n_queries);

  std::printf("micro_sat: %s, %zu gates, %zu rare nets, %zu pair queries (%s mode)\n",
              bench_name.c_str(), nl.gate_count(), rare.size(), stream.pairs.size(),
              util::to_string(mode));

  std::vector<ConfigResult> results;
  results.push_back(run_single(nl, stream, /*inprocess=*/false, "single_plain"));
  const double plain_rate = results[0].queries_per_sec;
  results.push_back(run_single(nl, stream, /*inprocess=*/true, "single_inprocess"));
  sat::Portfolio::ShareStats share;
  results.push_back(
      run_portfolio(nl, stream, /*threads=*/2, /*inprocess=*/true, nullptr));
  results.push_back(
      run_portfolio(nl, stream, /*threads=*/4, /*inprocess=*/true, &share));

  bool identical_results = true;
  std::size_t n_sat = 0;
  for (const bool sat : results[0].answers) n_sat += sat ? 1 : 0;
  for (auto& r : results) {
    r.speedup_vs_plain = r.queries_per_sec / plain_rate;
    identical_results = identical_results && r.answers == results[0].answers;
  }

  std::printf("\n%-18s %8s %10s %14s %10s\n", "config", "threads", "inprocess",
              "queries/s", "speedup");
  for (const auto& r : results)
    std::printf("%-18s %8zu %10s %14.1f %9.2fx\n", r.config.c_str(), r.threads,
                r.inprocess ? "on" : "off", r.queries_per_sec, r.speedup_vs_plain);
  std::printf("sat fraction: %.3f  clause exchange (t4): exported=%llu "
              "imported=%llu published=%llu dropped=%llu\n",
              static_cast<double>(n_sat) / static_cast<double>(n_queries),
              static_cast<unsigned long long>(share.exported),
              static_cast<unsigned long long>(share.imported),
              static_cast<unsigned long long>(share.published),
              static_cast<unsigned long long>(share.dropped));
  std::printf("results identical across configs: %s\n",
              identical_results ? "yes" : "NO — DIFFERENTIAL MISMATCH");

  const std::string prefix = json_prefix(out_path);
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_sat: cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  if (prefix.empty()) {
    std::fprintf(f, "{");
  } else {
    std::fprintf(f, "%s,", prefix.c_str());
  }
  std::fprintf(f, "\n  \"sat\": {\n");
  std::fprintf(f, "    \"benchmark\": \"%s\",\n", bench_name.c_str());
  std::fprintf(f, "    \"mode\": \"%s\",\n", util::to_string(mode));
  std::fprintf(f, "    \"gates\": %zu,\n", nl.gate_count());
  std::fprintf(f, "    \"rare_nets\": %zu,\n", rare.size());
  std::fprintf(f, "    \"queries\": %zu,\n", stream.pairs.size());
  std::fprintf(f, "    \"sat_fraction\": %.4f,\n",
               static_cast<double>(n_sat) / static_cast<double>(n_queries));
  std::fprintf(f, "    \"identical_results\": %s,\n",
               identical_results ? "true" : "false");
  std::fprintf(f, "    \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "      {\"config\": \"%s\", \"threads\": %zu, \"inprocess\": %s, "
                 "\"queries_per_sec\": %.6e, \"speedup_vs_plain\": %.4f}%s\n",
                 r.config.c_str(), r.threads, r.inprocess ? "true" : "false",
                 r.queries_per_sec, r.speedup_vs_plain,
                 i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f,
               "    \"share\": {\"exported\": %llu, \"imported\": %llu, "
               "\"published\": %llu, \"dropped\": %llu}\n",
               static_cast<unsigned long long>(share.exported),
               static_cast<unsigned long long>(share.imported),
               static_cast<unsigned long long>(share.published),
               static_cast<unsigned long long>(share.dropped));
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return identical_results ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_micro_sat(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "micro_sat: %s\n", e.what());
    return 1;
  }
}

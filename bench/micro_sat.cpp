// Micro-benchmarks: incremental SAT oracle throughput on netlist CNFs.
//
// Backs §3.3/§5 — the offline pairwise phase and the per-step compatibility
// checks issue tens of thousands of assumption-based queries against one
// solver instance; queries/sec is the figure of merit.
#include <benchmark/benchmark.h>

#include "analysis/rare_nets.hpp"
#include "bench_gen/library.hpp"
#include "sat/oracle.hpp"
#include "util/rng.hpp"

using namespace deterrent;

namespace {

struct OracleFixture {
  bench_gen::Benchmark bench;
  std::vector<analysis::RareNet> rare;

  explicit OracleFixture(const std::string& name)
      : bench(bench_gen::load_benchmark(name)) {
    util::Rng rng(1);
    rare = analysis::find_rare_nets(bench.scan.comb, {}, rng);
  }
};

void BM_PairQuery(benchmark::State& state, const std::string& name) {
  OracleFixture fx(name);
  if (fx.rare.size() < 2) {
    state.SkipWithError("too few rare nets");
    return;
  }
  sat::NetlistOracle oracle(fx.bench.scan.comb);
  util::Rng rng(3);
  for (auto _ : state) {
    const auto i = rng.below(fx.rare.size());
    auto j = rng.below(fx.rare.size());
    if (j == i) j = (j + 1) % fx.rare.size();
    const sat::Constraint cs[2] = {{fx.rare[i].net, fx.rare[i].rare_value},
                                   {fx.rare[j].net, fx.rare[j].rare_value}};
    benchmark::DoNotOptimize(oracle.satisfiable(cs));
  }
  state.counters["queries/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_PatternExtraction(benchmark::State& state, const std::string& name) {
  OracleFixture fx(name);
  const auto width = static_cast<std::size_t>(state.range(0));
  if (fx.rare.size() < width) {
    state.SkipWithError("too few rare nets");
    return;
  }
  sat::NetlistOracle oracle(fx.bench.scan.comb);
  util::Rng rng(5);
  std::vector<sat::Constraint> cs(width);
  for (auto _ : state) {
    const auto idx =
        rng.sample_indices(static_cast<std::uint32_t>(fx.rare.size()),
                           static_cast<std::uint32_t>(width));
    for (std::size_t k = 0; k < width; ++k)
      cs[k] = {fx.rare[idx[k]].net, fx.rare[idx[k]].rare_value};
    benchmark::DoNotOptimize(oracle.find_pattern(cs).has_value());
  }
  state.counters["patterns/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK_CAPTURE(BM_PairQuery, c2670_like, "c2670_like");
BENCHMARK_CAPTURE(BM_PairQuery, c6288_like, "c6288_like");
BENCHMARK_CAPTURE(BM_PairQuery, mips16_like, "mips16_like");
BENCHMARK_CAPTURE(BM_PatternExtraction, c6288_like, "c6288_like")->Arg(4)->Arg(12);
BENCHMARK_CAPTURE(BM_PatternExtraction, mips16_like, "mips16_like")->Arg(4);

BENCHMARK_MAIN();

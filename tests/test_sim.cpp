#include <gtest/gtest.h>

#include "bench_gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/scan.hpp"
#include "sim/pattern.hpp"
#include "sim/probability.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::sim {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

Netlist small_random(std::uint64_t seed, std::size_t gates = 120, std::size_t inputs = 10) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = inputs;
  p.n_outputs = 6;
  p.n_gates = gates;
  p.seed = seed;
  return bench_gen::generate_random_circuit(p);
}

// --------------------------------------------------------- PatternSet ------

TEST(PatternSet, PushAndReadBack) {
  PatternSet set(5);
  Pattern p(5);
  p.set(0);
  p.set(4);
  set.push(p);
  Pattern q(5);
  q.set(2);
  set.push(q);
  EXPECT_EQ(set.pattern_count(), 2u);
  EXPECT_TRUE(set.bit(0, 0));
  EXPECT_TRUE(set.bit(0, 4));
  EXPECT_FALSE(set.bit(0, 2));
  EXPECT_TRUE(set.bit(1, 2));
  EXPECT_EQ(set.pattern(0), p);
  EXPECT_EQ(set.pattern(1), q);
}

class PatternSetSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PatternSetSizes, BlockAndMaskConsistent) {
  const std::size_t n = GetParam();
  util::Rng rng(n + 1);
  const PatternSet set = PatternSet::random(7, n, rng);
  EXPECT_EQ(set.pattern_count(), n);
  EXPECT_EQ(set.block_count(), (n + 63) / 64);
  if (n == 0) return;
  std::size_t valid_total = 0;
  for (std::size_t b = 0; b < set.block_count(); ++b)
    valid_total += static_cast<std::size_t>(__builtin_popcountll(set.valid_mask(b)));
  EXPECT_EQ(valid_total, n);
}

INSTANTIATE_TEST_SUITE_P(BoundarySizes, PatternSetSizes,
                         ::testing::Values(0, 1, 2, 63, 64, 65, 127, 128, 129, 1000));

TEST(PatternSet, RandomIsDeterministic) {
  util::Rng a(5);
  util::Rng b(5);
  const auto s1 = PatternSet::random(11, 200, a);
  const auto s2 = PatternSet::random(11, 200, b);
  for (std::size_t p = 0; p < 200; ++p)
    for (std::size_t i = 0; i < 11; ++i) ASSERT_EQ(s1.bit(p, i), s2.bit(p, i));
}

TEST(PatternSet, RandomBitsBalanced) {
  util::Rng rng(6);
  const auto set = PatternSet::random(4, 20000, rng);
  for (std::size_t i = 0; i < 4; ++i) {
    std::size_t ones = 0;
    for (std::size_t p = 0; p < set.pattern_count(); ++p) ones += set.bit(p, i);
    EXPECT_NEAR(static_cast<double>(ones) / 20000.0, 0.5, 0.02);
  }
}

TEST(PatternSet, AppendAndTruncate) {
  util::Rng rng(7);
  auto a = PatternSet::random(6, 70, rng);
  const auto b = PatternSet::random(6, 10, rng);
  a.append(b);
  EXPECT_EQ(a.pattern_count(), 80u);
  EXPECT_EQ(a.pattern(75), b.pattern(5));
  a.truncate(3);
  EXPECT_EQ(a.pattern_count(), 3u);
  EXPECT_EQ(a.block_count(), 1u);
}

TEST(PatternSet, SetBit) {
  PatternSet set(3);
  set.push(Pattern(3));
  set.set_bit(0, 1, true);
  EXPECT_TRUE(set.bit(0, 1));
  set.set_bit(0, 1, false);
  EXPECT_FALSE(set.bit(0, 1));
}

// ---------------------------------------------------------- Simulator ------

TEST(Simulator, RejectsSequential) {
  NetlistBuilder b;
  const NetId a = b.add_input();
  const NetId q = b.add_dff(a);
  b.mark_output(q);
  const Netlist nl = b.build();
  EXPECT_THROW(Simulator{nl}, Error);
  EXPECT_THROW(evaluate_naive(nl, {false}), Error);
}

TEST(Simulator, SinglePatternMatchesTruth) {
  const Netlist nl = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = AND(a, b)\ny = NOT(n)\n");
  Simulator sim(nl);
  const NetId y = *nl.find("y");
  for (int a = 0; a <= 1; ++a)
    for (int bb = 0; bb <= 1; ++bb) {
      Pattern p(2);
      p.set(0, a);
      p.set(1, bb);
      const auto values = sim.simulate_pattern(p);
      EXPECT_EQ(values[y], !(a && bb));
    }
}

/// Property: the bit-parallel engine agrees with the scalar reference on
/// random circuits and random stimulus, lane by lane.
class SimEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimEquivalence, BitParallelMatchesNaive) {
  const Netlist nl = small_random(GetParam());
  Simulator sim(nl);
  util::Rng rng(GetParam() * 31 + 7);
  const auto patterns = PatternSet::random(nl.inputs().size(), 130, rng);

  sim.simulate(patterns, [&](std::size_t block, std::uint64_t valid_mask,
                             std::span<const std::uint64_t> values) {
    for (int lane = 0; lane < 64; ++lane) {
      if (!((valid_mask >> lane) & 1ULL)) continue;
      const std::size_t pat = block * 64 + static_cast<std::size_t>(lane);
      std::vector<bool> inputs(nl.inputs().size());
      for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = patterns.bit(pat, i);
      const auto expected = evaluate_naive(nl, inputs);
      for (NetId id = 0; id < nl.net_count(); ++id)
        ASSERT_EQ(((values[id] >> lane) & 1ULL) != 0, expected[id])
            << "net " << id << " pattern " << pat;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, SimEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Simulator, ScanViewSimulatesSequentialDesign) {
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId q = b.add_dff(netlist::kNoNet, "q");
  const NetId x = b.add_gate(GateType::Xor, {a, q}, "x");
  b.set_dff_input(q, x);
  b.mark_output(x);
  const auto view = netlist::make_full_scan(b.build());
  Simulator sim(view.comb);
  // inputs: [a, q] in id order; x = a ^ q.
  Pattern p(2);
  p.set(0, true);
  p.set(1, true);
  EXPECT_FALSE(sim.simulate_pattern(p)[x]);
  p.set(1, false);
  EXPECT_TRUE(sim.simulate_pattern(p)[x]);
}

// ------------------------------------------------------- probability -------

TEST(Probability, ExactOnAndChain) {
  // y = a & b & c & d: P(y=1) = 1/16.
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(b.add_input());
  const NetId y = b.add_gate(GateType::And, ins, "y");
  b.mark_output(y);
  const Netlist nl = b.build();
  const auto stats = exact_signal_stats(nl);
  EXPECT_EQ(stats.pattern_count, 16u);
  EXPECT_DOUBLE_EQ(stats.prob_one(y), 1.0 / 16.0);
  for (const NetId in : nl.inputs()) EXPECT_DOUBLE_EQ(stats.prob_one(in), 0.5);
}

TEST(Probability, ExactOnXorTree) {
  // XOR of independent uniform bits stays uniform.
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(b.add_input());
  const NetId y = b.add_gate(GateType::Xor, ins, "y");
  b.mark_output(y);
  const auto stats = exact_signal_stats(b.build());
  EXPECT_DOUBLE_EQ(stats.prob_one(y), 0.5);
}

TEST(Probability, EstimateConvergesToExact) {
  const Netlist nl = small_random(42, 150, 8);
  const auto exact = exact_signal_stats(nl);
  util::Rng rng(1);
  const auto est = estimate_signal_stats(nl, 1 << 15, rng);
  for (NetId id = 0; id < nl.net_count(); ++id)
    EXPECT_NEAR(est.prob_one(id), exact.prob_one(id), 0.02) << "net " << id;
}

TEST(Probability, ThreadedEstimateIsDeterministic) {
  const Netlist nl = small_random(43, 200, 12);
  util::ThreadPool pool(4);
  util::Rng rng1(5);
  util::Rng rng2(5);
  const auto seq = estimate_signal_stats(nl, 4096, rng1, nullptr);
  const auto par = estimate_signal_stats(nl, 4096, rng2, &pool);
  ASSERT_EQ(seq.ones.size(), par.ones.size());
  for (std::size_t i = 0; i < seq.ones.size(); ++i) EXPECT_EQ(seq.ones[i], par.ones[i]);
}

TEST(Probability, StatsForGivenPatterns) {
  const Netlist nl = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  PatternSet set(2);
  for (int a = 0; a <= 1; ++a)
    for (int bb = 0; bb <= 1; ++bb) {
      Pattern p(2);
      p.set(0, a);
      p.set(1, bb);
      set.push(p);
    }
  const auto stats = signal_stats_for_patterns(nl, set);
  EXPECT_EQ(stats.pattern_count, 4u);
  EXPECT_EQ(stats.ones[*nl.find("y")], 1u);
}

TEST(Probability, ZeroPatterns) {
  const Netlist nl = small_random(44, 50, 6);
  util::Rng rng(3);
  const auto stats = estimate_signal_stats(nl, 0, rng);
  EXPECT_EQ(stats.pattern_count, 0u);
  EXPECT_DOUBLE_EQ(stats.prob_one(0), 0.0);
}

TEST(Probability, NonMultipleOf64PatternCount) {
  const Netlist nl = small_random(45, 60, 6);
  util::Rng rng(4);
  const auto stats = estimate_signal_stats(nl, 100, rng);
  EXPECT_EQ(stats.pattern_count, 100u);
  for (const NetId in : nl.inputs()) EXPECT_LE(stats.ones[in], 100u);
}

TEST(Probability, ExactMatchesExplicitEnumerationAcrossBatches) {
  // 12 inputs = 4096 assignments = 64 blocks: exercises multiple full W-word
  // engine passes of the batched enumerator. The explicitly constructed
  // exhaustive pattern set is the ground truth.
  const Netlist nl = small_random(46, 180, 12);
  const std::size_t n_inputs = nl.inputs().size();
  PatternSet all(n_inputs);
  for (std::size_t v = 0; v < (std::size_t{1} << n_inputs); ++v) {
    Pattern p(n_inputs);
    for (std::size_t i = 0; i < n_inputs; ++i) p.set(i, (v >> i) & 1);
    all.push(p);
  }
  const auto exact = exact_signal_stats(nl);
  const auto reference = signal_stats_for_patterns(nl, all);
  ASSERT_EQ(exact.pattern_count, reference.pattern_count);
  for (NetId id = 0; id < nl.net_count(); ++id)
    EXPECT_EQ(exact.ones[id], reference.ones[id]) << "net " << id;
}

TEST(Probability, ExactHandlesPartialFinalBlock) {
  // 5 inputs = 32 assignments — less than one 64-lane block; the lane mask
  // must exclude the unused upper lanes.
  const Netlist nl = small_random(47, 60, 5);
  const auto exact = exact_signal_stats(nl);
  EXPECT_EQ(exact.pattern_count, 32u);
  for (const NetId in : nl.inputs()) EXPECT_EQ(exact.ones[in], 16u);
}

}  // namespace
}  // namespace deterrent::sim

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "netlist/bench_io.hpp"
#include "netlist/gate.hpp"
#include "netlist/netlist.hpp"
#include "netlist/scan.hpp"
#include "netlist/stats.hpp"
#include "netlist/verilog_io.hpp"
#include "util/rng.hpp"

namespace deterrent::netlist {
namespace {

// --------------------------------------------------- gate evaluation -------

struct TruthCase {
  GateType type;
  std::vector<char> inputs;  // contiguous bools (std::vector<bool> is packed)
  bool expected;
};

class GateTruth : public ::testing::TestWithParam<TruthCase> {};

TEST_P(GateTruth, BoolMatches) {
  const auto& c = GetParam();
  const auto buf = std::make_unique<bool[]>(std::max<std::size_t>(1, c.inputs.size()));
  for (std::size_t i = 0; i < c.inputs.size(); ++i) buf[i] = c.inputs[i] != 0;
  EXPECT_EQ(eval_bool(c.type, std::span<const bool>(buf.get(), c.inputs.size())),
            c.expected);
}

TEST_P(GateTruth, WordMatchesBoolOnAllLanes) {
  const auto& c = GetParam();
  std::vector<std::uint64_t> words(c.inputs.size());
  for (std::size_t i = 0; i < c.inputs.size(); ++i)
    words[i] = c.inputs[i] ? ~0ULL : 0ULL;
  const std::uint64_t out = eval_word(c.type, words);
  EXPECT_EQ(out, c.expected ? ~0ULL : 0ULL);
}

INSTANTIATE_TEST_SUITE_P(
    TruthTables, GateTruth,
    ::testing::Values(
        TruthCase{GateType::Buf, {false}, false}, TruthCase{GateType::Buf, {true}, true},
        TruthCase{GateType::Not, {false}, true}, TruthCase{GateType::Not, {true}, false},
        TruthCase{GateType::And, {false, false}, false},
        TruthCase{GateType::And, {true, false}, false},
        TruthCase{GateType::And, {true, true}, true},
        TruthCase{GateType::And, {true, true, true}, true},
        TruthCase{GateType::And, {true, true, false}, false},
        TruthCase{GateType::Nand, {true, true}, false},
        TruthCase{GateType::Nand, {true, false}, true},
        TruthCase{GateType::Or, {false, false}, false},
        TruthCase{GateType::Or, {false, true}, true},
        TruthCase{GateType::Or, {false, false, true}, true},
        TruthCase{GateType::Nor, {false, false}, true},
        TruthCase{GateType::Nor, {true, false}, false},
        TruthCase{GateType::Xor, {false, true}, true},
        TruthCase{GateType::Xor, {true, true}, false},
        TruthCase{GateType::Xor, {true, true, true}, true},
        TruthCase{GateType::Xor, {true, true, false, true}, true},
        TruthCase{GateType::Xnor, {true, true}, true},
        TruthCase{GateType::Xnor, {true, false}, false},
        TruthCase{GateType::Xnor, {true, true, true}, false},
        TruthCase{GateType::Const0, {}, false}, TruthCase{GateType::Const1, {}, true}));

TEST(GateEval, WordMixedLanes) {
  // lane k of inputs: a = k&1, b = k&2.
  const std::uint64_t a = 0xAAAAAAAAAAAAAAAAULL;  // alternating
  const std::uint64_t b = 0xCCCCCCCCCCCCCCCCULL;
  std::vector<std::uint64_t> in{a, b};
  EXPECT_EQ(eval_word(GateType::And, in), a & b);
  EXPECT_EQ(eval_word(GateType::Or, in), a | b);
  EXPECT_EQ(eval_word(GateType::Xor, in), a ^ b);
  EXPECT_EQ(eval_word(GateType::Nand, in), ~(a & b));
  EXPECT_EQ(eval_word(GateType::Nor, in), ~(a | b));
  EXPECT_EQ(eval_word(GateType::Xnor, in), ~(a ^ b));
}

TEST(GateMeta, FaninBounds) {
  EXPECT_EQ(fanin_bounds(GateType::Input).max, 0u);
  EXPECT_EQ(fanin_bounds(GateType::Not).min, 1u);
  EXPECT_EQ(fanin_bounds(GateType::Not).max, 1u);
  EXPECT_EQ(fanin_bounds(GateType::And).min, 1u);
  EXPECT_EQ(fanin_bounds(GateType::And).max, 0u);  // unbounded
  EXPECT_EQ(fanin_bounds(GateType::Dff).min, 1u);
}

TEST(GateMeta, Classification) {
  EXPECT_TRUE(is_combinational_source(GateType::Input));
  EXPECT_TRUE(is_combinational_source(GateType::Dff));
  EXPECT_TRUE(is_combinational_source(GateType::Const0));
  EXPECT_FALSE(is_combinational_source(GateType::And));
  EXPECT_TRUE(is_combinational_cell(GateType::And));
  EXPECT_FALSE(is_combinational_cell(GateType::Input));
  EXPECT_FALSE(is_combinational_cell(GateType::Dff));
}

// -------------------------------------------------------- builder ----------

TEST(Builder, SimpleAndGate) {
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId c = b.add_input("b");
  const NetId y = b.add_gate(GateType::And, {a, c}, "y");
  b.mark_output(y);
  const Netlist nl = b.build();
  EXPECT_EQ(nl.net_count(), 3u);
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.type(y), GateType::And);
  ASSERT_EQ(nl.fanins(y).size(), 2u);
  EXPECT_EQ(nl.fanins(y)[0], a);
  EXPECT_EQ(nl.level(y), 1u);
  EXPECT_EQ(nl.level(a), 0u);
}

TEST(Builder, FindByName) {
  NetlistBuilder b;
  const NetId a = b.add_input("alpha");
  b.mark_output(b.add_gate(GateType::Not, {a}, "omega"));
  const Netlist nl = b.build();
  EXPECT_EQ(nl.find("alpha"), std::optional<NetId>(a));
  EXPECT_TRUE(nl.find("omega").has_value());
  EXPECT_FALSE(nl.find("missing").has_value());
}

TEST(Builder, ForwardDeclarationResolved) {
  NetlistBuilder b;
  const NetId y = b.declare("y");  // used before definition
  const NetId a = b.add_input("a");
  const NetId z = b.add_gate(GateType::Not, {y}, "z");
  b.define_gate(y, GateType::Buf, {a});
  b.mark_output(z);
  const Netlist nl = b.build();
  EXPECT_EQ(nl.type(y), GateType::Buf);
  EXPECT_EQ(nl.level(z), 2u);
}

TEST(Builder, UndefinedNetThrows) {
  NetlistBuilder b;
  b.declare("ghost");
  EXPECT_THROW(b.build(), Error);
}

TEST(Builder, DoubleDefinitionThrows) {
  NetlistBuilder b;
  const NetId y = b.declare("y");
  b.define_input(y);
  EXPECT_THROW(b.define_input(y), Error);
}

TEST(Builder, ArityViolationThrows) {
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId c = b.add_input("b");
  const NetId bad = b.declare("bad");
  b.define_gate(bad, GateType::Not, {a, c});  // NOT with two fanins
  EXPECT_THROW(b.build(), Error);
}

TEST(Builder, CombinationalCycleThrows) {
  NetlistBuilder b;
  const NetId x = b.declare("x");
  const NetId y = b.declare("y");
  b.define_gate(x, GateType::Not, {y});
  b.define_gate(y, GateType::Not, {x});
  EXPECT_THROW(b.build(), Error);
}

TEST(Builder, DffBreaksCycle) {
  // x = NOT(q); q = DFF(x)  — legal sequential feedback.
  NetlistBuilder b;
  const NetId q = b.add_dff(kNoNet, "q");
  const NetId x = b.add_gate(GateType::Not, {q}, "x");
  b.set_dff_input(q, x);
  b.mark_output(x);
  const Netlist nl = b.build();
  EXPECT_TRUE(nl.is_sequential());
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_EQ(nl.fanins(q)[0], x);
}

TEST(Builder, DanglingDffInputThrows) {
  NetlistBuilder b;
  b.add_dff(kNoNet, "q");  // data input never set
  EXPECT_THROW(b.build(), Error);
}

TEST(Builder, TopoOrderRespectsDependencies) {
  util::Rng rng(5);
  NetlistBuilder b;
  std::vector<NetId> nets;
  for (int i = 0; i < 10; ++i) nets.push_back(b.add_input());
  for (int i = 0; i < 200; ++i) {
    const NetId f1 = nets[rng.below(nets.size())];
    const NetId f2 = nets[rng.below(nets.size())];
    nets.push_back(b.add_gate(f1 == f2 ? GateType::Not : GateType::And,
                              f1 == f2 ? std::vector<NetId>{f1}
                                       : std::vector<NetId>{f1, f2}));
  }
  b.mark_output(nets.back());
  const Netlist nl = b.build();

  std::vector<std::size_t> position(nl.net_count());
  const auto order = nl.topo_order();
  ASSERT_EQ(order.size(), nl.net_count());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (NetId id = 0; id < nl.net_count(); ++id)
    for (const NetId f : nl.fanins(id))
      EXPECT_LT(position[f], position[id]) << "net " << id;
}

TEST(Builder, FanoutsAreInverseOfFanins) {
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId y1 = b.add_gate(GateType::Not, {a});
  const NetId y2 = b.add_gate(GateType::Buf, {a});
  const NetId y3 = b.add_gate(GateType::And, {y1, y2});
  b.mark_output(y3);
  const Netlist nl = b.build();
  const auto fo = nl.fanouts(a);
  EXPECT_EQ(fo.size(), 2u);
  EXPECT_EQ(nl.fanouts(y3).size(), 0u);
}

TEST(Builder, GateCountExcludesInputsAndDffs) {
  NetlistBuilder b;
  const NetId a = b.add_input();
  const NetId q = b.add_dff(a);
  const NetId y = b.add_gate(GateType::Not, {q});
  b.mark_output(y);
  const Netlist nl = b.build();
  EXPECT_EQ(nl.gate_count(), 1u);
  EXPECT_EQ(nl.net_count(), 3u);
}

// ------------------------------------------------------------ scan ---------

TEST(Scan, CombinationalIsIdentity) {
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId y = b.add_gate(GateType::Not, {a}, "y");
  b.mark_output(y);
  const Netlist nl = b.build();
  const ScanView view = make_full_scan(nl);
  EXPECT_EQ(view.comb.net_count(), nl.net_count());
  EXPECT_TRUE(view.pseudo_inputs.empty());
  EXPECT_EQ(view.comb.inputs().size(), 1u);
  EXPECT_EQ(view.comb.outputs().size(), 1u);
}

TEST(Scan, DffsBecomePseudoInputsAndOutputs) {
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId q = b.add_dff(kNoNet, "q");
  const NetId x = b.add_gate(GateType::Xor, {a, q}, "x");
  b.set_dff_input(q, x);
  b.mark_output(x);
  const Netlist nl = b.build();

  const ScanView view = make_full_scan(nl);
  EXPECT_FALSE(view.comb.is_sequential());
  ASSERT_EQ(view.pseudo_inputs.size(), 1u);
  EXPECT_EQ(view.pseudo_inputs[0], q);  // ids preserved
  ASSERT_EQ(view.pseudo_outputs.size(), 1u);
  EXPECT_EQ(view.pseudo_outputs[0], x);
  EXPECT_EQ(view.comb.type(q), GateType::Input);
  EXPECT_EQ(view.comb.inputs().size(), 2u);
  // Original output plus the pseudo output (x twice is legal: once PO, once D).
  EXPECT_EQ(view.comb.outputs().size(), 2u);
}

TEST(Scan, IdStabilityOnLargerDesign) {
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(b.add_input());
  std::vector<NetId> qs;
  for (int i = 0; i < 4; ++i) qs.push_back(b.add_dff(kNoNet));
  std::vector<NetId> gates;
  for (int i = 0; i < 30; ++i) {
    const NetId f1 = i % 2 ? ins[i % 8] : qs[i % 4];
    const NetId f2 = ins[(i * 3) % 8];
    gates.push_back(b.add_gate(f1 == f2 ? GateType::Not : GateType::Nand,
                               f1 == f2 ? std::vector<NetId>{f1}
                                        : std::vector<NetId>{f1, f2}));
  }
  for (std::size_t i = 0; i < qs.size(); ++i) b.set_dff_input(qs[i], gates[20 + i]);
  b.mark_output(gates.back());
  const Netlist nl = b.build();
  const ScanView view = make_full_scan(nl);
  for (NetId id = 0; id < nl.net_count(); ++id) {
    if (nl.type(id) == GateType::Dff) {
      EXPECT_EQ(view.comb.type(id), GateType::Input);
    } else {
      EXPECT_EQ(view.comb.type(id), nl.type(id));
    }
  }
}

// -------------------------------------------------------- bench I/O --------

constexpr const char* kC17 = R"(# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
)";

TEST(BenchIO, ParsesC17) {
  const Netlist nl = read_bench_string(kC17);
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.gate_count(), 6u);
  const auto g22 = nl.find("G22");
  ASSERT_TRUE(g22.has_value());
  EXPECT_EQ(nl.type(*g22), GateType::Nand);
}

TEST(BenchIO, UsesBeforeDefinitions) {
  const Netlist nl = read_bench_string(
      "OUTPUT(y)\ny = AND(a, b)\nINPUT(a)\nINPUT(b)\n");
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.gate_count(), 1u);
}

TEST(BenchIO, ParsesDffAndConstants) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(q)\nq = DFF(n1)\nn1 = XOR(a, q)\nz = CONST0()\n"
      "o = VDD()\n");
  EXPECT_TRUE(nl.is_sequential());
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_EQ(nl.type(*nl.find("z")), GateType::Const0);
  EXPECT_EQ(nl.type(*nl.find("o")), GateType::Const1);
}

TEST(BenchIO, AcceptsAliases) {
  const Netlist nl = read_bench_string(
      "INPUT(a)\nOUTPUT(y)\nn = INV(a)\ny = BUFF(n)\n");
  EXPECT_EQ(nl.type(*nl.find("n")), GateType::Not);
  EXPECT_EQ(nl.type(*nl.find("y")), GateType::Buf);
}

TEST(BenchIO, MalformedLineThrowsWithLineNumber) {
  try {
    read_bench_string("INPUT(a)\ny = FROB(a)\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(BenchIO, UnbalancedParenThrows) {
  EXPECT_THROW(read_bench_string("INPUT(a\n"), Error);
  EXPECT_THROW(read_bench_string("INPUT(a)\ny = AND a, a)\n"), Error);
}

TEST(BenchIO, UndefinedNetThrows) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"), Error);
}

TEST(BenchIO, RoundTripPreservesStructure) {
  const Netlist original = read_bench_string(kC17);
  const Netlist reparsed = read_bench_string(write_bench_string(original));
  EXPECT_EQ(reparsed.net_count(), original.net_count());
  EXPECT_EQ(reparsed.gate_count(), original.gate_count());
  EXPECT_EQ(reparsed.inputs().size(), original.inputs().size());
  EXPECT_EQ(reparsed.outputs().size(), original.outputs().size());
  // Same names, same types, same fanin names.
  for (NetId id = 0; id < original.net_count(); ++id) {
    const auto other = reparsed.find(original.name(id));
    ASSERT_TRUE(other.has_value()) << original.name(id);
    EXPECT_EQ(reparsed.type(*other), original.type(id));
    EXPECT_EQ(reparsed.fanins(*other).size(), original.fanins(id).size());
  }
}

TEST(BenchIO, RoundTripSequential) {
  const char* src =
      "INPUT(a)\nOUTPUT(x)\nq = DFF(x)\nx = XOR(a, q)\n";
  const Netlist original = read_bench_string(src);
  const Netlist reparsed = read_bench_string(write_bench_string(original));
  EXPECT_TRUE(reparsed.is_sequential());
  EXPECT_EQ(reparsed.dffs().size(), 1u);
}

// ------------------------------------------------------ verilog I/O --------

TEST(VerilogIO, EmitsModuleWithPorts) {
  const Netlist nl = read_bench_string(kC17);
  const std::string v = write_verilog_string(nl, "c17");
  EXPECT_NE(v.find("module c17"), std::string::npos);
  EXPECT_NE(v.find("input G1;"), std::string::npos);
  EXPECT_NE(v.find("nand"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_EQ(v.find("always"), std::string::npos);  // combinational: no clk
}

TEST(VerilogIO, SequentialGetsClockAndAlways) {
  const Netlist nl =
      read_bench_string("INPUT(a)\nOUTPUT(x)\nq = DFF(x)\nx = XOR(a, q)\n");
  const std::string v = write_verilog_string(nl, "seq");
  EXPECT_NE(v.find("input clk;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
}

// ----------------------------------------------------------- stats ---------

TEST(Stats, CountsByType) {
  const Netlist nl = read_bench_string(kC17);
  const NetlistStats stats = compute_stats(nl);
  EXPECT_EQ(stats.gate_count, 6u);
  EXPECT_EQ(stats.input_count, 5u);
  EXPECT_EQ(stats.output_count, 2u);
  EXPECT_EQ(stats.count_by_type[static_cast<std::size_t>(GateType::Nand)], 6u);
  EXPECT_EQ(stats.max_level, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_fanin, 2.0);
  EXPECT_FALSE(stats.to_string().empty());
}

}  // namespace
}  // namespace deterrent::netlist

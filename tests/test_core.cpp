#include <gtest/gtest.h>

#include "bench_gen/random_circuit.hpp"
#include "core/compatible_set_env.hpp"
#include "core/deterrent.hpp"
#include "core/set_pool.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::core {
namespace {

using analysis::CompatibilityMatrix;
using analysis::RareNet;
using netlist::Netlist;

struct Fixture {
  Netlist netlist;
  std::vector<RareNet> rare;
  CompatibilityMatrix matrix;
};

Fixture make_fixture(std::uint64_t seed, std::size_t gates = 220,
                     double threshold = 0.15) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 16;
  p.n_outputs = 8;
  p.n_gates = gates;
  p.seed = seed;
  Fixture f{bench_gen::generate_random_circuit(p), {}, {}};
  util::Rng rng(seed * 3 + 1);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = threshold;
  rcfg.sim_patterns = 1 << 13;
  f.rare = analysis::find_rare_nets(f.netlist, rcfg, rng);
  f.matrix = analysis::build_compatibility(f.netlist, f.rare, {}, rng);
  return f;
}

// ------------------------------------------------------------ set pool -----

TEST(SetPool, DeduplicatesAndTracksMax) {
  DistinctSetPool pool;
  util::BitVec a(10);
  a.set(1);
  a.set(2);
  util::BitVec b(10);
  b.set(3);
  pool.add(a);
  pool.add(a);  // duplicate
  pool.add(b);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.max_set_size(), 2u);
}

TEST(SetPool, IgnoresEmptySets) {
  DistinctSetPool pool;
  pool.add(util::BitVec(10));
  EXPECT_EQ(pool.size(), 0u);
}

TEST(SetPool, KLargestOrdering) {
  DistinctSetPool pool;
  for (std::size_t size : {1u, 4u, 2u, 5u, 3u}) {
    util::BitVec bv(16);
    for (std::size_t i = 0; i < size; ++i) bv.set(i + size);  // distinct contents
    pool.add(bv);
  }
  const auto top3 = pool.k_largest(3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].count(), 5u);
  EXPECT_EQ(top3[1].count(), 4u);
  EXPECT_EQ(top3[2].count(), 3u);
  EXPECT_EQ(pool.k_largest(100).size(), 5u);
}

TEST(SetPool, ThreadSafeAdds) {
  DistinctSetPool pool;
  util::ThreadPool threads(4);
  threads.parallel_for(400, [&pool](std::size_t i) {
    util::BitVec bv(64);
    bv.set(i % 64);
    pool.add(bv);
  });
  EXPECT_EQ(pool.size(), 64u);
}

// ------------------------------------------------------ env transitions ----

TEST(Env, ResetGivesSingletonObservation) {
  const Fixture f = make_fixture(31);
  if (f.rare.size() < 4) GTEST_SKIP();
  CompatibleSetEnv env(f.netlist, f.rare, f.matrix, {}, nullptr);
  util::Rng rng(1);
  const auto obs = env.reset(rng);
  EXPECT_EQ(obs.size(), f.rare.size());
  EXPECT_EQ(env.members().size(), 1u);
  std::size_t ones = 0;
  for (const float v : obs) ones += v == 1.0f;
  EXPECT_EQ(ones, 1u);
}

TEST(Env, MaskExcludesMembersAndIncompatibles) {
  const Fixture f = make_fixture(32);
  if (f.rare.size() < 4) GTEST_SKIP();
  CompatibleSetEnv env(f.netlist, f.rare, f.matrix, {}, nullptr);
  util::Rng rng(2);
  env.reset(rng);
  const std::uint32_t start = env.members()[0];
  const auto& mask = env.action_mask();
  EXPECT_FALSE(mask.test(start));
  for (std::size_t a = 0; a < f.rare.size(); ++a)
    if (mask.test(a))
      EXPECT_TRUE(f.matrix.compatible(start, static_cast<std::uint32_t>(a)));
}

TEST(Env, AllStepsRewardIsSquaredSize) {
  const Fixture f = make_fixture(33);
  if (f.rare.size() < 4) GTEST_SKIP();
  EnvConfig cfg;
  cfg.reward_mode = RewardMode::AllSteps;
  CompatibleSetEnv env(f.netlist, f.rare, f.matrix, cfg, nullptr);
  util::Rng rng(3);
  env.reset(rng);
  float expected_sq = 4.0f;  // |s|=2 after first accepted action
  while (true) {
    const auto& mask = env.action_mask();
    if (mask.none()) break;
    const auto action = static_cast<std::uint32_t>(mask.find_first());
    const std::size_t before = env.members().size();
    const auto step = env.step(action);
    if (env.members().size() > before) {
      EXPECT_EQ(step.reward, expected_sq);
      const float next = static_cast<float>(env.members().size() + 1);
      expected_sq = next * next;
    } else {
      EXPECT_EQ(step.reward, 0.0f);
    }
    if (step.done) break;
  }
}

TEST(Env, AllStepsMembersAlwaysJointlySatisfiable) {
  const Fixture f = make_fixture(34);
  if (f.rare.size() < 4) GTEST_SKIP();
  CompatibleSetEnv env(f.netlist, f.rare, f.matrix, {}, nullptr);
  sat::NetlistOracle oracle(f.netlist);
  util::Rng rng(4);
  for (int episode = 0; episode < 5; ++episode) {
    env.reset(rng);
    while (true) {
      const auto& mask = env.action_mask();
      if (mask.none()) break;
      // pick a random allowed action
      const auto indices = mask.to_indices();
      const auto action = indices[rng.below(indices.size())];
      const auto step = env.step(action);
      std::vector<sat::Constraint> cs;
      for (const auto m : env.members()) cs.push_back({f.rare[m].net, f.rare[m].rare_value});
      ASSERT_TRUE(oracle.satisfiable(cs)) << "episode " << episode;
      if (step.done) break;
    }
  }
}

TEST(Env, EpisodeEndsWhenMaskExhaustedOrMaxSteps) {
  const Fixture f = make_fixture(35);
  if (f.rare.size() < 4) GTEST_SKIP();
  EnvConfig cfg;
  cfg.max_steps = 3;
  CompatibleSetEnv env(f.netlist, f.rare, f.matrix, cfg, nullptr);
  util::Rng rng(5);
  env.reset(rng);
  int steps = 0;
  bool done = false;
  while (!done && steps < 100) {
    const auto& mask = env.action_mask();
    if (mask.none()) break;
    done = env.step(static_cast<std::uint32_t>(mask.find_first())).done;
    ++steps;
  }
  EXPECT_TRUE(done || steps <= 3);
  EXPECT_LE(steps, 3);
}

TEST(Env, FinalSetsLandInPool) {
  const Fixture f = make_fixture(36);
  if (f.rare.size() < 4) GTEST_SKIP();
  DistinctSetPool pool;
  CompatibleSetEnv env(f.netlist, f.rare, f.matrix, {}, &pool);
  util::Rng rng(6);
  for (int e = 0; e < 3; ++e) {
    env.reset(rng);
    while (true) {
      const auto& mask = env.action_mask();
      if (mask.none()) break;
      if (env.step(static_cast<std::uint32_t>(mask.find_first())).done) break;
    }
  }
  EXPECT_GT(pool.size(), 0u);
  EXPECT_GE(pool.max_set_size(), 1u);
}

TEST(Env, EndOfEpisodeRewardOnlyAtTerminal) {
  const Fixture f = make_fixture(37);
  if (f.rare.size() < 4) GTEST_SKIP();
  EnvConfig cfg;
  cfg.reward_mode = RewardMode::EndOfEpisode;
  DistinctSetPool pool;
  CompatibleSetEnv env(f.netlist, f.rare, f.matrix, cfg, &pool);
  sat::NetlistOracle oracle(f.netlist);
  util::Rng rng(7);
  env.reset(rng);
  float final_reward = 0.0f;
  while (true) {
    const auto& mask = env.action_mask();
    if (mask.none()) break;
    const auto step = env.step(static_cast<std::uint32_t>(mask.find_first()));
    if (!step.done) {
      EXPECT_EQ(step.reward, 0.0f);
    } else {
      final_reward = step.reward;
      break;
    }
  }
  const auto n = static_cast<float>(env.members().size());
  EXPECT_EQ(final_reward, n * n);
  // The verified prefix must be jointly satisfiable.
  std::vector<sat::Constraint> cs;
  for (const auto m : env.members()) cs.push_back({f.rare[m].net, f.rare[m].rare_value});
  EXPECT_TRUE(oracle.satisfiable(cs));
}

TEST(Env, EndOfEpisodeUsesFarFewerSatQueries) {
  const Fixture f = make_fixture(38, 300);
  if (f.rare.size() < 8) GTEST_SKIP();
  EnvConfig all_steps;
  all_steps.reward_mode = RewardMode::AllSteps;
  EnvConfig eoe;
  eoe.reward_mode = RewardMode::EndOfEpisode;
  CompatibleSetEnv env_all(f.netlist, f.rare, f.matrix, all_steps, nullptr);
  CompatibleSetEnv env_eoe(f.netlist, f.rare, f.matrix, eoe, nullptr);

  auto run = [](CompatibleSetEnv& env, util::Rng& rng) {
    for (int e = 0; e < 3; ++e) {
      env.reset(rng);
      while (true) {
        const auto& mask = env.action_mask();
        if (mask.none()) break;
        if (env.step(static_cast<std::uint32_t>(mask.find_first())).done) break;
      }
    }
  };
  util::Rng rng1(8);
  util::Rng rng2(8);
  run(env_all, rng1);
  run(env_eoe, rng2);
  EXPECT_LT(env_eoe.sat_queries(), env_all.sat_queries())
      << "end-of-episode mode must issue fewer SAT calls (Table 1's point)";
}

/// The simulation-witness shortcut (phase-1 signatures answering joint
/// satisfiability checks) must leave every observable — rewards, members,
/// terminal states — bit-identical, and only reduce SAT traffic. (Exact
/// equivalence assumes the SAT conflict budget never trips, which holds on
/// these small fixtures; see EnvConfig::witness_signatures.)
TEST(Env, WitnessSignaturesPreserveResultsAndCutSatQueries) {
  const Fixture f = make_fixture(40, 300);
  if (f.rare.size() < 8) GTEST_SKIP();
  util::Rng sig_rng(40 * 3 + 1);
  const auto signatures =
      analysis::rare_activation_signatures(f.netlist, f.rare, 1 << 13, sig_rng);

  for (const RewardMode mode : {RewardMode::AllSteps, RewardMode::EndOfEpisode}) {
    EnvConfig plain;
    plain.reward_mode = mode;
    EnvConfig witnessed = plain;
    witnessed.witness_signatures = &signatures;
    CompatibleSetEnv env_plain(f.netlist, f.rare, f.matrix, plain, nullptr);
    CompatibleSetEnv env_wit(f.netlist, f.rare, f.matrix, witnessed, nullptr);

    util::Rng rng1(9);
    util::Rng rng2(9);
    for (int e = 0; e < 3; ++e) {
      ASSERT_EQ(env_plain.reset(rng1), env_wit.reset(rng2));
      while (true) {
        const auto& mask = env_plain.action_mask();
        ASSERT_EQ(mask, env_wit.action_mask());
        if (mask.none()) break;
        const auto action = static_cast<std::uint32_t>(mask.find_first());
        const auto step_plain = env_plain.step(action);
        const auto step_wit = env_wit.step(action);
        ASSERT_EQ(step_plain.reward, step_wit.reward);
        ASSERT_EQ(step_plain.done, step_wit.done);
        ASSERT_EQ(step_plain.observation, step_wit.observation);
        if (step_plain.done) break;
      }
      ASSERT_EQ(std::vector<std::uint32_t>(env_plain.members().begin(),
                                           env_plain.members().end()),
                std::vector<std::uint32_t>(env_wit.members().begin(),
                                           env_wit.members().end()));
    }
    EXPECT_LE(env_wit.sat_queries(), env_plain.sat_queries());
    EXPECT_GT(env_wit.witness_hits(), 0u)
        << "witness shortcut never fired in mode " << static_cast<int>(mode);
  }
}

/// Theorem 3.1 as an executable property: every action accepted by an
/// unmasked agent is available to (and accepted by) the masked agent from
/// the same start state.
TEST(Env, MaskingTheorem) {
  const Fixture f = make_fixture(39, 260);
  if (f.rare.size() < 6) GTEST_SKIP();
  EnvConfig unmasked;
  unmasked.mask_mode = MaskMode::None;
  EnvConfig masked;
  masked.mask_mode = MaskMode::Pairwise;

  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    CompatibleSetEnv env_u(f.netlist, f.rare, f.matrix, unmasked, nullptr);
    CompatibleSetEnv env_m(f.netlist, f.rare, f.matrix, masked, nullptr);
    util::Rng rng_u(seed);
    util::Rng rng_m(seed);  // same start net
    env_u.reset(rng_u);
    env_m.reset(rng_m);
    ASSERT_EQ(env_u.members()[0], env_m.members()[0]);

    util::Rng action_rng(seed + 100);
    std::vector<std::uint32_t> accepted;
    while (true) {
      const auto& mask = env_u.action_mask();
      if (mask.none()) break;
      const auto indices = mask.to_indices();
      const auto action = indices[action_rng.below(indices.size())];
      const std::size_t before = env_u.members().size();
      const auto step = env_u.step(action);
      if (env_u.members().size() > before) accepted.push_back(action);
      if (step.done) break;
    }
    // Replay the accepted actions on the masked agent.
    for (const auto action : accepted) {
      ASSERT_TRUE(env_m.action_mask().test(action))
          << "mask hides an action the unmasked agent validly took";
      const std::size_t before = env_m.members().size();
      env_m.step(action);
      ASSERT_EQ(env_m.members().size(), before + 1);
    }
    EXPECT_EQ(env_m.members().size(), env_u.members().size());
  }
}

// ------------------------------------------------------- pipeline ----------

TEST(Deterrent, RejectsSequentialNetlist) {
  netlist::NetlistBuilder b;
  const auto a = b.add_input();
  b.mark_output(b.add_dff(a));
  const Netlist nl = b.build();
  EXPECT_THROW(Deterrent(nl, {}), Error);
}

TEST(Deterrent, TrainBeforePrepareThrows) {
  const Fixture f = make_fixture(40);
  Deterrent det(f.netlist, {});
  EXPECT_THROW(det.train(), Error);
  EXPECT_THROW(det.extract_patterns(), Error);
}

TEST(Deterrent, ExtractedPatternsRealizeTheirSets) {
  const Fixture f = make_fixture(41, 260);
  if (f.rare.size() < 6) GTEST_SKIP();
  DeterrentConfig cfg;
  cfg.updates = 4;
  cfg.k_patterns = 8;
  cfg.ppo.episodes_per_update = 6;
  cfg.rare.sim_patterns = 1 << 13;
  cfg.seed = 5;
  Deterrent det(f.netlist, cfg);
  det.prepare();
  det.train();
  const auto patterns = det.extract_patterns();
  ASSERT_GT(patterns.pattern_count(), 0u);
  ASSERT_EQ(patterns.pattern_count(), det.extracted_sets().size());

  // Each pattern must drive every net of its set to the rare value.
  sim::Simulator sim(f.netlist);
  for (std::size_t k = 0; k < patterns.pattern_count(); ++k) {
    const auto values = sim.simulate_pattern(patterns.pattern(k));
    for (const auto idx : det.extracted_sets()[k].to_indices()) {
      const auto& rn = det.rare_nets()[idx];
      EXPECT_EQ(values[rn.net], rn.rare_value)
          << "pattern " << k << " fails its own set";
    }
  }
}

TEST(Deterrent, TrainingGrowsCompatibleSets) {
  const Fixture f = make_fixture(42, 300);
  if (f.rare.size() < 10) GTEST_SKIP();
  DeterrentConfig cfg;
  cfg.updates = 8;
  cfg.ppo.episodes_per_update = 8;
  cfg.seed = 3;
  Deterrent det(f.netlist, cfg);
  det.prepare();
  det.train();
  const auto& history = det.history();
  ASSERT_EQ(history.size(), 8u);
  EXPECT_GT(history.back().max_set_size, 1u);
  EXPECT_GT(history.back().cumulative_steps, history.front().cumulative_steps);
  // The distinct-set pool keeps growing as exploration proceeds. (Mean reward
  // itself is noisy under the boosted-entropy config, so it is not asserted.)
  EXPECT_GT(history.back().pool_size, history.front().pool_size);
  EXPECT_GE(history.back().max_set_size, history.front().max_set_size);
}

TEST(Deterrent, RunConvenienceProducesPatterns) {
  const Fixture f = make_fixture(43, 200);
  if (f.rare.size() < 6) GTEST_SKIP();
  DeterrentConfig cfg;
  cfg.updates = 3;
  cfg.k_patterns = 6;
  cfg.ppo.episodes_per_update = 4;
  Deterrent det(f.netlist, cfg);
  const auto patterns = det.run();
  EXPECT_GT(patterns.pattern_count(), 0u);
  EXPECT_LE(patterns.pattern_count(), 6u);
  EXPECT_TRUE(det.prepared());
}

TEST(Deterrent, PrepareWithExternalRareNets) {
  // The Figure 7 cross-threshold mechanism: analysis driven by a caller-
  // supplied rare-net list.
  const Fixture f = make_fixture(44, 220, 0.2);
  if (f.rare.size() < 6) GTEST_SKIP();
  DeterrentConfig cfg;
  cfg.updates = 2;
  cfg.ppo.episodes_per_update = 4;
  Deterrent det(f.netlist, cfg);
  det.prepare_with(f.rare);
  EXPECT_EQ(det.rare_nets().size(), f.rare.size());
  det.train();
  EXPECT_GT(det.pool().size(), 0u);
}

}  // namespace
}  // namespace deterrent::core
